// §3.2 "zero (re-)negotiation … does not fundamentally preclude live
// migration, as devices can be hot-swapped": mid-connection, the old L2
// device (and its entire shared region) is torn down and a fresh one with
// a NEW fixed configuration is attached. Nothing is negotiated; frames in
// flight are simply lost and TCP retransmission heals the gap. The test
// runs a TCP transfer across the swap and checks byte-exact delivery.

#include <gtest/gtest.h>

#include <memory>

#include "src/base/rng.h"
#include "src/cio/l2_host_device.h"
#include "src/cio/l2_transport.h"
#include "src/net/stack.h"

namespace {

using ciobase::Buffer;
using namespace cio;  // NOLINT: test file

// A FramePort indirection so the stack can survive its port being replaced
// (the swap happens below the stack, like replugging a NIC).
class SwappablePort final : public cionet::FramePort {
 public:
  void Set(cionet::FramePort* port) { port_ = port; }
  ciobase::Result<size_t> SendFrames(
      std::span<const ciobase::ByteSpan> frames) override {
    if (port_ == nullptr) {
      // Like frames hitting an unplugged NIC: nothing is accepted.
      return ciobase::Unavailable("no device attached");
    }
    return port_->SendFrames(frames);
  }
  ciobase::Result<size_t> ReceiveFrames(cionet::FrameBatch& batch,
                                        size_t max_frames) override {
    if (port_ == nullptr) {
      batch.Clear();
      return ciobase::Unavailable("no device attached");
    }
    return port_->ReceiveFrames(batch, max_frames);
  }
  cionet::MacAddress mac() const override { return port_->mac(); }
  uint16_t mtu() const override { return port_ ? port_->mtu() : 1500; }

 private:
  cionet::FramePort* port_ = nullptr;
};

struct L2Instance {
  ciotee::TeeMemory memory;
  std::unique_ptr<ciotee::SharedRegion> shared;
  std::unique_ptr<L2HostDevice> device;
  std::unique_ptr<L2Transport> transport;

  L2Instance(cionet::Fabric* fabric, ciobase::SimClock* clock,
             ciobase::CostModel* costs, L2Config config,
             const std::string& name) {
    L2Layout layout(config);
    shared = std::make_unique<ciotee::SharedRegion>(&memory, layout.total,
                                                    name);
    device = std::make_unique<L2HostDevice>(shared.get(), config, fabric,
                                            name, nullptr, nullptr, clock);
    transport = std::make_unique<L2Transport>(shared.get(), config, costs,
                                              nullptr);
  }
};

TEST(HotSwap, TcpTransferSurvivesDeviceReplacement) {
  ciobase::SimClock clock;
  ciobase::CostModel costs(&clock);
  cionet::Fabric fabric(&clock, 55);

  cionet::MacAddress mac_a = cionet::MacAddress::FromId(1);
  L2Config config_v1;
  config_v1.mac = mac_a;
  config_v1.ring_slots = 256;
  config_v1.positioning = DataPositioning::kInline;

  auto instance = std::make_unique<L2Instance>(&fabric, &clock, &costs,
                                               config_v1, "nic-v1");
  SwappablePort port;
  port.Set(instance->transport.get());

  cionet::DirectFabricPort peer_port(&fabric, "peer",
                                     cionet::MacAddress::FromId(2));
  cionet::NetStack::Config stack_config;
  stack_config.ip = cionet::Ipv4Address::FromOctets(10, 0, 0, 1);
  cionet::NetStack::Config peer_config;
  peer_config.ip = cionet::Ipv4Address::FromOctets(10, 0, 0, 2);
  peer_config.seed = 2;
  cionet::NetStack stack(&port, &clock, stack_config);
  cionet::NetStack peer(&peer_port, &clock, peer_config);

  auto listener = peer.TcpListen(80);
  ASSERT_TRUE(listener.ok());
  auto client = stack.TcpConnect(peer_config.ip, 80);
  ASSERT_TRUE(client.ok());
  cionet::SocketId server{};

  auto pump = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      if (instance != nullptr) {
        instance->device->Poll();
      }
      stack.Poll();
      peer.Poll();
      if (instance != nullptr) {
        instance->device->Poll();
      }
      clock.Advance(10'000);
      if (!(server == cionet::SocketId{})) {
        continue;
      }
      auto accepted = peer.TcpAccept(*listener);
      if (accepted.ok()) {
        server = *accepted;
      }
    }
  };
  pump(100);
  ASSERT_FALSE(server == cionet::SocketId{});

  // Stream data; halfway through, rip the device out and replace it with a
  // v2 device using a DIFFERENT fixed configuration.
  ciobase::Rng rng(3);
  std::string data(120'000, '\0');
  for (auto& c : data) {
    c = static_cast<char>('a' + rng.NextBounded(26));
  }
  size_t offset = 0;
  std::string received;
  bool swapped = false;
  int detach_round = -1;
  for (int round = 0; round < 400'000 && received.size() < data.size();
       ++round) {
    if (offset < data.size()) {
      auto sent = stack.TcpSend(
          *client,
          ciobase::ByteSpan(
              reinterpret_cast<const uint8_t*>(data.data()) + offset,
              data.size() - offset));
      if (sent.ok()) {
        offset += *sent;
      }
    }
    if (!swapped && received.size() > data.size() / 3) {
      swapped = true;
      detach_round = round;
      // Replug downtime begins: tear v1 down entirely (fabric endpoint,
      // shared region, rings). Everything queued on it dies, and frames
      // the stack emits during the gap are dropped at the missing port —
      // like packets hitting an unplugged NIC. Only TCP retransmission
      // heals this; there is no protocol state to migrate or renegotiate.
      fabric.Detach(instance->device->endpoint());
      port.Set(nullptr);
      instance.reset();
    }
    if (detach_round >= 0 && round == detach_round + 500) {
      // Downtime over: deploy v2 with a different (still fixed) config.
      L2Config config_v2;
      config_v2.mac = mac_a;  // same identity on the network
      config_v2.ring_slots = 64;
      config_v2.positioning = DataPositioning::kSharedPool;
      instance = std::make_unique<L2Instance>(&fabric, &clock, &costs,
                                              config_v2, "nic-v2");
      port.Set(instance->transport.get());
    }
    pump(1);
    uint8_t buf[8192];
    auto got = peer.TcpReceive(server, buf);
    if (got.ok() && *got > 0) {
      received.append(reinterpret_cast<char*>(buf), *got);
    }
  }
  ASSERT_TRUE(swapped);
  EXPECT_EQ(received.size(), data.size());
  EXPECT_EQ(received, data);
  // The swap cost retransmissions (frames died with the old device), but
  // no protocol-level renegotiation existed to get wedged in.
  auto stats = stack.GetTcpStats(*client);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->retransmissions, 0u);
}

TEST(HotSwap, DetachedEndpointStopsRouting) {
  ciobase::SimClock clock;
  cionet::Fabric fabric(&clock, 1, cionet::Fabric::Options{0, 0, 0, 9216});
  cionet::DirectFabricPort a(&fabric, "a", cionet::MacAddress::FromId(1));
  cionet::DirectFabricPort b(&fabric, "b", cionet::MacAddress::FromId(2));
  Buffer frame;
  cionet::EthernetHeader eth{cionet::MacAddress::FromId(2),
                             cionet::MacAddress::FromId(1), 0x88b5};
  eth.Serialize(frame);
  ASSERT_TRUE(cionet::SendOne(a, frame).ok());
  EXPECT_TRUE(cionet::ReceiveOne(b).ok());
  fabric.Detach(b.endpoint());
  ASSERT_TRUE(cionet::SendOne(a, frame).ok());
  EXPECT_FALSE(cionet::ReceiveOne(b).ok());
  EXPECT_GT(fabric.stats().frames_dropped_unknown, 0u);
}

}  // namespace
