// Tests for the io_uring-style SQ/CQ datapath itself: entry codecs and
// geometry validation, SQ-full / pool-exhaustion backpressure, CQ-overflow
// spill (held completions drain in order, nothing lost), out-of-order
// reaping across sockets, hostile-host CQ scribbling (duplicate, stale,
// garbage entries surface as typed Status — never memory errors), and
// exactly-once delivery when the link dies with a batch in flight.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/base/coverage.h"
#include "src/base/rng.h"
#include "src/cio/engine.h"
#include "src/cio/l5_channel.h"
#include "src/cio/sqcq.h"
#include "src/fuzz/mutator.h"
#include "src/net/fabric.h"

namespace {

using ciobase::Buffer;
using ciobase::BufferFromString;
using namespace cio;  // NOLINT: test file

// --- Codecs and geometry -----------------------------------------------------

TEST(Sqcq, SqeRoundTripsAllFields) {
  SqEntry in;
  in.op = kSqOpSend;
  in.seg_count = 3;
  in.socket = 0xDEADBEEF;
  in.user_data = 0x1122334455667788ull;
  for (size_t i = 0; i < 3; ++i) {
    in.segs[i].slot = static_cast<uint16_t>(100 + i);
    in.segs[i].len = static_cast<uint32_t>(1000 + i);
  }
  uint8_t raw[kSqeSize];
  EncodeSqe(in, ciobase::MutableByteSpan(raw, sizeof raw));
  SqEntry out = DecodeSqe(ciobase::ByteSpan(raw, sizeof raw));
  EXPECT_EQ(out.op, in.op);
  EXPECT_EQ(out.seg_count, in.seg_count);
  EXPECT_EQ(out.socket, in.socket);
  EXPECT_EQ(out.user_data, in.user_data);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out.segs[i].slot, in.segs[i].slot);
    EXPECT_EQ(out.segs[i].len, in.segs[i].len);
  }
}

TEST(Sqcq, CqeRoundTripsAndDecodeClampsSegCount) {
  CqEntry in;
  in.op = kSqOpRecv;
  in.seg_count = 2;
  in.code = kCqEof;
  in.result = 4096;
  in.user_data = 42;
  in.epoch = 7;
  in.seg_len[0] = 4000;
  in.seg_len[1] = 96;
  uint8_t raw[kCqeSize];
  EncodeCqe(in, ciobase::MutableByteSpan(raw, sizeof raw));
  CqEntry out = DecodeCqe(ciobase::ByteSpan(raw, sizeof raw));
  EXPECT_EQ(out.op, in.op);
  EXPECT_EQ(out.seg_count, in.seg_count);
  EXPECT_EQ(out.code, in.code);
  EXPECT_EQ(out.result, in.result);
  EXPECT_EQ(out.user_data, in.user_data);
  EXPECT_EQ(out.epoch, in.epoch);
  EXPECT_EQ(out.seg_len[0], 4000u);
  EXPECT_EQ(out.seg_len[1], 96u);

  // A host-scribbled seg_count cannot direct reads past the fixed arrays.
  raw[1] = 0xFF;
  EXPECT_EQ(DecodeCqe(ciobase::ByteSpan(raw, sizeof raw)).seg_count,
            kSqMaxSegments);
}

TEST(Sqcq, QueueConfigValidation) {
  L5QueueConfig config;
  EXPECT_TRUE(config.Valid());

  L5QueueConfig bad = config;
  bad.sq_entries = 48;  // not a power of two
  EXPECT_FALSE(bad.Valid());
  bad = config;
  bad.cq_entries = 1;
  EXPECT_FALSE(bad.Valid());
  bad = config;
  bad.pool_slots = kSqMaxSegments - 1;  // one full message must fit
  EXPECT_FALSE(bad.Valid());
  bad = config;
  bad.slot_size = 128;
  EXPECT_FALSE(bad.Valid());
  bad = config;
  bad.recv_segments = kSqMaxSegments + 1;
  EXPECT_FALSE(bad.Valid());

  // The region layout is consistent: control, SQ, CQ, pool, in that order.
  EXPECT_EQ(config.SqOffset(), kSqcqControlBytes);
  EXPECT_EQ(config.CqOffset(), config.SqOffset() + config.sq_entries * kSqeSize);
  EXPECT_EQ(config.TotalBytes(),
            config.PoolOffset() +
                static_cast<size_t>(config.pool_slots) * config.slot_size);
}

// --- Fixture -----------------------------------------------------------------

// An L5 world with a configurable queue geometry: a NetStack in the "io"
// compartment talking over a direct fabric to a plain peer stack.
struct SqcqWorld {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  cionet::Fabric fabric{&clock, 47};
  cionet::DirectFabricPort port_io{&fabric, "io",
                                   cionet::MacAddress::FromId(1)};
  cionet::DirectFabricPort port_peer{&fabric, "peer",
                                     cionet::MacAddress::FromId(2)};
  std::unique_ptr<cionet::NetStack> io_stack;
  std::unique_ptr<cionet::NetStack> peer_stack;
  ciotee::CompartmentManager compartments{&costs};
  ciotee::CompartmentId app = compartments.Create("app", 1 << 20);
  ciotee::CompartmentId io = compartments.Create("io", 1 << 20);
  std::unique_ptr<L5Channel> l5;
  cionet::SocketId listener{};

  explicit SqcqWorld(const L5QueueConfig& queues = L5QueueConfig{},
                     L5ReceiveMode mode = L5ReceiveMode::kCopy) {
    cionet::NetStack::Config config_io;
    config_io.ip = cionet::Ipv4Address::FromOctets(10, 0, 0, 1);
    cionet::NetStack::Config config_peer;
    config_peer.ip = cionet::Ipv4Address::FromOctets(10, 0, 0, 2);
    config_peer.seed = 9;
    io_stack = std::make_unique<cionet::NetStack>(&port_io, &clock,
                                                  config_io);
    peer_stack = std::make_unique<cionet::NetStack>(&port_peer, &clock,
                                                    config_peer);
    compartments.GrantAccess(app, io);
    l5 = std::make_unique<L5Channel>(&compartments, app, io, io_stack.get(),
                                     &costs, mode,
                                     L5BoundaryKind::kCompartment, queues);
    auto listening = l5->Listen(80);
    EXPECT_TRUE(listening.ok());
    listener = *listening;
  }

  // One accepted connection; returns (l5-side socket, peer-side socket).
  std::pair<cionet::SocketId, cionet::SocketId> Establish() {
    auto client = peer_stack->TcpConnect(
        cionet::Ipv4Address::FromOctets(10, 0, 0, 1), 80);
    EXPECT_TRUE(client.ok());
    cionet::SocketId server{};
    for (int i = 0; i < 1000; ++i) {
      peer_stack->Poll();
      (void)l5->Poll();
      clock.Advance(5'000);
      auto accepted = l5->Accept(listener);
      if (accepted.ok()) {
        server = *accepted;
        break;
      }
    }
    return {server, *client};
  }

  void Pump(int rounds = 50) {
    for (int i = 0; i < rounds; ++i) {
      peer_stack->Poll();
      (void)l5->Poll();
      clock.Advance(5'000);
    }
  }

  // Seals `payload` into pool slots and queues the SQ entry (no doorbell).
  bool QueuePlain(cionet::SocketId socket, const Buffer& payload) {
    L5Channel::MessageWriter writer;
    if (!l5->BeginMessage(socket, payload.size(), /*use_tls=*/false, writer)) {
      return false;
    }
    size_t written = 0;
    while (written < payload.size()) {
      ciobase::MutableByteSpan span = writer.NextSpan(1);
      if (span.empty()) {
        l5->AbandonMessage(writer);
        return false;
      }
      size_t n = std::min(span.size(), payload.size() - written);
      std::memcpy(span.data(), payload.data() + written, n);
      writer.Commit(n);
      written += n;
    }
    l5->SubmitMessage(writer);
    return true;
  }

  // Hostile host: write a CQ entry at the published tail and advance it.
  void ScribbleCqe(const CqEntry& cqe) {
    ciobase::MutableByteSpan region = l5->queue_region_for_test();
    const L5QueueConfig& config = l5->queue_config();
    uint32_t tail = ciobase::LoadLe32(region.data() + kCtrlCqTail);
    uint32_t masked = tail & (config.cq_entries - 1);
    EncodeCqe(cqe, region.subspan(config.CqOffset() + masked * kCqeSize,
                                  kCqeSize));
    ciobase::StoreLe32(region.data() + kCtrlCqTail, tail + 1);
  }
};

// --- Backpressure ------------------------------------------------------------

TEST(Sqcq, SqFullBackpressuresAndRecoversAfterDoorbell) {
  L5QueueConfig tiny;
  tiny.sq_entries = 2;
  tiny.cq_entries = 4;
  tiny.pool_slots = 16;
  tiny.slot_size = 512;
  SqcqWorld world(tiny);
  auto [server, client] = world.Establish();
  Buffer payload = BufferFromString("small");

  EXPECT_TRUE(world.QueuePlain(server, payload));
  EXPECT_TRUE(world.QueuePlain(server, payload));
  // Ring full until a doorbell hands the consumed count back through the
  // call gate.
  EXPECT_FALSE(world.QueuePlain(server, payload));
  EXPECT_GE(world.l5->stats().sq_backpressure, 1u);

  EXPECT_NE(world.l5->Doorbell().code(), ciobase::StatusCode::kTampered);
  EXPECT_TRUE(world.QueuePlain(server, payload));
  world.Pump();
  EXPECT_EQ(world.l5->in_flight_entries(), 0u);
}

TEST(Sqcq, PoolExhaustionBackpressuresUntilCompletionsReturnSlots) {
  L5QueueConfig tiny;
  tiny.sq_entries = 16;
  tiny.cq_entries = 16;
  tiny.pool_slots = 8;  // exactly one max-fan-out message
  tiny.slot_size = 256;
  SqcqWorld world(tiny);
  auto [server, client] = world.Establish();
  ciobase::Rng rng(3);
  Buffer big = rng.Bytes(1500);  // 12B framing + 1500B -> 6 of 8 slots

  uint64_t backpressure_before = world.l5->stats().sq_backpressure;
  EXPECT_TRUE(world.QueuePlain(server, big));
  EXPECT_EQ(world.l5->free_slots(), 2u);
  EXPECT_FALSE(world.QueuePlain(server, big));
  EXPECT_GT(world.l5->stats().sq_backpressure, backpressure_before);

  // Completions hand the slots back; the same message then fits.
  world.Pump();
  EXPECT_EQ(world.l5->free_slots(), tiny.pool_slots);
  EXPECT_TRUE(world.QueuePlain(server, big));
  world.Pump();
  EXPECT_EQ(world.l5->free_slots(), tiny.pool_slots);
}

// --- CQ overflow spill -------------------------------------------------------

TEST(Sqcq, CqOverflowSpillsAndDrainsInOrderWithoutLoss) {
  L5QueueConfig tiny;
  tiny.sq_entries = 16;
  tiny.cq_entries = 4;  // half the batch must spill to held completions
  tiny.pool_slots = 16;
  tiny.slot_size = 512;
  SqcqWorld world(tiny);
  auto [server, client] = world.Establish();

  std::string all;
  for (int i = 0; i < 8; ++i) {
    std::string piece = "piece-" + std::to_string(i) + ";";
    ASSERT_TRUE(world.QueuePlain(server, BufferFromString(piece)));
    all += piece;
  }
  ASSERT_EQ(world.l5->in_flight_entries(), 8u);

  // One doorbell services all eight sends but can only post a CQ window's
  // worth; the rest are held io-side and drain on later doorbells.
  EXPECT_NE(world.l5->Doorbell().code(), ciobase::StatusCode::kTampered);
  EXPECT_EQ(world.l5->stats().cq_completions, 4u);
  EXPECT_EQ(world.l5->in_flight_entries(), 4u);
  world.Pump();
  EXPECT_EQ(world.l5->stats().cq_completions, 8u);
  EXPECT_EQ(world.l5->in_flight_entries(), 0u);
  EXPECT_EQ(world.l5->free_slots(), tiny.pool_slots);

  // Every byte arrived, in submission order.
  std::string received;
  uint8_t buf[256];
  for (int i = 0; i < 50 && received.size() < all.size(); ++i) {
    auto got = world.peer_stack->TcpReceive(client, buf);
    if (got.ok() && *got > 0) {
      received.append(reinterpret_cast<const char*>(buf), *got);
    }
    world.Pump(2);
  }
  EXPECT_EQ(received, all);
}

// --- Out-of-order reaping ----------------------------------------------------

TEST(Sqcq, CompletionsReapOutOfSubmissionOrderAcrossSockets) {
  SqcqWorld world;
  auto [server_a, client_a] = world.Establish();
  auto [server_b, client_b] = world.Establish();
  ASSERT_NE(server_a.value, server_b.value);

  // Submit to the later socket FIRST: the I/O side services sockets in id
  // order, so completions post in the opposite order from submission and
  // the reaper must match them by user_data, not position.
  Buffer for_b = BufferFromString("second socket, first submit");
  Buffer for_a = BufferFromString("first socket, second submit");
  ASSERT_TRUE(world.QueuePlain(server_b, for_b));
  ASSERT_TRUE(world.QueuePlain(server_a, for_a));
  EXPECT_NE(world.l5->Doorbell().code(), ciobase::StatusCode::kTampered);
  world.Pump();
  EXPECT_EQ(world.l5->in_flight_entries(), 0u);

  uint8_t buf[64];
  auto got_a = world.peer_stack->TcpReceive(client_a, buf);
  ASSERT_TRUE(got_a.ok());
  EXPECT_EQ(ciobase::StringFromBytes(ciobase::ByteSpan(buf, *got_a)),
            "first socket, second submit");
  auto got_b = world.peer_stack->TcpReceive(client_b, buf);
  ASSERT_TRUE(got_b.ok());
  EXPECT_EQ(ciobase::StringFromBytes(ciobase::ByteSpan(buf, *got_b)),
            "second socket, first submit");
}

// --- Hostile-host CQ scribbling ---------------------------------------------

TEST(Sqcq, DuplicateCompletionIsTampering) {
  SqcqWorld world;
  auto [server, client] = world.Establish();
  ASSERT_TRUE(world.l5->SendOne(server, BufferFromString("once")).ok());
  world.Pump();
  ASSERT_EQ(world.l5->in_flight_entries(), 0u);

  // Replay the already-reaped completion (user_data 1, current epoch).
  CqEntry replay;
  replay.op = kSqOpSend;
  replay.seg_count = 0;
  replay.code = kCqOk;
  replay.result = 0;
  replay.user_data = 1;
  replay.epoch = world.l5->epoch();
  world.ScribbleCqe(replay);
  EXPECT_EQ(world.l5->Poll().code(), ciobase::StatusCode::kTampered);
}

TEST(Sqcq, StaleEpochCompletionIsDroppedNotFatal) {
  SqcqWorld world;
  auto [server, client] = world.Establish();
  ASSERT_TRUE(world.l5->SendOne(server, BufferFromString("pre-reset")).ok());
  world.Pump();

  // Ring reset (recovery path): the old generation may still owe
  // completions; they must reap as recovery noise, not as an attack.
  world.l5->AbandonInFlight();
  EXPECT_EQ(world.l5->epoch(), 1u);
  CqEntry old_epoch;
  old_epoch.op = kSqOpSend;
  old_epoch.code = kCqOk;
  old_epoch.user_data = 1;
  old_epoch.epoch = 0;
  world.ScribbleCqe(old_epoch);
  EXPECT_NE(world.l5->Poll().code(), ciobase::StatusCode::kTampered);
  EXPECT_GE(world.l5->stats().cq_stale_dropped, 1u);
}

TEST(Sqcq, GarbageCompletionEntryIsTampering) {
  SqcqWorld world;
  (void)world.Establish();

  CqEntry garbage;
  uint8_t raw[kCqeSize];
  std::memset(raw, 0xA5, sizeof raw);
  garbage = DecodeCqe(ciobase::ByteSpan(raw, sizeof raw));
  garbage.epoch = world.l5->epoch();  // survives the stale filter...
  world.ScribbleCqe(garbage);
  // ...and dies on the shadow check: no such user_data was ever submitted.
  EXPECT_EQ(world.l5->Poll().code(), ciobase::StatusCode::kTampered);
}

TEST(Sqcq, CompletionFieldMismatchesAreTampering) {
  // Arm receive entries (no inbound data, so they stay in flight as known
  // user_data values), then forge completions that contradict the shadow.
  SqcqWorld world;
  auto [server, client] = world.Establish();
  Buffer sink;
  auto got = world.l5->ReceiveOne(server, 4096, sink);
  ASSERT_TRUE(got.ok());
  ASSERT_GT(world.l5->in_flight_entries(), 0u);
  const L5QueueConfig& config = world.l5->queue_config();

  {
    // Opcode flip: recv submitted, send completed.
    CqEntry forged;
    forged.op = kSqOpSend;
    forged.user_data = 1;
    forged.epoch = world.l5->epoch();
    world.ScribbleCqe(forged);
    EXPECT_EQ(world.l5->Poll().code(), ciobase::StatusCode::kTampered);
  }
  {
    // Length exceeding what was submitted for the segment.
    SqcqWorld fresh;
    auto [fs, fc] = fresh.Establish();
    Buffer fresh_sink;
    ASSERT_TRUE(fresh.l5->ReceiveOne(fs, 4096, fresh_sink).ok());
    CqEntry forged;
    forged.op = kSqOpRecv;
    forged.seg_count = 1;
    forged.user_data = 1;
    forged.epoch = fresh.l5->epoch();
    forged.seg_len[0] = config.slot_size + 1;
    forged.result = config.slot_size + 1;
    fresh.ScribbleCqe(forged);
    EXPECT_EQ(fresh.l5->Poll().code(), ciobase::StatusCode::kTampered);
  }
  {
    // Result not matching the per-segment sum.
    SqcqWorld fresh;
    auto [fs, fc] = fresh.Establish();
    Buffer fresh_sink;
    ASSERT_TRUE(fresh.l5->ReceiveOne(fs, 4096, fresh_sink).ok());
    CqEntry forged;
    forged.op = kSqOpRecv;
    forged.seg_count = 1;
    forged.user_data = 1;
    forged.epoch = fresh.l5->epoch();
    forged.seg_len[0] = 100;
    forged.result = 101;
    fresh.ScribbleCqe(forged);
    EXPECT_EQ(fresh.l5->Poll().code(), ciobase::StatusCode::kTampered);
  }
  {
    // Unknown completion code.
    SqcqWorld fresh;
    auto [fs, fc] = fresh.Establish();
    Buffer fresh_sink;
    ASSERT_TRUE(fresh.l5->ReceiveOne(fs, 4096, fresh_sink).ok());
    CqEntry forged;
    forged.op = kSqOpRecv;
    forged.user_data = 1;
    forged.epoch = fresh.l5->epoch();
    forged.code = kCqReset + 1;
    fresh.ScribbleCqe(forged);
    EXPECT_EQ(fresh.l5->Poll().code(), ciobase::StatusCode::kTampered);
  }
}

TEST(Sqcq, CqTailOutsideRingWindowIsTampering) {
  SqcqWorld world;
  (void)world.Establish();
  ciobase::MutableByteSpan region = world.l5->queue_region_for_test();
  // A runaway tail would walk the reaper through the whole ring of dead
  // entries forever; the window check rejects it before any decode.
  ciobase::StoreLe32(region.data() + kCtrlCqTail,
                     world.l5->queue_config().cq_entries + 7);
  EXPECT_EQ(world.l5->Poll().code(), ciobase::StatusCode::kTampered);
}

// --- Hostile control-cell mutation (the fuzzer's mutator as a library) ------

// The SQ/CQ control cells are the five hottest host-writable words in the
// L5 region. These tests drive them with ciofuzz::Mutator::ApplyStep — the
// exact write primitive the campaign uses — and assert the channel's
// contract: app-owned cells self-heal, io-owned forgeries are typed, and
// nothing ever wedges without a typed signal.

ciofuzz::TargetWindow CtrlWindow(SqcqWorld& world) {
  ciofuzz::TargetWindow window;
  window.name = "l5.ctrl";
  window.length = kSqcqControlBytes;
  window.weight = 1;
  window.raw = world.l5->queue_region_for_test().subspan(0, kSqcqControlBytes);
  return window;
}

bool SawEdge(std::string_view site, ciobase::StatusCode code) {
  for (const ciobase::CoverageMap::Edge& edge :
       ciobase::CoverageMap::Instance().Edges()) {
    if (edge.site == site && edge.code == static_cast<uint16_t>(code)) {
      return true;
    }
  }
  return false;
}

TEST(SqcqMutation, ForgedCqHeadIsTypedEdgeAndSelfHeals) {
  SqcqWorld world;
  auto [server, client] = world.Establish();
  ciobase::CoverageMap::Instance().ResetHits();
  ASSERT_TRUE(world.QueuePlain(server, BufferFromString("held then drained")));

  // Forge the app-owned CqHead one past the published tail: the unsigned
  // window tail - head wraps huge and the incoherent-head check fires.
  ciofuzz::TargetWindow ctrl = CtrlWindow(world);
  ciofuzz::MutationStep forge;
  forge.window = ctrl.name;
  forge.op = ciofuzz::MutOp::kWriteLe32;
  forge.offset = kCtrlCqHead;
  forge.value = ciobase::LoadLe32(ctrl.raw.data() + kCtrlCqTail) + 1;
  ciofuzz::Mutator::ApplyStep(forge, ctrl);

  // The doorbell's io pass sees the forged head, holds the completion (not
  // dropped) and emits the typed edge; Harvest re-asserts the true head in
  // the same call, so this is never Tampered.
  EXPECT_NE(world.l5->Poll().code(), ciobase::StatusCode::kTampered);
  EXPECT_TRUE(SawEdge("l5.cq.incoherent_head",
                      ciobase::StatusCode::kOutOfRange));

  // ...and the wedge heals: the held completion drains on later doorbells.
  world.Pump();
  EXPECT_EQ(world.l5->in_flight_entries(), 0u);
  EXPECT_EQ(ciobase::LoadLe32(ctrl.raw.data() + kCtrlCqHead),
            ciobase::LoadLe32(ctrl.raw.data() + kCtrlCqTail));
}

TEST(SqcqMutation, ForgedEpochCellDropsStaleTypedAndHeals) {
  SqcqWorld world;
  auto [server, client] = world.Establish();
  ciobase::CoverageMap::Instance().ResetHits();
  ASSERT_TRUE(world.QueuePlain(server, BufferFromString("stamped stale")));

  // Bump the app-owned epoch cell: the io side stamps this send's CQE with
  // the forged generation, which the reaper must drop as recovery noise —
  // a typed counter and edge, never Tampered, never a trusted completion.
  ciofuzz::TargetWindow ctrl = CtrlWindow(world);
  ciofuzz::MutationStep forge;
  forge.window = ctrl.name;
  forge.op = ciofuzz::MutOp::kAddDelta;
  forge.offset = kCtrlEpoch;
  forge.width = 4;
  forge.value = 7;
  ciofuzz::Mutator::ApplyStep(forge, ctrl);

  EXPECT_TRUE(world.l5->Poll().ok());
  EXPECT_GE(world.l5->stats().cq_stale_dropped, 1u);
  EXPECT_TRUE(SawEdge("l5.cq.stale_epoch",
                      ciobase::StatusCode::kUnavailable));
  // Harvest healed the cell back to the true generation.
  EXPECT_EQ(ciobase::LoadLe32(ctrl.raw.data() + kCtrlEpoch),
            world.l5->epoch());
}

TEST(SqcqMutation, ForgedSqHeadCannotSpoofConsumption) {
  L5QueueConfig tiny;
  tiny.sq_entries = 2;
  tiny.cq_entries = 4;
  tiny.pool_slots = 16;
  tiny.slot_size = 512;
  SqcqWorld world(tiny);
  auto [server, client] = world.Establish();
  Buffer payload = BufferFromString("gate");
  ASSERT_TRUE(world.QueuePlain(server, payload));
  ASSERT_TRUE(world.QueuePlain(server, payload));

  // Host pretends the io side consumed far ahead. SQ-full detection uses
  // the count returned through the call gate, never this cell, so the
  // forgery buys nothing: the ring stays full.
  ciofuzz::TargetWindow ctrl = CtrlWindow(world);
  ciofuzz::MutationStep forge;
  forge.window = ctrl.name;
  forge.op = ciofuzz::MutOp::kWriteLe32;
  forge.offset = kCtrlSqHead;
  forge.value = 1000;
  ciofuzz::Mutator::ApplyStep(forge, ctrl);
  EXPECT_FALSE(world.QueuePlain(server, payload));

  // A real doorbell consumes through the gate and reopens the ring.
  EXPECT_NE(world.l5->Poll().code(), ciobase::StatusCode::kTampered);
  EXPECT_TRUE(world.QueuePlain(server, payload));
  world.Pump();
  EXPECT_EQ(world.l5->in_flight_entries(), 0u);
}

TEST(SqcqMutation, SeededControlCellStormNeverWedgesSilently) {
  // Seeded random storms over the whole control block, exactly as the
  // campaign generates them. The oracle contract: every storm ends in
  // typed tampering, a clean drain, or a wedge that left a typed signal —
  // a silent wedge (stuck in-flight entries with only kOk edges) is the
  // gated "hang" failure.
  const uint64_t seeds[] = {11, 29, 6361};
  for (uint64_t seed : seeds) {
    SqcqWorld world;
    auto [server, client] = world.Establish();
    ciobase::CoverageMap::Instance().ResetHits();
    std::vector<ciofuzz::TargetWindow> windows;
    windows.push_back(CtrlWindow(world));
    ciofuzz::Mutator mutator(seed);
    constexpr uint32_t kRounds = 24;
    ciofuzz::FuzzInput input = mutator.Generate(windows, kRounds, 12);

    bool tampered = false;
    for (uint32_t round = 0; round < kRounds && !tampered; ++round) {
      if (round % 4 == 0) {
        (void)world.QueuePlain(server, BufferFromString("storm"));
      }
      mutator.ApplyRound(input, round, windows);
      if (world.l5->Poll().code() == ciobase::StatusCode::kTampered) {
        tampered = true;  // typed detection: recovery would take over
      }
      world.peer_stack->Poll();
      world.clock.Advance(5'000);
    }
    if (tampered) {
      continue;
    }
    world.Pump();
    bool drained = world.l5->in_flight_entries() == 0;
    bool typed_signal = world.l5->stats().cq_stale_dropped > 0;
    for (const ciobase::CoverageMap::Edge& edge :
         ciobase::CoverageMap::Instance().Edges()) {
      if (edge.code != 0) {
        typed_signal = true;
      }
    }
    EXPECT_TRUE(drained || typed_signal) << "silent wedge at seed " << seed;
    // The self-healing cells converged back to the app's private truth.
    EXPECT_EQ(ciobase::LoadLe32(
                  world.l5->queue_region_for_test().data() + kCtrlEpoch),
              world.l5->epoch())
        << "seed " << seed;
  }
}

// --- Exactly-once across a mid-batch link kill ------------------------------

TEST(Sqcq, KillLinkMidBatchDeliversExactlyOnce) {
  StackConfig client = StackConfig::DefaultsFor(StackProfile::kDualBoundary, 1);
  client.seed = 6101;
  client.tcp_tuning.initial_rto_ns = 1'000'000;
  client.tcp_tuning.min_rto_ns = 500'000;
  client.tcp_tuning.max_rto_ns = 4'000'000;
  client.tcp_tuning.max_retries = 4;
  StackConfig server = client;
  server.node_id = 2;
  server.seed = 6102;
  LinkedPair pair(client, server);
  ASSERT_TRUE(pair.Establish());

  std::vector<std::string> sent;
  std::vector<std::string> received;
  auto drain = [&] {
    for (;;) {
      auto message = pair.server->ReceiveMessage();
      if (!message.ok()) {
        break;
      }
      received.emplace_back(reinterpret_cast<const char*>(message->data()),
                            message->size());
    }
  };
  // Bursts of four: each burst lands back to back in the submission queue
  // and shares a doorbell, so the fault window catches whole batches in
  // flight, not single messages.
  auto offer_burst = [&](int burst_id) {
    for (int round = 0; round < 30000; ++round) {
      if (pair.client->Ready()) {
        int accepted = 0;
        for (int i = 0; i < 4; ++i) {
          std::string payload =
              "burst-" + std::to_string(burst_id) + "-msg-" + std::to_string(i);
          if (!pair.client->SendMessage(BufferFromString(payload)).ok()) {
            break;
          }
          sent.push_back(payload);
          ++accepted;
        }
        if (accepted == 4) {
          return true;
        }
      }
      pair.Pump();
      drain();
    }
    return false;
  };

  ASSERT_TRUE(offer_burst(0));
  // Kill the link past the TCP retry budget with a batch just submitted:
  // recovery must reset the ring epoch and replay from the resend window.
  pair.client->adversary().InjectFault(
      {ciohost::FaultStrategy::kLinkKill, pair.clock.now_ns(), 12'000'000});
  ASSERT_TRUE(offer_burst(1));
  ASSERT_TRUE(offer_burst(2));
  ASSERT_TRUE(offer_burst(3));

  ASSERT_TRUE(pair.PumpUntil(
      [&] {
        drain();
        return received.size() >= sent.size() && pair.client->Ready() &&
               !pair.client->Failed() && !pair.server->Failed();
      },
      60000));

  // Exactly once, in order: no losses, no duplicates, no reordering.
  EXPECT_EQ(received, sent);
  const auto& stats = pair.client->recovery_stats();
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_EQ(stats.messages_lost, 0u);
  EXPECT_EQ(pair.server->recovery_stats().messages_lost, 0u);
  EXPECT_TRUE(pair.client->memory().violations().empty());
}

}  // namespace
