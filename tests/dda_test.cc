// Tests for §3.4 Direct Device Assignment: SPDM-style device attestation
// (wrong measurement / forged report / stale nonce rejected), IDE link
// protection (host tampering with the relayed TLPs is detected and
// dropped, never delivered), end-to-end operation under the engine
// profile, and the TCB trade-off.

#include <gtest/gtest.h>

#include <memory>

#include "src/base/rng.h"
#include "src/cio/dda.h"
#include "src/cio/engine.h"
#include "src/cio/tcb.h"

namespace {

using ciobase::Buffer;
using ciobase::BufferFromString;
using namespace cio;  // NOLINT: test file

struct DdaWorld {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  cionet::Fabric fabric{&clock, 41, cionet::Fabric::Options{0, 0, 0, 9216}};
  ciotee::TeeMemory memory;
  DdaConfig config;
  ciotee::AttestationAuthority authority{
      BufferFromString("pcie-root-of-trust")};
  Buffer secret = BufferFromString("spdm-session-secret");
  std::unique_ptr<ciotee::SharedRegion> shared;
  ciohost::Adversary adversary{51};
  ciohost::ObservabilityLog observability;
  std::unique_ptr<DdaDevice> device;
  std::unique_ptr<DdaTransport> transport;
  std::unique_ptr<cionet::DirectFabricPort> peer;

  DdaWorld() {
    config.mac = cionet::MacAddress::FromId(1);
    DdaLayout layout(config);
    shared = std::make_unique<ciotee::SharedRegion>(&memory, layout.total,
                                                    "dda");
    device = std::make_unique<DdaDevice>(shared.get(), config, &fabric,
                                         "dda-nic", &authority, secret,
                                         &adversary, &observability, &clock);
    transport = std::make_unique<DdaTransport>(shared.get(), config,
                                               device.get(), &costs,
                                               &authority, 77);
    peer = std::make_unique<cionet::DirectFabricPort>(
        &fabric, "peer", cionet::MacAddress::FromId(2));
  }

  Buffer ToGuest(const std::string& payload) {
    Buffer frame;
    cionet::EthernetHeader eth{cionet::MacAddress::FromId(1),
                               cionet::MacAddress::FromId(2), 0x88b5};
    eth.Serialize(frame);
    ciobase::AppendString(frame, payload);
    return frame;
  }
};

TEST(DdaAttestation, SucceedsWithMatchingSecretAndMeasurement) {
  DdaWorld world;
  EXPECT_FALSE(world.transport->attested());
  ASSERT_TRUE(world.transport->Attest(world.secret).ok());
  EXPECT_TRUE(world.transport->attested());
  EXPECT_EQ(world.device->stats().attestations, 1u);
}

TEST(DdaAttestation, FramesRefusedBeforeAttestation) {
  DdaWorld world;
  EXPECT_EQ(cionet::SendOne(*world.transport, world.ToGuest("early")).code(),
            ciobase::StatusCode::kFailedPrecondition);
  EXPECT_FALSE(cionet::ReceiveOne(*world.transport).ok());
}

TEST(DdaAttestation, WrongVerifierKeyRejectsReport) {
  DdaWorld world;
  ciotee::AttestationAuthority wrong_root(BufferFromString("evil-root"));
  DdaTransport transport(world.shared.get(), world.config,
                         world.device.get(), &world.costs, &wrong_root, 78);
  auto status = transport.Attest(world.secret);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ciobase::StatusCode::kTampered);
}

TEST(DdaAttestation, UnexpectedDeviceMeasurementRejected) {
  DdaWorld world;
  // The guest expects different device firmware than what answers.
  DdaConfig expecting_other = world.config;
  expecting_other.device_identity = "some-other-fw-v9";
  DdaTransport transport(world.shared.get(), expecting_other,
                         world.device.get(), &world.costs, &world.authority,
                         79);
  EXPECT_FALSE(transport.Attest(world.secret).ok());
}

TEST(DdaAttestation, MismatchedProvisioningSecretKillsLinkNotSafety) {
  DdaWorld world;
  // Attestation passes (the report is genuine) but the IDE keys disagree:
  // every frame fails authentication — availability loss only.
  ASSERT_TRUE(
      world.transport->Attest(BufferFromString("wrong-secret")).ok());
  ASSERT_TRUE(cionet::SendOne(*world.peer, world.ToGuest("payload")).ok());
  world.clock.Advance(25'000);
  world.device->Poll();
  auto received = cionet::ReceiveOne(*world.transport);
  EXPECT_FALSE(received.ok());
  EXPECT_GT(world.transport->stats().auth_failures, 0u);
}

TEST(DdaDataPath, EchoRoundTrip) {
  DdaWorld world;
  ASSERT_TRUE(world.transport->Attest(world.secret).ok());
  for (int i = 0; i < 50; ++i) {
    Buffer in = world.ToGuest("frame " + std::to_string(i));
    ASSERT_TRUE(cionet::SendOne(*world.peer, in).ok());
    world.clock.Advance(25'000);
    world.device->Poll();
    auto at_guest = cionet::ReceiveOne(*world.transport);
    ASSERT_TRUE(at_guest.ok()) << i;
    EXPECT_EQ(*at_guest, in);

    Buffer out = in;
    out[0] = 0x02;  // retarget to the peer
    out[5] = 0x02;
    out[11] = 0x01;
    ASSERT_TRUE(cionet::SendOne(*world.transport, out).ok());
    world.device->Poll();
    world.clock.Advance(25'000);
    EXPECT_TRUE(cionet::ReceiveOne(*world.peer).ok()) << i;
  }
  EXPECT_EQ(world.transport->stats().auth_failures, 0u);
  EXPECT_TRUE(world.memory.violations().empty());
}

TEST(DdaDataPath, HostSeesOnlyCiphertextTlps) {
  DdaWorld world;
  ASSERT_TRUE(world.transport->Attest(world.secret).ok());
  std::string marker = "SUPER-SECRET-PAYLOAD-MARKER";
  ASSERT_TRUE(cionet::SendOne(*world.transport, world.ToGuest(marker)).ok());
  // Scan the whole host-visible mailbox for the plaintext.
  ciobase::MutableByteSpan all =
      world.shared->HostWindow(0, world.shared->size());
  std::string image(reinterpret_cast<const char*>(all.data()), all.size());
  EXPECT_EQ(image.find(marker), std::string::npos);
  // The host still sees TLP sizes and timings (and nothing more).
  world.device->Poll();
  EXPECT_GT(world.observability.CountOf(ciohost::ObsCategory::kPacketLength),
            0u);
  EXPECT_EQ(world.observability.CountOf(ciohost::ObsCategory::kCallType),
            0u);
}

TEST(DdaDataPath, TamperedTlpsDroppedNeverDeliveredCorrupted) {
  DdaWorld world;
  ASSERT_TRUE(world.transport->Attest(world.secret).ok());
  world.adversary.set_strategy(ciohost::AttackStrategy::kCorruptPayload);
  // The corrupting relay flips one byte per TLP; flips landing in the
  // (redundant, unused) record header are harmless, so drive several
  // frames: anything delivered must be bit-exact, and at least one flip
  // must have been caught by the IDE authentication.
  int delivered_intact = 0;
  for (int i = 0; i < 10; ++i) {
    Buffer in = world.ToGuest("to be mangled #" + std::to_string(i));
    ASSERT_TRUE(cionet::SendOne(*world.peer, in).ok());
    world.clock.Advance(25'000);
    world.device->Poll();
    auto received = cionet::ReceiveOne(*world.transport);
    if (received.ok()) {
      EXPECT_EQ(*received, in) << "corrupted frame delivered!";
      ++delivered_intact;
    }
  }
  EXPECT_GT(world.transport->stats().auth_failures, 0u);
  EXPECT_LT(delivered_intact, 10);
  EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobRead),
            0u);
}

TEST(DdaDataPath, LengthStormsAreStructurallyClamped) {
  DdaWorld world;
  ASSERT_TRUE(world.transport->Attest(world.secret).ok());
  world.adversary.set_strategy(ciohost::AttackStrategy::kUsedLenInflation);
  // The adversary inflates lengths through the device-side relay...
  ASSERT_TRUE(cionet::SendOne(*world.peer, world.ToGuest("x")).ok());
  world.clock.Advance(25'000);
  world.device->Poll();
  (void)cionet::ReceiveOne(*world.transport);
  // ...but TLP framing clamps them: no out-of-bounds access possible.
  EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobRead),
            0u);
}

// --- Engine-level ---------------------------------------------------------------

TEST(DdaProfile, EndToEndMessaging) {
  StackConfig client = StackConfig::DefaultsFor(StackProfile::kDirectDevice, 1);
  client.seed = 61;
  StackConfig server = client;
  server.node_id = 2;
  LinkedPair pair(client, server);
  ASSERT_TRUE(pair.Establish());
  Buffer message = BufferFromString("over attested silicon");
  ASSERT_TRUE(pair.client->SendMessage(message).ok());
  Buffer at_server;
  ASSERT_TRUE(pair.PumpUntil([&] {
    auto received = pair.server->ReceiveMessage();
    if (received.ok()) {
      at_server = *received;
      return true;
    }
    return false;
  }));
  EXPECT_EQ(at_server, message);
}

TEST(DdaProfile, TcbTradeoffIncludesDevice) {
  TcbReport dda = ProfileTcb(StackProfile::kDirectDevice);
  TcbReport dual = ProfileTcb(StackProfile::kDualBoundary);
  // The DDA driver is thin, but the stack AND the device firmware sit in
  // the app TCB: bigger than the dual-boundary app TCB.
  EXPECT_GT(dda.AppTcbLines(), dual.AppTcbLines());
  bool has_device = false;
  for (const auto& module : dda.app_tcb) {
    if (module.name == "attested-device") {
      has_device = true;
    }
  }
  EXPECT_TRUE(has_device);
}

TEST(DdaProfile, TrustModelTrustsDeviceNotHost) {
  auto model = ProfileTrustModel(StackProfile::kDirectDevice);
  EXPECT_TRUE(model.Trusts(ciotee::Actor::kApp, ciotee::Actor::kDevice));
  EXPECT_FALSE(model.Trusts(ciotee::Actor::kApp, ciotee::Actor::kHostSw));
}

}  // namespace
