// Tests for the hardening-commit study: dataset invariants match every
// number the paper prints, the classifier agrees with the manual labels,
// and the distribution tables carry the paper's key claims.

#include <gtest/gtest.h>

#include <cmath>

#include "src/study/classifier.h"
#include "src/study/dataset.h"

namespace {

using namespace ciostudy;  // NOLINT: test file

TEST(Dataset, NetvscMatchesFigure3) {
  const auto& commits = NetvscCommits();
  EXPECT_EQ(commits.size(), 28u);
  Distribution d = DistributionByLabel(commits);
  // Figure 3: checks 21%, init 18%, copies/races/restrict 14%, design 11%,
  // amend 7% (within rounding of the integer reconstruction).
  EXPECT_NEAR(d.Percent(HardeningCategory::kAddChecks), 21.0, 1.5);
  EXPECT_NEAR(d.Percent(HardeningCategory::kAddInit), 18.0, 1.0);
  EXPECT_NEAR(d.Percent(HardeningCategory::kAddCopies), 14.0, 1.0);
  EXPECT_NEAR(d.Percent(HardeningCategory::kRaceProtection), 14.0, 1.0);
  EXPECT_NEAR(d.Percent(HardeningCategory::kRestrictFeatures), 14.0, 1.0);
  EXPECT_NEAR(d.Percent(HardeningCategory::kDesignChange), 11.0, 1.0);
  EXPECT_NEAR(d.Percent(HardeningCategory::kAmendPrevious), 7.0, 1.0);
}

TEST(Dataset, VirtioMatchesFigure4) {
  const auto& commits = VirtioCommits();
  EXPECT_GT(commits.size(), 40u);  // "over 40 commits"
  Distribution d = DistributionByLabel(commits);
  EXPECT_NEAR(d.Percent(HardeningCategory::kAddChecks), 35.0, 1.0);
  EXPECT_NEAR(d.Percent(HardeningCategory::kAmendPrevious), 28.0, 1.0);
  // "...12 either revert or amend previous hardening changes."
  EXPECT_EQ(d.counts[static_cast<int>(HardeningCategory::kAmendPrevious)],
            12);
}

TEST(Dataset, KeyClaimHardeningIsErrorProne) {
  // The paper's first key observation: hardening is extremely error-prone —
  // the amend/revert share in virtio dwarfs netvsc's.
  Distribution virtio = DistributionByLabel(VirtioCommits());
  Distribution netvsc = DistributionByLabel(NetvscCommits());
  EXPECT_GT(virtio.Percent(HardeningCategory::kAmendPrevious),
            3 * netvsc.Percent(HardeningCategory::kAmendPrevious));
}

TEST(Dataset, CveSeriesCoversEveryYear) {
  const auto& series = NetRemoteCves();
  ASSERT_EQ(series.size(), 21u);  // 2002..2022
  EXPECT_EQ(series.front().year, 2002);
  EXPECT_EQ(series.back().year, 2022);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_EQ(series[i].year, series[i - 1].year + 1);
    EXPECT_GT(series[i].remote_cves, 0);  // "year not present = no CVEs"
  }
  // The recent half outweighs the early half (ever-growing attack surface).
  int early = 0;
  int late = 0;
  for (const auto& [year, count] : series) {
    (year <= 2012 ? early : late) += count;
  }
  EXPECT_GT(late, early);
}

TEST(Dataset, NetGrowthAveragesTwentyPercentPerMajor) {
  const auto& growth = NetSubsystemGrowth();
  ASSERT_GE(growth.size(), 3u);
  double first = growth.front().kloc;
  double last = growth.back().kloc;
  double steps = static_cast<double>(growth.size() - 1);
  double per_step = std::pow(last / first, 1.0 / steps) - 1.0;
  // ~+10% per listed step, ~+20% per major version (two steps/major here).
  EXPECT_GT(per_step, 0.05);
  EXPECT_LT(per_step, 0.30);
}

TEST(Classifier, AgreesWithManualLabels) {
  EXPECT_GE(ClassifierAccuracy(NetvscCommits()), 0.9);
  EXPECT_GE(ClassifierAccuracy(VirtioCommits()), 0.9);
}

TEST(Classifier, RevertOfCheckIsAmendment) {
  EXPECT_EQ(ClassifySubject("Revert \"virtio_ring: validate used length\""),
            HardeningCategory::kAmendPrevious);
  EXPECT_EQ(ClassifySubject("virtio_ring: validate used length"),
            HardeningCategory::kAddChecks);
}

TEST(Classifier, CategoryKeywordsResolve) {
  EXPECT_EQ(ClassifySubject("driver: zero-initialize completion data"),
            HardeningCategory::kAddInit);
  EXPECT_EQ(ClassifySubject("driver: copy header before parsing"),
            HardeningCategory::kAddCopies);
  EXPECT_EQ(ClassifySubject("driver: fix race on shared flags"),
            HardeningCategory::kRaceProtection);
  EXPECT_EQ(ClassifySubject("driver: disable legacy mode"),
            HardeningCategory::kRestrictFeatures);
  EXPECT_EQ(ClassifySubject("driver: rework rx path"),
            HardeningCategory::kDesignChange);
}

TEST(Tables, DistributionTableShowsSortedPercentages) {
  std::string table = DistributionTable(
      "virtio", DistributionByLabel(VirtioCommits()));
  EXPECT_NE(table.find("add-checks"), std::string::npos);
  EXPECT_NE(table.find("34.9%"), std::string::npos);
  // Sorted: checks line appears before the single add-init line.
  EXPECT_LT(table.find("add-checks"), table.find("add-init"));
}

TEST(Tables, CveAndGrowthTablesRender) {
  EXPECT_NE(CveTable().find("2022"), std::string::npos);
  EXPECT_NE(GrowthTable().find("KLoC"), std::string::npos);
}

}  // namespace
