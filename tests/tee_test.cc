// Tests for the simulated TEE: memory-domain policing, TOCTOU tamper hooks,
// compartment isolation (grants, stale handles), attestation, and the
// ternary trust model.

#include <gtest/gtest.h>

#include "src/base/clock.h"
#include "src/tee/attestation.h"
#include "src/tee/compartment.h"
#include "src/tee/memory.h"
#include "src/tee/shared_region.h"
#include "src/tee/trust.h"

namespace {

using ciobase::Buffer;
using ciobase::ByteSpan;
using ciobase::MutableByteSpan;
using namespace ciotee;  // NOLINT: test file

TEST(TeeMemory, GuestReadsOwnPrivatePlaintext) {
  TeeMemory memory;
  RegionId region = memory.AddRegion(RegionKind::kGuestPrivate, 64, "priv");
  Buffer data = {1, 2, 3, 4};
  ASSERT_TRUE(memory.Write(Domain::kGuest, region, 0, data).ok());
  Buffer out(4);
  ASSERT_TRUE(memory.Read(Domain::kGuest, region, 0, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_TRUE(memory.violations().empty());
}

TEST(TeeMemory, HostReadOfPrivateSeesCiphertext) {
  TeeMemory memory;
  RegionId region = memory.AddRegion(RegionKind::kGuestPrivate, 64, "priv");
  Buffer secret = {'s', 'e', 'c', 'r', 'e', 't'};
  ASSERT_TRUE(memory.Write(Domain::kGuest, region, 0, secret).ok());
  Buffer leaked(6);
  auto status = memory.Read(Domain::kHost, region, 0, leaked);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(leaked, secret);  // scrambled, not plaintext
  EXPECT_EQ(memory.ViolationCount(ViolationKind::kPrivateRead), 1u);
}

TEST(TeeMemory, HostWriteToPrivateBlocked) {
  TeeMemory memory;
  RegionId region = memory.AddRegion(RegionKind::kGuestPrivate, 64, "priv");
  Buffer evil = {0xff};
  EXPECT_FALSE(memory.Write(Domain::kHost, region, 0, evil).ok());
  EXPECT_EQ(memory.ViolationCount(ViolationKind::kPrivateWrite), 1u);
  Buffer out(1);
  ASSERT_TRUE(memory.Read(Domain::kGuest, region, 0, out).ok());
  EXPECT_EQ(out[0], 0);  // untouched
}

TEST(TeeMemory, SharedIsReadWriteBothSides) {
  TeeMemory memory;
  RegionId region = memory.AddRegion(RegionKind::kShared, 64, "shared");
  Buffer data = {9, 9};
  ASSERT_TRUE(memory.Write(Domain::kHost, region, 0, data).ok());
  Buffer out(2);
  ASSERT_TRUE(memory.Read(Domain::kGuest, region, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST(TeeMemory, OobAccessClampedAndRecorded) {
  TeeMemory memory;
  RegionId region = memory.AddRegion(RegionKind::kShared, 16, "shared");
  Buffer out(32);
  auto status = memory.Read(Domain::kGuest, region, 8, out);
  EXPECT_EQ(status.code(), ciobase::StatusCode::kOutOfRange);
  EXPECT_EQ(memory.ViolationCount(ViolationKind::kOobRead), 1u);
  Buffer big(32, 1);
  EXPECT_FALSE(memory.Write(Domain::kGuest, region, 8, big).ok());
  EXPECT_EQ(memory.ViolationCount(ViolationKind::kOobWrite), 1u);
}

TEST(TeeMemory, RawWindowRespectsBounds) {
  TeeMemory memory;
  RegionId region = memory.AddRegion(RegionKind::kShared, 64, "shared");
  EXPECT_EQ(memory.RawWindow(Domain::kGuest, region, 0, 64).size(), 64u);
  EXPECT_TRUE(memory.RawWindow(Domain::kGuest, region, 32, 64).empty());
  EXPECT_TRUE(
      memory.RawWindow(Domain::kHost, region, ~0ULL - 3, 8).empty());
}

TEST(SharedRegion, TamperHookRunsOnEveryGuestAccess) {
  TeeMemory memory;
  SharedRegion shared(&memory, 64, "ring");
  int fires = 0;
  shared.SetTamperHook([&](MutableByteSpan bytes) {
    ++fires;
    bytes[0] = static_cast<uint8_t>(fires);
  });
  EXPECT_EQ(shared.GuestReadU8(0), 1);
  EXPECT_EQ(shared.GuestReadU8(0), 2);  // double fetch sees a new value
  EXPECT_EQ(fires, 2);
}

TEST(SharedRegion, SingleFetchDefeatsDoubleFetchFlip) {
  // The paper's "copy as a first-class citizen": one fetch into private
  // memory means validation and use see the same bytes even under attack.
  TeeMemory memory;
  SharedRegion shared(&memory, 64, "ring");
  shared.GuestWriteLe32(0, 100);  // honest length
  bool flip = false;
  shared.SetTamperHook([&](MutableByteSpan bytes) {
    flip = !flip;
    ciobase::StoreLe32(bytes.data(), flip ? 100 : 0xffffffff);
  });
  uint32_t snapshot = shared.GuestReadLe32(0);  // single fetch
  // Whatever value it got, validating and using `snapshot` is consistent.
  uint32_t validated = snapshot;
  uint32_t used = snapshot;
  EXPECT_EQ(validated, used);
  // In-place re-read (the unhardened pattern) diverges:
  uint32_t second = shared.GuestReadLe32(0);
  EXPECT_NE(snapshot, second);
}

TEST(Compartment, GrantedAccessWorks) {
  ciobase::SimClock clock;
  ciobase::CostModel costs(&clock);
  CompartmentManager mgr(&costs);
  CompartmentId app = mgr.Create("app", 4096);
  CompartmentId io = mgr.Create("io", 4096);
  mgr.GrantAccess(app, io);  // app may touch io's buffers

  auto handle = mgr.Allocate(app, io, 128);
  ASSERT_TRUE(handle.ok());
  auto span = mgr.Access(app, *handle);
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span->size(), 128u);
  (*span)[0] = 42;
  auto io_view = mgr.Access(io, *handle);  // owner always has access
  ASSERT_TRUE(io_view.ok());
  EXPECT_EQ((*io_view)[0], 42);
}

TEST(Compartment, UngrantedAccessDeniedAndRecorded) {
  ciobase::SimClock clock;
  ciobase::CostModel costs(&clock);
  CompartmentManager mgr(&costs);
  CompartmentId app = mgr.Create("app", 4096);
  CompartmentId io = mgr.Create("io", 4096);
  // The ternary model: io (untrusted by app) gets NO grant to app memory.
  auto secret = mgr.Allocate(app, app, 64);
  ASSERT_TRUE(secret.ok());
  auto attempt = mgr.Access(io, *secret);
  EXPECT_FALSE(attempt.ok());
  EXPECT_EQ(attempt.status().code(), ciobase::StatusCode::kPermissionDenied);
  ASSERT_EQ(mgr.violations().size(), 1u);
  EXPECT_EQ(mgr.violations()[0].accessor, io);
}

TEST(Compartment, StaleHandleRejected) {
  ciobase::SimClock clock;
  ciobase::CostModel costs(&clock);
  CompartmentManager mgr(&costs);
  CompartmentId io = mgr.Create("io", 4096);
  auto handle = mgr.Allocate(io, io, 64);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(mgr.Free(io, *handle).ok());
  auto use_after_free = mgr.Access(io, *handle);
  EXPECT_FALSE(use_after_free.ok());
  EXPECT_FALSE(mgr.Free(io, *handle).ok());  // double free rejected
}

TEST(Compartment, SwitchChargesCost) {
  ciobase::SimClock clock;
  ciobase::CostModel costs(&clock);
  CompartmentManager mgr(&costs);
  CompartmentId a = mgr.Create("a", 64);
  CompartmentId b = mgr.Create("b", 64);
  mgr.SwitchTo(b);
  mgr.SwitchTo(a);
  mgr.SwitchTo(a);  // no-op
  EXPECT_EQ(mgr.switch_count(), 2u);
  EXPECT_EQ(costs.counter("compartment_switches"), 2u);
}

TEST(Attestation, IssueVerifyRoundTrip) {
  Buffer platform_key = {1, 2, 3, 4};
  AttestationAuthority authority(platform_key);
  Buffer config = {0x10, 0x20};
  Measurement m = Measure("cio-l2-transport-v1", config);
  Buffer nonce = {9, 9, 9, 9, 9, 9, 9, 9};
  AttestationReport report = authority.Issue(m, nonce);
  EXPECT_TRUE(authority.Verify(report, m, nonce).ok());
}

TEST(Attestation, DetectsWrongMeasurementNonceAndForgery) {
  Buffer platform_key = {1, 2, 3, 4};
  AttestationAuthority authority(platform_key);
  Measurement m = Measure("code", {});
  Buffer nonce = {1, 2, 3};
  AttestationReport report = authority.Issue(m, nonce);

  Measurement other = Measure("evil code", {});
  EXPECT_FALSE(authority.Verify(report, other, nonce).ok());

  Buffer stale_nonce = {3, 2, 1};
  EXPECT_FALSE(authority.Verify(report, m, stale_nonce).ok());

  AttestationReport forged = report;
  forged.measurement = other;  // MAC no longer matches
  EXPECT_FALSE(authority.Verify(forged, other, nonce).ok());

  AttestationAuthority wrong_key(Buffer{9, 9});
  EXPECT_FALSE(wrong_key.Verify(report, m, nonce).ok());
}

TEST(Attestation, SerializeParseRoundTrip) {
  AttestationAuthority authority(Buffer{5});
  Measurement m = Measure("x", {});
  Buffer nonce = {7, 7};
  AttestationReport report = authority.Issue(m, nonce);
  Buffer wire = report.Serialize();
  auto parsed = AttestationReport::Parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(authority.Verify(*parsed, m, nonce).ok());
  // Truncation rejected.
  EXPECT_FALSE(
      AttestationReport::Parse(ByteSpan(wire.data(), wire.size() - 1)).ok());
}

TEST(TrustModel, ConfigDifferenceCHangesMeasurement) {
  Buffer config_a = {1};
  Buffer config_b = {2};
  EXPECT_NE(Measure("same-code", config_a), Measure("same-code", config_b));
}

TEST(TrustModel, BinaryModelTrustsStack) {
  TrustModel binary = TrustModel::Binary();
  EXPECT_TRUE(binary.Trusts(Actor::kApp, Actor::kIoStack));
  EXPECT_FALSE(binary.Trusts(Actor::kApp, Actor::kHostSw));
  EXPECT_TRUE(binary.MutualDistrust(Actor::kIoStack, Actor::kHostSw));
  // No boundary needed between app and stack: single trusted unit.
  EXPECT_FALSE(binary.BoundaryRequired(Actor::kIoStack, Actor::kApp));
}

TEST(TrustModel, TernaryModelIsSingleDistrustAtL5) {
  TrustModel ternary = TrustModel::Ternary();
  // The app must treat stack data as adversarial...
  EXPECT_TRUE(ternary.BoundaryRequired(Actor::kIoStack, Actor::kApp));
  // ...but the stack trusts the app (single distrust, not mutual).
  EXPECT_FALSE(ternary.MutualDistrust(Actor::kApp, Actor::kIoStack));
  EXPECT_TRUE(ternary.Trusts(Actor::kIoStack, Actor::kApp));
  // Host remains mutually distrusted by everyone inside.
  EXPECT_TRUE(ternary.MutualDistrust(Actor::kApp, Actor::kHostSw));
  EXPECT_TRUE(ternary.MutualDistrust(Actor::kIoStack, Actor::kHostSw));
}

TEST(TrustModel, AttestedDeviceJoinsTcb) {
  TrustModel dda = TrustModel::TernaryWithAttestedDevice();
  EXPECT_TRUE(dda.Trusts(Actor::kApp, Actor::kDevice));
  EXPECT_FALSE(dda.Trusts(Actor::kApp, Actor::kHostSw));
}

}  // namespace
