// Unit tests for wire formats, checksums, ARP, IPv4 fragmentation and UDP.

#include <gtest/gtest.h>

#include "src/base/clock.h"
#include "src/base/rng.h"
#include "src/net/arp.h"
#include "src/net/ipv4.h"
#include "src/net/udp.h"
#include "src/net/wire.h"

namespace {

using ciobase::Buffer;
using ciobase::ByteSpan;
using namespace cionet;  // NOLINT: test file

TEST(Addresses, MacFormatting) {
  MacAddress mac = MacAddress::FromId(0x01020304);
  EXPECT_EQ(mac.ToString(), "02:00:01:02:03:04");
  EXPECT_TRUE(MacAddress::Broadcast().IsBroadcast());
  EXPECT_FALSE(mac.IsBroadcast());
}

TEST(Addresses, Ipv4Formatting) {
  Ipv4Address ip = Ipv4Address::FromOctets(192, 168, 1, 42);
  EXPECT_EQ(ip.ToString(), "192.168.1.42");
  EXPECT_EQ(ip.value, 0xc0a8012au);
}

TEST(Ethernet, RoundTrip) {
  EthernetHeader header{MacAddress::FromId(1), MacAddress::FromId(2),
                        kEtherTypeIpv4};
  Buffer frame;
  header.Serialize(frame);
  ASSERT_EQ(frame.size(), kEthernetHeaderSize);
  auto parsed = EthernetHeader::Parse(frame);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->dst, header.dst);
  EXPECT_EQ(parsed->src, header.src);
  EXPECT_EQ(parsed->ether_type, kEtherTypeIpv4);
  EXPECT_FALSE(EthernetHeader::Parse(ByteSpan(frame.data(), 13)).ok());
}

TEST(Checksum, Rfc1071Example) {
  // Classic example: 0x0001f203f4f5f6f7 -> checksum 0x220d.
  Buffer data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InternetChecksum(data), 0x220d);
}

TEST(Checksum, VerifiesToZero) {
  ciobase::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    Buffer data = rng.Bytes(rng.NextInRange(2, 100));
    uint16_t checksum = InternetChecksum(data);
    // Append the checksum and re-sum: must verify to 0 for even lengths.
    if (data.size() % 2 == 0) {
      Buffer with = data;
      with.push_back(static_cast<uint8_t>(checksum >> 8));
      with.push_back(static_cast<uint8_t>(checksum));
      EXPECT_EQ(InternetChecksum(with), 0);
    }
  }
}

TEST(Ipv4, HeaderRoundTripAndChecksum) {
  Ipv4Header header;
  header.total_length = 40;
  header.identification = 7;
  header.protocol = kIpProtoTcp;
  header.src = Ipv4Address::FromOctets(10, 0, 0, 1);
  header.dst = Ipv4Address::FromOctets(10, 0, 0, 2);
  Buffer packet;
  header.Serialize(packet);
  packet.resize(40);  // pad to declared size
  auto parsed = Ipv4Header::Parse(packet);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->src, header.src);
  EXPECT_EQ(parsed->dst, header.dst);
  EXPECT_EQ(parsed->protocol, kIpProtoTcp);

  packet[15] ^= 0xff;  // corrupt a header byte
  auto corrupted = Ipv4Header::Parse(packet);
  EXPECT_FALSE(corrupted.ok());
  EXPECT_EQ(corrupted.status().code(), ciobase::StatusCode::kTampered);
}

TEST(Ipv4, RejectsBadGeometry) {
  Buffer short_packet(10, 0);
  EXPECT_FALSE(Ipv4Header::Parse(short_packet).ok());
  Ipv4Header header;
  header.total_length = 20;
  header.src = Ipv4Address::FromOctets(1, 1, 1, 1);
  header.dst = Ipv4Address::FromOctets(2, 2, 2, 2);
  Buffer packet;
  header.Serialize(packet);
  packet[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::Parse(packet).ok());
}

TEST(Ipv4Fragmentation, SmallPayloadUnfragmented) {
  Ipv4Header header;
  header.protocol = kIpProtoUdp;
  header.src = Ipv4Address::FromOctets(1, 1, 1, 1);
  header.dst = Ipv4Address::FromOctets(2, 2, 2, 2);
  ciobase::Rng rng(2);
  Buffer payload = rng.Bytes(100);
  auto packets = FragmentIpv4(header, payload, 1500);
  ASSERT_EQ(packets.size(), 1u);
  auto parsed = Ipv4Header::Parse(packets[0]);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->flags_fragment, 0);
}

class FragmentReassembleTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FragmentReassembleTest, RoundTrip) {
  Ipv4Header header;
  header.protocol = kIpProtoUdp;
  header.identification = 99;
  header.src = Ipv4Address::FromOctets(1, 1, 1, 1);
  header.dst = Ipv4Address::FromOctets(2, 2, 2, 2);
  ciobase::Rng rng(GetParam());
  Buffer payload = rng.Bytes(GetParam());
  auto packets = FragmentIpv4(header, payload, 1500);
  if (GetParam() + kIpv4HeaderSize > 1500) {
    EXPECT_GT(packets.size(), 1u);
  }
  ciobase::SimClock clock;
  Ipv4Reassembler reassembler(&clock);
  std::optional<ReassembledDatagram> result;
  for (const auto& packet : packets) {
    auto parsed = Ipv4Header::Parse(packet);
    ASSERT_TRUE(parsed.ok());
    result = reassembler.Add(*parsed,
                             ByteSpan(packet).subspan(kIpv4HeaderSize));
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->payload, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FragmentReassembleTest,
                         ::testing::Values(10, 1480, 1481, 3000, 8000, 20000));

TEST(Ipv4Reassembly, OutOfOrderFragments) {
  Ipv4Header header;
  header.protocol = kIpProtoUdp;
  header.identification = 5;
  header.src = Ipv4Address::FromOctets(1, 1, 1, 1);
  header.dst = Ipv4Address::FromOctets(2, 2, 2, 2);
  ciobase::Rng rng(11);
  Buffer payload = rng.Bytes(4000);
  auto packets = FragmentIpv4(header, payload, 1500);
  ASSERT_GE(packets.size(), 3u);
  std::reverse(packets.begin(), packets.end());
  ciobase::SimClock clock;
  Ipv4Reassembler reassembler(&clock);
  std::optional<ReassembledDatagram> result;
  for (const auto& packet : packets) {
    auto parsed = Ipv4Header::Parse(packet);
    ASSERT_TRUE(parsed.ok());
    result = reassembler.Add(*parsed,
                             ByteSpan(packet).subspan(kIpv4HeaderSize));
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->payload, payload);
}

TEST(Ipv4Reassembly, TimeoutDropsStaleState) {
  Ipv4Header header;
  header.protocol = kIpProtoUdp;
  header.identification = 5;
  header.flags_fragment = kIpv4FlagMoreFragments;
  header.src = Ipv4Address::FromOctets(1, 1, 1, 1);
  header.dst = Ipv4Address::FromOctets(2, 2, 2, 2);
  ciobase::SimClock clock;
  Ipv4Reassembler reassembler(&clock);
  Buffer fragment(64, 1);
  EXPECT_FALSE(reassembler.Add(header, fragment).has_value());
  EXPECT_EQ(reassembler.pending(), 1u);
  clock.Advance(Ipv4Reassembler::kTimeoutNs + 1);
  reassembler.Expire();
  EXPECT_EQ(reassembler.pending(), 0u);
}

TEST(Ipv4Reassembly, HostileGeometryDropped) {
  // Fragment claiming to end past 64 KiB must be discarded entirely.
  Ipv4Header header;
  header.protocol = kIpProtoUdp;
  header.identification = 6;
  header.flags_fragment = 0x1fff;  // max offset
  header.src = Ipv4Address::FromOctets(1, 1, 1, 1);
  header.dst = Ipv4Address::FromOctets(2, 2, 2, 2);
  ciobase::SimClock clock;
  Ipv4Reassembler reassembler(&clock);
  Buffer fragment(4000, 1);  // 0x1fff*8 + 4000 > 65535
  EXPECT_FALSE(reassembler.Add(header, fragment).has_value());
  EXPECT_EQ(reassembler.pending(), 0u);
}

TEST(Udp, BuildParseRoundTrip) {
  Ipv4Address src = Ipv4Address::FromOctets(10, 0, 0, 1);
  Ipv4Address dst = Ipv4Address::FromOctets(10, 0, 0, 2);
  Buffer payload = ciobase::BufferFromString("datagram");
  Buffer datagram = BuildUdpDatagram(src, dst, 1111, 2222, payload);
  auto parsed = ParseUdpDatagram(src, dst, datagram);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header.src_port, 1111);
  EXPECT_EQ(parsed->header.dst_port, 2222);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(Udp, ChecksumCatchesCorruption) {
  Ipv4Address src = Ipv4Address::FromOctets(10, 0, 0, 1);
  Ipv4Address dst = Ipv4Address::FromOctets(10, 0, 0, 2);
  Buffer datagram = BuildUdpDatagram(src, dst, 1, 2,
                                     ciobase::BufferFromString("xyz"));
  datagram.back() ^= 0x01;
  auto parsed = ParseUdpDatagram(src, dst, datagram);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), ciobase::StatusCode::kTampered);
}

TEST(Tcp, HeaderRoundTripWithMss) {
  TcpHeader header;
  header.src_port = 80;
  header.dst_port = 5000;
  header.seq = 0x11223344;
  header.ack = 0x55667788;
  header.flags = kTcpFlagSyn | kTcpFlagAck;
  header.window = 4096;
  header.mss_option = 1460;
  Buffer segment;
  header.Serialize(segment);
  ASSERT_EQ(segment.size(), 24u);
  auto parsed = TcpHeader::Parse(segment);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->seq, header.seq);
  EXPECT_EQ(parsed->ack, header.ack);
  EXPECT_EQ(parsed->flags, header.flags);
  EXPECT_EQ(parsed->mss_option, 1460);
}

TEST(Tcp, RejectsBadOptions) {
  TcpHeader header;
  header.mss_option = 1460;
  Buffer segment;
  header.Serialize(segment);
  segment[21] = 0;  // option length 0
  EXPECT_FALSE(TcpHeader::Parse(segment).ok());
  segment[21] = 40;  // option length beyond header
  EXPECT_FALSE(TcpHeader::Parse(segment).ok());
}

TEST(Tcp, SeqArithmeticWraps) {
  EXPECT_TRUE(SeqLt(0xfffffff0u, 0x10u));  // wrapped compare
  EXPECT_TRUE(SeqGt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(SeqLe(5, 5));
  EXPECT_TRUE(SeqGe(5, 5));
  EXPECT_FALSE(SeqLt(5, 5));
}

TEST(Arp, RequestReplyCycle) {
  ciobase::SimClock clock;
  MacAddress mac_a = MacAddress::FromId(1);
  MacAddress mac_b = MacAddress::FromId(2);
  Ipv4Address ip_a = Ipv4Address::FromOctets(10, 0, 0, 1);
  Ipv4Address ip_b = Ipv4Address::FromOctets(10, 0, 0, 2);
  ArpCache cache_a(&clock, mac_a, ip_a);
  ArpCache cache_b(&clock, mac_b, ip_b);

  Buffer request = cache_a.MakeRequestFrame(ip_b);
  auto reply = cache_b.HandlePacket(
      ByteSpan(request).subspan(kEthernetHeaderSize));
  ASSERT_TRUE(reply.has_value());
  // B learned A from the request.
  ASSERT_TRUE(cache_b.Lookup(ip_a).has_value());
  EXPECT_EQ(*cache_b.Lookup(ip_a), mac_a);
  // A learns B from the reply.
  auto no_reply = cache_a.HandlePacket(
      ByteSpan(*reply).subspan(kEthernetHeaderSize));
  EXPECT_FALSE(no_reply.has_value());
  ASSERT_TRUE(cache_a.Lookup(ip_b).has_value());
  EXPECT_EQ(*cache_a.Lookup(ip_b), mac_b);
}

TEST(Arp, EntriesExpire) {
  ciobase::SimClock clock;
  ArpCache cache(&clock, MacAddress::FromId(1),
                 Ipv4Address::FromOctets(10, 0, 0, 1));
  Ipv4Address ip = Ipv4Address::FromOctets(10, 0, 0, 9);
  cache.Insert(ip, MacAddress::FromId(9));
  EXPECT_TRUE(cache.Lookup(ip).has_value());
  clock.Advance(ArpCache::kEntryTtlNs + 1);
  EXPECT_FALSE(cache.Lookup(ip).has_value());
}

}  // namespace
