// Tests for the L5 single-distrust channel and its async SQ/CQ datapath:
// trusted-component-allocates semantics, zero-copy submission through the
// registered slot pool, copy vs revoke vs sealed receive accounting at
// harvest time, boundary-kind cost accounting, and the grant-matrix
// direction (app may touch I/O memory, never vice versa).

#include <gtest/gtest.h>

#include <memory>

#include "src/base/rng.h"
#include "src/cio/l5_channel.h"
#include "src/net/fabric.h"

namespace {

using ciobase::Buffer;
using ciobase::BufferFromString;
using namespace cio;  // NOLINT: test file

// An L5 world: a NetStack in the "io" compartment talking over a direct
// fabric to a plain peer stack.
struct L5World {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  cionet::Fabric fabric{&clock, 31};
  cionet::DirectFabricPort port_io{&fabric, "io",
                                   cionet::MacAddress::FromId(1)};
  cionet::DirectFabricPort port_peer{&fabric, "peer",
                                     cionet::MacAddress::FromId(2)};
  std::unique_ptr<cionet::NetStack> io_stack;
  std::unique_ptr<cionet::NetStack> peer_stack;
  ciotee::CompartmentManager compartments{&costs};
  ciotee::CompartmentId app = compartments.Create("app", 1 << 20);
  ciotee::CompartmentId io = compartments.Create("io", 1 << 20);
  std::unique_ptr<L5Channel> l5;

  explicit L5World(L5ReceiveMode mode = L5ReceiveMode::kCopy,
                   L5BoundaryKind kind = L5BoundaryKind::kCompartment) {
    cionet::NetStack::Config config_io;
    config_io.ip = cionet::Ipv4Address::FromOctets(10, 0, 0, 1);
    cionet::NetStack::Config config_peer;
    config_peer.ip = cionet::Ipv4Address::FromOctets(10, 0, 0, 2);
    config_peer.seed = 5;
    io_stack = std::make_unique<cionet::NetStack>(&port_io, &clock,
                                                  config_io);
    peer_stack = std::make_unique<cionet::NetStack>(&port_peer, &clock,
                                                    config_peer);
    compartments.GrantAccess(app, io);
    l5 = std::make_unique<L5Channel>(&compartments, app, io,
                                     io_stack.get(), &costs, mode, kind);
  }

  // Establishes l5-listener <- peer-connect; returns (l5 server socket,
  // peer client socket).
  std::pair<cionet::SocketId, cionet::SocketId> Establish() {
    auto listener = l5->Listen(80);
    EXPECT_TRUE(listener.ok());
    auto client = peer_stack->TcpConnect(
        cionet::Ipv4Address::FromOctets(10, 0, 0, 1), 80);
    EXPECT_TRUE(client.ok());
    cionet::SocketId server{};
    for (int i = 0; i < 1000; ++i) {
      peer_stack->Poll();
      (void)l5->Poll();
      clock.Advance(5'000);
      auto accepted = l5->Accept(*listener);
      if (accepted.ok()) {
        server = *accepted;
        break;
      }
    }
    return {server, *client};
  }

  void Pump(int rounds = 50) {
    for (int i = 0; i < rounds; ++i) {
      peer_stack->Poll();
      (void)l5->Poll();
      clock.Advance(5'000);
    }
  }

  // Test sugar over the submit-and-reap ReceiveOne entry point.
  ciobase::Result<Buffer> Receive(cionet::SocketId socket, size_t max_bytes) {
    Buffer out;
    auto got = l5->ReceiveOne(socket, max_bytes, out);
    if (!got.ok()) {
      return got.status();
    }
    return out;
  }
};

TEST(L5Channel, QueuesComeUpWithDefaultGeometry) {
  L5World world;
  EXPECT_TRUE(world.l5->queues_ready());
  EXPECT_EQ(world.l5->queue_config().sq_entries, 64u);
  EXPECT_EQ(world.l5->free_slots(), world.l5->queue_config().pool_slots);
}

TEST(L5Channel, SendIsZeroCopyThroughRegisteredSlots) {
  L5World world;
  auto [server, client] = world.Establish();
  Buffer data = BufferFromString("through the io heap");
  uint64_t copies_before = world.costs.counter("bytes_copied");
  auto sent = world.l5->SendOne(server, data);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(*sent, data.size());
  // No boundary copy was charged on send: the payload went into a
  // pre-registered pool slot the stack consumes in place.
  EXPECT_EQ(world.costs.counter("bytes_copied"), copies_before);
  EXPECT_GE(world.l5->stats().sq_submitted, 1u);
  EXPECT_GE(world.l5->stats().doorbells, 1u);
  world.Pump();
  uint8_t buf[64];
  auto got = world.peer_stack->TcpReceive(client, buf);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ciobase::StringFromBytes(ciobase::ByteSpan(buf, *got)),
            "through the io heap");
}

TEST(L5Channel, CopyReceiveChargesCopyAtHarvest) {
  L5World world(L5ReceiveMode::kCopy);
  auto [server, client] = world.Establish();
  ASSERT_TRUE(
      world.peer_stack->TcpSend(client, BufferFromString("payload")).ok());
  world.Pump();
  uint64_t copies_before = world.costs.counter("bytes_copied");
  auto received = world.Receive(server, 64);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(ciobase::StringFromBytes(*received), "payload");
  EXPECT_GT(world.costs.counter("bytes_copied"), copies_before);
  EXPECT_EQ(world.l5->stats().receive_copies, 1u);
}

TEST(L5Channel, RevokeReceiveChargesPagesAndTransfersOwnership) {
  L5World world(L5ReceiveMode::kRevoke);
  auto [server, client] = world.Establish();
  ASSERT_TRUE(
      world.peer_stack->TcpSend(client, BufferFromString("payload")).ok());
  world.Pump();
  auto received = world.Receive(server, 64);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(ciobase::StringFromBytes(*received), "payload");
  EXPECT_GT(world.costs.counter("pages_unshared"), 0u);
  EXPECT_EQ(world.l5->stats().receive_revocations, 1u);
}

TEST(L5Channel, SealedReceiveChargesNeitherCopiesNorPages) {
  L5World world(L5ReceiveMode::kSealed);
  auto [server, client] = world.Establish();
  ASSERT_TRUE(
      world.peer_stack->TcpSend(client, BufferFromString("payload")).ok());
  world.Pump();
  uint64_t copies_before = world.costs.counter("bytes_copied");
  uint64_t pages_before = world.costs.counter("pages_unshared");
  auto received = world.Receive(server, 64);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(ciobase::StringFromBytes(*received), "payload");
  // Sealed payloads are authenticated above this layer; harvest is free.
  EXPECT_EQ(world.costs.counter("bytes_copied"), copies_before);
  EXPECT_EQ(world.costs.counter("pages_unshared"), pages_before);
  EXPECT_EQ(world.l5->stats().receive_copies, 0u);
  EXPECT_EQ(world.l5->stats().receive_revocations, 0u);
}

TEST(L5Channel, EmptyReceiveReturnsEmptyBuffer) {
  L5World world;
  auto [server, client] = world.Establish();
  (void)client;
  auto received = world.Receive(server, 64);
  ASSERT_TRUE(received.ok());
  EXPECT_TRUE(received->empty());
}

TEST(L5Channel, CrossingsAreCountedAndCharged) {
  L5World world;
  auto [server, client] = world.Establish();
  (void)client;
  uint64_t before = world.l5->stats().crossings;
  (void)world.l5->SendOne(server, BufferFromString("x"));
  (void)world.Receive(server, 16);
  (void)world.l5->Poll();
  EXPECT_GE(world.l5->stats().crossings, before + 3);
  EXPECT_GT(world.costs.counter("compartment_switches"), 0u);
  EXPECT_EQ(world.costs.counter("tee_switches"), 0u);
}

TEST(L5Channel, BatchedSubmissionSharesOneDoorbell) {
  // The point of the SQ: N messages submitted back to back cross the
  // boundary once, not N times.
  L5World world;
  auto [server, client] = world.Establish();
  (void)client;
  uint64_t crossings_before = world.l5->stats().crossings;
  Buffer payload(512, 0xab);
  for (int i = 0; i < 8; ++i) {
    L5Channel::MessageWriter writer;
    ASSERT_TRUE(
        world.l5->BeginMessage(server, payload.size(), false, writer));
    ciobase::MutableByteSpan span = writer.NextSpan(payload.size());
    ASSERT_GE(span.size(), payload.size());
    std::copy(payload.begin(), payload.end(), span.begin());
    writer.Commit(payload.size());
    world.l5->SubmitMessage(writer);
  }
  EXPECT_EQ(world.l5->stats().crossings, crossings_before);  // no crossing yet
  ASSERT_TRUE(world.l5->Doorbell().ok());
  EXPECT_EQ(world.l5->stats().crossings, crossings_before + 1);
  EXPECT_GE(world.l5->stats().sq_submitted, 8u);
}

TEST(L5Channel, DualTeeBoundaryChargesTeeSwitches) {
  L5World world(L5ReceiveMode::kCopy, L5BoundaryKind::kDualTee);
  auto [server, client] = world.Establish();
  (void)client;
  (void)world.l5->SendOne(server, BufferFromString("x"));
  EXPECT_GT(world.costs.counter("tee_switches"), 0u);
}

TEST(L5Channel, IoCompartmentCannotTouchAppAllocations) {
  // The direction of the grant matrix: app -> io yes, io -> app never.
  L5World world;
  auto secret = world.compartments.Allocate(world.app, world.app, 32);
  ASSERT_TRUE(secret.ok());
  EXPECT_FALSE(world.compartments.Access(world.io, *secret).ok());
  // And the io compartment cannot even allocate in the app's heap.
  EXPECT_FALSE(world.compartments.Allocate(world.io, world.app, 32).ok());
}

TEST(L5Channel, OwnershipTransferRevokesOldOwner) {
  L5World world;
  auto handle = world.compartments.Allocate(world.app, world.io, 64);
  ASSERT_TRUE(handle.ok());
  // Initially the io compartment (owner) can access its own buffer.
  EXPECT_TRUE(world.compartments.Access(world.io, *handle).ok());
  // The app revokes it (L5 revocation): io's access dies, app's remains.
  ASSERT_TRUE(
      world.compartments.Transfer(world.app, *handle, world.app).ok());
  EXPECT_FALSE(world.compartments.Access(world.io, *handle).ok());
  EXPECT_TRUE(world.compartments.Access(world.app, *handle).ok());
}

TEST(L5Channel, SlotsForMessageMatchesWriterConsumption) {
  // The public estimate and the writer must agree, or BeginMessage would
  // reserve the wrong number of slots.
  for (size_t payload : {size_t{1}, size_t{100}, size_t{4096}, size_t{9000},
                         size_t{16384}, size_t{24000}}) {
    size_t plain = L5Channel::SlotsForMessage(payload, false, 4096);
    EXPECT_EQ(plain, (12 + payload + 4095) / 4096) << payload;
    size_t tls = L5Channel::SlotsForMessage(payload, true, 4096);
    EXPECT_GE(tls, plain) << payload;
    EXPECT_LE(tls, 8u) << payload;
  }
}

TEST(L5Channel, ManyMessagesDoNotExhaustHeaps) {
  // Regression test: the queue region and slot pool are allocated once; a
  // sustained stream must recycle slots instead of growing the io heap.
  L5World world;
  auto [server, client] = world.Establish();
  ciobase::Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    Buffer chunk = rng.Bytes(8192);
    (void)world.peer_stack->TcpSend(client, chunk);
    world.Pump(3);
    auto received = world.Receive(server, 16384);
    ASSERT_TRUE(received.ok()) << "iteration " << i << ": "
                               << received.status().ToString();
  }
  EXPECT_EQ(world.l5->free_slots() + world.l5->in_flight_entries() *
                                         world.l5->queue_config().recv_segments,
            world.l5->queue_config().pool_slots);
}

}  // namespace
