// Tests for the L5 single-distrust channel: trusted-component-allocates
// semantics, zero-copy send, copy vs revoke receive, ownership transfer
// (compartment revocation), boundary-kind cost accounting, and the
// grant-matrix direction (app may touch I/O memory, never vice versa).

#include <gtest/gtest.h>

#include <memory>

#include "src/base/rng.h"
#include "src/cio/l5_channel.h"
#include "src/net/fabric.h"

namespace {

using ciobase::Buffer;
using ciobase::BufferFromString;
using namespace cio;  // NOLINT: test file

// An L5 world: a NetStack in the "io" compartment talking over a direct
// fabric to a plain peer stack.
struct L5World {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  cionet::Fabric fabric{&clock, 31};
  cionet::DirectFabricPort port_io{&fabric, "io",
                                   cionet::MacAddress::FromId(1)};
  cionet::DirectFabricPort port_peer{&fabric, "peer",
                                     cionet::MacAddress::FromId(2)};
  std::unique_ptr<cionet::NetStack> io_stack;
  std::unique_ptr<cionet::NetStack> peer_stack;
  ciotee::CompartmentManager compartments{&costs};
  ciotee::CompartmentId app = compartments.Create("app", 1 << 20);
  ciotee::CompartmentId io = compartments.Create("io", 1 << 20);
  std::unique_ptr<L5Channel> l5;

  explicit L5World(L5ReceiveMode mode = L5ReceiveMode::kCopy,
                   L5BoundaryKind kind = L5BoundaryKind::kCompartment) {
    cionet::NetStack::Config config_io;
    config_io.ip = cionet::Ipv4Address::FromOctets(10, 0, 0, 1);
    cionet::NetStack::Config config_peer;
    config_peer.ip = cionet::Ipv4Address::FromOctets(10, 0, 0, 2);
    config_peer.seed = 5;
    io_stack = std::make_unique<cionet::NetStack>(&port_io, &clock,
                                                  config_io);
    peer_stack = std::make_unique<cionet::NetStack>(&port_peer, &clock,
                                                    config_peer);
    compartments.GrantAccess(app, io);
    l5 = std::make_unique<L5Channel>(&compartments, app, io,
                                     io_stack.get(), &costs, mode, kind);
  }

  // Establishes l5-listener <- peer-connect; returns (l5 server socket,
  // peer client socket).
  std::pair<cionet::SocketId, cionet::SocketId> Establish() {
    auto listener = l5->Listen(80);
    EXPECT_TRUE(listener.ok());
    auto client = peer_stack->TcpConnect(
        cionet::Ipv4Address::FromOctets(10, 0, 0, 1), 80);
    EXPECT_TRUE(client.ok());
    cionet::SocketId server{};
    for (int i = 0; i < 1000; ++i) {
      peer_stack->Poll();
      l5->Poll();
      clock.Advance(5'000);
      auto accepted = l5->Accept(*listener);
      if (accepted.ok()) {
        server = *accepted;
        break;
      }
    }
    return {server, *client};
  }

  void Pump(int rounds = 50) {
    for (int i = 0; i < rounds; ++i) {
      peer_stack->Poll();
      (void)l5->Poll();
      clock.Advance(5'000);
    }
  }

  // Test sugar over the single ReceiveInto entry point.
  ciobase::Result<Buffer> Receive(cionet::SocketId socket, size_t max_bytes) {
    Buffer out;
    auto got = l5->ReceiveInto(socket, max_bytes, out);
    if (!got.ok()) {
      return got.status();
    }
    return out;
  }
};

TEST(L5Channel, SendIsZeroCopyThroughIoHeap) {
  L5World world;
  auto [server, client] = world.Establish();
  Buffer data = BufferFromString("through the io heap");
  uint64_t copies_before = world.costs.counter("bytes_copied");
  auto sent = world.l5->Send(server, data);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(*sent, data.size());
  // No boundary copy was charged on send (the stack consumed the app's
  // io-heap buffer in place).
  EXPECT_EQ(world.costs.counter("bytes_copied"), copies_before);
  world.Pump();
  uint8_t buf[64];
  auto got = world.peer_stack->TcpReceive(client, buf);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ciobase::StringFromBytes(ciobase::ByteSpan(buf, *got)),
            "through the io heap");
}

TEST(L5Channel, CopyReceiveChargesCopy) {
  L5World world(L5ReceiveMode::kCopy);
  auto [server, client] = world.Establish();
  ASSERT_TRUE(
      world.peer_stack->TcpSend(client, BufferFromString("payload")).ok());
  world.Pump();
  uint64_t copies_before = world.costs.counter("bytes_copied");
  auto received = world.Receive(server, 64);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(ciobase::StringFromBytes(*received), "payload");
  EXPECT_GT(world.costs.counter("bytes_copied"), copies_before);
  EXPECT_EQ(world.l5->stats().receive_copies, 1u);
}

TEST(L5Channel, RevokeReceiveChargesPagesAndTransfersOwnership) {
  L5World world(L5ReceiveMode::kRevoke);
  auto [server, client] = world.Establish();
  ASSERT_TRUE(
      world.peer_stack->TcpSend(client, BufferFromString("payload")).ok());
  world.Pump();
  auto received = world.Receive(server, 64);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(ciobase::StringFromBytes(*received), "payload");
  EXPECT_GT(world.costs.counter("pages_unshared"), 0u);
  EXPECT_EQ(world.l5->stats().receive_revocations, 1u);
}

TEST(L5Channel, EmptyReceiveReturnsEmptyBuffer) {
  L5World world;
  auto [server, client] = world.Establish();
  (void)client;
  auto received = world.Receive(server, 64);
  ASSERT_TRUE(received.ok());
  EXPECT_TRUE(received->empty());
}

TEST(L5Channel, CrossingsAreCountedAndCharged) {
  L5World world;
  auto [server, client] = world.Establish();
  (void)client;
  uint64_t before = world.l5->stats().crossings;
  (void)world.l5->Send(server, BufferFromString("x"));
  (void)world.Receive(server, 16);
  world.l5->Poll();
  EXPECT_GE(world.l5->stats().crossings, before + 3);
  EXPECT_GT(world.costs.counter("compartment_switches"), 0u);
  EXPECT_EQ(world.costs.counter("tee_switches"), 0u);
}

TEST(L5Channel, DualTeeBoundaryChargesTeeSwitches) {
  L5World world(L5ReceiveMode::kCopy, L5BoundaryKind::kDualTee);
  auto [server, client] = world.Establish();
  (void)client;
  (void)world.l5->Send(server, BufferFromString("x"));
  EXPECT_GT(world.costs.counter("tee_switches"), 0u);
}

TEST(L5Channel, IoCompartmentCannotTouchAppAllocations) {
  // The direction of the grant matrix: app -> io yes, io -> app never.
  L5World world;
  auto secret = world.compartments.Allocate(world.app, world.app, 32);
  ASSERT_TRUE(secret.ok());
  EXPECT_FALSE(world.compartments.Access(world.io, *secret).ok());
  // And the io compartment cannot even allocate in the app's heap.
  EXPECT_FALSE(world.compartments.Allocate(world.io, world.app, 32).ok());
}

TEST(L5Channel, OwnershipTransferRevokesOldOwner) {
  L5World world;
  auto handle = world.compartments.Allocate(world.app, world.io, 64);
  ASSERT_TRUE(handle.ok());
  // Initially the io compartment (owner) can access its own buffer.
  EXPECT_TRUE(world.compartments.Access(world.io, *handle).ok());
  // The app revokes it (L5 revocation): io's access dies, app's remains.
  ASSERT_TRUE(
      world.compartments.Transfer(world.app, *handle, world.app).ok());
  EXPECT_FALSE(world.compartments.Access(world.io, *handle).ok());
  EXPECT_TRUE(world.compartments.Access(world.app, *handle).ok());
}

TEST(L5Channel, ManyTransfersDoNotExhaustHeaps) {
  // Regression test for the bump-allocator reclamation: sustained traffic
  // must not run the io heap out of memory.
  L5World world;
  auto [server, client] = world.Establish();
  ciobase::Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    Buffer chunk = rng.Bytes(8192);
    (void)world.peer_stack->TcpSend(client, chunk);
    world.Pump(3);
    auto received = world.Receive(server, 16384);
    ASSERT_TRUE(received.ok()) << "iteration " << i << ": "
                               << received.status().ToString();
  }
}

}  // namespace
