// Unit and property tests for the hardened L2 transport: ring mechanics in
// every data-positioning mode, flow control, the §3.2 principles
// (zero-negotiation measurement binding, polling, clamping), and the core
// safety property — NO host-written bytes, however adversarial, can drive
// a guest access out of bounds (fuzzed with thousands of random slot and
// counter images).

#include <gtest/gtest.h>

#include <memory>

#include "src/base/rng.h"
#include "src/cio/l2_host_device.h"
#include "src/cio/l2_transport.h"
#include "src/net/fabric.h"

namespace {

using ciobase::Buffer;
using ciobase::ByteSpan;
using namespace cio;  // NOLINT: test file

struct World {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  cionet::Fabric fabric{&clock, 17, cionet::Fabric::Options{0, 0, 0, 9216}};
  ciotee::TeeMemory memory;
  L2Config config;
  std::unique_ptr<ciotee::SharedRegion> shared;
  std::unique_ptr<L2HostDevice> device;
  std::unique_ptr<L2Transport> transport;
  std::unique_ptr<cionet::DirectFabricPort> peer;
  ciohost::Adversary adversary{23};
  ciohost::ObservabilityLog observability;

  explicit World(L2Config cfg = {}) : config(cfg) {
    config.mac = cionet::MacAddress::FromId(1);
    L2Layout layout(config);
    shared = std::make_unique<ciotee::SharedRegion>(&memory, layout.total,
                                                    "l2");
    device = std::make_unique<L2HostDevice>(shared.get(), config, &fabric,
                                            "nic", &adversary,
                                            &observability, &clock);
    transport = std::make_unique<L2Transport>(
        shared.get(), config, &costs,
        config.polling ? nullptr : device.get());
    peer = std::make_unique<cionet::DirectFabricPort>(
        &fabric, "peer", cionet::MacAddress::FromId(2));
  }

  Buffer Frame(size_t payload, cionet::MacAddress dst,
               cionet::MacAddress src) {
    Buffer frame;
    cionet::EthernetHeader eth{dst, src, 0x88b5};
    eth.Serialize(frame);
    ciobase::Rng rng(payload);
    ciobase::Append(frame, rng.Bytes(payload));
    return frame;
  }
  Buffer ToGuest(size_t payload) {
    return Frame(payload, cionet::MacAddress::FromId(1),
                 cionet::MacAddress::FromId(2));
  }
  Buffer FromGuest(size_t payload) {
    return Frame(payload, cionet::MacAddress::FromId(2),
                 cionet::MacAddress::FromId(1));
  }
};

TEST(L2Config, ValidityRules) {
  L2Config config;
  config.mac = cionet::MacAddress::FromId(1);
  EXPECT_TRUE(config.Valid());
  config.ring_slots = 100;  // not a power of two
  EXPECT_FALSE(config.Valid());
  config.ring_slots = 256;
  config.slot_size = 3000;
  EXPECT_FALSE(config.Valid());
  config.slot_size = 2048;
  config.mtu = 9000;  // exceeds slot payload capacity
  EXPECT_FALSE(config.Valid());
}

TEST(L2Config, MeasurementBindsEveryParameter) {
  // Zero (re-)negotiation: the config IS the protocol; any change to it
  // must change the attestation measurement.
  L2Config base;
  base.mac = cionet::MacAddress::FromId(1);
  ciotee::Measurement m0 = base.Measure();

  L2Config changed = base;
  changed.mtu = 1400;
  EXPECT_NE(changed.Measure(), m0);
  changed = base;
  changed.positioning = DataPositioning::kSharedPool;
  EXPECT_NE(changed.Measure(), m0);
  changed = base;
  changed.rx_ownership = ReceiveOwnership::kRevoke;
  EXPECT_NE(changed.Measure(), m0);
  changed = base;
  changed.polling = false;
  EXPECT_NE(changed.Measure(), m0);
  changed = base;
  changed.ring_slots = 128;
  EXPECT_NE(changed.Measure(), m0);
  EXPECT_EQ(base.Measure(), m0);  // deterministic
}

class L2PositioningTest : public ::testing::TestWithParam<DataPositioning> {};

TEST_P(L2PositioningTest, EchoRoundTrip) {
  L2Config config;
  config.positioning = GetParam();
  World world(config);
  for (size_t payload : {0, 1, 100, 1000, 1486}) {
    Buffer out = world.FromGuest(payload);
    ASSERT_TRUE(world.transport->SendFrame(out).ok()) << payload;
    world.device->Poll();
    world.clock.Advance(25'000);
    auto at_peer = world.peer->ReceiveFrame();
    ASSERT_TRUE(at_peer.ok()) << payload;
    EXPECT_EQ(*at_peer, out);

    Buffer in = world.ToGuest(payload);
    ASSERT_TRUE(world.peer->SendFrame(in).ok());
    world.clock.Advance(25'000);
    world.device->Poll();
    auto at_guest = world.transport->ReceiveFrame();
    ASSERT_TRUE(at_guest.ok()) << payload;
    EXPECT_EQ(*at_guest, in);
  }
  EXPECT_TRUE(world.memory.violations().empty());
}

TEST_P(L2PositioningTest, RingWrapsManyTimes) {
  L2Config config;
  config.positioning = GetParam();
  config.ring_slots = 8;  // tiny ring: wraps every 8 frames
  World world(config);
  for (int i = 0; i < 100; ++i) {
    Buffer in = world.ToGuest(200 + i % 64);
    ASSERT_TRUE(world.peer->SendFrame(in).ok());
    world.clock.Advance(25'000);
    world.device->Poll();
    auto at_guest = world.transport->ReceiveFrame();
    ASSERT_TRUE(at_guest.ok()) << i;
    EXPECT_EQ(*at_guest, in) << i;
  }
  EXPECT_EQ(world.transport->stats().frames_received, 100u);
}

INSTANTIATE_TEST_SUITE_P(Modes, L2PositioningTest,
                         ::testing::Values(DataPositioning::kInline,
                                           DataPositioning::kSharedPool,
                                           DataPositioning::kIndirect),
                         [](const auto& info) {
                           std::string name(DataPositioningName(info.param));
                           for (auto& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(L2Transport, RejectsOversizedFrames) {
  World world;
  Buffer too_big = world.FromGuest(1600);  // > MTU
  EXPECT_FALSE(world.transport->SendFrame(too_big).ok());
}

TEST(L2Transport, TxFlowControlWhenHostStalls) {
  // A host that never consumes: the guest fills the ring and then fails
  // fast (stateless backpressure), without corrupting anything.
  World world;
  Buffer frame = world.FromGuest(100);
  size_t accepted = 0;
  for (int i = 0; i < 1000; ++i) {
    if (world.transport->SendFrame(frame).ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, world.config.ring_slots);
  EXPECT_GT(world.transport->stats().tx_ring_full, 0u);
}

TEST(L2Transport, NotifyModeKicksDevice) {
  L2Config config;
  config.polling = false;
  World world(config);
  Buffer frame = world.FromGuest(64);
  ASSERT_TRUE(world.transport->SendFrame(frame).ok());
  // The kick drove the device synchronously: frame already on the fabric.
  EXPECT_EQ(world.device->stats().kicks, 1u);
  EXPECT_EQ(world.costs.counter("notifies"), 1u);
  EXPECT_GT(world.observability.CountOf(ciohost::ObsCategory::kDoorbell),
            0u);
}

TEST(L2Transport, PollingModeHasNoDoorbells) {
  World world;
  Buffer frame = world.FromGuest(64);
  ASSERT_TRUE(world.transport->SendFrame(frame).ok());
  world.device->Poll();
  EXPECT_EQ(world.costs.counter("notifies"), 0u);
  EXPECT_EQ(world.observability.CountOf(ciohost::ObsCategory::kDoorbell),
            0u);
}

TEST(L2Transport, RevocationChargesPagesNotBytes) {
  L2Config config;
  config.positioning = DataPositioning::kSharedPool;
  config.rx_ownership = ReceiveOwnership::kRevoke;
  World world(config);
  Buffer in = world.ToGuest(1400);
  ASSERT_TRUE(world.peer->SendFrame(in).ok());
  world.clock.Advance(25'000);
  world.device->Poll();
  uint64_t copies_before = world.costs.counter("bytes_copied");
  auto at_guest = world.transport->ReceiveFrame();
  ASSERT_TRUE(at_guest.ok());
  EXPECT_EQ(*at_guest, in);
  EXPECT_GT(world.costs.counter("pages_unshared"), 0u);
  // No payload copy was charged on the RX path (only the 8B header read).
  EXPECT_LT(world.costs.counter("bytes_copied") - copies_before, 100u);
}

// --- The core safety property, fuzzed ----------------------------------------

class L2FuzzTest : public ::testing::TestWithParam<DataPositioning> {};

TEST_P(L2FuzzTest, ArbitraryHostBytesNeverCauseOobAccess) {
  // The host writes completely random garbage over the ENTIRE shared
  // region (headers, counters, payloads, indirect tables) and the guest
  // keeps consuming. By construction (masking + clamping + single fetch),
  // no guest access may ever leave the region.
  L2Config config;
  config.positioning = GetParam();
  config.ring_slots = 16;
  World world(config);
  ciobase::Rng rng(1234 + static_cast<int>(GetParam()));
  for (int round = 0; round < 2000; ++round) {
    // Random image over the whole region.
    ciobase::MutableByteSpan all =
        world.shared->HostWindow(0, world.shared->size());
    ASSERT_FALSE(all.empty());
    // Mutate a random window (cheaper than rewriting 1 MiB every round).
    uint64_t offset = rng.NextBounded(all.size());
    uint64_t len = std::min<uint64_t>(rng.NextBounded(4096) + 1,
                                      all.size() - offset);
    rng.Fill(all.subspan(offset, len));
    (void)world.transport->ReceiveFrame();
    if (round % 16 == 0) {
      (void)world.transport->SendFrame(world.FromGuest(rng.NextBounded(
          world.config.mtu)));
    }
  }
  EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobRead), 0u)
      << "masked transport performed an out-of-bounds read";
  EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobWrite),
            0u);
  EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kHostOnlyAccess),
            0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, L2FuzzTest,
                         ::testing::Values(DataPositioning::kInline,
                                           DataPositioning::kSharedPool,
                                           DataPositioning::kIndirect),
                         [](const auto& info) {
                           std::string name(DataPositioningName(info.param));
                           for (auto& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(L2Adversary, AllStrategiesSafeAndOftenDelivering) {
  for (auto strategy : ciohost::AllAttackStrategies()) {
    World world;
    world.adversary.Arm(world.shared.get(),
                        world.transport->AttackSurface());
    world.adversary.set_strategy(strategy);
    for (int i = 0; i < 50; ++i) {
      (void)world.peer->SendFrame(world.ToGuest(500));
      world.clock.Advance(25'000);
      world.device->Poll();
      (void)world.transport->ReceiveFrame();
      (void)world.transport->SendFrame(world.FromGuest(500));
      world.device->Poll();
    }
    world.adversary.Disarm();
    EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobRead),
              0u)
        << ciohost::AttackStrategyName(strategy);
    EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobWrite),
              0u)
        << ciohost::AttackStrategyName(strategy);
  }
}

}  // namespace
