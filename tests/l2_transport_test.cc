// Unit and property tests for the hardened L2 transport: ring mechanics in
// every data-positioning mode, flow control, the §3.2 principles
// (zero-negotiation measurement binding, polling, clamping), and the core
// safety property — NO host-written bytes, however adversarial, can drive
// a guest access out of bounds (fuzzed with thousands of random slot and
// counter images).

#include <gtest/gtest.h>

#include <memory>

#include "src/base/rng.h"
#include "src/cio/l2_host_device.h"
#include "src/cio/l2_transport.h"
#include "src/net/fabric.h"

namespace {

using ciobase::Buffer;
using ciobase::ByteSpan;
using namespace cio;  // NOLINT: test file

struct World {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  cionet::Fabric fabric{&clock, 17, cionet::Fabric::Options{0, 0, 0, 9216}};
  ciotee::TeeMemory memory;
  L2Config config;
  std::unique_ptr<ciotee::SharedRegion> shared;
  std::unique_ptr<L2HostDevice> device;
  std::unique_ptr<L2Transport> transport;
  std::unique_ptr<cionet::DirectFabricPort> peer;
  ciohost::Adversary adversary{23};
  ciohost::ObservabilityLog observability;

  explicit World(L2Config cfg = {}) : config(cfg) {
    config.mac = cionet::MacAddress::FromId(1);
    L2Layout layout(config);
    shared = std::make_unique<ciotee::SharedRegion>(&memory, layout.total,
                                                    "l2");
    device = std::make_unique<L2HostDevice>(shared.get(), config, &fabric,
                                            "nic", &adversary,
                                            &observability, &clock);
    transport = std::make_unique<L2Transport>(
        shared.get(), config, &costs,
        config.polling ? nullptr : device.get());
    peer = std::make_unique<cionet::DirectFabricPort>(
        &fabric, "peer", cionet::MacAddress::FromId(2));
  }

  Buffer Frame(size_t payload, cionet::MacAddress dst,
               cionet::MacAddress src) {
    Buffer frame;
    cionet::EthernetHeader eth{dst, src, 0x88b5};
    eth.Serialize(frame);
    ciobase::Rng rng(payload);
    ciobase::Append(frame, rng.Bytes(payload));
    return frame;
  }
  Buffer ToGuest(size_t payload) {
    return Frame(payload, cionet::MacAddress::FromId(1),
                 cionet::MacAddress::FromId(2));
  }
  Buffer FromGuest(size_t payload) {
    return Frame(payload, cionet::MacAddress::FromId(2),
                 cionet::MacAddress::FromId(1));
  }
};

TEST(L2Config, ValidityRules) {
  L2Config config;
  config.mac = cionet::MacAddress::FromId(1);
  EXPECT_TRUE(config.Valid());
  config.ring_slots = 100;  // not a power of two
  EXPECT_FALSE(config.Valid());
  config.ring_slots = 256;
  config.slot_size = 3000;
  EXPECT_FALSE(config.Valid());
  config.slot_size = 2048;
  config.mtu = 9000;  // exceeds slot payload capacity
  EXPECT_FALSE(config.Valid());
}

TEST(L2Config, MeasurementBindsEveryParameter) {
  // Zero (re-)negotiation: the config IS the protocol; any change to it
  // must change the attestation measurement.
  L2Config base;
  base.mac = cionet::MacAddress::FromId(1);
  ciotee::Measurement m0 = base.Measure();

  L2Config changed = base;
  changed.mtu = 1400;
  EXPECT_NE(changed.Measure(), m0);
  changed = base;
  changed.positioning = DataPositioning::kSharedPool;
  EXPECT_NE(changed.Measure(), m0);
  changed = base;
  changed.rx_ownership = ReceiveOwnership::kRevoke;
  EXPECT_NE(changed.Measure(), m0);
  changed = base;
  changed.polling = false;
  EXPECT_NE(changed.Measure(), m0);
  changed = base;
  changed.ring_slots = 128;
  EXPECT_NE(changed.Measure(), m0);
  EXPECT_EQ(base.Measure(), m0);  // deterministic
}

class L2PositioningTest : public ::testing::TestWithParam<DataPositioning> {};

TEST_P(L2PositioningTest, EchoRoundTrip) {
  L2Config config;
  config.positioning = GetParam();
  World world(config);
  for (size_t payload : {0, 1, 100, 1000, 1486}) {
    Buffer out = world.FromGuest(payload);
    ASSERT_TRUE(cionet::SendOne(*world.transport, out).ok()) << payload;
    world.device->Poll();
    world.clock.Advance(25'000);
    auto at_peer = cionet::ReceiveOne(*world.peer);
    ASSERT_TRUE(at_peer.ok()) << payload;
    EXPECT_EQ(*at_peer, out);

    Buffer in = world.ToGuest(payload);
    ASSERT_TRUE(cionet::SendOne(*world.peer, in).ok());
    world.clock.Advance(25'000);
    world.device->Poll();
    auto at_guest = cionet::ReceiveOne(*world.transport);
    ASSERT_TRUE(at_guest.ok()) << payload;
    EXPECT_EQ(*at_guest, in);
  }
  EXPECT_TRUE(world.memory.violations().empty());
}

TEST_P(L2PositioningTest, RingWrapsManyTimes) {
  L2Config config;
  config.positioning = GetParam();
  config.ring_slots = 8;  // tiny ring: wraps every 8 frames
  World world(config);
  for (int i = 0; i < 100; ++i) {
    Buffer in = world.ToGuest(200 + i % 64);
    ASSERT_TRUE(cionet::SendOne(*world.peer, in).ok());
    world.clock.Advance(25'000);
    world.device->Poll();
    auto at_guest = cionet::ReceiveOne(*world.transport);
    ASSERT_TRUE(at_guest.ok()) << i;
    EXPECT_EQ(*at_guest, in) << i;
  }
  EXPECT_EQ(world.transport->stats().frames_received, 100u);
}

INSTANTIATE_TEST_SUITE_P(Modes, L2PositioningTest,
                         ::testing::Values(DataPositioning::kInline,
                                           DataPositioning::kSharedPool,
                                           DataPositioning::kIndirect),
                         [](const auto& info) {
                           std::string name(DataPositioningName(info.param));
                           for (auto& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(L2Transport, RejectsOversizedFrames) {
  World world;
  Buffer too_big = world.FromGuest(1600);  // > MTU
  EXPECT_FALSE(cionet::SendOne(*world.transport, too_big).ok());
}

TEST(L2Transport, TxFlowControlWhenHostStalls) {
  // A host that never consumes: the guest fills the ring and then fails
  // fast (stateless backpressure), without corrupting anything.
  World world;
  Buffer frame = world.FromGuest(100);
  size_t accepted = 0;
  for (int i = 0; i < 1000; ++i) {
    if (cionet::SendOne(*world.transport, frame).ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, world.config.ring_slots);
  EXPECT_GT(world.transport->stats().tx_ring_full, 0u);
}

TEST(L2Transport, NotifyModeKicksDevice) {
  L2Config config;
  config.polling = false;
  World world(config);
  Buffer frame = world.FromGuest(64);
  ASSERT_TRUE(cionet::SendOne(*world.transport, frame).ok());
  // The kick drove the device synchronously: frame already on the fabric.
  EXPECT_EQ(world.device->stats().kicks, 1u);
  EXPECT_EQ(world.costs.counter("notifies"), 1u);
  EXPECT_GT(world.observability.CountOf(ciohost::ObsCategory::kDoorbell),
            0u);
}

TEST(L2Transport, PollingModeHasNoDoorbells) {
  World world;
  Buffer frame = world.FromGuest(64);
  ASSERT_TRUE(cionet::SendOne(*world.transport, frame).ok());
  world.device->Poll();
  EXPECT_EQ(world.costs.counter("notifies"), 0u);
  EXPECT_EQ(world.observability.CountOf(ciohost::ObsCategory::kDoorbell),
            0u);
}

TEST(L2Transport, RevocationChargesPagesNotBytes) {
  L2Config config;
  config.positioning = DataPositioning::kSharedPool;
  config.rx_ownership = ReceiveOwnership::kRevoke;
  World world(config);
  Buffer in = world.ToGuest(1400);
  ASSERT_TRUE(cionet::SendOne(*world.peer, in).ok());
  world.clock.Advance(25'000);
  world.device->Poll();
  uint64_t copies_before = world.costs.counter("bytes_copied");
  auto at_guest = cionet::ReceiveOne(*world.transport);
  ASSERT_TRUE(at_guest.ok());
  EXPECT_EQ(*at_guest, in);
  EXPECT_GT(world.costs.counter("pages_unshared"), 0u);
  // No payload copy was charged on the RX path (only the 8B header read).
  EXPECT_LT(world.costs.counter("bytes_copied") - copies_before, 100u);
}

// --- The core safety property, fuzzed ----------------------------------------

class L2FuzzTest : public ::testing::TestWithParam<DataPositioning> {};

TEST_P(L2FuzzTest, ArbitraryHostBytesNeverCauseOobAccess) {
  // The host writes completely random garbage over the ENTIRE shared
  // region (headers, counters, payloads, indirect tables) and the guest
  // keeps consuming. By construction (masking + clamping + single fetch),
  // no guest access may ever leave the region.
  L2Config config;
  config.positioning = GetParam();
  config.ring_slots = 16;
  World world(config);
  ciobase::Rng rng(1234 + static_cast<int>(GetParam()));
  for (int round = 0; round < 2000; ++round) {
    // Random image over the whole region.
    ciobase::MutableByteSpan all =
        world.shared->HostWindow(0, world.shared->size());
    ASSERT_FALSE(all.empty());
    // Mutate a random window (cheaper than rewriting 1 MiB every round).
    uint64_t offset = rng.NextBounded(all.size());
    uint64_t len = std::min<uint64_t>(rng.NextBounded(4096) + 1,
                                      all.size() - offset);
    rng.Fill(all.subspan(offset, len));
    (void)cionet::ReceiveOne(*world.transport);
    if (round % 16 == 0) {
      (void)cionet::SendOne(*world.transport, world.FromGuest(rng.NextBounded(
          world.config.mtu)));
    }
  }
  EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobRead), 0u)
      << "masked transport performed an out-of-bounds read";
  EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobWrite),
            0u);
  EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kHostOnlyAccess),
            0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, L2FuzzTest,
                         ::testing::Values(DataPositioning::kInline,
                                           DataPositioning::kSharedPool,
                                           DataPositioning::kIndirect),
                         [](const auto& info) {
                           std::string name(DataPositioningName(info.param));
                           for (auto& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- Batched ring ops ---------------------------------------------------------

// Feeds `count` frames from the peer into the device without the guest
// consuming yet (the ring is large enough to hold them all).
void FeedFrames(World& world, const std::vector<Buffer>& frames) {
  for (const Buffer& frame : frames) {
    ASSERT_TRUE(cionet::SendOne(*world.peer, frame).ok());
    world.clock.Advance(25'000);
    world.device->Poll();
  }
}

class L2BatchTest : public ::testing::TestWithParam<DataPositioning> {};

TEST_P(L2BatchTest, ReceiveBatchMatchesPerFrameExactly) {
  // Two identical worlds, identical inbound traffic: draining one frame at a
  // time and draining as a batch must yield byte-identical frames, identical
  // stats, and identical shared-memory counters.
  L2Config config;
  config.positioning = GetParam();
  World per_frame(config);
  World batched(config);

  std::vector<Buffer> frames;
  for (size_t payload : {0, 1, 100, 1000, 1486, 7, 64}) {
    frames.push_back(per_frame.ToGuest(payload));
  }
  FeedFrames(per_frame, frames);
  FeedFrames(batched, frames);

  std::vector<Buffer> got_per_frame;
  for (;;) {
    auto frame = cionet::ReceiveOne(*per_frame.transport);
    if (!frame.ok()) {
      break;
    }
    got_per_frame.push_back(std::move(*frame));
  }

  cionet::FrameBatch batch;
  std::vector<Buffer> got_batched;
  for (;;) {
    auto got = batched.transport->ReceiveFrames(batch, 3);  // odd batch size
    ASSERT_TRUE(got.ok());
    if (*got == 0) {
      break;
    }  // odd batch size
    for (size_t i = 0; i < batch.size(); ++i) {
      got_batched.emplace_back(batch[i].begin(), batch[i].end());
    }
  }

  ASSERT_EQ(got_per_frame.size(), frames.size());
  ASSERT_EQ(got_batched.size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(got_per_frame[i], frames[i]) << i;
    EXPECT_EQ(got_batched[i], frames[i]) << i;
  }

  const auto& s1 = per_frame.transport->stats();
  const auto& s2 = batched.transport->stats();
  EXPECT_EQ(s1.frames_received, s2.frames_received);
  EXPECT_EQ(s1.rx_clamped_len, s2.rx_clamped_len);
  EXPECT_EQ(s1.rx_dropped_empty, s2.rx_dropped_empty);
  EXPECT_EQ(s1.pages_revoked, s2.pages_revoked);

  // Published RxConsumed counters agree.
  const L2Layout& layout = per_frame.transport->layout();
  EXPECT_EQ(ciobase::LoadLe64(
                per_frame.shared->HostWindow(layout.RxConsumed(), 8).data()),
            ciobase::LoadLe64(
                batched.shared->HostWindow(layout.RxConsumed(), 8).data()));
  EXPECT_TRUE(per_frame.memory.violations().empty());
  EXPECT_TRUE(batched.memory.violations().empty());
}

TEST_P(L2BatchTest, SendBatchMatchesPerFrameExactly) {
  L2Config config;
  config.positioning = GetParam();
  World per_frame(config);
  World batched(config);

  std::vector<Buffer> frames;
  for (size_t payload : {0, 1, 100, 1000, 1486}) {
    frames.push_back(per_frame.FromGuest(payload));
  }

  for (const Buffer& frame : frames) {
    ASSERT_TRUE(cionet::SendOne(*per_frame.transport, frame).ok());
  }
  std::vector<ciobase::ByteSpan> spans(frames.begin(), frames.end());
  auto accepted = batched.transport->SendFrames(spans);
  ASSERT_TRUE(accepted.ok());
  ASSERT_EQ(*accepted, frames.size());

  per_frame.device->Poll();
  batched.device->Poll();
  per_frame.clock.Advance(25'000);
  batched.clock.Advance(25'000);

  for (const Buffer& frame : frames) {
    auto a = cionet::ReceiveOne(*per_frame.peer);
    auto b = cionet::ReceiveOne(*batched.peer);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, frame);
    EXPECT_EQ(*b, frame);
  }
  EXPECT_EQ(per_frame.transport->stats().frames_sent,
            batched.transport->stats().frames_sent);
  const L2Layout& layout = per_frame.transport->layout();
  EXPECT_EQ(ciobase::LoadLe64(
                per_frame.shared->HostWindow(layout.TxProduced(), 8).data()),
            ciobase::LoadLe64(
                batched.shared->HostWindow(layout.TxProduced(), 8).data()));
}

INSTANTIATE_TEST_SUITE_P(Modes, L2BatchTest,
                         ::testing::Values(DataPositioning::kInline,
                                           DataPositioning::kSharedPool,
                                           DataPositioning::kIndirect),
                         [](const auto& info) {
                           std::string name(DataPositioningName(info.param));
                           for (auto& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(L2Batch, SendStopsAtRingFull) {
  // A host that never consumes: a batch larger than the ring accepts exactly
  // ring_slots frames and reports backpressure, identical to the per-frame
  // path's behavior.
  World world;
  Buffer frame = world.FromGuest(100);
  std::vector<ciobase::ByteSpan> spans(world.config.ring_slots + 50,
                                       ciobase::ByteSpan(frame));
  auto sent = world.transport->SendFrames(spans);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(*sent, world.config.ring_slots);
  EXPECT_GT(world.transport->stats().tx_ring_full, 0u);
  // The ring is full: a retry accepts nothing and reports why.
  auto retry = world.transport->SendFrames(spans);
  EXPECT_FALSE(retry.ok());
  EXPECT_EQ(retry.status().code(), ciobase::StatusCode::kResourceExhausted);
}

TEST(L2Batch, SendRejectsOversizedFrameMidBatch) {
  World world;
  Buffer ok_frame = world.FromGuest(100);
  Buffer too_big = world.FromGuest(1600);  // > MTU
  std::vector<ciobase::ByteSpan> spans = {ok_frame, too_big, ok_frame};
  // Stops at the oversized frame; the frames before it are sent.
  auto sent = world.transport->SendFrames(spans);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(*sent, 1u);
}

TEST(L2Batch, HostileRxProducedStormDrainsAtMostRing) {
  // Interrupt-storm counter: the host claims 10000 pending frames. The
  // batch path must clamp its drain to the ring size and never read out of
  // bounds; every fabricated slot is validated like a real one.
  World world;
  const L2Layout& layout = world.transport->layout();
  ciobase::StoreLe64(world.shared->HostWindow(layout.RxProduced(), 8).data(),
                     10'000);
  cionet::FrameBatch batch;
  auto got = world.transport->ReceiveFrames(batch, 100'000);
  ASSERT_TRUE(got.ok());
  size_t drained = *got;
  EXPECT_LE(drained + world.transport->stats().rx_dropped_empty,
            world.config.ring_slots);
  EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobRead), 0u);
  EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobWrite),
            0u);
}

TEST(L2Batch, HostileRxProducedRewindYieldsNothing) {
  // The host rewinds the produced counter below what the guest already
  // consumed: monotonicity violation, treated as "nothing pending".
  World world;
  Buffer in = world.ToGuest(100);
  ASSERT_TRUE(cionet::SendOne(*world.peer, in).ok());
  world.clock.Advance(25'000);
  world.device->Poll();
  cionet::FrameBatch batch;
  ASSERT_EQ(*world.transport->ReceiveFrames(batch, 16), 1u);

  const L2Layout& layout = world.transport->layout();
  ciobase::StoreLe64(world.shared->HostWindow(layout.RxProduced(), 8).data(),
                     0);  // rewound below rx_consumed_ == 1
  EXPECT_EQ(*world.transport->ReceiveFrames(batch, 16), 0u);
  EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobRead), 0u);
}

TEST(L2Batch, NotifyModeCoalescesDoorbellPerBatch) {
  L2Config config;
  config.polling = false;
  World world(config);
  Buffer frame = world.FromGuest(64);
  std::vector<ciobase::ByteSpan> spans(8, ciobase::ByteSpan(frame));
  ASSERT_EQ(*world.transport->SendFrames(spans), 8u);
  // One kick and one modeled notify for the whole batch of 8.
  EXPECT_EQ(world.device->stats().kicks, 1u);
  EXPECT_EQ(world.costs.counter("notifies"), 1u);
}

TEST(L2Batch, AdversaryStrategiesSafeUnderBatchedOps) {
  // The adversary mutates the same attack surface as for the per-frame path
  // (batching added no new host-controlled state); batched send/receive must
  // stay within bounds under every strategy.
  for (auto strategy : ciohost::AllAttackStrategies()) {
    World world;
    world.adversary.Arm(world.shared.get(),
                        world.transport->AttackSurface());
    world.adversary.set_strategy(strategy);
    cionet::FrameBatch batch;
    Buffer out = world.FromGuest(500);
    std::vector<ciobase::ByteSpan> spans(4, ciobase::ByteSpan(out));
    for (int i = 0; i < 50; ++i) {
      (void)cionet::SendOne(*world.peer, world.ToGuest(500));
      world.clock.Advance(25'000);
      world.device->Poll();
      (void)world.transport->ReceiveFrames(batch, 8);
      (void)world.transport->SendFrames(spans);
      world.device->Poll();
    }
    world.adversary.Disarm();
    EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobRead),
              0u)
        << ciohost::AttackStrategyName(strategy);
    EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobWrite),
              0u)
        << ciohost::AttackStrategyName(strategy);
  }
}

TEST(L2Adversary, AllStrategiesSafeAndOftenDelivering) {
  for (auto strategy : ciohost::AllAttackStrategies()) {
    World world;
    world.adversary.Arm(world.shared.get(),
                        world.transport->AttackSurface());
    world.adversary.set_strategy(strategy);
    for (int i = 0; i < 50; ++i) {
      (void)cionet::SendOne(*world.peer, world.ToGuest(500));
      world.clock.Advance(25'000);
      world.device->Poll();
      (void)cionet::ReceiveOne(*world.transport);
      (void)cionet::SendOne(*world.transport, world.FromGuest(500));
      world.device->Poll();
    }
    world.adversary.Disarm();
    EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobRead),
              0u)
        << ciohost::AttackStrategyName(strategy);
    EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobWrite),
              0u)
        << ciohost::AttackStrategyName(strategy);
  }
}

}  // namespace
