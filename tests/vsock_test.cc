// Tests for the device zoo (ISSUE 7): the virtio-vsock stream device and
// the dual-NIC (bonded virtio) configuration.

#include <gtest/gtest.h>

#include "src/cio/engine.h"
#include "src/virtio/vsock_device.h"
#include "src/virtio/vsock_driver.h"

namespace {

using cio::LinkedPair;
using cio::StackConfig;
using cio::StackProfile;

StackConfig VsockClientConfig() {
  StackConfig config = StackConfig::DefaultsFor(StackProfile::kHardenedVirtio, 1);
  config.enable_vsock = true;
  return config;
}

TEST(VsockTest, NegotiatesAndReportsGuestCid) {
  StackConfig client = VsockClientConfig();
  StackConfig server = StackConfig::DefaultsFor(StackProfile::kHardenedVirtio, 2);
  LinkedPair pair(client, server);
  ASSERT_FALSE(pair.client->Failed());
  ciovirtio::VirtioVsockDriver* vsock = pair.client->vsock_driver();
  ASSERT_NE(vsock, nullptr);
  EXPECT_EQ(vsock->guest_cid(), ciovirtio::kVsockGuestCidBase + 1);
  // The server did not opt in: no vsock attached there.
  EXPECT_EQ(pair.server->vsock_driver(), nullptr);
}

TEST(VsockTest, ConnectAndEchoRoundTrip) {
  LinkedPair pair(VsockClientConfig(),
                  StackConfig::DefaultsFor(StackProfile::kHardenedVirtio, 2));
  ciovirtio::VirtioVsockDriver* vsock = pair.client->vsock_driver();
  ASSERT_NE(vsock, nullptr);

  ASSERT_TRUE(vsock->Connect(4321).ok());
  EXPECT_TRUE(vsock->connected());

  ciobase::Buffer first = ciobase::BufferFromString("hello over vsock");
  ciobase::Buffer second = ciobase::BufferFromString("second stream payload");
  ASSERT_TRUE(vsock->Send(first).ok());
  ASSERT_TRUE(vsock->Send(second).ok());

  std::vector<ciobase::Buffer> echoed;
  for (int round = 0; round < 64 && echoed.size() < 2; ++round) {
    pair.Pump();
    (void)vsock->Poll();
    for (auto r = vsock->Receive(); r.ok(); r = vsock->Receive()) {
      echoed.push_back(std::move(*r));
    }
  }
  ASSERT_EQ(echoed.size(), 2u);
  EXPECT_EQ(echoed[0], first);   // echo service preserves order
  EXPECT_EQ(echoed[1], second);
  EXPECT_GE(vsock->stats().packets_sent, 2u);
  EXPECT_GE(vsock->stats().packets_received, 2u);
  EXPECT_GE(pair.client->vsock_device()->stats().bytes_echoed,
            first.size() + second.size());
}

TEST(VsockTest, ForgedUsedIndexIsTypedNotSilent) {
  LinkedPair pair(VsockClientConfig(),
                  StackConfig::DefaultsFor(StackProfile::kHardenedVirtio, 2));
  ciovirtio::VirtioVsockDriver* vsock = pair.client->vsock_driver();
  ASSERT_NE(vsock, nullptr);
  ASSERT_TRUE(vsock->Connect(4321).ok());

  // Hostile host: jump the RX used index far past anything the device
  // published. The hardened driver must reject the forged completions with
  // typed status / rejection counters — never crash or corrupt.
  auto layout = ciovirtio::VsockLayout::Make(64, 2048, 128);
  pair.client->vsock_region()->HostWriteLe16(layout.rx.UsedIdx(), 0xffff);

  ciobase::Status status = vsock->Poll();
  const ciovirtio::VirtioVsockDriver::Stats& stats = vsock->stats();
  EXPECT_TRUE(!status.ok() || stats.completions_rejected > 0 ||
              stats.header_violations > 0)
      << "forged used index must surface as typed detection";

  // No guest-actor memory violation: the driver stayed inside its own
  // bookkeeping instead of trusting the forged index.
  for (const ciotee::ViolationEvent& event :
       pair.client->memory().violations()) {
    EXPECT_NE(event.actor, ciotee::Domain::kGuest);
  }
}

TEST(DualNetTest, BothDevicesCarryEstablishedTraffic) {
  StackConfig client = StackConfig::DefaultsFor(StackProfile::kHardenedVirtio, 1);
  client.net_devices = 2;
  StackConfig server = StackConfig::DefaultsFor(StackProfile::kHardenedVirtio, 2);
  LinkedPair pair(client, server);
  ASSERT_FALSE(pair.client->Failed());
  ASSERT_NE(pair.client->virtio_driver2(), nullptr);
  ASSERT_NE(pair.client->shared_region2(), nullptr);
  ASSERT_TRUE(pair.Establish());

  ciobase::Buffer message = ciobase::BufferFromString(
      "payload spread across two bonded virtio devices");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pair.client->SendMessage(message).ok());
  }
  size_t received = 0;
  for (int round = 0; round < 200 && received < 8; ++round) {
    pair.Pump();
    for (auto m = pair.server->ReceiveMessage(); m.ok();
         m = pair.server->ReceiveMessage()) {
      EXPECT_EQ(*m, message);
      ++received;
    }
  }
  EXPECT_EQ(received, 8u);
  // The fabric's RSS round-robin spreads unicast across both endpoints, so
  // both devices must have moved frames in BOTH directions.
  EXPECT_GT(pair.client->virtio_driver()->stats().frames_sent, 0u);
  EXPECT_GT(pair.client->virtio_driver2()->stats().frames_sent, 0u);
  EXPECT_GT(pair.client->virtio_driver()->stats().frames_received, 0u);
  EXPECT_GT(pair.client->virtio_driver2()->stats().frames_received, 0u);
}

TEST(DualNetTest, VsockAndDualNetComposeOnOneGuest) {
  // The full zoo on one node: two net devices + a vsock stream, all three
  // shared regions live at once (the fuzzer's multi-device profile).
  StackConfig client = StackConfig::DefaultsFor(StackProfile::kHardenedVirtio, 1);
  client.net_devices = 2;
  client.enable_vsock = true;
  StackConfig server = StackConfig::DefaultsFor(StackProfile::kHardenedVirtio, 2);
  LinkedPair pair(client, server);
  ASSERT_FALSE(pair.client->Failed());
  ASSERT_TRUE(pair.Establish());
  ASSERT_NE(pair.client->vsock_driver(), nullptr);
  ASSERT_TRUE(pair.client->vsock_driver()->Connect(5000).ok());

  ciobase::Buffer net_message = ciobase::BufferFromString("net side");
  ciobase::Buffer vsock_message = ciobase::BufferFromString("vsock side");
  ASSERT_TRUE(pair.client->SendMessage(net_message).ok());
  ASSERT_TRUE(pair.client->vsock_driver()->Send(vsock_message).ok());

  bool net_done = false, vsock_done = false;
  for (int round = 0; round < 200 && !(net_done && vsock_done); ++round) {
    pair.Pump();
    for (auto m = pair.server->ReceiveMessage(); m.ok();
         m = pair.server->ReceiveMessage()) {
      EXPECT_EQ(*m, net_message);
      net_done = true;
    }
    (void)pair.client->vsock_driver()->Poll();
    for (auto r = pair.client->vsock_driver()->Receive(); r.ok();
         r = pair.client->vsock_driver()->Receive()) {
      EXPECT_EQ(*r, vsock_message);
      vsock_done = true;
    }
  }
  EXPECT_TRUE(net_done);
  EXPECT_TRUE(vsock_done);
}

}  // namespace
