// Virtqueue-level tests: descriptor chains (the NEXT flag), the device's
// bounded chain walk (a looping chain from a hostile peer terminates), the
// single-fetch vs multi-fetch descriptor reads, and ring index arithmetic
// across wraps — the transport mechanics under the virtio-net driver.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/tee/memory.h"
#include "src/tee/shared_region.h"
#include "src/virtio/virtqueue.h"

namespace {

using ciobase::Buffer;
using namespace ciovirtio;  // NOLINT: test file

struct QueueWorld {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  ciotee::TeeMemory memory;
  VirtqLayout layout;
  std::unique_ptr<ciotee::SharedRegion> shared;
  std::unique_ptr<VirtqueueDriver> driver;
  std::unique_ptr<VirtqueueDevice> device;

  explicit QueueWorld(uint16_t queue_size = 16) {
    layout.base = 0;
    layout.queue_size = queue_size;
    shared = std::make_unique<ciotee::SharedRegion>(
        &memory, layout.TotalSize() + 4096, "vq");
    driver = std::make_unique<VirtqueueDriver>(shared.get(), layout,
                                               &costs);
    device = std::make_unique<VirtqueueDevice>(shared.get(), layout,
                                               nullptr);
  }
};

TEST(Virtqueue, DescriptorRoundTrip) {
  QueueWorld world;
  VirtqDesc desc;
  desc.addr = 0x1234;
  desc.len = 99;
  desc.flags = kDescFlagWrite;
  desc.next = 7;
  world.driver->WriteDesc(3, desc);
  VirtqDesc read = world.driver->ReadDescOnce(3);
  EXPECT_EQ(read.addr, desc.addr);
  EXPECT_EQ(read.len, desc.len);
  EXPECT_EQ(read.flags, desc.flags);
  EXPECT_EQ(read.next, desc.next);
  // The device sees the same bytes.
  VirtqDesc dev = world.device->ReadDesc(3);
  EXPECT_EQ(dev.addr, desc.addr);
}

TEST(Virtqueue, ChainFollowedInOrder) {
  QueueWorld world;
  // 0 -> 5 -> 2, lengths 10/20/30.
  world.driver->WriteDesc(0, {100, 10, kDescFlagNext, 5});
  world.driver->WriteDesc(5, {200, 20, kDescFlagNext, 2});
  world.driver->WriteDesc(2, {300, 30, 0, 0});
  world.driver->PostAvail(0);
  auto head = world.device->PopAvail();
  ASSERT_TRUE(head.has_value());
  auto chain = world.device->ReadChain(*head);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].len, 10u);
  EXPECT_EQ(chain[1].len, 20u);
  EXPECT_EQ(chain[2].len, 30u);
}

TEST(Virtqueue, LoopingChainIsBounded) {
  QueueWorld world;
  // 0 -> 1 -> 0 -> ... : a loop. The device must terminate its walk.
  world.driver->WriteDesc(0, {0, 1, kDescFlagNext, 1});
  world.driver->WriteDesc(1, {0, 1, kDescFlagNext, 0});
  world.driver->PostAvail(0);
  auto head = world.device->PopAvail();
  ASSERT_TRUE(head.has_value());
  auto chain = world.device->ReadChain(*head);
  EXPECT_LE(chain.size(), world.layout.queue_size);
}

TEST(Virtqueue, UsedRingFifoAcrossWrap) {
  QueueWorld world(4);  // tiny queue: wraps fast
  for (uint32_t i = 0; i < 20; ++i) {
    world.device->PushUsed(i, i * 10, 4096);
    auto elem = world.driver->PopUsed(/*single_fetch=*/true);
    ASSERT_TRUE(elem.has_value()) << i;
    EXPECT_EQ(elem->id, i);
    EXPECT_EQ(elem->len, i * 10);
  }
  EXPECT_FALSE(world.driver->PopUsed(true).has_value());
}

TEST(Virtqueue, SingleFetchVsDoubleFetchUnderTamper) {
  QueueWorld world;
  world.device->PushUsed(3, 100, 4096);
  // Adversarial hook: alternate the length field between honest and bogus.
  uint64_t used0 = world.layout.UsedRing(0);
  bool flip = false;
  world.shared->SetTamperHook([&](ciobase::MutableByteSpan bytes) {
    flip = !flip;
    ciobase::StoreLe32(bytes.data() + used0 + 4, flip ? 100 : 0xffffffff);
  });
  auto elem = world.driver->PopUsed(/*single_fetch=*/true);
  ASSERT_TRUE(elem.has_value());
  // Single fetch: id and len came from the SAME window, so they are a
  // coherent pair (either both honest or both from the same tampered
  // image) — validating one validates the bytes actually used.
  EXPECT_EQ(elem->id, 3u);
  world.shared->ClearTamperHook();
}

TEST(Virtqueue, FreeListDelaysReuse) {
  QueueWorld world(8);
  auto a = world.driver->AllocDesc();
  auto b = world.driver->AllocDesc();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  world.driver->FreeDesc(*a);
  // FIFO: the freed id goes to the back; the next alloc is NOT `a`.
  auto c = world.driver->AllocDesc();
  ASSERT_TRUE(c.has_value());
  EXPECT_NE(*c, *a);
}

TEST(Virtqueue, ExhaustionReturnsNothing) {
  QueueWorld world(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(world.driver->AllocDesc().has_value());
  }
  EXPECT_FALSE(world.driver->AllocDesc().has_value());
}

}  // namespace
