// End-to-end tests for the TCP/IP stack over the simulated fabric:
// handshake, bidirectional transfer, bulk transfer under loss and
// reordering, graceful and abortive close, listener behavior, and
// parameterized sweeps over fabric conditions.

#include <gtest/gtest.h>

#include <string>

#include "src/base/rng.h"
#include "src/net/stack.h"
#include "tests/net_testing.h"

namespace {

using ciobase::Buffer;
using ciobase::BufferFromString;
using ciobase::StringFromBytes;
using cionet::NetStack;
using cionet::SocketId;
using cionet::TcpState;
using ciotest::TwoHostWorld;

// Drives a connect/accept pair to ESTABLISHED; returns {client, server}.
std::pair<SocketId, SocketId> Establish(TwoHostWorld& world, uint16_t port) {
  auto listener = world.stack_b->TcpListen(port);
  EXPECT_TRUE(listener.ok());
  auto client = world.stack_a->TcpConnect(world.stack_b->ip(), port);
  EXPECT_TRUE(client.ok());
  SocketId server{};
  bool accepted = world.PumpUntil([&] {
    auto result = world.stack_b->TcpAccept(*listener);
    if (result.ok()) {
      server = *result;
      return true;
    }
    return false;
  });
  EXPECT_TRUE(accepted);
  bool established = world.PumpUntil([&] {
    auto client_state = world.stack_a->GetTcpState(*client);
    auto server_state = world.stack_b->GetTcpState(server);
    return client_state.ok() && *client_state == TcpState::kEstablished &&
           server_state.ok() && *server_state == TcpState::kEstablished;
  });
  EXPECT_TRUE(established);
  return {*client, server};
}

// Sends `data` from `from`/`src` to `to`/`dst` and returns what arrived.
std::string Transfer(TwoHostWorld& world, NetStack& from, SocketId src,
                     NetStack& to, SocketId dst, const std::string& data) {
  size_t offset = 0;
  std::string received;
  world.PumpUntil(
      [&] {
        if (offset < data.size()) {
          auto sent = from.TcpSend(
              src, ciobase::ByteSpan(
                       reinterpret_cast<const uint8_t*>(data.data()) + offset,
                       data.size() - offset));
          if (sent.ok()) {
            offset += *sent;
          }
        }
        uint8_t buf[4096];
        auto got = to.TcpReceive(dst, buf);
        if (got.ok() && *got > 0) {
          received.append(reinterpret_cast<char*>(buf), *got);
        }
        return received.size() == data.size();
      },
      200000);
  return received;
}

TEST(TcpHandshake, EstablishesBothSides) {
  TwoHostWorld world;
  auto [client, server] = Establish(world, 8080);
  auto client_state = world.stack_a->GetTcpState(client);
  auto server_state = world.stack_b->GetTcpState(server);
  ASSERT_TRUE(client_state.ok());
  ASSERT_TRUE(server_state.ok());
  EXPECT_EQ(*client_state, TcpState::kEstablished);
  EXPECT_EQ(*server_state, TcpState::kEstablished);
}

TEST(TcpHandshake, ConnectToClosedPortFails) {
  TwoHostWorld world;
  auto client = world.stack_a->TcpConnect(world.stack_b->ip(), 9999);
  ASSERT_TRUE(client.ok());
  bool closed = world.PumpUntil([&] {
    auto state = world.stack_a->GetTcpState(*client);
    return state.ok() && *state == TcpState::kClosed;
  });
  EXPECT_TRUE(closed);  // RST from the peer kills the attempt
}

TEST(TcpTransfer, SmallMessage) {
  TwoHostWorld world;
  auto [client, server] = Establish(world, 8080);
  std::string received = Transfer(world, *world.stack_a, client,
                                  *world.stack_b, server, "hello tcp");
  EXPECT_EQ(received, "hello tcp");
}

TEST(TcpTransfer, Bidirectional) {
  TwoHostWorld world;
  auto [client, server] = Establish(world, 8080);
  std::string to_server = Transfer(world, *world.stack_a, client,
                                   *world.stack_b, server, "ping");
  std::string to_client = Transfer(world, *world.stack_b, server,
                                   *world.stack_a, client, "pong");
  EXPECT_EQ(to_server, "ping");
  EXPECT_EQ(to_client, "pong");
}

TEST(TcpTransfer, BulkLargerThanWindows) {
  TwoHostWorld world;
  auto [client, server] = Establish(world, 8080);
  ciobase::Rng rng(7);
  std::string data(512 * 1024, '\0');
  for (auto& c : data) {
    c = static_cast<char>('a' + rng.NextBounded(26));
  }
  std::string received = Transfer(world, *world.stack_a, client,
                                  *world.stack_b, server, data);
  EXPECT_EQ(received.size(), data.size());
  EXPECT_EQ(received, data);
}

TEST(TcpTransfer, SegmentsLargerThanMss) {
  TwoHostWorld world;
  auto [client, server] = Establish(world, 8080);
  std::string data(5000, 'x');  // > 3 MSS
  std::string received = Transfer(world, *world.stack_a, client,
                                  *world.stack_b, server, data);
  EXPECT_EQ(received, data);
}

TEST(TcpClose, GracefulBothDirections) {
  TwoHostWorld world;
  auto [client, server] = Establish(world, 8080);
  ASSERT_TRUE(world.stack_a->TcpClose(client).ok());
  // Server sees EOF (orderly shutdown surfaces as kFailedPrecondition).
  bool eof = world.PumpUntil([&] {
    uint8_t buf[16];
    auto got = world.stack_b->TcpReceive(server, buf);
    return !got.ok() &&
           got.status().code() == ciobase::StatusCode::kFailedPrecondition;
  });
  EXPECT_TRUE(eof);
  ASSERT_TRUE(world.stack_b->TcpClose(server).ok());
  // Both connections wind down fully (client passes through TIME_WAIT).
  bool done = world.PumpUntil(
      [&] {
        auto state = world.stack_b->GetTcpState(server);
        return !state.ok() || *state == TcpState::kClosed;
      },
      400000);
  EXPECT_TRUE(done);
}

TEST(TcpClose, AbortSendsRst) {
  TwoHostWorld world;
  auto [client, server] = Establish(world, 8080);
  ASSERT_TRUE(world.stack_a->TcpAbort(client).ok());
  bool reset = world.PumpUntil([&] {
    auto state = world.stack_b->GetTcpState(server);
    return !state.ok() || *state == TcpState::kClosed;
  });
  EXPECT_TRUE(reset);
}

TEST(TcpClose, DataBeforeFinIsDelivered) {
  TwoHostWorld world;
  auto [client, server] = Establish(world, 8080);
  std::string data(40000, 'q');
  size_t offset = 0;
  // Queue everything, then close immediately: FIN must trail the data.
  world.PumpUntil([&] {
    auto sent = world.stack_a->TcpSend(
        client, ciobase::ByteSpan(
                    reinterpret_cast<const uint8_t*>(data.data()) + offset,
                    data.size() - offset));
    if (sent.ok()) {
      offset += *sent;
    }
    return offset == data.size();
  });
  ASSERT_TRUE(world.stack_a->TcpClose(client).ok());
  std::string received;
  bool eof = world.PumpUntil(
      [&] {
        uint8_t buf[4096];
        auto got = world.stack_b->TcpReceive(server, buf);
        if (!got.ok()) {
          // Orderly EOF only once all queued data has been drained.
          return got.status().code() ==
                 ciobase::StatusCode::kFailedPrecondition;
        }
        received.append(reinterpret_cast<char*>(buf), *got);
        return false;
      },
      200000);
  EXPECT_TRUE(eof);
  EXPECT_EQ(received, data);
}

TEST(TcpListener, MultipleSequentialClients) {
  TwoHostWorld world;
  auto listener = world.stack_b->TcpListen(7070);
  ASSERT_TRUE(listener.ok());
  for (int i = 0; i < 3; ++i) {
    auto client = world.stack_a->TcpConnect(world.stack_b->ip(), 7070);
    ASSERT_TRUE(client.ok());
    SocketId server{};
    ASSERT_TRUE(world.PumpUntil([&] {
      auto result = world.stack_b->TcpAccept(*listener);
      if (result.ok()) {
        server = *result;
        return true;
      }
      return false;
    }));
    std::string message = "client " + std::to_string(i);
    EXPECT_EQ(Transfer(world, *world.stack_a, *client, *world.stack_b, server,
                       message),
              message);
    EXPECT_TRUE(world.stack_a->TcpClose(*client).ok());
    EXPECT_TRUE(world.stack_b->TcpClose(server).ok());
    world.Pump(200);
  }
}

// --- Adverse network conditions (property-style sweep) ----------------------

struct FabricCase {
  double loss;
  double reorder;
  const char* name;
};

class TcpAdverseTest : public ::testing::TestWithParam<FabricCase> {};

TEST_P(TcpAdverseTest, BulkTransferSurvives) {
  cionet::Fabric::Options options;
  options.loss_probability = GetParam().loss;
  options.reorder_probability = GetParam().reorder;
  TwoHostWorld world(options);
  auto [client, server] = Establish(world, 8080);
  ciobase::Rng rng(99);
  std::string data(100 * 1024, '\0');
  for (auto& c : data) {
    c = static_cast<char>(rng.NextBounded(256));
  }
  std::string received = Transfer(world, *world.stack_a, client,
                                  *world.stack_b, server, data);
  ASSERT_EQ(received.size(), data.size())
      << "under " << GetParam().name;
  EXPECT_EQ(received, data) << "under " << GetParam().name;
  auto stats = world.stack_a->GetTcpStats(client);
  ASSERT_TRUE(stats.ok());
  if (GetParam().loss >= 0.05) {
    // At 5%+ loss over ~100 KiB the chance of losing no segment is
    // negligible; at 1% it is merely likely, so we don't assert there.
    EXPECT_GT(stats->retransmissions, 0u) << "loss must trigger retransmits";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, TcpAdverseTest,
    ::testing::Values(FabricCase{0.0, 0.0, "clean"},
                      FabricCase{0.01, 0.0, "loss1pct"},
                      FabricCase{0.05, 0.0, "loss5pct"},
                      FabricCase{0.0, 0.1, "reorder10pct"},
                      FabricCase{0.02, 0.05, "loss+reorder"}),
    [](const ::testing::TestParamInfo<FabricCase>& info) {
      std::string name = info.param.name;
      for (auto& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

TEST(TcpFlowControl, ReceiverStallOpensWindowLater) {
  TwoHostWorld world;
  auto [client, server] = Establish(world, 8080);
  // Fill the receiver: send more than its 64 KiB receive buffer and do not
  // read. The sender must stall instead of losing data.
  std::string data(200 * 1024, 'z');
  size_t offset = 0;
  world.PumpUntil(
      [&] {
        auto sent = world.stack_a->TcpSend(
            client, ciobase::ByteSpan(
                        reinterpret_cast<const uint8_t*>(data.data()) + offset,
                        data.size() - offset));
        if (sent.ok()) {
          offset += *sent;
        }
        return offset == data.size();
      },
      5000);
  world.Pump(2000);
  // Now drain; every byte must arrive in order.
  std::string received;
  world.PumpUntil(
      [&] {
        uint8_t buf[8192];
        auto got = world.stack_b->TcpReceive(server, buf);
        if (got.ok() && *got > 0) {
          received.append(reinterpret_cast<char*>(buf), *got);
        }
        return received.size() == data.size();
      },
      400000);
  EXPECT_EQ(received.size(), data.size());
  EXPECT_EQ(received, data);
}

TEST(TcpFuzz, RandomSegmentInjectionNeverCrashesOrCorrupts) {
  // An on-path attacker (or a buggy middlebox) injects syntactically valid
  // TCP segments with random seq/ack/flags/payload into an established
  // connection, interleaved with a real transfer. The stack must never
  // crash, and every byte the application receives must be bytes the peer
  // actually sent, in order.
  TwoHostWorld world;
  auto [client, server] = Establish(world, 8080);
  ciobase::Rng rng(77);
  std::string data(30'000, '\0');
  for (auto& c : data) {
    c = static_cast<char>('A' + rng.NextBounded(26));
  }
  size_t offset = 0;
  std::string received;
  bool reset_seen = false;
  world.PumpUntil(
      [&] {
        // Inject a forged segment toward the server every few rounds.
        if (rng.NextBool(0.3)) {
          cionet::TcpHeader forged;
          forged.src_port = 49152;  // the client's ephemeral port
          forged.dst_port = 8080;
          forged.seq = rng.NextU32();
          forged.ack = rng.NextU32();
          forged.flags = static_cast<uint8_t>(rng.NextBounded(32));
          forged.window = static_cast<uint16_t>(rng.NextBounded(65536));
          ciobase::Buffer segment;
          forged.Serialize(segment);
          ciobase::Buffer junk = rng.Bytes(rng.NextBounded(100));
          ciobase::Append(segment, junk);
          uint16_t checksum = cionet::TransportChecksum(
              world.stack_a->ip(), world.stack_b->ip(), cionet::kIpProtoTcp,
              segment);
          ciobase::StoreBe16(segment.data() + 16, checksum);
          cionet::Ipv4Header ip;
          ip.protocol = cionet::kIpProtoTcp;
          ip.src = world.stack_a->ip();
          ip.dst = world.stack_b->ip();
          ip.total_length = static_cast<uint16_t>(
              cionet::kIpv4HeaderSize + segment.size());
          ciobase::Buffer frame;
          cionet::EthernetHeader eth{world.port_b->mac(),
                                     world.port_a->mac(),
                                     cionet::kEtherTypeIpv4};
          eth.Serialize(frame);
          ip.Serialize(frame);
          ciobase::Append(frame, segment);
          (void)world.fabric->Inject(world.port_a->endpoint(), frame);
        }
        if (offset < data.size()) {
          auto sent = world.stack_a->TcpSend(
              client, ciobase::ByteSpan(
                          reinterpret_cast<const uint8_t*>(data.data()) +
                              offset,
                          data.size() - offset));
          if (sent.ok()) {
            offset += *sent;
          } else {
            reset_seen = true;  // a forged RST/data killed the connection
          }
        }
        uint8_t buf[4096];
        auto got = world.stack_b->TcpReceive(server, buf);
        if (got.ok() && *got > 0) {
          received.append(reinterpret_cast<char*>(buf), *got);
        } else if (!got.ok() && got.status().code() !=
                                    ciobase::StatusCode::kUnavailable) {
          reset_seen = true;
        }
        return received.size() == data.size() || reset_seen;
      },
      400000);
  // Whatever arrived must be an exact prefix of what was sent — a forged
  // segment may kill the connection (blind-RST is in this attacker's
  // power) but must never corrupt the stream.
  ASSERT_LE(received.size(), data.size());
  EXPECT_EQ(received, data.substr(0, received.size()));
}

TEST(TcpStats, CountersAdvance) {
  TwoHostWorld world;
  auto [client, server] = Establish(world, 8080);
  Transfer(world, *world.stack_a, client, *world.stack_b, server,
           std::string(10000, 'k'));
  auto stats = world.stack_a->GetTcpStats(client);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->segments_sent, 0u);
  EXPECT_GT(stats->bytes_sent, 9000u);
  auto sstats = world.stack_b->GetTcpStats(server);
  ASSERT_TRUE(sstats.ok());
  EXPECT_EQ(sstats->bytes_received, 10000u);
}

}  // namespace
