// Production session lifecycle: attestation-gated admission, transparent
// in-band rekeying, and cross-instance migration.
//
//   * Admission: healthy clients present transcript-bound reports and are
//     admitted; forged / stale / missing reports are typed kUnauthenticated
//     rejections (counted outside the leakage score), and the probing
//     clients fail terminally instead of burning the reconnect budget.
//   * Rekeying: key updates fire transparently from traffic thresholds —
//     no drop, no loss — including a kill-link + stalled-counter fault
//     window landing mid-key-update; both sides converge on the same
//     ratchet generation.
//   * Migration: sessions sealed out of one instance resume on a second
//     with exactly-once delivery intact; replaying an already-imported
//     seal (the host restoring an old snapshot) and bit-flipped seals are
//     typed kTampered.
//   * Fuzz: a Mutator-driven loop over the sealed blob — every mutated
//     import must fail typed, pristine imports must succeed.
//   * Pool accounting: after park/reattach churn plus orderly disconnect
//     churn, every registered pool slot is back in the free list on both
//     sides of the boundary (the park/reattach leak audit).

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/fuzz/mutator.h"
#include "src/serve/harness.h"
#include "src/tee/monotonic_counter.h"

namespace {

using ciobase::Buffer;
using ciobase::BufferFromString;
using ciobase::StatusCode;
using cio::StackProfile;
using namespace cioserve;  // NOLINT: test file

std::string ToString(const Buffer& buffer) {
  return std::string(reinterpret_cast<const char*>(buffer.data()),
                     buffer.size());
}

// Closed-loop echo driver: each client keeps at most one message in flight,
// so nothing ever outruns a resend window across faults or migrations, and
// "run returned true" means every message came back exactly once, in order.
struct EchoDriver {
  MultiClientWorld& world;
  std::vector<size_t> sent;
  std::vector<size_t> received;

  explicit EchoDriver(MultiClientWorld& w)
      : world(w), sent(w.clients.size(), 0), received(w.clients.size(), 0) {}

  bool Run(size_t per_client, int max_rounds = 120000,
           const std::function<void(int)>& on_round = {}) {
    std::vector<size_t> target(sent);
    for (auto& t : target) {
      t += per_client;
    }
    std::vector<bool> in_flight(world.clients.size(), false);
    for (int round = 0; round < max_rounds; ++round) {
      if (on_round) {
        on_round(round);
      }
      bool done = true;
      for (size_t i = 0; i < world.clients.size(); ++i) {
        auto& client = *world.clients[i];
        if (client.denied()) {
          continue;  // rejected probes do not participate
        }
        if (!in_flight[i] && sent[i] < target[i] && client.Ready()) {
          std::string payload =
              "c" + std::to_string(i) + " m" + std::to_string(sent[i]);
          if (client.SendMessage(BufferFromString(payload)).ok()) {
            ++sent[i];
            in_flight[i] = true;
          }
        }
        for (;;) {
          auto echo = client.ReceiveMessage();
          if (!echo.ok()) {
            break;
          }
          std::string expect =
              "c" + std::to_string(i) + " m" + std::to_string(received[i]);
          if (ToString(*echo) != expect) {
            return false;  // out of order / duplicate / corrupt
          }
          ++received[i];
          in_flight[i] = false;
        }
        if (received[i] < target[i]) {
          done = false;
        }
      }
      world.EchoRound();
      world.Pump();
      if (done) {
        return true;
      }
    }
    return false;
  }
};

// --- Attestation-gated admission ---------------------------------------------

TEST(Admission, HealthyFleetAdmitted) {
  MultiClientWorld::Options options;
  options.num_clients = 4;
  options.attestation_key = BufferFromString("fleet-attestation-root");
  MultiClientWorld world(options);
  ASSERT_TRUE(world.EstablishAll());

  EXPECT_EQ(world.server->stats().admitted, 4u);
  EXPECT_EQ(world.server->stats().rejected_unauthenticated, 0u);
  for (auto& client : world.clients) {
    EXPECT_TRUE(client->admitted());
    EXPECT_FALSE(client->denied());
  }

  EchoDriver echo(world);
  EXPECT_TRUE(echo.Run(4));
}

TEST(Admission, ForgedStaleAndMissingReportsRejectedTyped) {
  MultiClientWorld::Options options;
  options.num_clients = 6;
  options.attestation_key = BufferFromString("fleet-attestation-root");
  options.forged_clients = {1};   // wrong signing key
  options.stale_clients = {2};    // report over a stale nonce
  options.keyless_clients = {3};  // no report at all
  MultiClientWorld world(options);
  ASSERT_TRUE(world.EstablishAll());

  EXPECT_EQ(world.server->stats().admitted, 3u);
  EXPECT_EQ(world.server->stats().rejected_unauthenticated, 3u);
  EXPECT_EQ(world.server_node->observability().counters().Get(
                "server.rejected_unauthenticated"),
            3u);
  // Typed rejections live OUTSIDE the leakage/tamper accounting.
  EXPECT_EQ(world.server->stats().tampered, 0u);
  EXPECT_EQ(world.server->parked_sessions(), 0u);  // nothing worth parking

  for (size_t i : {size_t{1}, size_t{2}, size_t{3}}) {
    EXPECT_TRUE(world.clients[i]->denied()) << "probe " << i;
    EXPECT_FALSE(world.clients[i]->admitted()) << "probe " << i;
    EXPECT_TRUE(world.clients[i]->Failed()) << "probe " << i;
  }
  for (size_t i : {size_t{0}, size_t{4}, size_t{5}}) {
    EXPECT_TRUE(world.clients[i]->admitted()) << "client " << i;
  }

  // The healthy majority is unaffected.
  EchoDriver echo(world);
  EXPECT_TRUE(echo.Run(4));
}

TEST(Admission, ReattachAfterFaultReAttests) {
  MultiClientWorld::Options options;
  options.num_clients = 2;
  options.attestation_key = BufferFromString("fleet-attestation-root");
  MultiClientWorld world(options);
  ASSERT_TRUE(world.EstablishAll());
  EchoDriver echo(world);
  ASSERT_TRUE(echo.Run(4));

  // Kill the server link past the TCP retry budget: every connection dies,
  // reconnects, reattaches — and must attest AGAIN on the new transcript.
  world.server_node->adversary().InjectFault(
      {ciohost::FaultStrategy::kLinkKill, world.clock.now_ns(), 12'000'000});
  ASSERT_TRUE(echo.Run(8));

  EXPECT_GE(world.server->stats().recovered, 1u);
  EXPECT_GE(world.server->stats().admitted,
            2u + world.server->stats().recovered);
  for (auto& client : world.clients) {
    EXPECT_TRUE(client->admitted());
    EXPECT_EQ(client->recovery_stats().messages_lost, 0u);
  }
}

// --- Transparent rekeying ----------------------------------------------------

TEST(Rekey, TransparentUnderLoad) {
  MultiClientWorld::Options options;
  options.num_clients = 4;
  options.rekey_after_records = 8;
  MultiClientWorld world(options);
  ASSERT_TRUE(world.EstablishAll());

  EchoDriver echo(world);
  ASSERT_TRUE(echo.Run(48));

  for (auto& client : world.clients) {
    EXPECT_GE(client->rekeys(), 1u);
    EXPECT_EQ(client->recovery_stats().messages_lost, 0u);
    EXPECT_FALSE(client->Failed());
  }
  // Server sessions ratcheted too (both directions rekey independently).
  uint64_t server_rekeys = 0;
  for (ConnId id : world.server->EstablishedConnections()) {
    const cio::Session* session = world.server->SessionOf(id);
    ASSERT_NE(session, nullptr);
    server_rekeys += session->stats().rekeys;
    EXPECT_GE(session->recv_generation(), 1u);  // saw the clients' updates
  }
  EXPECT_GE(server_rekeys, 4u);
}

TEST(Rekey, SurvivesFaultWindowMidKeyUpdate) {
  // Satellite (c): dual-boundary on both ends, aggressive rekey cadence, a
  // kill-link + stalled-counter window landing while key updates are in
  // flight. Zero messages lost, and once quiesced both sides sit on the
  // same ratchet generation.
  MultiClientWorld::Options options;
  options.profile = StackProfile::kDualBoundary;
  options.num_clients = 1;
  options.rekey_after_records = 4;
  MultiClientWorld world(options);
  ASSERT_TRUE(world.EstablishAll());

  EchoDriver echo(world);
  ASSERT_TRUE(echo.Run(12));

  bool injected = false;
  ASSERT_TRUE(echo.Run(40, 120000, [&](int round) {
    if (round == 20 && !injected) {
      injected = true;
      uint64_t now = world.clock.now_ns();
      world.server_node->adversary().InjectFault(
          {ciohost::FaultStrategy::kLinkKill, now, 12'000'000});
      world.server_node->adversary().InjectFault(
          {ciohost::FaultStrategy::kStallCounters, now + 14'000'000,
           2'000'000});
    }
  }));
  // Let any trailing KeyUpdate record flush and be consumed.
  for (int i = 0; i < 50; ++i) {
    world.EchoRound();
    world.Pump();
  }

  auto& client = *world.clients[0];
  EXPECT_EQ(client.recovery_stats().messages_lost, 0u);
  EXPECT_FALSE(client.Failed());
  EXPECT_GE(client.rekeys(), 1u);
  EXPECT_GT(world.server_node->adversary().fault_events(), 0u);
  EXPECT_GE(world.server->stats().recovered, 1u);

  auto conns = world.server->EstablishedConnections();
  ASSERT_EQ(conns.size(), 1u);
  const cio::Session* server_session = world.server->SessionOf(conns[0]);
  ASSERT_NE(server_session, nullptr);
  // Same ratchet generation on both sides of each direction.
  EXPECT_EQ(client.session().send_generation(),
            server_session->recv_generation());
  EXPECT_EQ(client.session().recv_generation(),
            server_session->send_generation());
}

// --- Cross-instance migration ------------------------------------------------

TEST(Migration, ExactlyOnceAcrossInstances) {
  MultiClientWorld::Options options;
  options.num_clients = 4;
  options.second_server = true;
  options.attestation_key = BufferFromString("fleet-attestation-root");
  MultiClientWorld world(options);
  ASSERT_TRUE(world.EstablishAll());

  EchoDriver echo(world);
  ASSERT_TRUE(echo.Run(6));

  ciotee::MonotonicCounter counter;
  SessionVault vault(BufferFromString("fleet-vault-sealing-key"), &counter);

  // Quiesced (closed loop drained): migrate every session to instance 2.
  auto conns = world.server->EstablishedConnections();
  ASSERT_EQ(conns.size(), 4u);
  std::vector<Buffer> sealed;
  for (ConnId id : conns) {
    auto blob = world.server->MigrateSession(
        id, vault, world.server2_node->ip(), world.server2->config().port);
    ASSERT_TRUE(blob.ok()) << blob.status().message();
    sealed.push_back(*blob);
  }
  EXPECT_EQ(world.server->stats().migrated_out, 4u);
  for (const Buffer& blob : sealed) {
    ASSERT_TRUE(world.server2->ImportSession(blob, vault).ok());
  }
  EXPECT_EQ(world.server2->stats().migrated_in, 4u);

  // Clients follow the redirect, reattach on instance 2, re-attest there.
  ASSERT_TRUE(world.PumpUntil(
      [&] {
        for (auto& client : world.clients) {
          if (client->migrations() != 1 || !client->Ready() ||
              !client->admitted()) {
            return false;
          }
        }
        return world.server2->EstablishedConnections().size() == 4;
      },
      120000));
  EXPECT_EQ(world.server2->stats().recovered, 4u);
  EXPECT_EQ(world.server->active_connections(), 0u);
  EXPECT_EQ(world.server->parked_sessions(), 0u);  // never parked locally

  // Delivery stays exactly-once across the move (sequence continuity).
  ASSERT_TRUE(echo.Run(6));
  for (auto& client : world.clients) {
    EXPECT_EQ(client->recovery_stats().messages_lost, 0u);
    EXPECT_FALSE(client->Failed());
  }

  // The host re-presenting an already-imported seal (a rollback to the
  // pre-migration snapshot) is typed kTampered, not a resurrection.
  auto replay = world.server2->ImportSession(sealed[0], vault);
  EXPECT_EQ(replay.code(), StatusCode::kTampered);
}

TEST(Migration, VaultRejectsTamperAndRollback) {
  ciotee::MonotonicCounter counter;
  SessionVault vault(BufferFromString("vault-key"), &counter);
  Buffer blob = BufferFromString("serialized session state bytes");

  // Pristine round trip.
  Buffer sealed = vault.Seal(blob);
  auto opened = vault.Open(sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, blob);

  // Replay of a consumed seal: kTampered.
  EXPECT_EQ(vault.Open(sealed).status().code(), StatusCode::kTampered);

  // Every single-bit flip: kTampered.
  Buffer sealed2 = vault.Seal(blob);
  for (size_t i = 0; i < sealed2.size(); ++i) {
    Buffer corrupt = sealed2;
    corrupt[i] ^= 0x40;
    EXPECT_EQ(vault.Open(corrupt).status().code(), StatusCode::kTampered)
        << "byte " << i;
  }
  // Truncation: kTampered.
  EXPECT_EQ(vault.Open(ciobase::ByteSpan(sealed2.data(), sealed2.size() - 1))
                .status()
                .code(),
            StatusCode::kTampered);
  EXPECT_EQ(vault.Open(ciobase::ByteSpan(sealed2.data(), 3)).status().code(),
            StatusCode::kTampered);
  // The untouched copy still opens (the probes above consumed nothing).
  EXPECT_TRUE(vault.Open(sealed2).ok());
}

// --- Sealed-blob fuzz (satellite b) ------------------------------------------

TEST(MigrationFuzz, MutatedSealsFailTyped) {
  // A Mutator-driven sweep over the sealed session blob fed to the real
  // import path: any outcome other than a typed kTampered (or a clean
  // import of an untouched blob) is a failure. Runs ASan-clean in CI.
  MultiClientWorld::Options options;
  options.num_clients = 0;
  MultiClientWorld world(options);
  ASSERT_TRUE(world.EstablishAll());

  ciotee::MonotonicCounter counter;
  SessionVault vault(BufferFromString("fuzz-vault-key"), &counter);

  // A realistic envelope: a plaintext-mode session with traffic behind it.
  cio::Session donor(false, BufferFromString("fuzz-psk"), 8);
  donor.Start(ciotls::TlsRole::kClient, 7);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(donor.Send(BufferFromString("m" + std::to_string(i))).ok());
  }
  Buffer state = donor.SerializeState();
  Buffer envelope(4 + state.size());
  ciobase::StoreLe32(envelope.data(), 0x0a000002);  // embedded peer ip
  std::copy(state.begin(), state.end(), envelope.begin() + 4);

  ciofuzz::Mutator mutator(0xf00dfeed);
  size_t rejected = 0;
  size_t pristine = 0;
  for (int iter = 0; iter < 256; ++iter) {
    Buffer sealed = vault.Seal(envelope);
    Buffer mutated = sealed;
    if (iter % 4 == 3) {
      // Truncation arm.
      mutated.resize(mutator.rng().NextU64() % sealed.size());
    } else {
      std::vector<ciofuzz::TargetWindow> windows(1);
      windows[0].name = "seal";
      windows[0].length = mutated.size();
      windows[0].raw =
          ciobase::MutableByteSpan(mutated.data(), mutated.size());
      ciofuzz::FuzzInput input = mutator.Generate(windows, 1, 4);
      mutator.ApplyRound(input, 0, windows);
    }
    if (mutated == sealed) {
      // The schedule happened to be a no-op: the import must SUCCEED.
      ASSERT_TRUE(world.server->ImportSession(mutated, vault).ok());
      ++pristine;
      continue;
    }
    ciobase::Status verdict = world.server->ImportSession(mutated, vault);
    ASSERT_FALSE(verdict.ok()) << "mutated seal imported on iter " << iter;
    ASSERT_EQ(verdict.code(), StatusCode::kTampered)
        << "untyped failure on iter " << iter << ": " << verdict.message();
    ++rejected;
    if (iter % 16 == 0) {
      // The untouched blob still imports: rejection is the mutation's
      // fault, not the vault rotting.
      ASSERT_TRUE(world.server->ImportSession(sealed, vault).ok());
      ++pristine;
    }
  }
  EXPECT_GE(rejected, 200u);
  EXPECT_GE(pristine, 10u);
  EXPECT_EQ(vault.stats().opened, pristine);
}

// --- Pool accounting (satellite a) -------------------------------------------

TEST(PoolAccounting, SlotsBalancedAfterChurnAndFaults) {
  MultiClientWorld::Options options;
  options.profile = StackProfile::kDualBoundary;
  options.num_clients = 8;
  MultiClientWorld world(options);
  ASSERT_TRUE(world.EstablishAll());

  EchoDriver echo(world);
  ASSERT_TRUE(echo.Run(4));

  // Park/reattach churn: the whole herd faults and recovers once.
  world.server_node->adversary().InjectFault(
      {ciohost::FaultStrategy::kLinkKill, world.clock.now_ns(), 12'000'000});
  ASSERT_TRUE(echo.Run(6));
  EXPECT_GE(world.server->stats().recovered, 1u);

  // Orderly churn: every client disconnects; the server reaps everything.
  for (auto& client : world.clients) {
    ASSERT_TRUE(client->Disconnect().ok());
  }
  ASSERT_TRUE(world.PumpUntil(
      [&] {
        return world.server->active_connections() == 0 &&
               world.server->parked_sessions() == 0;
      },
      200000));

  // The audit: every registered pool slot is back in the free list on both
  // sides of the boundary. Before the CloseAndRelease/Disconnect fix the
  // server leaked each closed connection's armed receive slots.
  cio::L5Channel* server_l5 = world.server_node->l5();
  ASSERT_NE(server_l5, nullptr);
  EXPECT_EQ(server_l5->free_slots(), server_l5->queue_config().pool_slots);
  for (auto& client : world.clients) {
    cio::L5Channel* l5 = client->l5();
    ASSERT_NE(l5, nullptr);
    EXPECT_EQ(l5->free_slots(), l5->queue_config().pool_slots);
    EXPECT_EQ(client->sessions_retired(), 1u);
    EXPECT_EQ(client->recovery_stats().messages_lost, 0u);
  }
}

}  // namespace
