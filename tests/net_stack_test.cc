// Integration tests for the NetStack beyond TCP: UDP datagrams, ARP
// resolution through the stack, IP fragmentation of large UDP payloads,
// fabric loss behavior for datagrams, port allocation, and the stack's
// defensive counters against malformed input.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/net/stack.h"
#include "tests/net_testing.h"

namespace {

using ciobase::Buffer;
using ciobase::BufferFromString;
using cionet::SocketId;
using ciotest::TwoHostWorld;

TEST(UdpStack, DatagramRoundTrip) {
  TwoHostWorld world;
  auto socket_a = world.stack_a->UdpOpen(5000);
  auto socket_b = world.stack_b->UdpOpen(6000);
  ASSERT_TRUE(socket_a.ok());
  ASSERT_TRUE(socket_b.ok());
  ASSERT_TRUE(world.stack_a
                  ->UdpSendTo(*socket_a, world.stack_b->ip(), 6000,
                              BufferFromString("datagram one"))
                  .ok());
  cionet::UdpMessage message;
  ASSERT_TRUE(world.PumpUntil([&] {
    auto received = world.stack_b->UdpReceive(*socket_b);
    if (received.ok()) {
      message = *received;
      return true;
    }
    return false;
  }));
  EXPECT_EQ(ciobase::StringFromBytes(message.payload), "datagram one");
  EXPECT_EQ(message.src_ip, world.stack_a->ip());
  EXPECT_EQ(message.src_port, 5000);
  // Reply to the sender address.
  ASSERT_TRUE(world.stack_b
                  ->UdpSendTo(*socket_b, message.src_ip, message.src_port,
                              BufferFromString("reply"))
                  .ok());
  ASSERT_TRUE(world.PumpUntil(
      [&] { return world.stack_a->UdpReceive(*socket_a).ok(); }));
}

TEST(UdpStack, LargeDatagramFragmentsAndReassembles) {
  TwoHostWorld world;
  auto socket_a = world.stack_a->UdpOpen(5000);
  auto socket_b = world.stack_b->UdpOpen(6000);
  ciobase::Rng rng(4);
  Buffer big = rng.Bytes(9000);  // > 6 fragments at MTU 1500
  ASSERT_TRUE(world.stack_a
                  ->UdpSendTo(*socket_a, world.stack_b->ip(), 6000, big)
                  .ok());
  cionet::UdpMessage message;
  ASSERT_TRUE(world.PumpUntil([&] {
    auto received = world.stack_b->UdpReceive(*socket_b);
    if (received.ok()) {
      message = *received;
      return true;
    }
    return false;
  }));
  EXPECT_EQ(message.payload, big);
}

TEST(UdpStack, OversizedPayloadRejected) {
  TwoHostWorld world;
  auto socket = world.stack_a->UdpOpen(5000);
  Buffer way_too_big(70000, 1);
  EXPECT_FALSE(world.stack_a
                   ->UdpSendTo(*socket, world.stack_b->ip(), 6000,
                               way_too_big)
                   .ok());
}

TEST(UdpStack, UnknownPortDropsAndCounts) {
  TwoHostWorld world;
  auto socket = world.stack_a->UdpOpen(5000);
  ASSERT_TRUE(world.stack_a
                  ->UdpSendTo(*socket, world.stack_b->ip(), 4242,
                              BufferFromString("nobody home"))
                  .ok());
  world.Pump(50);
  EXPECT_GT(world.stack_b->stats().no_socket_drops, 0u);
}

TEST(UdpStack, PortCollisionRefused) {
  TwoHostWorld world;
  ASSERT_TRUE(world.stack_a->UdpOpen(5000).ok());
  EXPECT_FALSE(world.stack_a->UdpOpen(5000).ok());
  // Ephemeral allocation avoids the taken port.
  auto ephemeral = world.stack_a->UdpOpen(0);
  ASSERT_TRUE(ephemeral.ok());
}

TEST(UdpStack, CloseStopsDelivery) {
  TwoHostWorld world;
  auto socket_a = world.stack_a->UdpOpen(5000);
  auto socket_b = world.stack_b->UdpOpen(6000);
  ASSERT_TRUE(world.stack_b->UdpClose(*socket_b).ok());
  ASSERT_TRUE(world.stack_a
                  ->UdpSendTo(*socket_a, world.stack_b->ip(), 6000,
                              BufferFromString("late"))
                  .ok());
  world.Pump(50);
  EXPECT_FALSE(world.stack_b->UdpReceive(*socket_b).ok());
}

TEST(StackArp, ResolutionHappensOnceThenCaches) {
  TwoHostWorld world;
  auto socket_a = world.stack_a->UdpOpen(5000);
  auto socket_b = world.stack_b->UdpOpen(6000);
  (void)socket_b;
  // First datagram triggers ARP; several more reuse the cache.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(world.stack_a
                    ->UdpSendTo(*socket_a, world.stack_b->ip(), 6000,
                                BufferFromString("x"))
                    .ok());
    world.Pump(20);
  }
  // Exactly one ARP request/reply pair from A's perspective.
  EXPECT_EQ(world.stack_a->stats().arp_rx, 1u);   // one reply
  EXPECT_GE(world.stack_b->stats().arp_rx, 1u);   // the request (broadcast)
}

TEST(StackRobustness, GarbageFramesOnlyBumpCounters) {
  TwoHostWorld world;
  ciobase::Rng rng(6);
  // Inject random garbage addressed to stack B directly via the fabric.
  for (int i = 0; i < 200; ++i) {
    Buffer frame;
    cionet::EthernetHeader eth{world.port_b->mac(), world.port_a->mac(),
                               static_cast<uint16_t>(
                                   i % 2 == 0 ? cionet::kEtherTypeIpv4
                                              : 0x1234)};
    eth.Serialize(frame);
    ciobase::Append(frame, rng.Bytes(rng.NextBounded(100)));
    (void)world.fabric->Inject(world.port_a->endpoint(), frame);
    world.Pump(2);
  }
  // The stack is still alive and usable.
  auto socket_a = world.stack_a->UdpOpen(5000);
  auto socket_b = world.stack_b->UdpOpen(6000);
  ASSERT_TRUE(world.stack_a
                  ->UdpSendTo(*socket_a, world.stack_b->ip(), 6000,
                              BufferFromString("still alive"))
                  .ok());
  ASSERT_TRUE(world.PumpUntil(
      [&] { return world.stack_b->UdpReceive(*socket_b).ok(); }));
  EXPECT_GT(world.stack_b->stats().parse_errors, 0u);
}

TEST(StackRobustness, CorruptedTcpChecksumDropped) {
  TwoHostWorld world;
  // Build a syntactically valid IPv4+TCP frame with a bad TCP checksum.
  cionet::TcpHeader tcp;
  tcp.src_port = 1;
  tcp.dst_port = 2;
  tcp.flags = cionet::kTcpFlagSyn;
  Buffer segment;
  tcp.Serialize(segment);
  ciobase::StoreBe16(segment.data() + 16, 0xdead);  // wrong checksum
  cionet::Ipv4Header ip;
  ip.protocol = cionet::kIpProtoTcp;
  ip.src = world.stack_a->ip();
  ip.dst = world.stack_b->ip();
  ip.total_length =
      static_cast<uint16_t>(cionet::kIpv4HeaderSize + segment.size());
  Buffer frame;
  cionet::EthernetHeader eth{world.port_b->mac(), world.port_a->mac(),
                             cionet::kEtherTypeIpv4};
  eth.Serialize(frame);
  ip.Serialize(frame);
  ciobase::Append(frame, segment);
  (void)world.fabric->Inject(world.port_a->endpoint(), frame);
  world.Pump(20);
  EXPECT_GT(world.stack_b->stats().checksum_errors, 0u);
  EXPECT_EQ(world.stack_b->stats().rst_sent, 0u);  // dropped, not answered
}

TEST(Fabric, LossAndCaptureAccounting) {
  cionet::Fabric::Options options;
  options.loss_probability = 0.5;
  TwoHostWorld world(options);
  world.fabric->EnableCapture(true);
  auto socket_a = world.stack_a->UdpOpen(5000);
  auto socket_b = world.stack_b->UdpOpen(6000);
  (void)socket_b;
  for (int i = 0; i < 100; ++i) {
    (void)world.stack_a->UdpSendTo(*socket_a, world.stack_b->ip(), 6000,
                                   BufferFromString("lossy"));
    // Long steps: ARP requests are lossy too and retry on a 100 ms backoff.
    world.Pump(3, 50'000'000);
  }
  const auto& stats = world.fabric->stats();
  EXPECT_GT(stats.frames_dropped_loss, 10u);
  EXPECT_GT(stats.frames_routed, 10u);
  EXPECT_EQ(world.fabric->capture().size(), stats.frames_routed);
}

TEST(Fabric, UnknownUnicastDropped) {
  ciobase::SimClock clock;
  cionet::Fabric fabric(&clock, 1);
  cionet::DirectFabricPort port(&fabric, "only",
                                cionet::MacAddress::FromId(1));
  Buffer frame;
  cionet::EthernetHeader eth{cionet::MacAddress::FromId(99),
                             cionet::MacAddress::FromId(1), 0x88b5};
  eth.Serialize(frame);
  EXPECT_TRUE(cionet::SendOne(port, frame).ok());
  EXPECT_EQ(fabric.stats().frames_dropped_unknown, 1u);
}

TEST(Fabric, BroadcastFloodsAllOthers) {
  ciobase::SimClock clock;
  cionet::Fabric fabric(&clock, 1, cionet::Fabric::Options{0, 0, 0, 9216});
  cionet::DirectFabricPort a(&fabric, "a", cionet::MacAddress::FromId(1));
  cionet::DirectFabricPort b(&fabric, "b", cionet::MacAddress::FromId(2));
  cionet::DirectFabricPort c(&fabric, "c", cionet::MacAddress::FromId(3));
  Buffer frame;
  cionet::EthernetHeader eth{cionet::MacAddress::Broadcast(),
                             cionet::MacAddress::FromId(1), 0x88b5};
  eth.Serialize(frame);
  ASSERT_TRUE(cionet::SendOne(a, frame).ok());
  EXPECT_TRUE(cionet::ReceiveOne(b).ok());
  EXPECT_TRUE(cionet::ReceiveOne(c).ok());
  EXPECT_FALSE(cionet::ReceiveOne(a).ok());  // not echoed to the sender
}

TEST(TcpStack, ListenerBacklogOverflowRefusesTypedAndCounts) {
  // Host B's listener holds at most 2 pending connections; 5 SYNs race in
  // with nobody accepting. The overflow must be refused with a RST (typed
  // kLinkReset at the client), counted, and must never grow the queue.
  TwoHostWorld world({}, /*accept_backlog_b=*/2);
  auto listener = world.stack_b->TcpListen(80);
  ASSERT_TRUE(listener.ok());
  std::vector<SocketId> conns;
  for (int i = 0; i < 5; ++i) {
    auto conn = world.stack_a->TcpConnect(world.stack_b->ip(), 80);
    ASSERT_TRUE(conn.ok());
    conns.push_back(*conn);
  }
  world.Pump(500);

  EXPECT_EQ(world.stack_b->stats().accept_overflows, 3u);
  auto pending = world.stack_b->TcpAcceptPending(*listener);
  ASSERT_TRUE(pending.ok());
  EXPECT_EQ(*pending, 2u);  // bounded: never grew past the backlog

  // Clients: 2 established, 3 dead with a typed failure (not a hang).
  int established = 0;
  int refused = 0;
  Buffer scratch(64, 0);
  for (SocketId conn : conns) {
    auto state = world.stack_a->GetTcpState(conn);
    ASSERT_TRUE(state.ok());
    if (*state == cionet::TcpState::kEstablished) {
      ++established;
    } else {
      auto got = world.stack_a->TcpReceive(conn, scratch);
      ASSERT_FALSE(got.ok());
      EXPECT_EQ(got.status().code(), ciobase::StatusCode::kLinkReset);
      ++refused;
    }
  }
  EXPECT_EQ(established, 2);
  EXPECT_EQ(refused, 3);

  // The queued two are still perfectly serviceable.
  auto accepted = world.stack_b->TcpAccept(*listener);
  ASSERT_TRUE(accepted.ok());
  auto readable = world.stack_b->TcpReadable(*accepted);
  ASSERT_TRUE(readable.ok());
  EXPECT_FALSE(*readable);  // no data yet — readiness, not liveness
  auto space = world.stack_b->TcpSendSpace(*accepted);
  ASSERT_TRUE(space.ok());
  EXPECT_GT(*space, 0u);
  auto peer = world.stack_b->GetTcpPeer(*accepted);
  ASSERT_TRUE(peer.ok());
  EXPECT_EQ(*peer, world.stack_a->ip());
}

}  // namespace
