// Fault injection + guest-side recovery, layer by layer:
//
//   * LinkWatchdog policy unit tests (arming, capped exponential backoff,
//     reset-budget exhaustion, progress forgiveness).
//   * L2 transport: a stalled host trips the watchdog, the ring resets and
//     reattaches (kLinkReset), traffic resumes once the host turns honest;
//     a permanently hostile host exhausts the budget (kTimedOut).
//   * Virtio driver: reset-and-reattach re-runs the full negotiation and
//     the datapath comes back.
//   * Engine, end to end: the host kills the link mid-transfer; the
//     dual-boundary node's watchdog + ring reset + TCP retransmit + TLS
//     re-establishment + resend window deliver every message exactly once.
//   * One recovery-campaign cell as ground truth for the bench's claim.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/base/recovery.h"
#include "src/cio/attack_campaign.h"
#include "src/cio/engine.h"
#include "src/cio/l2_host_device.h"
#include "src/cio/l2_transport.h"
#include "src/net/fabric.h"
#include "src/virtio/net_device.h"
#include "src/virtio/net_driver.h"

namespace {

using ciobase::Buffer;
using ciobase::BufferFromString;
using namespace cio;  // NOLINT: test file

// --- Policy units ------------------------------------------------------------

TEST(RecoveryConfig, ValidityRules) {
  ciobase::RecoveryConfig config;  // disabled: always valid
  EXPECT_TRUE(config.Valid());
  config.enabled = true;
  EXPECT_TRUE(config.Valid());
  config.watchdog_timeout_ns = 0;
  EXPECT_FALSE(config.Valid());
  config.watchdog_timeout_ns = 1'000'000;
  config.backoff_cap_ns = config.backoff_initial_ns - 1;
  EXPECT_FALSE(config.Valid());
  config.backoff_cap_ns = config.backoff_initial_ns;
  config.max_resets = 0;
  EXPECT_FALSE(config.Valid());
}

TEST(LinkWatchdog, ArmsExpiresAndBacksOffCapped) {
  ciobase::RecoveryConfig config;
  config.enabled = true;
  config.watchdog_timeout_ns = 1'000'000;
  config.backoff_initial_ns = 1'000'000;
  config.backoff_cap_ns = 4'000'000;
  ciobase::LinkWatchdog watchdog(config);

  watchdog.Arm(0);
  EXPECT_FALSE(watchdog.Expired(999'999));
  EXPECT_TRUE(watchdog.Expired(1'000'000));

  // Each reset doubles the window until the cap.
  watchdog.NoteReset(1'000'000);
  EXPECT_EQ(watchdog.timeout_ns(), 2'000'000u);
  watchdog.NoteReset(3'000'000);
  EXPECT_EQ(watchdog.timeout_ns(), 4'000'000u);
  watchdog.NoteReset(7'000'000);
  EXPECT_EQ(watchdog.timeout_ns(), 4'000'000u);  // capped
  EXPECT_EQ(watchdog.consecutive_resets(), 3u);
}

TEST(LinkWatchdog, ProgressForgivesResetsAndRestoresWindow) {
  ciobase::RecoveryConfig config;
  config.enabled = true;
  config.watchdog_timeout_ns = 1'000'000;
  config.backoff_initial_ns = 1'000'000;
  config.max_resets = 2;
  ciobase::LinkWatchdog watchdog(config);
  watchdog.Arm(0);
  watchdog.NoteReset(1'000'000);
  watchdog.NoteReset(2'000'000);
  EXPECT_TRUE(watchdog.Exhausted());
  // A successful reattach (visible host progress) clears the budget.
  watchdog.NoteProgress(3'000'000);
  EXPECT_FALSE(watchdog.Exhausted());
  EXPECT_EQ(watchdog.timeout_ns(), config.watchdog_timeout_ns);
  EXPECT_FALSE(watchdog.armed());
}

TEST(LinkWatchdog, DisabledConfigNeverExpires) {
  ciobase::RecoveryConfig config;  // enabled = false
  ciobase::LinkWatchdog watchdog(config);
  watchdog.Arm(0);
  EXPECT_FALSE(watchdog.Expired(1'000'000'000));
}

TEST(StackConfigDefaults, ValidEverywhereRecoveryOnlyForDualBoundary) {
  for (StackProfile profile : AllStackProfiles()) {
    StackConfig config = StackConfig::DefaultsFor(profile, 1);
    EXPECT_TRUE(config.Valid()) << StackProfileName(profile);
    EXPECT_EQ(config.recovery.enabled, profile == StackProfile::kDualBoundary)
        << StackProfileName(profile);
  }
  StackConfig broken = StackConfig::DefaultsFor(StackProfile::kDualBoundary);
  broken.recovery.watchdog_timeout_ns = 0;
  EXPECT_FALSE(broken.Valid());
}

// --- L2 layer ----------------------------------------------------------------

ciobase::RecoveryConfig FastRecovery() {
  ciobase::RecoveryConfig recovery;
  recovery.enabled = true;
  recovery.watchdog_timeout_ns = 100'000;  // 100 µs
  recovery.backoff_initial_ns = 100'000;
  recovery.backoff_cap_ns = 400'000;
  recovery.max_resets = 3;
  return recovery;
}

struct L2World {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  cionet::Fabric fabric{&clock, 17, cionet::Fabric::Options{0, 0, 0, 9216}};
  ciotee::TeeMemory memory;
  L2Config config;
  std::unique_ptr<ciotee::SharedRegion> shared;
  ciohost::Adversary adversary{23};
  ciohost::ObservabilityLog observability;
  std::unique_ptr<L2HostDevice> device;
  std::unique_ptr<L2Transport> transport;
  std::unique_ptr<cionet::DirectFabricPort> peer;

  explicit L2World(const ciobase::RecoveryConfig& recovery) {
    config.mac = cionet::MacAddress::FromId(1);
    L2Layout layout(config);
    shared = std::make_unique<ciotee::SharedRegion>(&memory, layout.total,
                                                    "l2");
    device = std::make_unique<L2HostDevice>(shared.get(), config, &fabric,
                                            "nic", &adversary, &observability,
                                            &clock);
    transport = std::make_unique<L2Transport>(shared.get(), config, &costs,
                                              nullptr, recovery);
    peer = std::make_unique<cionet::DirectFabricPort>(
        &fabric, "peer", cionet::MacAddress::FromId(2));
  }

  Buffer FromGuest(const std::string& payload) {
    Buffer frame;
    cionet::EthernetHeader eth{cionet::MacAddress::FromId(2),
                               cionet::MacAddress::FromId(1), 0x88b5};
    eth.Serialize(frame);
    ciobase::AppendString(frame, payload);
    return frame;
  }
};

TEST(L2Recovery, StalledHostTripsWatchdogResetsAndResumes) {
  L2World world(FastRecovery());
  cionet::FrameBatch batch;

  // Healthy round trip first.
  ASSERT_TRUE(cionet::SendOne(*world.transport, world.FromGuest("warm")).ok());
  world.device->Poll();
  world.clock.Advance(25'000);
  ASSERT_TRUE(cionet::ReceiveOne(*world.peer).ok());

  // Host stalls for 1 ms: kicks and polls process nothing.
  uint64_t fault_start = world.clock.now_ns();
  world.adversary.InjectFault(
      {ciohost::FaultStrategy::kStallCounters, fault_start, 1'000'000});
  ASSERT_TRUE(
      cionet::SendOne(*world.transport, world.FromGuest("stuck")).ok());

  bool saw_reset = false;
  for (int round = 0; round < 200 && !saw_reset; ++round) {
    world.device->Poll();
    world.clock.Advance(25'000);
    auto got = world.transport->ReceiveFrames(batch, 4);
    if (!got.ok() &&
        got.status().code() == ciobase::StatusCode::kLinkReset) {
      saw_reset = true;
    }
  }
  EXPECT_TRUE(saw_reset);
  EXPECT_GE(world.transport->stats().watchdog_fires, 1u);
  EXPECT_GE(world.transport->stats().ring_resets, 1u);
  EXPECT_GE(world.transport->epoch(), 1u);
  EXPECT_GT(world.adversary.fault_events(), 0u);

  // The host turns honest again: the reattached ring carries traffic.
  world.clock.Advance(1'200'000);
  ASSERT_TRUE(
      cionet::SendOne(*world.transport, world.FromGuest("after")).ok());
  world.device->Poll();
  world.clock.Advance(25'000);
  auto at_peer = cionet::ReceiveOne(*world.peer);
  ASSERT_TRUE(at_peer.ok());
  EXPECT_NE(std::string(reinterpret_cast<const char*>(at_peer->data()),
                        at_peer->size())
                .find("after"),
            std::string::npos);
}

TEST(L2Recovery, PermanentStallExhaustsResetBudget) {
  L2World world(FastRecovery());
  cionet::FrameBatch batch;
  // duration 0 = the host never comes back.
  world.adversary.InjectFault(
      {ciohost::FaultStrategy::kStallCounters, 0, 0});

  bool timed_out = false;
  for (int round = 0; round < 2000 && !timed_out; ++round) {
    // TCP-style persistence: keep offering work so the watchdog stays armed.
    (void)cionet::SendOne(*world.transport, world.FromGuest("retry"));
    world.device->Poll();
    world.clock.Advance(25'000);
    auto got = world.transport->ReceiveFrames(batch, 4);
    if (!got.ok() &&
        got.status().code() == ciobase::StatusCode::kTimedOut) {
      timed_out = true;
    }
  }
  EXPECT_TRUE(timed_out);
  EXPECT_GE(world.transport->stats().ring_resets, 3u);  // budget spent
}

TEST(L2Recovery, ManualResetRingKeepsDatapathSound) {
  L2World world(FastRecovery());
  ASSERT_TRUE(cionet::SendOne(*world.transport, world.FromGuest("one")).ok());
  uint64_t epoch_before = world.transport->epoch();
  ASSERT_TRUE(world.transport->ResetRing().ok());
  EXPECT_EQ(world.transport->epoch(), epoch_before + 1);
  // In-flight frames died with the old epoch; new traffic flows.
  world.device->Poll();
  ASSERT_TRUE(cionet::SendOne(*world.transport, world.FromGuest("two")).ok());
  world.device->Poll();
  world.clock.Advance(25'000);
  EXPECT_TRUE(cionet::ReceiveOne(*world.peer).ok());
}

TEST(L2Recovery, DisabledRecoveryWedgesUnderStall) {
  ciobase::RecoveryConfig off;  // seed behavior
  L2World world(off);
  cionet::FrameBatch batch;
  world.adversary.InjectFault(
      {ciohost::FaultStrategy::kStallCounters, 0, 0});
  ASSERT_TRUE(
      cionet::SendOne(*world.transport, world.FromGuest("stuck")).ok());
  for (int round = 0; round < 200; ++round) {
    world.device->Poll();
    world.clock.Advance(25'000);
    auto got = world.transport->ReceiveFrames(batch, 4);
    ASSERT_TRUE(got.ok());  // never kLinkReset/kTimedOut: it just hangs
    EXPECT_EQ(*got, 0u);
  }
  EXPECT_EQ(world.transport->stats().watchdog_fires, 0u);
  EXPECT_EQ(world.transport->stats().ring_resets, 0u);
}

// --- Virtio layer ------------------------------------------------------------

struct VirtioWorld {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  cionet::Fabric fabric{&clock, 7};
  ciotee::TeeMemory memory;
  ciovirtio::VirtioNetLayout layout =
      ciovirtio::VirtioNetLayout::Make(64, 2048, 128);
  ciotee::SharedRegion shared{&memory, layout.TotalSize(), "virtio"};
  ciohost::Adversary adversary{13};
  ciohost::ObservabilityLog observability;
  std::unique_ptr<ciovirtio::VirtioNetDevice> device;
  std::unique_ptr<ciovirtio::VirtioNetDriver> driver;
  std::unique_ptr<cionet::DirectFabricPort> peer;

  explicit VirtioWorld(const ciobase::RecoveryConfig& recovery) {
    device = std::make_unique<ciovirtio::VirtioNetDevice>(
        &shared, layout, &fabric, "virtio-nic", cionet::MacAddress::FromId(1),
        1500,
        ciovirtio::kFeatureMac | ciovirtio::kFeatureMtu |
            ciovirtio::kFeatureCsum | ciovirtio::kFeatureVersion1,
        &adversary, &observability, &clock);
    driver = std::make_unique<ciovirtio::VirtioNetDriver>(
        &shared, layout, device.get(), &costs,
        ciovirtio::HardeningOptions::Full(), &observability, recovery);
    peer = std::make_unique<cionet::DirectFabricPort>(
        &fabric, "peer", cionet::MacAddress::FromId(2));
  }

  Buffer ToGuest(const std::string& payload) {
    Buffer frame;
    cionet::EthernetHeader eth{cionet::MacAddress::FromId(1),
                               cionet::MacAddress::FromId(2), 0x88b5};
    eth.Serialize(frame);
    ciobase::AppendString(frame, payload);
    return frame;
  }
};

TEST(VirtioRecovery, ResetAndReattachRenegotiatesAndResumes) {
  VirtioWorld world(FastRecovery());
  ASSERT_TRUE(world.driver->Negotiate().ok());

  // Prove the datapath works, then rip the rings out.
  ASSERT_TRUE(cionet::SendOne(*world.peer, world.ToGuest("before")).ok());
  world.clock.Advance(25'000);
  world.device->Poll();
  ASSERT_TRUE(cionet::ReceiveOne(*world.driver).ok());

  uint64_t epoch_before = world.driver->reset_epoch();
  ASSERT_TRUE(world.driver->ResetAndReattach().ok());
  EXPECT_EQ(world.driver->reset_epoch(), epoch_before + 1);
  EXPECT_GE(world.driver->stats().ring_resets, 1u);

  // The full negotiation re-ran and the fresh rings carry traffic.
  ASSERT_TRUE(cionet::SendOne(*world.peer, world.ToGuest("after")).ok());
  world.clock.Advance(25'000);
  world.device->Poll();
  auto got = cionet::ReceiveOne(*world.driver);
  ASSERT_TRUE(got.ok());
}

TEST(VirtioRecovery, StalledDeviceTripsWatchdogAndComesBack) {
  VirtioWorld world(FastRecovery());
  ASSERT_TRUE(world.driver->Negotiate().ok());
  cionet::FrameBatch batch;

  uint64_t fault_start = world.clock.now_ns();
  world.adversary.InjectFault(
      {ciohost::FaultStrategy::kStallCounters, fault_start, 1'000'000});
  Buffer out = world.ToGuest("x");
  out[0] = 0x02;  // retarget guest -> peer
  out[5] = 0x02;
  out[11] = 0x01;
  ASSERT_TRUE(cionet::SendOne(*world.driver, out).ok());

  bool saw_reset = false;
  for (int round = 0; round < 200 && !saw_reset; ++round) {
    world.device->Poll();
    world.clock.Advance(25'000);
    auto got = world.driver->ReceiveFrames(batch, 4);
    if (!got.ok() &&
        got.status().code() == ciobase::StatusCode::kLinkReset) {
      saw_reset = true;
    }
  }
  EXPECT_TRUE(saw_reset);
  EXPECT_GE(world.driver->stats().watchdog_fires, 1u);
  EXPECT_GE(world.driver->stats().ring_resets, 1u);

  // Honest again: the reattached rings deliver.
  world.clock.Advance(1'200'000);
  ASSERT_TRUE(cionet::SendOne(*world.peer, world.ToGuest("resumed")).ok());
  world.clock.Advance(25'000);
  world.device->Poll();
  EXPECT_TRUE(cionet::ReceiveOne(*world.driver).ok());
}

// --- Engine, end to end ------------------------------------------------------

// The campaign's TCP tuning: retransmission timers small enough that retry
// exhaustion (connection death) happens inside a simulated fault window.
void TuneTcp(StackConfig& config) {
  config.tcp_tuning.initial_rto_ns = 1'000'000;
  config.tcp_tuning.min_rto_ns = 500'000;
  config.tcp_tuning.max_rto_ns = 4'000'000;
  config.tcp_tuning.max_retries = 4;
}

// Deterministic e2e: the host kills the victim's link mid-transfer for
// longer than the TCP retry budget. The dual-boundary node must notice
// (watchdog), reset, reconnect, re-run TLS, replay its resend window — and
// the application byte stream must come through intact, exactly once, in
// order.
TEST(EngineRecovery, KillLinkMidTransferStreamIntactExactlyOnce) {
  StackConfig client = StackConfig::DefaultsFor(StackProfile::kDualBoundary, 1);
  client.seed = 2024;
  TuneTcp(client);
  StackConfig server = client;
  server.node_id = 2;
  server.seed = 2031;
  LinkedPair pair(client, server);
  ASSERT_TRUE(pair.Establish());

  std::vector<std::string> sent;
  std::vector<std::string> received;
  auto drain = [&] {
    for (;;) {
      auto message = pair.server->ReceiveMessage();
      if (!message.ok()) {
        break;
      }
      received.emplace_back(reinterpret_cast<const char*>(message->data()),
                            message->size());
    }
  };
  auto offer = [&](const std::string& payload) {
    // Retry until the (possibly reconnecting) channel accepts the message.
    for (int round = 0; round < 30000; ++round) {
      if (pair.client->Ready() &&
          pair.client->SendMessage(BufferFromString(payload)).ok()) {
        sent.push_back(payload);
        return true;
      }
      pair.Pump();
      drain();
    }
    return false;
  };

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(offer("pre-fault message " + std::to_string(i)));
  }

  // Kill the link for 12 ms — past the ~7.5 ms TCP retry budget, so the
  // transport reset alone cannot save it; the TLS channel must die and be
  // re-established.
  uint64_t fault_start = pair.clock.now_ns();
  pair.client->adversary().InjectFault(
      {ciohost::FaultStrategy::kLinkKill, fault_start, 12'000'000});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(offer("mid-fault message " + std::to_string(i)));
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(offer("post-fault message " + std::to_string(i)));
  }

  // Catch up: every sent message delivered AND the link re-established.
  // Delivery alone can complete off frames buffered before the TCP death
  // (they flush when the fault window closes); full recovery means the
  // client reconnected and re-ran TLS, so wait for Ready() too.
  ASSERT_TRUE(pair.PumpUntil(
      [&] {
        drain();
        return received.size() >= sent.size() && pair.client->Ready() &&
               !pair.client->Failed() && !pair.server->Failed();
      },
      60000));

  // Byte stream intact: exactly the sent messages, in order, no
  // duplicates, no losses, no corruption.
  EXPECT_EQ(received, sent);
  const auto& stats = pair.client->recovery_stats();
  EXPECT_GE(stats.link_errors, 1u);
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_GE(stats.tls_restarts, 1u);
  EXPECT_EQ(stats.messages_lost, 0u);
  EXPECT_EQ(pair.server->recovery_stats().messages_lost, 0u);
  // Safety held throughout.
  EXPECT_TRUE(pair.client->memory().violations().empty());
  EXPECT_EQ(pair.client->observability().CountOf(
                ciohost::ObsCategory::kPayload),
            0u);
}

// Duplicated frames must never surface as duplicated application messages:
// TCP sequence numbers drop the copies.
TEST(EngineRecovery, DuplicateFramesDoNotDuplicateMessages) {
  StackConfig client = StackConfig::DefaultsFor(StackProfile::kDualBoundary, 1);
  client.seed = 77;
  TuneTcp(client);
  StackConfig server = client;
  server.node_id = 2;
  server.seed = 78;
  LinkedPair pair(client, server);
  ASSERT_TRUE(pair.Establish());

  pair.client->adversary().InjectFault(
      {ciohost::FaultStrategy::kDuplicateFrames, pair.clock.now_ns(),
       5'000'000});
  std::vector<std::string> received;
  for (int i = 0; i < 6; ++i) {
    std::string payload = "unique message " + std::to_string(i);
    ASSERT_TRUE(pair.client->SendMessage(BufferFromString(payload)).ok());
    ASSERT_TRUE(pair.PumpUntil([&] {
      auto message = pair.server->ReceiveMessage();
      if (message.ok()) {
        received.emplace_back(
            reinterpret_cast<const char*>(message->data()), message->size());
        return true;
      }
      return false;
    }));
  }
  std::set<std::string> unique(received.begin(), received.end());
  EXPECT_EQ(unique.size(), received.size()) << "duplicate delivered";
  EXPECT_EQ(received.size(), 6u);
}

// --- Campaign ground truth ---------------------------------------------------

TEST(RecoveryCampaign, DualBoundarySurvivesLinkKillCell) {
  RecoveryOptions options;
  options.messages_before = 3;
  options.messages_during = 3;
  options.messages_after = 3;
  RecoveryCell cell = RunRecoveryCell(
      StackProfile::kDualBoundary, ciohost::FaultStrategy::kLinkKill, options);
  EXPECT_TRUE(cell.recovered) << cell.note;
  EXPECT_EQ(cell.messages_lost, 0u);
  EXPECT_EQ(cell.messages_delivered, cell.messages_attempted);
  EXPECT_GT(cell.fault_events, 0u);  // the fault actually bit
  EXPECT_GT(cell.time_to_recovery_ns, 0u);
  EXPECT_EQ(cell.oob_accesses, 0u);
  EXPECT_EQ(cell.messages_corrupted, 0u);
}

TEST(RecoveryCampaign, BaselineWedgesUnderLinkKill) {
  RecoveryOptions options;
  options.messages_before = 3;
  options.messages_during = 3;
  options.messages_after = 3;
  RecoveryCell cell =
      RunRecoveryCell(StackProfile::kPassthroughL2,
                      ciohost::FaultStrategy::kLinkKill, options);
  EXPECT_FALSE(cell.recovered);  // no recovery machinery: it wedges
}

TEST(RecoveryCampaign, TableFormats) {
  RecoveryOptions options;
  options.messages_before = 2;
  options.messages_during = 2;
  options.messages_after = 2;
  options.profiles = {StackProfile::kDualBoundary};
  options.faults = {ciohost::FaultStrategy::kSwallowDoorbell};
  auto cells = RunRecoveryCampaign(options);
  ASSERT_EQ(cells.size(), 1u);
  std::string table = RecoveryTable(cells);
  EXPECT_NE(table.find("dual-boundary"), std::string::npos);
  EXPECT_NE(table.find("swallow-doorbell"), std::string::npos);
}

}  // namespace
