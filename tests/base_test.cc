// Unit tests for the base library: Status/Result, byte utilities, masking
// helpers, deterministic RNG, and the cost model.

#include <gtest/gtest.h>

#include <set>

#include "src/base/arena.h"
#include "src/base/bits.h"
#include "src/base/bytes.h"
#include "src/base/clock.h"
#include "src/base/rng.h"
#include "src/base/status.h"

namespace {

using namespace ciobase;  // NOLINT: test file

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status status = HostViolation("ring index forged");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kHostViolation);
  EXPECT_EQ(status.ToString(), "HOST_VIOLATION: ring index forged");
}

TEST(Result, HoldsValue) {
  Result<int> result = 7;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_TRUE(result.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> result = OutOfRange("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(Bytes, EndianRoundTrips) {
  uint8_t buf[8];
  StoreLe32(buf, 0x12345678);
  EXPECT_EQ(LoadLe32(buf), 0x12345678u);
  EXPECT_EQ(buf[0], 0x78);
  StoreBe32(buf, 0x12345678);
  EXPECT_EQ(LoadBe32(buf), 0x12345678u);
  EXPECT_EQ(buf[0], 0x12);
  StoreLe64(buf, 0x1122334455667788ULL);
  EXPECT_EQ(LoadLe64(buf), 0x1122334455667788ULL);
  StoreBe64(buf, 0x1122334455667788ULL);
  EXPECT_EQ(LoadBe64(buf), 0x1122334455667788ULL);
  StoreBe16(buf, 0xabcd);
  EXPECT_EQ(LoadBe16(buf), 0xabcd);
}

TEST(Bytes, HexRoundTrip) {
  Buffer data = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(HexEncode(data), "deadbeef");
  EXPECT_EQ(HexDecode("deadbeef"), data);
  EXPECT_EQ(HexDecode("DEADBEEF"), data);
  EXPECT_TRUE(HexDecode("xyz").empty());
  EXPECT_TRUE(HexDecode("abc").empty());  // odd length
}

TEST(Bytes, ConstantTimeEqual) {
  Buffer a = {1, 2, 3};
  Buffer b = {1, 2, 3};
  Buffer c = {1, 2, 4};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, ByteSpan(a.data(), 2)));
}

TEST(Bits, PowerOfTwoPredicates) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(4096));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_EQ(RoundUpPow2(0), 1u);
  EXPECT_EQ(RoundUpPow2(5), 8u);
  EXPECT_EQ(RoundUpPow2(1024), 1024u);
}

TEST(Bits, MaskIndexIsAlwaysInRange) {
  // Property: for any untrusted value, the masked index is in [0, size).
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    uint64_t untrusted = rng.NextU64();
    for (uint64_t size : {2ULL, 64ULL, 4096ULL, 1ULL << 20}) {
      EXPECT_LT(MaskIndex(untrusted, size), size);
    }
  }
}

TEST(Bits, MaskOffsetStaysInsideArea) {
  Rng rng(2);
  constexpr uint64_t kArea = 1 << 16;
  constexpr uint64_t kChunk = 1 << 11;
  for (int i = 0; i < 10000; ++i) {
    uint64_t offset = MaskOffset(rng.NextU64(), kArea, kChunk);
    EXPECT_LT(offset, kArea);
    EXPECT_LE(offset + kChunk, kArea);
    EXPECT_TRUE(IsAligned(offset, kChunk));
  }
}

TEST(Bits, Alignment) {
  EXPECT_EQ(AlignUp(13, 8), 16u);
  EXPECT_EQ(AlignUp(16, 8), 16u);
  EXPECT_EQ(AlignDown(13, 8), 8u);
  EXPECT_TRUE(IsAligned(4096, 4096));
  EXPECT_FALSE(IsAligned(4097, 4096));
}

TEST(Rng, Deterministic) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    uint64_t v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, FillCoversAllBytes) {
  Rng rng(9);
  Buffer buf = rng.Bytes(1024);
  std::set<uint8_t> seen(buf.begin(), buf.end());
  EXPECT_GT(seen.size(), 200u);  // essentially all byte values present
}

TEST(CostModel, ChargesAndCounts) {
  SimClock clock;
  CostModel costs(&clock);
  costs.ChargeHostExit();
  costs.ChargeCopy(1000);
  costs.ChargeCompartmentSwitch();
  EXPECT_EQ(costs.counter("host_exits"), 1u);
  EXPECT_EQ(costs.counter("bytes_copied"), 1000u);
  EXPECT_EQ(costs.counter("compartment_switches"), 1u);
  uint64_t expected =
      static_cast<uint64_t>(costs.constants().host_exit_ns) +
      static_cast<uint64_t>(costs.constants().copy_ns_per_byte * 1000) +
      static_cast<uint64_t>(costs.constants().compartment_switch_ns);
  EXPECT_EQ(clock.now_ns(), expected);
}

TEST(CostModel, RevocationCheaperThanCopyForLargeBuffers) {
  // The premise of the §3.2 revocation exploration: above some size,
  // un-sharing pages beats copying.
  SimClock clock;
  CostModel costs(&clock);
  const auto& c = costs.constants();
  double copy_64k = c.copy_ns_per_byte * 65536;
  double unshare_64k = c.page_unshare_ns * (65536 / c.page_size);
  EXPECT_GT(copy_64k, unshare_64k);
  double copy_256 = c.copy_ns_per_byte * 256;
  double unshare_256 = c.page_unshare_ns * 1;  // still a whole page
  EXPECT_LT(copy_256, unshare_256);
}


TEST(FrameArena, ReusesReleasedCapacity) {
  FrameArena arena;
  Buffer first = arena.Acquire(2048);
  EXPECT_EQ(first.size(), 2048u);
  const uint8_t* data = first.data();
  arena.Release(std::move(first));
  EXPECT_EQ(arena.stats().pooled, 1u);

  Buffer second = arena.Acquire(1000);
  EXPECT_EQ(second.size(), 1000u);
  // Served from the pool: same backing storage, no fresh allocation.
  EXPECT_EQ(second.data(), data);
  EXPECT_EQ(arena.stats().reuses, 1u);
  EXPECT_EQ(arena.stats().acquires, 2u);
  EXPECT_EQ(arena.stats().pooled, 0u);
}

TEST(FrameArena, DropsBeyondPoolCap) {
  FrameArena arena(2);
  arena.Release(Buffer(64));
  arena.Release(Buffer(64));
  arena.Release(Buffer(64));  // beyond the cap: dropped, not pooled
  EXPECT_EQ(arena.stats().pooled, 2u);
}

TEST(FrameArena, AcquireWithEmptyPoolAllocates) {
  FrameArena arena;
  Buffer a = arena.Acquire(16);
  Buffer b = arena.Acquire(16);
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(arena.stats().reuses, 0u);
  EXPECT_EQ(arena.stats().acquires, 2u);
}

}  // namespace
