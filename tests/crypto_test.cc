// Crypto tests against published test vectors: SHA-256 (FIPS 180-4 / NIST),
// HMAC-SHA256 (RFC 4231), HKDF (RFC 5869), ChaCha20 (RFC 8439 §2.4.2),
// Poly1305 (RFC 8439 §2.5.2), ChaCha20-Poly1305 AEAD (RFC 8439 §2.8.2),
// plus property tests (incremental == one-shot, tamper detection).

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/crypto/aead.h"
#include "src/crypto/hkdf.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha256.h"

namespace {

using ciobase::Buffer;
using ciobase::BufferFromString;
using ciobase::ByteSpan;
using ciobase::HexDecode;
using ciobase::HexEncode;
using namespace ciocrypto;  // NOLINT: test file

std::string HashHex(ByteSpan data) {
  return HexEncode(Sha256::Hash(data));
}

TEST(Sha256, NistVectors) {
  EXPECT_EQ(HashHex({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  Buffer abc = BufferFromString("abc");
  EXPECT_EQ(HashHex(abc),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  Buffer two_blocks = BufferFromString(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(HashHex(two_blocks),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  Buffer chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(HexEncode(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  ciobase::Rng rng(3);
  for (size_t size : {1, 63, 64, 65, 127, 128, 1000}) {
    Buffer data = rng.Bytes(size);
    Sha256 h;
    // Feed in awkward pieces.
    size_t i = 0;
    size_t step = 1;
    while (i < data.size()) {
      size_t n = std::min(step, data.size() - i);
      h.Update(ByteSpan(data.data() + i, n));
      i += n;
      step = step * 2 + 1;
    }
    EXPECT_EQ(h.Finish(), Sha256::Hash(data)) << "size " << size;
  }
}

TEST(HmacSha256, Rfc4231Case1) {
  Buffer key(20, 0x0b);
  Buffer data = BufferFromString("Hi There");
  EXPECT_EQ(HexEncode(HmacSha256::Mac(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  Buffer key = BufferFromString("Jefe");
  Buffer data = BufferFromString("what do ya want for nothing?");
  EXPECT_EQ(HexEncode(HmacSha256::Mac(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  Buffer key(131, 0xaa);
  Buffer data = BufferFromString(
      "Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(HexEncode(HmacSha256::Mac(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, Rfc4231Case3BinaryData) {
  Buffer key(20, 0xaa);
  Buffer data(50, 0xdd);
  EXPECT_EQ(HexEncode(HmacSha256::Mac(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case4) {
  Buffer key = HexDecode("0102030405060708090a0b0c0d0e0f10111213141516171819");
  Buffer data(50, 0xcd);
  EXPECT_EQ(HexEncode(HmacSha256::Mac(key, data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256, Rfc4231Case7LongKeyAndData) {
  Buffer key(131, 0xaa);
  Buffer data = BufferFromString(
      "This is a test using a larger than block-size key and a larger than "
      "block-size data. The key needs to be hashed before being used by the "
      "HMAC algorithm.");
  EXPECT_EQ(HexEncode(HmacSha256::Mac(key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(Hkdf, Rfc5869Case2LongInputs) {
  Buffer ikm = HexDecode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
      "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f"
      "404142434445464748494a4b4c4d4e4f");
  Buffer salt = HexDecode(
      "606162636465666768696a6b6c6d6e6f707172737475767778797a7b7c7d7e7f"
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f"
      "a0a1a2a3a4a5a6a7a8a9aaabacadaeaf");
  Buffer info = HexDecode(
      "b0b1b2b3b4b5b6b7b8b9babbbcbdbebfc0c1c2c3c4c5c6c7c8c9cacbcccdcecf"
      "d0d1d2d3d4d5d6d7d8d9dadbdcdddedfe0e1e2e3e4e5e6e7e8e9eaebecedeeef"
      "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Sha256Digest prk = HkdfExtract(salt, ikm);
  Buffer okm = HkdfExpand(prk, info, 82);
  EXPECT_EQ(HexEncode(okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87");
}

TEST(HmacSha256, VerifyAcceptsAndRejects) {
  Buffer key = BufferFromString("k");
  Buffer data = BufferFromString("d");
  Sha256Digest mac = HmacSha256::Mac(key, data);
  EXPECT_TRUE(HmacSha256::Verify(key, data, mac));
  mac[0] ^= 1;
  EXPECT_FALSE(HmacSha256::Verify(key, data, mac));
}

TEST(Hkdf, Rfc5869Case1) {
  Buffer ikm(22, 0x0b);
  Buffer salt = HexDecode("000102030405060708090a0b0c");
  Buffer info = HexDecode("f0f1f2f3f4f5f6f7f8f9");
  Sha256Digest prk = HkdfExtract(salt, ikm);
  EXPECT_EQ(HexEncode(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  Buffer okm = HkdfExpand(prk, info, 42);
  EXPECT_EQ(HexEncode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  Buffer ikm(22, 0x0b);
  Sha256Digest prk = HkdfExtract({}, ikm);
  Buffer okm = HkdfExpand(prk, {}, 42);
  EXPECT_EQ(HexEncode(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(ChaCha20, Rfc8439KeystreamVector) {
  // RFC 8439 §2.4.2.
  Buffer key = HexDecode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Buffer nonce = HexDecode("000000000000004a00000000");
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  Buffer in = BufferFromString(plaintext);
  Buffer out(in.size());
  ChaCha20Xor(key.data(), nonce.data(), 1, in, out.data());
  EXPECT_EQ(HexEncode(ByteSpan(out.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
}

TEST(ChaCha20, Rfc8439FullCiphertext) {
  // RFC 8439 §2.4.2, full 114-byte ciphertext — exercises one 4-block
  // stride plus a partial tail block in the multi-block fast path.
  Buffer key = HexDecode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Buffer nonce = HexDecode("000000000000004a00000000");
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  Buffer in = BufferFromString(plaintext);
  Buffer out(in.size());
  ChaCha20Xor(key.data(), nonce.data(), 1, in, out.data());
  EXPECT_EQ(HexEncode(out),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, Rfc8439BlockFunctionVectors) {
  // RFC 8439 appendix A.1 test vectors 1 and 2: zero key, zero nonce.
  uint8_t key[kChaCha20KeySize] = {};
  uint8_t nonce[kChaCha20NonceSize] = {};
  uint8_t block[kChaCha20BlockSize];
  ChaCha20Block(key, 0, nonce, block);
  EXPECT_EQ(HexEncode(ByteSpan(block, sizeof(block))),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7"
            "da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586");
  ChaCha20Block(key, 1, nonce, block);
  EXPECT_EQ(HexEncode(ByteSpan(block, sizeof(block))),
            "9f07e7be5551387a98ba977c732d080dcb0f29a048e3656912c6533e32ee7aed"
            "29b721769ce64e43d57133b074d839d531ed1f28510afb45ace10a1f4b794d6f");
}

// Per-block reference: ChaCha20Xor must stay bit-identical to this loop.
void ReferenceXor(const uint8_t key[kChaCha20KeySize],
                  const uint8_t nonce[kChaCha20NonceSize], uint32_t counter,
                  ByteSpan in, uint8_t* out) {
  uint8_t block[kChaCha20BlockSize];
  size_t offset = 0;
  while (offset < in.size()) {
    ChaCha20Block(key, counter++, nonce, block);  // counter wraps mod 2^32
    size_t n = std::min(in.size() - offset, kChaCha20BlockSize);
    for (size_t i = 0; i < n; ++i) {
      out[offset + i] = in[offset + i] ^ block[i];
    }
    offset += n;
  }
}

TEST(ChaCha20, MultiBlockMatchesPerBlockReference) {
  ciobase::Rng rng(7);
  Buffer key = rng.Bytes(kChaCha20KeySize);
  Buffer nonce = rng.Bytes(kChaCha20NonceSize);
  // 0xfffffffe/0xffffffff make the 32-bit counter wrap inside a 4-block
  // stride — each lane must wrap independently, like the reference loop.
  const uint32_t kCounters[] = {0, 1, 7, 0x7fffffff, 0xfffffffe, 0xffffffff};
  const size_t kSizes[] = {0,   1,   63,  64,   65,   255,  256,
                           257, 511, 960, 1024, 4097, 16384};
  for (uint32_t counter : kCounters) {
    for (size_t size : kSizes) {
      Buffer in = rng.Bytes(size);
      Buffer expected(size);
      Buffer actual(size);
      ReferenceXor(key.data(), nonce.data(), counter, in, expected.data());
      ChaCha20Xor(key.data(), nonce.data(), counter, in, actual.data());
      EXPECT_EQ(expected, actual) << "counter=" << counter
                                  << " size=" << size;
    }
  }
}

TEST(ChaCha20, InPlaceMatchesOutOfPlace) {
  ciobase::Rng rng(8);
  Buffer key = rng.Bytes(kChaCha20KeySize);
  Buffer nonce = rng.Bytes(kChaCha20NonceSize);
  for (size_t size : {1, 64, 257, 4096, 16385}) {
    Buffer in = rng.Bytes(size);
    Buffer out(size);
    ChaCha20Xor(key.data(), nonce.data(), 42, in, out.data());
    Buffer in_place = in;
    ChaCha20Xor(key.data(), nonce.data(), 42, in_place, in_place.data());
    EXPECT_EQ(out, in_place) << "size=" << size;
  }
}

TEST(Poly1305, Rfc8439Vector) {
  // RFC 8439 §2.5.2.
  Buffer key = HexDecode(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  Buffer msg = BufferFromString("Cryptographic Forum Research Group");
  Poly1305Tag tag = Poly1305::Mac(key.data(), msg);
  EXPECT_EQ(HexEncode(tag), "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Aead, Rfc8439SealVector) {
  // RFC 8439 §2.8.2.
  Buffer key = HexDecode(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  Buffer nonce = HexDecode("070000004041424344454647");
  Buffer aad = HexDecode("50515253c0c1c2c3c4c5c6c7");
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  Buffer sealed = AeadSeal(key, nonce, aad, BufferFromString(plaintext));
  ASSERT_EQ(sealed.size(), plaintext.size() + kAeadTagSize);
  EXPECT_EQ(HexEncode(ByteSpan(sealed.data() + plaintext.size(),
                               kAeadTagSize)),
            "1ae10b594f09e26a7e902ecbd0600691");
  auto opened = AeadOpen(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(ciobase::StringFromBytes(*opened), plaintext);
}

TEST(Aead, SealIntoMatchesSealAndReusesBuffer) {
  ciobase::Rng rng(9);
  Buffer key = rng.Bytes(kAeadKeySize);
  Buffer nonce = rng.Bytes(kAeadNonceSize);
  Buffer aad = rng.Bytes(13);
  Buffer out = BufferFromString("prefix-");
  for (size_t size : {0, 1, 64, 1000, 16384}) {
    Buffer plaintext = rng.Bytes(size);
    Buffer expected = AeadSeal(key, nonce, aad, plaintext);
    out.resize(7);  // keep the prefix, reuse capacity across iterations
    size_t appended = AeadSealInto(key, nonce, aad, plaintext, out);
    ASSERT_EQ(appended, expected.size());
    ASSERT_EQ(out.size(), 7 + expected.size());
    EXPECT_EQ(Buffer(out.begin() + 7, out.end()), expected) << size;
  }
}

TEST(Aead, OpenIntoAppendsAndRejectsUntouched) {
  ciobase::Rng rng(10);
  Buffer key = rng.Bytes(kAeadKeySize);
  Buffer nonce = rng.Bytes(kAeadNonceSize);
  Buffer plaintext = rng.Bytes(500);
  Buffer sealed = AeadSeal(key, nonce, {}, plaintext);

  Buffer out = BufferFromString("keep-");
  auto got = AeadOpenInto(key, nonce, {}, sealed, out);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, plaintext.size());
  ASSERT_EQ(out.size(), 5 + plaintext.size());
  EXPECT_EQ(Buffer(out.begin() + 5, out.end()), plaintext);

  Buffer tampered = sealed;
  tampered[3] ^= 1;
  Buffer untouched = BufferFromString("keep-");
  auto bad = AeadOpenInto(key, nonce, {}, tampered, untouched);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ciobase::StatusCode::kTampered);
  EXPECT_EQ(ciobase::StringFromBytes(untouched), "keep-");
}

TEST(Aead, RejectsTamperedCiphertext) {
  ciobase::Rng rng(4);
  Buffer key = rng.Bytes(kAeadKeySize);
  Buffer nonce = rng.Bytes(kAeadNonceSize);
  Buffer aad = rng.Bytes(16);
  Buffer plaintext = rng.Bytes(100);
  Buffer sealed = AeadSeal(key, nonce, aad, plaintext);
  for (size_t i = 0; i < sealed.size(); i += 7) {
    Buffer corrupted = sealed;
    corrupted[i] ^= 0x01;
    auto opened = AeadOpen(key, nonce, aad, corrupted);
    EXPECT_FALSE(opened.ok()) << "byte " << i;
    EXPECT_EQ(opened.status().code(), ciobase::StatusCode::kTampered);
  }
}

TEST(Aead, RejectsWrongAadNonceKey) {
  ciobase::Rng rng(5);
  Buffer key = rng.Bytes(kAeadKeySize);
  Buffer nonce = rng.Bytes(kAeadNonceSize);
  Buffer aad = rng.Bytes(8);
  Buffer plaintext = rng.Bytes(64);
  Buffer sealed = AeadSeal(key, nonce, aad, plaintext);

  Buffer bad_aad = aad;
  bad_aad[0] ^= 1;
  EXPECT_FALSE(AeadOpen(key, nonce, bad_aad, sealed).ok());

  Buffer bad_nonce = nonce;
  bad_nonce[0] ^= 1;
  EXPECT_FALSE(AeadOpen(key, bad_nonce, aad, sealed).ok());

  Buffer bad_key = key;
  bad_key[0] ^= 1;
  EXPECT_FALSE(AeadOpen(bad_key, nonce, aad, sealed).ok());
}

TEST(Aead, RejectsTruncated) {
  ciobase::Rng rng(6);
  Buffer key = rng.Bytes(kAeadKeySize);
  Buffer nonce = rng.Bytes(kAeadNonceSize);
  Buffer sealed = AeadSeal(key, nonce, {}, rng.Bytes(32));
  EXPECT_FALSE(AeadOpen(key, nonce, {}, ByteSpan(sealed.data(), 15)).ok());
  EXPECT_FALSE(
      AeadOpen(key, nonce, {}, ByteSpan(sealed.data(), sealed.size() - 1))
          .ok());
}

class AeadRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AeadRoundTripTest, SealOpenRoundTrip) {
  ciobase::Rng rng(GetParam() + 1);
  Buffer key = rng.Bytes(kAeadKeySize);
  Buffer nonce = rng.Bytes(kAeadNonceSize);
  Buffer aad = rng.Bytes(GetParam() % 32);
  Buffer plaintext = rng.Bytes(GetParam());
  Buffer sealed = AeadSeal(key, nonce, aad, plaintext);
  auto opened = AeadOpen(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, plaintext);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AeadRoundTripTest,
                         ::testing::Values(0, 1, 15, 16, 17, 63, 64, 65, 255,
                                           1024, 16384));

}  // namespace
