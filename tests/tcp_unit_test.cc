// Direct unit tests of the TcpConnection state machine — no stacks, no
// fabric: segments are hand-built and fed in, outputs inspected. Covers
// the handshake transitions, simultaneous close, RST behavior per state,
// zero-window probing, retransmission timeout and backoff, SYN-ACK
// retransmission, and MSS negotiation.

#include <gtest/gtest.h>

#include "src/base/clock.h"
#include "src/net/tcp.h"

namespace {

using ciobase::Buffer;
using ciobase::ByteSpan;
using namespace cionet;  // NOLINT: test file

TcpEndpointId Endpoints() {
  return TcpEndpointId{Ipv4Address::FromOctets(10, 0, 0, 1), 1000,
                       Ipv4Address::FromOctets(10, 0, 0, 2), 2000};
}

// Parses the first segment in a connection's output queue.
struct OutSegment {
  TcpHeader header;
  Buffer payload;
};
std::vector<OutSegment> Drain(TcpConnection& conn) {
  std::vector<OutSegment> out;
  for (Buffer& raw : conn.TakeOutput()) {
    auto header = TcpHeader::Parse(raw);
    EXPECT_TRUE(header.ok());
    OutSegment segment;
    segment.header = *header;
    segment.payload.assign(raw.begin() + header->HeaderBytes(), raw.end());
    out.push_back(std::move(segment));
  }
  return out;
}

TcpHeader MakeSegment(uint32_t seq, uint32_t ack, uint8_t flags,
                      uint16_t window = 65535) {
  TcpHeader header;
  header.src_port = 2000;
  header.dst_port = 1000;
  header.seq = seq;
  header.ack = ack;
  header.flags = flags;
  header.window = window;
  return header;
}

// Drives an active open to ESTABLISHED against a scripted peer with
// ISS 5000. Returns the connection.
TcpConnection EstablishedClient(ciobase::SimClock* clock) {
  TcpConnection conn =
      TcpConnection::ActiveOpen(clock, Endpoints(), 1460, /*iss=*/100);
  auto flight = Drain(conn);
  EXPECT_EQ(flight.size(), 1u);
  EXPECT_EQ(flight[0].header.flags, kTcpFlagSyn);
  conn.OnSegment(MakeSegment(5000, 101, kTcpFlagSyn | kTcpFlagAck), {});
  EXPECT_EQ(conn.state(), TcpState::kEstablished);
  Drain(conn);  // the final ACK
  return conn;
}

TEST(TcpUnit, ActiveOpenHandshake) {
  ciobase::SimClock clock;
  TcpConnection conn = EstablishedClient(&clock);
  EXPECT_FALSE(conn.failed());
}

TEST(TcpUnit, BadSynAckAcknowledgmentIsFatal) {
  ciobase::SimClock clock;
  TcpConnection conn =
      TcpConnection::ActiveOpen(&clock, Endpoints(), 1460, 100);
  Drain(conn);
  // Peer acks the wrong sequence number (Iago-style confusion).
  conn.OnSegment(MakeSegment(5000, 999, kTcpFlagSyn | kTcpFlagAck), {});
  EXPECT_TRUE(conn.failed());
  auto out = Drain(conn);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].header.flags & kTcpFlagRst);
}

TEST(TcpUnit, PassiveOpenRetransmittedSynGetsSynAckAgain) {
  ciobase::SimClock clock;
  TcpHeader syn = MakeSegment(5000, 0, kTcpFlagSyn);
  syn.mss_option = 1200;
  TcpConnection conn =
      TcpConnection::PassiveOpen(&clock, Endpoints(), 1460, 100, syn);
  auto first = Drain(conn);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].header.flags, kTcpFlagSyn | kTcpFlagAck);
  EXPECT_EQ(first[0].header.mss_option, 1200);  // negotiated down
  // The client's SYN again (our SYN-ACK was lost).
  conn.OnSegment(syn, {});
  auto second = Drain(conn);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].header.flags, kTcpFlagSyn | kTcpFlagAck);
}

TEST(TcpUnit, DataSendAndAck) {
  ciobase::SimClock clock;
  TcpConnection conn = EstablishedClient(&clock);
  Buffer data = ciobase::BufferFromString("hello");
  ASSERT_TRUE(conn.Send(data).ok());
  auto out = Drain(conn);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, data);
  EXPECT_EQ(out[0].header.seq, 101u);
  conn.OnSegment(MakeSegment(5001, 106, kTcpFlagAck), {});
  EXPECT_FALSE(conn.failed());
}

TEST(TcpUnit, RetransmissionOnTimeoutWithBackoff) {
  ciobase::SimClock clock;
  TcpConnection conn = EstablishedClient(&clock);
  ASSERT_TRUE(conn.Send(ciobase::BufferFromString("lost")).ok());
  Drain(conn);
  uint64_t rto1 = conn.current_rto_ns();
  clock.Advance(rto1 + 1);
  conn.PollTimers();
  auto retrans = Drain(conn);
  ASSERT_EQ(retrans.size(), 1u);
  EXPECT_EQ(retrans[0].header.seq, 101u);  // same data again
  EXPECT_EQ(conn.stats().timeouts, 1u);
  EXPECT_GE(conn.current_rto_ns(), 2 * rto1);  // exponential backoff
}

TEST(TcpUnit, RetryExhaustionFailsConnection) {
  ciobase::SimClock clock;
  TcpConnection::Tuning tuning;
  tuning.max_retries = 2;
  TcpConnection conn = TcpConnection::ActiveOpen(&clock, Endpoints(), 1460,
                                                 100, tuning);
  for (int i = 0; i < 4; ++i) {
    clock.Advance(conn.current_rto_ns() + 1);
    conn.PollTimers();
  }
  EXPECT_TRUE(conn.failed());
  EXPECT_EQ(conn.state(), TcpState::kClosed);
}

TEST(TcpUnit, FastRetransmitOnTripleDupAck) {
  ciobase::SimClock clock;
  TcpConnection conn = EstablishedClient(&clock);
  ASSERT_TRUE(conn.Send(Buffer(3000, 'x')).ok());  // > 2 segments
  Drain(conn);
  for (int i = 0; i < 3; ++i) {
    conn.OnSegment(MakeSegment(5001, 101, kTcpFlagAck), {});
  }
  EXPECT_EQ(conn.stats().fast_retransmits, 1u);
  auto out = Drain(conn);
  ASSERT_GE(out.size(), 1u);
  EXPECT_EQ(out[0].header.seq, 101u);
}

TEST(TcpUnit, RstInEstablishedKillsConnection) {
  ciobase::SimClock clock;
  TcpConnection conn = EstablishedClient(&clock);
  conn.OnSegment(MakeSegment(5001, 101, kTcpFlagRst), {});
  EXPECT_TRUE(conn.failed());
  EXPECT_EQ(conn.state(), TcpState::kClosed);
}

TEST(TcpUnit, OutOfWindowRstIgnored) {
  ciobase::SimClock clock;
  TcpConnection conn = EstablishedClient(&clock);
  // Blind RST with a wrong sequence number: ignored.
  conn.OnSegment(MakeSegment(123456, 101, kTcpFlagRst), {});
  EXPECT_FALSE(conn.failed());
  EXPECT_EQ(conn.state(), TcpState::kEstablished);
}

TEST(TcpUnit, GracefulCloseStateWalk) {
  ciobase::SimClock clock;
  TcpConnection conn = EstablishedClient(&clock);
  conn.Close();
  auto fin = Drain(conn);
  ASSERT_EQ(fin.size(), 1u);
  EXPECT_TRUE(fin[0].header.flags & kTcpFlagFin);
  EXPECT_EQ(conn.state(), TcpState::kFinWait1);
  conn.OnSegment(MakeSegment(5001, 102, kTcpFlagAck), {});
  EXPECT_EQ(conn.state(), TcpState::kFinWait2);
  conn.OnSegment(MakeSegment(5001, 102, kTcpFlagFin | kTcpFlagAck), {});
  EXPECT_EQ(conn.state(), TcpState::kTimeWait);
  clock.Advance(TcpConnection::Tuning{}.time_wait_ns + 1);
  conn.PollTimers();
  EXPECT_EQ(conn.state(), TcpState::kClosed);
}

TEST(TcpUnit, SimultaneousClose) {
  ciobase::SimClock clock;
  TcpConnection conn = EstablishedClient(&clock);
  conn.Close();
  Drain(conn);
  // Peer's FIN arrives before its ACK of ours: CLOSING.
  conn.OnSegment(MakeSegment(5001, 101, kTcpFlagFin | kTcpFlagAck), {});
  EXPECT_EQ(conn.state(), TcpState::kClosing);
  // Now its ACK of our FIN: TIME_WAIT.
  conn.OnSegment(MakeSegment(5002, 102, kTcpFlagAck), {});
  EXPECT_EQ(conn.state(), TcpState::kTimeWait);
}

TEST(TcpUnit, PeerCloseThenLocalClose) {
  ciobase::SimClock clock;
  TcpConnection conn = EstablishedClient(&clock);
  conn.OnSegment(MakeSegment(5001, 101, kTcpFlagFin | kTcpFlagAck), {});
  EXPECT_EQ(conn.state(), TcpState::kCloseWait);
  uint8_t buf[4];
  auto eof = conn.Receive(buf);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(*eof, 0u);  // orderly EOF
  conn.Close();
  EXPECT_EQ(conn.state(), TcpState::kLastAck);
  Drain(conn);
  conn.OnSegment(MakeSegment(5002, 102, kTcpFlagAck), {});
  EXPECT_EQ(conn.state(), TcpState::kClosed);
}

TEST(TcpUnit, ZeroWindowProbeAfterStall) {
  ciobase::SimClock clock;
  TcpConnection conn = EstablishedClient(&clock);
  // Peer advertises a zero window.
  conn.OnSegment(MakeSegment(5001, 101, kTcpFlagAck, /*window=*/0), {});
  ASSERT_TRUE(conn.Send(ciobase::BufferFromString("stalled data")).ok());
  EXPECT_TRUE(Drain(conn).empty());  // nothing may be sent into window 0
  conn.PollTimers();                 // probe path arms/sends
  auto probes = Drain(conn);
  ASSERT_EQ(probes.size(), 1u);
  EXPECT_EQ(probes[0].payload.size(), 1u);  // one-byte window probe
}

TEST(TcpUnit, OutOfOrderSegmentsReassemble) {
  ciobase::SimClock clock;
  TcpConnection conn = EstablishedClient(&clock);
  Buffer part2 = ciobase::BufferFromString("world");
  Buffer part1 = ciobase::BufferFromString("hello ");
  conn.OnSegment(MakeSegment(5001 + 6, 101, kTcpFlagAck), part2);
  uint8_t buf[32];
  EXPECT_FALSE(conn.Receive(buf).ok());  // hole: nothing readable
  conn.OnSegment(MakeSegment(5001, 101, kTcpFlagAck), part1);
  auto got = conn.Receive(buf);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), *got), "hello world");
  EXPECT_EQ(conn.stats().ooo_segments, 1u);
}

TEST(TcpUnit, DuplicateDataReAckedNotDoubleDelivered) {
  ciobase::SimClock clock;
  TcpConnection conn = EstablishedClient(&clock);
  Buffer data = ciobase::BufferFromString("once");
  conn.OnSegment(MakeSegment(5001, 101, kTcpFlagAck), data);
  conn.OnSegment(MakeSegment(5001, 101, kTcpFlagAck), data);  // dup
  uint8_t buf[32];
  auto got = conn.Receive(buf);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 4u);
  EXPECT_FALSE(conn.Receive(buf).ok());  // no second copy
}

TEST(TcpUnit, AbortEmitsRst) {
  ciobase::SimClock clock;
  TcpConnection conn = EstablishedClient(&clock);
  conn.Abort();
  auto out = Drain(conn);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].header.flags & kTcpFlagRst);
  EXPECT_EQ(conn.state(), TcpState::kClosed);
}

TEST(TcpUnit, CwndGrowsInSlowStart) {
  ciobase::SimClock clock;
  TcpConnection conn = EstablishedClient(&clock);
  uint32_t cwnd0 = conn.cwnd();
  ASSERT_TRUE(conn.Send(Buffer(1460, 'x')).ok());
  Drain(conn);
  conn.OnSegment(MakeSegment(5001, 101 + 1460, kTcpFlagAck), {});
  EXPECT_GT(conn.cwnd(), cwnd0);
}

}  // namespace
