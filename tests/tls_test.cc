// Tests for the TLS-like session: handshake, application data, fragmenting,
// key updates, and the adversarial properties the paper's L5 boundary relies
// on — replay, reordering, corruption and truncation are all fatal,
// wrong-PSK peers never establish.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/tls/session.h"

namespace {

using ciobase::Buffer;
using ciobase::BufferFromString;
using ciobase::ByteSpan;
using namespace ciotls;  // NOLINT: test file

Buffer Psk() { return BufferFromString("attestation-bound-psk-32-bytes!!"); }

struct Pair {
  TlsSession client{TlsRole::kClient, Psk(), "unit-a", 11};
  TlsSession server{TlsRole::kServer, Psk(), "unit-a", 22};

  // Shuttles handshake bytes until both established or someone failed.
  bool Handshake() {
    client.Start();
    server.Start();
    for (int i = 0; i < 10 && !(client.established() &&
                                server.established()); ++i) {
      Buffer c2s = client.TakeOutput();
      if (!c2s.empty() && !server.Feed(c2s).ok()) {
        return false;
      }
      Buffer s2c = server.TakeOutput();
      if (!s2c.empty() && !client.Feed(s2c).ok()) {
        return false;
      }
      if (client.failed() || server.failed()) {
        return false;
      }
    }
    return client.established() && server.established();
  }

  // Delivers all pending bytes in both directions.
  void Flush() {
    Buffer c2s = client.TakeOutput();
    if (!c2s.empty()) {
      (void)server.Feed(c2s);
    }
    Buffer s2c = server.TakeOutput();
    if (!s2c.empty()) {
      (void)client.Feed(s2c);
    }
  }
};

TEST(TlsHandshake, EstablishesWithSharedPsk) {
  Pair pair;
  EXPECT_TRUE(pair.Handshake());
}

TEST(TlsHandshake, WrongPskNeverEstablishes) {
  Pair pair;
  pair.server = TlsSession(TlsRole::kServer,
                           BufferFromString("a-different-psk-entirely!!!!!!"),
                           "unit-a", 22);
  EXPECT_FALSE(pair.Handshake());
  EXPECT_TRUE(pair.client.failed() || pair.server.failed());
}

TEST(TlsHandshake, WrongPskIdRejected) {
  Pair pair;
  pair.server = TlsSession(TlsRole::kServer, Psk(), "unit-B", 22);
  EXPECT_FALSE(pair.Handshake());
  EXPECT_TRUE(pair.server.failed());
}

TEST(TlsHandshake, AppDataBeforeEstablishmentRefused) {
  Pair pair;
  EXPECT_FALSE(pair.client.WriteMessage(BufferFromString("early")).ok());
}

TEST(TlsData, RoundTripBothDirections) {
  Pair pair;
  ASSERT_TRUE(pair.Handshake());
  ASSERT_TRUE(pair.client.WriteMessage(BufferFromString("hello server")).ok());
  pair.Flush();
  auto at_server = pair.server.ReadMessage();
  ASSERT_TRUE(at_server.ok());
  EXPECT_EQ(ciobase::StringFromBytes(*at_server), "hello server");

  ASSERT_TRUE(pair.server.WriteMessage(BufferFromString("hello client")).ok());
  pair.Flush();
  auto at_client = pair.client.ReadMessage();
  ASSERT_TRUE(at_client.ok());
  EXPECT_EQ(ciobase::StringFromBytes(*at_client), "hello client");
}

TEST(TlsData, LargeMessageFragmentsAcrossRecords) {
  Pair pair;
  ASSERT_TRUE(pair.Handshake());
  ciobase::Rng rng(3);
  Buffer big = rng.Bytes(100'000);
  ASSERT_TRUE(pair.client.WriteMessage(big).ok());
  pair.Flush();
  Buffer reassembled;
  for (;;) {
    auto part = pair.server.ReadMessage();
    if (!part.ok()) {
      break;
    }
    ciobase::Append(reassembled, *part);
  }
  EXPECT_EQ(reassembled, big);
  EXPECT_GT(pair.client.stats().records_sealed, 6u);  // 100k / 16k
}

TEST(TlsData, ManyMessagesKeepSequence) {
  Pair pair;
  ASSERT_TRUE(pair.Handshake());
  for (int i = 0; i < 200; ++i) {
    std::string message = "message " + std::to_string(i);
    ASSERT_TRUE(pair.client.WriteMessage(BufferFromString(message)).ok());
    pair.Flush();
    auto received = pair.server.ReadMessage();
    ASSERT_TRUE(received.ok()) << i;
    EXPECT_EQ(ciobase::StringFromBytes(*received), message);
  }
}

TEST(TlsKeyUpdate, TrafficContinuesAfterRotation) {
  Pair pair;
  ASSERT_TRUE(pair.Handshake());
  ASSERT_TRUE(pair.client.WriteMessage(BufferFromString("before")).ok());
  ASSERT_TRUE(pair.client.RequestKeyUpdate().ok());
  ASSERT_TRUE(pair.client.WriteMessage(BufferFromString("after")).ok());
  pair.Flush();
  auto first = pair.server.ReadMessage();
  auto second = pair.server.ReadMessage();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(ciobase::StringFromBytes(*first), "before");
  EXPECT_EQ(ciobase::StringFromBytes(*second), "after");
  EXPECT_GE(pair.server.stats().key_updates, 1u);
}

// --- Adversarial stream manipulation (the L5 threat model) -------------------

TEST(TlsData, ByteAtATimeDeliveryStillParses) {
  // TCP may deliver the protected stream in arbitrary chunks; the record
  // reader must reassemble across any segmentation.
  Pair pair;
  ASSERT_TRUE(pair.Handshake());
  ASSERT_TRUE(
      pair.client.WriteMessage(BufferFromString("dribbled message")).ok());
  Buffer wire = pair.client.TakeOutput();
  for (uint8_t byte : wire) {
    ASSERT_TRUE(pair.server.Feed(ByteSpan(&byte, 1)).ok());
  }
  auto received = pair.server.ReadMessage();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(ciobase::StringFromBytes(*received), "dribbled message");
}

TEST(TlsData, EmptyMessageRoundTrips) {
  Pair pair;
  ASSERT_TRUE(pair.Handshake());
  ASSERT_TRUE(pair.client.WriteMessage({}).ok());
  pair.Flush();
  auto received = pair.server.ReadMessage();
  ASSERT_TRUE(received.ok());
  EXPECT_TRUE(received->empty());
}

TEST(TlsAttack, CorruptedRecordIsFatal) {
  Pair pair;
  ASSERT_TRUE(pair.Handshake());
  ASSERT_TRUE(pair.client.WriteMessage(BufferFromString("sensitive")).ok());
  Buffer wire = pair.client.TakeOutput();
  wire[wire.size() / 2] ^= 0x01;
  auto status = pair.server.Feed(wire);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(pair.server.failed());
  EXPECT_GT(pair.server.stats().auth_failures, 0u);
}

TEST(TlsAttack, ReplayedRecordIsFatal) {
  Pair pair;
  ASSERT_TRUE(pair.Handshake());
  ASSERT_TRUE(pair.client.WriteMessage(BufferFromString("pay $100")).ok());
  Buffer wire = pair.client.TakeOutput();
  ASSERT_TRUE(pair.server.Feed(wire).ok());
  ASSERT_TRUE(pair.server.ReadMessage().ok());
  // Host replays the same TCP bytes (e.g. via a compromised I/O stack).
  auto status = pair.server.Feed(wire);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(pair.server.failed());
}

TEST(TlsAttack, ReorderedRecordsAreFatal) {
  Pair pair;
  ASSERT_TRUE(pair.Handshake());
  ASSERT_TRUE(pair.client.WriteMessage(BufferFromString("first")).ok());
  Buffer first = pair.client.TakeOutput();
  ASSERT_TRUE(pair.client.WriteMessage(BufferFromString("second")).ok());
  Buffer second = pair.client.TakeOutput();
  // Deliver out of order: sequence numbers no longer match.
  auto status = pair.server.Feed(second);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(pair.server.failed());
}

TEST(TlsAttack, TruncatedStreamDeliversNothing) {
  Pair pair;
  ASSERT_TRUE(pair.Handshake());
  ASSERT_TRUE(pair.client.WriteMessage(BufferFromString("whole")).ok());
  Buffer wire = pair.client.TakeOutput();
  ASSERT_TRUE(
      pair.server.Feed(ByteSpan(wire.data(), wire.size() - 1)).ok());
  EXPECT_FALSE(pair.server.ReadMessage().ok());  // nothing surfaced
}

TEST(TlsAttack, ForgedRecordHeaderRejected) {
  Pair pair;
  ASSERT_TRUE(pair.Handshake());
  Buffer forged = {0x17, 0x99, 0x99, 0x00, 0x01, 0x00};  // bad version
  auto status = pair.server.Feed(forged);
  EXPECT_FALSE(status.ok());
}

TEST(TlsAttack, HandshakeTamperingDetected) {
  // Flip a byte of the ServerHello in flight: transcripts diverge and the
  // Finished MACs can never match.
  TlsSession client(TlsRole::kClient, Psk(), "unit-a", 1);
  TlsSession server(TlsRole::kServer, Psk(), "unit-a", 2);
  client.Start();
  server.Start();
  ASSERT_TRUE(server.Feed(client.TakeOutput()).ok());
  Buffer sh = server.TakeOutput();
  sh[10] ^= 0x40;
  ASSERT_TRUE(client.Feed(sh).ok());  // plaintext flight accepted so far...
  Buffer finished = client.TakeOutput();
  auto status = server.Feed(finished);  // ...but the MAC gives it away
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(server.failed());
}

}  // namespace
