// Multi-tenant confidential server: connection table, Session reuse,
// admission control, fair scheduling, and recovery under a mid-transfer
// fault with many clients in flight.
//
//   * cio::Session units: framing round trip, exactly-once accounting,
//     resend-window replay + dedup — the machinery both the engine and
//     every server connection share.
//   * Lifecycle: handshaking -> established -> draining -> closed, echo
//     across many concurrent clients on every Figure-5 profile corner.
//   * Admission: the 65th connection is refused with an abortive RST; the
//     probing client fails typed, the table never exceeds its cap.
//   * Backpressure: Send beyond the queue budget returns
//     kResourceExhausted; nothing grows without bound.
//   * Fairness: with one hot client flooding, deficit round-robin keeps
//     the other clients' echoes flowing.
//   * Recovery: a link-kill + stalled-counter window while >= 8 dual-
//     boundary clients are mid-transfer; every message is delivered
//     exactly once (zero lost) after the herd reconnects.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/serve/harness.h"

namespace {

using ciobase::Buffer;
using ciobase::BufferFromString;
using cio::StackProfile;
using namespace cioserve;  // NOLINT: test file

std::string ToString(const Buffer& buffer) {
  return std::string(reinterpret_cast<const char*>(buffer.data()),
                     buffer.size());
}

// --- cio::Session units ------------------------------------------------------

TEST(Session, PlaintextFramingRoundTripExactlyOnce) {
  cio::Session a(false, Buffer{}, 8);
  cio::Session b(false, Buffer{}, 8);
  a.Start(ciotls::TlsRole::kClient, 1);
  b.Start(ciotls::TlsRole::kServer, 2);
  ASSERT_TRUE(a.Established());

  ASSERT_TRUE(a.Send(BufferFromString("hello")).ok());
  ASSERT_TRUE(a.Send(BufferFromString("world")).ok());
  ASSERT_TRUE(b.Ingest(a.outbound()).ok());
  a.ConsumeOutbound(a.outbound().size());

  auto first = b.Receive();
  auto second = b.Receive();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(ToString(*first), "hello");
  EXPECT_EQ(ToString(*second), "world");
  EXPECT_FALSE(b.Receive().ok());
  EXPECT_EQ(b.stats().messages_received, 2u);
  EXPECT_EQ(b.stats().messages_lost, 0u);
}

TEST(Session, ReplayAfterResetDeliversOnceAndCountsDuplicates) {
  cio::Session tx(false, Buffer{}, 8);
  cio::Session rx(false, Buffer{}, 8);
  tx.Start(ciotls::TlsRole::kClient, 1);
  rx.Start(ciotls::TlsRole::kServer, 2);

  ASSERT_TRUE(tx.Send(BufferFromString("m1")).ok());
  ASSERT_TRUE(tx.Send(BufferFromString("m2")).ok());
  ASSERT_TRUE(rx.Ingest(tx.outbound()).ok());
  tx.ConsumeOutbound(tx.outbound().size());

  // The transport dies with nothing in flight; both ends reset, then the
  // sender replays its whole window.
  tx.ResetChannel();
  rx.ResetChannel();
  tx.Start(ciotls::TlsRole::kClient, 1);
  rx.Start(ciotls::TlsRole::kServer, 2);
  ASSERT_TRUE(tx.Replay().ok());
  ASSERT_TRUE(tx.Send(BufferFromString("m3")).ok());
  ASSERT_TRUE(rx.Ingest(tx.outbound()).ok());

  // m1/m2 arrive again but were already delivered: dedup'd, not re-queued.
  std::vector<std::string> delivered;
  for (;;) {
    auto message = rx.Receive();
    if (!message.ok()) {
      break;
    }
    delivered.push_back(ToString(*message));
  }
  EXPECT_EQ(delivered, (std::vector<std::string>{"m1", "m2", "m3"}));
  EXPECT_EQ(rx.stats().messages_duplicate_dropped, 2u);
  EXPECT_EQ(rx.stats().messages_lost, 0u);
  EXPECT_EQ(tx.stats().messages_resent, 2u);
}

TEST(Session, HostileFramingIsTamperedNotRecoverable) {
  cio::Session rx(false, Buffer{}, 0);
  rx.Start(ciotls::TlsRole::kServer, 2);
  Buffer garbage;
  garbage.resize(16, 0xff);  // len field way over the message cap
  ciobase::Status status = rx.Ingest(garbage);
  EXPECT_EQ(status.code(), ciobase::StatusCode::kTampered);
}

// --- Lifecycle + echo across profiles ---------------------------------------

// The four Figure-5 corners the load harness drives.
std::vector<StackProfile> ServedProfiles() {
  return {StackProfile::kSyscallL5, StackProfile::kPassthroughL2,
          StackProfile::kHardenedVirtio, StackProfile::kDualBoundary};
}

TEST(Server, ManyClientsEchoOnEveryProfile) {
  for (StackProfile profile : ServedProfiles()) {
    MultiClientWorld::Options options;
    options.profile = profile;
    options.num_clients = 12;
    options.seed = 91 + static_cast<uint64_t>(profile);
    MultiClientWorld world(options);
    ASSERT_TRUE(world.EstablishAll())
        << cio::StackProfileName(profile) << ": establishment";
    EXPECT_EQ(world.server->stats().accepted, 12u);
    EXPECT_EQ(world.server->active_connections(), 12u);

    // Every client sends 3 messages; every message must come back to the
    // client that sent it.
    for (size_t i = 0; i < world.clients.size(); ++i) {
      for (int m = 0; m < 3; ++m) {
        std::string payload =
            "client " + std::to_string(i) + " msg " + std::to_string(m);
        ASSERT_TRUE(
            world.clients[i]->SendMessage(BufferFromString(payload)).ok());
      }
    }
    std::vector<size_t> echoes(world.clients.size(), 0);
    std::vector<bool> ordered(world.clients.size(), true);
    ASSERT_TRUE(world.PumpUntil(
        [&] {
          world.EchoRound();
          size_t done = 0;
          for (size_t i = 0; i < world.clients.size(); ++i) {
            for (;;) {
              auto echo = world.clients[i]->ReceiveMessage();
              if (!echo.ok()) {
                break;
              }
              std::string expect = "client " + std::to_string(i) + " msg " +
                                   std::to_string(echoes[i]);
              ordered[i] = ordered[i] && ToString(*echo) == expect;
              ++echoes[i];
            }
            done += echoes[i] >= 3 ? 1 : 0;
          }
          return done == world.clients.size();
        },
        60000))
        << cio::StackProfileName(profile) << ": echo completion";
    for (size_t i = 0; i < world.clients.size(); ++i) {
      EXPECT_EQ(echoes[i], 3u) << cio::StackProfileName(profile);
      EXPECT_TRUE(ordered[i])
          << cio::StackProfileName(profile) << " client " << i
          << ": echoes out of order or corrupted";
    }
    // Lifecycle counters surfaced through the observability layer.
    const ciohost::CounterSet& counters =
        world.server_node->observability().counters();
    EXPECT_EQ(counters.Get("server.accepted"), 12u);
    EXPECT_EQ(counters.Get("server.active"), 12u);
  }
}

TEST(Server, DrainFlushesThenCloses) {
  MultiClientWorld::Options options;
  options.num_clients = 2;
  options.seed = 300;
  MultiClientWorld world(options);
  ASSERT_TRUE(world.EstablishAll());
  std::vector<ConnId> conns = world.server->EstablishedConnections();
  ASSERT_EQ(conns.size(), 2u);

  // Queue a farewell, then drain: the message must still arrive before the
  // connection closes, and the draining connection must refuse new sends.
  ASSERT_TRUE(world.server->Send(conns[0], BufferFromString("bye")).ok());
  ASSERT_TRUE(world.server->Drain(conns[0]).ok());
  auto state = world.server->StateOf(conns[0]);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, ConnState::kDraining);
  EXPECT_EQ(world.server->Send(conns[0], BufferFromString("late")).code(),
            ciobase::StatusCode::kFailedPrecondition);

  bool got_bye = false;
  ASSERT_TRUE(world.PumpUntil([&] {
    auto message = world.clients[0]->ReceiveMessage();
    if (message.ok()) {
      got_bye = ToString(*message) == "bye";
    }
    return got_bye && !world.server->StateOf(conns[0]).ok();
  }));
  EXPECT_TRUE(got_bye);
  EXPECT_EQ(world.server->active_connections(), 1u);
  EXPECT_GE(world.server->stats().closed, 1u);
  // The untouched neighbor still works.
  ASSERT_TRUE(world.server->Send(conns[1], BufferFromString("still on")).ok());
  ASSERT_TRUE(world.PumpUntil([&] {
    return world.clients[1]->ReceiveMessage().ok();
  }));
}

// --- Admission control + backpressure ---------------------------------------

TEST(Server, AdmissionRefusesBeyondCapWithTypedFailure) {
  MultiClientWorld::Options options;
  options.num_clients = 6;
  options.server_config.max_connections = 4;
  options.seed = 404;
  MultiClientWorld world(options);
  ASSERT_TRUE(world.server->Start().ok());
  for (auto& client : world.clients) {
    ASSERT_TRUE(
        client->Connect(world.server_node->ip(), world.server->config().port)
            .ok());
  }
  // The herd races in; exactly max_connections win slots. Refused clients
  // see their connection die (abortive RST -> typed failure in the client
  // engine, which here burns its reconnect budget and fails cleanly).
  world.PumpUntil(
      [&] {
        size_t settled = 0;
        for (auto& client : world.clients) {
          settled += (client->Ready() || client->Failed()) ? 1 : 0;
        }
        return settled == world.clients.size() &&
               world.server->stats().rejected_admission >= 2;
      },
      120000);

  EXPECT_EQ(world.server->active_connections(), 4u);
  EXPECT_EQ(world.server->EstablishedConnections().size(), 4u);
  EXPECT_GE(world.server->stats().rejected_admission, 2u);
  size_t ready = 0;
  size_t failed = 0;
  for (auto& client : world.clients) {
    ready += client->Ready() ? 1 : 0;
    failed += client->Failed() ? 1 : 0;
  }
  EXPECT_EQ(ready, 4u);
  EXPECT_EQ(failed, 2u);
  EXPECT_EQ(world.server_node->observability().counters().Get(
                "server.rejected_admission"),
            world.server->stats().rejected_admission);
  // Admitted clients are unaffected by the refused herd.
  cio::ConfidentialNode* admitted = nullptr;
  for (auto& client : world.clients) {
    if (client->Ready()) {
      admitted = client.get();
      break;
    }
  }
  ASSERT_NE(admitted, nullptr);
  ASSERT_TRUE(admitted->SendMessage(BufferFromString("ping")).ok());
  ASSERT_TRUE(world.PumpUntil([&] {
    world.EchoRound();
    return admitted->ReceiveMessage().ok();
  }));
}

TEST(Server, SendQueueCapRejectsTyped) {
  MultiClientWorld::Options options;
  options.num_clients = 1;
  options.server_config.max_send_queue_bytes = 4096;
  options.seed = 550;
  MultiClientWorld world(options);
  ASSERT_TRUE(world.EstablishAll());
  ConnId conn = world.server->EstablishedConnections()[0];

  // Stuff the queue without pumping: beyond the byte budget the server
  // refuses with kResourceExhausted instead of growing.
  Buffer chunk;
  chunk.resize(1024, 0xab);
  bool saw_exhausted = false;
  for (int i = 0; i < 64 && !saw_exhausted; ++i) {
    ciobase::Status status = world.server->Send(conn, chunk);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), ciobase::StatusCode::kResourceExhausted);
      saw_exhausted = true;
    }
  }
  EXPECT_TRUE(saw_exhausted);
  EXPECT_GE(world.server->stats().send_queue_rejections, 1u);
  // Backpressure is transient: once the queue drains, sends work again.
  ASSERT_TRUE(world.PumpUntil([&] {
    return world.server->Send(conn, BufferFromString("after")).ok();
  }));
}

// --- Fairness ---------------------------------------------------------------

TEST(Server, HotClientCannotStarveTheQuiet) {
  MultiClientWorld::Options options;
  options.num_clients = 5;
  options.seed = 660;
  MultiClientWorld world(options);
  ASSERT_TRUE(world.EstablishAll());
  std::vector<ConnId> conns = world.server->EstablishedConnections();
  ASSERT_EQ(conns.size(), 5u);

  // Connection 0 is hot: the server floods it with large messages every
  // round. The others each await one small echo-critical message; DRR must
  // get those out long before the hot backlog drains.
  Buffer flood;
  flood.resize(8192, 0x5a);
  for (size_t i = 1; i < conns.size(); ++i) {
    ASSERT_TRUE(
        world.server
            ->Send(conns[i], BufferFromString("quiet " + std::to_string(i)))
            .ok());
  }
  size_t quiet_delivered = 0;
  int rounds_to_quiet = -1;
  for (int round = 0; round < 20000 && quiet_delivered < 4; ++round) {
    (void)world.server->Send(conns[0], flood);  // keep the hot queue full
    world.Pump();
    for (size_t i = 1; i < world.clients.size(); ++i) {
      if (world.clients[i]->ReceiveMessage().ok()) {
        ++quiet_delivered;
      }
    }
    rounds_to_quiet = round;
  }
  EXPECT_EQ(quiet_delivered, 4u)
      << "quiet clients starved behind the hot one";
  EXPECT_LT(rounds_to_quiet, 2000);
}

// --- Recovery under fault with a herd in flight ------------------------------

TEST(Server, FaultWindowWithEightClientsMidTransferZeroLost) {
  MultiClientWorld::Options options;
  options.profile = StackProfile::kDualBoundary;
  options.num_clients = 8;
  options.seed = 777;
  options.server_config.reattach_timeout_ns = 2'000'000'000;
  MultiClientWorld world(options);
  ASSERT_TRUE(world.EstablishAll());

  const int kMessages = 6;
  std::vector<int> sent(world.clients.size(), 0);
  std::vector<int> echoed(world.clients.size(), 0);
  std::vector<bool> ordered(world.clients.size(), true);
  auto pump_once = [&] {
    world.Pump();
    world.EchoRound();
    for (size_t i = 0; i < world.clients.size(); ++i) {
      for (;;) {
        auto echo = world.clients[i]->ReceiveMessage();
        if (!echo.ok()) {
          break;
        }
        std::string expect =
            "c" + std::to_string(i) + " m" + std::to_string(echoed[i]);
        ordered[i] = ordered[i] && ToString(*echo) == expect;
        ++echoed[i];
      }
    }
  };
  auto offer_all = [&](int count) {
    // Every client keeps offering until the (possibly reconnecting)
    // channel accepts; interleaved so all 8 are genuinely concurrent.
    for (int m = 0; m < count; ++m) {
      for (size_t i = 0; i < world.clients.size(); ++i) {
        for (int round = 0; round < 60000; ++round) {
          std::string payload =
              "c" + std::to_string(i) + " m" + std::to_string(sent[i]);
          if (world.clients[i]->Ready() &&
              world.clients[i]->SendMessage(BufferFromString(payload)).ok()) {
            ++sent[i];
            break;
          }
          pump_once();
        }
      }
      pump_once();
    }
  };

  offer_all(2);  // everyone mid-transfer

  // The hostile host kills the SERVER's link for 12 ms (past the TCP retry
  // budget: every connection dies at once), then later stalls its
  // counters. All 8 clients must reconnect; the server reattaches each
  // parked session; replay + dedup keep delivery exactly-once.
  uint64_t fault_start = world.clock.now_ns();
  world.server_node->adversary().InjectFault(
      {ciohost::FaultStrategy::kLinkKill, fault_start, 12'000'000});
  offer_all(2);
  world.server_node->adversary().InjectFault(
      {ciohost::FaultStrategy::kStallCounters, world.clock.now_ns(),
       2'000'000});
  offer_all(kMessages - 4);

  ASSERT_TRUE(world.PumpUntil(
      [&] {
        world.EchoRound();
        for (size_t i = 0; i < world.clients.size(); ++i) {
          for (;;) {
            auto echo = world.clients[i]->ReceiveMessage();
            if (!echo.ok()) {
              break;
            }
            std::string expect =
                "c" + std::to_string(i) + " m" + std::to_string(echoed[i]);
            ordered[i] = ordered[i] && ToString(*echo) == expect;
            ++echoed[i];
          }
          if (echoed[i] < kMessages || !world.clients[i]->Ready()) {
            return false;
          }
        }
        return true;
      },
      120000))
      << "herd did not fully recover";

  for (size_t i = 0; i < world.clients.size(); ++i) {
    EXPECT_EQ(sent[i], kMessages);
    EXPECT_EQ(echoed[i], kMessages) << "client " << i;
    EXPECT_TRUE(ordered[i]) << "client " << i << " echoes corrupted";
    EXPECT_EQ(world.clients[i]->recovery_stats().messages_lost, 0u);
    EXPECT_FALSE(world.clients[i]->Failed());
  }
  // The fault actually bit and the server actually recovered sessions.
  EXPECT_GT(world.server_node->adversary().fault_events(), 0u);
  EXPECT_GE(world.server->stats().recovered, 1u);
  EXPECT_EQ(world.server_node->observability().counters().Get(
                "server.recovered"),
            world.server->stats().recovered);
  // No message the server's sessions reassembled was lost either.
  EXPECT_EQ(world.server->active_connections(), 8u);
}

}  // namespace
