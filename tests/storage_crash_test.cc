// Crash/fault tests for the §3.3 storage path: ring-level recovery
// (watchdog reset-and-reattach, host-restart detection), ExtentFs crash
// consistency (journaled WriteFile/DeleteFile under a crash at every
// device-write boundary), corrupt-image mounting (fsck never crashes and
// never accepts an inconsistent image), durable anti-rollback across
// remounts, and single cells of the storage campaign (so the whole
// machinery also runs under ASan in the test suite).

#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/base/rng.h"
#include "src/blockio/crypt_client.h"
#include "src/blockio/extent_fs.h"
#include "src/blockio/store.h"
#include "src/cio/storage_campaign.h"

namespace {

using ciobase::Buffer;
using ciobase::BufferFromString;
using ciobase::StatusCode;
using namespace cioblock;  // NOLINT: test file

// A block ring with the recovery machinery on, an adversary for fault
// windows, and direct access to the host device's crash levers.
struct RecoveryWorld {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  ciotee::TeeMemory memory;
  ciohost::Adversary adversary{7};
  ciohost::ObservabilityLog observability;
  BlockRingConfig config;
  std::unique_ptr<ciotee::SharedRegion> shared;
  std::unique_ptr<HostBlockDevice> device;
  std::unique_ptr<RingBlockClient> client;

  explicit RecoveryWorld(uint64_t blocks = 256) {
    config.block_count = blocks;
    ciobase::RecoveryConfig recovery;
    recovery.enabled = true;
    shared = std::make_unique<ciotee::SharedRegion>(
        &memory, config.RegionSize(), "crash-ring");
    device = std::make_unique<HostBlockDevice>(shared.get(), config,
                                               &adversary, &observability,
                                               &clock);
    client = std::make_unique<RingBlockClient>(shared.get(), config,
                                               device.get(), &costs,
                                               recovery);
  }
};

// --- Ring-level recovery --------------------------------------------------------

TEST(RingRecovery, TransientFaultWindowRiddenOut) {
  RecoveryWorld world;
  ASSERT_TRUE(world.client->WriteBlock(1, BufferFromString("warm")).ok());
  world.adversary.InjectFault({ciohost::FaultStrategy::kSwallowDoorbell,
                               world.clock.now_ns(), 12'000'000});
  // The op blocks through the window on watchdog resets, then succeeds.
  EXPECT_TRUE(world.client->WriteBlock(2, BufferFromString("mid")).ok());
  EXPECT_GT(world.client->stats().watchdog_fires, 0u);
  EXPECT_GT(world.client->stats().ring_resets, 0u);
  auto read = world.client->ReadBlock(2);
  ASSERT_TRUE(read.ok());
  read->resize(3);
  EXPECT_EQ(*read, BufferFromString("mid"));
}

TEST(RingRecovery, PermanentlyDeadDeviceTimesOut) {
  RecoveryWorld world;
  world.adversary.InjectFault(
      {ciohost::FaultStrategy::kLinkKill, world.clock.now_ns(), 0});
  auto status = world.client->WriteBlock(1, BufferFromString("x"));
  EXPECT_EQ(status.code(), StatusCode::kTimedOut);  // reset budget spent
}

TEST(RingRecovery, HostCrashLatchesRemountUntilReattach) {
  RecoveryWorld world;
  ASSERT_TRUE(world.client->WriteBlock(1, BufferFromString("durable")).ok());
  ASSERT_TRUE(world.client->Flush().ok());
  ASSERT_TRUE(world.client->WriteBlock(2, BufferFromString("cached")).ok());

  world.device->SimulateCrash();
  // The next op trips the watchdog, sees a changed boot count, and fails
  // with kLinkReset; every further op fails fast until Reattach().
  EXPECT_EQ(world.client->WriteBlock(3, BufferFromString("y")).code(),
            StatusCode::kLinkReset);
  EXPECT_TRUE(world.client->needs_remount());
  EXPECT_EQ(world.client->ReadBlock(1).status().code(),
            StatusCode::kLinkReset);
  EXPECT_GT(world.client->stats().host_restarts, 0u);

  world.client->Reattach();
  EXPECT_FALSE(world.client->needs_remount());
  // Flushed state survived; the unflushed write died with the host.
  auto flushed = world.client->ReadBlock(1);
  ASSERT_TRUE(flushed.ok());
  flushed->resize(7);
  EXPECT_EQ(*flushed, BufferFromString("durable"));
  auto lost = world.client->ReadBlock(2);
  ASSERT_TRUE(lost.ok());
  EXPECT_EQ((*lost)[0], 0);  // discarded with the write-back cache
}

// --- ExtentFs crash consistency -------------------------------------------------

// Crash the host after every k-th device write during an overwrite; after
// reattach + remount the file must hold exactly the old or the new
// content, and the filesystem must be fully writable again.
TEST(ExtentFsCrash, OverwriteAtomicAtEveryCrashPoint) {
  ciobase::Rng rng(21);
  Buffer v1 = BufferFromString("version-one-content");
  // v2 spans ~8 data blocks, so even stride-8 crash points land inside
  // the overwrite (data writes + journal record + inode table write).
  Buffer v2 = rng.Bytes(30'000);
  Buffer v3 = BufferFromString("post-recovery-write");
  for (uint64_t stride : {1, 2, 3, 4, 5, 8}) {
    RecoveryWorld world;
    ExtentFs fs(world.client.get());
    ASSERT_TRUE(fs.Format().ok());
    ASSERT_TRUE(fs.WriteFile("f", v1).ok());

    world.device->CrashAfterWrites(stride);
    auto status = fs.WriteFile("f", v2);
    world.device->CrashAfterWrites(0);
    EXPECT_GT(world.device->stats().crashes, 0u) << "stride " << stride;

    world.client->Reattach();
    ExtentFs remounted(world.client.get());
    ASSERT_TRUE(remounted.Mount().ok()) << "stride " << stride;
    auto read = remounted.ReadFile("f");
    ASSERT_TRUE(read.ok()) << "stride " << stride;
    if (status.ok()) {
      // Acknowledged means committed: only the new content is legal.
      EXPECT_EQ(*read, v2) << "stride " << stride;
    } else {
      EXPECT_TRUE(*read == v1 || *read == v2)
          << "stride " << stride << ": torn or invented content";
    }
    // Full service after recovery.
    ASSERT_TRUE(remounted.WriteFile("f", v3).ok()) << "stride " << stride;
    auto after = remounted.ReadFile("f");
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*after, v3);
  }
}

TEST(ExtentFsCrash, DeleteAtomicAtEveryCrashPoint) {
  Buffer v1 = BufferFromString("doomed-but-never-torn");
  for (uint64_t stride : {1, 2, 3, 4}) {
    RecoveryWorld world;
    ExtentFs fs(world.client.get());
    ASSERT_TRUE(fs.Format().ok());
    ASSERT_TRUE(fs.WriteFile("victim", v1).ok());

    world.device->CrashAfterWrites(stride);
    auto status = fs.DeleteFile("victim");
    world.device->CrashAfterWrites(0);

    world.client->Reattach();
    ExtentFs remounted(world.client.get());
    ASSERT_TRUE(remounted.Mount().ok()) << "stride " << stride;
    auto read = remounted.ReadFile("victim");
    if (status.ok()) {
      // Acknowledged delete must stay deleted.
      EXPECT_FALSE(read.ok()) << "stride " << stride;
    } else if (read.ok()) {
      EXPECT_EQ(*read, v1) << "stride " << stride;  // intact, not torn
    }
    // Either way the name is reusable afterwards.
    ASSERT_TRUE(remounted.WriteFile("victim", v1).ok()) << "stride " << stride;
  }
}

// --- Corrupt-image mounting (fsck fuzz) -----------------------------------------

// A plaintext ExtentFs directly over the ring so the test can reach every
// on-disk structure by lba: block 0 superblock, 1..8 journal, 9+ inode
// table. Mount must never crash, and must never succeed on an image with
// a corrupt superblock or (strict mode) a corrupt inode table.
TEST(ExtentFsFsck, SuperblockBitFlipsNeverMountNeverCrash) {
  RecoveryWorld world;
  ExtentFs fs(world.client.get());
  ASSERT_TRUE(fs.Format().ok());
  ASSERT_TRUE(fs.WriteFile("f", BufferFromString("payload")).ok());

  for (size_t offset = 0; offset < 32; ++offset) {
    for (uint8_t mask : {uint8_t{0x01}, uint8_t{0xFF}}) {
      ASSERT_TRUE(world.device->CorruptRawByte(0, offset, mask));
      ExtentFs victim(world.client.get());
      auto status = victim.Mount();
      EXPECT_FALSE(status.ok()) << "offset " << offset;
      EXPECT_TRUE(status.code() == StatusCode::kTampered ||
                  status.code() == StatusCode::kFailedPrecondition)
          << "offset " << offset << ": " << status.message();
      // ScanAndRepair cannot conjure geometry from a corrupt superblock
      // either — but it must also fail cleanly, not crash.
      ExtentFs fsck(world.client.get());
      EXPECT_FALSE(fsck.ScanAndRepair().ok()) << "offset " << offset;
      // xor is self-inverse: restore and prove the image is fine again.
      ASSERT_TRUE(world.device->CorruptRawByte(0, offset, mask));
    }
  }
  ExtentFs healthy(world.client.get());
  EXPECT_TRUE(healthy.Mount().ok());
}

TEST(ExtentFsFsck, TruncatedSuperblockRejected) {
  RecoveryWorld world;
  ExtentFs fs(world.client.get());
  ASSERT_TRUE(fs.Format().ok());
  ASSERT_TRUE(world.device->TruncateRawBlock(0, 12));
  ExtentFs victim(world.client.get());
  EXPECT_FALSE(victim.Mount().ok());
}

TEST(ExtentFsFsck, NeverFormattedDeviceIsNotAFilesystem) {
  RecoveryWorld world;
  ExtentFs fs(world.client.get());
  auto status = fs.Mount();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ExtentFsFsck, JournalCorruptionIsToleratedAsCrashDebris) {
  RecoveryWorld world;
  ExtentFs fs(world.client.get());
  ASSERT_TRUE(fs.Format().ok());
  Buffer v = BufferFromString("survives journal damage");
  ASSERT_TRUE(fs.WriteFile("f", v).ok());
  // Mangle the first byte of every journal slot: live records lose their
  // magic, retired slots become garbage. Both are legitimate crash debris
  // and must not fail the mount.
  for (uint64_t lba = 1; lba <= ExtentFs::kJournalBlocks; ++lba) {
    ASSERT_TRUE(world.device->CorruptRawByte(lba, 0, 0xFF)) << lba;
  }
  ExtentFs remounted(world.client.get());
  ASSERT_TRUE(remounted.Mount().ok());
  auto read = remounted.ReadFile("f");  // inode table already had the data
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, v);
}

TEST(ExtentFsFsck, InodeTableCorruptionStrictFailsRepairSalvages) {
  RecoveryWorld world;
  ExtentFs fs(world.client.get());
  ASSERT_TRUE(fs.Format().ok());
  ASSERT_TRUE(fs.WriteFile("f", BufferFromString("inode payload")).ok());
  // Flip a byte inside the first inode-table block (lba 9).
  ASSERT_TRUE(world.device->CorruptRawByte(9, 17, 0x40));

  ExtentFs strict(world.client.get());
  auto status = strict.Mount();
  EXPECT_EQ(status.code(), StatusCode::kTampered);

  ExtentFs fsck(world.client.get());
  auto report = fsck.ScanAndRepair();
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->dropped_inode_blocks, 1u);
  EXPECT_TRUE(report->repaired());
  // The damaged block's files are gone, but the filesystem is consistent
  // and fully writable again — and the table was rewritten clean.
  ASSERT_TRUE(fsck.WriteFile("g", BufferFromString("fresh")).ok());
  ExtentFs again(world.client.get());
  EXPECT_TRUE(again.Mount().ok());
}

// The same fuzz through encryption-at-rest: any flipped ciphertext byte
// surfaces as kTampered, never as a crash or a successful mount.
TEST(ExtentFsFsck, CorruptionBelowCryptLayerIsTampered) {
  RecoveryWorld world;
  EncryptedBlockClient crypt(world.client.get(),
                             BufferFromString("disk-key-32-bytes-long-....."),
                             &world.costs);
  ExtentFs fs(&crypt);
  ASSERT_TRUE(fs.Format().ok());
  ASSERT_TRUE(world.device->CorruptRawByte(0, 40, 0x01));
  ExtentFs victim(&crypt);
  auto status = victim.Mount();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kTampered);
}

// --- Durable generations (anti-rollback) ----------------------------------------

TEST(DurableGenerations, TablePersistsAcrossClientInstances) {
  RecoveryWorld world;
  ciotee::MonotonicCounter counter;
  CryptClientOptions options;
  options.durable_generations = true;
  options.rollback_counter = &counter;
  Buffer key = BufferFromString("disk-key-32-bytes-long-.....");

  {
    EncryptedBlockClient crypt(world.client.get(), key, &world.costs,
                               options);
    ASSERT_TRUE(crypt.geometry_status().ok());
    ASSERT_TRUE(crypt.WriteBlock(3, BufferFromString("sealed v1")).ok());
    ASSERT_TRUE(crypt.Flush().ok());
    EXPECT_GT(counter.value(), 0u);
    EXPECT_GT(crypt.stats().table_flushes, 0u);
  }
  // A fresh client (fresh mount) reloads the table from the epoch blocks
  // and still authenticates the data block.
  EncryptedBlockClient crypt2(world.client.get(), key, &world.costs,
                              options);
  auto read = crypt2.ReadBlock(3);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, BufferFromString("sealed v1"));
  EXPECT_GT(crypt2.stats().table_loads, 0u);
  EXPECT_GT(crypt2.stats().entries_loaded, 0u);
  EXPECT_GT(crypt2.Generation(3), 0u);
}

// Satellite regression: host snapshots the image, the guest overwrites and
// flushes, the host restores. This must be detected at read AND at remount
// — and it passes only because generations are durably persisted, which
// the volatile control test below demonstrates.
TEST(DurableGenerations, RollbackAcrossRemountDetected) {
  ciobase::SimClock clock;
  ciobase::CostModel costs(&clock);
  ciotee::TeeMemory memory;
  ciotee::CompartmentManager compartments(&costs);
  auto app = compartments.Create("app", 1 << 20);
  auto storage = compartments.Create("storage", 1 << 20);
  ciohost::Adversary adversary(11);
  ciohost::ObservabilityLog observability;
  ciotee::MonotonicCounter counter;

  ConfidentialStore::Options options;
  options.ring.block_count = 512;
  options.disk_key = BufferFromString("disk-key-aaaaaaaaaaaaaaaaaaaaaaa");
  options.value_key = BufferFromString("value-key-bbbbbbbbbbbbbbbbbbbbbb");
  options.recovery.enabled = true;
  options.rollback_counter = &counter;
  ConfidentialStore store(&memory, &compartments, app, storage, &costs,
                          &adversary, &observability, &clock, options);
  ASSERT_TRUE(store.Format().ok());

  ASSERT_TRUE(store.Put("victim", BufferFromString("version-1")).ok());
  store.host_device()->SnapshotImage();
  ASSERT_TRUE(store.Put("victim", BufferFromString("version-2")).ok());
  store.host_device()->RestoreSnapshot();

  auto read = store.Get("victim");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kTampered);
  EXPECT_EQ(store.Remount().code(), StatusCode::kTampered);
}

TEST(DurableGenerations, VolatileControlAcceptsStaleImageAfterRemount) {
  ciobase::SimClock clock;
  ciobase::CostModel costs(&clock);
  ciotee::TeeMemory memory;
  ciotee::CompartmentManager compartments(&costs);
  auto app = compartments.Create("app", 1 << 20);
  auto storage = compartments.Create("storage", 1 << 20);
  ciohost::Adversary adversary(12);
  ciohost::ObservabilityLog observability;

  ConfidentialStore::Options options;
  options.ring.block_count = 512;
  options.disk_key = BufferFromString("disk-key-aaaaaaaaaaaaaaaaaaaaaaa");
  options.value_key = BufferFromString("value-key-bbbbbbbbbbbbbbbbbbbbbb");
  options.recovery.enabled = true;  // no rollback counter: volatile
  ConfidentialStore store(&memory, &compartments, app, storage, &costs,
                          &adversary, &observability, &clock, options);
  ASSERT_TRUE(store.Format().ok());

  ASSERT_TRUE(store.Put("victim", BufferFromString("version-1")).ok());
  store.host_device()->SnapshotImage();
  ASSERT_TRUE(store.Put("victim", BufferFromString("version-2")).ok());
  store.host_device()->RestoreSnapshot();

  // In-session the volatile generation map still catches the rollback...
  EXPECT_EQ(store.Get("victim").status().code(), StatusCode::kTampered);
  // ...but a remount forgets it and serves the stale value: exactly the
  // gap durable generations close.
  ASSERT_TRUE(store.Remount().ok());
  auto stale = store.Get("victim");
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(*stale, BufferFromString("version-1"));
}

// --- Full-stack crash recovery --------------------------------------------------

TEST(ConfidentialStoreCrash, CrashRemountRecovers) {
  ciobase::SimClock clock;
  ciobase::CostModel costs(&clock);
  ciotee::TeeMemory memory;
  ciotee::CompartmentManager compartments(&costs);
  auto app = compartments.Create("app", 1 << 20);
  auto storage = compartments.Create("storage", 1 << 20);
  ciohost::Adversary adversary(13);
  ciohost::ObservabilityLog observability;
  ciotee::MonotonicCounter counter;

  ConfidentialStore::Options options;
  options.ring.block_count = 512;
  options.disk_key = BufferFromString("disk-key-aaaaaaaaaaaaaaaaaaaaaaa");
  options.value_key = BufferFromString("value-key-bbbbbbbbbbbbbbbbbbbbbb");
  options.recovery.enabled = true;
  options.rollback_counter = &counter;
  ConfidentialStore store(&memory, &compartments, app, storage, &costs,
                          &adversary, &observability, &clock, options);
  ASSERT_TRUE(store.Format().ok());
  ASSERT_TRUE(store.Put("k1", BufferFromString("survives")).ok());

  store.host_device()->SimulateCrash();
  EXPECT_EQ(store.Put("k2", BufferFromString("x")).code(),
            StatusCode::kLinkReset);
  EXPECT_TRUE(store.ring_client()->needs_remount());
  ASSERT_TRUE(store.Remount().ok());
  EXPECT_GT(store.stats().remounts, 0u);

  auto read = store.Get("k1");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, BufferFromString("survives"));
  ASSERT_TRUE(store.Put("k2", BufferFromString("post-crash")).ok());
  auto read2 = store.Get("k2");
  ASSERT_TRUE(read2.ok());
  EXPECT_EQ(*read2, BufferFromString("post-crash"));
}

// --- Campaign cells (also exercised under ASan via the test suite) --------------

TEST(StorageCampaign, CrashCellSurvives) {
  cio::StorageCampaignOptions options;
  options.ops_per_run = 20;
  options.max_crashes = 4;
  auto cell = cio::RunStorageCrashCell(3, options);
  EXPECT_TRUE(cell.survived) << cell.note;
  EXPECT_GT(cell.crashes, 0u);
  EXPECT_EQ(cell.lost_committed, 0u);
  EXPECT_EQ(cell.wrong_values, 0u);
  EXPECT_EQ(cell.tamper_alarms, 0u);
}

TEST(StorageCampaign, TornWriteFaultCellRecovers) {
  cio::StorageCampaignOptions options;
  options.ops_per_run = 20;
  auto cell =
      cio::RunStorageFaultCell(ciohost::FaultStrategy::kTornWrite, options);
  EXPECT_TRUE(cell.recovered) << cell.note;
  EXPECT_GT(cell.fault_events, 0u);
  EXPECT_EQ(cell.wrong_values, 0u);
  EXPECT_EQ(cell.lost_committed, 0u);
}

TEST(StorageCampaign, RollbackProbesShowTheGap) {
  auto durable = cio::RunStorageRollbackProbe(/*durable_generations=*/true);
  EXPECT_TRUE(durable.read_detected);
  EXPECT_TRUE(durable.remount_detected);
  EXPECT_FALSE(durable.stale_accepted);

  auto volatile_arm =
      cio::RunStorageRollbackProbe(/*durable_generations=*/false);
  EXPECT_TRUE(volatile_arm.read_detected);
  EXPECT_FALSE(volatile_arm.remount_detected);
  EXPECT_TRUE(volatile_arm.stale_accepted);
}

}  // namespace
