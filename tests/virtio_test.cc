// Tests for the virtio baseline: negotiation, frame TX/RX through the
// device model and fabric, SWIOTLB pool behavior, and — the §2.5 point —
// hardened vs. unhardened drivers under active host attack.

#include <gtest/gtest.h>

#include <memory>

#include "src/base/clock.h"
#include "src/hostsim/adversary.h"
#include "src/hostsim/observability.h"
#include "src/net/fabric.h"
#include "src/tee/memory.h"
#include "src/tee/shared_region.h"
#include "src/virtio/net_device.h"
#include "src/virtio/net_driver.h"
#include "src/virtio/swiotlb.h"

namespace {

using ciobase::Buffer;
using ciobase::ByteSpan;
using namespace ciovirtio;  // NOLINT: test file

// A virtio guest attached to a fabric, with a direct peer port to talk to.
struct VirtioWorld {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  cionet::Fabric fabric{&clock, 7};
  ciotee::TeeMemory memory;
  VirtioNetLayout layout = VirtioNetLayout::Make(64, 2048, 128);
  ciotee::SharedRegion shared{&memory, layout.TotalSize(), "virtio"};
  ciohost::Adversary adversary{13};
  ciohost::ObservabilityLog observability;
  std::unique_ptr<VirtioNetDevice> device;
  std::unique_ptr<VirtioNetDriver> driver;
  std::unique_ptr<cionet::DirectFabricPort> peer;

  explicit VirtioWorld(HardeningOptions hardening) {
    device = std::make_unique<VirtioNetDevice>(
        &shared, layout, &fabric, "virtio-nic", cionet::MacAddress::FromId(1),
        1500,
        kFeatureMac | kFeatureMtu | kFeatureCsum | kFeatureVersion1 |
            kFeatureIndirectDesc,
        &adversary, &observability, &clock);
    driver = std::make_unique<VirtioNetDriver>(&shared, layout, device.get(),
                                               &costs, hardening,
                                               &observability);
    peer = std::make_unique<cionet::DirectFabricPort>(
        &fabric, "peer", cionet::MacAddress::FromId(2));
  }

  // Builds an Ethernet frame from peer to the virtio NIC.
  Buffer PeerFrame(const std::string& payload) {
    Buffer frame;
    cionet::EthernetHeader eth{cionet::MacAddress::FromId(1),
                               cionet::MacAddress::FromId(2), 0x88b5};
    eth.Serialize(frame);
    ciobase::AppendString(frame, payload);
    return frame;
  }

  void Pump(int rounds = 10) {
    for (int i = 0; i < rounds; ++i) {
      clock.Advance(50'000);
      device->Poll();
    }
  }
};

TEST(VirtioNegotiation, CompletesAndReadsConfig) {
  VirtioWorld world(HardeningOptions::Full());
  ASSERT_TRUE(world.driver->Negotiate().ok());
  EXPECT_EQ(world.driver->mac(), cionet::MacAddress::FromId(1));
  EXPECT_EQ(world.driver->mtu(), 1500);
  // Feature restriction refused indirect descriptors.
  EXPECT_EQ(world.driver->config().features & kFeatureIndirectDesc, 0u);
  // Config-plane observability was recorded (the §2.4 cost of a stateful
  // control path).
  EXPECT_GT(world.observability.CountOf(ciohost::ObsCategory::kConfigField),
            5u);
}

TEST(VirtioNegotiation, UnrestrictedDriverAcceptsIndirect) {
  VirtioWorld world(HardeningOptions::None());
  ASSERT_TRUE(world.driver->Negotiate().ok());
  EXPECT_NE(world.driver->config().features & kFeatureIndirectDesc, 0u);
}

TEST(VirtioNegotiation, SendBeforeNegotiateFails) {
  VirtioWorld world(HardeningOptions::Full());
  Buffer frame = world.PeerFrame("x");
  EXPECT_EQ(cionet::SendOne(*world.driver, frame).code(),
            ciobase::StatusCode::kFailedPrecondition);
}

TEST(VirtioNegotiation, MidFlightNeedsResetIsTypedViolation) {
  // The status byte is the host's lever for forcing re-negotiation. A
  // hardened driver reads it back exactly once and refuses anything but the
  // value it wrote — NEEDS_RESET mid-dance is a typed violation, never a
  // silent restart of the dance.
  VirtioWorld world(HardeningOptions::Full());
  size_t status_offset = world.layout.config.StatusOffset();
  world.shared.SetTamperHook([status_offset](ciobase::MutableByteSpan bytes) {
    bytes[status_offset] |= kStatusNeedsReset;
  });
  EXPECT_EQ(world.driver->Negotiate().code(),
            ciobase::StatusCode::kHostViolation);
  world.shared.ClearTamperHook();
}

TEST(VirtioNegotiation, FeatureWordSwapAfterAcceptIsTypedViolation) {
  // Advertise-then-swap: the host changes the device feature words only
  // after the driver has written its accepted subset. The driver's private
  // snapshot stays authoritative, and the changed word surfaces as a typed
  // violation instead of being silently re-read.
  VirtioWorld world(HardeningOptions::Full());
  size_t device_features = world.layout.config.DeviceFeaturesOffset();
  size_t driver_features = world.layout.config.DriverFeaturesOffset();
  world.shared.SetTamperHook(
      [device_features, driver_features](ciobase::MutableByteSpan bytes) {
        if (ciobase::LoadLe64(bytes.data() + driver_features) != 0) {
          bytes[device_features + 5] |= 0x80;  // unknown high feature bit
        }
      });
  EXPECT_EQ(world.driver->Negotiate().code(),
            ciobase::StatusCode::kHostViolation);
  world.shared.ClearTamperHook();
}

TEST(VirtioDataPath, GuestToPeer) {
  VirtioWorld world(HardeningOptions::Full());
  ASSERT_TRUE(world.driver->Negotiate().ok());
  Buffer frame;
  cionet::EthernetHeader eth{cionet::MacAddress::FromId(2),
                             cionet::MacAddress::FromId(1), 0x88b5};
  eth.Serialize(frame);
  ciobase::AppendString(frame, "guest speaks");
  ASSERT_TRUE(cionet::SendOne(*world.driver, frame).ok());
  world.Pump();
  auto received = cionet::ReceiveOne(*world.peer);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(*received, frame);
}

TEST(VirtioDataPath, PeerToGuest) {
  VirtioWorld world(HardeningOptions::Full());
  ASSERT_TRUE(world.driver->Negotiate().ok());
  Buffer frame = world.PeerFrame("host speaks");
  ASSERT_TRUE(cionet::SendOne(*world.peer, frame).ok());
  world.Pump();
  auto received = cionet::ReceiveOne(*world.driver);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(*received, frame);
  EXPECT_TRUE(world.memory.violations().empty());
}

TEST(VirtioDataPath, ManyFramesBothWays) {
  VirtioWorld world(HardeningOptions::Full());
  ASSERT_TRUE(world.driver->Negotiate().ok());
  for (int i = 0; i < 200; ++i) {
    Buffer frame = world.PeerFrame("frame " + std::to_string(i));
    ASSERT_TRUE(cionet::SendOne(*world.peer, frame).ok());
    world.Pump(2);
    auto received = cionet::ReceiveOne(*world.driver);
    ASSERT_TRUE(received.ok()) << "frame " << i << ": "
                               << received.status().ToString();
    EXPECT_EQ(*received, frame);
  }
  EXPECT_EQ(world.driver->stats().frames_received, 200u);
}

TEST(VirtioDataPath, UnhardenedAlsoWorksWithoutAttack) {
  VirtioWorld world(HardeningOptions::None());
  ASSERT_TRUE(world.driver->Negotiate().ok());
  Buffer frame = world.PeerFrame("benign");
  ASSERT_TRUE(cionet::SendOne(*world.peer, frame).ok());
  world.Pump();
  auto received = cionet::ReceiveOne(*world.driver);
  ASSERT_TRUE(received.ok());
  ASSERT_GE(received->size(), frame.size());
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), received->begin()));
}

// --- Under attack -------------------------------------------------------------

TEST(VirtioAttack, UsedLenInflationClampedByHardenedDriver) {
  VirtioWorld world(HardeningOptions::Full());
  ASSERT_TRUE(world.driver->Negotiate().ok());
  world.adversary.set_strategy(ciohost::AttackStrategy::kUsedLenInflation);
  Buffer frame = world.PeerFrame("short");
  ASSERT_TRUE(cionet::SendOne(*world.peer, frame).ok());
  world.Pump();
  auto received = cionet::ReceiveOne(*world.driver);
  ASSERT_TRUE(received.ok());
  // The hardened driver clamps to its own posted capacity: no OOB access.
  EXPECT_LE(received->size(), 2048u);
  EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobRead), 0u);
}

TEST(VirtioAttack, UsedLenInflationBreaksUnhardenedDriver) {
  VirtioWorld world(HardeningOptions::None());
  ASSERT_TRUE(world.driver->Negotiate().ok());
  world.adversary.set_strategy(ciohost::AttackStrategy::kUsedLenInflation);
  Buffer frame = world.PeerFrame("short");
  ASSERT_TRUE(cionet::SendOne(*world.peer, frame).ok());
  world.Pump();
  auto received = cionet::ReceiveOne(*world.driver);
  // The unhardened driver trusts the inflated length: it reads far past the
  // posted buffer (recorded as an out-of-bounds access by the TEE memory
  // model) and returns a hugely oversized frame.
  ASSERT_TRUE(received.ok());
  EXPECT_GT(received->size(), 2048u);
  EXPECT_GT(world.memory.ViolationCount(ciotee::ViolationKind::kOobRead), 0u);
}

TEST(VirtioAttack, ReplayedCompletionRejectedByHardenedDriver) {
  VirtioWorld world(HardeningOptions::Full());
  ASSERT_TRUE(world.driver->Negotiate().ok());
  Buffer frame = world.PeerFrame("first");
  ASSERT_TRUE(cionet::SendOne(*world.peer, frame).ok());
  world.Pump();
  ASSERT_TRUE(cionet::ReceiveOne(*world.driver).ok());
  // Now replay: every completion the device pushes is the stale one.
  world.adversary.set_strategy(ciohost::AttackStrategy::kReplayCompletion);
  Buffer frame2 = world.PeerFrame("second");
  ASSERT_TRUE(cionet::SendOne(*world.peer, frame2).ok());
  world.Pump();
  auto received = cionet::ReceiveOne(*world.driver);
  // The replayed id no longer matches an outstanding buffer: refused.
  EXPECT_FALSE(received.ok());
  EXPECT_GT(world.driver->stats().completions_rejected, 0u);
}

TEST(VirtioAttack, DoubleFetchOffsetHitsUnhardenedOnly) {
  // Unhardened first: the in-place re-read of desc.addr diverges.
  {
    VirtioWorld world(HardeningOptions::None());
    ASSERT_TRUE(world.driver->Negotiate().ok());
    ASSERT_TRUE(cionet::SendOne(*world.peer, world.PeerFrame("payload")).ok());
    world.Pump();
    world.adversary.Arm(&world.shared, world.driver->AttackSurface());
    world.adversary.set_strategy(
        ciohost::AttackStrategy::kDoubleFetchOffset);
    (void)cionet::ReceiveOne(*world.driver);
    world.adversary.Disarm();
    // The flipped offset (0xff...) sent the payload read out of bounds.
    EXPECT_GT(world.memory.ViolationCount(ciotee::ViolationKind::kOobRead),
              0u);
  }
  // Hardened: the driver never re-reads shared descriptor fields, so the
  // same attack cannot redirect its payload read.
  {
    VirtioWorld world(HardeningOptions::Full());
    ASSERT_TRUE(world.driver->Negotiate().ok());
    ASSERT_TRUE(cionet::SendOne(*world.peer, world.PeerFrame("payload")).ok());
    world.Pump();
    world.adversary.Arm(&world.shared, world.driver->AttackSurface());
    world.adversary.set_strategy(
        ciohost::AttackStrategy::kDoubleFetchOffset);
    auto received = cionet::ReceiveOne(*world.driver);
    world.adversary.Disarm();
    EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobRead),
              0u);
    // It either delivered the frame or rejected cleanly — never OOB.
    if (received.ok()) {
      EXPECT_LE(received->size(), 2048u);
    }
  }
}

TEST(VirtioAttack, IndexStormBoundedByHardenedDriver) {
  VirtioWorld world(HardeningOptions::Full());
  ASSERT_TRUE(world.driver->Negotiate().ok());
  world.adversary.set_strategy(ciohost::AttackStrategy::kIndexStorm);
  ASSERT_TRUE(cionet::SendOne(*world.peer, world.PeerFrame("x")).ok());
  world.Pump();
  // The stormed used-idx claims thousands of completions; all the phantom
  // ones carry ids that don't match outstanding buffers and are refused.
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    auto received = cionet::ReceiveOne(*world.driver);
    if (received.ok()) {
      ++delivered;
    }
  }
  EXPECT_LE(delivered, 1);
  EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobRead), 0u);
}

TEST(VirtioSwiotlb, AllocFreeExhaustion) {
  ciobase::SimClock clock;
  ciobase::CostModel costs(&clock);
  ciotee::TeeMemory memory;
  ciotee::SharedRegion shared(&memory, 16 * 1024, "pool");
  Swiotlb pool(&shared, 0, 1024, 16, &costs);
  std::vector<uint64_t> slots;
  for (int i = 0; i < 16; ++i) {
    auto slot = pool.AllocSlot();
    ASSERT_TRUE(slot.ok());
    slots.push_back(*slot);
  }
  EXPECT_FALSE(pool.AllocSlot().ok());
  for (uint64_t slot : slots) {
    EXPECT_TRUE(pool.FreeSlot(slot).ok());
  }
  EXPECT_EQ(pool.free_slots(), 16u);
  EXPECT_FALSE(pool.FreeSlot(13).ok());  // misaligned offset
}

TEST(VirtioSwiotlb, BounceRoundTripChargesCopies) {
  ciobase::SimClock clock;
  ciobase::CostModel costs(&clock);
  ciotee::TeeMemory memory;
  ciotee::SharedRegion shared(&memory, 16 * 1024, "pool");
  Swiotlb pool(&shared, 0, 1024, 16, &costs);
  auto slot = pool.AllocSlot();
  ASSERT_TRUE(slot.ok());
  Buffer data = ciobase::BufferFromString("bounce me");
  ASSERT_TRUE(pool.CopyOut(*slot, data).ok());
  auto back = pool.CopyIn(*slot, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
  EXPECT_EQ(costs.counter("copies"), 2u);
  EXPECT_EQ(costs.counter("bytes_copied"), 2 * data.size());
}

TEST(VirtioObservability, HostSeesLengthsAndDoorbells) {
  VirtioWorld world(HardeningOptions::Full());
  ASSERT_TRUE(world.driver->Negotiate().ok());
  world.observability.Clear();
  Buffer frame = world.PeerFrame("observable");
  ASSERT_TRUE(cionet::SendOne(*world.peer, frame).ok());
  world.Pump();
  ASSERT_TRUE(cionet::ReceiveOne(*world.driver).ok());
  EXPECT_GT(world.observability.CountOf(ciohost::ObsCategory::kPacketLength),
            0u);
  EXPECT_GT(world.observability.CountOf(ciohost::ObsCategory::kPacketTiming),
            0u);
}

}  // namespace
