// Tests for the coverage-guided host-interface fuzzer (src/fuzz) and the
// FaultWindow semantics it pins down (src/hostsim/adversary.h).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/base/coverage.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/mutator.h"
#include "src/fuzz/target.h"
#include "src/hostsim/adversary.h"

namespace {

using ciofuzz::FuzzInput;
using ciofuzz::MutationStep;
using ciofuzz::MutOp;
using ciofuzz::Mutator;
using ciofuzz::TargetWindow;
using ciohost::Adversary;
using ciohost::FaultStrategy;
using ciohost::FaultWindow;

TargetWindow RawWindow(const char* name, ciobase::MutableByteSpan span) {
  TargetWindow window;
  window.name = name;
  window.length = span.size();
  window.raw = span;
  return window;
}

// --- Mutation steps ----------------------------------------------------------

TEST(MutatorTest, SerializeParseRoundTrip) {
  FuzzInput input;
  input.steps.push_back({7, "l2.counters", MutOp::kWriteLe64, 64, 8,
                         0xdeadbeefcafef00dULL});
  input.steps.push_back({0, "virtio.rest", MutOp::kBitFlip, 12345, 1, 5});
  input.steps.push_back({159, "block.cells", MutOp::kFillRandom, 0, 64, 42});

  std::string text = input.Serialize();
  FuzzInput parsed;
  ASSERT_TRUE(FuzzInput::Parse(text, &parsed));
  ASSERT_EQ(parsed.steps.size(), input.steps.size());
  for (size_t i = 0; i < input.steps.size(); ++i) {
    EXPECT_EQ(parsed.steps[i].round, input.steps[i].round);
    EXPECT_EQ(parsed.steps[i].window, input.steps[i].window);
    EXPECT_EQ(parsed.steps[i].op, input.steps[i].op);
    EXPECT_EQ(parsed.steps[i].offset, input.steps[i].offset);
    EXPECT_EQ(parsed.steps[i].width, input.steps[i].width);
    EXPECT_EQ(parsed.steps[i].value, input.steps[i].value);
  }
  // Re-serializing the parse reproduces the text exactly.
  EXPECT_EQ(parsed.Serialize(), text);
}

TEST(MutatorTest, ParseIgnoresHeaderAndComments) {
  const char* repro =
      "# cio-fuzz repro\n"
      "target=net-dual-boundary\n"
      "seed=42\n"
      "\n"
      "# a note\n"
      "step 3 l5.ctrl byte-set 8 1 129\n";
  FuzzInput parsed;
  ASSERT_TRUE(FuzzInput::Parse(repro, &parsed));
  ASSERT_EQ(parsed.steps.size(), 1u);
  EXPECT_EQ(parsed.steps[0].round, 3u);
  EXPECT_EQ(parsed.steps[0].window, "l5.ctrl");
  EXPECT_EQ(parsed.steps[0].op, MutOp::kByteSet);
}

TEST(MutatorTest, ParseRejectsMalformedStep) {
  FuzzInput parsed;
  EXPECT_FALSE(FuzzInput::Parse("step 1 w not-an-op 0 1 0\n", &parsed));
  EXPECT_FALSE(FuzzInput::Parse("step 1 w\n", &parsed));
}

TEST(MutatorTest, ApplyStepWritesExactBytes) {
  ciobase::Buffer memory(64, 0);
  TargetWindow window =
      RawWindow("w", ciobase::MutableByteSpan(memory.data(), memory.size()));

  Mutator::ApplyStep({0, "w", MutOp::kByteSet, 10, 1, 0x5a}, window);
  EXPECT_EQ(memory[10], 0x5a);

  Mutator::ApplyStep({0, "w", MutOp::kWriteLe32, 20, 4, 0x11223344}, window);
  EXPECT_EQ(memory[20], 0x44);
  EXPECT_EQ(memory[21], 0x33);
  EXPECT_EQ(memory[22], 0x22);
  EXPECT_EQ(memory[23], 0x11);

  Mutator::ApplyStep({0, "w", MutOp::kBitFlip, 0, 1, 3}, window);
  EXPECT_EQ(memory[0], 1 << 3);

  Mutator::ApplyStep({0, "w", MutOp::kAddDelta, 20, 4, 1}, window);
  EXPECT_EQ(memory[20], 0x45);  // 0x11223344 + 1, low byte

  // Offsets are clamped modulo the window, never past it.
  Mutator::ApplyStep({0, "w", MutOp::kByteSet, 64 + 5, 1, 0xEE}, window);
  EXPECT_EQ(memory[5], 0xEE);
}

TEST(MutatorTest, FillRandomIsAFunctionOfTheStepAlone) {
  ciobase::Buffer a(32, 0), b(32, 0);
  TargetWindow wa = RawWindow("w", ciobase::MutableByteSpan(a.data(), 32));
  TargetWindow wb = RawWindow("w", ciobase::MutableByteSpan(b.data(), 32));
  MutationStep step{0, "w", MutOp::kFillRandom, 4, 16, 777};
  Mutator::ApplyStep(step, wa);
  Mutator::ApplyStep(step, wb);
  EXPECT_EQ(a, b);
  // The fill actually wrote something.
  EXPECT_NE(a, ciobase::Buffer(32, 0));
}

TEST(MutatorTest, GenerateIsDeterministicInSeed) {
  std::vector<TargetWindow> specs;
  TargetWindow spec;
  spec.name = "w";
  spec.length = 4096;
  spec.weight = 1;
  specs.push_back(spec);

  Mutator m1(123), m2(123), m3(124);
  FuzzInput a = m1.Generate(specs, 160, 10);
  FuzzInput b = m2.Generate(specs, 160, 10);
  FuzzInput c = m3.Generate(specs, 160, 10);
  EXPECT_EQ(a.Serialize(), b.Serialize());
  EXPECT_NE(a.Serialize(), c.Serialize());
}

// --- Campaign determinism and coverage ---------------------------------------

ciofuzz::FuzzOptions SmallCampaign(uint64_t seed) {
  ciofuzz::FuzzOptions options;
  options.seed = seed;
  options.run.seed = seed;
  options.iterations = 36;
  return options;
}

TEST(FuzzerTest, CampaignIsDeterministicInSeed) {
  ciofuzz::FuzzReport first = ciofuzz::Fuzzer(SmallCampaign(7)).Run();
  ciofuzz::FuzzReport second = ciofuzz::Fuzzer(SmallCampaign(7)).Run();
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.coverage_hash, second.coverage_hash);
  EXPECT_EQ(first.mutated_edges, second.mutated_edges);
  EXPECT_EQ(first.corpus_size, second.corpus_size);
  EXPECT_EQ(first.failures.size(), second.failures.size());

  ciofuzz::FuzzReport other = ciofuzz::Fuzzer(SmallCampaign(8)).Run();
  EXPECT_NE(first.trace_hash, other.trace_hash);
}

TEST(FuzzerTest, MutationAddsCoverageOverBaseline) {
  // The same assertion the CI smoke gate makes: a campaign must light up
  // edges the unmutated workloads never reach, or the mutator is dead
  // weight.
  ciofuzz::FuzzOptions options = SmallCampaign(42);
  options.iterations = 120;
  ciofuzz::FuzzReport report = ciofuzz::Fuzzer(options).Run();
  EXPECT_EQ(report.baseline_incomplete, 0u)
      << "unmutated baseline workloads must complete";
  EXPECT_GT(report.mutated_edges, report.baseline_edges);
}

TEST(FuzzerTest, ReplayReproducesARecordedRun) {
  // Serialize a handcrafted failure record, then replay it twice: the
  // outcomes must agree field for field (the repro file is the full input).
  ciofuzz::FuzzFailure failure;
  failure.target = "net-dual-boundary";
  failure.kind = "synthetic";
  failure.note = "determinism probe";
  failure.input.steps.push_back(
      {9, "l5.ctrl", MutOp::kWriteLe16, 16, 4, 15058137608686373754ULL});
  failure.input.steps.push_back({6, "l5.ctrl", MutOp::kByteSet, 10, 2, 129});

  ciofuzz::FuzzOptions options;
  std::string path = ::testing::TempDir() + "/cio_fuzz_replay_test.txt";
  {
    std::ofstream file(path);
    file << ciofuzz::Fuzzer::ReproText(failure, options);
  }

  ciofuzz::RunResult first, second;
  std::string error;
  ASSERT_TRUE(ciofuzz::Fuzzer::Replay(path, &first, &error)) << error;
  ASSERT_TRUE(ciofuzz::Fuzzer::Replay(path, &second, &error)) << error;
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.gated, second.gated);
  EXPECT_EQ(first.kind, second.kind);
  EXPECT_EQ(first.steps_applied, second.steps_applied);
  EXPECT_EQ(first.non_ok_edges, second.non_ok_edges);
  EXPECT_EQ(first.steps_applied, 2u);
  std::remove(path.c_str());
}

TEST(FuzzerTest, ReplayRejectsUnknownTargetAndMissingFile) {
  ciofuzz::RunResult result;
  std::string error;
  EXPECT_FALSE(
      ciofuzz::Fuzzer::Replay("/nonexistent/repro.txt", &result, &error));

  std::string path = ::testing::TempDir() + "/cio_fuzz_bad_target.txt";
  {
    std::ofstream file(path);
    file << "target=no-such-target\nstep 0 w bit-flip 0 1 0\n";
  }
  EXPECT_FALSE(ciofuzz::Fuzzer::Replay(path, &result, &error));
  std::remove(path.c_str());
}

TEST(FuzzerTest, EveryTargetHasWindowsAndIsFindableByName) {
  auto targets = ciofuzz::AllFuzzTargets();
  ASSERT_FALSE(targets.empty());
  for (const auto& target : targets) {
    EXPECT_FALSE(target->WindowSpecs().empty()) << target->name();
    EXPECT_NE(ciofuzz::MakeFuzzTarget(target->name()), nullptr)
        << target->name();
  }
  EXPECT_EQ(ciofuzz::MakeFuzzTarget("bogus"), nullptr);
}

// --- FaultWindow semantics (pinned here; see adversary.h) --------------------

TEST(FaultWindowTest, PermanentWindowNeverClears) {
  FaultWindow fault = FaultWindow::Permanent(FaultStrategy::kLinkKill, 100);
  EXPECT_FALSE(fault.ActiveAt(99));
  EXPECT_TRUE(fault.ActiveAt(100));
  EXPECT_TRUE(fault.ActiveAt(UINT64_MAX));
}

TEST(FaultWindowTest, DirectZeroDurationIsPermanent) {
  // Pre-existing campaign idiom: a brace-constructed {strategy, now, 0}
  // means "dead forever" (storage_crash_test relies on it).
  FaultWindow fault{FaultStrategy::kLinkKill, 50, 0};
  EXPECT_TRUE(fault.ActiveAt(50));
  EXPECT_TRUE(fault.ActiveAt(1'000'000'000));
}

TEST(FaultWindowTest, TimedZeroDurationIsEmptyNotPermanent) {
  // A computed duration that collapses to zero must degrade to a no-op, not
  // silently escalate to a permanent fault.
  FaultWindow fault =
      FaultWindow::Timed(FaultStrategy::kStallCounters, 100, 0);
  EXPECT_FALSE(fault.ActiveAt(99));
  EXPECT_FALSE(fault.ActiveAt(100));
  EXPECT_FALSE(fault.ActiveAt(101));
  EXPECT_FALSE(fault.ActiveAt(UINT64_MAX));
}

TEST(FaultWindowTest, TimedWindowIsHalfOpen) {
  FaultWindow fault =
      FaultWindow::Timed(FaultStrategy::kDropFrames, 100, 10);
  EXPECT_FALSE(fault.ActiveAt(99));
  EXPECT_TRUE(fault.ActiveAt(100));   // inclusive start
  EXPECT_TRUE(fault.ActiveAt(109));
  EXPECT_FALSE(fault.ActiveAt(110));  // exclusive end
}

TEST(FaultWindowTest, NoneStrategyIsNeverActive) {
  FaultWindow fault{FaultStrategy::kNone, 0, 0};
  EXPECT_FALSE(fault.ActiveAt(0));
  EXPECT_FALSE(fault.ActiveAt(12345));
}

TEST(FaultWindowTest, OverlappingWindowsFormAUnion) {
  Adversary adversary(1);
  adversary.InjectFault(
      FaultWindow::Timed(FaultStrategy::kDropFrames, 100, 50));
  adversary.InjectFault(
      FaultWindow::Timed(FaultStrategy::kDropFrames, 120, 100));

  EXPECT_FALSE(adversary.FaultActive(FaultStrategy::kDropFrames, 99));
  EXPECT_TRUE(adversary.FaultActive(FaultStrategy::kDropFrames, 110));
  // Inside the overlap: active, and counted as ONE event for this query.
  uint64_t before = adversary.fault_events();
  EXPECT_TRUE(adversary.FaultActive(FaultStrategy::kDropFrames, 130));
  EXPECT_EQ(adversary.fault_events(), before + 1);
  // Covered only by the second window once the first expires.
  EXPECT_TRUE(adversary.FaultActive(FaultStrategy::kDropFrames, 180));
  EXPECT_FALSE(adversary.FaultActive(FaultStrategy::kDropFrames, 220));
  // Different strategies are independent.
  EXPECT_FALSE(adversary.FaultActive(FaultStrategy::kLinkKill, 130));
}

}  // namespace
