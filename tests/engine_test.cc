// Integration tests for the engine: every stack profile establishes a
// TLS-protected link across the simulated host and round-trips application
// messages; the dual-boundary knobs (data positioning, copy/revoke, dual-TEE
// boundary) all work; the figure-level orderings hold (observability,
// TCB, modeled cost structure); and the attack campaign classifies the
// hardened design as safe and the unhardened baseline as broken.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/cio/attack_campaign.h"
#include "src/cio/engine.h"
#include "src/cio/tcb.h"

namespace {

using ciobase::Buffer;
using ciobase::BufferFromString;
using namespace cio;  // NOLINT: test file

StackConfig Options(StackProfile profile, uint32_t node_id) {
  StackConfig config = StackConfig::DefaultsFor(profile, node_id);
  config.seed = 1000 + node_id;
  return config;
}

// Round-trips `count` messages client->server and checks echo integrity.
void RoundTrip(LinkedPair& pair, int count, size_t size) {
  ciobase::Rng rng(5);
  for (int i = 0; i < count; ++i) {
    Buffer message = rng.Bytes(size);
    ASSERT_TRUE(pair.client->SendMessage(message).ok()) << "message " << i;
    Buffer at_server;
    ASSERT_TRUE(pair.PumpUntil([&] {
      auto received = pair.server->ReceiveMessage();
      if (received.ok()) {
        at_server = *received;
        return true;
      }
      return false;
    })) << "message " << i << " never arrived";
    EXPECT_EQ(at_server, message);
    // Echo back.
    ASSERT_TRUE(pair.server->SendMessage(at_server).ok());
    Buffer at_client;
    ASSERT_TRUE(pair.PumpUntil([&] {
      auto received = pair.client->ReceiveMessage();
      if (received.ok()) {
        at_client = *received;
        return true;
      }
      return false;
    }));
    EXPECT_EQ(at_client, message);
  }
}

class ProfileTest : public ::testing::TestWithParam<StackProfile> {};

TEST_P(ProfileTest, EstablishAndRoundTrip) {
  LinkedPair pair(Options(GetParam(), 1), Options(GetParam(), 2));
  ASSERT_TRUE(pair.Establish()) << StackProfileName(GetParam());
  RoundTrip(pair, 5, 700);
}

TEST_P(ProfileTest, LargeMessages) {
  LinkedPair pair(Options(GetParam(), 1), Options(GetParam(), 2));
  ASSERT_TRUE(pair.Establish());
  RoundTrip(pair, 2, 40'000);  // spans many TCP segments and TLS records
}

TEST_P(ProfileTest, SendBeforeReadyRefused) {
  LinkedPair pair(Options(GetParam(), 1), Options(GetParam(), 2));
  EXPECT_FALSE(pair.client->SendMessage(BufferFromString("early")).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileTest,
    ::testing::Values(StackProfile::kSyscallL5, StackProfile::kPassthroughL2,
                      StackProfile::kHardenedVirtio,
                      StackProfile::kDualBoundary,
                      StackProfile::kDirectDevice,
                      StackProfile::kTunneledL2),
    [](const ::testing::TestParamInfo<StackProfile>& info) {
      std::string name(StackProfileName(info.param));
      for (auto& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// Profiles interoperate: they speak the same wire protocol.
TEST(EngineInterop, DualBoundaryTalksToSyscallPeer) {
  LinkedPair pair(Options(StackProfile::kDualBoundary, 1),
                  Options(StackProfile::kSyscallL5, 2));
  ASSERT_TRUE(pair.Establish());
  RoundTrip(pair, 3, 400);
}

// --- Dual-boundary configuration knobs ---------------------------------------

struct DualKnobs {
  DataPositioning positioning;
  ReceiveOwnership ownership;
  L5ReceiveMode l5;
  const char* name;
};

class DualBoundaryKnobTest : public ::testing::TestWithParam<DualKnobs> {};

TEST_P(DualBoundaryKnobTest, RoundTripsUnderEveryConfiguration) {
  StackConfig client = Options(StackProfile::kDualBoundary, 1);
  client.l2_positioning = GetParam().positioning;
  client.l2_rx_ownership = GetParam().ownership;
  client.l5_receive = GetParam().l5;
  StackConfig server = Options(StackProfile::kDualBoundary, 2);
  server.l2_positioning = GetParam().positioning;
  server.l2_rx_ownership = GetParam().ownership;
  server.l5_receive = GetParam().l5;
  LinkedPair pair(client, server);
  ASSERT_TRUE(pair.Establish()) << GetParam().name;
  RoundTrip(pair, 3, 900);
  if (GetParam().ownership == ReceiveOwnership::kRevoke) {
    EXPECT_GT(pair.client->costs().counter("pages_unshared"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, DualBoundaryKnobTest,
    ::testing::Values(
        DualKnobs{DataPositioning::kInline, ReceiveOwnership::kCopy,
                  L5ReceiveMode::kCopy, "inline_copy"},
        DualKnobs{DataPositioning::kSharedPool, ReceiveOwnership::kCopy,
                  L5ReceiveMode::kCopy, "pool_copy"},
        DualKnobs{DataPositioning::kIndirect, ReceiveOwnership::kCopy,
                  L5ReceiveMode::kCopy, "indirect_copy"},
        DualKnobs{DataPositioning::kSharedPool, ReceiveOwnership::kRevoke,
                  L5ReceiveMode::kCopy, "pool_revoke"},
        DualKnobs{DataPositioning::kSharedPool, ReceiveOwnership::kRevoke,
                  L5ReceiveMode::kRevoke, "pool_revoke_l5revoke"},
        DualKnobs{DataPositioning::kInline, ReceiveOwnership::kCopy,
                  L5ReceiveMode::kRevoke, "inline_l5revoke"}),
    [](const ::testing::TestParamInfo<DualKnobs>& info) {
      return info.param.name;
    });

TEST(DualBoundary, NotificationModeAlsoWorks) {
  StackConfig client = Options(StackProfile::kDualBoundary, 1);
  client.l2_polling = false;
  StackConfig server = Options(StackProfile::kDualBoundary, 2);
  server.l2_polling = false;
  LinkedPair pair(client, server);
  ASSERT_TRUE(pair.Establish());
  RoundTrip(pair, 3, 500);
  EXPECT_GT(pair.client->costs().counter("notifies"), 0u);
}

TEST(DualBoundary, DualTeeBoundaryCostsMore) {
  StackConfig compartment = Options(StackProfile::kDualBoundary, 1);
  StackConfig server = Options(StackProfile::kDualBoundary, 2);
  LinkedPair a(compartment, server);
  ASSERT_TRUE(a.Establish());
  RoundTrip(a, 5, 500);
  uint64_t compartment_ns = a.clock.now_ns();

  StackConfig dual_tee = compartment;
  dual_tee.l5_boundary = L5BoundaryKind::kDualTee;
  StackConfig server2 = server;
  server2.l5_boundary = L5BoundaryKind::kDualTee;
  LinkedPair b(dual_tee, server2);
  ASSERT_TRUE(b.Establish());
  RoundTrip(b, 5, 500);
  uint64_t dual_tee_ns = b.clock.now_ns();
  // Same work, strictly more modeled time under the heavyweight boundary.
  EXPECT_GT(b.client->costs().counter("tee_switches"), 0u);
  EXPECT_GT(dual_tee_ns, compartment_ns);
}

// --- Figure-level orderings ----------------------------------------------------

TEST(Observability, SyscallLeaksMoreThanL2Designs) {
  double bits_per_op[kStackProfileCount] = {};
  for (StackProfile profile : AllStackProfiles()) {
    LinkedPair pair(Options(profile, 1), Options(profile, 2));
    ASSERT_TRUE(pair.Establish());
    pair.client->observability().Clear();
    RoundTrip(pair, 5, 600);
    bits_per_op[static_cast<int>(profile)] =
        pair.client->observability().BitsPerOp(pair.client->app_ops());
  }
  double syscall = bits_per_op[static_cast<int>(StackProfile::kSyscallL5)];
  double dual = bits_per_op[static_cast<int>(StackProfile::kDualBoundary)];
  double passthrough =
      bits_per_op[static_cast<int>(StackProfile::kPassthroughL2)];
  EXPECT_GT(syscall, dual);        // fewer metadata bits at L2
  EXPECT_GT(syscall, passthrough);
  // The dual boundary leaks like a network observer, same class as
  // passthrough — within a small factor, not orders of magnitude.
  EXPECT_LT(dual, passthrough * 3 + 100);
}

TEST(Observability, SyscallSeesCallTypesDualDoesNot) {
  LinkedPair syscall(Options(StackProfile::kSyscallL5, 1),
                     Options(StackProfile::kSyscallL5, 2));
  ASSERT_TRUE(syscall.Establish());
  RoundTrip(syscall, 2, 100);
  EXPECT_GT(syscall.client->observability().CountOf(
                ciohost::ObsCategory::kCallType),
            0u);

  LinkedPair dual(Options(StackProfile::kDualBoundary, 1),
                  Options(StackProfile::kDualBoundary, 2));
  ASSERT_TRUE(dual.Establish());
  RoundTrip(dual, 2, 100);
  EXPECT_EQ(dual.client->observability().CountOf(
                ciohost::ObsCategory::kCallType),
            0u);
  EXPECT_EQ(dual.client->observability().CountOf(
                ciohost::ObsCategory::kMessageBoundary),
            0u);
}

TEST(Tcb, DualBoundaryAppTcbMatchesSyscallAndBeatsL2) {
  size_t syscall = ProfileTcb(StackProfile::kSyscallL5).AppTcbLines();
  size_t passthrough = ProfileTcb(StackProfile::kPassthroughL2).AppTcbLines();
  size_t dual = ProfileTcb(StackProfile::kDualBoundary).AppTcbLines();
  EXPECT_LT(dual, passthrough);
  EXPECT_LT(syscall, passthrough);
  // Dual boundary pays only the thin L5 channel over the syscall TCB.
  EXPECT_LT(dual, syscall + 500);
  // The isolated I/O domain actually holds the bulk that left the TCB.
  EXPECT_GT(ProfileTcb(StackProfile::kDualBoundary).IsolatedLines(), 2000u);
}

TEST(Tcb, ReportPrintsAllSections) {
  std::string report = ProfileTcb(StackProfile::kDualBoundary).ToString();
  EXPECT_NE(report.find("app TCB"), std::string::npos);
  EXPECT_NE(report.find("isolated"), std::string::npos);
  EXPECT_NE(report.find("net-stack"), std::string::npos);
}

TEST(TrustModels, ProfilesMapToPaperModels) {
  EXPECT_TRUE(ProfileTrustModel(StackProfile::kDualBoundary)
                  .BoundaryRequired(ciotee::Actor::kIoStack,
                                    ciotee::Actor::kApp));
  EXPECT_FALSE(ProfileTrustModel(StackProfile::kPassthroughL2)
                   .BoundaryRequired(ciotee::Actor::kIoStack,
                                     ciotee::Actor::kApp));
}

// --- Isolation: the multi-stage attack argument (§3.1) -----------------------

TEST(Isolation, CompromisedIoStackCannotReadAppMemory) {
  LinkedPair pair(Options(StackProfile::kDualBoundary, 1),
                  Options(StackProfile::kDualBoundary, 2));
  ASSERT_TRUE(pair.Establish());
  auto* compartments = pair.client->compartments();
  ASSERT_NE(compartments, nullptr);
  // The app keeps a secret in its own compartment.
  ciotee::CompartmentId app{0};
  ciotee::CompartmentId io{1};
  auto secret = compartments->Allocate(app, app, 64);
  ASSERT_TRUE(secret.ok());
  // A compromised I/O stack (arbitrary code in the io compartment) tries to
  // read it: the grant matrix says no.
  auto attempt = compartments->Access(io, *secret);
  EXPECT_FALSE(attempt.ok());
  EXPECT_GE(compartments->violations().size(), 1u);
}

// --- The tunneled (LightBox) corner of the design space ----------------------

TEST(Tunnel, PacketLengthEntropyCollapsesToZero) {
  // Variable-size messages produce variable-size frames everywhere except
  // under the padding tunnel, where the host sees ONE frame size only.
  ciobase::Rng rng(21);
  auto run = [&](StackProfile profile) {
    LinkedPair pair(Options(profile, 1), Options(profile, 2));
    EXPECT_TRUE(pair.Establish());
    pair.client->observability().Clear();
    for (int i = 0; i < 20; ++i) {
      Buffer message = rng.Bytes(rng.NextInRange(10, 900));
      EXPECT_TRUE(pair.client->SendMessage(message).ok());
      pair.PumpUntil([&] { return pair.server->ReceiveMessage().ok(); });
    }
    return pair.client->observability().PacketLengthEntropyBits();
  };
  double passthrough_entropy = run(StackProfile::kPassthroughL2);
  double tunneled_entropy = run(StackProfile::kTunneledL2);
  EXPECT_GT(passthrough_entropy, 0.5);
  EXPECT_LT(tunneled_entropy, 0.01);
}

TEST(Tunnel, PaddingOverheadIsAccounted) {
  LinkedPair pair(Options(StackProfile::kTunneledL2, 1),
                  Options(StackProfile::kTunneledL2, 2));
  ASSERT_TRUE(pair.Establish());
  RoundTrip(pair, 3, 100);  // tiny messages: nearly all padding
  ASSERT_NE(pair.client->tunnel_port(), nullptr);
  EXPECT_GT(pair.client->tunnel_port()->stats().padding_bytes, 1000u);
  EXPECT_EQ(pair.client->tunnel_port()->stats().auth_failures, 0u);
}

TEST(Tunnel, HostTamperingWithTunnelFramesIsDropped) {
  LinkedPair pair(Options(StackProfile::kTunneledL2, 1),
                  Options(StackProfile::kTunneledL2, 2));
  ASSERT_TRUE(pair.Establish());
  pair.client->adversary().set_strategy(
      ciohost::AttackStrategy::kCorruptPayload);
  // Drive several frames: a flip can land in the unauthenticated outer
  // Ethernet header (harmless routing noise), so one frame isn't enough.
  bool failures_seen = pair.PumpUntil(
      [&] {
        (void)pair.client->SendMessage(BufferFromString("mangle me"));
        (void)pair.server->ReceiveMessage();
        return pair.client->tunnel_port()->stats().auth_failures +
                   pair.server->tunnel_port()->stats().auth_failures >
               0;
      },
      5000);
  // Corrupted tunnel frames fail authentication at one end or the other.
  EXPECT_TRUE(failures_seen);
}

// --- The mandatory-TLS ablation (§3.2: "a mandatory TLS layer...") -----------

TEST(TlsMandatory, WithoutTlsTheSyscallHostSeesPlaintext) {
  StackConfig client = Options(StackProfile::kSyscallL5, 1);
  client.use_tls = false;
  StackConfig server = Options(StackProfile::kSyscallL5, 2);
  server.use_tls = false;
  LinkedPair pair(client, server);
  ASSERT_TRUE(pair.Establish());
  RoundTrip(pair, 3, 300);
  EXPECT_GT(
      pair.client->observability().CountOf(ciohost::ObsCategory::kPayload),
      0u);
}

TEST(TlsMandatory, WithTlsNoPayloadIsEverObserved) {
  for (StackProfile profile :
       {StackProfile::kSyscallL5, StackProfile::kDualBoundary}) {
    LinkedPair pair(Options(profile, 1), Options(profile, 2));
    ASSERT_TRUE(pair.Establish());
    RoundTrip(pair, 3, 300);
    EXPECT_EQ(
        pair.client->observability().CountOf(ciohost::ObsCategory::kPayload),
        0u)
        << StackProfileName(profile);
  }
}

TEST(TlsMandatory, CampaignFlagsPlaintextModeAsLeak) {
  CampaignOptions options;
  options.messages_per_cell = 4;
  options.use_tls = false;
  options.profiles = {StackProfile::kSyscallL5};
  options.strategies = {ciohost::AttackStrategy::kNone};
  auto cells = RunCampaign(options);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].outcome, AttackOutcome::kConfidentialityLeak);
}

// --- Attack campaign -----------------------------------------------------------

TEST(Campaign, DualBoundarySafeUnderEveryStrategy) {
  CampaignOptions options;
  options.messages_per_cell = 6;
  options.profiles = {StackProfile::kDualBoundary};
  for (const auto& cell : RunCampaign(options)) {
    EXPECT_NE(cell.outcome, AttackOutcome::kMemoryViolation)
        << ciohost::AttackStrategyName(cell.strategy);
    EXPECT_NE(cell.outcome, AttackOutcome::kIntegrityBreak)
        << ciohost::AttackStrategyName(cell.strategy);
    EXPECT_NE(cell.outcome, AttackOutcome::kConfidentialityLeak)
        << ciohost::AttackStrategyName(cell.strategy);
    EXPECT_EQ(cell.oob_accesses, 0u)
        << ciohost::AttackStrategyName(cell.strategy);
  }
}

TEST(Campaign, PassthroughBreaksUnderLengthInflation) {
  CampaignOptions options;
  options.messages_per_cell = 6;
  options.profiles = {StackProfile::kPassthroughL2};
  options.strategies = {ciohost::AttackStrategy::kUsedLenInflation};
  auto cells = RunCampaign(options);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].outcome, AttackOutcome::kMemoryViolation);
  EXPECT_GT(cells[0].oob_accesses, 0u);
}

TEST(Campaign, HardenedVirtioDoesNotViolateMemory) {
  CampaignOptions options;
  options.messages_per_cell = 6;
  options.profiles = {StackProfile::kHardenedVirtio};
  for (const auto& cell : RunCampaign(options)) {
    EXPECT_NE(cell.outcome, AttackOutcome::kMemoryViolation)
        << ciohost::AttackStrategyName(cell.strategy);
  }
}

TEST(Campaign, TableFormats) {
  CampaignOptions options;
  options.messages_per_cell = 3;
  options.profiles = {StackProfile::kDualBoundary};
  options.strategies = {ciohost::AttackStrategy::kCorruptPayload};
  std::string table = CampaignTable(RunCampaign(options));
  EXPECT_NE(table.find("dual-boundary"), std::string::npos);
  EXPECT_NE(table.find("corrupt-payload"), std::string::npos);
}

}  // namespace
