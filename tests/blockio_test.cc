// Tests for the §3.3 storage stack: the hardened block ring (FIFO,
// masking, clamping under attack), encryption at rest (host sees only
// ciphertext; corruption/rollback/relocation detected), the extent
// filesystem (create/write/read/delete/list, fragmentation, remount), and
// the ConfidentialStore end to end.

#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/base/rng.h"
#include "src/blockio/crypt_client.h"
#include "src/blockio/extent_fs.h"
#include "src/blockio/store.h"

namespace {

using ciobase::Buffer;
using ciobase::BufferFromString;
using namespace cioblock;  // NOLINT: test file

struct BlockWorld {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  ciotee::TeeMemory memory;
  ciohost::Adversary adversary{3};
  ciohost::ObservabilityLog observability;
  BlockRingConfig config;
  std::unique_ptr<ciotee::SharedRegion> shared;
  std::unique_ptr<HostBlockDevice> device;
  std::unique_ptr<RingBlockClient> client;

  explicit BlockWorld(uint64_t blocks = 512) {
    config.block_count = blocks;
    shared = std::make_unique<ciotee::SharedRegion>(
        &memory, config.RegionSize(), "block-ring");
    device = std::make_unique<HostBlockDevice>(shared.get(), config,
                                               &adversary, &observability,
                                               &clock);
    client = std::make_unique<RingBlockClient>(shared.get(), config,
                                               device.get(), &costs);
  }
};

TEST(BlockRing, WriteReadRoundTrip) {
  BlockWorld world;
  Buffer data = BufferFromString("block contents");
  ASSERT_TRUE(world.client->WriteBlock(7, data).ok());
  auto read = world.client->ReadBlock(7);
  ASSERT_TRUE(read.ok());
  read->resize(data.size());
  EXPECT_EQ(*read, data);
}

TEST(BlockRing, ManyBlocksFifo) {
  BlockWorld world;
  ciobase::Rng rng(1);
  std::vector<Buffer> blocks;
  for (uint64_t lba = 0; lba < 100; ++lba) {
    blocks.push_back(rng.Bytes(4096));
    ASSERT_TRUE(world.client->WriteBlock(lba, blocks.back()).ok());
  }
  for (uint64_t lba = 0; lba < 100; ++lba) {
    auto read = world.client->ReadBlock(lba);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, blocks[lba]) << "lba " << lba;
  }
}

TEST(BlockRing, RejectsBadGeometry) {
  BlockWorld world;
  Buffer data(4096, 1);
  EXPECT_FALSE(world.client->WriteBlock(99999, data).ok());  // lba OOB
  Buffer too_big(5000, 1);
  EXPECT_FALSE(world.client->WriteBlock(0, too_big).ok());
  EXPECT_TRUE(world.client->Flush().ok());
}

TEST(BlockRing, LenInflationClampedNoOob) {
  BlockWorld world;
  ASSERT_TRUE(world.client->WriteBlock(1, BufferFromString("x")).ok());
  world.adversary.set_strategy(ciohost::AttackStrategy::kUsedLenInflation);
  auto read = world.client->ReadBlock(1);
  ASSERT_TRUE(read.ok());
  EXPECT_LE(read->size(), world.config.block_size);
  EXPECT_GT(world.client->stats().clamped_completions, 0u);
  EXPECT_EQ(world.memory.ViolationCount(ciotee::ViolationKind::kOobRead), 0u);
}

TEST(BlockRing, UnknownOpcodeCompletedWithError) {
  // Satellite: an op the device does not know must be completed with a
  // status error (keeping the FIFO in lockstep), not silently dropped.
  // Craft a raw submission with op=99 the way a compromised guest driver
  // (or a fuzzer) would.
  BlockWorld world;
  BlockLayout layout(world.config);
  uint8_t header[32] = {0};
  ciobase::StoreLe32(header, 99);      // unknown op
  ciobase::StoreLe32(header + 4, 0);   // len
  ciobase::StoreLe64(header + 8, 1);   // lba
  world.shared->GuestWrite(layout.SubmitSlot(0), header);
  world.shared->GuestWriteLe64(layout.SubmitProduced(), 1);
  world.device->Kick();
  EXPECT_EQ(world.device->stats().bad_op, 1u);
  // The completion exists and carries a non-zero status.
  EXPECT_EQ(world.shared->GuestReadLe64(layout.CompleteProduced()), 1u);
  uint8_t complete[32] = {0};
  world.shared->GuestRead(layout.CompleteSlot(0), complete);
  EXPECT_NE(ciobase::LoadLe32(complete), 0u);
  // The ring stays usable for well-formed traffic afterwards: the device
  // consumed the bad submission, so the client's view (which never saw the
  // raw injection) would be off by one — use a fresh client to confirm the
  // device itself still serves ops.
  world.shared->GuestWriteLe64(layout.CompleteConsumed(), 1);
  uint8_t good[32] = {0};
  ciobase::StoreLe32(good, static_cast<uint32_t>(BlockOp::kFlush));
  world.shared->GuestWrite(layout.SubmitSlot(1), good);
  world.shared->GuestWriteLe64(layout.SubmitProduced(), 2);
  world.device->Kick();
  world.shared->GuestRead(layout.CompleteSlot(1), complete);
  EXPECT_EQ(ciobase::LoadLe32(complete), 0u);  // flush completed ok
}

TEST(BlockRing, HostObservesAccessPattern) {
  BlockWorld world;
  ASSERT_TRUE(world.client->WriteBlock(42, BufferFromString("p")).ok());
  EXPECT_GT(world.observability.CountOf(ciohost::ObsCategory::kCallArgs), 0u);
}

// --- Encryption at rest ---------------------------------------------------------

struct CryptWorld : BlockWorld {
  EncryptedBlockClient crypt{client.get(),
                             BufferFromString("disk-key-32-bytes-long-......")};
};

TEST(CryptBlock, RoundTripAndHostSeesCiphertext) {
  CryptWorld world;
  Buffer secret = BufferFromString("top secret tenant data");
  ASSERT_TRUE(world.crypt.WriteBlock(5, secret).ok());
  auto read = world.crypt.ReadBlock(5);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, secret);
  // The host's raw image must not contain the plaintext.
  ciobase::ByteSpan raw = world.device->RawBlock(5);
  ASSERT_FALSE(raw.empty());
  std::string raw_str(reinterpret_cast<const char*>(raw.data()), raw.size());
  EXPECT_EQ(raw_str.find("top secret"), std::string::npos);
}

TEST(CryptBlock, NeverWrittenReadsEmpty) {
  CryptWorld world;
  auto read = world.crypt.ReadBlock(17);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST(CryptBlock, CorruptionDetected) {
  CryptWorld world;
  ASSERT_TRUE(world.crypt.WriteBlock(5, BufferFromString("value")).ok());
  world.adversary.set_strategy(ciohost::AttackStrategy::kCorruptPayload);
  auto read = world.crypt.ReadBlock(5);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), ciobase::StatusCode::kTampered);
}

TEST(CryptBlock, RollbackDetected) {
  CryptWorld world;
  ASSERT_TRUE(world.crypt.WriteBlock(5, BufferFromString("v1")).ok());
  // Host snapshots the old version...
  Buffer old(world.device->RawBlock(5).begin(),
             world.device->RawBlock(5).end());
  ASSERT_TRUE(world.crypt.WriteBlock(5, BufferFromString("v2")).ok());
  // ...and rolls the block back by replaying it through a fresh write of
  // the raw image (simulated by writing the old bytes via the raw client).
  ASSERT_TRUE(world.client->WriteBlock(5, old).ok());
  auto read = world.crypt.ReadBlock(5);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), ciobase::StatusCode::kTampered);
}

TEST(CryptBlock, RelocationDetected) {
  CryptWorld world;
  ASSERT_TRUE(world.crypt.WriteBlock(5, BufferFromString("lba5 data")).ok());
  Buffer block5(world.device->RawBlock(5).begin(),
                world.device->RawBlock(5).end());
  // Host copies block 5's ciphertext into block 9.
  ASSERT_TRUE(world.client->WriteBlock(9, block5).ok());
  auto read = world.crypt.ReadBlock(9);
  EXPECT_FALSE(read.ok());  // AAD binds the LBA
}

TEST(CryptBlock, ErasureDetected) {
  CryptWorld world;
  ASSERT_TRUE(world.crypt.WriteBlock(5, BufferFromString("precious")).ok());
  Buffer zeros(world.config.block_size, 0);
  ASSERT_TRUE(world.client->WriteBlock(5, zeros).ok());
  auto read = world.crypt.ReadBlock(5);
  EXPECT_FALSE(read.ok());
}

TEST(CryptBlock, TinyInnerBlockGeometryRejected) {
  // Satellite fix: an inner block size at or below the AEAD overhead used
  // to underflow usable_block_size_. It must now fail cleanly at
  // construction with kInvalidArgument on every operation.
  ciobase::SimClock clock;
  ciobase::CostModel costs(&clock);
  ciotee::TeeMemory memory;
  BlockRingConfig tiny;
  tiny.block_size = 16;  // < kOverhead (28)
  tiny.block_count = 64;
  ciotee::SharedRegion shared(&memory, tiny.RegionSize(), "tiny-ring");
  HostBlockDevice device(&shared, tiny, nullptr, nullptr, &clock);
  RingBlockClient ring(&shared, tiny, &device, &costs);
  EncryptedBlockClient crypt(&ring, BufferFromString("k"), &costs);
  EXPECT_EQ(crypt.geometry_status().code(),
            ciobase::StatusCode::kInvalidArgument);
  EXPECT_EQ(crypt.block_size(), 0u);
  EXPECT_EQ(crypt.WriteBlock(0, BufferFromString("x")).code(),
            ciobase::StatusCode::kInvalidArgument);
  EXPECT_EQ(crypt.ReadBlock(0).status().code(),
            ciobase::StatusCode::kInvalidArgument);
  EXPECT_EQ(crypt.Flush().code(), ciobase::StatusCode::kInvalidArgument);
}

TEST(CryptBlock, DurableModeRequiresCounter) {
  BlockWorld world;
  CryptClientOptions options;
  options.durable_generations = true;  // but no counter supplied
  EncryptedBlockClient crypt(world.client.get(), BufferFromString("k"),
                             &world.costs, options);
  EXPECT_EQ(crypt.geometry_status().code(),
            ciobase::StatusCode::kInvalidArgument);
}

// --- Extent filesystem -----------------------------------------------------------

struct FsWorld : CryptWorld {
  ExtentFs fs{&crypt};
  FsWorld() { EXPECT_TRUE(fs.Format().ok()); }
};

TEST(ExtentFs, CreateWriteReadDelete) {
  FsWorld world;
  Buffer data = BufferFromString("hello filesystem");
  ASSERT_TRUE(world.fs.WriteFile("greeting.txt", data).ok());
  auto read = world.fs.ReadFile("greeting.txt");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  auto size = world.fs.FileSize("greeting.txt");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, data.size());
  ASSERT_TRUE(world.fs.DeleteFile("greeting.txt").ok());
  EXPECT_FALSE(world.fs.ReadFile("greeting.txt").ok());
}

TEST(ExtentFs, MultiBlockFiles) {
  FsWorld world;
  ciobase::Rng rng(9);
  Buffer big = rng.Bytes(50'000);  // spans many logical blocks
  ASSERT_TRUE(world.fs.WriteFile("big.bin", big).ok());
  auto read = world.fs.ReadFile("big.bin");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, big);
}

TEST(ExtentFs, OverwriteReusesSpace) {
  FsWorld world;
  ciobase::Rng rng(2);
  size_t before = world.fs.FreeBlocks();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(world.fs.WriteFile("rolling", rng.Bytes(20'000)).ok());
  }
  Buffer last = rng.Bytes(20'000);
  ASSERT_TRUE(world.fs.WriteFile("rolling", last).ok());
  auto read = world.fs.ReadFile("rolling");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, last);
  // Space usage is bounded by one file's worth, not ten.
  EXPECT_GT(world.fs.FreeBlocks() + 10, before - 10);
}

TEST(ExtentFs, ListsFiles) {
  FsWorld world;
  ASSERT_TRUE(world.fs.WriteFile("a", BufferFromString("1")).ok());
  ASSERT_TRUE(world.fs.WriteFile("b", BufferFromString("2")).ok());
  auto names = world.fs.ListFiles();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_NE(std::find(names.begin(), names.end(), "a"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "b"), names.end());
}

TEST(ExtentFs, RemountRecoversState) {
  FsWorld world;
  Buffer data = BufferFromString("persisted across mount");
  ASSERT_TRUE(world.fs.WriteFile("persist.txt", data).ok());
  // A fresh ExtentFs over the same device: mount, not format.
  ExtentFs remounted(&world.crypt);
  ASSERT_TRUE(remounted.Mount().ok());
  auto read = remounted.ReadFile("persist.txt");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(ExtentFs, RejectsBadNames) {
  FsWorld world;
  EXPECT_FALSE(world.fs.WriteFile("", BufferFromString("x")).ok());
  std::string long_name(64, 'n');
  EXPECT_FALSE(world.fs.WriteFile(long_name, BufferFromString("x")).ok());
}

TEST(ExtentFs, OutOfSpaceFailsCleanly) {
  FsWorld world;
  ciobase::Rng rng(3);
  // The 512-block device holds ~2 MB; ask for far more.
  auto status = world.fs.WriteFile("huge", rng.Bytes(4'000'000));
  EXPECT_FALSE(status.ok());
  // Existing operation still works afterwards.
  EXPECT_TRUE(world.fs.WriteFile("ok", BufferFromString("fine")).ok());
}

// --- ConfidentialStore -------------------------------------------------------------

struct StoreWorld {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  ciotee::TeeMemory memory;
  ciotee::CompartmentManager compartments{&costs};
  ciotee::CompartmentId app = compartments.Create("app", 1 << 20);
  ciotee::CompartmentId storage = compartments.Create("storage", 1 << 20);
  ciohost::Adversary adversary{4};
  ciohost::ObservabilityLog observability;
  std::unique_ptr<ConfidentialStore> store;

  StoreWorld() {
    ConfidentialStore::Options options;
    options.ring.block_count = 512;
    options.disk_key = BufferFromString("disk-key-aaaaaaaaaaaaaaaaaaaaaaa");
    options.value_key = BufferFromString("value-key-bbbbbbbbbbbbbbbbbbbbbb");
    store = std::make_unique<ConfidentialStore>(
        &memory, &compartments, app, storage, &costs, &adversary,
        &observability, &clock, options);
    EXPECT_TRUE(store->Format().ok());
  }
};

TEST(ConfidentialStore, PutGetDeleteList) {
  StoreWorld world;
  Buffer value = BufferFromString("tenant secret record");
  ASSERT_TRUE(world.store->Put("record-1", value).ok());
  auto read = world.store->Get("record-1");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, value);
  EXPECT_EQ(world.store->List().size(), 1u);
  ASSERT_TRUE(world.store->Delete("record-1").ok());
  EXPECT_FALSE(world.store->Get("record-1").ok());
}

TEST(ConfidentialStore, CompromisedFsSeesOnlyCiphertext) {
  StoreWorld world;
  ASSERT_TRUE(
      world.store->Put("key", BufferFromString("plaintext-value-xyz")).ok());
  // A compromised FS can read the stored file bytes directly...
  world.compartments.SwitchTo(world.storage);
  auto stored = world.store->fs()->ReadFile("key");
  world.compartments.SwitchTo(world.app);
  ASSERT_TRUE(stored.ok());
  std::string raw(reinterpret_cast<const char*>(stored->data()),
                  stored->size());
  // ...but they are sealed by the app.
  EXPECT_EQ(raw.find("plaintext-value"), std::string::npos);
}

TEST(ConfidentialStore, FsTamperingDetectedAtApp) {
  StoreWorld world;
  ASSERT_TRUE(world.store->Put("key", BufferFromString("v")).ok());
  // The compromised FS swaps in different bytes.
  world.compartments.SwitchTo(world.storage);
  ASSERT_TRUE(
      world.store->fs()->WriteFile("key", BufferFromString("forged")).ok());
  world.compartments.SwitchTo(world.app);
  auto read = world.store->Get("key");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), ciobase::StatusCode::kTampered);
}

TEST(ConfidentialStore, HostImageLeaksNeitherNamesNorValues) {
  // Encryption-at-rest sits BELOW the filesystem, so even object names
  // (inode table contents) are ciphertext to the host.
  StoreWorld world;
  ASSERT_TRUE(world.store
                  ->Put("visible-object-name",
                        BufferFromString("visible-object-value"))
                  .ok());
  bool name_found = false;
  bool value_found = false;
  for (uint64_t lba = 0; lba < 512; ++lba) {
    ciobase::ByteSpan raw = world.store->host_device()->RawBlock(lba);
    std::string bytes(reinterpret_cast<const char*>(raw.data()), raw.size());
    if (bytes.find("visible-object-name") != std::string::npos) {
      name_found = true;
    }
    if (bytes.find("visible-object-value") != std::string::npos) {
      value_found = true;
    }
  }
  EXPECT_FALSE(name_found);
  EXPECT_FALSE(value_found);
}

TEST(ConfidentialStore, ManyObjects) {
  StoreWorld world;
  ciobase::Rng rng(11);
  std::map<std::string, Buffer> objects;
  for (int i = 0; i < 20; ++i) {
    std::string name = "object-" + std::to_string(i);
    objects[name] = rng.Bytes(rng.NextInRange(10, 5000));
    ASSERT_TRUE(world.store->Put(name, objects[name]).ok()) << name;
  }
  for (const auto& [name, value] : objects) {
    auto read = world.store->Get(name);
    ASSERT_TRUE(read.ok()) << name;
    EXPECT_EQ(*read, value) << name;
  }
  EXPECT_EQ(world.store->List().size(), 20u);
}

}  // namespace
