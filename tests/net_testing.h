// Shared helpers for network tests: a two-host world over a Fabric with
// DirectFabricPorts, and a pump loop that advances simulated time.

#ifndef TESTS_NET_TESTING_H_
#define TESTS_NET_TESTING_H_

#include <functional>
#include <memory>

#include "src/base/clock.h"
#include "src/net/fabric.h"
#include "src/net/stack.h"

namespace ciotest {

struct TwoHostWorld {
  ciobase::SimClock clock;
  std::unique_ptr<cionet::Fabric> fabric;
  std::unique_ptr<cionet::DirectFabricPort> port_a;
  std::unique_ptr<cionet::DirectFabricPort> port_b;
  std::unique_ptr<cionet::NetStack> stack_a;
  std::unique_ptr<cionet::NetStack> stack_b;

  // `accept_backlog_b` caps host B's per-listener pending-connection queue
  // (the backlog-overflow tests shrink it).
  explicit TwoHostWorld(cionet::Fabric::Options options = {},
                        size_t accept_backlog_b = 64) {
    fabric = std::make_unique<cionet::Fabric>(&clock, 42, options);
    auto mac_a = cionet::MacAddress::FromId(1);
    auto mac_b = cionet::MacAddress::FromId(2);
    port_a = std::make_unique<cionet::DirectFabricPort>(fabric.get(), "a",
                                                        mac_a);
    port_b = std::make_unique<cionet::DirectFabricPort>(fabric.get(), "b",
                                                        mac_b);
    cionet::NetStack::Config config_a;
    config_a.ip = cionet::Ipv4Address::FromOctets(10, 0, 0, 1);
    config_a.seed = 101;
    cionet::NetStack::Config config_b;
    config_b.ip = cionet::Ipv4Address::FromOctets(10, 0, 0, 2);
    config_b.seed = 202;
    config_b.tcp_accept_backlog = accept_backlog_b;
    stack_a = std::make_unique<cionet::NetStack>(port_a.get(), &clock,
                                                 config_a);
    stack_b = std::make_unique<cionet::NetStack>(port_b.get(), &clock,
                                                 config_b);
  }

  // Polls both stacks, advancing simulated time by `step_ns` per round,
  // until `done` returns true or `max_rounds` elapse. Returns true if the
  // predicate fired.
  bool PumpUntil(const std::function<bool()>& done, int max_rounds = 20000,
                 uint64_t step_ns = 10'000) {
    for (int i = 0; i < max_rounds; ++i) {
      stack_a->Poll();
      stack_b->Poll();
      if (done()) {
        return true;
      }
      clock.Advance(step_ns);
    }
    return false;
  }

  void Pump(int rounds = 100, uint64_t step_ns = 10'000) {
    PumpUntil([] { return false; }, rounds, step_ns);
  }
};

}  // namespace ciotest

#endif  // TESTS_NET_TESTING_H_
