// Unit tests for the in-sim cycle-accounting profiler (src/prof):
// dotted-path nesting and reentrancy, deterministic byte-identical JSON,
// the overhead contract of a disabled registry (zero clock advance, zero
// allocation), innermost-scope counter attribution, histogram percentile
// edges, and the CostModel enum/string counter slot parity.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>

#include "src/base/clock.h"
#include "src/prof/profiler.h"

// Global allocation counter for the zero-allocation overhead contract.
// Counts every operator new in the process; tests snapshot it around the
// probe hot path.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }

namespace {

using ciobase::CostCounter;
using ciobase::CostModel;
using ciobase::SimClock;
using cioprof::ProbeRow;
using cioprof::ProfRegistry;

const ProbeRow* FindRow(const std::vector<ProbeRow>& rows,
                        std::string_view path) {
  for (const ProbeRow& row : rows) {
    if (row.path == path) {
      return &row;
    }
  }
  return nullptr;
}

TEST(Profiler, NestsIntoDottedPaths) {
  SimClock clock;
  ProfRegistry registry;
  registry.Bind(&clock, nullptr);

  for (int i = 0; i < 3; ++i) {
    CIO_PROF_SCOPE(&registry, "engine.poll");
    clock.Advance(100);
    {
      CIO_PROF_SCOPE(&registry, "tls.seal");
      clock.Advance(40);
    }
    {
      CIO_PROF_SCOPE(&registry, "tls.seal");  // reentry: same probe
      clock.Advance(10);
    }
  }
  // The same leaf under a different parent is a distinct probe.
  {
    CIO_PROF_SCOPE(&registry, "engine.send");
    CIO_PROF_SCOPE(&registry, "tls.seal");
    clock.Advance(7);
  }

  auto rows = registry.Rows();
  ASSERT_EQ(rows.size(), 4u);
  const ProbeRow* poll = FindRow(rows, "engine.poll");
  const ProbeRow* seal = FindRow(rows, "engine.poll/tls.seal");
  const ProbeRow* send_seal = FindRow(rows, "engine.send/tls.seal");
  ASSERT_NE(poll, nullptr);
  ASSERT_NE(seal, nullptr);
  ASSERT_NE(send_seal, nullptr);
  EXPECT_EQ(poll->count, 3u);
  EXPECT_EQ(poll->total_ns, 450u);       // 3 * (100 + 40 + 10)
  EXPECT_EQ(poll->self_ns, 300u);        // children claim 50 per round
  EXPECT_EQ(poll->depth, 0u);
  EXPECT_EQ(seal->count, 6u);            // two activations per round
  EXPECT_EQ(seal->total_ns, 150u);
  EXPECT_EQ(seal->self_ns, 150u);        // leaf: inclusive == exclusive
  EXPECT_EQ(seal->depth, 1u);
  EXPECT_EQ(send_seal->count, 1u);
  EXPECT_EQ(send_seal->total_ns, 7u);
  EXPECT_EQ(registry.total_ns(), 457u);  // both roots
}

TEST(Profiler, TwoIdenticalRunsProduceIdenticalJson) {
  auto run = [] {
    SimClock clock;
    CostModel costs(&clock);
    ProfRegistry registry;
    registry.Bind(&clock, &costs);
    for (int i = 0; i < 50; ++i) {
      CIO_PROF_SCOPE(&registry, "engine.send");
      costs.ChargeHostExit();
      {
        CIO_PROF_SCOPE(&registry, "session.seal");
        costs.ChargeCopy(1000 + static_cast<size_t>(i));
      }
      if (i % 3 == 0) {
        CIO_PROF_SCOPE(&registry, "l5.doorbell");
        costs.ChargeNotify();
      }
    }
    std::string out = "[";
    bool first = true;
    registry.AppendJsonRows(&out, "dual-boundary", "test-arm", &first);
    out += "\n]\n";
    return out;
  };
  std::string first_run = run();
  std::string second_run = run();
  EXPECT_FALSE(first_run.empty());
  EXPECT_EQ(first_run, second_run);  // bit-identical, not merely equivalent
}

TEST(Profiler, DisabledRegistryIsFree) {
  SimClock clock;
  CostModel costs(&clock);

  // Null registry (the compiled-in-but-unconfigured shape).
  uint64_t clock_before = clock.now_ns();
  uint64_t allocs_before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    CIO_PROF_SCOPE(nullptr, "engine.poll");
    CIO_PROF_SCOPE(static_cast<ProfRegistry*>(nullptr), "tls.seal");
  }
  EXPECT_EQ(clock.now_ns(), clock_before);
  EXPECT_EQ(g_allocations.load(), allocs_before);

  // Bound but flag-disabled registry: probes must also be free, and must
  // record nothing.
  ProfRegistry registry;
  registry.Bind(&clock, &costs);
  registry.set_enabled(false);
  clock_before = clock.now_ns();
  allocs_before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    CIO_PROF_SCOPE(&registry, "engine.poll");
  }
  EXPECT_EQ(clock.now_ns(), clock_before);       // exactly 0 ns advanced
  EXPECT_EQ(g_allocations.load(), allocs_before);  // zero allocation
  EXPECT_EQ(registry.probe_count(), 0u);
  EXPECT_EQ(registry.total_ns(), 0u);

  // Unbound registry: enabled() stays false without a clock.
  ProfRegistry unbound;
  EXPECT_FALSE(unbound.enabled());

  // And the enabled steady state (paths already interned) allocates
  // nothing on the hot path either.
  registry.set_enabled(true);
  {
    CIO_PROF_SCOPE(&registry, "engine.poll");  // interns once
  }
  allocs_before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    CIO_PROF_SCOPE(&registry, "engine.poll");
  }
  EXPECT_EQ(g_allocations.load(), allocs_before);
}

TEST(Profiler, CountersAttributeToInnermostOpenScope) {
  SimClock clock;
  CostModel costs(&clock);
  ProfRegistry registry;
  registry.Bind(&clock, &costs);

  costs.ChargeHostExit();  // before any scope: discarded, not attributed
  {
    CIO_PROF_SCOPE(&registry, "outer");
    costs.ChargeHostExit();          // outer
    costs.ChargeCopy(100);           // outer
    {
      CIO_PROF_SCOPE(&registry, "inner");
      costs.ChargeHostExit();        // inner
      costs.ChargeNotify();          // inner
    }
    costs.ChargeHostExit();          // back in outer after the child closed
  }
  costs.ChargeNotify();  // after all scopes closed: discarded

  auto rows = registry.Rows();
  const ProbeRow* outer = FindRow(rows, "outer");
  const ProbeRow* inner = FindRow(rows, "outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->counters[static_cast<size_t>(CostCounter::kHostExits)], 2u);
  EXPECT_EQ(outer->counters[static_cast<size_t>(CostCounter::kCopies)], 1u);
  EXPECT_EQ(outer->counters[static_cast<size_t>(CostCounter::kBytesCopied)],
            100u);
  EXPECT_EQ(outer->counters[static_cast<size_t>(CostCounter::kNotifies)], 0u);
  EXPECT_EQ(inner->counters[static_cast<size_t>(CostCounter::kHostExits)], 1u);
  EXPECT_EQ(inner->counters[static_cast<size_t>(CostCounter::kNotifies)], 1u);
  EXPECT_EQ(inner->counters[static_cast<size_t>(CostCounter::kCopies)], 0u);
  // Counter deltas are exclusive: outer does NOT absorb inner's charges.
  // The modeled time, by contrast, is inclusive in total_ns.
  EXPECT_EQ(outer->total_ns,
            outer->self_ns + inner->total_ns);
}

TEST(Profiler, HistogramPercentileEdges) {
  SimClock clock;
  ProfRegistry registry;
  registry.Bind(&clock, nullptr);

  // 99 activations of 100 ns and one of 100000 ns: p50/p95 sit in the
  // 100 ns bucket, p99 crosses into the outlier's bucket at rank 100.
  for (int i = 0; i < 99; ++i) {
    CIO_PROF_SCOPE(&registry, "stage");
    clock.Advance(100);
  }
  {
    CIO_PROF_SCOPE(&registry, "stage");
    clock.Advance(100000);
  }
  auto rows = registry.Rows();
  const ProbeRow* stage = FindRow(rows, "stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->count, 100u);
  EXPECT_EQ(stage->p50_ns, 100u);
  EXPECT_EQ(stage->p95_ns, 100u);
  EXPECT_EQ(stage->p99_ns, 100u);  // rank 99 of 100 still in the low bucket

  // One more outlier pushes p99 (rank ceil(101*0.99)=100) into the
  // outlier bucket, whose bucket-mean represents both samples.
  {
    CIO_PROF_SCOPE(&registry, "stage");
    clock.Advance(100000);
  }
  rows = registry.Rows();
  stage = FindRow(rows, "stage");
  EXPECT_EQ(stage->p50_ns, 100u);
  EXPECT_EQ(stage->p99_ns, 100000u);

  // Zero-duration activations land in bucket 0 and report 0.
  SimClock clock2;
  ProfRegistry registry2;
  registry2.Bind(&clock2, nullptr);
  for (int i = 0; i < 10; ++i) {
    CIO_PROF_SCOPE(&registry2, "noop");
  }
  rows = registry2.Rows();
  const ProbeRow* noop = FindRow(rows, "noop");
  ASSERT_NE(noop, nullptr);
  EXPECT_EQ(noop->p50_ns, 0u);
  EXPECT_EQ(noop->p99_ns, 0u);
}

TEST(Profiler, FlameSummaryAndUnattributedShare) {
  SimClock clock;
  ProfRegistry registry;
  registry.Bind(&clock, nullptr);
  {
    CIO_PROF_SCOPE(&registry, "root");
    clock.Advance(60);  // root self
    {
      CIO_PROF_SCOPE(&registry, "child");
      clock.Advance(40);
    }
  }
  EXPECT_EQ(registry.total_ns(), 100u);
  EXPECT_DOUBLE_EQ(registry.unattributed_pct(), 60.0);
  std::string flame = registry.ToFlameSummary();
  EXPECT_NE(flame.find("root"), std::string::npos);
  EXPECT_NE(flame.find("child"), std::string::npos);
  EXPECT_NE(flame.find("unattributed 60.0%"), std::string::npos);
}

TEST(Profiler, DepthOverflowDropsNotCrashes) {
  SimClock clock;
  ProfRegistry registry;
  registry.Bind(&clock, nullptr);
  // Recursion past kMaxDepth: the excess activations are dropped and
  // counted; the stack unwinds cleanly.
  std::function<void(size_t)> recurse = [&](size_t n) {
    if (n == 0) {
      return;
    }
    CIO_PROF_SCOPE(&registry, "recurse");
    clock.Advance(1);
    recurse(n - 1);
  };
  recurse(ProfRegistry::kMaxDepth + 10);
  EXPECT_EQ(registry.dropped_scopes(), 10u);
  EXPECT_EQ(registry.probe_count(), ProfRegistry::kMaxDepth);
}

TEST(Profiler, ResetClearsSamplesKeepsBinding) {
  SimClock clock;
  CostModel costs(&clock);
  ProfRegistry registry;
  registry.Bind(&clock, &costs);
  {
    CIO_PROF_SCOPE(&registry, "stage");
    costs.ChargeHostExit();
  }
  EXPECT_EQ(registry.probe_count(), 1u);
  registry.Reset();
  EXPECT_EQ(registry.probe_count(), 0u);
  EXPECT_TRUE(registry.enabled());
  // Charges from before the Reset must not leak into the first scope after
  // it: Reset re-snapshots the counter slots.
  costs.ChargeNotify();  // outside any scope, after Reset snapshot...
  {
    CIO_PROF_SCOPE(&registry, "stage");
  }
  auto rows = registry.Rows();
  const ProbeRow* stage = FindRow(rows, "stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->counters[static_cast<size_t>(CostCounter::kNotifies)], 0u);
}

TEST(CostModel, EnumAndStringCounterParity) {
  SimClock clock;
  CostModel costs(&clock);
  costs.ChargeHostExit();
  costs.ChargeHostExit();
  costs.ChargeNotify();
  costs.ChargeCopy(512);
  costs.ChargeAead(2048);
  costs.ChargePageUnshare(3);

  EXPECT_EQ(costs.counter(CostCounter::kHostExits), 2u);
  EXPECT_EQ(costs.counter("host_exits"), 2u);
  EXPECT_EQ(costs.counter(CostCounter::kNotifies), 1u);
  EXPECT_EQ(costs.counter("notifies"), 1u);
  EXPECT_EQ(costs.counter("copies"), 1u);
  EXPECT_EQ(costs.counter("bytes_copied"), 512u);
  EXPECT_EQ(costs.counter("aead_ops"), 1u);
  EXPECT_EQ(costs.counter("bytes_aead"), 2048u);
  EXPECT_EQ(costs.counter("pages_unshared"), 3u);
  EXPECT_EQ(costs.counter("no_such_counter"), 0u);

  // Every slot has a distinct, stable display name.
  for (size_t i = 0; i < ciobase::kCostCounterCount; ++i) {
    std::string_view name =
        ciobase::CostCounterName(static_cast<CostCounter>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(costs.counter(name),
              costs.counter(static_cast<CostCounter>(i)));
  }

  costs.ResetCounters();
  EXPECT_EQ(costs.counter(CostCounter::kHostExits), 0u);
  EXPECT_EQ(costs.counter("bytes_copied"), 0u);
}

}  // namespace
