// middlebox: a ShieldBox/SafeBricks-style confidential packet processor
// built directly on the hardened L2 transport — no TCP/IP stack in the
// TEE at all, showing the boundary can be consumed at raw-frame level.
//
// Topology: two Ethernet segments bridged by a confidential middlebox.
//
//   [sender] --fabric A--> [MB: hardened L2 in, filter, hardened L2 out]
//            --fabric B--> [receiver]
//
// The middlebox enforces a simple policy (drop frames whose payload
// contains a banned marker, count the rest through) while a hostile host
// on segment A runs length-inflation attacks against its RX ring — the
// masked/clamped transport keeps the middlebox memory-safe throughout.

#include <cstdio>
#include <cstring>
#include <memory>

#include "src/base/rng.h"
#include "src/cio/l2_host_device.h"
#include "src/cio/l2_transport.h"
#include "src/net/fabric.h"
#include "src/net/wire.h"

namespace {

using cio::L2Config;
using cio::L2HostDevice;
using cio::L2Layout;
using cio::L2Transport;

struct L2Endpoint {
  ciotee::TeeMemory memory;
  ciohost::Adversary adversary;
  ciohost::ObservabilityLog observability;
  std::unique_ptr<ciotee::SharedRegion> shared;
  std::unique_ptr<L2HostDevice> device;
  std::unique_ptr<L2Transport> transport;

  L2Endpoint(cionet::Fabric* fabric, ciobase::SimClock* clock,
             ciobase::CostModel* costs, uint32_t id, uint64_t seed)
      : adversary(seed) {
    L2Config config;
    config.mac = cionet::MacAddress::FromId(id);
    L2Layout layout(config);
    shared = std::make_unique<ciotee::SharedRegion>(&memory, layout.total,
                                                    "mb-l2");
    device = std::make_unique<L2HostDevice>(shared.get(), config, fabric,
                                            "ep-" + std::to_string(id),
                                            &adversary, &observability, clock);
    transport = std::make_unique<L2Transport>(shared.get(), config, costs,
                                              nullptr);
  }
};

bool ContainsMarker(ciobase::ByteSpan frame, std::string_view marker) {
  if (frame.size() < marker.size()) {
    return false;
  }
  for (size_t i = 0; i + marker.size() <= frame.size(); ++i) {
    if (std::memcmp(frame.data() + i, marker.data(), marker.size()) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main() {
  ciobase::SimClock clock;
  ciobase::CostModel costs(&clock);
  cionet::Fabric segment_a(&clock, 1);
  cionet::Fabric segment_b(&clock, 2);

  // Sender on segment A, receiver on segment B, middlebox on both.
  cionet::DirectFabricPort sender(&segment_a, "sender",
                                  cionet::MacAddress::FromId(10));
  L2Endpoint mb_in(&segment_a, &clock, &costs, 20, 5);
  L2Endpoint mb_out(&segment_b, &clock, &costs, 30, 6);
  cionet::DirectFabricPort receiver(&segment_b, "receiver",
                                    cionet::MacAddress::FromId(40));

  ciobase::Rng rng(9);
  int sent = 0;
  int dropped = 0;
  int forwarded = 0;
  for (int i = 0; i < 200; ++i) {
    if (i == 100) {
      // Halfway through, the host on segment A turns hostile: it inflates
      // RX lengths on the middlebox's ring. Frames from then on arrive
      // length-mangled (service degraded), but the masked transport keeps
      // the middlebox memory-safe and the policy engine keeps running.
      mb_in.adversary.set_strategy(
          ciohost::AttackStrategy::kUsedLenInflation);
    }
    // Sender emits frames to the middlebox's segment-A MAC.
    ciobase::Buffer frame;
    cionet::EthernetHeader eth{cionet::MacAddress::FromId(20),
                               sender.mac(), 0x88b5};
    eth.Serialize(frame);
    bool banned = rng.NextBool(0.25);
    ciobase::AppendString(frame, banned ? "payload EXFIL marker"
                                        : "payload benign traffic");
    ciobase::Buffer padding = rng.Bytes(rng.NextBounded(200));
    ciobase::Append(frame, padding);
    if (!cionet::SendOne(sender, frame).ok()) {
      continue;
    }
    ++sent;
    clock.Advance(30'000);
    mb_in.device->Poll();

    // Middlebox: drain, filter, re-emit toward the receiver.
    for (;;) {
      auto received = cionet::ReceiveOne(*mb_in.transport);
      if (!received.ok()) {
        break;
      }
      if (ContainsMarker(*received, "EXFIL")) {
        ++dropped;
        continue;
      }
      // Rewrite the Ethernet header for segment B.
      ciobase::Buffer out;
      cionet::EthernetHeader out_eth{cionet::MacAddress::FromId(40),
                                     cionet::MacAddress::FromId(30), 0x88b5};
      out_eth.Serialize(out);
      ciobase::Append(out, ciobase::ByteSpan(*received).subspan(
                               cionet::kEthernetHeaderSize));
      if (out.size() <= 1514 && cionet::SendOne(*mb_out.transport, out).ok()) {
        ++forwarded;
      }
      mb_out.device->Poll();
    }
    clock.Advance(30'000);
  }
  // Drain receiver.
  int delivered = 0;
  for (;;) {
    auto frame = cionet::ReceiveOne(receiver);
    if (!frame.ok()) {
      break;
    }
    ++delivered;
  }

  std::printf("middlebox: sent=%d filtered=%d forwarded=%d delivered=%d\n",
              sent, dropped, forwarded, delivered);
  std::printf("middlebox: host ran %llu length-inflation attacks; "
              "out-of-bounds accesses by the middlebox: %zu\n",
              static_cast<unsigned long long>(
                  mb_in.adversary.behavior_count()),
              mb_in.memory.ViolationCount(ciotee::ViolationKind::kOobRead) +
                  mb_in.memory.ViolationCount(
                      ciotee::ViolationKind::kOobWrite));
  std::printf("middlebox: frames clamped by the hardened transport: %llu\n",
              static_cast<unsigned long long>(
                  mb_in.transport->stats().rx_clamped_len));
  return 0;
}
