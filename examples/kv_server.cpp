// kv_server: a confidential key-value service — the kind of tenant workload
// the paper's introduction motivates (tenant data processed in a TEE, host
// untrusted). The server runs the dual-boundary stack; a client drives a
// mixed GET/PUT workload over the TLS-protected link. Wire protocol:
//
//   request  = 'P' keylen:u8 key value        | 'G' keylen:u8 key
//   response = '+' value                      | '-'
//
// The example also plays one attack: mid-workload the host flips to
// payload corruption; the run demonstrates that operations keep failing
// *closed* (TLS kills the link) instead of serving corrupted records.

#include <cstdio>
#include <map>

#include "src/base/rng.h"
#include "src/cio/engine.h"

namespace {

using cio::LinkedPair;
using cio::StackConfig;
using cio::StackProfile;

ciobase::Buffer PutRequest(const std::string& key, const std::string& value) {
  ciobase::Buffer out;
  out.push_back('P');
  out.push_back(static_cast<uint8_t>(key.size()));
  ciobase::AppendString(out, key);
  ciobase::AppendString(out, value);
  return out;
}

ciobase::Buffer GetRequest(const std::string& key) {
  ciobase::Buffer out;
  out.push_back('G');
  out.push_back(static_cast<uint8_t>(key.size()));
  ciobase::AppendString(out, key);
  return out;
}

// Parses one request against the store; returns the response.
ciobase::Buffer Serve(std::map<std::string, std::string>& store,
                      ciobase::ByteSpan request) {
  ciobase::Buffer response;
  if (request.size() < 2) {
    response.push_back('-');
    return response;
  }
  uint8_t key_len = request[1];
  if (request.size() < 2u + key_len) {
    response.push_back('-');
    return response;
  }
  std::string key(reinterpret_cast<const char*>(request.data() + 2), key_len);
  if (request[0] == 'P') {
    store[key] = std::string(
        reinterpret_cast<const char*>(request.data() + 2 + key_len),
        request.size() - 2 - key_len);
    response.push_back('+');
  } else if (request[0] == 'G') {
    auto it = store.find(key);
    if (it == store.end()) {
      response.push_back('-');
    } else {
      response.push_back('+');
      ciobase::AppendString(response, it->second);
    }
  } else {
    response.push_back('-');
  }
  return response;
}

}  // namespace

int main() {
  StackConfig client_options =
      StackConfig::DefaultsFor(StackProfile::kDualBoundary, 1);
  client_options.seed = 11;
  StackConfig server_options = client_options;
  server_options.node_id = 2;

  LinkedPair pair(client_options, server_options);
  if (!pair.Establish(6379)) {
    std::printf("kv: link failed\n");
    return 1;
  }
  std::printf("kv: confidential link established (dual-boundary, TLS)\n");

  std::map<std::string, std::string> store;
  ciobase::Rng rng(77);
  int puts = 0;
  int gets = 0;
  int hits = 0;

  auto transact = [&](const ciobase::Buffer& request) -> ciobase::Buffer {
    pair.client->SendMessage(request);
    ciobase::Buffer response;
    pair.PumpUntil(
        [&] {
          // Server side: answer any pending request.
          auto incoming = pair.server->ReceiveMessage();
          if (incoming.ok()) {
            pair.server->SendMessage(Serve(store, *incoming));
          }
          auto reply = pair.client->ReceiveMessage();
          if (reply.ok()) {
            response = *reply;
            return true;
          }
          return pair.client->Failed() || pair.server->Failed();
        },
        20000);
    return response;
  };

  for (int i = 0; i < 60; ++i) {
    std::string key = "user:" + std::to_string(rng.NextBounded(20));
    if (rng.NextBool(0.4)) {
      std::string value = "profile-" + std::to_string(i);
      ciobase::Buffer response = transact(PutRequest(key, value));
      if (!response.empty() && response[0] == '+') {
        ++puts;
      }
    } else {
      ciobase::Buffer response = transact(GetRequest(key));
      ++gets;
      if (!response.empty() && response[0] == '+') {
        ++hits;
      }
    }
  }
  std::printf("kv: workload done: %d puts, %d gets (%d hits)\n", puts, gets,
              hits);
  std::printf("kv: host saw %zu packet-length events and %zu call types\n",
              pair.client->observability().CountOf(
                  ciohost::ObsCategory::kPacketLength),
              pair.client->observability().CountOf(
                  ciohost::ObsCategory::kCallType));

  // The host turns hostile: corrupt packets on the victim's NIC.
  std::printf("kv: host starts corrupting packets...\n");
  pair.client->adversary().set_strategy(
      ciohost::AttackStrategy::kCorruptPayload);
  ciobase::Buffer response = transact(GetRequest("user:1"));
  if (pair.client->Failed() || response.empty()) {
    std::printf("kv: request failed CLOSED (TLS refused corrupted data); "
                "no forged record was served\n");
  } else {
    std::printf("kv: request unexpectedly succeeded\n");
  }
  return 0;
}
