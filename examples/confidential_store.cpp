// confidential_store: the §3.3 storage generalization in action — a
// dual-boundary object store where the filesystem runs in its own
// compartment, values are sealed by the app before they cross the file-ops
// boundary, and blocks are encrypted again before they cross the block-ring
// boundary to the host. The demo stores tenant records, survives a
// remount, shows the host's view is ciphertext, and demonstrates that a
// tampering filesystem/host is detected rather than believed.

#include <cstdio>

#include "src/base/rng.h"
#include "src/blockio/store.h"

int main() {
  ciobase::SimClock clock;
  ciobase::CostModel costs(&clock);
  ciotee::TeeMemory memory;
  ciotee::CompartmentManager compartments(&costs);
  ciotee::CompartmentId app = compartments.Create("app", 1 << 20);
  ciotee::CompartmentId storage = compartments.Create("storage", 1 << 20);
  ciohost::Adversary adversary(21);
  ciohost::ObservabilityLog observability;

  cioblock::ConfidentialStore::Options options;
  options.ring.block_count = 1024;
  options.disk_key = ciobase::BufferFromString("disk-key-................");
  options.value_key = ciobase::BufferFromString("value-key-...............");
  cioblock::ConfidentialStore store(&memory, &compartments, app, storage,
                                    &costs, &adversary, &observability,
                                    &clock, options);
  if (!store.Format().ok()) {
    std::printf("store: format failed\n");
    return 1;
  }

  // Store tenant records.
  ciobase::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    std::string name = "patient-" + std::to_string(1000 + i);
    std::string record = "diagnosis: confidential; visit " +
                         std::to_string(i);
    if (!store.Put(name, ciobase::BufferFromString(record)).ok()) {
      std::printf("store: put %s failed\n", name.c_str());
      return 1;
    }
  }
  std::printf("store: stored %zu objects\n", store.List().size());

  auto record = store.Get("patient-1003");
  if (record.ok()) {
    std::printf("store: read back: %s\n",
                ciobase::StringFromBytes(*record).c_str());
  }

  // What does the HOST hold? Scan its raw image for plaintext.
  bool plaintext_found = false;
  for (uint64_t lba = 0; lba < options.ring.block_count; ++lba) {
    ciobase::ByteSpan raw = store.host_device()->RawBlock(lba);
    std::string bytes(reinterpret_cast<const char*>(raw.data()), raw.size());
    if (bytes.find("diagnosis") != std::string::npos) {
      plaintext_found = true;
    }
  }
  std::printf("store: host image contains plaintext: %s\n",
              plaintext_found ? "YES (bug!)" : "no — ciphertext only");
  std::printf("store: host observed %zu LBA access events (the residual "
              "storage side channel the paper notes [3])\n",
              observability.CountOf(ciohost::ObsCategory::kCallArgs));

  // Host corruption is detected, not believed.
  adversary.set_strategy(ciohost::AttackStrategy::kCorruptPayload);
  auto tampered = store.Get("patient-1001");
  std::printf("store: read under host corruption: %s\n",
              tampered.ok() ? "unexpectedly succeeded"
                            : tampered.status().ToString().c_str());
  adversary.set_strategy(ciohost::AttackStrategy::kNone);

  // The boundary cost profile of this workload.
  std::printf("store: compartment switches=%llu, bytes copied=%llu, "
              "AEAD bytes=%llu\n",
              static_cast<unsigned long long>(
                  costs.counter("compartment_switches")),
              static_cast<unsigned long long>(costs.counter("bytes_copied")),
              static_cast<unsigned long long>(costs.counter("bytes_aead")));
  return 0;
}
