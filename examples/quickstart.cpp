// Quickstart: two confidential nodes exchange a message over the paper's
// dual-boundary stack, then the example prints what the design bought —
// what the host saw, what it cost, and how the same exchange compares on
// the syscall-level baseline.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>

#include "src/base/bytes.h"
#include "src/cio/engine.h"
#include "src/cio/tcb.h"

namespace {

using cio::ConfidentialNode;
using cio::LinkedPair;
using cio::StackConfig;
using cio::StackProfile;

StackConfig Node(StackProfile profile, uint32_t id) {
  StackConfig config = StackConfig::DefaultsFor(profile, id);
  config.seed = 100 + id;
  return config;
}

void RunExchange(StackProfile profile) {
  std::printf("=== profile: %s ===\n",
              std::string(StackProfileName(profile)).c_str());

  LinkedPair pair(Node(profile, 1), Node(profile, 2));
  if (!pair.Establish()) {
    std::printf("link failed to establish\n");
    return;
  }

  // One request/response exchange, TLS-protected end to end.
  ciobase::Buffer request = ciobase::BufferFromString(
      "GET /tenant-data?id=42");
  pair.client->SendMessage(request);
  ciobase::Buffer at_server;
  pair.PumpUntil([&] {
    auto received = pair.server->ReceiveMessage();
    if (received.ok()) {
      at_server = *received;
      return true;
    }
    return false;
  });
  std::printf("server received: %s\n",
              ciobase::StringFromBytes(at_server).c_str());
  pair.server->SendMessage(ciobase::BufferFromString("OK: record 42"));
  pair.PumpUntil([&] { return pair.client->ReceiveMessage().ok(); });

  // What did the host learn, and what did the boundary cost?
  auto& observability = pair.client->observability();
  std::printf("host-visible events: %zu  (%.1f metadata bits/op)\n",
              observability.EventCount(),
              observability.BitsPerOp(pair.client->app_ops()));
  std::printf("  call types seen by host:        %zu\n",
              observability.CountOf(ciohost::ObsCategory::kCallType));
  std::printf("  message boundaries seen by host: %zu\n",
              observability.CountOf(ciohost::ObsCategory::kMessageBoundary));
  std::printf("  packet lengths seen by host:     %zu\n",
              observability.CountOf(ciohost::ObsCategory::kPacketLength));
  auto& costs = pair.client->costs();
  std::printf("modeled boundary costs: host_exits=%llu notifies=%llu "
              "compartment_switches=%llu bytes_copied=%llu\n",
              static_cast<unsigned long long>(costs.counter("host_exits")),
              static_cast<unsigned long long>(costs.counter("notifies")),
              static_cast<unsigned long long>(
                  costs.counter("compartment_switches")),
              static_cast<unsigned long long>(
                  costs.counter("bytes_copied")));
  std::printf("app TCB: %zu LoC\n\n",
              cio::ProfileTcb(profile).AppTcbLines());
}

}  // namespace

int main() {
  std::printf("cio quickstart: confidential request/response, two designs\n\n");
  RunExchange(StackProfile::kDualBoundary);
  RunExchange(StackProfile::kSyscallL5);
  std::printf(
      "The dual-boundary profile exposes no call types or message\n"
      "boundaries to the host (network-level observability only) while\n"
      "keeping the application TCB as small as the syscall design.\n");
  return 0;
}
