
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hostsim/adversary.cc" "src/hostsim/CMakeFiles/cio_hostsim.dir/adversary.cc.o" "gcc" "src/hostsim/CMakeFiles/cio_hostsim.dir/adversary.cc.o.d"
  "/root/repo/src/hostsim/observability.cc" "src/hostsim/CMakeFiles/cio_hostsim.dir/observability.cc.o" "gcc" "src/hostsim/CMakeFiles/cio_hostsim.dir/observability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cio_base.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cio_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cio_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
