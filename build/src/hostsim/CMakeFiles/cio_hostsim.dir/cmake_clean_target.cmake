file(REMOVE_RECURSE
  "libcio_hostsim.a"
)
