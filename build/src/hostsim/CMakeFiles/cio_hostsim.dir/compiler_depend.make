# Empty compiler generated dependencies file for cio_hostsim.
# This may be replaced when dependencies are built.
