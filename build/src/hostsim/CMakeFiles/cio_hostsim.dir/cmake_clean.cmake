file(REMOVE_RECURSE
  "CMakeFiles/cio_hostsim.dir/adversary.cc.o"
  "CMakeFiles/cio_hostsim.dir/adversary.cc.o.d"
  "CMakeFiles/cio_hostsim.dir/observability.cc.o"
  "CMakeFiles/cio_hostsim.dir/observability.cc.o.d"
  "libcio_hostsim.a"
  "libcio_hostsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cio_hostsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
