file(REMOVE_RECURSE
  "CMakeFiles/cio_tee.dir/attestation.cc.o"
  "CMakeFiles/cio_tee.dir/attestation.cc.o.d"
  "CMakeFiles/cio_tee.dir/compartment.cc.o"
  "CMakeFiles/cio_tee.dir/compartment.cc.o.d"
  "CMakeFiles/cio_tee.dir/memory.cc.o"
  "CMakeFiles/cio_tee.dir/memory.cc.o.d"
  "CMakeFiles/cio_tee.dir/shared_region.cc.o"
  "CMakeFiles/cio_tee.dir/shared_region.cc.o.d"
  "CMakeFiles/cio_tee.dir/trust.cc.o"
  "CMakeFiles/cio_tee.dir/trust.cc.o.d"
  "libcio_tee.a"
  "libcio_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cio_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
