
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tee/attestation.cc" "src/tee/CMakeFiles/cio_tee.dir/attestation.cc.o" "gcc" "src/tee/CMakeFiles/cio_tee.dir/attestation.cc.o.d"
  "/root/repo/src/tee/compartment.cc" "src/tee/CMakeFiles/cio_tee.dir/compartment.cc.o" "gcc" "src/tee/CMakeFiles/cio_tee.dir/compartment.cc.o.d"
  "/root/repo/src/tee/memory.cc" "src/tee/CMakeFiles/cio_tee.dir/memory.cc.o" "gcc" "src/tee/CMakeFiles/cio_tee.dir/memory.cc.o.d"
  "/root/repo/src/tee/shared_region.cc" "src/tee/CMakeFiles/cio_tee.dir/shared_region.cc.o" "gcc" "src/tee/CMakeFiles/cio_tee.dir/shared_region.cc.o.d"
  "/root/repo/src/tee/trust.cc" "src/tee/CMakeFiles/cio_tee.dir/trust.cc.o" "gcc" "src/tee/CMakeFiles/cio_tee.dir/trust.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cio_base.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cio_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
