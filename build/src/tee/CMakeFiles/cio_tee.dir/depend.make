# Empty dependencies file for cio_tee.
# This may be replaced when dependencies are built.
