file(REMOVE_RECURSE
  "libcio_tee.a"
)
