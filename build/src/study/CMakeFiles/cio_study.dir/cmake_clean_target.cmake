file(REMOVE_RECURSE
  "libcio_study.a"
)
