file(REMOVE_RECURSE
  "CMakeFiles/cio_study.dir/classifier.cc.o"
  "CMakeFiles/cio_study.dir/classifier.cc.o.d"
  "CMakeFiles/cio_study.dir/dataset.cc.o"
  "CMakeFiles/cio_study.dir/dataset.cc.o.d"
  "libcio_study.a"
  "libcio_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cio_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
