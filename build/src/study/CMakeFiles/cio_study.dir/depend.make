# Empty dependencies file for cio_study.
# This may be replaced when dependencies are built.
