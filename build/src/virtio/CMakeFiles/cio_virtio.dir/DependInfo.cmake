
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/virtio/negotiation.cc" "src/virtio/CMakeFiles/cio_virtio.dir/negotiation.cc.o" "gcc" "src/virtio/CMakeFiles/cio_virtio.dir/negotiation.cc.o.d"
  "/root/repo/src/virtio/net_device.cc" "src/virtio/CMakeFiles/cio_virtio.dir/net_device.cc.o" "gcc" "src/virtio/CMakeFiles/cio_virtio.dir/net_device.cc.o.d"
  "/root/repo/src/virtio/net_driver.cc" "src/virtio/CMakeFiles/cio_virtio.dir/net_driver.cc.o" "gcc" "src/virtio/CMakeFiles/cio_virtio.dir/net_driver.cc.o.d"
  "/root/repo/src/virtio/swiotlb.cc" "src/virtio/CMakeFiles/cio_virtio.dir/swiotlb.cc.o" "gcc" "src/virtio/CMakeFiles/cio_virtio.dir/swiotlb.cc.o.d"
  "/root/repo/src/virtio/virtqueue.cc" "src/virtio/CMakeFiles/cio_virtio.dir/virtqueue.cc.o" "gcc" "src/virtio/CMakeFiles/cio_virtio.dir/virtqueue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cio_base.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cio_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/hostsim/CMakeFiles/cio_hostsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cio_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
