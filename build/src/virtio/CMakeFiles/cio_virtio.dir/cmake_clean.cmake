file(REMOVE_RECURSE
  "CMakeFiles/cio_virtio.dir/negotiation.cc.o"
  "CMakeFiles/cio_virtio.dir/negotiation.cc.o.d"
  "CMakeFiles/cio_virtio.dir/net_device.cc.o"
  "CMakeFiles/cio_virtio.dir/net_device.cc.o.d"
  "CMakeFiles/cio_virtio.dir/net_driver.cc.o"
  "CMakeFiles/cio_virtio.dir/net_driver.cc.o.d"
  "CMakeFiles/cio_virtio.dir/swiotlb.cc.o"
  "CMakeFiles/cio_virtio.dir/swiotlb.cc.o.d"
  "CMakeFiles/cio_virtio.dir/virtqueue.cc.o"
  "CMakeFiles/cio_virtio.dir/virtqueue.cc.o.d"
  "libcio_virtio.a"
  "libcio_virtio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cio_virtio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
