# Empty compiler generated dependencies file for cio_virtio.
# This may be replaced when dependencies are built.
