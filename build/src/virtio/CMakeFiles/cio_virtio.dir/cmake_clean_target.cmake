file(REMOVE_RECURSE
  "libcio_virtio.a"
)
