# Empty compiler generated dependencies file for cio_base.
# This may be replaced when dependencies are built.
