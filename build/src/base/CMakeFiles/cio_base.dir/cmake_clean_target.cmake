file(REMOVE_RECURSE
  "libcio_base.a"
)
