file(REMOVE_RECURSE
  "CMakeFiles/cio_base.dir/bytes.cc.o"
  "CMakeFiles/cio_base.dir/bytes.cc.o.d"
  "CMakeFiles/cio_base.dir/clock.cc.o"
  "CMakeFiles/cio_base.dir/clock.cc.o.d"
  "CMakeFiles/cio_base.dir/log.cc.o"
  "CMakeFiles/cio_base.dir/log.cc.o.d"
  "CMakeFiles/cio_base.dir/rng.cc.o"
  "CMakeFiles/cio_base.dir/rng.cc.o.d"
  "CMakeFiles/cio_base.dir/status.cc.o"
  "CMakeFiles/cio_base.dir/status.cc.o.d"
  "libcio_base.a"
  "libcio_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cio_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
