file(REMOVE_RECURSE
  "CMakeFiles/cio_blockio.dir/block_ring.cc.o"
  "CMakeFiles/cio_blockio.dir/block_ring.cc.o.d"
  "CMakeFiles/cio_blockio.dir/crypt_client.cc.o"
  "CMakeFiles/cio_blockio.dir/crypt_client.cc.o.d"
  "CMakeFiles/cio_blockio.dir/extent_fs.cc.o"
  "CMakeFiles/cio_blockio.dir/extent_fs.cc.o.d"
  "CMakeFiles/cio_blockio.dir/store.cc.o"
  "CMakeFiles/cio_blockio.dir/store.cc.o.d"
  "libcio_blockio.a"
  "libcio_blockio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cio_blockio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
