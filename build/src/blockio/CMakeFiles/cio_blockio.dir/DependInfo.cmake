
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blockio/block_ring.cc" "src/blockio/CMakeFiles/cio_blockio.dir/block_ring.cc.o" "gcc" "src/blockio/CMakeFiles/cio_blockio.dir/block_ring.cc.o.d"
  "/root/repo/src/blockio/crypt_client.cc" "src/blockio/CMakeFiles/cio_blockio.dir/crypt_client.cc.o" "gcc" "src/blockio/CMakeFiles/cio_blockio.dir/crypt_client.cc.o.d"
  "/root/repo/src/blockio/extent_fs.cc" "src/blockio/CMakeFiles/cio_blockio.dir/extent_fs.cc.o" "gcc" "src/blockio/CMakeFiles/cio_blockio.dir/extent_fs.cc.o.d"
  "/root/repo/src/blockio/store.cc" "src/blockio/CMakeFiles/cio_blockio.dir/store.cc.o" "gcc" "src/blockio/CMakeFiles/cio_blockio.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cio_base.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cio_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cio_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/hostsim/CMakeFiles/cio_hostsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
