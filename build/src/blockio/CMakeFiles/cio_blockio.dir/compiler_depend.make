# Empty compiler generated dependencies file for cio_blockio.
# This may be replaced when dependencies are built.
