file(REMOVE_RECURSE
  "libcio_blockio.a"
)
