file(REMOVE_RECURSE
  "CMakeFiles/cio_crypto.dir/aead.cc.o"
  "CMakeFiles/cio_crypto.dir/aead.cc.o.d"
  "CMakeFiles/cio_crypto.dir/chacha20.cc.o"
  "CMakeFiles/cio_crypto.dir/chacha20.cc.o.d"
  "CMakeFiles/cio_crypto.dir/hkdf.cc.o"
  "CMakeFiles/cio_crypto.dir/hkdf.cc.o.d"
  "CMakeFiles/cio_crypto.dir/hmac.cc.o"
  "CMakeFiles/cio_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/cio_crypto.dir/poly1305.cc.o"
  "CMakeFiles/cio_crypto.dir/poly1305.cc.o.d"
  "CMakeFiles/cio_crypto.dir/sha256.cc.o"
  "CMakeFiles/cio_crypto.dir/sha256.cc.o.d"
  "libcio_crypto.a"
  "libcio_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cio_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
