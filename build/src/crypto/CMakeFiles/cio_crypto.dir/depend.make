# Empty dependencies file for cio_crypto.
# This may be replaced when dependencies are built.
