file(REMOVE_RECURSE
  "libcio_crypto.a"
)
