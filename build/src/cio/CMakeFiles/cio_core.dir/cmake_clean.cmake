file(REMOVE_RECURSE
  "CMakeFiles/cio_core.dir/attack_campaign.cc.o"
  "CMakeFiles/cio_core.dir/attack_campaign.cc.o.d"
  "CMakeFiles/cio_core.dir/dda.cc.o"
  "CMakeFiles/cio_core.dir/dda.cc.o.d"
  "CMakeFiles/cio_core.dir/engine.cc.o"
  "CMakeFiles/cio_core.dir/engine.cc.o.d"
  "CMakeFiles/cio_core.dir/l2_host_device.cc.o"
  "CMakeFiles/cio_core.dir/l2_host_device.cc.o.d"
  "CMakeFiles/cio_core.dir/l2_transport.cc.o"
  "CMakeFiles/cio_core.dir/l2_transport.cc.o.d"
  "CMakeFiles/cio_core.dir/l5_channel.cc.o"
  "CMakeFiles/cio_core.dir/l5_channel.cc.o.d"
  "CMakeFiles/cio_core.dir/tcb.cc.o"
  "CMakeFiles/cio_core.dir/tcb.cc.o.d"
  "CMakeFiles/cio_core.dir/tunnel_port.cc.o"
  "CMakeFiles/cio_core.dir/tunnel_port.cc.o.d"
  "libcio_core.a"
  "libcio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
