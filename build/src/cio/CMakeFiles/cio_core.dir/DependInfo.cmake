
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cio/attack_campaign.cc" "src/cio/CMakeFiles/cio_core.dir/attack_campaign.cc.o" "gcc" "src/cio/CMakeFiles/cio_core.dir/attack_campaign.cc.o.d"
  "/root/repo/src/cio/dda.cc" "src/cio/CMakeFiles/cio_core.dir/dda.cc.o" "gcc" "src/cio/CMakeFiles/cio_core.dir/dda.cc.o.d"
  "/root/repo/src/cio/engine.cc" "src/cio/CMakeFiles/cio_core.dir/engine.cc.o" "gcc" "src/cio/CMakeFiles/cio_core.dir/engine.cc.o.d"
  "/root/repo/src/cio/l2_host_device.cc" "src/cio/CMakeFiles/cio_core.dir/l2_host_device.cc.o" "gcc" "src/cio/CMakeFiles/cio_core.dir/l2_host_device.cc.o.d"
  "/root/repo/src/cio/l2_transport.cc" "src/cio/CMakeFiles/cio_core.dir/l2_transport.cc.o" "gcc" "src/cio/CMakeFiles/cio_core.dir/l2_transport.cc.o.d"
  "/root/repo/src/cio/l5_channel.cc" "src/cio/CMakeFiles/cio_core.dir/l5_channel.cc.o" "gcc" "src/cio/CMakeFiles/cio_core.dir/l5_channel.cc.o.d"
  "/root/repo/src/cio/tcb.cc" "src/cio/CMakeFiles/cio_core.dir/tcb.cc.o" "gcc" "src/cio/CMakeFiles/cio_core.dir/tcb.cc.o.d"
  "/root/repo/src/cio/tunnel_port.cc" "src/cio/CMakeFiles/cio_core.dir/tunnel_port.cc.o" "gcc" "src/cio/CMakeFiles/cio_core.dir/tunnel_port.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cio_base.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cio_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cio_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/hostsim/CMakeFiles/cio_hostsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/cio_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/virtio/CMakeFiles/cio_virtio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
