# Empty compiler generated dependencies file for cio_core.
# This may be replaced when dependencies are built.
