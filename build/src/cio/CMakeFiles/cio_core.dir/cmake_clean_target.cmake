file(REMOVE_RECURSE
  "libcio_core.a"
)
