# Empty compiler generated dependencies file for cio_tls.
# This may be replaced when dependencies are built.
