file(REMOVE_RECURSE
  "CMakeFiles/cio_tls.dir/record.cc.o"
  "CMakeFiles/cio_tls.dir/record.cc.o.d"
  "CMakeFiles/cio_tls.dir/session.cc.o"
  "CMakeFiles/cio_tls.dir/session.cc.o.d"
  "libcio_tls.a"
  "libcio_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cio_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
