
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tls/record.cc" "src/tls/CMakeFiles/cio_tls.dir/record.cc.o" "gcc" "src/tls/CMakeFiles/cio_tls.dir/record.cc.o.d"
  "/root/repo/src/tls/session.cc" "src/tls/CMakeFiles/cio_tls.dir/session.cc.o" "gcc" "src/tls/CMakeFiles/cio_tls.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cio_base.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cio_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
