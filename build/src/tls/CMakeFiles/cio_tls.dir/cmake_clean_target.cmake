file(REMOVE_RECURSE
  "libcio_tls.a"
)
