file(REMOVE_RECURSE
  "CMakeFiles/cio_net.dir/arp.cc.o"
  "CMakeFiles/cio_net.dir/arp.cc.o.d"
  "CMakeFiles/cio_net.dir/fabric.cc.o"
  "CMakeFiles/cio_net.dir/fabric.cc.o.d"
  "CMakeFiles/cio_net.dir/ipv4.cc.o"
  "CMakeFiles/cio_net.dir/ipv4.cc.o.d"
  "CMakeFiles/cio_net.dir/stack.cc.o"
  "CMakeFiles/cio_net.dir/stack.cc.o.d"
  "CMakeFiles/cio_net.dir/tcp.cc.o"
  "CMakeFiles/cio_net.dir/tcp.cc.o.d"
  "CMakeFiles/cio_net.dir/udp.cc.o"
  "CMakeFiles/cio_net.dir/udp.cc.o.d"
  "CMakeFiles/cio_net.dir/wire.cc.o"
  "CMakeFiles/cio_net.dir/wire.cc.o.d"
  "libcio_net.a"
  "libcio_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cio_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
