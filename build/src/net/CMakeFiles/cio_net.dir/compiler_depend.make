# Empty compiler generated dependencies file for cio_net.
# This may be replaced when dependencies are built.
