
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/arp.cc" "src/net/CMakeFiles/cio_net.dir/arp.cc.o" "gcc" "src/net/CMakeFiles/cio_net.dir/arp.cc.o.d"
  "/root/repo/src/net/fabric.cc" "src/net/CMakeFiles/cio_net.dir/fabric.cc.o" "gcc" "src/net/CMakeFiles/cio_net.dir/fabric.cc.o.d"
  "/root/repo/src/net/ipv4.cc" "src/net/CMakeFiles/cio_net.dir/ipv4.cc.o" "gcc" "src/net/CMakeFiles/cio_net.dir/ipv4.cc.o.d"
  "/root/repo/src/net/stack.cc" "src/net/CMakeFiles/cio_net.dir/stack.cc.o" "gcc" "src/net/CMakeFiles/cio_net.dir/stack.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/cio_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/cio_net.dir/tcp.cc.o.d"
  "/root/repo/src/net/udp.cc" "src/net/CMakeFiles/cio_net.dir/udp.cc.o" "gcc" "src/net/CMakeFiles/cio_net.dir/udp.cc.o.d"
  "/root/repo/src/net/wire.cc" "src/net/CMakeFiles/cio_net.dir/wire.cc.o" "gcc" "src/net/CMakeFiles/cio_net.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cio_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
