file(REMOVE_RECURSE
  "libcio_net.a"
)
