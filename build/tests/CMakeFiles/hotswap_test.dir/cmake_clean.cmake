file(REMOVE_RECURSE
  "CMakeFiles/hotswap_test.dir/hotswap_test.cc.o"
  "CMakeFiles/hotswap_test.dir/hotswap_test.cc.o.d"
  "hotswap_test"
  "hotswap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotswap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
