# Empty compiler generated dependencies file for hotswap_test.
# This may be replaced when dependencies are built.
