file(REMOVE_RECURSE
  "CMakeFiles/l2_transport_test.dir/l2_transport_test.cc.o"
  "CMakeFiles/l2_transport_test.dir/l2_transport_test.cc.o.d"
  "l2_transport_test"
  "l2_transport_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
