# Empty dependencies file for l2_transport_test.
# This may be replaced when dependencies are built.
