file(REMOVE_RECURSE
  "CMakeFiles/net_stack_test.dir/net_stack_test.cc.o"
  "CMakeFiles/net_stack_test.dir/net_stack_test.cc.o.d"
  "net_stack_test"
  "net_stack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
