# Empty dependencies file for dda_test.
# This may be replaced when dependencies are built.
