file(REMOVE_RECURSE
  "CMakeFiles/dda_test.dir/dda_test.cc.o"
  "CMakeFiles/dda_test.dir/dda_test.cc.o.d"
  "dda_test"
  "dda_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
