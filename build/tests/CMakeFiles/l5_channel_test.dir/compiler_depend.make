# Empty compiler generated dependencies file for l5_channel_test.
# This may be replaced when dependencies are built.
