file(REMOVE_RECURSE
  "CMakeFiles/l5_channel_test.dir/l5_channel_test.cc.o"
  "CMakeFiles/l5_channel_test.dir/l5_channel_test.cc.o.d"
  "l5_channel_test"
  "l5_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l5_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
