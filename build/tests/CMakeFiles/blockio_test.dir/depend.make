# Empty dependencies file for blockio_test.
# This may be replaced when dependencies are built.
