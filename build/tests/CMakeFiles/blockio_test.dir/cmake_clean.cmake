file(REMOVE_RECURSE
  "CMakeFiles/blockio_test.dir/blockio_test.cc.o"
  "CMakeFiles/blockio_test.dir/blockio_test.cc.o.d"
  "blockio_test"
  "blockio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
