file(REMOVE_RECURSE
  "CMakeFiles/virtqueue_test.dir/virtqueue_test.cc.o"
  "CMakeFiles/virtqueue_test.dir/virtqueue_test.cc.o.d"
  "virtqueue_test"
  "virtqueue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtqueue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
