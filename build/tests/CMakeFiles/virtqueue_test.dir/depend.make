# Empty dependencies file for virtqueue_test.
# This may be replaced when dependencies are built.
