# Empty dependencies file for fig3_netvsc_hardening.
# This may be replaced when dependencies are built.
