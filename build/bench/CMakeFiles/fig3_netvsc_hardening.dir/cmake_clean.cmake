file(REMOVE_RECURSE
  "CMakeFiles/fig3_netvsc_hardening.dir/fig3_netvsc_hardening.cc.o"
  "CMakeFiles/fig3_netvsc_hardening.dir/fig3_netvsc_hardening.cc.o.d"
  "fig3_netvsc_hardening"
  "fig3_netvsc_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_netvsc_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
