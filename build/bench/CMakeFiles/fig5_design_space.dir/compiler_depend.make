# Empty compiler generated dependencies file for fig5_design_space.
# This may be replaced when dependencies are built.
