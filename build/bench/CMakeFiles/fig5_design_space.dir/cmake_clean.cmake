file(REMOVE_RECURSE
  "CMakeFiles/fig5_design_space.dir/fig5_design_space.cc.o"
  "CMakeFiles/fig5_design_space.dir/fig5_design_space.cc.o.d"
  "fig5_design_space"
  "fig5_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
