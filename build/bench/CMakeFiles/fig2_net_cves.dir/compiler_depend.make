# Empty compiler generated dependencies file for fig2_net_cves.
# This may be replaced when dependencies are built.
