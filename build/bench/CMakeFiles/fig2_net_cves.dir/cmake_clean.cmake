file(REMOVE_RECURSE
  "CMakeFiles/fig2_net_cves.dir/fig2_net_cves.cc.o"
  "CMakeFiles/fig2_net_cves.dir/fig2_net_cves.cc.o.d"
  "fig2_net_cves"
  "fig2_net_cves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_net_cves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
