# Empty dependencies file for bench_dda.
# This may be replaced when dependencies are built.
