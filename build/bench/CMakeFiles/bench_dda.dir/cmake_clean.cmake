file(REMOVE_RECURSE
  "CMakeFiles/bench_dda.dir/bench_dda.cc.o"
  "CMakeFiles/bench_dda.dir/bench_dda.cc.o.d"
  "bench_dda"
  "bench_dda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
