# Empty compiler generated dependencies file for bench_virtio_baseline.
# This may be replaced when dependencies are built.
