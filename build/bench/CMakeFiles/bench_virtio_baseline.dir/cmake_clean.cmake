file(REMOVE_RECURSE
  "CMakeFiles/bench_virtio_baseline.dir/bench_virtio_baseline.cc.o"
  "CMakeFiles/bench_virtio_baseline.dir/bench_virtio_baseline.cc.o.d"
  "bench_virtio_baseline"
  "bench_virtio_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_virtio_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
