file(REMOVE_RECURSE
  "CMakeFiles/bench_boundary_cost.dir/bench_boundary_cost.cc.o"
  "CMakeFiles/bench_boundary_cost.dir/bench_boundary_cost.cc.o.d"
  "bench_boundary_cost"
  "bench_boundary_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_boundary_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
