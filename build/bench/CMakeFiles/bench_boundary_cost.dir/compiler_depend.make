# Empty compiler generated dependencies file for bench_boundary_cost.
# This may be replaced when dependencies are built.
