file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_resilience.dir/bench_attack_resilience.cc.o"
  "CMakeFiles/bench_attack_resilience.dir/bench_attack_resilience.cc.o.d"
  "bench_attack_resilience"
  "bench_attack_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
