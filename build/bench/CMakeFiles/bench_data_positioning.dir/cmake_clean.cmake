file(REMOVE_RECURSE
  "CMakeFiles/bench_data_positioning.dir/bench_data_positioning.cc.o"
  "CMakeFiles/bench_data_positioning.dir/bench_data_positioning.cc.o.d"
  "bench_data_positioning"
  "bench_data_positioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_positioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
