# Empty dependencies file for bench_data_positioning.
# This may be replaced when dependencies are built.
