# Empty compiler generated dependencies file for fig4_virtio_hardening.
# This may be replaced when dependencies are built.
