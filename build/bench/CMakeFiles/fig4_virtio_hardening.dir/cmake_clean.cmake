file(REMOVE_RECURSE
  "CMakeFiles/fig4_virtio_hardening.dir/fig4_virtio_hardening.cc.o"
  "CMakeFiles/fig4_virtio_hardening.dir/fig4_virtio_hardening.cc.o.d"
  "fig4_virtio_hardening"
  "fig4_virtio_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_virtio_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
