# Empty compiler generated dependencies file for bench_blockio.
# This may be replaced when dependencies are built.
