file(REMOVE_RECURSE
  "CMakeFiles/bench_blockio.dir/bench_blockio.cc.o"
  "CMakeFiles/bench_blockio.dir/bench_blockio.cc.o.d"
  "bench_blockio"
  "bench_blockio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blockio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
