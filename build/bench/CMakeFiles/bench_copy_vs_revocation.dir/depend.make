# Empty dependencies file for bench_copy_vs_revocation.
# This may be replaced when dependencies are built.
