file(REMOVE_RECURSE
  "CMakeFiles/bench_copy_vs_revocation.dir/bench_copy_vs_revocation.cc.o"
  "CMakeFiles/bench_copy_vs_revocation.dir/bench_copy_vs_revocation.cc.o.d"
  "bench_copy_vs_revocation"
  "bench_copy_vs_revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_copy_vs_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
