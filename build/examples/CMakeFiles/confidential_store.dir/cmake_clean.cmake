file(REMOVE_RECURSE
  "CMakeFiles/confidential_store.dir/confidential_store.cpp.o"
  "CMakeFiles/confidential_store.dir/confidential_store.cpp.o.d"
  "confidential_store"
  "confidential_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confidential_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
