
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/confidential_store.cpp" "examples/CMakeFiles/confidential_store.dir/confidential_store.cpp.o" "gcc" "examples/CMakeFiles/confidential_store.dir/confidential_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cio/CMakeFiles/cio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/blockio/CMakeFiles/cio_blockio.dir/DependInfo.cmake"
  "/root/repo/build/src/study/CMakeFiles/cio_study.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cio_base.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cio_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cio_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/hostsim/CMakeFiles/cio_hostsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/cio_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/virtio/CMakeFiles/cio_virtio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
