# Empty dependencies file for confidential_store.
# This may be replaced when dependencies are built.
