# Empty compiler generated dependencies file for middlebox.
# This may be replaced when dependencies are built.
