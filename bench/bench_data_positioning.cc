// §3.2 data-positioning ablation as google-benchmark microbenches: one
// frame through the hardened L2 ring (guest send -> host consume -> host
// produce -> guest receive) for each positioning mode and payload size.
// Wall time measures the real data-path work; the "sim_ns_per_frame"
// counter carries the modeled boundary costs.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/base/rng.h"
#include "src/cio/l2_host_device.h"
#include "src/cio/l2_transport.h"
#include "src/net/fabric.h"

namespace {

struct L2World {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  cionet::Fabric fabric{&clock, 3, cionet::Fabric::Options{0, 0, 0, 9216}};
  ciotee::TeeMemory memory;
  cio::L2Config config;
  std::unique_ptr<ciotee::SharedRegion> shared;
  std::unique_ptr<cio::L2HostDevice> device;
  std::unique_ptr<cio::L2Transport> transport;
  std::unique_ptr<cionet::DirectFabricPort> peer;

  L2World(cio::DataPositioning positioning, cio::ReceiveOwnership ownership) {
    config.mac = cionet::MacAddress::FromId(1);
    config.positioning = positioning;
    config.rx_ownership = ownership;
    cio::L2Layout layout(config);
    shared = std::make_unique<ciotee::SharedRegion>(&memory, layout.total,
                                                    "l2");
    device = std::make_unique<cio::L2HostDevice>(shared.get(), config,
                                                 &fabric, "nic", nullptr,
                                                 nullptr, &clock);
    transport = std::make_unique<cio::L2Transport>(shared.get(), config,
                                                   &costs, nullptr);
    peer = std::make_unique<cionet::DirectFabricPort>(
        &fabric, "peer", cionet::MacAddress::FromId(2));
  }
};

void RunEcho(benchmark::State& state, cio::DataPositioning positioning,
             cio::ReceiveOwnership ownership) {
  size_t payload = static_cast<size_t>(state.range(0));
  L2World world(positioning, ownership);
  ciobase::Rng rng(1);
  ciobase::Buffer frame;
  cionet::EthernetHeader eth{cionet::MacAddress::FromId(1),
                             cionet::MacAddress::FromId(2), 0x88b5};
  eth.Serialize(frame);
  ciobase::Append(frame, rng.Bytes(payload));

  uint64_t frames = 0;
  uint64_t sim_start = world.clock.now_ns();
  cionet::FrameBatch rx_batch;
  for (auto _ : state) {
    // Peer injects toward the guest; host device fills the RX ring.
    benchmark::DoNotOptimize(cionet::SendOne(*world.peer, frame));
    world.device->Poll();
    auto received = world.transport->ReceiveFrames(rx_batch, 1);
    benchmark::DoNotOptimize(received);
    // Guest sends it back out.
    benchmark::DoNotOptimize(cionet::SendOne(*world.transport, frame));
    world.device->Poll();
    benchmark::DoNotOptimize(world.peer->ReceiveFrames(rx_batch, 1));
    ++frames;
  }
  state.SetBytesProcessed(static_cast<int64_t>(frames * frame.size() * 2));
  state.counters["sim_ns_per_frame"] =
      frames == 0 ? 0
                  : static_cast<double>(world.clock.now_ns() - sim_start) /
                        static_cast<double>(frames);
  state.counters["bytes_copied_per_frame"] =
      frames == 0 ? 0
                  : static_cast<double>(
                        world.costs.counter("bytes_copied")) /
                        static_cast<double>(frames);
}

void BM_Inline(benchmark::State& state) {
  RunEcho(state, cio::DataPositioning::kInline,
          cio::ReceiveOwnership::kCopy);
}
void BM_SharedPool(benchmark::State& state) {
  RunEcho(state, cio::DataPositioning::kSharedPool,
          cio::ReceiveOwnership::kCopy);
}
void BM_Indirect(benchmark::State& state) {
  RunEcho(state, cio::DataPositioning::kIndirect,
          cio::ReceiveOwnership::kCopy);
}
void BM_PoolRevoke(benchmark::State& state) {
  RunEcho(state, cio::DataPositioning::kSharedPool,
          cio::ReceiveOwnership::kRevoke);
}

}  // namespace

BENCHMARK(BM_Inline)->Arg(64)->Arg(256)->Arg(1024)->Arg(1500);
BENCHMARK(BM_SharedPool)->Arg(64)->Arg(256)->Arg(1024)->Arg(1500);
BENCHMARK(BM_Indirect)->Arg(64)->Arg(256)->Arg(1024)->Arg(1500);
BENCHMARK(BM_PoolRevoke)->Arg(64)->Arg(256)->Arg(1024)->Arg(1500);
