// §3.4: direct device assignment vs the paravirtual designs. DDA replaces
// interface hardening with link crypto: every frame pays an AEAD, the
// host sees only ciphertext TLPs, and the device firmware joins the TCB.
// This bench puts the trade-off next to the paper's dual-boundary design.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/cio/tcb.h"

int main() {
  using namespace cio;  // NOLINT
  std::printf("== direct device assignment vs paravirtual (400 x 1 KiB) ==\n");
  std::printf("%-18s %12s %12s %12s %14s\n", "profile", "Gbit/s(sim)",
              "aead bytes/op", "appTCB KLoC", "xnet bits/op");
  std::printf("%s\n", std::string(74, '-').c_str());
  for (StackProfile profile :
       {StackProfile::kDualBoundary, StackProfile::kDirectDevice,
        StackProfile::kPassthroughL2}) {
    LinkedPair pair(ciobench::MakeNode(profile, 1),
                    ciobench::MakeNode(profile, 2));
    if (!pair.Establish()) {
      std::printf("%-18s establish failed\n",
                  std::string(StackProfileName(profile)).c_str());
      continue;
    }
    pair.client->observability().Clear();
    pair.client->costs().ResetCounters();
    auto result = ciobench::BulkTransfer(pair, 400, 1024);
    double aead_per_op =
        pair.client->messages_sent() == 0
            ? 0
            : static_cast<double>(
                  pair.client->costs().counter("bytes_aead")) /
                  static_cast<double>(pair.client->app_ops());
    std::printf("%-18s %12.3f %12.0f %12.1f %14.1f\n",
                std::string(StackProfileName(profile)).c_str(),
                result.GbitPerSec(), aead_per_op,
                static_cast<double>(ProfileTcb(profile).AppTcbLines()) /
                    1000.0,
                pair.client->observability().BeyondNetworkBitsPerOp(
                    pair.client->app_ops()));
  }
  std::printf(
      "\nTrade-offs (Section 3.4): DDA needs no interface hardening — the\n"
      "IDE AEAD turns every host tampering attempt into a detected drop —\n"
      "but pays link crypto per frame and adds the device (and the full\n"
      "network stack) to the application's TCB. 'DDA is not a\n"
      "silver-bullet': paravirtual designs still win on TCB size and on\n"
      "oversubscription.\n");
  return 0;
}
