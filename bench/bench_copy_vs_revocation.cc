// §3.2 "explore revocation": when does un-sharing pages beat copying on the
// receive path? Two views:
//
//   1. The cost model directly: copy is ~linear in bytes, revocation is a
//      per-page constant (unshare + later reshare). The crossover falls
//      where copy_ns_per_byte * len exceeds (unshare+reshare) * pages.
//   2. Measured through the dual-boundary L5 receive path (copy mode vs
//      revoke mode), whole-stack, against the modeled clock.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/cio/l5_channel.h"
#include "src/net/fabric.h"

namespace {

void ModelTable() {
  ciobase::CostConstants constants;
  std::printf("-- cost-model view (per received buffer) --\n");
  std::printf("%8s %12s %12s %10s\n", "bytes", "copy ns", "revoke ns",
              "winner");
  const size_t kSizes[] = {64,   256,  1024, 2048,  2730,  4096,
                           8192, 16384, 65536};
  bool crossed = false;
  for (size_t size : kSizes) {
    double copy_ns = constants.copy_ns_per_byte * static_cast<double>(size);
    size_t pages = (size + constants.page_size - 1) / constants.page_size;
    if (pages == 0) {
      pages = 1;
    }
    double revoke_ns = (constants.page_unshare_ns +
                        constants.page_reshare_ns) *
                       static_cast<double>(pages);
    const char* winner = copy_ns <= revoke_ns ? "copy" : "revoke";
    if (!crossed && copy_ns > revoke_ns) {
      crossed = true;
      winner = "revoke  <-- crossover";
    }
    std::printf("%8zu %12.0f %12.0f %10s\n", size, copy_ns, revoke_ns,
                winner);
  }
}

// Controlled L5 microbenchmark: a sender streams into the receiver's TCP
// socket; the receiving app lets data accumulate and then issues one
// batched L5Channel::Receive of `batch` bytes. The modeled time spent
// *inside* Receive (copy vs revoke of the full multi-page buffer) is
// isolated from network time — this is where the crossover is visible
// end to end.
void BatchedL5Table() {
  using namespace cio;  // NOLINT
  std::printf(
      "\n-- measured: batched L5 Receive cost (ns per call, in-boundary) "
      "--\n");
  std::printf("%8s %14s %14s %10s\n", "batch", "copy ns", "revoke ns",
              "winner");
  for (size_t batch : {1024, 4096, 16384, 65536}) {
    double ns[2] = {0, 0};
    int mode_index = 0;
    for (L5ReceiveMode mode :
         {L5ReceiveMode::kCopy, L5ReceiveMode::kRevoke}) {
      ciobase::SimClock clock;
      ciobase::CostModel costs(&clock);
      cionet::Fabric fabric(&clock, 8);
      cionet::DirectFabricPort port_a(&fabric, "a",
                                      cionet::MacAddress::FromId(1));
      cionet::DirectFabricPort port_b(&fabric, "b",
                                      cionet::MacAddress::FromId(2));
      cionet::NetStack::Config config_a;
      config_a.ip = cionet::Ipv4Address::FromOctets(10, 0, 0, 1);
      cionet::NetStack::Config config_b;
      config_b.ip = cionet::Ipv4Address::FromOctets(10, 0, 0, 2);
      config_b.seed = 2;
      config_b.tcp_tuning.receive_buffer_limit = 64 * 1024;
      cionet::NetStack sender(&port_a, &clock, config_a);
      cionet::NetStack receiver(&port_b, &clock, config_b);
      ciotee::CompartmentManager compartments(&costs);
      auto app = compartments.Create("app", 1 << 20);
      auto io = compartments.Create("io", 1 << 20);
      compartments.GrantAccess(app, io);
      L5Channel l5(&compartments, app, io, &receiver, &costs, mode,
                   L5BoundaryKind::kCompartment);

      auto listener = l5.Listen(80);
      auto client = sender.TcpConnect(config_b.ip, 80);
      cionet::SocketId server{};
      bool accepted = false;
      ciobase::Rng rng(1);
      ciobase::Buffer chunk = rng.Bytes(4096);
      ciobase::Buffer receive_buffer;
      uint64_t in_receive_ns = 0;
      int receives = 0;
      for (int round = 0; round < 200000 && receives < 50; ++round) {
        sender.Poll();
        l5.Poll();
        clock.Advance(2'000);
        if (!accepted) {
          auto got = l5.Accept(*listener);
          if (got.ok()) {
            server = *got;
            accepted = true;
          }
          continue;
        }
        (void)sender.TcpSend(*client, chunk);
        // Let data pile up; batch-receive every 32 rounds.
        if (round % 32 == 0) {
          uint64_t before = clock.now_ns();
          auto received = l5.ReceiveOne(server, batch, receive_buffer);
          uint64_t after = clock.now_ns();
          if (received.ok() && *received >= batch / 2) {
            in_receive_ns += after - before;
            ++receives;
          }
        }
      }
      ns[mode_index] = receives == 0 ? 0
                                     : static_cast<double>(in_receive_ns) /
                                           receives;
      ++mode_index;
    }
    std::printf("%8zu %14.0f %14.0f %10s\n", batch, ns[0], ns[1],
                ns[0] <= ns[1] ? "copy" : "revoke");
  }
}

// L5 boundary: the app receives multi-KB buffers from the I/O compartment —
// revocation's sweet spot. (L2 ownership stays kCopy: see below.)
void MeasuredL5Table() {
  using namespace cio;  // NOLINT
  std::printf("\n-- measured: L5 receive mode (multi-page app buffers) --\n");
  std::printf("%8s %16s %16s\n", "msg size", "copy Gbit/s", "revoke Gbit/s");
  for (size_t size : {512, 2048, 8192, 16384}) {
    double gbps[2] = {0, 0};
    int i = 0;
    for (L5ReceiveMode mode : {L5ReceiveMode::kCopy, L5ReceiveMode::kRevoke}) {
      StackConfig client = ciobench::MakeNode(StackProfile::kDualBoundary, 1);
      StackConfig server = ciobench::MakeNode(StackProfile::kDualBoundary, 2);
      client.l5_receive = mode;
      server.l5_receive = mode;
      LinkedPair pair(client, server);
      if (pair.Establish()) {
        gbps[i] = ciobench::BulkTransfer(pair, 150, size).GbitPerSec();
      }
      ++i;
    }
    std::printf("%8zu %16.3f %16.3f\n", size, gbps[0], gbps[1]);
  }
}

// L2 boundary: the ring moves MTU-sized frames — always sub-page, so the
// exploration's answer here is that copying stays cheaper and revocation
// only pays off if the interface batches multiple frames per page.
void MeasuredL2Table() {
  using namespace cio;  // NOLINT
  std::printf("\n-- measured: L2 RX ownership (MTU-sized frames) --\n");
  std::printf("%8s %16s %16s\n", "msg size", "copy Gbit/s", "revoke Gbit/s");
  for (size_t size : {2048, 16384}) {
    double gbps[2] = {0, 0};
    int i = 0;
    for (ReceiveOwnership ownership :
         {ReceiveOwnership::kCopy, ReceiveOwnership::kRevoke}) {
      StackConfig client = ciobench::MakeNode(StackProfile::kDualBoundary, 1);
      StackConfig server = ciobench::MakeNode(StackProfile::kDualBoundary, 2);
      client.l2_positioning = DataPositioning::kSharedPool;
      server.l2_positioning = DataPositioning::kSharedPool;
      client.l2_rx_ownership = ownership;
      server.l2_rx_ownership = ownership;
      LinkedPair pair(client, server);
      if (pair.Establish()) {
        gbps[i] = ciobench::BulkTransfer(pair, 150, size).GbitPerSec();
      }
      ++i;
    }
    std::printf("%8zu %16.3f %16.3f\n", size, gbps[0], gbps[1]);
  }
  std::printf(
      "\nShape (the Section 3.2 exploration's answer): revocation beats the\n"
      "copy once a receive spans multiple pages (the L5 buffer case); for\n"
      "MTU-sized L2 frames a whole page must be revoked per ~1.5 KB, so\n"
      "the early single-fetch copy remains the right choice at L2.\n");
}

}  // namespace

int main() {
  std::printf("== copy vs revocation (receive path) ==\n");
  ModelTable();
  BatchedL5Table();
  MeasuredL5Table();
  MeasuredL2Table();
  return 0;
}
