// Open-loop load harness for the multi-tenant confidential server.
//
// For each of the four Figure-5 profile corners, 64 clients each run a
// deterministic open-loop arrival schedule (SimClock-driven: arrivals do
// NOT wait for completions) of fixed-size echo requests against one
// ConfidentialServer. Reported per profile:
//
//   * throughput — echoes completed per simulated second,
//   * fairness   — min/max per-client goodput rate (deficit round-robin
//                  should keep this near 1; the gate is >= 0.5),
//   * latency    — p50/p95/p99 from *scheduled arrival* to echo receipt
//                  (open-loop: queueing during recovery counts against us).
//
// On the dual-boundary profile the run additionally takes the fault
// matrix mid-transfer — a 12 ms link kill (past the TCP retry budget, so
// every connection dies and must reconnect + reattach) followed by a
// stalled-counter window — and must still complete with ZERO lost
// messages. A separate admission probe per profile verifies rejections
// beyond the connection cap are orderly: typed client-side failure, no
// crash, table bounded.
//
// Exit code is the gate (CI runs this in both plain and sanitizer jobs):
// non-zero when any profile fails establishment, completion, fairness,
// zero-loss, or orderly admission. `--json <path>` writes BENCH_server.json.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "src/prof/profiler.h"
#include "src/serve/harness.h"

namespace {

using cio::StackProfile;
using cioserve::MultiClientWorld;

constexpr size_t kClients = 64;
constexpr size_t kMessagesPerClient = 16;
constexpr size_t kMessageBytes = 512;
constexpr uint64_t kArrivalIntervalNs = 250'000;  // per client
constexpr uint64_t kClientStaggerNs = 5'000;

struct Row {
  std::string profile;
  bool established = false;
  bool completed = false;
  bool zero_lost = false;
  bool admission_orderly = false;
  double throughput_msgs_per_sec = 0.0;
  double fairness = 0.0;  // min/max per-client goodput rate
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  uint64_t lost = 0;
  uint64_t recovered = 0;
  uint64_t rejected_admission = 0;
  uint64_t fault_events = 0;

  bool Ok() const {
    return established && completed && zero_lost && admission_orderly &&
           fairness >= 0.5;
  }
};

double Percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) {
    return 0.0;
  }
  size_t index = static_cast<size_t>(q * static_cast<double>(
                                             sorted_us.size() - 1));
  return sorted_us[index];
}

// The 64-client open-loop echo run (with the fault matrix on the
// dual-boundary profile). When `prof` is non-null it is attached to the
// server node and reset after establishment, so the profile covers the
// steady-state load (including the fault matrix) and none of the
// handshake storm.
void RunLoadPoint(StackProfile profile, Row& row,
                  cioprof::ProfRegistry* prof = nullptr) {
  MultiClientWorld::Options options;
  options.profile = profile;
  options.num_clients = kClients;
  options.seed = 8800 + static_cast<uint64_t>(profile);
  options.server_config.max_connections = kClients;
  options.server_config.reattach_timeout_ns = 2'000'000'000;
  options.server_profiler = prof;
  MultiClientWorld world(options);
  if (!world.EstablishAll(120000)) {
    return;
  }
  row.established = true;
  if (prof != nullptr) {
    prof->Reset();
  }

  // Deterministic open-loop schedule: client i's m-th request is DUE at
  // start + i*stagger + m*interval, no matter what the server or the host
  // is doing at that moment.
  const uint64_t start_ns = world.clock.now_ns() + 100'000;
  struct ClientState {
    size_t offered = 0;    // next message index to offer
    size_t accepted = 0;   // messages the channel took so far
    size_t echoed = 0;
    std::deque<uint64_t> in_flight_due_ns;  // FIFO: delivery is in-order
    uint64_t last_echo_ns = 0;
  };
  std::vector<ClientState> state(kClients);
  std::vector<double> latencies_us;
  latencies_us.reserve(kClients * kMessagesPerClient);
  ciobase::Buffer payload(kMessageBytes, 0x42);

  const bool with_faults = profile == StackProfile::kDualBoundary;
  // Mid-transfer: after ~a third of the schedule has fired.
  const uint64_t fault1_ns =
      start_ns + kMessagesPerClient / 3 * kArrivalIntervalNs;
  bool fault1_armed = with_faults;
  bool fault2_armed = with_faults;

  auto all_done = [&] {
    for (size_t i = 0; i < kClients; ++i) {
      if (state[i].echoed < kMessagesPerClient ||
          !world.clients[i]->Ready()) {
        return false;
      }
    }
    return true;
  };

  for (int round = 0; round < 400000 && !all_done(); ++round) {
    uint64_t now = world.clock.now_ns();
    if (fault1_armed && now >= fault1_ns) {
      fault1_armed = false;
      world.server_node->adversary().InjectFault(
          {ciohost::FaultStrategy::kLinkKill, now, 12'000'000});
    }
    if (fault2_armed && now >= fault1_ns + 20'000'000) {
      fault2_armed = false;
      world.server_node->adversary().InjectFault(
          {ciohost::FaultStrategy::kStallCounters, now, 2'000'000});
    }
    for (size_t i = 0; i < kClients; ++i) {
      ClientState& client = state[i];
      // Open-loop arrivals: everything due by now is offered; the latency
      // clock for each message started at its due time regardless of when
      // the (possibly recovering) channel accepts it.
      while (client.offered < kMessagesPerClient &&
             now >= start_ns + i * kClientStaggerNs +
                        client.offered * kArrivalIntervalNs) {
        ++client.offered;
      }
      while (client.accepted < client.offered &&
             world.clients[i]->Ready() &&
             world.clients[i]->SendMessage(payload).ok()) {
        client.in_flight_due_ns.push_back(start_ns + i * kClientStaggerNs +
                                          client.accepted *
                                              kArrivalIntervalNs);
        ++client.accepted;
      }
      while (world.clients[i]->ReceiveMessage().ok()) {
        if (!client.in_flight_due_ns.empty()) {
          uint64_t due = client.in_flight_due_ns.front();
          client.in_flight_due_ns.pop_front();
          latencies_us.push_back(
              static_cast<double>(now - std::min(due, now)) / 1000.0);
        }
        ++client.echoed;
        client.last_echo_ns = now;
      }
    }
    world.EchoRound();
    world.Pump();
  }

  row.completed = all_done();
  uint64_t lost = 0;
  for (auto& client : world.clients) {
    lost += client->recovery_stats().messages_lost;
  }
  row.lost = lost;
  row.zero_lost = lost == 0;
  row.recovered = world.server->stats().recovered;
  row.fault_events = world.server_node->adversary().fault_events();

  if (row.completed) {
    uint64_t first_due = start_ns;
    uint64_t last_echo = 0;
    double min_rate = 0.0;
    double max_rate = 0.0;
    for (size_t i = 0; i < kClients; ++i) {
      last_echo = std::max(last_echo, state[i].last_echo_ns);
      uint64_t first = start_ns + i * kClientStaggerNs;
      double span_s =
          static_cast<double>(state[i].last_echo_ns - first) / 1e9;
      double rate = span_s > 0
                        ? static_cast<double>(kMessagesPerClient) / span_s
                        : 0.0;
      min_rate = i == 0 ? rate : std::min(min_rate, rate);
      max_rate = i == 0 ? rate : std::max(max_rate, rate);
    }
    double total_s = static_cast<double>(last_echo - first_due) / 1e9;
    row.throughput_msgs_per_sec =
        total_s > 0
            ? static_cast<double>(kClients * kMessagesPerClient) / total_s
            : 0.0;
    row.fairness = max_rate > 0 ? min_rate / max_rate : 0.0;
    std::sort(latencies_us.begin(), latencies_us.end());
    row.p50_us = Percentile(latencies_us, 0.50);
    row.p95_us = Percentile(latencies_us, 0.95);
    row.p99_us = Percentile(latencies_us, 0.99);
  }
}

// Small over-capacity probe: 6 clients race for 4 slots. Rejections must
// be typed client-side failures, the table must stay at the cap, and the
// admitted majority must keep working.
void RunAdmissionProbe(StackProfile profile, Row& row) {
  MultiClientWorld::Options options;
  options.profile = profile;
  options.num_clients = 6;
  options.server_config.max_connections = 4;
  options.seed = 9900 + static_cast<uint64_t>(profile);
  MultiClientWorld world(options);
  if (!world.server->Start().ok()) {
    return;
  }
  for (auto& client : world.clients) {
    if (!client->Connect(world.server_node->ip(), world.server->config().port)
             .ok()) {
      return;
    }
  }
  world.PumpUntil(
      [&] {
        size_t settled = 0;
        for (auto& client : world.clients) {
          settled += (client->Ready() || client->Failed()) ? 1 : 0;
        }
        return settled == world.clients.size();
      },
      200000);
  size_t ready = 0;
  size_t failed_typed = 0;
  for (auto& client : world.clients) {
    ready += client->Ready() ? 1 : 0;
    failed_typed += client->Failed() ? 1 : 0;
  }
  row.rejected_admission = world.server->stats().rejected_admission;
  row.admission_orderly = ready == 4 && failed_typed == 2 &&
                          world.server->active_connections() <= 4 &&
                          row.rejected_admission >= 2;
}

void WriteJson(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "  {\"profile\": \"%s\", \"clients\": %zu, "
        "\"messages_per_client\": %zu, \"msg_size\": %zu, \"ok\": %s, "
        "\"throughput_msgs_per_sec\": %.1f, \"fairness\": %.3f, "
        "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
        "\"lost\": %llu, \"recovered\": %llu, "
        "\"rejected_admission\": %llu, \"fault_events\": %llu}%s\n",
        r.profile.c_str(), kClients, kMessagesPerClient, kMessageBytes,
        r.Ok() ? "true" : "false", r.throughput_msgs_per_sec, r.fairness,
        r.p50_us, r.p95_us, r.p99_us,
        static_cast<unsigned long long>(r.lost),
        static_cast<unsigned long long>(r.recovered),
        static_cast<unsigned long long>(r.rejected_admission),
        static_cast<unsigned long long>(r.fault_events),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* profile_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    }
  }

  const StackProfile kProfiles[] = {
      StackProfile::kSyscallL5, StackProfile::kPassthroughL2,
      StackProfile::kHardenedVirtio, StackProfile::kDualBoundary};

  std::printf("== server load: %zu clients x %zu msgs x %zuB, open loop ==\n",
              kClients, kMessagesPerClient, kMessageBytes);
  std::printf("%-18s %10s %8s %8s %8s %8s %5s %5s %6s\n", "profile", "msgs/s",
              "fair", "p50us", "p95us", "p99us", "lost", "rec", "adm-rej");
  std::printf("%s\n", std::string(84, '-').c_str());

  std::vector<Row> rows;
  bool all_ok = true;
  std::string profile_json = "[";
  bool profile_first = true;
  for (StackProfile profile : kProfiles) {
    Row row;
    row.profile = std::string(cio::StackProfileName(profile));
    cioprof::ProfRegistry prof;
    RunLoadPoint(profile, row, profile_path != nullptr ? &prof : nullptr);
    if (profile_path != nullptr) {
      prof.AppendJsonRows(&profile_json, row.profile, "server-load",
                          &profile_first);
      if (profile == StackProfile::kDualBoundary) {
        // The headline question: where does the dual-boundary server's time
        // go under load? Print the flame, and gate the attribution — at
        // least 90% of in-round time must land in a named child probe.
        std::printf("\n-- dual-boundary server flame (steady-state load) --\n");
        std::printf("%s\n", prof.ToFlameSummary().c_str());
        if (prof.unattributed_pct() >= 10.0) {
          std::printf("profile attribution gate FAILED: "
                      "unattributed %.2f%% >= 10%%\n",
                      prof.unattributed_pct());
          all_ok = false;
        }
      }
    }
    RunAdmissionProbe(profile, row);
    std::printf("%-18s %10.0f %8.3f %8.1f %8.1f %8.1f %5llu %5llu %6llu%s\n",
                row.profile.c_str(), row.throughput_msgs_per_sec,
                row.fairness, row.p50_us, row.p95_us, row.p99_us,
                static_cast<unsigned long long>(row.lost),
                static_cast<unsigned long long>(row.recovered),
                static_cast<unsigned long long>(row.rejected_admission),
                row.Ok() ? "" : "  FAIL");
    if (!row.Ok()) {
      std::printf(
          "    established=%d completed=%d zero_lost=%d admission=%d "
          "fairness=%.3f\n",
          row.established, row.completed, row.zero_lost,
          row.admission_orderly, row.fairness);
      all_ok = false;
    }
    rows.push_back(row);
  }

  if (json_path != nullptr) {
    WriteJson(json_path, rows);
  }
  if (profile_path != nullptr) {
    profile_json += "\n]\n";
    std::FILE* f = std::fopen(profile_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", profile_path);
      return 1;
    }
    std::fwrite(profile_json.data(), 1, profile_json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", profile_path);
  }
  if (!all_ok) {
    std::printf("server load gate FAILED\n");
    return 1;
  }
  std::printf("server load gate passed: %zu clients per profile, "
              "dual-boundary fault matrix zero-loss\n",
              kClients);
  return 0;
}
