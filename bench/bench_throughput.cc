// End-to-end throughput and per-message latency across stack profiles and
// message sizes (TCP + TLS, modeled clock). Complements fig5_design_space
// with the size sweep.
//
// Two arms per (profile, size) cell:
//   throughput  — burst submission (8 messages per round share one
//                 doorbell): the async SQ/CQ batching shape.
//   latency     — one message per round with l5_latency_mode set, so the
//                 dual-boundary engine doorbells inline on every submit
//                 (batch depth capped at 1).
// `--mode=latency|throughput` restricts the run to one arm; default is both.
//
// `--json <path>` additionally writes the table as a JSON array, one object
// per (profile, size, mode) cell — the bench-trajectory format consumed by
// tools/run_bench.sh to track datapath performance across revisions.
//
// `--profile <path>` runs an additional profiled pass (the four Figure-5
// profile corners, 4096-byte messages, throughput shape) with an in-sim
// cycle-accounting registry attached to each side, and writes the per-stage
// attribution rows — {profile, arm, probe} keyed, arms throughput-tx
// (client node) and throughput-rx (server node) — as a JSON array.
// Deterministic: the profile is measured on the simulated clock, so two
// runs produce byte-identical files.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/prof/profiler.h"

namespace {

struct Row {
  std::string profile;
  std::string mode;
  size_t size = 0;
  bool ok = false;
  double msgs_per_sec = 0.0;
  double gbit_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

void WriteJson(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"profile\": \"%s\", \"mode\": \"%s\", \"msg_size\": %zu, "
                 "\"ok\": %s, \"msgs_per_sec\": %.1f, \"gbit_per_sec\": %.4f, "
                 "\"p50_us\": %.2f, \"p99_us\": %.2f}%s\n",
                 r.profile.c_str(), r.mode.c_str(), r.size,
                 r.ok ? "true" : "false", r.msgs_per_sec, r.gbit_per_sec,
                 r.p50_us, r.p99_us, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

// Profiled pass: one linked pair per Figure-5 corner, 4096-byte messages in
// the burst (throughput) shape, a registry on each node. Both sides of the
// transfer are interesting — the client pays the submit/seal path, the
// server pays harvest/open — so each emits its own arm.
void RunProfiledPass(const char* path) {
  using namespace cio;  // NOLINT
  const StackProfile kCorners[] = {
      StackProfile::kSyscallL5, StackProfile::kPassthroughL2,
      StackProfile::kHardenedVirtio, StackProfile::kDualBoundary};
  std::string out = "[";
  bool first = true;
  std::printf("== profiled pass (4096B, throughput shape) ==\n");
  for (StackProfile profile : kCorners) {
    cioprof::ProfRegistry client_reg;
    cioprof::ProfRegistry server_reg;
    StackConfig client = ciobench::MakeNode(profile, 1);
    StackConfig server = ciobench::MakeNode(profile, 2);
    client.profiler = &client_reg;
    server.profiler = &server_reg;
    LinkedPair pair(client, server);
    if (!pair.Establish()) {
      std::printf("%-18s establish failed (profiled pass)\n",
                  std::string(StackProfileName(profile)).c_str());
      continue;
    }
    // Establishment noise out of the profile: measure steady state only.
    client_reg.Reset();
    server_reg.Reset();
    auto result = ciobench::BurstTransfer(pair, 200, 4096, 8);
    std::printf("%-18s profiled: %s, tx unattributed %.1f%%, "
                "rx unattributed %.1f%%\n",
                std::string(StackProfileName(profile)).c_str(),
                result.ok ? "ok" : "INCOMPLETE",
                client_reg.unattributed_pct(), server_reg.unattributed_pct());
    client_reg.AppendJsonRows(&out, StackProfileName(profile),
                              "throughput-tx", &first);
    server_reg.AppendJsonRows(&out, StackProfileName(profile),
                              "throughput-rx", &first);
  }
  out += "\n]\n";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cio;  // NOLINT
  const char* json_path = nullptr;
  const char* profile_path = nullptr;
  bool run_throughput = true;
  bool run_latency = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (std::strcmp(argv[i], "--mode=throughput") == 0) {
      run_latency = false;
    } else if (std::strcmp(argv[i], "--mode=latency") == 0) {
      run_throughput = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--mode=latency|throughput] [--json <path>] "
                   "[--profile <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  const size_t kSizes[] = {256, 1400, 4096, 16384};
  std::vector<Row> rows;
  std::printf("== throughput / latency (modeled) ==\n");
  std::printf("%-18s %-10s %8s %12s %12s %10s %10s\n", "profile", "mode",
              "msg size", "msgs/s", "Gbit/s", "p50 us", "p99 us");
  std::printf("%s\n", std::string(88, '-').c_str());
  for (StackProfile profile : AllStackProfiles()) {
    for (size_t size : kSizes) {
      for (int arm = 0; arm < 2; ++arm) {
        const bool latency_arm = arm == 1;
        if (latency_arm ? !run_latency : !run_throughput) {
          continue;
        }
        const char* mode = latency_arm ? "latency" : "throughput";
        StackConfig client = ciobench::MakeNode(profile, 1);
        StackConfig server = ciobench::MakeNode(profile, 2);
        if (latency_arm) {
          client.l5_latency_mode = true;
          server.l5_latency_mode = true;
        }
        LinkedPair pair(client, server);
        if (!pair.Establish()) {
          std::printf("%-18s %-10s %8zu  establish failed\n",
                      std::string(StackProfileName(profile)).c_str(), mode,
                      size);
          rows.push_back({std::string(StackProfileName(profile)), mode, size,
                          false, 0.0, 0.0, 0.0, 0.0});
          continue;
        }
        size_t count = size >= 16384 ? 100 : 200;
        auto result =
            ciobench::BurstTransfer(pair, count, size, latency_arm ? 1 : 8);
        std::printf("%-18s %-10s %8zu %12.0f %12.3f %10.1f %10.1f%s\n",
                    std::string(StackProfileName(profile)).c_str(), mode, size,
                    result.MsgPerSec(), result.GbitPerSec(), result.p50_us,
                    result.p99_us, result.ok ? "" : "  (incomplete)");
        rows.push_back({std::string(StackProfileName(profile)), mode, size,
                        result.ok, result.MsgPerSec(), result.GbitPerSec(),
                        result.p50_us, result.p99_us});
      }
    }
  }
  if (json_path != nullptr) {
    WriteJson(json_path, rows);
  }
  if (profile_path != nullptr) {
    RunProfiledPass(profile_path);
  }
  return 0;
}
