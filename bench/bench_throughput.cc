// End-to-end throughput across stack profiles and message sizes
// (TCP + TLS, modeled clock). Complements fig5_design_space with the
// size sweep.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace cio;  // NOLINT
  const size_t kSizes[] = {256, 1400, 4096, 16384};
  std::printf("== throughput (modeled) ==\n");
  std::printf("%-18s %8s %12s %12s\n", "profile", "msg size", "msgs/s",
              "Gbit/s");
  std::printf("%s\n", std::string(56, '-').c_str());
  for (StackProfile profile : AllStackProfiles()) {
    for (size_t size : kSizes) {
      LinkedPair pair(ciobench::MakeNode(profile, 1),
                      ciobench::MakeNode(profile, 2));
      if (!pair.Establish()) {
        std::printf("%-18s %8zu  establish failed\n",
                    std::string(StackProfileName(profile)).c_str(), size);
        continue;
      }
      size_t count = size >= 16384 ? 100 : 200;
      auto result = ciobench::BulkTransfer(pair, count, size);
      std::printf("%-18s %8zu %12.0f %12.3f%s\n",
                  std::string(StackProfileName(profile)).c_str(), size,
                  result.MsgPerSec(), result.GbitPerSec(),
                  result.ok ? "" : "  (incomplete)");
    }
  }
  return 0;
}
