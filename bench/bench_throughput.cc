// End-to-end throughput across stack profiles and message sizes
// (TCP + TLS, modeled clock). Complements fig5_design_space with the
// size sweep.
//
// `--json <path>` additionally writes the table as a JSON array, one object
// per (profile, size) cell — the bench-trajectory format consumed by
// tools/run_bench.sh to track datapath performance across revisions.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"

namespace {

struct Row {
  std::string profile;
  size_t size = 0;
  bool ok = false;
  double msgs_per_sec = 0.0;
  double gbit_per_sec = 0.0;
};

void WriteJson(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"profile\": \"%s\", \"msg_size\": %zu, \"ok\": %s, "
                 "\"msgs_per_sec\": %.1f, \"gbit_per_sec\": %.4f}%s\n",
                 r.profile.c_str(), r.size, r.ok ? "true" : "false",
                 r.msgs_per_sec, r.gbit_per_sec,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cio;  // NOLINT
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const size_t kSizes[] = {256, 1400, 4096, 16384};
  std::vector<Row> rows;
  std::printf("== throughput (modeled) ==\n");
  std::printf("%-18s %8s %12s %12s\n", "profile", "msg size", "msgs/s",
              "Gbit/s");
  std::printf("%s\n", std::string(56, '-').c_str());
  for (StackProfile profile : AllStackProfiles()) {
    for (size_t size : kSizes) {
      LinkedPair pair(ciobench::MakeNode(profile, 1),
                      ciobench::MakeNode(profile, 2));
      if (!pair.Establish()) {
        std::printf("%-18s %8zu  establish failed\n",
                    std::string(StackProfileName(profile)).c_str(), size);
        rows.push_back({std::string(StackProfileName(profile)), size, false,
                        0.0, 0.0});
        continue;
      }
      size_t count = size >= 16384 ? 100 : 200;
      auto result = ciobench::BulkTransfer(pair, count, size);
      std::printf("%-18s %8zu %12.0f %12.3f%s\n",
                  std::string(StackProfileName(profile)).c_str(), size,
                  result.MsgPerSec(), result.GbitPerSec(),
                  result.ok ? "" : "  (incomplete)");
      rows.push_back({std::string(StackProfileName(profile)), size, result.ok,
                      result.MsgPerSec(), result.GbitPerSec()});
    }
  }
  if (json_path != nullptr) {
    WriteJson(json_path, rows);
  }
  return 0;
}
