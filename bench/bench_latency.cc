// Round-trip latency across stack profiles (64-byte ping-pong, modeled
// clock). The syscall profile pays two host exits per message in each
// direction; the dual boundary pays compartment switches instead.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace cio;  // NOLINT
  std::printf("== latency (modeled RTT, 64B ping-pong) ==\n");
  std::printf("%-18s %12s %14s %14s\n", "profile", "RTT us", "host exits",
              "cmpt switches");
  std::printf("%s\n", std::string(62, '-').c_str());
  for (StackProfile profile : AllStackProfiles()) {
    LinkedPair pair(ciobench::MakeNode(profile, 1),
                    ciobench::MakeNode(profile, 2));
    if (!pair.Establish()) {
      std::printf("%-18s  establish failed\n",
                  std::string(StackProfileName(profile)).c_str());
      continue;
    }
    pair.client->costs().ResetCounters();
    double rtt_ns = ciobench::PingPongRtt(pair, 50);
    std::printf("%-18s %12.1f %14llu %14llu\n",
                std::string(StackProfileName(profile)).c_str(),
                rtt_ns / 1000.0,
                static_cast<unsigned long long>(
                    pair.client->costs().counter("host_exits")),
                static_cast<unsigned long long>(
                    pair.client->costs().counter("compartment_switches")));
  }
  std::printf(
      "\nNote: RTT includes two fabric traversals (20 us each way by\n"
      "default); the profile differences on top are the boundary costs.\n");
  return 0;
}
