// Regenerates Figure 5: the confidential-I/O design space — security (app
// TCB size, observability by the host) versus performance — measured on
// this repository's four stack profiles, which map onto the paper's
// annotated systems:
//
//   syscall-l5       ~ Graphene / CCF            (TCB S,  Obs XL, slow)
//   passthrough-l2   ~ ShieldBox/SafeBricks/rkt-io (TCB L, Obs M,  fast)
//   hardened-virtio  ~ lift-and-shift CVM stacks  (TCB L,  Obs M,  mid)
//   dual-boundary    = this work                  (TCB S,  Obs M,  fast)
//
// Performance is a bulk TCP+TLS transfer measured against the modeled
// clock (boundary crossings, copies, page ops are charged; see
// src/base/clock.h). Absolute numbers are simulation-relative; the figure's
// claim is the *shape*: this work reaches passthrough-class performance and
// syscall-class TCB at network-level observability.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/cio/tcb.h"

int main() {
  using namespace cio;  // NOLINT
  std::printf("== Figure 5: design space ==\n\n");
  std::printf("%-18s %12s %12s %10s %14s %12s\n", "profile", "thru (rel)",
              "Gbit/s(sim)", "appTCB KLoC", "xnet bits/op", "len entropy");
  std::printf("%s\n", std::string(86, '-').c_str());

  double baseline_gbps = 0.0;
  struct Row {
    StackProfile profile;
    double gbps;
    double tcb_kloc;
    double bits_per_op;
    double length_entropy;
  };
  std::vector<Row> rows;
  for (StackProfile profile : AllStackProfiles()) {
    cio::LinkedPair pair(ciobench::MakeNode(profile, 1),
                         ciobench::MakeNode(profile, 2));
    if (!pair.Establish()) {
      std::printf("%-18s  FAILED TO ESTABLISH\n",
                  std::string(StackProfileName(profile)).c_str());
      continue;
    }
    pair.client->observability().Clear();
    auto result = ciobench::BulkTransfer(pair, 400, 1024);
    Row row;
    row.profile = profile;
    row.gbps = result.GbitPerSec();
    row.tcb_kloc = static_cast<double>(ProfileTcb(profile).AppTcbLines()) /
                   1000.0;
    row.bits_per_op = pair.client->observability().BeyondNetworkBitsPerOp(
        pair.client->app_ops());
    row.length_entropy =
        pair.client->observability().PacketLengthEntropyBits();
    rows.push_back(row);
    if (profile == StackProfile::kPassthroughL2) {
      baseline_gbps = row.gbps;
    }
  }
  for (const Row& row : rows) {
    std::printf("%-18s %11.2fx %12.2f %10.1f %14.1f %12.2f\n",
                std::string(StackProfileName(row.profile)).c_str(),
                baseline_gbps == 0 ? 0 : row.gbps / baseline_gbps, row.gbps,
                row.tcb_kloc, row.bits_per_op, row.length_entropy);
  }

  std::printf(
      "\nShape checks (paper's Figure 5 claims):\n");
  auto find = [&](StackProfile profile) -> const Row* {
    for (const Row& row : rows) {
      if (row.profile == profile) {
        return &row;
      }
    }
    return nullptr;
  };
  const Row* syscall = find(StackProfile::kSyscallL5);
  const Row* passthrough = find(StackProfile::kPassthroughL2);
  const Row* dual = find(StackProfile::kDualBoundary);
  const Row* virtio = find(StackProfile::kHardenedVirtio);
  if (syscall && passthrough && dual && virtio) {
    std::printf("  this-work throughput within %.0f%% of passthrough: %s\n",
                100.0 * (1.0 - dual->gbps / passthrough->gbps),
                dual->gbps > 0.5 * passthrough->gbps ? "yes" : "NO");
    std::printf("  this-work faster than syscall-L5: %s (%.1fx)\n",
                dual->gbps > syscall->gbps ? "yes" : "NO",
                syscall->gbps == 0 ? 0 : dual->gbps / syscall->gbps);
    std::printf("  this-work TCB ~= syscall TCB, << passthrough TCB: %s\n",
                dual->tcb_kloc < 1.2 * syscall->tcb_kloc &&
                        dual->tcb_kloc < 0.7 * passthrough->tcb_kloc
                    ? "yes"
                    : "NO");
    std::printf("  this-work leaks ~no beyond-network metadata, syscall "
                "does: %s (%.1f vs %.1f bits/op)\n",
                dual->bits_per_op < 1.0 && syscall->bits_per_op > 10.0
                    ? "yes"
                    : "NO",
                dual->bits_per_op, syscall->bits_per_op);
    std::printf("  hardened-virtio slower than this-work: %s (%.2fx)\n",
                virtio->gbps < dual->gbps ? "yes" : "NO",
                virtio->gbps == 0 ? 0 : dual->gbps / virtio->gbps);
    const Row* tunneled = find(StackProfile::kTunneledL2);
    if (tunneled != nullptr) {
      std::printf("  tunneled-l2 (LightBox corner) hides even packet sizes "
                  "(%.2f vs %.2f entropy bits) at the largest TCB: %s\n",
                  tunneled->length_entropy, passthrough->length_entropy,
                  tunneled->length_entropy < 0.3 &&
                          tunneled->tcb_kloc > dual->tcb_kloc
                      ? "yes"
                      : "NO");
    }
  }
  return 0;
}
