// Shared helpers for the table benchmarks: linked-pair message pumping and
// throughput/latency measurement against the modeled clock.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <deque>
#include <vector>

#include "src/base/rng.h"
#include "src/cio/engine.h"

namespace ciobench {

inline cio::StackConfig MakeNode(cio::StackProfile profile, uint32_t id) {
  cio::StackConfig config = cio::StackConfig::DefaultsFor(profile, id);
  config.seed = 500 + id;
  return config;
}

struct TransferResult {
  bool ok = false;
  uint64_t modeled_ns = 0;   // simulated time for the whole transfer
  uint64_t payload_bytes = 0;
  size_t messages = 0;

  double GbitPerSec() const {
    return modeled_ns == 0
               ? 0.0
               : 8.0 * static_cast<double>(payload_bytes) /
                     static_cast<double>(modeled_ns);
  }
  double MsgPerSec() const {
    return modeled_ns == 0 ? 0.0
                           : 1e9 * static_cast<double>(messages) /
                                 static_cast<double>(modeled_ns);
  }
};

// Streams `count` messages of `size` bytes client->server (server drains),
// measuring modeled time from first send to last delivery.
inline TransferResult BulkTransfer(cio::LinkedPair& pair, size_t count,
                                   size_t size) {
  TransferResult result;
  ciobase::Rng rng(1);
  ciobase::Buffer message = rng.Bytes(size);
  uint64_t start_ns = pair.clock.now_ns();
  size_t sent = 0;
  size_t received = 0;
  bool done = pair.PumpUntil(
      [&] {
        if (sent < count && pair.client->SendMessage(message).ok()) {
          ++sent;
        }
        while (pair.server->ReceiveMessage().ok()) {
          ++received;
        }
        return received == count;
      },
      2'000'000, 5'000);
  result.ok = done;
  result.modeled_ns = pair.clock.now_ns() - start_ns;
  result.payload_bytes = static_cast<uint64_t>(count) * size;
  result.messages = count;
  return result;
}

struct TimedTransferResult : TransferResult {
  double p50_us = 0.0;
  double p99_us = 0.0;
};

// Like BulkTransfer, but submits up to `burst` messages per pump round
// (back-to-back into the async submission queue — one doorbell carries the
// whole burst) and stamps every message from submission to delivery, so the
// per-message latency distribution is measured alongside throughput.
// burst == 1 is the latency-test shape: one message per round, nothing
// queueing behind it.
inline TimedTransferResult BurstTransfer(cio::LinkedPair& pair, size_t count,
                                         size_t size, size_t burst) {
  TimedTransferResult result;
  ciobase::Rng rng(1);
  ciobase::Buffer message = rng.Bytes(size);
  std::deque<uint64_t> sent_at_ns;  // FIFO: delivery is in-order
  std::vector<double> latencies_us;
  latencies_us.reserve(count);
  uint64_t start_ns = pair.clock.now_ns();
  size_t sent = 0;
  size_t received = 0;
  bool done = pair.PumpUntil(
      [&] {
        for (size_t b = 0; b < burst && sent < count; ++b) {
          if (!pair.client->SendMessage(message).ok()) {
            break;
          }
          sent_at_ns.push_back(pair.clock.now_ns());
          ++sent;
        }
        while (pair.server->ReceiveMessage().ok()) {
          if (!sent_at_ns.empty()) {
            latencies_us.push_back(
                static_cast<double>(pair.clock.now_ns() -
                                    sent_at_ns.front()) /
                1000.0);
            sent_at_ns.pop_front();
          }
          ++received;
        }
        return received == count;
      },
      2'000'000, 5'000);
  result.ok = done;
  result.modeled_ns = pair.clock.now_ns() - start_ns;
  result.payload_bytes = static_cast<uint64_t>(count) * size;
  result.messages = count;
  if (!latencies_us.empty()) {
    std::sort(latencies_us.begin(), latencies_us.end());
    auto at = [&](double q) {
      return latencies_us[static_cast<size_t>(
          q * static_cast<double>(latencies_us.size() - 1))];
    };
    result.p50_us = at(0.50);
    result.p99_us = at(0.99);
  }
  return result;
}

// Round-trip latency: one small message each way, repeated; returns the
// average modeled RTT in ns.
inline double PingPongRtt(cio::LinkedPair& pair, size_t rounds,
                          size_t size = 64) {
  ciobase::Rng rng(2);
  ciobase::Buffer ping = rng.Bytes(size);
  uint64_t start_ns = pair.clock.now_ns();
  size_t completed = 0;
  bool in_flight = false;
  pair.PumpUntil(
      [&] {
        if (!in_flight) {
          if (pair.client->SendMessage(ping).ok()) {
            in_flight = true;
          }
          return false;
        }
        auto at_server = pair.server->ReceiveMessage();
        if (at_server.ok()) {
          pair.server->SendMessage(*at_server);
        }
        if (pair.client->ReceiveMessage().ok()) {
          ++completed;
          in_flight = false;
        }
        return completed == rounds;
      },
      2'000'000, 2'000);
  if (completed == 0) {
    return 0.0;
  }
  return static_cast<double>(pair.clock.now_ns() - start_ns) /
         static_cast<double>(completed);
}

}  // namespace ciobench

#endif  // BENCH_BENCH_UTIL_H_
