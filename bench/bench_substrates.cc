// Substrate microbenchmarks (google-benchmark, real wall time): crypto
// primitives, TLS record protection, TCP bulk transfer through the full
// stack, virtqueue and hardened-ring primitive operations, and the masking
// helpers. These are the building blocks whose costs the table benches
// aggregate.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/base/bits.h"
#include "src/base/rng.h"
#include "src/crypto/aead.h"
#include "src/crypto/sha256.h"
#include "src/net/fabric.h"
#include "src/net/stack.h"
#include "src/tls/session.h"

namespace {

void BM_Sha256(benchmark::State& state) {
  ciobase::Rng rng(1);
  ciobase::Buffer data = rng.Bytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ciocrypto::Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AeadSeal(benchmark::State& state) {
  ciobase::Rng rng(2);
  ciobase::Buffer key = rng.Bytes(ciocrypto::kAeadKeySize);
  ciobase::Buffer nonce = rng.Bytes(ciocrypto::kAeadNonceSize);
  ciobase::Buffer data = rng.Bytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ciocrypto::AeadSeal(key, nonce, {}, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AeadOpen(benchmark::State& state) {
  ciobase::Rng rng(3);
  ciobase::Buffer key = rng.Bytes(ciocrypto::kAeadKeySize);
  ciobase::Buffer nonce = rng.Bytes(ciocrypto::kAeadNonceSize);
  ciobase::Buffer sealed = ciocrypto::AeadSeal(
      key, nonce, {}, rng.Bytes(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ciocrypto::AeadOpen(key, nonce, {}, sealed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadOpen)->Arg(1024)->Arg(16384);

void BM_TlsRecordRoundTrip(benchmark::State& state) {
  ciobase::Buffer psk = ciobase::BufferFromString("bench-psk-32-bytes......");
  ciotls::TlsSession client(ciotls::TlsRole::kClient, psk, "b", 1);
  ciotls::TlsSession server(ciotls::TlsRole::kServer, psk, "b", 2);
  client.Start();
  server.Start();
  for (int i = 0; i < 4; ++i) {
    (void)server.Feed(client.TakeOutput());
    (void)client.Feed(server.TakeOutput());
  }
  ciobase::Rng rng(4);
  ciobase::Buffer message = rng.Bytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    (void)client.WriteMessage(message);
    (void)server.Feed(client.TakeOutput());
    benchmark::DoNotOptimize(server.ReadMessage());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TlsRecordRoundTrip)->Arg(256)->Arg(4096);

void BM_TcpBulk(benchmark::State& state) {
  // Full TCP/IP stack over a zero-latency fabric, 64 KiB per iteration.
  ciobase::SimClock clock;
  cionet::Fabric fabric(&clock, 5, cionet::Fabric::Options{0, 0, 0, 9216});
  cionet::DirectFabricPort port_a(&fabric, "a", cionet::MacAddress::FromId(1));
  cionet::DirectFabricPort port_b(&fabric, "b", cionet::MacAddress::FromId(2));
  cionet::NetStack::Config config_a;
  config_a.ip = cionet::Ipv4Address::FromOctets(10, 0, 0, 1);
  cionet::NetStack::Config config_b;
  config_b.ip = cionet::Ipv4Address::FromOctets(10, 0, 0, 2);
  config_b.seed = 2;
  cionet::NetStack stack_a(&port_a, &clock, config_a);
  cionet::NetStack stack_b(&port_b, &clock, config_b);
  auto listener = stack_b.TcpListen(80);
  auto client = stack_a.TcpConnect(config_b.ip, 80);
  cionet::SocketId server{};
  for (int i = 0; i < 100; ++i) {
    stack_a.Poll();
    stack_b.Poll();
    auto accepted = stack_b.TcpAccept(*listener);
    if (accepted.ok()) {
      server = *accepted;
    }
    clock.Advance(1000);
  }
  ciobase::Rng rng(6);
  ciobase::Buffer chunk = rng.Bytes(65536);
  uint8_t sink[16384];
  for (auto _ : state) {
    size_t sent = 0;
    size_t received = 0;
    while (received < chunk.size()) {
      if (sent < chunk.size()) {
        auto n = stack_a.TcpSend(
            *client, ciobase::ByteSpan(chunk.data() + sent,
                                       chunk.size() - sent));
        if (n.ok()) {
          sent += *n;
        }
      }
      stack_a.Poll();
      stack_b.Poll();
      auto got = stack_b.TcpReceive(server, sink);
      if (got.ok()) {
        received += *got;
      }
      clock.Advance(1000);
    }
  }
  state.SetBytesProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_TcpBulk);

void BM_MaskIndex(benchmark::State& state) {
  ciobase::Rng rng(7);
  uint64_t value = rng.NextU64();
  for (auto _ : state) {
    value = value * 6364136223846793005ULL + 1;
    benchmark::DoNotOptimize(ciobase::MaskIndex(value, 256));
    benchmark::DoNotOptimize(
        ciobase::MaskOffset(value, 1 << 20, 1 << 11));
  }
}
BENCHMARK(BM_MaskIndex);

void BM_InternetChecksum(benchmark::State& state) {
  ciobase::Rng rng(8);
  ciobase::Buffer data = rng.Bytes(1460);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cionet::InternetChecksum(data));
  }
  state.SetBytesProcessed(state.iterations() * 1460);
}
BENCHMARK(BM_InternetChecksum);

}  // namespace
