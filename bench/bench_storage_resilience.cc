// §3.3 storage crash/fault campaign, exit-code enforced.
//
// Three matrices:
//  * crash cells — the host block device dies after every stride-th device
//    write, discarding its write-back cache; the guest remounts (journal
//    replay + generation-table reload) and the oracle checks that every
//    acknowledged Put/Delete survived and no torn or invented value was
//    ever served;
//  * transient-fault cells — each storage fault (swallowed doorbells,
//    stalled/garbage counters, torn writes, link kill, dropped
//    completions, bit rot) opens for a 12 ms window mid-workload; the
//    stack must ride it out and return to full service with integrity
//    intact (kTampered detections are fine, wrong values are not);
//  * the rollback probe — host snapshots the image, guest overwrites and
//    flushes, host restores; durable generations must refuse the stale
//    image, and the volatile control arm must demonstrate the gap.
//
// Exits non-zero unless every invariant holds. `--json` emits all three
// matrices as one JSON document for tooling.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/cio/storage_campaign.h"

namespace {

std::string JsonEscape(std::string_view in) {
  std::string out;
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

void PrintCrashJson(const std::vector<cio::StorageCrashCell>& cells) {
  std::printf("  \"crash_cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const auto& cell = cells[i];
    std::printf(
        "    {\"stride\": %llu, \"survived\": %s, \"crashes\": %llu, "
        "\"remounts\": %llu, \"journal_replays\": %llu, "
        "\"ops_attempted\": %zu, \"ops_committed\": %zu, "
        "\"lost_committed\": %llu, \"wrong_values\": %llu, "
        "\"tamper_alarms\": %llu, \"mount_failures\": %llu}%s\n",
        static_cast<unsigned long long>(cell.stride),
        cell.survived ? "true" : "false",
        static_cast<unsigned long long>(cell.crashes),
        static_cast<unsigned long long>(cell.remounts),
        static_cast<unsigned long long>(cell.journal_replays),
        cell.ops_attempted, cell.ops_committed,
        static_cast<unsigned long long>(cell.lost_committed),
        static_cast<unsigned long long>(cell.wrong_values),
        static_cast<unsigned long long>(cell.tamper_alarms),
        static_cast<unsigned long long>(cell.mount_failures),
        i + 1 < cells.size() ? "," : "");
  }
  std::printf("  ],\n");
}

void PrintFaultJson(const std::vector<cio::StorageFaultCell>& cells) {
  std::printf("  \"fault_cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const auto& cell = cells[i];
    std::printf(
        "    {\"fault\": \"%s\", \"recovered\": %s, \"fault_events\": %llu, "
        "\"ring_resets\": %llu, \"watchdog_fires\": %llu, "
        "\"ops_attempted\": %zu, \"ops_committed\": %zu, "
        "\"lost_committed\": %llu, \"wrong_values\": %llu, "
        "\"tampered_reads\": %llu}%s\n",
        JsonEscape(ciohost::FaultStrategyName(cell.fault)).c_str(),
        cell.recovered ? "true" : "false",
        static_cast<unsigned long long>(cell.fault_events),
        static_cast<unsigned long long>(cell.ring_resets),
        static_cast<unsigned long long>(cell.watchdog_fires),
        cell.ops_attempted, cell.ops_committed,
        static_cast<unsigned long long>(cell.lost_committed),
        static_cast<unsigned long long>(cell.wrong_values),
        static_cast<unsigned long long>(cell.tampered_reads),
        i + 1 < cells.size() ? "," : "");
  }
  std::printf("  ],\n");
}

void PrintRollbackJson(const char* name,
                       const cio::StorageRollbackResult& probe) {
  std::printf(
      "  \"%s\": {\"durable_generations\": %s, \"read_detected\": %s, "
      "\"remount_detected\": %s, \"stale_accepted\": %s},\n",
      name, probe.durable_generations ? "true" : "false",
      probe.read_detected ? "true" : "false",
      probe.remount_detected ? "true" : "false",
      probe.stale_accepted ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    }
  }

  cio::StorageCampaignOptions options;
  auto crash_cells = cio::RunStorageCrashCampaign(options);
  auto fault_cells = cio::RunStorageFaultCampaign(options);
  auto durable_probe =
      cio::RunStorageRollbackProbe(/*durable_generations=*/true);
  auto volatile_probe =
      cio::RunStorageRollbackProbe(/*durable_generations=*/false);
  bool holds = cio::StorageInvariantsHold(crash_cells, fault_cells,
                                          durable_probe, volatile_probe);

  if (json) {
    std::printf("{\n");
    PrintCrashJson(crash_cells);
    PrintFaultJson(fault_cells);
    PrintRollbackJson("rollback_durable", durable_probe);
    PrintRollbackJson("rollback_volatile", volatile_probe);
    std::printf("  \"storage_invariants_hold\": %s\n}\n",
                holds ? "true" : "false");
    return holds ? 0 : 1;
  }

  std::printf("== storage crash campaign (%zu strides) ==\n\n%s\n",
              crash_cells.size(),
              cio::StorageCrashTable(crash_cells).c_str());
  std::printf(
      "Claim (crash consistency): every acknowledged Put/Delete is durable\n"
      "(WriteFile journals and flushes before acknowledging); a crash at\n"
      "ANY device-write boundary resolves each in-flight op to either its\n"
      "old or its new state after journal replay — never a torn value.\n\n");

  std::printf("== storage fault campaign (%zu faults, %.1f ms windows) "
              "==\n\n%s\n",
              fault_cells.size(),
              static_cast<double>(options.fault_duration_ns) / 1e6,
              cio::StorageFaultTable(fault_cells).c_str());
  std::printf(
      "Claim (availability + integrity): the ring recovery machinery rides\n"
      "out every transient storage fault, and corruption surfaces only as\n"
      "detected kTampered — a wrong value never reaches the application.\n\n");

  std::printf("== rollback-across-remount probe ==\n\n");
  auto print_probe = [](const char* arm,
                        const cio::StorageRollbackResult& probe) {
    std::printf("%-22s read-detected=%s remount-detected=%s "
                "stale-accepted=%s\n",
                arm, probe.read_detected ? "yes" : "no",
                probe.remount_detected ? "yes" : "no",
                probe.stale_accepted ? "YES" : "no");
  };
  print_probe("durable generations", durable_probe);
  print_probe("volatile (control)", volatile_probe);
  std::printf(
      "\nClaim (freshness): binding the generation-table epoch to the\n"
      "hardware monotonic counter makes image rollback detectable across\n"
      "remounts; the volatile arm shows the attack the counter closes.\n\n");

  std::printf("storage invariants hold: %s\n", holds ? "yes" : "NO");
  return holds ? 0 : 1;
}
