// Session-lifecycle churn bench: the fleet-scale gate for attestation-gated
// admission, transparent rekeying, and cross-instance migration.
//
// Three arms, all on the dual-boundary profile, all exit-code gated:
//
//   * churn    — 64 concurrent client slots cycle connect -> attest ->
//                echo -> orderly disconnect -> reconnect until >= 10,000
//                session lifetimes have completed. Every lifetime
//                re-attests on a fresh transcript; zero messages lost;
//                every registered pool slot back in the free list at the
//                end (the park/reattach leak audit at scale). A probe
//                sub-run with forged / stale / keyless clients must be
//                rejected with EXACTLY the expected kUnauthenticated
//                count — typed, outside the leakage score.
//   * rekey    — 32 clients under closed-loop echo load with an aggressive
//                in-band rekey cadence, plus a kill-link + stalled-counter
//                fault window landing mid-key-update. Zero lost, rekeys
//                actually fired, herd recovered.
//   * migrate  — 32 clients against instance A; half the sessions are
//                sealed out through the SessionVault, shipped via the
//                confidential storage path (ConfidentialStore put/get),
//                and imported into instance B; the clients follow the
//                redirect, re-attest, and delivery stays exactly-once.
//                A bit-flipped seal and a replayed (rolled-back) seal are
//                both typed kTampered.
//
// `--json <path>` writes BENCH_session.json (one row per arm; "arm" is the
// row identity for tools/check_bench.py).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/blockio/store.h"
#include "src/serve/harness.h"
#include "src/tee/monotonic_counter.h"

namespace {

using ciobase::Buffer;
using ciobase::BufferFromString;
using ciobase::StatusCode;
using cio::StackProfile;
using cioserve::ConnId;
using cioserve::MultiClientWorld;
using cioserve::SessionVault;

struct Row {
  std::string arm;
  std::string profile = std::string(
      cio::StackProfileName(StackProfile::kDualBoundary));
  bool ok = false;
  uint64_t lost = 0;
  uint64_t sessions = 0;
  uint64_t rekeys = 0;
  uint64_t migrated = 0;
  uint64_t rejected_unauthenticated = 0;
  uint64_t tamper_rejects = 0;
  double ops_per_sec = 0.0;  // arm-specific rate over simulated time
  std::string detail;        // first failed gate, for the console
};

bool Gate(Row& row, bool condition, const char* what) {
  if (!condition && row.detail.empty()) {
    row.detail = what;
  }
  return condition;
}

// Closed-loop echo: every client keeps at most one message in flight, so
// nothing outruns a resend window across faults or migrations. Returns
// true when every client got `per_client` echoes back, in order.
bool ClosedLoopEcho(MultiClientWorld& world, std::vector<size_t>& sent,
                    std::vector<size_t>& received, size_t per_client,
                    int max_rounds,
                    const std::function<void(int)>& on_round = {}) {
  std::vector<size_t> target(sent);
  for (auto& t : target) {
    t += per_client;
  }
  std::vector<bool> in_flight(world.clients.size(), false);
  for (int round = 0; round < max_rounds; ++round) {
    if (on_round) {
      on_round(round);
    }
    bool done = true;
    for (size_t i = 0; i < world.clients.size(); ++i) {
      auto& client = *world.clients[i];
      if (!in_flight[i] && sent[i] < target[i] && client.Ready()) {
        std::string payload =
            "c" + std::to_string(i) + " m" + std::to_string(sent[i]);
        if (client.SendMessage(BufferFromString(payload)).ok()) {
          ++sent[i];
          in_flight[i] = true;
        }
      }
      for (;;) {
        auto echo = client.ReceiveMessage();
        if (!echo.ok()) {
          break;
        }
        std::string expect =
            "c" + std::to_string(i) + " m" + std::to_string(received[i]);
        if (std::string(reinterpret_cast<const char*>(echo->data()),
                        echo->size()) != expect) {
          return false;
        }
        ++received[i];
        in_flight[i] = false;
      }
      if (received[i] < target[i]) {
        done = false;
      }
    }
    world.EchoRound();
    world.Pump();
    if (done) {
      return true;
    }
  }
  return false;
}

// --- Arm 1: 10k-session churn ------------------------------------------------

constexpr size_t kChurnSlots = 64;
constexpr size_t kChurnCycles = 160;  // 64 * 160 = 10,240 lifetimes

void RunChurnArm(Row& row) {
  row.arm = "churn";
  MultiClientWorld::Options options;
  options.num_clients = kChurnSlots;
  options.seed = 7100;
  options.attestation_key = BufferFromString("fleet-attestation-root");
  options.server_config.max_connections = kChurnSlots;
  MultiClientWorld world(options);
  if (!Gate(row, world.EstablishAll(120000), "establish")) {
    return;
  }

  // Per-slot lifecycle state machine, all 64 slots in flight at once.
  enum class Phase { kWaitAdmit, kWaitEcho, kTeardown, kDone };
  struct Slot {
    Phase phase = Phase::kWaitAdmit;
    size_t cycles = 0;
    bool sent = false;
  };
  std::vector<Slot> slots(kChurnSlots);
  const uint64_t start_ns = world.clock.now_ns();
  uint64_t lifetimes = 0;
  Buffer payload(256, 0x5a);

  bool stuck = false;
  for (int round = 0; round < 2'000'000 && lifetimes < kChurnSlots *
       kChurnCycles && !stuck; ++round) {
    stuck = true;  // any slot making progress clears this
    for (size_t i = 0; i < kChurnSlots; ++i) {
      Slot& slot = slots[i];
      auto& client = *world.clients[i];
      switch (slot.phase) {
        case Phase::kWaitAdmit:
          if (client.Ready() && client.admitted()) {
            if (!slot.sent && client.SendMessage(payload).ok()) {
              slot.sent = true;
            }
            if (slot.sent) {
              slot.phase = Phase::kWaitEcho;
            }
          }
          break;
        case Phase::kWaitEcho:
          if (client.ReceiveMessage().ok()) {
            // Echo landed: this lifetime is complete. Orderly close.
            (void)client.Disconnect();
            slot.sent = false;
            slot.phase = Phase::kTeardown;
          }
          break;
        case Phase::kTeardown:
          // Wait for the server to fully forget this peer before the next
          // connect, so the fresh session can never reattach stale state.
          if (!world.server->ServesPeer(client.ip())) {
            ++lifetimes;
            ++slot.cycles;
            if (slot.cycles >= kChurnCycles) {
              slot.phase = Phase::kDone;
            } else if (client.Connect(world.server_node->ip(),
                                      world.server->config().port)
                           .ok()) {
              slot.phase = Phase::kWaitAdmit;
            }
          }
          break;
        case Phase::kDone:
          break;
      }
      if (slot.phase != Phase::kDone) {
        stuck = false;
      }
    }
    world.EchoRound();
    world.Pump();
  }

  row.sessions = lifetimes;
  uint64_t lost = 0;
  for (auto& client : world.clients) {
    lost += client->recovery_stats().messages_lost;
  }
  row.lost = lost;
  double span_s =
      static_cast<double>(world.clock.now_ns() - start_ns) / 1e9;
  row.ops_per_sec =
      span_s > 0 ? static_cast<double>(lifetimes) / span_s : 0.0;

  bool ok = Gate(row, lifetimes >= 10'000, "lifetimes >= 10k");
  ok &= Gate(row, lost == 0, "zero lost");
  ok &= Gate(row, world.server->stats().rejected_unauthenticated == 0,
             "no spurious rejections");
  ok &= Gate(row, world.server->stats().admitted >= lifetimes,
             "every lifetime attested");
  // Pool accounting at scale: every slot back in the free list once the
  // table is empty.
  ok &= Gate(row,
             world.PumpUntil(
                 [&] {
                   return world.server->active_connections() == 0 &&
                          world.server->parked_sessions() == 0;
                 },
                 200000),
             "table drained");
  cio::L5Channel* l5 = world.server_node->l5();
  ok &= Gate(row, l5 != nullptr && l5->free_slots() ==
                      l5->queue_config().pool_slots,
             "server pool slots balanced");
  for (auto& client : world.clients) {
    cio::L5Channel* cl5 = client->l5();
    ok &= Gate(row, cl5 != nullptr && cl5->free_slots() ==
                        cl5->queue_config().pool_slots,
               "client pool slots balanced");
  }

  // Probe sub-run: forged / stale / keyless credentials, EXACT counts.
  {
    MultiClientWorld::Options probe;
    probe.num_clients = 8;
    probe.seed = 7200;
    probe.attestation_key = BufferFromString("fleet-attestation-root");
    probe.forged_clients = {0, 1};
    probe.stale_clients = {2};
    probe.keyless_clients = {3};
    MultiClientWorld probe_world(probe);
    ok &= Gate(row, probe_world.EstablishAll(120000), "probe establish");
    row.rejected_unauthenticated =
        probe_world.server->stats().rejected_unauthenticated;
    ok &= Gate(row, row.rejected_unauthenticated == 4,
               "exactly 4 typed rejections");
    ok &= Gate(row, probe_world.server->stats().admitted == 4,
               "exactly 4 admissions");
    ok &= Gate(row, probe_world.server->stats().tampered == 0,
               "rejections outside leakage score");
  }
  row.ok = ok;
}

// --- Arm 2: rekey under load -------------------------------------------------

constexpr size_t kRekeyClients = 32;
constexpr size_t kRekeyMessages = 40;

void RunRekeyArm(Row& row) {
  row.arm = "rekey";
  MultiClientWorld::Options options;
  options.num_clients = kRekeyClients;
  options.seed = 7300;
  options.rekey_after_records = 8;
  options.server_config.max_connections = kRekeyClients;
  MultiClientWorld world(options);
  if (!Gate(row, world.EstablishAll(120000), "establish")) {
    return;
  }

  const uint64_t start_ns = world.clock.now_ns();
  std::vector<size_t> sent(kRekeyClients, 0);
  std::vector<size_t> received(kRekeyClients, 0);
  bool fault_armed = true;
  bool completed = ClosedLoopEcho(
      world, sent, received, kRekeyMessages, 600000, [&](int round) {
        // Land the fault window a third of the way in, while key updates
        // are continuously in flight across the dual boundary.
        if (fault_armed && round == 80) {
          fault_armed = false;
          uint64_t now = world.clock.now_ns();
          world.server_node->adversary().InjectFault(
              {ciohost::FaultStrategy::kLinkKill, now, 12'000'000});
          world.server_node->adversary().InjectFault(
              {ciohost::FaultStrategy::kStallCounters, now + 14'000'000,
               2'000'000});
        }
      });

  uint64_t lost = 0;
  uint64_t rekeys = 0;
  for (auto& client : world.clients) {
    lost += client->recovery_stats().messages_lost;
    rekeys += client->rekeys();
  }
  row.lost = lost;
  row.rekeys = rekeys;
  row.sessions = kRekeyClients;
  double span_s =
      static_cast<double>(world.clock.now_ns() - start_ns) / 1e9;
  row.ops_per_sec =
      span_s > 0
          ? static_cast<double>(kRekeyClients * kRekeyMessages) / span_s
          : 0.0;

  bool ok = Gate(row, completed, "completed");
  ok &= Gate(row, lost == 0, "zero lost");
  ok &= Gate(row, rekeys >= kRekeyClients, "rekeys fired");
  ok &= Gate(row, !fault_armed, "fault window landed");
  ok &= Gate(row, world.server_node->adversary().fault_events() > 0,
             "fault events");
  ok &= Gate(row, world.server->stats().recovered >= 1, "herd recovered");
  row.ok = ok;
}

// --- Arm 3: migrate half the sessions ----------------------------------------

constexpr size_t kMigrateClients = 32;

void RunMigrateArm(Row& row) {
  row.arm = "migrate";
  MultiClientWorld::Options options;
  options.num_clients = kMigrateClients;
  options.seed = 7400;
  options.second_server = true;
  options.attestation_key = BufferFromString("fleet-attestation-root");
  options.server_config.max_connections = kMigrateClients;
  MultiClientWorld world(options);
  if (!Gate(row, world.EstablishAll(120000), "establish")) {
    return;
  }

  std::vector<size_t> sent(kMigrateClients, 0);
  std::vector<size_t> received(kMigrateClients, 0);
  bool ok = Gate(row, ClosedLoopEcho(world, sent, received, 8, 600000),
                 "pre-migration echo");

  // The fleet-shared sealing service: one vault (key + monotonic counter)
  // and one confidential store standing in for the transfer path.
  ciotee::MonotonicCounter counter;
  SessionVault vault(BufferFromString("fleet-vault-sealing-key"), &counter);
  ciobase::CostModel store_costs(&world.clock);
  ciotee::TeeMemory store_memory;
  ciotee::CompartmentManager store_compartments(&store_costs);
  ciotee::CompartmentId store_app = store_compartments.Create("app", 1 << 20);
  ciotee::CompartmentId store_io =
      store_compartments.Create("storage", 1 << 20);
  ciohost::Adversary store_adversary(4);
  ciohost::ObservabilityLog store_observability;
  cioblock::ConfidentialStore::Options store_options;
  store_options.ring.block_count = 512;
  store_options.disk_key = BufferFromString("disk-key-aaaaaaaaaaaaaaaaaaaaaa");
  store_options.value_key = BufferFromString("value-key-bbbbbbbbbbbbbbbbbbbb");
  cioblock::ConfidentialStore store(
      &store_memory, &store_compartments, store_app, store_io, &store_costs,
      &store_adversary, &store_observability, &world.clock, store_options);
  ok &= Gate(row, store.Format().ok(), "store format");

  // Quiesced: export every even-indexed session from instance A and ship
  // it through the storage path.
  auto conns = world.server->EstablishedConnections();
  ok &= Gate(row, conns.size() == kMigrateClients, "full table");
  std::vector<ConnId> moving;
  for (size_t i = 0; i < conns.size(); i += 2) {
    moving.push_back(conns[i]);
  }
  const uint64_t migrate_start_ns = world.clock.now_ns();
  for (size_t i = 0; i < moving.size(); ++i) {
    auto sealed = world.server->MigrateSession(
        moving[i], vault, world.server2_node->ip(),
        world.server2->config().port);
    if (!Gate(row, sealed.ok(), "migrate export")) {
      break;
    }
    ok &= Gate(row,
               store.Put("session-" + std::to_string(i), *sealed).ok(),
               "store put");
  }
  ok &= Gate(row, store.Flush().ok(), "store flush");
  row.migrated = world.server->stats().migrated_out;
  ok &= Gate(row, row.migrated == moving.size(), "half exported");

  // Tamper probe: a bit-flipped seal out of the store must be kTampered.
  {
    auto blob = store.Get("session-0");
    ok &= Gate(row, blob.ok(), "store get probe");
    if (blob.ok()) {
      Buffer corrupt = *blob;
      corrupt[corrupt.size() / 2] ^= 0x10;
      ok &= Gate(row,
                 world.server2->ImportSession(corrupt, vault).code() ==
                     StatusCode::kTampered,
                 "bit-flip typed kTampered");
      ++row.tamper_rejects;
    }
  }
  // Import the pristine seals on instance B.
  for (size_t i = 0; i < moving.size(); ++i) {
    auto blob = store.Get("session-" + std::to_string(i));
    ok &= Gate(row, blob.ok(), "store get");
    if (blob.ok()) {
      ok &= Gate(row, world.server2->ImportSession(*blob, vault).ok(),
                 "import");
    }
  }
  ok &= Gate(row, world.server2->stats().migrated_in == moving.size(),
             "half imported");
  // Rollback probe: the host re-presenting an already-imported seal (an
  // old snapshot of the fleet) must be kTampered, not a resurrection.
  {
    auto blob = store.Get("session-0");
    if (blob.ok()) {
      ok &= Gate(row,
                 world.server2->ImportSession(*blob, vault).code() ==
                     StatusCode::kTampered,
                 "rollback typed kTampered");
      ++row.tamper_rejects;
    }
  }

  // The moved clients follow the redirect and re-attest on instance B.
  ok &= Gate(row,
             world.PumpUntil(
                 [&] {
                   size_t migrated_clients = 0;
                   for (auto& client : world.clients) {
                     if (client->migrations() == 1) {
                       if (!client->Ready() || !client->admitted()) {
                         return false;
                       }
                       ++migrated_clients;
                     }
                   }
                   return migrated_clients == moving.size() &&
                          world.server2->EstablishedConnections().size() ==
                              moving.size();
                 },
                 200000),
             "redirected herd reattached");
  double migrate_s = static_cast<double>(world.clock.now_ns() -
                                         migrate_start_ns) / 1e9;
  row.ops_per_sec = migrate_s > 0
                        ? static_cast<double>(moving.size()) / migrate_s
                        : 0.0;

  // Delivery stays exactly-once across the move, on BOTH halves.
  ok &= Gate(row, ClosedLoopEcho(world, sent, received, 8, 600000),
             "post-migration echo");
  uint64_t lost = 0;
  for (auto& client : world.clients) {
    lost += client->recovery_stats().messages_lost;
  }
  row.lost = lost;
  row.sessions = kMigrateClients;
  ok &= Gate(row, lost == 0, "zero lost");
  ok &= Gate(row, world.server->parked_sessions() == 0,
             "nothing parked on A");
  row.ok = ok;
}

void WriteJson(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "  {\"arm\": \"%s\", \"profile\": \"%s\", \"ok\": %s, "
        "\"lost\": %llu, \"sessions\": %llu, \"rekeys\": %llu, "
        "\"migrated\": %llu, \"rejected_unauthenticated\": %llu, "
        "\"tamper_rejects\": %llu, \"ops_per_sec\": %.1f}%s\n",
        r.arm.c_str(), r.profile.c_str(), r.ok ? "true" : "false",
        static_cast<unsigned long long>(r.lost),
        static_cast<unsigned long long>(r.sessions),
        static_cast<unsigned long long>(r.rekeys),
        static_cast<unsigned long long>(r.migrated),
        static_cast<unsigned long long>(r.rejected_unauthenticated),
        static_cast<unsigned long long>(r.tamper_rejects), r.ops_per_sec,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::printf("== session lifecycle churn (dual-boundary) ==\n");
  std::printf("%-10s %10s %6s %8s %8s %8s %8s %10s\n", "arm", "sessions",
              "lost", "rekeys", "migrate", "rej-auth", "tamper",
              "ops/sec");
  std::printf("%s\n", std::string(76, '-').c_str());

  std::vector<Row> rows(3);
  RunChurnArm(rows[0]);
  RunRekeyArm(rows[1]);
  RunMigrateArm(rows[2]);

  bool all_ok = true;
  for (const Row& row : rows) {
    std::printf("%-10s %10llu %6llu %8llu %8llu %8llu %8llu %10.0f%s\n",
                row.arm.c_str(),
                static_cast<unsigned long long>(row.sessions),
                static_cast<unsigned long long>(row.lost),
                static_cast<unsigned long long>(row.rekeys),
                static_cast<unsigned long long>(row.migrated),
                static_cast<unsigned long long>(row.rejected_unauthenticated),
                static_cast<unsigned long long>(row.tamper_rejects),
                row.ops_per_sec, row.ok ? "" : "  FAIL");
    if (!row.ok) {
      std::printf("    failed gate: %s\n", row.detail.c_str());
      all_ok = false;
    }
  }

  if (json_path != nullptr) {
    WriteJson(json_path, rows);
  }
  if (!all_ok) {
    std::printf("session churn gate FAILED\n");
    return 1;
  }
  std::printf(
      "session churn gate passed: %llu lifetimes, rekey-under-fault "
      "zero-loss, half-fleet migration exactly-once\n",
      static_cast<unsigned long long>(rows[0].sessions));
  return 0;
}
