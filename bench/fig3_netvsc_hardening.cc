// Regenerates Figure 3: distribution of hardening commits to the Linux
// netvsc paravirtualized networking driver, by change category. Prints
// both the ground-truth distribution and the automatic classifier's, with
// their agreement.

#include <cstdio>

#include "src/study/classifier.h"

int main() {
  using namespace ciostudy;  // NOLINT
  const auto& commits = NetvscCommits();
  std::printf("== Figure 3 ==\n");
  std::printf("%s\n",
              DistributionTable("netvsc hardening commits (manual labels)",
                                DistributionByLabel(commits))
                  .c_str());
  std::printf("%s\n",
              DistributionTable("netvsc hardening commits (classifier)",
                                DistributionByClassifier(commits))
                  .c_str());
  std::printf("classifier agreement with manual labels: %.0f%%\n",
              100.0 * ClassifierAccuracy(commits));
  return 0;
}
