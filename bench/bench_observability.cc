// §2.4 observability by boundary level: what the host learns per
// application operation under each profile, broken down by metadata
// category. The L2 designs leak only what a network observer would see;
// the syscall design additionally leaks call types, arguments (addresses,
// ports, accept timings) and exact message boundaries.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace cio;  // NOLINT
  using ciohost::ObsCategory;
  const ObsCategory kCategories[] = {
      ObsCategory::kPacketLength, ObsCategory::kPacketTiming,
      ObsCategory::kDoorbell,     ObsCategory::kCallType,
      ObsCategory::kCallArgs,     ObsCategory::kMessageBoundary,
      ObsCategory::kConfigField,  ObsCategory::kPayload,
  };

  std::printf("== host observability per profile (100 x 1 KiB messages) ==\n");
  std::printf("%-18s", "category");
  for (StackProfile profile : AllStackProfiles()) {
    std::printf(" %16s", std::string(StackProfileName(profile)).c_str());
  }
  std::printf("\n%s\n", std::string(86, '-').c_str());

  size_t counts[8][kStackProfileCount] = {};
  double bits_per_op[kStackProfileCount] = {};
  for (StackProfile profile : AllStackProfiles()) {
    LinkedPair pair(ciobench::MakeNode(profile, 1),
                    ciobench::MakeNode(profile, 2));
    if (!pair.Establish()) {
      continue;
    }
    pair.client->observability().Clear();
    ciobench::BulkTransfer(pair, 100, 1024);
    int p = static_cast<int>(profile);
    for (int c = 0; c < 8; ++c) {
      counts[c][p] = pair.client->observability().CountOf(kCategories[c]);
    }
    bits_per_op[p] =
        pair.client->observability().BitsPerOp(pair.client->app_ops());
  }
  for (int c = 0; c < 8; ++c) {
    std::printf("%-18s",
                std::string(ciohost::ObsCategoryName(kCategories[c])).c_str());
    for (int p = 0; p < kStackProfileCount; ++p) {
      std::printf(" %16zu", counts[c][p]);
    }
    std::printf("\n");
  }
  std::printf("%-18s", "bits/op");
  for (int p = 0; p < kStackProfileCount; ++p) {
    std::printf(" %16.1f", bits_per_op[p]);
  }
  std::printf("\n\nShape (Section 2.4/3.1): at L2 the host learns no more\n"
              "than a network observer; the syscall boundary leaks call\n"
              "types, arguments and message boundaries on top.\n");
  return 0;
}
