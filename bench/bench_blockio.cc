// §3.3 storage benchmarks: 4 KiB-class operations through the layers of
// the dual-boundary storage stack — raw hardened block ring, + encryption
// at rest, + extent FS, + the full ConfidentialStore (compartment boundary
// and app-side sealing). Sequential and random access, modeled clock.
//
// `--json <path>` additionally writes the table as a JSON array, one
// object per (layer, access) row — the bench-trajectory format consumed by
// tools/run_bench.sh to track storage performance across revisions.

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/blockio/store.h"

namespace {

struct StorageWorld {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  ciotee::TeeMemory memory;
  cioblock::BlockRingConfig config;
  std::unique_ptr<ciotee::SharedRegion> shared;
  std::unique_ptr<cioblock::HostBlockDevice> device;
  std::unique_ptr<cioblock::RingBlockClient> ring;
  std::unique_ptr<cioblock::EncryptedBlockClient> crypt;

  StorageWorld() {
    config.block_count = 2048;
    shared = std::make_unique<ciotee::SharedRegion>(
        &memory, config.RegionSize(), "ring");
    device = std::make_unique<cioblock::HostBlockDevice>(
        shared.get(), config, nullptr, nullptr, &clock);
    ring = std::make_unique<cioblock::RingBlockClient>(shared.get(), config,
                                                       device.get(), &costs);
    crypt = std::make_unique<cioblock::EncryptedBlockClient>(
        ring.get(), ciobase::BufferFromString("disk-key-0123456789abcdef"),
        &costs);
  }
};

struct Row {
  std::string layer;
  std::string access;
  double write_ops_per_sec = 0.0;
  double read_ops_per_sec = 0.0;
};

double OpsPerSec(uint64_t ops, uint64_t modeled_ns) {
  return modeled_ns == 0 ? 0.0
                         : 1e9 * static_cast<double>(ops) /
                               static_cast<double>(modeled_ns);
}

Row BenchClient(const char* name, cioblock::BlockClient* client,
                ciobase::SimClock* clock, bool random_access) {
  ciobase::Rng rng(5);
  ciobase::Buffer block = rng.Bytes(client->block_size());
  constexpr int kOps = 300;
  uint64_t start_ns = clock->now_ns();
  for (int i = 0; i < kOps; ++i) {
    uint64_t lba = random_access ? rng.NextBounded(1024)
                                 : static_cast<uint64_t>(i % 1024);
    (void)client->WriteBlock(lba, block);
  }
  uint64_t write_ns = clock->now_ns() - start_ns;
  start_ns = clock->now_ns();
  for (int i = 0; i < kOps; ++i) {
    uint64_t lba = random_access ? rng.NextBounded(1024)
                                 : static_cast<uint64_t>(i % 1024);
    (void)client->ReadBlock(lba);
  }
  uint64_t read_ns = clock->now_ns() - start_ns;
  Row row{name, random_access ? "rand" : "seq", OpsPerSec(kOps, write_ns),
          OpsPerSec(kOps, read_ns)};
  std::printf("%-22s %6s %14.0f %14.0f\n", row.layer.c_str(),
              row.access.c_str(), row.write_ops_per_sec,
              row.read_ops_per_sec);
  return row;
}

void WriteJson(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"layer\": \"%s\", \"access\": \"%s\", "
                 "\"write_ops_per_sec\": %.1f, "
                 "\"read_ops_per_sec\": %.1f}%s\n",
                 r.layer.c_str(), r.access.c_str(), r.write_ops_per_sec,
                 r.read_ops_per_sec, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::vector<Row> rows;
  std::printf("== block I/O (4 KiB-class ops, modeled) ==\n");
  std::printf("%-22s %6s %14s %14s\n", "layer", "access", "write ops/s",
              "read ops/s");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (bool random_access : {false, true}) {
    {
      StorageWorld world;
      rows.push_back(BenchClient("raw hardened ring", world.ring.get(),
                                 &world.clock, random_access));
    }
    {
      StorageWorld world;
      rows.push_back(BenchClient("+ encryption at rest", world.crypt.get(),
                                 &world.clock, random_access));
    }
  }

  // Full store with compartment boundary and app-side sealing.
  {
    ciobase::SimClock clock;
    ciobase::CostModel costs(&clock);
    ciotee::TeeMemory memory;
    ciotee::CompartmentManager compartments(&costs);
    auto app = compartments.Create("app", 1 << 20);
    auto storage = compartments.Create("storage", 1 << 20);
    ciohost::ObservabilityLog observability;
    cioblock::ConfidentialStore::Options options;
    options.ring.block_count = 2048;
    options.disk_key = ciobase::BufferFromString("disk-key-0123456789abcdef");
    options.value_key = ciobase::BufferFromString("value-key-0123456789abcd");
    cioblock::ConfidentialStore store(&memory, &compartments, app, storage,
                                      &costs, nullptr, &observability,
                                      &clock, options);
    (void)store.Format();
    ciobase::Rng rng(6);
    ciobase::Buffer value = rng.Bytes(3000);
    constexpr int kOps = 200;
    uint64_t start_ns = clock.now_ns();
    for (int i = 0; i < kOps; ++i) {
      (void)store.Put("obj-" + std::to_string(i % 32), value);
    }
    uint64_t put_ns = clock.now_ns() - start_ns;
    start_ns = clock.now_ns();
    for (int i = 0; i < kOps; ++i) {
      (void)store.Get("obj-" + std::to_string(i % 32));
    }
    uint64_t get_ns = clock.now_ns() - start_ns;
    Row row{"full dual-boundary", "3KB", OpsPerSec(kOps, put_ns),
            OpsPerSec(kOps, get_ns)};
    std::printf("%-22s %6s %14.0f %14.0f\n", row.layer.c_str(),
                row.access.c_str(), row.write_ops_per_sec,
                row.read_ops_per_sec);
    rows.push_back(row);
  }
  if (json_path != nullptr) {
    WriteJson(json_path, rows);
  }
  std::printf(
      "\nShape: the hardened ring itself costs one copy per op; encryption\n"
      "adds the AEAD per block; the full store adds the compartment\n"
      "crossing and value sealing — the same layering as the network path.\n");
  return 0;
}
