// Regenerates Figure 4: distribution of hardening commits to the Linux
// virtio paravirtual driver family, and the paper's headline observation —
// hardening is extremely error-prone (over 40 commits, 12 revert or amend
// previous hardening changes).

#include <cstdio>

#include "src/study/classifier.h"

int main() {
  using namespace ciostudy;  // NOLINT
  const auto& commits = VirtioCommits();
  Distribution by_label = DistributionByLabel(commits);
  std::printf("== Figure 4 ==\n");
  std::printf("%s\n",
              DistributionTable("virtio hardening commits (manual labels)",
                                by_label)
                  .c_str());
  std::printf("%s\n",
              DistributionTable("virtio hardening commits (classifier)",
                                DistributionByClassifier(commits))
                  .c_str());
  std::printf("classifier agreement with manual labels: %.0f%%\n\n",
              100.0 * ClassifierAccuracy(commits));
  int amend =
      by_label.counts[static_cast<int>(HardeningCategory::kAmendPrevious)];
  std::printf(
      "Key observation (Section 2.5): of %d commits, %d (%.0f%%) revert or\n"
      "amend previous hardening changes -> retrofitting distrust into an\n"
      "interface designed without it is extremely error-prone.\n",
      by_label.total, amend, by_label.Percent(
          HardeningCategory::kAmendPrevious));
  return 0;
}
