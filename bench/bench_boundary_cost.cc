// §3.1 boundary ablation: the L5 boundary as an intra-TEE compartment
// switch (this work) vs a full dual-TEE (two-enclave) boundary vs the
// syscall-level host exit. Prints per-crossing model constants and the
// end-to-end effect on a fixed workload.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace cio;  // NOLINT
  ciobase::CostConstants constants;
  std::printf("== boundary crossing costs ==\n\n");
  std::printf("-- per-crossing model constants --\n");
  std::printf("  %-34s %8.0f ns\n", "intra-TEE compartment switch",
              constants.compartment_switch_ns);
  std::printf("  %-34s %8.0f ns\n", "TEE-to-TEE (dual enclave) switch",
              constants.tee_switch_ns);
  std::printf("  %-34s %8.0f ns\n", "host exit (syscall/ocall round trip)",
              constants.host_exit_ns);
  std::printf("  %-34s %8.0f ns\n", "virtqueue doorbell (notify)",
              constants.notify_ns);
  std::printf("  ratio dual-TEE / compartment: %.0fx\n\n",
              constants.tee_switch_ns / constants.compartment_switch_ns);

  std::printf("-- end-to-end: 200 x 4 KiB messages over dual-boundary --\n");
  std::printf("%-26s %12s %14s\n", "L5 boundary kind", "Gbit/s(sim)",
              "crossings");
  for (L5BoundaryKind kind :
       {L5BoundaryKind::kCompartment, L5BoundaryKind::kDualTee}) {
    StackConfig client = ciobench::MakeNode(StackProfile::kDualBoundary, 1);
    StackConfig server = ciobench::MakeNode(StackProfile::kDualBoundary, 2);
    client.l5_boundary = kind;
    server.l5_boundary = kind;
    LinkedPair pair(client, server);
    if (!pair.Establish()) {
      continue;
    }
    auto result = ciobench::BulkTransfer(pair, 200, 4096);
    uint64_t crossings =
        pair.client->costs().counter("compartment_switches") +
        pair.client->costs().counter("tee_switches");
    std::printf("%-26s %12.3f %14llu\n",
                kind == L5BoundaryKind::kCompartment ? "compartment (MPK)"
                                                     : "dual TEE (2 enclaves)",
                result.GbitPerSec(),
                static_cast<unsigned long long>(crossings));
  }
  std::printf(
      "\nPaper claim (Section 3.1): a second enclave would introduce a dual\n"
      "distrust boundary at L5 where only single distrust is needed; the\n"
      "compartment approach preserves performance.\n");
  return 0;
}
