// Wall-clock crypto throughput (MB/s) across payload sizes.
//
// Unlike the modeled-clock benches, this measures the real CPU cost of the
// from-scratch primitives, because TLS record protection is the one part of
// the simulated datapath whose cost is NOT modeled — it is paid for real on
// every sealed byte. `chacha20-ref` is the seed-style scalar loop (one
// ChaCha20Block + byte-wise XOR per 64-byte block); `chacha20` is the
// shipping 4-block word-wise ChaCha20Xor fast path. The ratio between the
// two rows is the multi-block speedup.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/crypto/aead.h"

namespace {

using Clock = std::chrono::steady_clock;

// Prevents the compiler from discarding a benchmarked computation.
uint64_t g_sink = 0;

// Seed-style reference: per-block keystream generation + byte XOR. Kept here
// (not in src/) so the shipping code has exactly one ChaCha20Xor.
void ScalarChaCha20Xor(const uint8_t key[ciocrypto::kChaCha20KeySize],
                       const uint8_t nonce[ciocrypto::kChaCha20NonceSize],
                       uint32_t counter, ciobase::ByteSpan in, uint8_t* out) {
  uint8_t block[ciocrypto::kChaCha20BlockSize];
  size_t offset = 0;
  while (offset < in.size()) {
    ciocrypto::ChaCha20Block(key, counter++, nonce, block);
    size_t n = std::min(in.size() - offset,
                        ciocrypto::kChaCha20BlockSize);
    for (size_t i = 0; i < n; ++i) {
      out[offset + i] = in[offset + i] ^ block[i];
    }
    offset += n;
  }
}

// Runs `op` (which processes `bytes` per call) repeatedly for ~80 ms of
// wall-clock time and returns MB/s (1 MB = 1e6 bytes).
template <typename Op>
double Throughput(size_t bytes, Op&& op) {
  // Warm-up + calibration pass.
  op();
  auto start = Clock::now();
  size_t iters = 0;
  do {
    op();
    ++iters;
  } while (Clock::now() - start < std::chrono::milliseconds(80));
  double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(bytes) * static_cast<double>(iters) / seconds /
         1e6;
}

}  // namespace

int main() {
  const size_t kSizes[] = {64, 256, 1024, 4096, 16384, 65536};

  uint8_t key[ciocrypto::kAeadKeySize];
  uint8_t nonce[ciocrypto::kAeadNonceSize];
  for (size_t i = 0; i < sizeof(key); ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  for (size_t i = 0; i < sizeof(nonce); ++i) {
    nonce[i] = static_cast<uint8_t>(0xa0 + i);
  }
  const uint8_t aad[13] = {0x17, 0x03, 0x04, 0x00, 0x00};

  std::printf("== crypto throughput (wall clock, MB/s) ==\n");
  std::printf("%-14s %12s %12s %12s %12s %12s\n", "size", "chacha20-ref",
              "chacha20", "poly1305", "aead-seal", "aead-open");
  std::printf("%s\n", std::string(78, '-').c_str());

  double ref_16k = 0;
  double fast_16k = 0;
  for (size_t size : kSizes) {
    std::vector<uint8_t> plain(size, 0x5a);
    std::vector<uint8_t> work(size);

    double ref = Throughput(size, [&] {
      ScalarChaCha20Xor(key, nonce, 1, plain, work.data());
      g_sink += work[0];
    });
    double fast = Throughput(size, [&] {
      ciocrypto::ChaCha20Xor(key, nonce, 1, plain, work.data());
      g_sink += work[0];
    });
    double poly = Throughput(size, [&] {
      auto tag = ciocrypto::Poly1305::Mac(key, plain);
      g_sink += tag[0];
    });

    ciobase::Buffer sealed_scratch;
    double seal = Throughput(size, [&] {
      sealed_scratch.clear();
      ciocrypto::AeadSealInto(key, nonce, aad, plain, sealed_scratch);
      g_sink += sealed_scratch[0];
    });

    ciobase::Buffer sealed;
    ciocrypto::AeadSealInto(key, nonce, aad, plain, sealed);
    ciobase::Buffer opened_scratch;
    double open = Throughput(size, [&] {
      opened_scratch.clear();
      auto got =
          ciocrypto::AeadOpenInto(key, nonce, aad, sealed, opened_scratch);
      g_sink += got.ok() ? *got : 1;
    });

    if (size == 16384) {
      ref_16k = ref;
      fast_16k = fast;
    }
    std::printf("%-14zu %12.1f %12.1f %12.1f %12.1f %12.1f\n", size, ref,
                fast, poly, seal, open);
  }
  if (ref_16k > 0) {
    std::printf("\nchacha20 16 KiB speedup vs scalar reference: %.2fx\n",
                fast_16k / ref_16k);
  }
  // Keep the sink observable.
  std::fprintf(stderr, "# sink=%llu\n",
               static_cast<unsigned long long>(g_sink));
  return 0;
}
