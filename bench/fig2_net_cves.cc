// Regenerates Figure 2: remotely-exploitable CVEs in the Linux /net
// subsystem per year, plus the subsystem-growth series the paper cites as
// motivation for keeping the network stack out of the confidential TCB.

#include <cstdio>

#include "src/study/classifier.h"

int main() {
  std::printf("== Figure 2 ==\n%s\n", ciostudy::CveTable().c_str());
  std::printf("%s\n", ciostudy::GrowthTable().c_str());
  int total = 0;
  int recent = 0;
  for (const auto& [year, count] : ciostudy::NetRemoteCves()) {
    total += count;
    if (year >= 2016) {
      recent += count;
    }
  }
  std::printf("total remote CVEs 2002-2022: %d (%d since 2016)\n", total,
              recent);
  std::printf(
      "Paper claim preserved: the stack is ever-growing and remains widely\n"
      "affected by remotely-exploitable vulnerabilities -> placing it in\n"
      "the confidential TCB violates least privilege (Section 2.4).\n");
  return 0;
}
