// §2.5 retrofit-hardening tax: the same virtio driver run unhardened, with
// checks only, and with the full retrofit (checks + single-fetch +
// SWIOTLB bounces + feature restriction), echoing frames through the
// device model. Shows where the cost of retrofitted distrust comes from
// (copies piggybacked on a protocol that wasn't designed for them), and
// compares against the from-scratch hardened L2 transport, which is both
// safe and cheaper.

#include <cstdio>
#include <memory>

#include "src/base/rng.h"
#include "src/cio/l2_host_device.h"
#include "src/cio/l2_transport.h"
#include "src/net/fabric.h"
#include "src/virtio/net_driver.h"

namespace {

struct FrameEchoResult {
  uint64_t modeled_ns = 0;
  uint64_t copies = 0;
  uint64_t bytes_copied = 0;
  uint64_t notifies = 0;
};

// Sends `count` frames guest->fabric->guest (loopback via a peer port) and
// returns the modeled cost on the guest side.
FrameEchoResult RunVirtio(ciovirtio::HardeningOptions hardening, int count,
                          size_t frame_size) {
  ciobase::SimClock clock;
  ciobase::CostModel costs(&clock);
  cionet::Fabric fabric(&clock, 7);
  ciotee::TeeMemory memory;
  auto layout = ciovirtio::VirtioNetLayout::Make(128, 2048, 256);
  ciotee::SharedRegion shared(&memory, layout.TotalSize(), "virtio");
  ciohost::ObservabilityLog observability;
  ciovirtio::VirtioNetDevice device(
      &shared, layout, &fabric, "nic", cionet::MacAddress::FromId(1), 1500,
      ciovirtio::kFeatureMac | ciovirtio::kFeatureMtu |
          ciovirtio::kFeatureVersion1,
      nullptr, &observability, &clock);
  ciovirtio::VirtioNetDriver driver(&shared, layout, &device, &costs,
                                    hardening, &observability);
  cionet::DirectFabricPort peer(&fabric, "peer",
                                cionet::MacAddress::FromId(2));
  if (!driver.Negotiate().ok()) {
    return {};
  }
  ciobase::Rng rng(3);
  ciobase::Buffer frame;
  cionet::EthernetHeader eth{cionet::MacAddress::FromId(1),
                             cionet::MacAddress::FromId(2), 0x88b5};
  eth.Serialize(frame);
  ciobase::Append(frame, rng.Bytes(frame_size - frame.size()));

  uint64_t start_ns = clock.now_ns();
  cionet::FrameBatch rx_batch;
  costs.ResetCounters();
  for (int i = 0; i < count; ++i) {
    // Peer -> guest.
    ciobase::Buffer to_guest = frame;
    (void)cionet::SendOne(peer, to_guest);
    clock.Advance(25'000);
    device.Poll();
    (void)driver.ReceiveFrames(rx_batch, 1);
    // Guest -> peer.
    (void)cionet::SendOne(driver, frame);
    clock.Advance(25'000);
    device.Poll();
    (void)peer.ReceiveFrames(rx_batch, 1);
  }
  FrameEchoResult result;
  result.modeled_ns = clock.now_ns() - start_ns;
  result.copies = costs.counter("copies");
  result.bytes_copied = costs.counter("bytes_copied");
  result.notifies = costs.counter("notifies");
  return result;
}

FrameEchoResult RunHardenedL2(int count, size_t frame_size) {
  ciobase::SimClock clock;
  ciobase::CostModel costs(&clock);
  cionet::Fabric fabric(&clock, 7);
  ciotee::TeeMemory memory;
  cio::L2Config config;
  config.mac = cionet::MacAddress::FromId(1);
  cio::L2Layout layout(config);
  ciotee::SharedRegion shared(&memory, layout.total, "l2");
  ciohost::ObservabilityLog observability;
  cio::L2HostDevice device(&shared, config, &fabric, "nic", nullptr,
                           &observability, &clock);
  cio::L2Transport transport(&shared, config, &costs, nullptr);
  cionet::DirectFabricPort peer(&fabric, "peer",
                                cionet::MacAddress::FromId(2));
  ciobase::Rng rng(3);
  ciobase::Buffer frame;
  cionet::EthernetHeader eth{cionet::MacAddress::FromId(1),
                             cionet::MacAddress::FromId(2), 0x88b5};
  eth.Serialize(frame);
  ciobase::Append(frame, rng.Bytes(frame_size - frame.size()));

  uint64_t start_ns = clock.now_ns();
  cionet::FrameBatch rx_batch;
  costs.ResetCounters();
  for (int i = 0; i < count; ++i) {
    ciobase::Buffer to_guest = frame;
    (void)cionet::SendOne(peer, to_guest);
    clock.Advance(25'000);
    device.Poll();
    (void)transport.ReceiveFrames(rx_batch, 1);
    (void)cionet::SendOne(transport, frame);
    clock.Advance(25'000);
    device.Poll();
    (void)peer.ReceiveFrames(rx_batch, 1);
  }
  FrameEchoResult result;
  result.modeled_ns = clock.now_ns() - start_ns;
  result.copies = costs.counter("copies");
  result.bytes_copied = costs.counter("bytes_copied");
  result.notifies = costs.counter("notifies");
  return result;
}

void PrintRow(const char* name, const FrameEchoResult& result, int count,
              uint64_t baseline_overhead, uint64_t fabric_ns) {
  uint64_t overhead = result.modeled_ns - fabric_ns;
  std::printf("%-24s %12.0f %10.2fx %9.1f %12.1f %10.1f\n", name,
              static_cast<double>(overhead) / count,
              baseline_overhead == 0
                  ? 1.0
                  : static_cast<double>(overhead) /
                        static_cast<double>(baseline_overhead),
              static_cast<double>(result.copies) / count,
              static_cast<double>(result.bytes_copied) / count,
              static_cast<double>(result.notifies) / count);
}

}  // namespace

int main() {
  constexpr int kCount = 500;
  constexpr size_t kFrame = 1400;
  // Fabric latency contributes 50 us per echo regardless of design.
  uint64_t fabric_ns = static_cast<uint64_t>(kCount) * 50'000;

  std::printf("== virtio retrofit-hardening tax (per echoed frame) ==\n");
  std::printf("%-24s %12s %10s %9s %12s %10s\n", "driver config",
              "overhead ns", "rel", "copies", "bytes", "notifies");
  std::printf("%s\n", std::string(82, '-').c_str());

  auto none = RunVirtio(ciovirtio::HardeningOptions::None(), kCount, kFrame);
  uint64_t baseline = none.modeled_ns - fabric_ns;
  PrintRow("virtio unhardened", none, kCount, baseline, fabric_ns);
  PrintRow("virtio checks-only",
           RunVirtio(ciovirtio::HardeningOptions::ChecksOnly(), kCount,
                     kFrame),
           kCount, baseline, fabric_ns);
  PrintRow("virtio full retrofit",
           RunVirtio(ciovirtio::HardeningOptions::Full(), kCount, kFrame),
           kCount, baseline, fabric_ns);
  PrintRow("cio hardened L2", RunHardenedL2(kCount, kFrame), kCount,
           baseline, fabric_ns);

  std::printf(
      "\nShape (Section 2.5): checks are nearly free; the retrofit's cost\n"
      "is the systematic SWIOTLB copy, charged even when a double fetch is\n"
      "impossible. The from-scratch L2 interface is safe by construction\n"
      "at unhardened-virtio cost: its single fetch IS the mandatory copy.\n");
  return 0;
}
