// §2.2 interface-vulnerability campaign: every adversary strategy against
// every stack profile, classified from ground truth (memory violations,
// isolation violations, end-to-end integrity, TLS failures). Reproduces the
// paper's security argument as a table: the dual-boundary design never does
// worse than degraded service; the unhardened baseline is memory-unsafe.

#include <cstdio>

#include "src/cio/attack_campaign.h"

int main() {
  cio::CampaignOptions options;
  options.messages_per_cell = 8;
  options.message_size = 400;
  auto cells = cio::RunCampaign(options);
  std::printf("== attack campaign (%zu cells) ==\n\n%s\n", cells.size(),
              cio::CampaignTable(cells).c_str());

  // Summary per profile: worst outcome observed.
  std::printf("worst outcome per profile:\n");
  for (cio::StackProfile profile : options.profiles) {
    cio::AttackOutcome worst = cio::AttackOutcome::kBlocked;
    for (const auto& cell : cells) {
      if (cell.profile == profile &&
          static_cast<int>(cell.outcome) < static_cast<int>(worst)) {
        worst = cell.outcome;
      }
    }
    std::printf("  %-18s %s\n",
                std::string(StackProfileName(profile)).c_str(),
                std::string(AttackOutcomeName(worst)).c_str());
  }
  std::printf(
      "\nClaim (Section 3.1): under the ternary model, compromising the I/O\n"
      "path can at most degrade service or raise observability; reaching\n"
      "the application now requires a multi-stage attack.\n");
  return 0;
}
