// §2.2 interface-vulnerability campaign: every adversary strategy against
// every stack profile, classified from ground truth (memory violations,
// isolation violations, end-to-end integrity, TLS failures). Reproduces the
// paper's security argument as a table: the dual-boundary design never does
// worse than degraded service; the unhardened baseline is memory-unsafe.
//
// The second half is the RECOVERY campaign: transient host faults (swallowed
// doorbells, stalled/garbage counters, dropped/duplicated frames, torn
// writes, link kill) opened for a bounded window mid-transfer. Each cell
// records whether the guest came back, the time to full catch-up, and the
// message accounting. The run exits non-zero unless the dual-boundary
// profile recovers from EVERY transient fault with zero lost messages and
// zero safety violations — that is the paper's availability claim, enforced.
//
// `--json` emits both matrices as a single JSON document for tooling.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/cio/attack_campaign.h"

namespace {

std::string JsonEscape(std::string_view in) {
  std::string out;
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

void PrintAttackJson(const std::vector<cio::CampaignCell>& cells) {
  std::printf("  \"attack_cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const auto& cell = cells[i];
    std::printf(
        "    {\"profile\": \"%s\", \"strategy\": \"%s\", "
        "\"outcome\": \"%s\", \"oob_accesses\": %llu, "
        "\"messages_attempted\": %zu, \"messages_delivered\": %zu, "
        "\"messages_corrupted\": %zu}%s\n",
        JsonEscape(StackProfileName(cell.profile)).c_str(),
        JsonEscape(ciohost::AttackStrategyName(cell.strategy)).c_str(),
        JsonEscape(AttackOutcomeName(cell.outcome)).c_str(),
        static_cast<unsigned long long>(cell.oob_accesses),
        cell.messages_attempted, cell.messages_delivered,
        cell.messages_corrupted, i + 1 < cells.size() ? "," : "");
  }
  std::printf("  ],\n");
}

void PrintRecoveryJson(const std::vector<cio::RecoveryCell>& cells) {
  std::printf("  \"recovery_cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const auto& cell = cells[i];
    std::printf(
        "    {\"profile\": \"%s\", \"fault\": \"%s\", \"recovered\": %s, "
        "\"time_to_recovery_ns\": %llu, \"messages_attempted\": %zu, "
        "\"messages_delivered\": %zu, \"messages_lost\": %llu, "
        "\"messages_duplicate_dropped\": %llu, \"ring_resets\": %llu, "
        "\"watchdog_fires\": %llu, \"reconnects\": %llu, "
        "\"tls_restarts\": %llu, \"fault_events\": %llu, "
        "\"oob_accesses\": %llu, \"messages_corrupted\": %zu}%s\n",
        JsonEscape(StackProfileName(cell.profile)).c_str(),
        JsonEscape(ciohost::FaultStrategyName(cell.fault)).c_str(),
        cell.recovered ? "true" : "false",
        static_cast<unsigned long long>(cell.time_to_recovery_ns),
        cell.messages_attempted, cell.messages_delivered,
        static_cast<unsigned long long>(cell.messages_lost),
        static_cast<unsigned long long>(cell.messages_duplicate_dropped),
        static_cast<unsigned long long>(cell.ring_resets),
        static_cast<unsigned long long>(cell.watchdog_fires),
        static_cast<unsigned long long>(cell.reconnects),
        static_cast<unsigned long long>(cell.tls_restarts),
        static_cast<unsigned long long>(cell.fault_events),
        static_cast<unsigned long long>(cell.oob_accesses),
        cell.messages_corrupted, i + 1 < cells.size() ? "," : "");
  }
  std::printf("  ],\n");
}

// The enforced claim: the dual-boundary profile recovers from every
// transient fault, loses nothing, and stays safe while the host misbehaves.
bool DualBoundaryRecoversEverywhere(
    const std::vector<cio::RecoveryCell>& cells, bool verbose) {
  bool ok = true;
  for (const auto& cell : cells) {
    if (cell.profile != cio::StackProfile::kDualBoundary) {
      continue;
    }
    std::string why;
    if (!cell.recovered) {
      why = "did not recover";
    } else if (cell.messages_lost != 0) {
      why = "lost messages";
    } else if (cell.messages_delivered != cell.messages_attempted) {
      why = "delivery incomplete";
    } else if (cell.oob_accesses != 0 || cell.messages_corrupted != 0 ||
               cell.payload_observations != 0) {
      why = "safety violated during fault";
    } else {
      continue;
    }
    ok = false;
    if (verbose) {
      std::fprintf(stderr, "FAIL dual-boundary x %s: %s (%s)\n",
                   std::string(ciohost::FaultStrategyName(cell.fault)).c_str(),
                   why.c_str(), cell.note.c_str());
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    }
  }

  cio::CampaignOptions options;
  options.messages_per_cell = 8;
  options.message_size = 400;
  auto cells = cio::RunCampaign(options);

  cio::RecoveryOptions recovery_options;
  auto recovery = cio::RunRecoveryCampaign(recovery_options);
  bool claim_holds = DualBoundaryRecoversEverywhere(recovery, !json);

  if (json) {
    std::printf("{\n");
    PrintAttackJson(cells);
    PrintRecoveryJson(recovery);
    std::printf("  \"dual_boundary_recovers_all_faults\": %s\n}\n",
                claim_holds ? "true" : "false");
    return claim_holds ? 0 : 1;
  }

  std::printf("== attack campaign (%zu cells) ==\n\n%s\n", cells.size(),
              cio::CampaignTable(cells).c_str());

  // Summary per profile: worst outcome observed.
  std::printf("worst outcome per profile:\n");
  for (cio::StackProfile profile : options.profiles) {
    cio::AttackOutcome worst = cio::AttackOutcome::kBlocked;
    for (const auto& cell : cells) {
      if (cell.profile == profile &&
          static_cast<int>(cell.outcome) < static_cast<int>(worst)) {
        worst = cell.outcome;
      }
    }
    std::printf("  %-18s %s\n",
                std::string(StackProfileName(profile)).c_str(),
                std::string(AttackOutcomeName(worst)).c_str());
  }
  std::printf(
      "\nClaim (Section 3.1): under the ternary model, compromising the I/O\n"
      "path can at most degrade service or raise observability; reaching\n"
      "the application now requires a multi-stage attack.\n\n");

  std::printf("== recovery campaign (%zu cells, %.1f ms fault windows) ==\n\n%s\n",
              recovery.size(),
              static_cast<double>(recovery_options.fault_duration_ns) / 1e6,
              cio::RecoveryTable(recovery).c_str());
  std::printf(
      "Claim (availability): only the dual-boundary profile ships recovery\n"
      "(watchdog + ring reset + TLS re-establishment + resend window); it\n"
      "must come back from every transient fault with nothing lost.\n");
  std::printf("dual-boundary recovers under every fault: %s\n",
              claim_holds ? "yes" : "NO");
  return claim_holds ? 0 : 1;
}
