// CLI for the coverage-guided host-interface fuzzer (src/fuzz).
//
// Modes:
//   (default)        seeded campaign; prints the report table
//   --smoke          CI gate: fixed seed, 10k iterations across every
//                    target, exit 1 unless zero gated failures AND strictly
//                    more coverage with mutation than without
//   --replay FILE    re-execute one serialized repro; exit 0 iff the
//                    recorded failure reproduces
//
// Flags: --seed N, --iters N, --rounds N, --target NAME, --out DIR,
// --json, --verbose. Exit codes: 0 pass/reproduced, 1 gate failed or
// failure did not reproduce, 2 usage error.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/fuzz/fuzzer.h"

namespace {

void PrintReport(const ciofuzz::FuzzReport& report, bool json) {
  if (json) {
    std::printf("{\n");
    std::printf("  \"iterations\": %zu,\n", report.iterations_run);
    std::printf("  \"corpus_size\": %zu,\n", report.corpus_size);
    std::printf("  \"baseline_edges\": %zu,\n", report.baseline_edges);
    std::printf("  \"mutated_edges\": %zu,\n", report.mutated_edges);
    std::printf("  \"coverage_hash\": \"%016llx\",\n",
                static_cast<unsigned long long>(report.coverage_hash));
    std::printf("  \"trace_hash\": \"%016llx\",\n",
                static_cast<unsigned long long>(report.trace_hash));
    std::printf("  \"baseline_incomplete\": %zu,\n",
                report.baseline_incomplete);
    std::printf("  \"expected_vulns\": %zu,\n", report.expected_vulns);
    std::printf("  \"failures\": [\n");
    for (size_t i = 0; i < report.failures.size(); ++i) {
      const ciofuzz::FuzzFailure& failure = report.failures[i];
      std::printf(
          "    {\"target\": \"%s\", \"kind\": \"%s\", \"iteration\": %zu, "
          "\"repro\": \"%s\"}%s\n",
          failure.target.c_str(), failure.kind.c_str(), failure.iteration,
          failure.repro_path.c_str(),
          i + 1 < report.failures.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"passed\": %s\n", report.Passed() ? "true" : "false");
    std::printf("}\n");
    return;
  }
  std::printf("cio-fuzz: %zu iterations, corpus %zu\n", report.iterations_run,
              report.corpus_size);
  std::printf("  coverage: baseline %zu edges -> mutated %zu edges (%s)\n",
              report.baseline_edges, report.mutated_edges,
              report.mutated_edges > report.baseline_edges
                  ? "mutation adds coverage"
                  : "NO coverage gain from mutation");
  std::printf("  hashes: coverage=%016llx trace=%016llx\n",
              static_cast<unsigned long long>(report.coverage_hash),
              static_cast<unsigned long long>(report.trace_hash));
  if (report.baseline_incomplete > 0) {
    std::printf("  BASELINE INCOMPLETE: %zu unmutated runs did not finish\n",
                report.baseline_incomplete);
  }
  if (report.expected_vulns > 0) {
    std::printf(
        "  expected vulnerabilities: %zu memory violations on unhardened "
        "profiles (the reproduced CVE class; not gating)\n",
        report.expected_vulns);
  }
  for (const ciofuzz::FuzzFailure& failure : report.failures) {
    std::printf("  FAILURE [%s] %s at iteration %zu: %s%s%s\n",
                failure.target.c_str(), failure.kind.c_str(),
                failure.iteration, failure.note.c_str(),
                failure.repro_path.empty() ? "" : " repro=",
                failure.repro_path.c_str());
  }
  if (report.failures.empty()) {
    std::printf("  no gated failures\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  ciofuzz::FuzzOptions options;
  bool smoke = false;
  bool json = false;
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--iters") {
      options.iterations = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--rounds") {
      options.run.pump_rounds =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--target") {
      options.only_target = next();
    } else if (arg == "--out") {
      options.out_dir = next();
    } else if (arg == "--replay") {
      replay_path = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  if (!replay_path.empty()) {
    ciofuzz::RunResult result;
    std::string error;
    if (!ciofuzz::Fuzzer::Replay(replay_path, &result, &error)) {
      std::fprintf(stderr, "replay error: %s\n", error.c_str());
      return 2;
    }
    std::printf("replay: %s%s completed=%d steps=%zu non_ok_edges=%zu %s\n",
                result.gated ? "GATED " : "clean ",
                result.gated ? result.kind.c_str() : "",
                result.completed ? 1 : 0, result.steps_applied,
                result.non_ok_edges, result.note.c_str());
    return result.gated ? 0 : 1;  // a repro that reproduces exits 0
  }

  if (smoke) {
    options.seed = 42;
    if (options.iterations == 1000) {  // not overridden
      options.iterations = 10000;
    }
  }
  options.run.seed = options.seed;

  ciofuzz::Fuzzer fuzzer(options);
  ciofuzz::FuzzReport report = fuzzer.Run();
  PrintReport(report, json);
  return report.Passed() ? 0 : 1;
}
