#include "src/prof/profiler.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace cioprof {
namespace {

// Log2 duration bucket: 0 -> [0], k -> [2^(k-1), 2^k). Values past the last
// bucket saturate into it.
size_t BucketOf(uint64_t ns) {
  if (ns == 0) return 0;
  size_t width = 64 - static_cast<size_t>(__builtin_clzll(ns));
  return std::min(width, ProfRegistry::kHistBuckets - 1);
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
}

std::string_view LeafOf(std::string_view path) {
  size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

}  // namespace

void ProfRegistry::Bind(ciobase::SimClock* clock, ciobase::CostModel* costs) {
  clock_ = clock;
  costs_ = costs;
  enabled_ = true;
  if (costs_ != nullptr) last_slots_ = costs_->slots();
}

void ProfRegistry::AttributeCounters() {
  if (costs_ == nullptr) return;
  const Slots& cur = costs_->slots();
  if (depth_ > 0) {
    Slots& target = probes_[frames_[depth_ - 1].probe].counters;
    for (size_t i = 0; i < target.size(); ++i) {
      target[i] += cur[i] - last_slots_[i];
    }
  }
  last_slots_ = cur;
}

uint32_t ProfRegistry::Intern(uint32_t parent, const char* name) {
  auto key = std::make_pair(parent, std::string_view(name));
  auto it = intern_.find(key);
  if (it != intern_.end()) return it->second;
  Probe probe;
  if (parent == kNoParent) {
    probe.path = name;
    probe.depth = 0;
  } else {
    probe.path = probes_[parent].path + "/" + name;
    probe.depth = probes_[parent].depth + 1;
  }
  probe.parent = parent;
  uint32_t index = static_cast<uint32_t>(probes_.size());
  probes_.push_back(std::move(probe));
  intern_.emplace(key, index);
  return index;
}

bool ProfRegistry::EnterScope(const char* name) {
  if (depth_ >= kMaxDepth) {
    ++dropped_;
    return false;
  }
  AttributeCounters();
  uint32_t parent = depth_ == 0 ? kNoParent : frames_[depth_ - 1].probe;
  Frame& frame = frames_[depth_++];
  frame.probe = Intern(parent, name);
  frame.enter_ns = clock_->now_ns();
  frame.child_ns = 0;
  return true;
}

void ProfRegistry::ExitScope() {
  if (depth_ == 0) return;  // unbalanced exit; drop rather than crash
  AttributeCounters();
  Frame& frame = frames_[depth_ - 1];
  uint64_t inclusive = clock_->now_ns() - frame.enter_ns;
  Probe& probe = probes_[frame.probe];
  probe.count += 1;
  probe.total_ns += inclusive;
  probe.self_ns += inclusive - std::min(inclusive, frame.child_ns);
  size_t bucket = BucketOf(inclusive);
  probe.hist_count[bucket] += 1;
  probe.hist_sum[bucket] += inclusive;
  --depth_;
  if (depth_ > 0) frames_[depth_ - 1].child_ns += inclusive;
}

uint64_t ProfRegistry::Percentile(const Probe& probe, uint32_t permille) {
  uint64_t total = 0;
  for (uint64_t c : probe.hist_count) total += c;
  if (total == 0) return 0;
  uint64_t rank = (total * permille + 999) / 1000;
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  uint64_t last_mean = 0;
  for (size_t b = 0; b < kHistBuckets; ++b) {
    if (probe.hist_count[b] == 0) continue;
    cumulative += probe.hist_count[b];
    last_mean = probe.hist_sum[b] / probe.hist_count[b];
    if (cumulative >= rank) return last_mean;
  }
  return last_mean;
}

uint64_t ProfRegistry::total_ns() const {
  uint64_t total = 0;
  for (const Probe& probe : probes_) {
    if (probe.parent == kNoParent) total += probe.total_ns;
  }
  return total;
}

double ProfRegistry::unattributed_pct() const {
  uint64_t total = total_ns();
  if (total == 0) return 0.0;
  uint64_t unattributed = 0;
  for (const Probe& probe : probes_) {
    if (probe.parent == kNoParent) unattributed += probe.self_ns;
  }
  return 100.0 * static_cast<double>(unattributed) /
         static_cast<double>(total);
}

std::vector<ProbeRow> ProfRegistry::Rows() const {
  std::vector<ProbeRow> rows;
  rows.reserve(probes_.size());
  for (const Probe& probe : probes_) {
    ProbeRow row;
    row.path = probe.path;
    row.depth = probe.depth;
    row.count = probe.count;
    row.total_ns = probe.total_ns;
    row.self_ns = probe.self_ns;
    row.p50_ns = Percentile(probe, 500);
    row.p95_ns = Percentile(probe, 950);
    row.p99_ns = Percentile(probe, 990);
    row.counters = probe.counters;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const ProbeRow& a, const ProbeRow& b) { return a.path < b.path; });
  return rows;
}

std::string ProfRegistry::ToFlameSummary() const {
  std::string out;
  uint64_t total = total_ns();
  AppendF(&out,
          "flame: total %.3f ms modeled, unattributed %.1f%%, %zu probes",
          static_cast<double>(total) / 1e6, unattributed_pct(),
          probes_.size());
  if (dropped_ > 0) {
    AppendF(&out, ", %llu dropped",
            static_cast<unsigned long long>(dropped_));
  }
  out += "\n";

  // Children lists, sorted by inclusive time (desc), path as tie-break.
  std::vector<std::vector<uint32_t>> children(probes_.size());
  std::vector<uint32_t> roots;
  for (uint32_t i = 0; i < probes_.size(); ++i) {
    if (probes_[i].parent == kNoParent) {
      roots.push_back(i);
    } else {
      children[probes_[i].parent].push_back(i);
    }
  }
  auto order = [this](uint32_t a, uint32_t b) {
    if (probes_[a].total_ns != probes_[b].total_ns) {
      return probes_[a].total_ns > probes_[b].total_ns;
    }
    return probes_[a].path < probes_[b].path;
  };
  std::sort(roots.begin(), roots.end(), order);
  for (auto& list : children) std::sort(list.begin(), list.end(), order);

  // Iterative pre-order walk (explicit stack; depth is bounded by kMaxDepth).
  std::vector<uint32_t> stack(roots.rbegin(), roots.rend());
  while (!stack.empty()) {
    uint32_t index = stack.back();
    stack.pop_back();
    const Probe& probe = probes_[index];
    std::string label(probe.depth * 2, ' ');
    label.append(LeafOf(probe.path));
    double share = total == 0 ? 0.0
                              : 100.0 * static_cast<double>(probe.total_ns) /
                                    static_cast<double>(total);
    AppendF(&out, "  %-44s incl %12.3f us  self %12.3f us  %5.1f%%  n=%llu\n",
            label.c_str(), static_cast<double>(probe.total_ns) / 1e3,
            static_cast<double>(probe.self_ns) / 1e3, share,
            static_cast<unsigned long long>(probe.count));
    for (auto it = children[index].rbegin(); it != children[index].rend();
         ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

void ProfRegistry::AppendJsonRows(std::string* out, std::string_view profile,
                                  std::string_view arm, bool* first) const {
  uint64_t total = total_ns();
  auto lead = [&] {
    if (!*first) *out += ",";
    *first = false;
    *out += "\n ";
  };
  for (const ProbeRow& row : Rows()) {
    lead();
    double share = total == 0 ? 0.0
                              : 100.0 * static_cast<double>(row.total_ns) /
                                    static_cast<double>(total);
    AppendF(out,
            "{\"profile\": \"%.*s\", \"arm\": \"%.*s\", \"probe\": \"%s\", "
            "\"count\": %llu, \"total_us\": %.3f, \"self_us\": %.3f, "
            "\"share_pct\": %.2f, \"p50_ns\": %llu, \"p95_ns\": %llu, "
            "\"p99_ns\": %llu",
            static_cast<int>(profile.size()), profile.data(),
            static_cast<int>(arm.size()), arm.data(), row.path.c_str(),
            static_cast<unsigned long long>(row.count),
            static_cast<double>(row.total_ns) / 1e3,
            static_cast<double>(row.self_ns) / 1e3, share,
            static_cast<unsigned long long>(row.p50_ns),
            static_cast<unsigned long long>(row.p95_ns),
            static_cast<unsigned long long>(row.p99_ns));
    static const ciobase::CostCounter kReported[] = {
        ciobase::CostCounter::kHostExits,
        ciobase::CostCounter::kNotifies,
        ciobase::CostCounter::kCompartmentSwitches,
        ciobase::CostCounter::kRingPolls,
        ciobase::CostCounter::kCopies,
        ciobase::CostCounter::kBytesCopied,
    };
    for (ciobase::CostCounter c : kReported) {
      std::string_view name = ciobase::CostCounterName(c);
      AppendF(out, ", \"%.*s\": %llu", static_cast<int>(name.size()),
              name.data(),
              static_cast<unsigned long long>(
                  row.counters[static_cast<size_t>(c)]));
    }
    *out += "}";
  }
  lead();
  AppendF(out,
          "{\"profile\": \"%.*s\", \"arm\": \"%.*s\", \"probe\": \"(total)\", "
          "\"total_us\": %.3f, \"unattributed_pct\": %.2f, \"probes\": %zu, "
          "\"dropped\": %llu}",
          static_cast<int>(profile.size()), profile.data(),
          static_cast<int>(arm.size()), arm.data(),
          static_cast<double>(total) / 1e3, unattributed_pct(),
          probes_.size(), static_cast<unsigned long long>(dropped_));
}

void ProfRegistry::Reset() {
  probes_.clear();
  intern_.clear();
  depth_ = 0;
  dropped_ = 0;
  if (costs_ != nullptr) last_slots_ = costs_->slots();
}

}  // namespace cioprof
