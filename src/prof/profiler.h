// In-sim cycle-accounting profiler.
//
// Every interesting stage of the datapath (engine submit/reap, TLS seal/open,
// SQ/CQ doorbell + harvest, virtio kick/poll, L2 counter reads, server DRR
// egress rounds, TCP poll) brackets itself with a scoped RAII probe:
//
//   CIO_PROF_SCOPE(costs_->profiler(), "l5.doorbell");
//
// Probes nest into dotted stage paths ("server.round/server.egress/
// l5.doorbell"), so the same leaf name under two callers is two distinct
// probes. Time is read from ciobase::SimClock — the modeled clock that every
// boundary crossing charges — which makes the profile deterministic: two runs
// of the same simulation produce byte-identical JSON.
//
// Attribution rules:
//   * Inclusive time of a probe = sum over activations of (exit - enter) on
//     the simulated clock. Exclusive (self) time subtracts the inclusive
//     time of child activations.
//   * CostModel counter deltas (host exits, notifies, copies, compartment
//     switches, ...) are attributed to the innermost open scope at the
//     moment of the charge, by snapshotting the counter slots at every
//     scope enter/exit boundary. They are exclusive by construction.
//   * Durations feed fixed log2-bucket histograms (count + sum per bucket),
//     from which p50/p95/p99 are derived deterministically. No allocation
//     happens on the probe hot path: the per-probe stat block is allocated
//     once when a path is first interned (FrameArena-style pooling via a
//     deque of fixed blocks), and the scope stack is a fixed array.
//
// Overhead contract: a probe compiled in but pointing at a null or disabled
// registry advances the clock by exactly 0 ns, touches no counters, and
// allocates nothing — the constructor is two branches. An enabled probe
// still advances the clock by 0 ns (the profiler observes the simulation,
// it never charges it); only real wall time is spent on bookkeeping.

#ifndef SRC_PROF_PROFILER_H_
#define SRC_PROF_PROFILER_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/clock.h"

namespace cioprof {

// One row of the rendered profile, keyed by the full dotted path.
struct ProbeRow {
  std::string path;        // "server.round/server.egress/l5.doorbell"
  uint32_t depth = 0;      // nesting depth (0 = root)
  uint64_t count = 0;      // activations
  uint64_t total_ns = 0;   // inclusive simulated time
  uint64_t self_ns = 0;    // exclusive simulated time
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
  // Exclusive CostModel counter deltas attributed to this probe.
  std::array<uint64_t, ciobase::kCostCounterCount> counters{};
};

class ProfRegistry {
 public:
  static constexpr size_t kMaxDepth = 64;
  static constexpr size_t kHistBuckets = 48;

  // A default-constructed registry is disabled: probes against it are free.
  ProfRegistry() = default;

  ProfRegistry(const ProfRegistry&) = delete;
  ProfRegistry& operator=(const ProfRegistry&) = delete;

  // Binds the registry to one node's simulated clock and cost model and
  // enables it. One registry profiles one node: counter snapshots are
  // meaningless across two CostModels. `costs` may be null (time-only).
  void Bind(ciobase::SimClock* clock, ciobase::CostModel* costs);

  // Flag-disable without unbinding (probes become free again).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_ && clock_ != nullptr; }

  // --- Probe hot path (called by ProfScope) ---------------------------------

  // Pushes a scope named `name` (must be a string literal or otherwise
  // outlive the registry). Returns false when the scope stack is full —
  // the activation is dropped and counted in dropped_scopes().
  bool EnterScope(const char* name);
  // Pops the innermost scope. Strict LIFO (RAII guarantees it).
  void ExitScope();

  // --- Rendering ------------------------------------------------------------

  // Rows sorted by path, shares computed against total_ns().
  std::vector<ProbeRow> Rows() const;

  // Sum of root-probe inclusive time: the denominator for share-of-total.
  uint64_t total_ns() const;

  // Share of total time spent inside root probes but not inside any child
  // probe, in percent. The "unattributed remainder" of the flame summary.
  double unattributed_pct() const;

  // Inclusive/exclusive text flame tree, children sorted by inclusive time
  // (descending, path as tie-break). Deterministic.
  std::string ToFlameSummary() const;

  // Appends one JSON row object per probe (comma-separated, no brackets) to
  // `out`, keyed by {profile, arm, probe}, plus a trailing "(total)" summary
  // row carrying total_us and unattributed_pct. `first` tracks whether a
  // leading comma is needed and is updated. Fixed formatting, byte-stable.
  void AppendJsonRows(std::string* out, std::string_view profile,
                      std::string_view arm, bool* first) const;

  uint64_t dropped_scopes() const { return dropped_; }
  size_t probe_count() const { return probes_.size(); }

  // Clears all recorded samples and paths (keeps the binding and flag).
  void Reset();

 private:
  using Slots = std::array<uint64_t, ciobase::kCostCounterCount>;

  // Per-path stat block, allocated once at interning; stable address
  // (deque never relocates), fixed size, no steady-state allocation.
  struct Probe {
    std::string path;
    uint32_t parent = kNoParent;  // index into probes_, kNoParent for roots
    uint32_t depth = 0;
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t self_ns = 0;
    std::array<uint64_t, kHistBuckets> hist_count{};
    std::array<uint64_t, kHistBuckets> hist_sum{};
    Slots counters{};
  };

  struct Frame {
    uint32_t probe = 0;
    uint64_t enter_ns = 0;
    uint64_t child_ns = 0;  // inclusive time of completed children
  };

  static constexpr uint32_t kNoParent = 0xffffffffu;

  // Attributes CostModel counter deltas since the last boundary to the
  // innermost open scope (or discards them when no scope is open).
  void AttributeCounters();

  uint32_t Intern(uint32_t parent, const char* name);
  static uint64_t Percentile(const Probe& probe, uint32_t permille);

  ciobase::SimClock* clock_ = nullptr;
  ciobase::CostModel* costs_ = nullptr;
  bool enabled_ = false;

  std::deque<Probe> probes_;
  // (parent probe, leaf name) -> probe index. Keys view literal storage, so
  // lookups on the hot path allocate nothing.
  std::map<std::pair<uint32_t, std::string_view>, uint32_t> intern_;

  std::array<Frame, kMaxDepth> frames_{};
  uint32_t depth_ = 0;
  uint64_t dropped_ = 0;
  Slots last_slots_{};
};

// RAII probe: records enter on construction, exit on destruction. Free when
// the registry is null or disabled.
class ProfScope {
 public:
  ProfScope(ProfRegistry* registry, const char* name) {
    if (registry != nullptr && registry->enabled() &&
        registry->EnterScope(name)) {
      registry_ = registry;
    }
  }
  ~ProfScope() {
    if (registry_ != nullptr) registry_->ExitScope();
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfRegistry* registry_ = nullptr;
};

#define CIO_PROF_CAT2(a, b) a##b
#define CIO_PROF_CAT(a, b) CIO_PROF_CAT2(a, b)
#define CIO_PROF_SCOPE(registry, name)                       \
  ::cioprof::ProfScope CIO_PROF_CAT(cio_prof_scope_, __LINE__)( \
      (registry), (name))

}  // namespace cioprof

#endif  // SRC_PROF_PROFILER_H_
