#include "src/cio/tunnel_port.h"

#include <cstring>

#include "src/crypto/hkdf.h"

namespace cio {

namespace {

// Dedicated ethertype for tunnel frames on the outer segment.
constexpr uint16_t kEtherTypeTunnel = 0x88c0;

ciotls::SealingKey TunnelKey(ciobase::ByteSpan psk, std::string_view label) {
  ciocrypto::Sha256Digest prk = ciocrypto::HkdfExtract({}, psk);
  return ciotls::SealingKey(
      ciocrypto::HkdfExpandLabel(prk, label, {}, 32),
      ciocrypto::HkdfExpandLabel(prk, std::string(label) + " iv", {}, 12));
}

}  // namespace

TunnelPort::TunnelPort(cionet::FramePort* inner, ciobase::ByteSpan psk,
                       bool is_initiator, ciobase::CostModel* costs)
    : inner_(inner),
      costs_(costs),
      send_key_(TunnelKey(psk, is_initiator ? "tun i2r" : "tun r2i")),
      recv_key_(TunnelKey(psk, is_initiator ? "tun r2i" : "tun i2r")) {}

uint16_t TunnelPort::mtu() const {
  // Inner frame must fit [len u16][eth header][payload] in kTunnelPayload.
  return static_cast<uint16_t>(kTunnelPayload - 2 -
                               cionet::kEthernetHeaderSize);
}

ciobase::Status TunnelPort::SealOne(ciobase::ByteSpan frame) {
  if (frame.size() + 2 > kTunnelPayload) {
    return ciobase::InvalidArgument("frame exceeds tunnel capacity");
  }
  auto header = cionet::EthernetHeader::Parse(frame);
  if (!header.ok()) {
    return header.status();
  }
  // Fixed-size plaintext: [inner_len u16][frame][zero padding].
  ciobase::Buffer plaintext(kTunnelPayload, 0);
  ciobase::StoreLe16(plaintext.data(), static_cast<uint16_t>(frame.size()));
  std::memcpy(plaintext.data() + 2, frame.data(), frame.size());
  stats_.padding_bytes += kTunnelPayload - 2 - frame.size();
  costs_->ChargeAead(plaintext.size());
  ciobase::Buffer sealed =
      send_key_.Seal(ciotls::RecordType::kApplicationData, plaintext);

  // Outer frame: same addressing (the tunnel peer owns the same MAC on the
  // outer segment), dedicated ethertype, uniform size.
  ciobase::Buffer& outer = tx_stage_.Append();
  cionet::EthernetHeader outer_header{header->dst, header->src,
                                      kEtherTypeTunnel};
  outer_header.Serialize(outer);
  ciobase::Append(outer, sealed);
  tx_spans_.push_back(ciobase::ByteSpan(outer.data(), outer.size()));
  ++stats_.frames_sealed;
  return ciobase::OkStatus();
}

ciobase::Result<size_t> TunnelPort::SendFrames(
    std::span<const ciobase::ByteSpan> frames) {
  tx_stage_.Clear();
  tx_spans_.clear();
  ciobase::Status reject = ciobase::OkStatus();
  for (ciobase::ByteSpan frame : frames) {
    reject = SealOne(frame);
    if (!reject.ok()) {
      break;  // stop at the first frame the tunnel itself rejects
    }
  }
  if (tx_spans_.empty()) {
    if (!reject.ok()) {
      return reject;
    }
    return static_cast<size_t>(0);
  }
  // One inner batch for the whole sealed run: the inner port reads its host
  // counters once and rings one doorbell. If the inner port rejects
  // mid-batch, the already-sealed tail is dropped (their record sequence
  // numbers are burned, as in any seal-then-drop path); TCP above
  // retransmits the payload through fresh records.
  ciobase::Result<size_t> sent = inner_->SendFrames(tx_spans_);
  if (!sent.ok()) {
    return sent.status();
  }
  return *sent;
}

ciobase::Result<size_t> TunnelPort::ReceiveFrames(cionet::FrameBatch& batch,
                                                  size_t max_frames) {
  batch.Clear();
  ciobase::Result<size_t> outer_got =
      inner_->ReceiveFrames(rx_outer_, max_frames);
  if (!outer_got.ok()) {
    return outer_got.status();  // kLinkReset / kTimedOut pass through
  }
  for (size_t i = 0; i < rx_outer_.size(); ++i) {
    ciobase::ByteSpan outer = rx_outer_[i];
    auto header = cionet::EthernetHeader::Parse(outer);
    if (!header.ok() || header->ether_type != kEtherTypeTunnel) {
      continue;  // non-tunnel traffic on the outer segment: ignore
    }
    ciobase::ByteSpan sealed = outer.subspan(cionet::kEthernetHeaderSize);
    if (sealed.size() <= ciotls::kRecordHeaderSize) {
      ++stats_.auth_failures;
      continue;
    }
    costs_->ChargeAead(sealed.size());
    auto plaintext = recv_key_.Open(ciotls::RecordType::kApplicationData,
                                    sealed.subspan(ciotls::kRecordHeaderSize));
    if (!plaintext.ok()) {
      ++stats_.auth_failures;  // tampered/replayed tunnel frame: dropped
      continue;
    }
    if (plaintext->size() < 2) {
      ++stats_.auth_failures;
      continue;
    }
    uint16_t inner_len = ciobase::LoadLe16(plaintext->data());
    if (inner_len + 2u > plaintext->size()) {
      ++stats_.auth_failures;
      continue;
    }
    ++stats_.frames_opened;
    ciobase::Buffer& slot = batch.Append();
    slot.assign(plaintext->begin() + 2, plaintext->begin() + 2 + inner_len);
  }
  return batch.size();
}

}  // namespace cio
