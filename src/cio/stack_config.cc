#include "src/cio/stack_config.h"

namespace cio {

std::string_view StackProfileName(StackProfile profile) {
  switch (profile) {
    case StackProfile::kSyscallL5:
      return "syscall-l5";
    case StackProfile::kPassthroughL2:
      return "passthrough-l2";
    case StackProfile::kHardenedVirtio:
      return "hardened-virtio";
    case StackProfile::kDualBoundary:
      return "dual-boundary";
    case StackProfile::kDirectDevice:
      return "direct-device";
    case StackProfile::kTunneledL2:
      return "tunneled-l2";
  }
  return "?";
}

std::vector<StackProfile> AllStackProfiles() {
  return {StackProfile::kSyscallL5, StackProfile::kPassthroughL2,
          StackProfile::kHardenedVirtio, StackProfile::kDualBoundary,
          StackProfile::kDirectDevice, StackProfile::kTunneledL2};
}

ciotee::TrustModel ProfileTrustModel(StackProfile profile) {
  switch (profile) {
    case StackProfile::kSyscallL5:
      // No in-guest stack; app relies on (but does not trust) the host's.
      return ciotee::TrustModel::Binary();
    case StackProfile::kPassthroughL2:
    case StackProfile::kHardenedVirtio:
      return ciotee::TrustModel::Binary();
    case StackProfile::kDualBoundary:
      return ciotee::TrustModel::Ternary();
    case StackProfile::kDirectDevice:
      return ciotee::TrustModel::BinaryWithAttestedDevice();
    case StackProfile::kTunneledL2:
      return ciotee::TrustModel::Binary();
  }
  return ciotee::TrustModel::Binary();
}

StackConfig StackConfig::DefaultsFor(StackProfile profile, uint32_t node_id) {
  StackConfig config;
  config.profile = profile;
  config.node_id = node_id;
  // Only the dual-boundary design recovers from transient host faults; the
  // baselines keep their historical wedge-on-fault behavior.
  config.recovery.enabled = profile == StackProfile::kDualBoundary;
  if (profile == StackProfile::kDualBoundary) {
    // With the async datapath every payload byte is sealed end to end, so
    // the defensive per-byte receive copies at both layers are redundant
    // with the AEAD check: harvest in place, snapshot only headers.
    config.l5_receive = L5ReceiveMode::kSealed;
    config.l2_sealed_rx = true;
  }
  return config;
}

bool StackConfig::Valid() const {
  if (node_id == 0 || node_id > 254) {
    return false;  // must fit the 10.0.0.x host octet
  }
  if (!recovery.Valid()) {
    return false;
  }
  if (!l5_queue.Valid()) {
    return false;
  }
  const cionet::TcpConnection::Tuning& t = tcp_tuning;
  if (t.initial_rto_ns < t.min_rto_ns || t.initial_rto_ns > t.max_rto_ns) {
    return false;
  }
  if (t.send_buffer_limit == 0 || t.receive_buffer_limit == 0 ||
      t.max_retries <= 0) {
    return false;
  }
  if (net_devices == 0 || net_devices > 2) {
    return false;
  }
  if (net_devices == 2 && profile != StackProfile::kPassthroughL2 &&
      profile != StackProfile::kHardenedVirtio) {
    return false;  // bonding exists only below a virtio FramePort
  }
  if (enable_vsock && profile == StackProfile::kSyscallL5) {
    return false;  // no host boundary to carry a vsock device
  }
  return true;
}

}  // namespace cio
