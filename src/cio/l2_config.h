// L2Config: the complete, immutable configuration of the hardened L2
// transport (§3.2 "zero (re-)negotiation").
//
// Every parameter a paravirtual standard would negotiate at runtime — MAC,
// MTU, queue geometry, who computes checksums, data positioning — is fixed
// here at deployment time, serialized into the attestation measurement, and
// never read from shared memory again. There is no control plane: the
// config IS the protocol instance. (Live migration is handled by
// hot-swapping the device with a new fixed config, not by renegotiation.)

#ifndef SRC_CIO_L2_CONFIG_H_
#define SRC_CIO_L2_CONFIG_H_

#include <cstdint>

#include "src/base/bytes.h"
#include "src/net/wire.h"
#include "src/tee/attestation.h"

namespace cio {

// §3.2 "explore data positioning": where frame payloads live relative to
// the ring.
enum class DataPositioning : uint8_t {
  kInline = 0,      // payload inline in the ring slot with its header
  kSharedPool = 1,  // payload in a shared area via mask-protected offsets
  kIndirect = 2,    // mask-protected indirect descriptor table
};

std::string_view DataPositioningName(DataPositioning positioning);

// §3.2 "explore revocation": how the guest takes ownership of RX payloads.
enum class ReceiveOwnership : uint8_t {
  kCopy = 0,    // copy once into private memory (early, single fetch)
  kRevoke = 1,  // un-share the pages on the fly; no copy
};

struct L2Config {
  cionet::MacAddress mac;
  uint16_t mtu = 1500;
  // Ring geometry; both power-of-two by construction (§3.2 "alignment at a
  // power of two" makes masking total).
  uint16_t ring_slots = 256;
  uint32_t slot_size = 2048;  // includes the 8-byte slot header
  DataPositioning positioning = DataPositioning::kInline;
  ReceiveOwnership rx_ownership = ReceiveOwnership::kCopy;
  // Polling by default ("no notifications"); when false, the guest rings a
  // stateless, idempotent doorbell after posting.
  bool polling = true;
  // Checksum offload is fixed OFF: the guest computes its own checksums, so
  // there is nothing to negotiate and nothing for the host to lie about.

  // Canonical serialization, bound into the attestation measurement.
  ciobase::Buffer Serialize() const;
  ciotee::Measurement Measure() const;

  // Validates the power-of-two and size invariants.
  bool Valid() const;

  uint32_t SlotPayloadCapacity() const { return slot_size - 8; }
};

}  // namespace cio

#endif  // SRC_CIO_L2_CONFIG_H_
