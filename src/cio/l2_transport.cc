#include "src/cio/l2_transport.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/base/coverage.h"
#include "src/prof/profiler.h"

namespace cio {

// --- L2Config ----------------------------------------------------------------

std::string_view DataPositioningName(DataPositioning positioning) {
  switch (positioning) {
    case DataPositioning::kInline:
      return "inline";
    case DataPositioning::kSharedPool:
      return "shared-pool";
    case DataPositioning::kIndirect:
      return "indirect";
  }
  return "?";
}

ciobase::Buffer L2Config::Serialize() const {
  ciobase::Buffer out;
  ciobase::Append(out, mac.bytes);
  out.resize(out.size() + 10);
  uint8_t* p = out.data() + 6;
  ciobase::StoreLe16(p, mtu);
  ciobase::StoreLe16(p + 2, ring_slots);
  ciobase::StoreLe32(p + 4, slot_size);
  p[8] = static_cast<uint8_t>(positioning);
  p[9] = static_cast<uint8_t>(rx_ownership) |
         static_cast<uint8_t>(polling ? 0x80 : 0);
  return out;
}

ciotee::Measurement L2Config::Measure() const {
  return ciotee::Measure("cio-l2-transport-v1", Serialize());
}

bool L2Config::Valid() const {
  return ciobase::IsPowerOfTwo(ring_slots) && ciobase::IsPowerOfTwo(slot_size) &&
         slot_size > kL2SlotHeaderSize &&
         mtu + cionet::kEthernetHeaderSize <= SlotPayloadCapacity() &&
         mtu >= 68;
}

// --- L2Transport ---------------------------------------------------------------

namespace {
// Sealed-RX accounting: the bytes the guest must still inspect per frame
// before the AEAD layer takes over (slot header + enough payload prefix for
// the ethernet/IP/TCP headers the guest stack parses).
constexpr size_t kL2SealedSnapshotBytes = 64;
}  // namespace

L2Transport::L2Transport(ciotee::SharedRegion* region, const L2Config& config,
                         ciobase::CostModel* costs,
                         ciovirtio::KickTarget* kick,
                         const ciobase::RecoveryConfig& recovery)
    : region_(region),
      config_(config),
      layout_(config),
      costs_(costs),
      kick_(kick),
      recovery_(recovery),
      watchdog_(recovery) {
  assert(config.Valid());
  assert(recovery.Valid());
  assert(region->size() >= layout_.total);
}

void L2Transport::WriteTxSlot(uint64_t index, ciobase::ByteSpan frame) {
  uint8_t header[kL2SlotHeaderSize];
  switch (config_.positioning) {
    case DataPositioning::kInline: {
      ciobase::StoreLe32(header, static_cast<uint32_t>(frame.size()));
      ciobase::StoreLe32(header + 4, 0);
      costs_->ChargeCopy(frame.size());
      region_->GuestWrite(layout_.TxSlot(index), header);
      region_->GuestWrite(layout_.TxSlot(index) + kL2SlotHeaderSize, frame);
      break;
    }
    case DataPositioning::kSharedPool: {
      uint64_t chunk = layout_.TxChunk(index);
      costs_->ChargeCopy(frame.size());
      region_->GuestWrite(chunk, frame);
      ciobase::StoreLe32(header, static_cast<uint32_t>(frame.size()));
      ciobase::StoreLe32(header + 4,
                         static_cast<uint32_t>(chunk - layout_.tx_pool));
      region_->GuestWrite(layout_.TxSlot(index), header);
      break;
    }
    case DataPositioning::kIndirect: {
      uint64_t chunk = layout_.TxChunk(index);
      uint64_t table = layout_.TxIndirectTable(index);
      costs_->ChargeCopy(frame.size());
      region_->GuestWrite(chunk, frame);
      uint8_t entry[kL2IndirectEntrySize];
      ciobase::StoreLe32(entry,
                         static_cast<uint32_t>(chunk - layout_.tx_pool));
      ciobase::StoreLe32(entry + 4, static_cast<uint32_t>(frame.size()));
      region_->GuestWrite(table, entry);
      ciobase::StoreLe32(header, 1);  // entry count
      ciobase::StoreLe32(header + 4,
                         static_cast<uint32_t>(table - layout_.tx_indirect));
      region_->GuestWrite(layout_.TxSlot(index), header);
      break;
    }
  }
}

ciobase::Result<size_t> L2Transport::SendFrames(
    std::span<const ciobase::ByteSpan> frames) {
  if (frames.empty()) {
    return size_t{0};
  }
  CIO_PROF_SCOPE(costs_->profiler(), "l2.tx");
  // One advisory read of the host's consumed counter covers the whole batch —
  // and within a single simulated instant, all batches (the same-tick cache
  // below). Clamping it into [produced - slots, produced] keeps the
  // arithmetic total; a lying host can only cause overwrites of frames it
  // claimed to have consumed (loss of its own service, not of safety).
  uint64_t now_ns = costs_->clock()->now_ns();
  uint64_t consumed;
  if (tx_consumed_cache_ns_ == now_ns) {
    consumed = tx_consumed_cache_;
  } else {
    consumed = region_->GuestReadLe64(layout_.TxConsumed());
    tx_consumed_cache_ = consumed;
    tx_consumed_cache_ns_ = now_ns;
  }
  uint64_t in_flight = tx_produced_ - std::min(consumed, tx_produced_);
  size_t sent = 0;
  ciobase::Status reject = ciobase::OkStatus();
  for (ciobase::ByteSpan frame : frames) {
    if (frame.size() > config_.SlotPayloadCapacity() ||
        frame.size() > config_.mtu + cionet::kEthernetHeaderSize) {
      reject = ciobase::InvalidArgument("frame exceeds fixed capacity");
      break;
    }
    if (in_flight + sent >= layout_.slots) {
      ++stats_.tx_ring_full;
      reject = ciobase::ResourceExhausted("tx ring full");
      break;
    }
    WriteTxSlot(tx_produced_, frame);
    ++tx_produced_;
    ++stats_.frames_sent;
    ++sent;
  }
  if (sent > 0) {
    // Publish the produced counter once for the whole batch, and coalesce
    // the doorbell into a single kick (virtio-style event suppression).
    region_->GuestWriteLe64(layout_.TxProduced(), tx_produced_);
    if (!config_.polling && kick_ != nullptr) {
      costs_->ChargeNotify();
      kick_->Kick();
    }
    // Work is now in flight: the watchdog starts (or keeps) counting until
    // the host visibly consumes it.
    watchdog_.Arm(now_ns);
  }
  if (sent == 0 && !reject.ok()) {
    return reject;
  }
  return sent;
}

void L2Transport::TakePayloadInto(uint64_t masked_offset, uint32_t len,
                                  ciobase::Buffer& out) {
  out.resize(len);
  if (config_.rx_ownership == ReceiveOwnership::kRevoke) {
    // Un-share the chunk's pages: after this, the host cannot touch the
    // bytes, so the read needs no copy discipline (and no copy charge).
    size_t page = costs_->constants().page_size;
    size_t pages = (len + page - 1) / page;
    if (pages == 0) {
      pages = 1;
    }
    costs_->ChargePageUnshare(pages);
    stats_.pages_revoked += pages;
    region_->GuestReadOwned(masked_offset, out);
    // Hand the pages back once the frame has been consumed (the buffer we
    // fill is private), so the host can recycle the chunk.
    costs_->ChargePageReshare(pages);
  } else {
    // Sealed mode: the copy out of shared memory is fused with the AEAD
    // pass above us — account only the header-prefix snapshot the stack
    // parses before the payload is authenticated.
    costs_->ChargeCopy(sealed_rx_ ? std::min<size_t>(len, kL2SealedSnapshotBytes)
                                  : len);
    region_->GuestRead(masked_offset, out);
  }
}

void L2Transport::ReceiveInlineInto(uint64_t index, ciobase::Buffer& out) {
  // ONE fetch of the whole slot: header and payload land in private memory
  // together; this read is simultaneously the validation source, the use
  // source, and the mandatory copy.
  ciobase::Buffer slot = arena_.Acquire(config_.slot_size);
  costs_->ChargeCopy(sealed_rx_ ? kL2SlotHeaderSize + kL2SealedSnapshotBytes
                                : config_.slot_size);
  region_->GuestRead(layout_.RxSlot(index), slot);
  uint32_t len = ciobase::LoadLe32(slot.data());
  uint32_t capacity = config_.SlotPayloadCapacity();
  if (len > capacity) {
    ++stats_.rx_clamped_len;
    CIO_COV("l2.rx.len_clamped", ciobase::StatusCode::kOutOfRange);
    len = capacity;
  }
  out.assign(slot.begin() + kL2SlotHeaderSize,
             slot.begin() + kL2SlotHeaderSize + len);
  arena_.Release(std::move(slot));
}

void L2Transport::ReceivePoolInto(uint64_t index, ciobase::Buffer& out) {
  uint8_t header[kL2SlotHeaderSize];
  region_->GuestRead(layout_.RxSlot(index), header);  // single fetch
  uint32_t len = ciobase::LoadLe32(header);
  uint32_t offset = ciobase::LoadLe32(header + 4);
  if (len > config_.slot_size) {
    ++stats_.rx_clamped_len;
    CIO_COV("l2.rx.len_clamped", ciobase::StatusCode::kOutOfRange);
    len = static_cast<uint32_t>(config_.slot_size);
  }
  // Masking, not checking: whatever `offset` says, the access lands inside
  // the RX pool at a chunk boundary.
  uint64_t masked = layout_.MaskRxPoolOffset(offset);
  TakePayloadInto(masked, len, out);
}

void L2Transport::ReceiveIndirectInto(uint64_t index, ciobase::Buffer& out) {
  uint8_t header[kL2SlotHeaderSize];
  region_->GuestRead(layout_.RxSlot(index), header);  // fetch 1: slot
  uint32_t count = ciobase::LoadLe32(header);
  uint32_t table_offset = ciobase::LoadLe32(header + 4);
  if (count > kL2MaxIndirectEntries) {
    count = kL2MaxIndirectEntries;
  }
  if (count == 0) {
    ++stats_.rx_dropped_empty;
    return;
  }
  uint64_t table = layout_.MaskRxIndirectOffset(table_offset);
  uint8_t entries[kL2MaxIndirectEntries * kL2IndirectEntrySize];
  ciobase::MutableByteSpan entry_span(entries, count * kL2IndirectEntrySize);
  region_->GuestRead(table, entry_span);  // fetch 2: whole table at once
  ciobase::Buffer part = arena_.Acquire(0);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t offset = ciobase::LoadLe32(entries + i * 8);
    uint32_t len = ciobase::LoadLe32(entries + i * 8 + 4);
    if (len > config_.slot_size) {
      ++stats_.rx_clamped_len;
      len = static_cast<uint32_t>(config_.slot_size);
    }
    uint64_t masked = layout_.MaskRxPoolOffset(offset);
    TakePayloadInto(masked, len, part);
    ciobase::Append(out, part);
    if (out.size() > config_.SlotPayloadCapacity()) {
      out.resize(config_.SlotPayloadCapacity());
      ++stats_.rx_clamped_len;
      break;
    }
  }
  arena_.Release(std::move(part));
}

void L2Transport::ReceiveSlotInto(uint64_t index, ciobase::Buffer& out) {
  out.clear();
  switch (config_.positioning) {
    case DataPositioning::kInline:
      ReceiveInlineInto(index, out);
      break;
    case DataPositioning::kSharedPool:
      ReceivePoolInto(index, out);
      break;
    case DataPositioning::kIndirect:
      ReceiveIndirectInto(index, out);
      break;
  }
}

ciobase::Result<size_t> L2Transport::ReceiveFrames(cionet::FrameBatch& batch,
                                                   size_t max_frames) {
  batch.Clear();
  if (max_frames == 0) {
    return size_t{0};
  }
  CIO_PROF_SCOPE(costs_->profiler(), "l2.rx");
  uint64_t now_ns;
  uint64_t produced;
  uint64_t consumed;
  {
    CIO_PROF_SCOPE(costs_->profiler(), "l2.counters");
    costs_->ChargeRingPoll();
    now_ns = costs_->clock()->now_ns();
    produced = region_->GuestReadLe64(layout_.RxProduced());
    consumed = region_->GuestReadLe64(layout_.TxConsumed());
    tx_consumed_cache_ = consumed;
    tx_consumed_cache_ns_ = now_ns;
  }

  // Progress detection for the watchdog: the host visibly advanced if it
  // consumed TX frames (counter moved, coherently) since the last poll.
  bool progress = false;
  if (consumed != last_tx_consumed_ && consumed <= tx_produced_) {
    last_tx_consumed_ = consumed;
    progress = true;
  }

  // At most `slots` frames can genuinely be pending: a stormed counter is
  // incoherent, a rewound counter (pending > 2^63) doubly so.
  uint64_t pending = produced - rx_consumed_;
  bool rx_coherent = pending <= layout_.slots;
  if (pending != 0 && !rx_coherent) {
    ++stats_.rx_incoherent;
    CIO_COV("l2.rx.incoherent_counter", ciobase::StatusCode::kHostViolation);
    if (!recovery_.enabled) {
      // Seed behavior: clamp a stormed claim to the ring size and keep
      // draining (the garbage slots are dropped by validation); treat a
      // rewound counter as "nothing new".
      pending = pending > (1ULL << 63) ? 0 : layout_.slots;
    } else {
      // Recovery mode: an incoherent counter is a stall in disguise — do
      // not chase it; let the watchdog decide.
      pending = 0;
    }
  }

  uint64_t take = std::min<uint64_t>(pending, max_frames);
  for (uint64_t k = 0; k < take; ++k) {
    ciobase::Buffer& out = batch.Append();
    ReceiveSlotInto(rx_consumed_, out);
    ++rx_consumed_;
    if (out.empty()) {
      ++stats_.rx_dropped_empty;
      CIO_COV("l2.rx.dropped_empty", ciobase::StatusCode::kUnavailable);
      batch.DropLast();
    } else {
      ++stats_.frames_received;
      CIO_COV("l2.rx.frame", ciobase::StatusCode::kOk);
    }
  }
  if (take > 0) {
    // Publish the consumed counter once for the whole batch.
    region_->GuestWriteLe64(layout_.RxConsumed(), rx_consumed_);
    progress = true;
  }

  if (progress) {
    watchdog_.NoteProgress(now_ns);
  } else {
    bool work_pending = tx_produced_ > last_tx_consumed_ || !rx_coherent;
    if (work_pending) {
      watchdog_.Arm(now_ns);
    } else {
      watchdog_.Disarm();
    }
    if (watchdog_.Expired(now_ns)) {
      ++stats_.watchdog_fires;
      if (watchdog_.Exhausted()) {
        CIO_COV("l2.watchdog", ciobase::StatusCode::kTimedOut);
        return ciobase::TimedOut("l2 link: reset budget exhausted");
      }
      CIO_COV("l2.watchdog", ciobase::StatusCode::kLinkReset);
      CIO_RETURN_IF_ERROR(ResetRing());
      watchdog_.NoteReset(now_ns);
      return ciobase::LinkReset("l2 ring reset");
    }
  }
  return batch.size();
}

ciobase::Status L2Transport::ResetRing() {
  // Re-verify the fixed geometry before trusting any offset again. The
  // config is attested and immutable, so this can only fail if the region
  // itself shrank — a host violation, not a recoverable fault.
  if (!config_.Valid() || region_->size() < layout_.total) {
    return ciobase::HostViolation("l2 layout no longer fits the region");
  }
  ++epoch_;
  region_->GuestWriteLe64(layout_.GuestEpoch(), epoch_);
  // Fresh counters: both guest shadows and all four shared cells. The
  // host-owned cells live in shared memory, so the guest can zero them; an
  // honest host adopts the epoch and republishes from zero, a hostile one
  // just resumes lying — which the coherence checks absorb as before.
  tx_produced_ = 0;
  rx_consumed_ = 0;
  last_tx_consumed_ = 0;
  tx_consumed_cache_ = 0;
  tx_consumed_cache_ns_ = ~0ull;
  region_->GuestWriteLe64(layout_.TxProduced(), 0);
  region_->GuestWriteLe64(layout_.TxConsumed(), 0);
  region_->GuestWriteLe64(layout_.RxProduced(), 0);
  region_->GuestWriteLe64(layout_.RxConsumed(), 0);
  // Drain the RX ring: zero every slot header so a stale frame from the old
  // epoch can never be re-parsed as fresh (it reads as len 0 and drops).
  uint8_t zero_header[kL2SlotHeaderSize] = {};
  for (uint64_t i = 0; i < layout_.slots; ++i) {
    region_->GuestWrite(layout_.RxSlot(i), zero_header);
  }
  ++stats_.ring_resets;
  if (!config_.polling && kick_ != nullptr) {
    costs_->ChargeNotify();
    kick_->Kick();
  }
  return ciobase::OkStatus();
}

std::vector<ciohost::SurfaceField> L2Transport::AttackSurface() const {
  using ciohost::FieldKind;
  using ciohost::SurfaceField;
  std::vector<SurfaceField> surface;
  surface.push_back({FieldKind::kIndex, layout_.RxProduced(), 8});
  surface.push_back({FieldKind::kIndex, layout_.TxConsumed(), 8});
  // First few RX slot headers: length + offset fields.
  for (uint64_t i = 0; i < std::min<uint64_t>(layout_.slots, 4); ++i) {
    surface.push_back({FieldKind::kLength, layout_.RxSlot(i), 4});
    surface.push_back({FieldKind::kOffset, layout_.RxSlot(i) + 4, 4});
  }
  surface.push_back(
      {FieldKind::kPayload, layout_.rx_pool,
       static_cast<uint32_t>(std::min<uint64_t>(layout_.slots * layout_.slot_size,
                                                0xffffffffu))});
  return surface;
}

}  // namespace cio
