// Direct Device Assignment (§3.4): the TEE-I/O / TDISP alternative to
// hardened paravirtual interfaces.
//
// Instead of distrusting the device and hardening the driver interface,
// the hardware path extends PCIe with device attestation (SPDM) and link
// protection (IDE). Once the TEE has attested the device, the device joins
// the TCB, and the TEE<->device channel is AEAD-protected end to end —
// "there is no need to harden drivers": the host relaying the traffic can
// corrupt or replay TLPs, but every such attempt fails authentication and
// is dropped.
//
// Model:
//  * DdaDevice — the (genuinely trusted, once attested) device. It answers
//    SPDM-style attestation requests through a host-visible mailbox,
//    derives the IDE session keys, and relays frames between the IDE link
//    and the network fabric.
//  * DdaTransport — the guest driver: attests the device (nonce ->
//    HMAC-signed report -> verify measurement), derives the same keys, and
//    then exchanges IDE-sealed frames over a deliberately UNHARDENED
//    mailbox ring. The only structural defense the ring has is what PCIe
//    framing gives for free (fixed-size slots, so lengths are clamped by
//    construction); everything else — integrity, confidentiality,
//    ordering, replay — comes from the IDE AEAD with per-direction
//    sequence numbers (reusing the TLS record SealingKey).
//
// The trade-offs the paper lists are measurable here: the host sees only
// ciphertext TLP sizes and timings (observability like L2 or lower), the
// per-frame AEAD replaces the masking/copy discipline (bench_dda), and the
// device's own complexity is added to the TCB (tcb.cc).

#ifndef SRC_CIO_DDA_H_
#define SRC_CIO_DDA_H_

#include <memory>
#include <optional>

#include "src/base/clock.h"
#include "src/hostsim/adversary.h"
#include "src/hostsim/observability.h"
#include "src/net/fabric.h"
#include "src/net/port.h"
#include "src/tee/attestation.h"
#include "src/tee/shared_region.h"
#include "src/tls/record.h"

namespace cio {

struct DdaConfig {
  cionet::MacAddress mac;
  uint16_t mtu = 1500;
  uint16_t ring_slots = 256;   // power of two
  uint32_t slot_size = 2048;   // fixed TLP-like framing, power of two
  // The device's code identity; its measurement is what the guest expects.
  std::string device_identity = "cio-dda-nic-fw-v1";
};

// Mailbox layout: control area for the SPDM exchange + two one-way rings.
struct DdaLayout {
  explicit DdaLayout(const DdaConfig& config);
  // Control cells.
  uint64_t RequestFlag() const { return 0; }
  uint64_t RequestNonce() const { return 64; }    // 32 bytes
  uint64_t ResponseFlag() const { return 128; }
  uint64_t ResponseLen() const { return 132; }
  uint64_t ResponseBody() const { return 192; }   // up to 512 bytes
  // Counters.
  uint64_t TxProduced() const { return 704; }
  uint64_t TxConsumed() const { return 768; }
  uint64_t RxProduced() const { return 832; }
  uint64_t RxConsumed() const { return 896; }
  uint64_t TxSlot(uint64_t index) const;
  uint64_t RxSlot(uint64_t index) const;

  uint64_t slots;
  uint64_t slot_size;
  uint64_t tx_ring;
  uint64_t rx_ring;
  uint64_t total;
};

// Derives the per-direction IDE keys from the device provisioning secret
// (the SPDM session-key stand-in) and both nonces.
struct IdeKeys {
  ciotls::SealingKey guest_to_device;
  ciotls::SealingKey device_to_guest;
};
IdeKeys DeriveIdeKeys(ciobase::ByteSpan provisioning_secret,
                      ciobase::ByteSpan guest_nonce,
                      ciobase::ByteSpan device_nonce);

class DdaDevice {
 public:
  DdaDevice(ciotee::SharedRegion* region, DdaConfig config,
            cionet::Fabric* fabric, std::string name,
            const ciotee::AttestationAuthority* authority,
            ciobase::ByteSpan provisioning_secret,
            ciohost::Adversary* adversary,
            ciohost::ObservabilityLog* observability,
            ciobase::SimClock* clock);

  // Handles attestation requests and relays frames in both directions.
  void Poll();

  ciotee::Measurement measurement() const { return measurement_; }

  struct Stats {
    uint64_t attestations = 0;
    uint64_t frames_tx = 0;  // guest -> fabric
    uint64_t frames_rx = 0;  // fabric -> guest
    uint64_t auth_failures = 0;  // tampered TLPs from the "guest" side
  };
  const Stats& stats() const { return stats_; }

 private:
  void HandleAttestation();
  void RelayTx();
  void RelayRx();

  ciotee::SharedRegion* region_;
  DdaConfig config_;
  DdaLayout layout_;
  cionet::Fabric* fabric_;
  cionet::EndpointId endpoint_;
  const ciotee::AttestationAuthority* authority_;
  ciobase::Buffer provisioning_secret_;
  ciotee::Measurement measurement_;
  ciohost::Adversary* adversary_;
  ciohost::ObservabilityLog* observability_;
  ciobase::SimClock* clock_;
  ciobase::Rng rng_{0xdda};
  std::optional<IdeKeys> keys_;
  uint64_t tx_consumed_ = 0;
  uint64_t rx_produced_ = 0;
  Stats stats_;
};

class DdaTransport final : public cionet::FramePort {
 public:
  DdaTransport(ciotee::SharedRegion* region, DdaConfig config,
               DdaDevice* device, ciobase::CostModel* costs,
               const ciotee::AttestationAuthority* verifier,
               uint64_t seed);

  // SPDM-style handshake: challenge the device, verify its measurement,
  // derive the IDE keys. Must succeed before frames flow.
  ciobase::Status Attest(ciobase::ByteSpan provisioning_secret);

  // Batched IDE datapath: one TxConsumed read and one TxProduced publish
  // per send batch, one RxProduced read and one RxConsumed publish per
  // receive batch. Tampered TLPs fail IDE authentication and are silently
  // skipped inside the batch (counted in stats().auth_failures).
  ciobase::Result<size_t> SendFrames(
      std::span<const ciobase::ByteSpan> frames) override;
  ciobase::Result<size_t> ReceiveFrames(cionet::FrameBatch& batch,
                                        size_t max_frames) override;
  cionet::MacAddress mac() const override { return config_.mac; }
  uint16_t mtu() const override { return config_.mtu; }

  std::vector<ciohost::SurfaceField> AttackSurface() const;

  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t frames_received = 0;
    uint64_t auth_failures = 0;  // host tampered with the IDE link
    uint64_t ring_full = 0;
  };
  const Stats& stats() const { return stats_; }
  bool attested() const { return keys_.has_value(); }

 private:
  ciotee::SharedRegion* region_;
  DdaConfig config_;
  DdaLayout layout_;
  DdaDevice* device_;
  ciobase::CostModel* costs_;
  const ciotee::AttestationAuthority* verifier_;
  ciobase::Rng rng_;
  std::optional<IdeKeys> keys_;
  uint64_t tx_produced_ = 0;
  uint64_t rx_consumed_ = 0;
  Stats stats_;
};

}  // namespace cio

#endif  // SRC_CIO_DDA_H_
