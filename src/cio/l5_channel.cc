#include "src/cio/l5_channel.h"

#include <algorithm>
#include <cstring>

#include "src/base/coverage.h"
#include "src/prof/profiler.h"
#include "src/tls/record.h"

namespace cio {

L5Channel::L5Channel(ciotee::CompartmentManager* compartments,
                     ciotee::CompartmentId app, ciotee::CompartmentId io,
                     cionet::NetStack* stack, ciobase::CostModel* costs,
                     L5ReceiveMode receive_mode, L5BoundaryKind boundary_kind,
                     const L5QueueConfig& queues)
    : compartments_(compartments),
      app_(app),
      io_(io),
      stack_(stack),
      costs_(costs),
      receive_mode_(receive_mode),
      boundary_kind_(boundary_kind),
      queues_(queues) {
  InitQueues();
}

void L5Channel::InitQueues() {
  if (!queues_.Valid()) {
    return;
  }
  // ONE registration for the channel's lifetime: control block, both rings,
  // and the slot pool live together in the I/O heap, allocated by the
  // trusted component so the stack never validates a pointer.
  auto handle = compartments_->Allocate(app_, io_, queues_.TotalBytes());
  if (!handle.ok()) {
    return;  // heap too small for the async datapath; channel stays inert
  }
  auto span = compartments_->Access(app_, *handle);
  if (!span.ok()) {
    return;
  }
  region_ = *span;
  std::memset(region_.data(), 0, kSqcqControlBytes);
  pool_.Init(region_.subspan(queues_.PoolOffset()), queues_.pool_slots,
             queues_.slot_size);
  queues_ready_ = true;
}

void L5Channel::ChargeCrossing() {
  ++stats_.crossings;
  if (boundary_kind_ == L5BoundaryKind::kCompartment) {
    // SwitchTo already charges the compartment switch; nothing extra.
  } else {
    // Dual-enclave alternative: a full TEE boundary round trip on top.
    costs_->ChargeTeeSwitch();
  }
}

L5Channel::Crossing::Crossing(L5Channel* channel) : channel_(channel) {
  channel_->ChargeCrossing();
  channel_->compartments_->SwitchTo(channel_->io_);
}

L5Channel::Crossing::~Crossing() {
  channel_->compartments_->SwitchTo(channel_->app_);
}

ciobase::Result<cionet::SocketId> L5Channel::Connect(cionet::Ipv4Address ip,
                                                     uint16_t port) {
  Crossing crossing(this);
  return stack_->TcpConnect(ip, port);
}

ciobase::Result<cionet::SocketId> L5Channel::Listen(uint16_t port) {
  Crossing crossing(this);
  return stack_->TcpListen(port);
}

ciobase::Result<cionet::SocketId> L5Channel::Accept(
    cionet::SocketId listener) {
  Crossing crossing(this);
  return stack_->TcpAccept(listener);
}

ciobase::Result<cionet::TcpState> L5Channel::State(cionet::SocketId socket) {
  Crossing crossing(this);
  return stack_->GetTcpState(socket);
}

ciobase::Status L5Channel::Close(cionet::SocketId socket) {
  // An orderly close must not outrun this socket's queued submissions: the
  // FIN would precede (or discard) data still sitting in the SQ. One
  // doorbell pushes whatever is pending before the stack sees the close.
  if (HasInFlightSends(socket)) {
    (void)Doorbell();
  }
  Crossing crossing(this);
  return stack_->TcpClose(socket);
}

bool L5Channel::HasInFlightSends(cionet::SocketId socket) const {
  for (const auto& [user_data, entry] : in_flight_) {
    if (entry.op == kSqOpSend && entry.socket == socket.value) {
      return true;
    }
  }
  return false;
}

ciobase::Status L5Channel::Abort(cionet::SocketId socket) {
  Crossing crossing(this);
  return stack_->TcpAbort(socket);
}

ciobase::Result<size_t> L5Channel::AcceptPending(cionet::SocketId listener) {
  Crossing crossing(this);
  return stack_->TcpAcceptPending(listener);
}

ciobase::Result<bool> L5Channel::Readable(cionet::SocketId socket) {
  // Harvested-but-undelivered CQ events count as readable — once a recv
  // completion lands, the bytes live in app-side events, not in the stack's
  // socket buffer. Checking them first also avoids a boundary crossing for
  // the common "data already here" case.
  auto pending = events_.find(socket.value);
  if (pending != events_.end() && !pending->second.empty()) {
    return true;
  }
  Crossing crossing(this);
  return stack_->TcpReadable(socket);
}

ciobase::Result<size_t> L5Channel::SendSpace(cionet::SocketId socket) {
  Crossing crossing(this);
  return stack_->TcpSendSpace(socket);
}

ciobase::Result<cionet::Ipv4Address> L5Channel::Peer(
    cionet::SocketId socket) {
  Crossing crossing(this);
  return stack_->GetTcpPeer(socket);
}

// --- Layout helpers ---------------------------------------------------------

ciobase::MutableByteSpan L5Channel::SqeSpan(uint32_t index) {
  uint32_t masked = index & (queues_.sq_entries - 1);
  return region_.subspan(queues_.SqOffset() + masked * kSqeSize, kSqeSize);
}

ciobase::MutableByteSpan L5Channel::CqeSpan(uint32_t index) {
  uint32_t masked = index & (queues_.cq_entries - 1);
  return region_.subspan(queues_.CqOffset() + masked * kCqeSize, kCqeSize);
}

bool L5Channel::SqFull() const {
  // sq_consumed_ comes back through the call gate at doorbell time, never
  // from host-writable memory, so this check cannot be spoofed into
  // overwriting unconsumed entries.
  return sq_tail_ - sq_consumed_ >= queues_.sq_entries;
}

// --- Submission -------------------------------------------------------------

uint32_t L5Channel::SlotsForMessage(size_t payload_bytes, bool use_tls,
                                    uint32_t slot_size) {
  if (!use_tls) {
    // [len u32][seq u64] then raw payload, streamed across slots.
    return static_cast<uint32_t>((12 + payload_bytes + slot_size - 1) /
                                 slot_size);
  }
  // Sealed framing: a 12-byte header record first, then payload fragments
  // record-per-fragment, packed back to back; a fragment needs at least one
  // payload byte past the record overhead to be worth starting in a slot.
  constexpr size_t kOverhead = ciotls::kSealedRecordOverhead;
  constexpr size_t kHeaderRecord = 12 + kOverhead;
  uint32_t slots = 1;
  size_t room = slot_size - kHeaderRecord;
  size_t remaining = payload_bytes;
  while (remaining > 0) {
    if (room < kOverhead + 1) {
      ++slots;
      room = slot_size;
    }
    size_t n =
        std::min({remaining, room - kOverhead, ciotls::kMaxRecordPayload});
    remaining -= n;
    room -= n + kOverhead;
  }
  return slots;
}

ciobase::MutableByteSpan L5Channel::MessageWriter::NextSpan(size_t min_bytes) {
  if (channel_ == nullptr || !active_) {
    return {};
  }
  while (current_ < slots_.size()) {
    ciobase::MutableByteSpan slot = channel_->pool_.SlotSpan(slots_[current_]);
    size_t remaining = slot.size() - used_[current_];
    if (remaining >= min_bytes && remaining > 0) {
      return slot.subspan(used_[current_]);
    }
    ++current_;  // the wasted tail stays unsent: segments carry used bytes
  }
  return {};
}

void L5Channel::MessageWriter::Commit(size_t n) {
  if (channel_ == nullptr || !active_ || current_ >= slots_.size()) {
    return;
  }
  used_[current_] += static_cast<uint32_t>(n);
}

bool L5Channel::BeginMessage(cionet::SocketId socket, size_t payload_bytes,
                             bool use_tls, MessageWriter& writer) {
  if (!queues_ready_ || payload_bytes > kMaxSqMessageBytes) {
    return false;
  }
  uint32_t needed = SlotsForMessage(payload_bytes, use_tls, queues_.slot_size);
  if (needed > kSqMaxSegments) {
    return false;
  }
  if (SqFull() || pool_.free_slots() < needed) {
    ++stats_.sq_backpressure;
    CIO_COV("l5.sq.backpressure", ciobase::StatusCode::kResourceExhausted);
    return false;
  }
  writer.channel_ = this;
  writer.socket_ = socket.value;
  writer.slots_.clear();
  writer.used_.clear();
  writer.current_ = 0;
  writer.active_ = true;
  for (uint32_t i = 0; i < needed; ++i) {
    writer.slots_.push_back(*pool_.Acquire());
    writer.used_.push_back(0);
  }
  return true;
}

void L5Channel::SubmitSqe(SqEntry& sqe) {
  sqe.user_data = next_user_data_++;
  EncodeSqe(sqe, SqeSpan(sq_tail_));
  ++sq_tail_;
  ciobase::StoreLe32(ctrl() + kCtrlSqTail, sq_tail_);
  InFlight entry;
  entry.op = sqe.op;
  entry.seg_count = sqe.seg_count;
  entry.socket = sqe.socket;
  for (size_t i = 0; i < sqe.seg_count; ++i) {
    entry.segs[i] = sqe.segs[i];
  }
  in_flight_[sqe.user_data] = entry;
  ++stats_.sq_submitted;
}

void L5Channel::SubmitMessage(MessageWriter& writer) {
  if (!writer.active_ || writer.channel_ != this) {
    return;
  }
  writer.active_ = false;
  SqEntry sqe;
  sqe.op = kSqOpSend;
  sqe.socket = writer.socket_;
  size_t total = 0;
  for (size_t i = 0; i < writer.slots_.size(); ++i) {
    if (writer.used_[i] == 0) {
      pool_.Release(writer.slots_[i]);  // over-reserved trailing slot
      continue;
    }
    sqe.segs[sqe.seg_count] = SqSegment{writer.slots_[i], writer.used_[i]};
    ++sqe.seg_count;
    total += writer.used_[i];
  }
  if (sqe.seg_count == 0) {
    return;
  }
  SubmitSqe(sqe);
  stats_.bytes_sent += total;
}

void L5Channel::AbandonMessage(MessageWriter& writer) {
  if (!writer.active_ || writer.channel_ != this) {
    return;
  }
  writer.active_ = false;
  for (uint16_t slot : writer.slots_) {
    pool_.Release(slot);
  }
}

ciobase::Result<size_t> L5Channel::SubmitStream(cionet::SocketId socket,
                                                ciobase::ByteSpan data) {
  if (!queues_ready_) {
    return ciobase::FailedPrecondition("async queues unavailable");
  }
  CIO_PROF_SCOPE(costs_->profiler(), "l5.submit");
  size_t accepted = 0;
  while (accepted < data.size()) {
    if (SqFull() || pool_.free_slots() == 0) {
      ++stats_.sq_backpressure;
      break;
    }
    SqEntry sqe;
    sqe.op = kSqOpSend;
    sqe.socket = socket.value;
    size_t total = 0;
    while (sqe.seg_count < kSqMaxSegments &&
           accepted + total < data.size()) {
      auto slot = pool_.Acquire();
      if (!slot) {
        ++stats_.sq_backpressure;
        break;
      }
      size_t n = std::min<size_t>(queues_.slot_size,
                                  data.size() - accepted - total);
      // The app's one write into registered memory; the stack transmits
      // from the slot in place.
      std::memcpy(pool_.SlotSpan(*slot).data(), data.data() + accepted + total,
                  n);
      sqe.segs[sqe.seg_count] = SqSegment{*slot, static_cast<uint32_t>(n)};
      ++sqe.seg_count;
      total += n;
    }
    if (sqe.seg_count == 0) {
      break;
    }
    SubmitSqe(sqe);
    stats_.bytes_sent += total;
    accepted += total;
  }
  return accepted;
}

void L5Channel::EnsureRecvArmed(cionet::SocketId socket) {
  if (!queues_ready_) {
    return;
  }
  uint32_t& armed = armed_[socket.value];
  // Never let armed receives drain the pool: a quarter stays reserved for
  // submissions, or a many-connection server deadlocks (all slots parked in
  // idle recv entries, no slot left to send the bytes that would complete
  // them). Sockets that lose the arming race use ReceiveOne's direct
  // fallback instead.
  const size_t send_reserve =
      std::max<size_t>(queues_.recv_segments, queues_.pool_slots / 4);
  while (armed < queues_.recv_entries) {
    if (SqFull() || pool_.free_slots() < queues_.recv_segments + send_reserve) {
      ++stats_.sq_backpressure;
      return;
    }
    SqEntry sqe;
    sqe.op = kSqOpRecv;
    sqe.socket = socket.value;
    sqe.seg_count = static_cast<uint8_t>(queues_.recv_segments);
    for (uint32_t i = 0; i < queues_.recv_segments; ++i) {
      sqe.segs[i] = SqSegment{*pool_.Acquire(), queues_.slot_size};
    }
    SubmitSqe(sqe);
    ++armed;
  }
}

// --- The doorbell crossing --------------------------------------------------

ciobase::Status L5Channel::Doorbell() {
  if (!queues_ready_) {
    return ciobase::FailedPrecondition("async queues unavailable");
  }
  CIO_PROF_SCOPE(costs_->profiler(), "l5.doorbell");
  ciobase::Status link = ciobase::OkStatus();
  {
    Crossing crossing(this);
    costs_->ChargeRingPoll();
    {
      CIO_PROF_SCOPE(costs_->profiler(), "l5.sq_consume");
      IoConsumeSq();
    }
    link = stack_->Poll();
    {
      CIO_PROF_SCOPE(costs_->profiler(), "l5.io_service");
      IoService();
    }
    // Consumed count returns through the call gate (a syscall-style return
    // value), so SQ-full detection never trusts host-writable memory.
    sq_consumed_ = io_sq_head_;
  }
  ++stats_.doorbells;
  ciobase::Status harvested = Harvest();
  if (!harvested.ok()) {
    return harvested;
  }
  return link;
}

void L5Channel::IoConsumeSq() {
  uint32_t tail = ciobase::LoadLe32(ctrl() + kCtrlSqTail);
  if (tail - io_sq_head_ > queues_.sq_entries) {
    // Host-scribbled tail: clamp to one ring's worth; garbage entries
    // decode to ops on unknown sockets and complete as resets.
    CIO_COV("l5.sq.runaway_tail", ciobase::StatusCode::kOutOfRange);
    tail = io_sq_head_ + queues_.sq_entries;
  }
  while (io_sq_head_ != tail) {
    SqEntry sqe = DecodeSqe(SqeSpan(io_sq_head_));
    ++io_sq_head_;
    IoSocketQueues& queues = io_queues_[sqe.socket];
    if (sqe.op == kSqOpSend) {
      queues.sends.push_back(sqe);
    } else if (sqe.op == kSqOpRecv) {
      queues.recvs.push_back(sqe);
    }
    // Unknown opcodes are dropped: the app is trusted, so these can only
    // come from host scribbling over the ring.
  }
  ciobase::StoreLe32(ctrl() + kCtrlSqHead, io_sq_head_);
}

void L5Channel::IoService() {
  DrainHeldCqes();
  for (auto& [socket, queues] : io_queues_) {
    IoServiceSends(socket, queues);
    IoServiceRecvs(socket, queues);
  }
  for (auto it = io_queues_.begin(); it != io_queues_.end();) {
    if (it->second.sends.empty() && it->second.recvs.empty()) {
      it = io_queues_.erase(it);
    } else {
      ++it;
    }
  }
}

void L5Channel::IoServiceSends(uint32_t socket, IoSocketQueues& queues) {
  while (!queues.sends.empty()) {
    const SqEntry& sqe = queues.sends.front();
    size_t total = 0;
    for (size_t i = 0; i < sqe.seg_count; ++i) {
      total += sqe.segs[i].len;
    }
    CqEntry cqe;
    cqe.op = kSqOpSend;
    cqe.user_data = sqe.user_data;
    cqe.epoch = ciobase::LoadLe32(ctrl() + kCtrlEpoch);
    auto space = stack_->TcpSendSpace(cionet::SocketId{socket});
    if (!space.ok()) {
      cqe.code = kCqReset;  // socket gone underneath the queue
      PostCqe(socket, cqe);
      queues.sends.pop_front();
      continue;
    }
    if (*space < total) {
      break;  // all-or-nothing per entry; retry at the next doorbell
    }
    bool failed = false;
    for (size_t i = 0; i < sqe.seg_count && !failed; ++i) {
      ciobase::MutableByteSpan span = pool_.SlotSpan(sqe.segs[i].slot);
      size_t len = std::min<size_t>(sqe.segs[i].len, span.size());
      auto sent = stack_->TcpSend(cionet::SocketId{socket},
                                  ciobase::ByteSpan(span.data(), len));
      failed = !sent.ok() || *sent != len;
    }
    if (failed) {
      cqe.code = kCqReset;
    } else {
      cqe.code = kCqOk;
      cqe.seg_count = sqe.seg_count;
      for (size_t i = 0; i < sqe.seg_count; ++i) {
        cqe.seg_len[i] = sqe.segs[i].len;
      }
      cqe.result = static_cast<uint32_t>(total);
    }
    PostCqe(socket, cqe);
    queues.sends.pop_front();
  }
}

void L5Channel::IoServiceRecvs(uint32_t socket, IoSocketQueues& queues) {
  while (!queues.recvs.empty()) {
    const SqEntry& sqe = queues.recvs.front();
    CqEntry cqe;
    cqe.op = kSqOpRecv;
    cqe.user_data = sqe.user_data;
    cqe.epoch = ciobase::LoadLe32(ctrl() + kCtrlEpoch);
    auto readable = stack_->TcpReadable(cionet::SocketId{socket});
    if (!readable.ok()) {
      cqe.code = kCqReset;
      PostCqe(socket, cqe);
      queues.recvs.pop_front();
      continue;
    }
    if (!*readable) {
      break;
    }
    size_t got_total = 0;
    bool eof = false;
    bool reset = false;
    for (size_t i = 0; i < sqe.seg_count; ++i) {
      ciobase::MutableByteSpan span = pool_.SlotSpan(sqe.segs[i].slot);
      size_t cap = std::min<size_t>(sqe.segs[i].len, span.size());
      auto got =
          stack_->TcpReceive(cionet::SocketId{socket}, span.first(cap));
      if (!got.ok()) {
        if (got.status().code() == ciobase::StatusCode::kFailedPrecondition) {
          eof = true;
        } else {
          reset = true;
        }
        break;
      }
      if (*got == 0) {
        break;
      }
      cqe.seg_len[i] = static_cast<uint32_t>(*got);
      cqe.seg_count = static_cast<uint8_t>(i + 1);
      got_total += *got;
      if (*got < cap) {
        break;  // drained the socket
      }
    }
    if (got_total > 0) {
      cqe.code = kCqOk;
      cqe.result = static_cast<uint32_t>(got_total);
      PostCqe(socket, cqe);
      queues.recvs.pop_front();
      continue;  // a pending EOF/reset completes the next armed entry
    }
    if (eof || reset) {
      cqe.code = eof ? kCqEof : kCqReset;
      cqe.seg_count = 0;
      PostCqe(socket, cqe);
      queues.recvs.pop_front();
      continue;
    }
    break;
  }
}

void L5Channel::PostCqe(uint32_t socket, const CqEntry& cqe) {
  uint32_t head = ciobase::LoadLe32(ctrl() + kCtrlCqHead);
  uint32_t used = io_cq_tail_ - head;
  if (used > queues_.cq_entries) {
    // Hostile head: an honest app can only publish a head inside
    // [io_cq_tail_ - cq_entries, io_cq_tail_]. Treat the ring as full (the
    // completion is held, nothing dropped) and surface the forgery as a
    // typed edge; the app re-asserts its true head every Harvest, so the
    // wedge heals at the next doorbell.
    CIO_COV("l5.cq.incoherent_head", ciobase::StatusCode::kOutOfRange);
    used = queues_.cq_entries;
  }
  if (used >= queues_.cq_entries) {
    // CQ overflow backpressure: hold the completion io-side, in order, and
    // drain once the app reaps. Nothing is dropped.
    held_cqes_.push_back(HeldCqe{socket, cqe});
    return;
  }
  EncodeCqe(cqe, CqeSpan(io_cq_tail_));
  ++io_cq_tail_;
  ciobase::StoreLe32(ctrl() + kCtrlCqTail, io_cq_tail_);
}

void L5Channel::DrainHeldCqes() {
  while (!held_cqes_.empty()) {
    uint32_t head = ciobase::LoadLe32(ctrl() + kCtrlCqHead);
    uint32_t used = io_cq_tail_ - head;
    if (used > queues_.cq_entries) {
      CIO_COV("l5.cq.incoherent_head", ciobase::StatusCode::kOutOfRange);
      used = queues_.cq_entries;
    }
    if (used >= queues_.cq_entries) {
      return;
    }
    EncodeCqe(held_cqes_.front().cqe, CqeSpan(io_cq_tail_));
    ++io_cq_tail_;
    ciobase::StoreLe32(ctrl() + kCtrlCqTail, io_cq_tail_);
    held_cqes_.pop_front();
  }
}

// --- App-side reaping -------------------------------------------------------

ciobase::Status L5Channel::Harvest() {
  CIO_PROF_SCOPE(costs_->profiler(), "l5.harvest");
  // Self-healing counters: re-assert the app-owned cells from private state
  // every reap. A host that scribbles CqHead or Epoch can wedge at most one
  // doorbell interval — the next Harvest restores the truth and any held
  // completions drain.
  ciobase::StoreLe32(ctrl() + kCtrlCqHead, cq_head_);
  ciobase::StoreLe32(ctrl() + kCtrlEpoch, epoch_);
  uint32_t tail = ciobase::LoadLe32(ctrl() + kCtrlCqTail);
  if (tail - cq_head_ > queues_.cq_entries) {
    CIO_COV("l5.cq.runaway_tail", ciobase::StatusCode::kTampered);
    return ciobase::Tampered("cq tail outside ring window");
  }
  while (cq_head_ != tail) {
    CqEntry cqe = DecodeCqe(CqeSpan(cq_head_));
    ++cq_head_;
    ciobase::StoreLe32(ctrl() + kCtrlCqHead, cq_head_);
    CIO_RETURN_IF_ERROR(ConsumeCqe(cqe));
  }
  return ciobase::OkStatus();
}

ciobase::Status L5Channel::ConsumeCqe(const CqEntry& cqe) {
  if (cqe.epoch != epoch_) {
    // A completion from before the last ring reset: its entry was already
    // abandoned into the resend window, so this is recovery noise, not an
    // attack.
    ++stats_.cq_stale_dropped;
    CIO_COV("l5.cq.stale_epoch", ciobase::StatusCode::kUnavailable);
    return ciobase::OkStatus();
  }
  auto it = in_flight_.find(cqe.user_data);
  if (it == in_flight_.end()) {
    CIO_COV("l5.cq.unknown_user_data", ciobase::StatusCode::kTampered);
    return ciobase::Tampered("unknown or duplicated completion");
  }
  const InFlight entry = it->second;
  if (cqe.op != entry.op) {
    CIO_COV("l5.cq.opcode_mismatch", ciobase::StatusCode::kTampered);
    return ciobase::Tampered("completion opcode mismatch");
  }
  if (cqe.code > kCqReset) {
    CIO_COV("l5.cq.unknown_code", ciobase::StatusCode::kTampered);
    return ciobase::Tampered("unknown completion code");
  }
  if (cqe.seg_count > entry.seg_count) {
    CIO_COV("l5.cq.segment_overflow", ciobase::StatusCode::kTampered);
    return ciobase::Tampered("completion segment overflow");
  }
  uint64_t sum = 0;
  for (size_t i = 0; i < cqe.seg_count; ++i) {
    if (cqe.seg_len[i] > entry.segs[i].len) {
      CIO_COV("l5.cq.length_overflow", ciobase::StatusCode::kTampered);
      return ciobase::Tampered("completion length exceeds submission");
    }
    sum += cqe.seg_len[i];
  }
  if (cqe.result != sum) {
    CIO_COV("l5.cq.result_mismatch", ciobase::StatusCode::kTampered);
    return ciobase::Tampered("completion result/length mismatch");
  }
  in_flight_.erase(it);
  ++stats_.cq_completions;
  CIO_COV("l5.cq.completion", ciobase::StatusCode::kOk);
  if (entry.op == kSqOpSend) {
    ReleaseEntrySlots(entry);
    if (cqe.code != kCqOk) {
      // The bytes may not have hit the wire; delivery is owned by the
      // session resend window, so this is accounting, not an error.
      ++stats_.send_failures;
    }
    return ciobase::OkStatus();
  }
  // Receive completion.
  auto armed_it = armed_.find(entry.socket);
  if (armed_it != armed_.end() && armed_it->second > 0) {
    --armed_it->second;
  }
  if (cqe.code == kCqOk && cqe.result > 0) {
    RecvEvent event;
    event.kind = RecvEvent::Kind::kData;
    if (receive_mode_ == L5ReceiveMode::kCopy) {
      // Copy-before-parse: snapshot the slots the stack may keep mutating.
      ++stats_.receive_copies;
      costs_->ChargeCopy(cqe.result);
    } else if (receive_mode_ == L5ReceiveMode::kRevoke) {
      // Revoke-then-parse: pull the filled pages out of the shared pool.
      ++stats_.receive_revocations;
      size_t page = costs_->constants().page_size;
      costs_->ChargePageUnshare(
          std::max<size_t>(1, (cqe.result + page - 1) / page));
    }
    // kSealed: every byte is AEAD-authenticated above this layer, so no
    // defensive copy or unshare is modeled for the harvest.
    event.data.reserve(cqe.result);
    for (size_t i = 0; i < cqe.seg_count; ++i) {
      ciobase::MutableByteSpan span = pool_.SlotSpan(entry.segs[i].slot);
      event.data.insert(event.data.end(), span.data(),
                        span.data() + cqe.seg_len[i]);
    }
    events_[entry.socket].push_back(std::move(event));
    stats_.bytes_received += cqe.result;
  } else if (cqe.code == kCqEof) {
    events_[entry.socket].push_back(RecvEvent{RecvEvent::Kind::kEof, {}});
  } else if (cqe.code == kCqReset) {
    events_[entry.socket].push_back(RecvEvent{RecvEvent::Kind::kReset, {}});
  }
  ReleaseEntrySlots(entry);
  return ciobase::OkStatus();
}

void L5Channel::ReleaseEntrySlots(const InFlight& entry) {
  for (size_t i = 0; i < entry.seg_count; ++i) {
    pool_.Release(entry.segs[i].slot);
  }
}

std::optional<L5Channel::RecvEvent> L5Channel::NextEvent(
    cionet::SocketId socket) {
  auto it = events_.find(socket.value);
  if (it == events_.end() || it->second.empty()) {
    return std::nullopt;
  }
  RecvEvent event = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) {
    events_.erase(it);
  }
  return event;
}

// --- Teardown paths ---------------------------------------------------------

void L5Channel::CancelSocket(cionet::SocketId socket) {
  if (!queues_ready_) {
    return;
  }
  // Sweep already-posted completions to their owners first, so another
  // socket's data is never thrown away with this one's. Tampering found
  // here resurfaces on the next doorbell.
  (void)Harvest();
  events_.erase(socket.value);
  {
    Crossing crossing(this);
    IoConsumeSq();  // pull published-but-unconsumed entries so they purge
    sq_consumed_ = io_sq_head_;
    io_queues_.erase(socket.value);
    for (auto it = held_cqes_.begin(); it != held_cqes_.end();) {
      if (it->socket == socket.value) {
        it = held_cqes_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (it->second.socket == socket.value) {
      ReleaseEntrySlots(it->second);
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
  armed_.erase(socket.value);
}

void L5Channel::AbandonInFlight() {
  if (!queues_ready_) {
    return;
  }
  events_.clear();
  {
    Crossing crossing(this);
    io_queues_.clear();
    held_cqes_.clear();
    io_sq_head_ = 0;
    io_cq_tail_ = 0;
  }
  for (auto& [user_data, entry] : in_flight_) {
    ReleaseEntrySlots(entry);
  }
  in_flight_.clear();
  armed_.clear();
  sq_tail_ = 0;
  sq_consumed_ = 0;
  cq_head_ = 0;
  // New ring generation: completions the old epoch still owes reap as
  // stale. The session resend window re-delivers everything that was in
  // flight, preserving exactly-once end to end.
  ++epoch_;
  std::memset(region_.data(), 0, kSqcqControlBytes);
  ciobase::StoreLe32(ctrl() + kCtrlEpoch, epoch_);
}

// --- One-shot wrappers ------------------------------------------------------

ciobase::Result<size_t> L5Channel::SendOne(cionet::SocketId socket,
                                           ciobase::ByteSpan data) {
  auto accepted = SubmitStream(socket, data);
  if (!accepted.ok()) {
    return accepted;
  }
  ciobase::Status rung = Doorbell();
  if (rung.code() == ciobase::StatusCode::kTampered) {
    return rung;
  }
  return accepted;
}

ciobase::Result<size_t> L5Channel::ReceiveOne(cionet::SocketId socket,
                                              size_t max_bytes,
                                              ciobase::Buffer& out) {
  out.clear();
  if (!queues_ready_) {
    return ciobase::FailedPrecondition("async queues unavailable");
  }
  EnsureRecvArmed(socket);
  ciobase::Status rung = Doorbell();
  if (rung.code() == ciobase::StatusCode::kTampered) {
    return rung;
  }
  while (out.size() < max_bytes) {
    auto it = events_.find(socket.value);
    if (it == events_.end() || it->second.empty()) {
      break;
    }
    RecvEvent& front = it->second.front();
    if (front.kind != RecvEvent::Kind::kData) {
      if (!out.empty()) {
        break;  // deliver data first; EOF/reset surfaces next call
      }
      RecvEvent::Kind kind = front.kind;
      it->second.pop_front();
      if (kind == RecvEvent::Kind::kEof) {
        return ciobase::FailedPrecondition("connection closed by peer");
      }
      return ciobase::LinkReset("connection reset");
    }
    ciobase::Append(out, front.data);
    it->second.pop_front();
  }
  if (out.empty()) {
    auto armed = armed_.find(socket.value);
    if (armed == armed_.end() || armed->second == 0) {
      // Pool-contention fallback: every registered slot is held by other
      // sockets' armed receives, so waiting on an SQ entry would starve
      // this socket. Receive directly inside one crossing, charged exactly
      // like the pooled path — liveness over zero-copy. Safe for ordering:
      // with no armed entries and no queued events, the socket's bytes can
      // only be in the stack's own buffer.
      out.resize(max_bytes);
      size_t got = 0;
      {
        Crossing crossing(this);
        auto direct =
            stack_->TcpReceive(socket, ciobase::MutableByteSpan(out));
        if (!direct.ok()) {
          out.clear();
          return direct.status();
        }
        got = *direct;
      }
      out.resize(got);
      if (got > 0) {
        if (receive_mode_ == L5ReceiveMode::kCopy) {
          ++stats_.receive_copies;
          costs_->ChargeCopy(got);
        } else if (receive_mode_ == L5ReceiveMode::kRevoke) {
          ++stats_.receive_revocations;
          size_t page = costs_->constants().page_size;
          costs_->ChargePageUnshare(std::max<size_t>(1, (got + page - 1) / page));
        }
        stats_.bytes_received += got;
      }
    }
  }
  return out.size();
}

ciobase::Status L5Channel::Poll() { return Doorbell(); }

}  // namespace cio
