#include "src/cio/l5_channel.h"

#include <cstring>

namespace cio {

L5Channel::L5Channel(ciotee::CompartmentManager* compartments,
                     ciotee::CompartmentId app, ciotee::CompartmentId io,
                     cionet::NetStack* stack, ciobase::CostModel* costs,
                     L5ReceiveMode receive_mode,
                     L5BoundaryKind boundary_kind)
    : compartments_(compartments),
      app_(app),
      io_(io),
      stack_(stack),
      costs_(costs),
      receive_mode_(receive_mode),
      boundary_kind_(boundary_kind) {}

void L5Channel::ChargeCrossing() {
  ++stats_.crossings;
  if (boundary_kind_ == L5BoundaryKind::kCompartment) {
    // SwitchTo already charges the compartment switch; nothing extra.
  } else {
    // Dual-enclave alternative: a full TEE boundary round trip on top.
    costs_->ChargeTeeSwitch();
  }
}

L5Channel::Crossing::Crossing(L5Channel* channel) : channel_(channel) {
  channel_->ChargeCrossing();
  channel_->compartments_->SwitchTo(channel_->io_);
}

L5Channel::Crossing::~Crossing() {
  channel_->compartments_->SwitchTo(channel_->app_);
}

ciobase::Result<cionet::SocketId> L5Channel::Connect(cionet::Ipv4Address ip,
                                                     uint16_t port) {
  Crossing crossing(this);
  return stack_->TcpConnect(ip, port);
}

ciobase::Result<cionet::SocketId> L5Channel::Listen(uint16_t port) {
  Crossing crossing(this);
  return stack_->TcpListen(port);
}

ciobase::Result<cionet::SocketId> L5Channel::Accept(
    cionet::SocketId listener) {
  Crossing crossing(this);
  return stack_->TcpAccept(listener);
}

ciobase::Result<cionet::TcpState> L5Channel::State(cionet::SocketId socket) {
  Crossing crossing(this);
  return stack_->GetTcpState(socket);
}

ciobase::Status L5Channel::Close(cionet::SocketId socket) {
  Crossing crossing(this);
  return stack_->TcpClose(socket);
}

ciobase::Status L5Channel::Abort(cionet::SocketId socket) {
  Crossing crossing(this);
  return stack_->TcpAbort(socket);
}

ciobase::Result<size_t> L5Channel::AcceptPending(cionet::SocketId listener) {
  Crossing crossing(this);
  return stack_->TcpAcceptPending(listener);
}

ciobase::Result<bool> L5Channel::Readable(cionet::SocketId socket) {
  Crossing crossing(this);
  return stack_->TcpReadable(socket);
}

ciobase::Result<size_t> L5Channel::SendSpace(cionet::SocketId socket) {
  Crossing crossing(this);
  return stack_->TcpSendSpace(socket);
}

ciobase::Result<cionet::Ipv4Address> L5Channel::Peer(
    cionet::SocketId socket) {
  Crossing crossing(this);
  return stack_->GetTcpPeer(socket);
}

ciobase::Result<size_t> L5Channel::Send(cionet::SocketId socket,
                                        ciobase::ByteSpan data) {
  // Trusted-component-allocates: the app creates the buffer in the I/O
  // heap and fills it; the stack consumes it in place, verifying nothing.
  auto handle = compartments_->Allocate(app_, io_, data.size());
  if (!handle.ok()) {
    return handle.status();
  }
  auto span = compartments_->Access(app_, *handle);
  if (!span.ok()) {
    return span.status();
  }
  std::memcpy(span->data(), data.data(), data.size());

  ciobase::Result<size_t> sent = static_cast<size_t>(0);
  {
    Crossing crossing(this);
    auto io_view = compartments_->Access(io_, *handle);
    if (!io_view.ok()) {
      sent = io_view.status();
    } else {
      sent = stack_->TcpSend(socket,
                             ciobase::ByteSpan(io_view->data(), data.size()));
    }
  }
  (void)compartments_->Free(app_, *handle);
  if (sent.ok()) {
    stats_.bytes_sent += *sent;
  }
  return sent;
}

ciobase::Result<size_t> L5Channel::ReceiveInto(cionet::SocketId socket,
                                               size_t max_bytes,
                                               ciobase::Buffer& out) {
  out.clear();
  // The I/O-domain staging buffer is still allocated (and freed) per call:
  // the compartment heap is a bump allocator that can only rewind when no
  // allocation is live, so a persistent staging handle would leak the heap.
  // Reuse happens on the app-private side: `out` keeps its capacity.
  auto handle = compartments_->Allocate(app_, io_, max_bytes);
  if (!handle.ok()) {
    return handle.status();
  }
  ciobase::Result<size_t> got = static_cast<size_t>(0);
  {
    Crossing crossing(this);
    auto io_view = compartments_->Access(io_, *handle);
    if (!io_view.ok()) {
      got = io_view.status();
    } else {
      got = stack_->TcpReceive(socket, *io_view);
    }
  }
  if (!got.ok()) {
    (void)compartments_->Free(app_, *handle);
    return got.status();
  }
  if (*got == 0) {
    (void)compartments_->Free(app_, *handle);
    return static_cast<size_t>(0);  // nothing yet
  }

  out.resize(*got);
  if (receive_mode_ == L5ReceiveMode::kCopy) {
    // Copy before parse: the stack may keep mutating the I/O-domain buffer
    // after returning, so the app snapshots it into private memory.
    ++stats_.receive_copies;
    costs_->ChargeCopy(*got);
    auto span = compartments_->Access(app_, *handle);
    if (span.ok()) {
      std::memcpy(out.data(), span->data(), *got);
    }
  } else {
    // Revoke-then-parse: ownership moves to the app; the stack's access is
    // dead from here on, so in-place parsing is safe without a copy.
    ++stats_.receive_revocations;
    size_t page = costs_->constants().page_size;
    costs_->ChargePageUnshare(std::max<size_t>(1, (*got + page - 1) / page));
    CIO_RETURN_IF_ERROR(compartments_->Transfer(app_, *handle, app_));
    auto span = compartments_->Access(app_, *handle);
    if (span.ok()) {
      std::memcpy(out.data(), span->data(), *got);  // materialize (uncharged)
    }
  }
  (void)compartments_->Free(app_, *handle);
  stats_.bytes_received += *got;
  return *got;
}

ciobase::Status L5Channel::Poll() {
  Crossing crossing(this);
  return stack_->Poll();
}

}  // namespace cio
