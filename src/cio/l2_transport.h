// L2Transport: the paper's hardened host/TEE network interface (§3.2),
// guest side. Safe by construction, not by checks:
//
//  * Stateless interface — two monotonic counters per direction and a ring
//    of self-contained slots. No descriptors, no completion ids, no free
//    lists, no negotiation, no error paths: a slot that fails validation is
//    dropped and counted, and the protocol position still advances.
//  * Copy as a first-class citizen — the RX fetch of a slot is ONE read
//    into private memory, early, and it doubles as the mandatory
//    shared-to-private copy. Validation and use operate on the same private
//    bytes, so double fetches are impossible by construction. On TX the
//    copy into shared memory is required anyway (the host must read it);
//    there is no second copy.
//  * No notifications — polling by default. The optional doorbell is
//    stateless and idempotent (it carries no payload; ringing it twice or
//    never merely changes when the host polls).
//  * Zero (re-)negotiation — all parameters come from the immutable
//    L2Config, which is part of the attestation measurement.
//  * Masked rings and pools — every index/offset derived from host-written
//    bytes is masked into its power-of-two area (see l2_layout.h); lengths
//    are clamped to the fixed chunk capacity. No host value can direct a
//    guest access outside the shared region, no matter what it contains.
//
// Data positioning (inline / shared pool / indirect) and RX ownership
// (copy / revoke) are the §3.2 performance explorations, selected in
// L2Config and benchmarked in bench_data_positioning and
// bench_copy_vs_revocation.

#ifndef SRC_CIO_L2_TRANSPORT_H_
#define SRC_CIO_L2_TRANSPORT_H_

#include <span>
#include <vector>

#include "src/base/arena.h"
#include "src/base/clock.h"
#include "src/base/recovery.h"
#include "src/cio/l2_layout.h"
#include "src/hostsim/adversary.h"
#include "src/net/port.h"
#include "src/tee/shared_region.h"
#include "src/virtio/net_device.h"  // for KickTarget

namespace cio {

class L2Transport final : public cionet::FramePort {
 public:
  // `kick` may be null in polling mode. `recovery` enables the watchdog +
  // ring-reset machinery; the default leaves it off (a wedged host wedges
  // the link, exactly like the seed behavior).
  L2Transport(ciotee::SharedRegion* region, const L2Config& config,
              ciobase::CostModel* costs, ciovirtio::KickTarget* kick,
              const ciobase::RecoveryConfig& recovery = {});

  // --- cionet::FramePort -----------------------------------------------------

  // Batched ring ops: the host counters are read once per batch, the
  // produced/consumed pointers are published once per batch, and the
  // doorbell (notify mode) is coalesced into a single kick. Every slot goes
  // through the single-fetch validation discipline — there is exactly one
  // datapath per direction, and this is it.
  //
  // ReceiveFrames doubles as the recovery poll: it watches the host's
  // counters for progress, arms the watchdog while work is in flight or the
  // counters are incoherent, and on expiry resets the ring (kLinkReset) or —
  // once the reset budget is exhausted — declares the link dead (kTimedOut).
  ciobase::Result<size_t> SendFrames(
      std::span<const ciobase::ByteSpan> frames) override;
  ciobase::Result<size_t> ReceiveFrames(cionet::FrameBatch& batch,
                                        size_t max_frames) override;

  cionet::MacAddress mac() const override { return config_.mac; }
  uint16_t mtu() const override { return config_.mtu; }

  const L2Config& config() const { return config_; }
  const L2Layout& layout() const { return layout_; }

  // Sealed receive: the layer above authenticates every payload byte (L5
  // AEAD), so the defensive RX copy is redundant — model only a header
  // snapshot per frame and hand the payload over for in-place unsealing.
  // Runtime-selected (not part of L2Config) so the attestation measurement
  // of the wire format is unchanged; it alters accounting, not layout.
  void set_sealed_rx(bool sealed) { sealed_rx_ = sealed; }
  bool sealed_rx() const { return sealed_rx_; }

  // Attestation measurement covering code identity + fixed config.
  ciotee::Measurement Measure() const { return config_.Measure(); }

  // Attack-surface registration for the adversary (header fields, counters,
  // pool payload bytes).
  std::vector<ciohost::SurfaceField> AttackSurface() const;

  // Reset-and-reattach protocol: bumps the guest epoch, zeroes all four
  // shared counters and the guest shadows, drains (zeroes) every RX slot
  // header, and re-verifies the layout against the fixed config. In-flight
  // frames on the old ring are gone — callers above TCP rely on
  // retransmission. Exposed for tests; the watchdog calls it on expiry.
  ciobase::Status ResetRing();

  uint64_t epoch() const { return epoch_; }

  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t frames_received = 0;
    uint64_t tx_ring_full = 0;
    uint64_t rx_clamped_len = 0;   // host lied about a length; clamped
    uint64_t rx_dropped_empty = 0; // slot failed sanity (len 0 after clamp)
    uint64_t pages_revoked = 0;
    uint64_t rx_incoherent = 0;    // host counter outside the legal window
    uint64_t watchdog_fires = 0;
    uint64_t ring_resets = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  // Writes one frame into TX slot `index` per the configured positioning.
  // Counter publication and the doorbell are the caller's job, so the
  // per-frame and batched send paths share this verbatim.
  void WriteTxSlot(uint64_t index, ciobase::ByteSpan frame);

  // Fetches RX slot `index` into `out` (cleared first), applying the full
  // validation discipline. An `out` left empty means the slot was dropped.
  // Shared by ReceiveFrame and ReceiveFrames so the single-fetch path exists
  // exactly once. Scratch space comes from arena_, so steady-state receive
  // does no heap allocation.
  void ReceiveSlotInto(uint64_t index, ciobase::Buffer& out);
  void ReceiveInlineInto(uint64_t index, ciobase::Buffer& out);
  void ReceivePoolInto(uint64_t index, ciobase::Buffer& out);
  void ReceiveIndirectInto(uint64_t index, ciobase::Buffer& out);
  // Reads `len` payload bytes at a masked shared offset into `out`, honoring
  // the configured ownership model (copy vs revoke).
  void TakePayloadInto(uint64_t masked_offset, uint32_t len,
                       ciobase::Buffer& out);

  ciotee::SharedRegion* region_;
  L2Config config_;
  L2Layout layout_;
  ciobase::CostModel* costs_;
  ciovirtio::KickTarget* kick_;
  ciobase::FrameArena arena_;
  ciobase::RecoveryConfig recovery_;
  ciobase::LinkWatchdog watchdog_;

  bool sealed_rx_ = false;

  // Guest-private counter shadows; never read back from shared memory.
  uint64_t tx_produced_ = 0;
  uint64_t rx_consumed_ = 0;
  // Last advisory TxConsumed observed; progress detection for the watchdog.
  uint64_t last_tx_consumed_ = 0;
  // Same-tick cache of the advisory TxConsumed counter: within one simulated
  // instant the host cannot have advanced, so back-to-back sends (a batch
  // flush) open one TOCTOU window instead of one per call. The counter is
  // advisory only (clamped into the legal window), so a stale value is at
  // worst conservative.
  uint64_t tx_consumed_cache_ = 0;
  uint64_t tx_consumed_cache_ns_ = ~0ull;
  uint64_t epoch_ = 0;
  Stats stats_;
};

}  // namespace cio

#endif  // SRC_CIO_L2_TRANSPORT_H_
