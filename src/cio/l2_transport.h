// L2Transport: the paper's hardened host/TEE network interface (§3.2),
// guest side. Safe by construction, not by checks:
//
//  * Stateless interface — two monotonic counters per direction and a ring
//    of self-contained slots. No descriptors, no completion ids, no free
//    lists, no negotiation, no error paths: a slot that fails validation is
//    dropped and counted, and the protocol position still advances.
//  * Copy as a first-class citizen — the RX fetch of a slot is ONE read
//    into private memory, early, and it doubles as the mandatory
//    shared-to-private copy. Validation and use operate on the same private
//    bytes, so double fetches are impossible by construction. On TX the
//    copy into shared memory is required anyway (the host must read it);
//    there is no second copy.
//  * No notifications — polling by default. The optional doorbell is
//    stateless and idempotent (it carries no payload; ringing it twice or
//    never merely changes when the host polls).
//  * Zero (re-)negotiation — all parameters come from the immutable
//    L2Config, which is part of the attestation measurement.
//  * Masked rings and pools — every index/offset derived from host-written
//    bytes is masked into its power-of-two area (see l2_layout.h); lengths
//    are clamped to the fixed chunk capacity. No host value can direct a
//    guest access outside the shared region, no matter what it contains.
//
// Data positioning (inline / shared pool / indirect) and RX ownership
// (copy / revoke) are the §3.2 performance explorations, selected in
// L2Config and benchmarked in bench_data_positioning and
// bench_copy_vs_revocation.

#ifndef SRC_CIO_L2_TRANSPORT_H_
#define SRC_CIO_L2_TRANSPORT_H_

#include <vector>

#include "src/base/clock.h"
#include "src/cio/l2_layout.h"
#include "src/hostsim/adversary.h"
#include "src/net/port.h"
#include "src/tee/shared_region.h"
#include "src/virtio/net_device.h"  // for KickTarget

namespace cio {

class L2Transport final : public cionet::FramePort {
 public:
  // `kick` may be null in polling mode.
  L2Transport(ciotee::SharedRegion* region, const L2Config& config,
              ciobase::CostModel* costs, ciovirtio::KickTarget* kick);

  // --- cionet::FramePort -----------------------------------------------------

  ciobase::Status SendFrame(ciobase::ByteSpan frame) override;
  ciobase::Result<ciobase::Buffer> ReceiveFrame() override;
  cionet::MacAddress mac() const override { return config_.mac; }
  uint16_t mtu() const override { return config_.mtu; }

  const L2Config& config() const { return config_; }
  const L2Layout& layout() const { return layout_; }

  // Attestation measurement covering code identity + fixed config.
  ciotee::Measurement Measure() const { return config_.Measure(); }

  // Attack-surface registration for the adversary (header fields, counters,
  // pool payload bytes).
  std::vector<ciohost::SurfaceField> AttackSurface() const;

  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t frames_received = 0;
    uint64_t tx_ring_full = 0;
    uint64_t rx_clamped_len = 0;   // host lied about a length; clamped
    uint64_t rx_dropped_empty = 0; // slot failed sanity (len 0 after clamp)
    uint64_t pages_revoked = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  ciobase::Result<ciobase::Buffer> ReceiveInline(uint64_t index);
  ciobase::Result<ciobase::Buffer> ReceivePool(uint64_t index);
  ciobase::Result<ciobase::Buffer> ReceiveIndirect(uint64_t index);
  // Reads `len` payload bytes at a masked shared offset, honoring the
  // configured ownership model (copy vs revoke).
  ciobase::Buffer TakePayload(uint64_t masked_offset, uint32_t len);

  ciotee::SharedRegion* region_;
  L2Config config_;
  L2Layout layout_;
  ciobase::CostModel* costs_;
  ciovirtio::KickTarget* kick_;

  // Guest-private counter shadows; never read back from shared memory.
  uint64_t tx_produced_ = 0;
  uint64_t rx_consumed_ = 0;
  Stats stats_;
};

}  // namespace cio

#endif  // SRC_CIO_L2_TRANSPORT_H_
