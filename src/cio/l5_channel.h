// L5Channel: the lightweight single-distrust boundary between the
// confidential application and the I/O-stack compartment (§3.1/§3.2).
//
// The ternary trust model makes this boundary asymmetric: the I/O stack
// trusts the application, the application does not trust the I/O stack.
// That single distrust is what the design exploits:
//
//  * "Avoid the need to verify pointers": the application allocates buffers
//    directly in the I/O compartment's heap (trusted-component-allocates
//    policy [34]). The stack only ever sees buffers the app created there,
//    so it never validates an app pointer; the app never dereferences a
//    stack pointer at all.
//  * Zero-copy send: the app writes its (TLS-protected) bytes into the
//    I/O-domain buffer once; the stack transmits from it in place.
//  * Receive: the stack fills an app-allocated I/O-domain buffer. Because
//    the stack is untrusted, the app must either copy the bytes out before
//    parsing (kCopy) or revoke the buffer's ownership so the stack can no
//    longer mutate it (kRevoke) — the L5 instance of the copy/revocation
//    trade-off.
//
// The boundary crossing itself is either an intra-TEE compartment switch
// (the paper's choice) or a full TEE-to-TEE switch (the rejected dual-
// enclave alternative), selectable for the ablation benchmark.

#ifndef SRC_CIO_L5_CHANNEL_H_
#define SRC_CIO_L5_CHANNEL_H_

#include "src/base/clock.h"
#include "src/net/stack.h"
#include "src/tee/compartment.h"

namespace cio {

enum class L5ReceiveMode { kCopy, kRevoke };
enum class L5BoundaryKind { kCompartment, kDualTee };

class L5Channel {
 public:
  L5Channel(ciotee::CompartmentManager* compartments,
            ciotee::CompartmentId app, ciotee::CompartmentId io,
            cionet::NetStack* stack, ciobase::CostModel* costs,
            L5ReceiveMode receive_mode, L5BoundaryKind boundary_kind);

  // Connection management: thin crossings into the I/O compartment.
  ciobase::Result<cionet::SocketId> Connect(cionet::Ipv4Address ip,
                                            uint16_t port);
  ciobase::Result<cionet::SocketId> Listen(uint16_t port);
  ciobase::Result<cionet::SocketId> Accept(cionet::SocketId listener);
  ciobase::Result<cionet::TcpState> State(cionet::SocketId socket);
  ciobase::Status Close(cionet::SocketId socket);
  // Abortive close (RST now): the engine's recovery path kills dead
  // connections through this before re-establishing.
  ciobase::Status Abort(cionet::SocketId socket);

  // Readiness queries (each one crossing): the multi-tenant server's poll
  // loop uses these to skip idle connections without paying a full
  // receive round trip per connection per round.
  ciobase::Result<size_t> AcceptPending(cionet::SocketId listener);
  ciobase::Result<bool> Readable(cionet::SocketId socket);
  ciobase::Result<size_t> SendSpace(cionet::SocketId socket);
  ciobase::Result<cionet::Ipv4Address> Peer(cionet::SocketId socket);

  // Zero-copy send of app bytes (already TLS-protected by the caller —
  // the channel never sees plaintext semantics, just bytes).
  ciobase::Result<size_t> Send(cionet::SocketId socket,
                               ciobase::ByteSpan data);

  // The single receive entry point: fills caller-provided `out` (cleared,
  // capacity reused across calls) and returns the byte count. Status
  // conventions follow NetStack::TcpReceive — Ok(0) = nothing available
  // yet, kFailedPrecondition = orderly EOF, kLinkReset = the connection
  // died underneath the app.
  ciobase::Result<size_t> ReceiveInto(cionet::SocketId socket,
                                      size_t max_bytes, ciobase::Buffer& out);

  // Drives the I/O compartment (stack poll), one crossing per call.
  // Propagates the stack's link status (kLinkReset / kTimedOut).
  ciobase::Status Poll();

  struct Stats {
    uint64_t crossings = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    uint64_t receive_copies = 0;
    uint64_t receive_revocations = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  // RAII crossing: enter the I/O compartment, return to the app.
  class Crossing {
   public:
    explicit Crossing(L5Channel* channel);
    ~Crossing();

   private:
    L5Channel* channel_;
  };

  void ChargeCrossing();

  ciotee::CompartmentManager* compartments_;
  ciotee::CompartmentId app_;
  ciotee::CompartmentId io_;
  cionet::NetStack* stack_;
  ciobase::CostModel* costs_;
  L5ReceiveMode receive_mode_;
  L5BoundaryKind boundary_kind_;
  Stats stats_;
};

}  // namespace cio

#endif  // SRC_CIO_L5_CHANNEL_H_
