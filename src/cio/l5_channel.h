// L5Channel: the lightweight single-distrust boundary between the
// confidential application and the I/O-stack compartment (§3.1/§3.2).
//
// The ternary trust model makes this boundary asymmetric: the I/O stack
// trusts the application, the application does not trust the I/O stack.
// That single distrust is what the design exploits:
//
//  * "Avoid the need to verify pointers": the application registers ONE
//    queue region (control block + SQ + CQ + sealed-buffer pool) in the
//    I/O compartment's heap at construction (trusted-component-allocates
//    policy [34]). The stack only ever touches that region, addressed by
//    slot index — it never validates an app pointer, the app never
//    dereferences a stack pointer.
//  * Async zero-copy datapath: the app seals TLS records directly into
//    registered slots, queues submission entries (scatter-gather for large
//    messages), and rings the doorbell ONCE per batch — one boundary
//    crossing amortized over every queued operation, instead of a crossing
//    per message. Completions are reaped lazily from the CQ with no
//    crossing at all.
//  * Receive trust: everything the I/O side writes back — CQ indices,
//    completion codes, lengths — is hostile-host-writable, so the reaper
//    validates each entry against its private in-flight shadow (typed
//    kTampered on mismatch) and then materializes payload bytes per the
//    receive-mode policy: copy-before-parse (kCopy), ownership revocation
//    (kRevoke), or sealed-in-place (kSealed — the AEAD layer above already
//    rejects any byte the host flips, so no defensive copy is charged).
//
// The boundary crossing itself is either an intra-TEE compartment switch
// (the paper's choice) or a full TEE-to-TEE switch (the rejected dual-
// enclave alternative), selectable for the ablation benchmark.

#ifndef SRC_CIO_L5_CHANNEL_H_
#define SRC_CIO_L5_CHANNEL_H_

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "src/base/clock.h"
#include "src/cio/buffer_pool.h"
#include "src/cio/session.h"
#include "src/cio/sqcq.h"
#include "src/net/stack.h"
#include "src/tee/compartment.h"

namespace cio {

enum class L5ReceiveMode { kCopy, kRevoke, kSealed };
enum class L5BoundaryKind { kCompartment, kDualTee };

// Messages at or below this use the seal-into-slot fast path (fits the
// kSqMaxSegments scatter-gather budget with default slots); larger payloads
// fall back to the streaming path.
inline constexpr size_t kMaxSqMessageBytes = 24000;

class L5Channel {
 public:
  L5Channel(ciotee::CompartmentManager* compartments,
            ciotee::CompartmentId app, ciotee::CompartmentId io,
            cionet::NetStack* stack, ciobase::CostModel* costs,
            L5ReceiveMode receive_mode, L5BoundaryKind boundary_kind,
            const L5QueueConfig& queues = L5QueueConfig{});

  // Connection management: thin crossings into the I/O compartment.
  ciobase::Result<cionet::SocketId> Connect(cionet::Ipv4Address ip,
                                            uint16_t port);
  ciobase::Result<cionet::SocketId> Listen(uint16_t port);
  ciobase::Result<cionet::SocketId> Accept(cionet::SocketId listener);
  ciobase::Result<cionet::TcpState> State(cionet::SocketId socket);
  ciobase::Status Close(cionet::SocketId socket);
  // Abortive close (RST now): the engine's recovery path kills dead
  // connections through this before re-establishing.
  ciobase::Status Abort(cionet::SocketId socket);

  // Readiness queries (each one crossing): the multi-tenant server's poll
  // loop uses these to skip idle connections without paying a full
  // receive round trip per connection per round.
  ciobase::Result<size_t> AcceptPending(cionet::SocketId listener);
  ciobase::Result<bool> Readable(cionet::SocketId socket);
  ciobase::Result<size_t> SendSpace(cionet::SocketId socket);
  ciobase::Result<cionet::Ipv4Address> Peer(cionet::SocketId socket);

  // --- Async datapath --------------------------------------------------------

  bool queues_ready() const { return queues_ready_; }
  const L5QueueConfig& queue_config() const { return queues_; }

  // Slot budget a message of `payload_bytes` needs through SendInto (record
  // per fragment, header record first) or the plaintext framing.
  static uint32_t SlotsForMessage(size_t payload_bytes, bool use_tls,
                                  uint32_t slot_size);

  // SegmentSink over a reserved run of pool slots: Session::SendInto seals
  // records straight into registered memory, and SubmitMessage() turns the
  // written prefixes into one scatter-gather SQ entry.
  class MessageWriter : public SegmentSink {
   public:
    MessageWriter() = default;
    ciobase::MutableByteSpan NextSpan(size_t min_bytes) override;
    void Commit(size_t n) override;

   private:
    friend class L5Channel;
    L5Channel* channel_ = nullptr;
    uint32_t socket_ = 0;
    std::vector<uint16_t> slots_;
    std::vector<uint32_t> used_;  // bytes written per slot
    size_t current_ = 0;
    bool active_ = false;
  };

  // Reserves SQ space + slots for one message. False means backpressure
  // (SQ full or pool exhausted) or the message doesn't fit the fast path —
  // the caller falls back to the streaming path. A successful Begin MUST be
  // paired with SubmitMessage or AbandonMessage.
  bool BeginMessage(cionet::SocketId socket, size_t payload_bytes,
                    bool use_tls, MessageWriter& writer);
  void SubmitMessage(MessageWriter& writer);
  void AbandonMessage(MessageWriter& writer);

  // Streaming submission: copies `data` into freshly acquired slots (the
  // app's one write into registered memory) and queues scatter-gather send
  // entries. Returns bytes accepted — short on backpressure; the caller
  // keeps the rest and retries after the next doorbell.
  ciobase::Result<size_t> SubmitStream(cionet::SocketId socket,
                                       ciobase::ByteSpan data);

  // Keeps `recv_entries` receive SQEs armed for the socket (slots
  // permitting) so inbound bytes land in registered slots with no
  // per-receive round trip.
  void EnsureRecvArmed(cionet::SocketId socket);

  // THE one crossing of the async path: publishes queued SQEs, drives the
  // stack, services sends/receives into registered slots, posts CQEs, and
  // then reaps + validates completions app-side. Returns the link status
  // (kLinkReset / kTimedOut) or kTampered when a CQ entry fails validation.
  ciobase::Status Doorbell();

  // A validated receive completion, materialized per the receive mode.
  struct RecvEvent {
    enum class Kind { kData, kEof, kReset };
    Kind kind = Kind::kData;
    ciobase::Buffer data;
  };
  std::optional<RecvEvent> NextEvent(cionet::SocketId socket);

  // Tears down one socket's queue state (armed receives, queued sends,
  // undelivered events) without disturbing other sockets — the server's
  // park path. Slots return to the pool; delivery is owned by the session
  // resend window.
  void CancelSocket(cionet::SocketId socket);

  // True while this socket still has submitted-but-unreaped send entries —
  // an orderly close must wait for (or flush) them first.
  bool HasInFlightSends(cionet::SocketId socket) const;

  // Full ring reset for recovery: bumps the epoch (completions from the old
  // generation reap as stale, not as tampering), drops every in-flight
  // entry and returns its slots. The caller replays from the session resend
  // window once the channel is re-established.
  void AbandonInFlight();

  // --- One-shot wrappers (the legacy per-message API surface) ---------------

  // Submit-and-doorbell one streaming send. Returns bytes accepted.
  ciobase::Result<size_t> SendOne(cionet::SocketId socket,
                                  ciobase::ByteSpan data);

  // Arm, doorbell, and drain this socket's receive events into `out`
  // (cleared; capacity reused). Status conventions follow the legacy
  // receive path: Ok(0) = nothing available, kFailedPrecondition = orderly
  // EOF, kLinkReset = the connection died underneath the app. `max_bytes`
  // is a hint — slot granularity may return more.
  ciobase::Result<size_t> ReceiveOne(cionet::SocketId socket,
                                     size_t max_bytes, ciobase::Buffer& out);

  // Drives the I/O compartment; identical to Doorbell().
  ciobase::Status Poll();

  struct Stats {
    uint64_t crossings = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    uint64_t receive_copies = 0;
    uint64_t receive_revocations = 0;
    uint64_t doorbells = 0;
    uint64_t sq_submitted = 0;
    uint64_t cq_completions = 0;
    uint64_t cq_stale_dropped = 0;  // old-epoch completions after recovery
    uint64_t sq_backpressure = 0;   // SQ-full / pool-empty pushback
    uint64_t send_failures = 0;     // failed send completions (resend covers)
  };
  const Stats& stats() const { return stats_; }

  // Test hooks: the raw shared region (hostile-host tests scribble CQ
  // entries through this) and ring bookkeeping.
  ciobase::MutableByteSpan queue_region_for_test() { return region_; }
  uint32_t epoch() const { return epoch_; }
  size_t free_slots() const { return pool_.free_slots(); }
  size_t in_flight_entries() const { return in_flight_.size(); }

 private:
  // RAII crossing: enter the I/O compartment, return to the app.
  class Crossing {
   public:
    explicit Crossing(L5Channel* channel);
    ~Crossing();

   private:
    L5Channel* channel_;
  };

  struct InFlight {
    uint8_t op = 0;
    uint8_t seg_count = 0;
    uint32_t socket = 0;
    SqSegment segs[kSqMaxSegments];
  };
  struct HeldCqe {
    uint32_t socket = 0;
    CqEntry cqe;
  };
  struct IoSocketQueues {
    std::deque<SqEntry> sends;
    std::deque<SqEntry> recvs;
  };

  void ChargeCrossing();
  void InitQueues();

  uint8_t* ctrl() { return region_.data(); }
  ciobase::MutableByteSpan SqeSpan(uint32_t index);
  ciobase::MutableByteSpan CqeSpan(uint32_t index);

  bool SqFull() const;
  void SubmitSqe(SqEntry& sqe);
  void ReleaseEntrySlots(const InFlight& entry);

  // App side: reap + validate CQ entries (no crossing).
  ciobase::Status Harvest();
  ciobase::Status ConsumeCqe(const CqEntry& cqe);

  // I/O side (inside a crossing): consume SQEs, service sockets, post CQEs.
  void IoConsumeSq();
  void IoService();
  void IoServiceSends(uint32_t socket, IoSocketQueues& queues);
  void IoServiceRecvs(uint32_t socket, IoSocketQueues& queues);
  void PostCqe(uint32_t socket, const CqEntry& cqe);
  void DrainHeldCqes();

  ciotee::CompartmentManager* compartments_;
  ciotee::CompartmentId app_;
  ciotee::CompartmentId io_;
  cionet::NetStack* stack_;
  ciobase::CostModel* costs_;
  L5ReceiveMode receive_mode_;
  L5BoundaryKind boundary_kind_;
  L5QueueConfig queues_;
  Stats stats_;

  bool queues_ready_ = false;
  ciobase::MutableByteSpan region_;
  BufferPool pool_;

  // App-private submission/reap state (never trusted from shared memory).
  uint32_t sq_tail_ = 0;
  uint32_t sq_consumed_ = 0;  // gate-returned, not read from the region
  uint32_t cq_head_ = 0;
  uint32_t epoch_ = 0;
  uint64_t next_user_data_ = 1;
  std::map<uint64_t, InFlight> in_flight_;
  std::map<uint32_t, uint32_t> armed_;  // socket -> armed recv entries
  std::map<uint32_t, std::deque<RecvEvent>> events_;

  // I/O-compartment-private state.
  uint32_t io_sq_head_ = 0;
  uint32_t io_cq_tail_ = 0;
  std::map<uint32_t, IoSocketQueues> io_queues_;
  std::deque<HeldCqe> held_cqes_;  // CQ-full backpressure, drained in order
};

}  // namespace cio

#endif  // SRC_CIO_L5_CHANNEL_H_
