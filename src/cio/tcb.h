// TCB accounting: which code is inside the confidential application's
// trusted computing base under each stack profile — the "TCB" axis of
// Figure 5.
//
// Line counts are measured from this repository (tools/count_loc.sh
// regenerates them; the table is checked against the live tree by
// tcb_test.cc within a tolerance, so it cannot silently rot). What matters
// for the figure is the *ratio* between profiles, which is structural: the
// dual-boundary and syscall profiles exclude the network stack from the
// app's TCB; the L2 profiles include it.

#ifndef SRC_CIO_TCB_H_
#define SRC_CIO_TCB_H_

#include <string>
#include <vector>

#include "src/cio/engine.h"

namespace cio {

struct TcbModule {
  std::string name;
  size_t lines;
};

struct TcbReport {
  // Code the application must trust with its data (compromise = game over).
  std::vector<TcbModule> app_tcb;
  // Code inside the confidential unit but OUTSIDE the app's TCB (the
  // isolated I/O compartment): its compromise only raises observability.
  std::vector<TcbModule> isolated;
  // Untrusted host-side code the design relies on for service only.
  std::vector<TcbModule> host_side;

  size_t AppTcbLines() const;
  size_t IsolatedLines() const;
  std::string ToString() const;
};

// The per-module line counts used by the reports.
const std::vector<TcbModule>& ModuleLineCounts();

TcbReport ProfileTcb(StackProfile profile);

}  // namespace cio

#endif  // SRC_CIO_TCB_H_
