// Shared-memory geometry of the hardened L2 transport.
//
// Everything is sized and aligned at powers of two so that every index and
// offset derived from host-written values can be made safe by masking alone
// (§3.2 "safe ring buffer & shared data area"). The layout is a pure
// function of L2Config — both sides compute it independently; nothing about
// it is ever communicated at runtime.
//
//   region:
//     [counters]        4 cache-line-separated monotonic u64 counters
//     [tx ring]         ring_slots * slot_size
//     [rx ring]         ring_slots * slot_size
//     [tx pool]         ring_slots * slot_size   (pool/indirect modes)
//     [rx pool]         ring_slots * slot_size
//     [tx indirect]     ring_slots * 64
//     [rx indirect]     ring_slots * 64
//
// Slot headers (8 bytes):
//   inline:    [len u32][reserved u32][payload ...]
//   pool:      [len u32][pool offset u32]
//   indirect:  [entry count u32][table offset u32]
// Indirect table entries: [pool offset u32][len u32], up to 4 per slot.
//
// Pool chunks are statically bound to slots (chunk i <-> slot i): there is
// no shared allocator, no free list, and therefore no temporal state to
// attack — the "stateless interface" principle applied to buffer
// management.

#ifndef SRC_CIO_L2_LAYOUT_H_
#define SRC_CIO_L2_LAYOUT_H_

#include "src/base/bits.h"
#include "src/cio/l2_config.h"

namespace cio {

inline constexpr uint64_t kL2SlotHeaderSize = 8;
inline constexpr uint64_t kL2IndirectEntrySize = 8;
inline constexpr uint32_t kL2MaxIndirectEntries = 4;
inline constexpr uint64_t kL2IndirectTableStride = 64;

struct L2Layout {
  explicit L2Layout(const L2Config& config)
      : slots(config.ring_slots), slot_size(config.slot_size) {
    tx_ring = 256;  // counters occupy [0, 256)
    rx_ring = tx_ring + slots * slot_size;
    tx_pool = rx_ring + slots * slot_size;
    rx_pool = tx_pool + slots * slot_size;
    tx_indirect = rx_pool + slots * slot_size;
    rx_indirect = tx_indirect + slots * kL2IndirectTableStride;
    total = rx_indirect + slots * kL2IndirectTableStride;
  }

  // Counter cells (separated to avoid any pretense of shared cache lines).
  uint64_t TxProduced() const { return 0; }
  uint64_t TxConsumed() const { return 64; }
  uint64_t RxProduced() const { return 128; }
  uint64_t RxConsumed() const { return 192; }
  // Reset epochs (recovery protocol): the guest bumps GuestEpoch when it
  // resets the ring; an honest host adopts the new epoch, zeroes its own
  // shadows, and echoes it into HostEpoch. Both live in the counter block's
  // tail — like the counters they are monotonic u64s, never trusted, only
  // compared.
  uint64_t GuestEpoch() const { return 200; }
  uint64_t HostEpoch() const { return 208; }

  uint64_t TxSlot(uint64_t index) const {
    return tx_ring + ciobase::MaskIndex(index, slots) * slot_size;
  }
  uint64_t RxSlot(uint64_t index) const {
    return rx_ring + ciobase::MaskIndex(index, slots) * slot_size;
  }
  // Pool chunk statically paired with a slot index.
  uint64_t TxChunk(uint64_t index) const {
    return tx_pool + ciobase::MaskIndex(index, slots) * slot_size;
  }
  uint64_t RxChunk(uint64_t index) const {
    return rx_pool + ciobase::MaskIndex(index, slots) * slot_size;
  }
  // Masks an untrusted pool offset into a valid chunk-aligned offset.
  uint64_t MaskRxPoolOffset(uint64_t untrusted) const {
    return rx_pool +
           ciobase::MaskOffset(untrusted, slots * slot_size, slot_size);
  }
  uint64_t TxIndirectTable(uint64_t index) const {
    return tx_indirect +
           ciobase::MaskIndex(index, slots) * kL2IndirectTableStride;
  }
  uint64_t RxIndirectTable(uint64_t index) const {
    return rx_indirect +
           ciobase::MaskIndex(index, slots) * kL2IndirectTableStride;
  }
  uint64_t MaskRxIndirectOffset(uint64_t untrusted) const {
    return rx_indirect + ciobase::MaskOffset(
                             untrusted, slots * kL2IndirectTableStride,
                             kL2IndirectTableStride);
  }

  uint64_t slots;
  uint64_t slot_size;
  uint64_t tx_ring;
  uint64_t rx_ring;
  uint64_t tx_pool;
  uint64_t rx_pool;
  uint64_t tx_indirect;
  uint64_t rx_indirect;
  uint64_t total;
};

}  // namespace cio

#endif  // SRC_CIO_L2_LAYOUT_H_
