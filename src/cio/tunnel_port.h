// TunnelPort: a LightBox-style [17] L2-in-crypto tunnel (§2.4 "tunneled
// approaches, encapsulating L2 packets into a TLS tunnel from a safe
// network, to hide metadata from the confidential unit's untrusted host
// and network").
//
// Every outgoing Ethernet frame is padded to one fixed tunnel size and
// sealed (AEAD with per-direction sequence numbers) before it touches the
// host-visible transport; incoming tunnel frames are opened and unpadded.
// The host — and any network observer on the path to the tunnel gateway —
// sees a stream of identical-size ciphertext frames: packet-length entropy
// collapses to zero, buying the "Obs: S" corner of Figure 5 at the price
// of bandwidth overhead (padding), AEAD per frame, and the full stack plus
// tunnel living in the application's TCB.
//
// Framing inside the tunnel payload: [inner_len u16][frame][zero padding],
// sealed as one TLS-style record. Tampering or replay on the tunnel path
// fails authentication and drops the frame.

#ifndef SRC_CIO_TUNNEL_PORT_H_
#define SRC_CIO_TUNNEL_PORT_H_

#include "src/base/clock.h"
#include "src/net/port.h"
#include "src/tls/record.h"

namespace cio {

class TunnelPort final : public cionet::FramePort {
 public:
  // `inner` carries the sealed tunnel frames (any FramePort). `psk` is the
  // tunnel key, established with the safe-network gateway out of band
  // (attestation-bound, like the L5 TLS key). Both tunnel endpoints must
  // use mirrored roles (`is_initiator` true on exactly one side).
  TunnelPort(cionet::FramePort* inner, ciobase::ByteSpan psk,
             bool is_initiator, ciobase::CostModel* costs);

  // Each frame in the batch is sealed to the fixed tunnel size and handed
  // to the inner port; the inner port coalesces its own doorbell across the
  // batch. Receive opens every authentic tunnel frame the inner batch
  // yields; link statuses (kLinkReset / kTimedOut) pass through untouched.
  ciobase::Result<size_t> SendFrames(
      std::span<const ciobase::ByteSpan> frames) override;
  ciobase::Result<size_t> ReceiveFrames(cionet::FrameBatch& batch,
                                        size_t max_frames) override;
  cionet::MacAddress mac() const override { return inner_->mac(); }
  // The fixed padding eats into the usable MTU.
  uint16_t mtu() const override;

  struct Stats {
    uint64_t frames_sealed = 0;
    uint64_t frames_opened = 0;
    uint64_t auth_failures = 0;
    uint64_t padding_bytes = 0;  // pure overhead paid for uniformity
  };
  const Stats& stats() const { return stats_; }

  // Fixed on-the-wire tunnel payload size (before the Ethernet header the
  // inner port adds). Every sealed frame has exactly this many bytes.
  static constexpr size_t kTunnelPayload = 1400;

 private:
  // Seals one frame into tx_stage_/tx_spans_; kInvalidArgument if the frame
  // cannot ride the tunnel (oversized, unparseable header).
  ciobase::Status SealOne(ciobase::ByteSpan frame);

  cionet::FramePort* inner_;
  ciobase::CostModel* costs_;
  ciotls::SealingKey send_key_;
  ciotls::SealingKey recv_key_;
  Stats stats_;
  // Reused staging for batched send/receive (capacity pooled across calls).
  cionet::FrameBatch tx_stage_;
  std::vector<ciobase::ByteSpan> tx_spans_;
  cionet::FrameBatch rx_outer_;
};

}  // namespace cio

#endif  // SRC_CIO_TUNNEL_PORT_H_
