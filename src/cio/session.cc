#include "src/cio/session.h"

#include <algorithm>
#include <cstring>

#include "src/prof/profiler.h"

namespace cio {

namespace {

// Serialized-session layout (version in the magic): little-endian, strict.
constexpr uint32_t kSessionMagic = 0x314E5343;  // "CSN1"
constexpr uint32_t kFlagUseTls = 1u << 0;
// Hard caps on restored collections: a blob that claims more crossed the
// host and is hostile regardless of what the seal said.
constexpr uint32_t kMaxRestorePsk = 4096;
constexpr uint32_t kMaxRestoreEntries = 65536;

// Bounds-checked little-endian cursor over an untrusted blob. All getters
// return false once any read would run past the end; the caller maps that
// to one typed kTampered.
class BlobReader {
 public:
  explicit BlobReader(ciobase::ByteSpan blob) : blob_(blob) {}

  bool U32(uint32_t& out) {
    if (blob_.size() - pos_ < 4) {
      return Fail();
    }
    out = ciobase::LoadLe32(blob_.data() + pos_);
    pos_ += 4;
    return true;
  }
  bool U64(uint64_t& out) {
    if (blob_.size() - pos_ < 8) {
      return Fail();
    }
    out = ciobase::LoadLe64(blob_.data() + pos_);
    pos_ += 8;
    return true;
  }
  bool Bytes(size_t n, ciobase::Buffer& out) {
    if (blob_.size() - pos_ < n) {
      return Fail();
    }
    out.assign(blob_.begin() + static_cast<long>(pos_),
               blob_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return true;
  }
  bool Done() const { return !failed_ && pos_ == blob_.size(); }
  bool failed() const { return failed_; }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }
  ciobase::ByteSpan blob_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

Session::Session(bool use_tls, ciobase::Buffer psk, size_t resend_window_cap,
                 RekeyPolicy rekey)
    : use_tls_(use_tls),
      psk_(std::move(psk)),
      resend_cap_(resend_window_cap),
      rekey_(rekey) {}

void Session::Start(ciotls::TlsRole role, uint64_t seed) {
  if (use_tls_) {
    tls_ = std::make_unique<ciotls::TlsSession>(role, psk_, "cio-link", seed);
    tls_->set_profiler(prof_);
    tls_->Start();
    PumpTls();
  }
  // A fresh channel starts from generation-zero keys; the rekey odometer
  // restarts with it.
  records_since_rekey_ = 0;
  bytes_since_rekey_ = 0;
  if (started_once_) {
    ++stats_.tls_restarts;
  }
  started_once_ = true;
}

bool Session::Established() const {
  if (!started_once_) {
    return false;
  }
  if (use_tls_) {
    return tls_ != nullptr && tls_->established();
  }
  return true;
}

void Session::PumpTls() {
  if (tls_ == nullptr) {
    return;
  }
  ciobase::Buffer out = tls_->TakeOutput();
  ciobase::Append(outbound_, out);
}

ciobase::Status Session::FrameAndQueue(uint64_t seq,
                                       ciobase::ByteSpan payload) {
  // Wire framing: [len u32][seq u64][payload], len covering seq + payload.
  ciobase::Buffer framed;
  framed.resize(12);
  ciobase::StoreLe32(framed.data(), static_cast<uint32_t>(8 + payload.size()));
  ciobase::StoreLe64(framed.data() + 4, seq);
  ciobase::Append(framed, payload);
  if (use_tls_) {
    if (tls_ == nullptr) {
      return ciobase::FailedPrecondition("no session");
    }
    CIO_RETURN_IF_ERROR(tls_->WriteMessage(framed));
    PumpTls();
  } else {
    ciobase::Append(outbound_, framed);
  }
  return ciobase::OkStatus();
}

ciobase::Status Session::Send(ciobase::ByteSpan payload) {
  if (!Established()) {
    return ciobase::FailedPrecondition("channel not established");
  }
  CIO_PROF_SCOPE(prof_, "session.seal");
  if (payload.size() > kMaxMessageBytes) {
    return ciobase::InvalidArgument("message too large");
  }
  uint64_t seq = next_send_seq_++;
  PushResendWindow(seq, payload);
  CIO_RETURN_IF_ERROR(FrameAndQueue(seq, payload));
  ++stats_.messages_sent;
  NoteSealed(payload.size());
  return ciobase::OkStatus();
}

ciobase::Status Session::SendControl(CtrlType type, ciobase::ByteSpan body) {
  if (!Established()) {
    return ciobase::FailedPrecondition("channel not established");
  }
  if (body.size() + 1 > kMaxMessageBytes) {
    return ciobase::InvalidArgument("control body too large");
  }
  ciobase::Buffer payload;
  payload.reserve(1 + body.size());
  payload.push_back(static_cast<uint8_t>(type));
  ciobase::Append(payload, body);
  // Sequence zero: the receive side routes it to the control inbox without
  // touching the dedup state, and it is never resend-window tracked.
  CIO_RETURN_IF_ERROR(FrameAndQueue(0, payload));
  ++stats_.control_sent;
  return ciobase::OkStatus();
}

std::optional<ControlMessage> Session::PollControl() {
  if (control_inbox_.empty()) {
    return std::nullopt;
  }
  ControlMessage msg = std::move(control_inbox_.front());
  control_inbox_.pop_front();
  return msg;
}

void Session::Rekey() {
  if (tls_ == nullptr || !tls_->established()) {
    return;
  }
  if (tls_->RequestKeyUpdate().ok()) {
    ++stats_.rekeys;
    records_since_rekey_ = 0;
    bytes_since_rekey_ = 0;
    PumpTls();
  }
}

void Session::NoteSealed(size_t payload_bytes) {
  if (!use_tls_ || !rekey_.enabled()) {
    return;
  }
  ++records_since_rekey_;
  bytes_since_rekey_ += payload_bytes;
  if ((rekey_.after_records != 0 &&
       records_since_rekey_ >= rekey_.after_records) ||
      (rekey_.after_bytes != 0 && bytes_since_rekey_ >= rekey_.after_bytes)) {
    Rekey();
  }
}

void Session::PushResendWindow(uint64_t seq, ciobase::ByteSpan payload) {
  if (resend_cap_ == 0) {
    return;
  }
  resend_window_.emplace_back(seq,
                              ciobase::Buffer(payload.begin(), payload.end()));
  if (resend_window_.size() > resend_cap_) {
    // Evicted before any reconnect could replay it: if a fault hits, the
    // receiver will see the sequence gap and count the loss.
    resend_window_.pop_front();
  }
}

ciobase::Status Session::SendInto(ciobase::ByteSpan payload,
                                  SegmentSink& sink) {
  if (!Established()) {
    return ciobase::FailedPrecondition("channel not established");
  }
  CIO_PROF_SCOPE(prof_, "session.seal");
  if (payload.size() > kMaxMessageBytes) {
    return ciobase::InvalidArgument("message too large");
  }
  if (!use_tls_) {
    // Plaintext ablation: stream [len u32][seq u64][payload] across the
    // segments; the header lands at the start of a fresh segment, the
    // payload fills whatever remains and spills slot by slot.
    ciobase::MutableByteSpan span = sink.NextSpan(12);
    if (span.size() < 12) {
      return ciobase::ResourceExhausted("segment sink full");
    }
    uint64_t seq = next_send_seq_++;
    PushResendWindow(seq, payload);
    ciobase::StoreLe32(span.data(),
                       static_cast<uint32_t>(8 + payload.size()));
    ciobase::StoreLe64(span.data() + 4, seq);
    size_t used = 12;
    size_t offset = 0;
    while (offset < payload.size()) {
      if (used == span.size()) {
        sink.Commit(used);
        span = sink.NextSpan(1);
        if (span.empty()) {
          // Unreachable when the caller reserved SlotsForMessage() worth of
          // segments; the resend window still owns the payload either way.
          return ciobase::Internal("segment sink exhausted mid-message");
        }
        used = 0;
      }
      size_t n = std::min(payload.size() - offset, span.size() - used);
      std::memcpy(span.data() + used, payload.data() + offset, n);
      used += n;
      offset += n;
    }
    sink.Commit(used);
    ++stats_.messages_sent;
    return ciobase::OkStatus();
  }
  if (tls_ == nullptr) {
    return ciobase::FailedPrecondition("no session");
  }
  // The frame header is sealed as its own record so it never needs to share
  // a fragment with payload bytes; 12 plaintext bytes -> 33 sealed.
  constexpr size_t kHeaderRecordBytes = 12 + ciotls::kSealedRecordOverhead;
  ciobase::MutableByteSpan span = sink.NextSpan(kHeaderRecordBytes);
  if (span.size() < kHeaderRecordBytes) {
    // Nothing sealed yet: the TLS sequence and resend window are untouched,
    // so the caller can retry on the outbound_ path.
    return ciobase::ResourceExhausted("segment sink full");
  }
  uint64_t seq = next_send_seq_++;
  PushResendWindow(seq, payload);
  uint8_t header[12];
  ciobase::StoreLe32(header, static_cast<uint32_t>(8 + payload.size()));
  ciobase::StoreLe64(header + 4, seq);
  auto sealed =
      tls_->SealRecordToSpan(ciobase::ByteSpan(header, sizeof(header)), span);
  if (!sealed.ok()) {
    return sealed.status();
  }
  sink.Commit(*sealed);
  size_t offset = 0;
  while (offset < payload.size()) {
    span = sink.NextSpan(1 + ciotls::kSealedRecordOverhead);
    if (span.size() <= ciotls::kSealedRecordOverhead) {
      // See the plaintext arm: structurally unreachable behind a
      // SlotsForMessage() reservation; recovery replays from the window.
      return ciobase::Internal("segment sink exhausted mid-message");
    }
    size_t n = std::min({payload.size() - offset,
                         span.size() - ciotls::kSealedRecordOverhead,
                         ciotls::kMaxRecordPayload});
    auto fragment = tls_->SealRecordToSpan(payload.subspan(offset, n), span);
    if (!fragment.ok()) {
      return fragment.status();
    }
    sink.Commit(*fragment);
    offset += n;
  }
  ++stats_.messages_sent;
  // Accounted only after every fragment of this message sealed under the
  // current key: the KeyUpdate (if triggered) lands in outbound_, which the
  // engine flushes after the SQ slots just committed — record order under
  // the old key is preserved.
  NoteSealed(payload.size());
  return ciobase::OkStatus();
}

ciobase::Result<ciobase::Buffer> Session::Receive() {
  if (inbox_.empty()) {
    return ciobase::Unavailable("no message");
  }
  ciobase::Buffer message = std::move(inbox_.front());
  inbox_.pop_front();
  ++stats_.messages_received;
  return message;
}

void Session::ConsumeOutbound(size_t n) {
  outbound_.erase(outbound_.begin(),
                  outbound_.begin() + static_cast<long>(n));
}

ciobase::Status Session::Ingest(ciobase::ByteSpan bytes) {
  CIO_PROF_SCOPE(prof_, "session.open");
  if (use_tls_) {
    if (tls_ == nullptr) {
      return ciobase::FailedPrecondition("channel not started");
    }
    if (!tls_->Feed(bytes).ok()) {
      return ciobase::LinkReset("tls stream corrupt");
    }
    PumpTls();  // the handshake may have produced a reply flight
    for (;;) {
      auto chunk = tls_->ReadMessage();
      if (!chunk.ok()) {
        break;
      }
      ciobase::Append(frame_rx_, *chunk);
    }
  } else {
    ciobase::Append(frame_rx_, bytes);
  }
  return ParseFrames();
}

ciobase::Status Session::ParseFrames() {
  // Reassemble length-framed, sequence-numbered application messages (both
  // modes frame the stream identically; TLS just protects the framed
  // bytes). The sequence numbers make delivery exactly-once across link
  // resets: resend-window replays deduplicate here, and gaps (messages that
  // fell out of the peer's window) are counted lost, never papered over.
  while (frame_rx_.size() >= 4) {
    uint32_t len = ciobase::LoadLe32(frame_rx_.data());
    if (len < 8 || len > (1u << 24)) {
      return ciobase::Tampered("hostile framing");
    }
    if (frame_rx_.size() < 4 + len) {
      break;
    }
    uint64_t seq = ciobase::LoadLe64(frame_rx_.data() + 4);
    if (seq == 0) {
      // Control frame: [ctrl u8][body] routed around the dedup state.
      if (len < 9) {
        return ciobase::Tampered("hostile control framing");
      }
      control_inbox_.push_back(ControlMessage{
          frame_rx_[12],
          ciobase::Buffer(frame_rx_.begin() + 13,
                          frame_rx_.begin() + 4 + len)});
      ++stats_.control_received;
    } else if (seq <= last_delivered_seq_) {
      ++stats_.messages_duplicate_dropped;
    } else {
      if (seq != last_delivered_seq_ + 1) {
        stats_.messages_lost += seq - last_delivered_seq_ - 1;
      }
      last_delivered_seq_ = seq;
      inbox_.emplace_back(frame_rx_.begin() + 12, frame_rx_.begin() + 4 + len);
    }
    frame_rx_.erase(frame_rx_.begin(), frame_rx_.begin() + 4 + len);
  }
  return ciobase::OkStatus();
}

void Session::ResetChannel() {
  tls_.reset();
  outbound_.clear();
  frame_rx_.clear();  // a partial frame died with the old channel
  // Undelivered control messages die with the transport incarnation that
  // produced them: a challenge or redirect must not outlive its channel.
  control_inbox_.clear();
}

ciobase::Status Session::Replay() {
  for (const auto& [seq, payload] : resend_window_) {
    CIO_RETURN_IF_ERROR(FrameAndQueue(seq, payload));
    ++stats_.messages_resent;
  }
  return ciobase::OkStatus();
}

ciobase::Buffer Session::SerializeState() const {
  ciobase::Buffer blob;
  auto put32 = [&blob](uint32_t v) {
    size_t at = blob.size();
    blob.resize(at + 4);
    ciobase::StoreLe32(blob.data() + at, v);
  };
  auto put64 = [&blob](uint64_t v) {
    size_t at = blob.size();
    blob.resize(at + 8);
    ciobase::StoreLe64(blob.data() + at, v);
  };
  put32(kSessionMagic);
  put32(use_tls_ ? kFlagUseTls : 0);
  put32(static_cast<uint32_t>(resend_cap_));
  put64(next_send_seq_);
  put64(last_delivered_seq_);
  put64(stats_.messages_sent);
  put64(stats_.messages_received);
  put64(stats_.messages_resent);
  put64(stats_.messages_duplicate_dropped);
  put64(stats_.messages_lost);
  put64(stats_.tls_restarts);
  put64(stats_.rekeys);
  put64(stats_.control_sent);
  put64(stats_.control_received);
  put32(static_cast<uint32_t>(psk_.size()));
  ciobase::Append(blob, psk_);
  put32(static_cast<uint32_t>(resend_window_.size()));
  for (const auto& [seq, payload] : resend_window_) {
    put64(seq);
    put32(static_cast<uint32_t>(payload.size()));
    ciobase::Append(blob, payload);
  }
  // Messages delivered (dedup state advanced) but not yet handed to the
  // application travel with the session: dropping them here would turn
  // "delivered exactly once" into "delivered zero times".
  put32(static_cast<uint32_t>(inbox_.size()));
  for (const auto& message : inbox_) {
    put32(static_cast<uint32_t>(message.size()));
    ciobase::Append(blob, message);
  }
  return blob;
}

ciobase::Result<std::unique_ptr<Session>> Session::Restore(
    ciobase::ByteSpan blob, RekeyPolicy rekey) {
  BlobReader reader(blob);
  uint32_t magic = 0;
  uint32_t flags = 0;
  uint32_t resend_cap = 0;
  if (!reader.U32(magic) || magic != kSessionMagic) {
    return ciobase::Tampered("session blob: bad magic");
  }
  if (!reader.U32(flags) || (flags & ~kFlagUseTls) != 0) {
    return ciobase::Tampered("session blob: bad flags");
  }
  if (!reader.U32(resend_cap) || resend_cap > kMaxRestoreEntries) {
    return ciobase::Tampered("session blob: bad resend cap");
  }
  uint64_t next_send_seq = 0;
  uint64_t last_delivered_seq = 0;
  Stats stats;
  bool header_ok =
      reader.U64(next_send_seq) && reader.U64(last_delivered_seq) &&
      reader.U64(stats.messages_sent) && reader.U64(stats.messages_received) &&
      reader.U64(stats.messages_resent) &&
      reader.U64(stats.messages_duplicate_dropped) &&
      reader.U64(stats.messages_lost) && reader.U64(stats.tls_restarts) &&
      reader.U64(stats.rekeys) && reader.U64(stats.control_sent) &&
      reader.U64(stats.control_received);
  if (!header_ok || next_send_seq == 0) {
    return ciobase::Tampered("session blob: truncated header");
  }
  uint32_t psk_len = 0;
  ciobase::Buffer psk;
  if (!reader.U32(psk_len) || psk_len > kMaxRestorePsk ||
      !reader.Bytes(psk_len, psk)) {
    return ciobase::Tampered("session blob: bad psk");
  }
  auto session = std::make_unique<Session>(
      (flags & kFlagUseTls) != 0, std::move(psk), resend_cap, rekey);
  session->next_send_seq_ = next_send_seq;
  session->last_delivered_seq_ = last_delivered_seq;
  session->stats_ = stats;
  uint32_t window_count = 0;
  if (!reader.U32(window_count) || window_count > kMaxRestoreEntries ||
      window_count > resend_cap) {
    return ciobase::Tampered("session blob: bad window count");
  }
  uint64_t prev_seq = 0;
  for (uint32_t i = 0; i < window_count; ++i) {
    uint64_t seq = 0;
    uint32_t len = 0;
    ciobase::Buffer payload;
    if (!reader.U64(seq) || !reader.U32(len) || len > kMaxMessageBytes ||
        !reader.Bytes(len, payload)) {
      return ciobase::Tampered("session blob: bad window entry");
    }
    // Window entries are strictly increasing and below the send cursor;
    // anything else is a stitched-together blob.
    if (seq <= prev_seq || seq >= next_send_seq) {
      return ciobase::Tampered("session blob: window sequence disorder");
    }
    prev_seq = seq;
    session->resend_window_.emplace_back(seq, std::move(payload));
  }
  uint32_t inbox_count = 0;
  if (!reader.U32(inbox_count) || inbox_count > kMaxRestoreEntries) {
    return ciobase::Tampered("session blob: bad inbox count");
  }
  for (uint32_t i = 0; i < inbox_count; ++i) {
    uint32_t len = 0;
    ciobase::Buffer message;
    if (!reader.U32(len) || len > kMaxMessageBytes ||
        !reader.Bytes(len, message)) {
      return ciobase::Tampered("session blob: bad inbox entry");
    }
    session->inbox_.push_back(std::move(message));
  }
  if (!reader.Done()) {
    return ciobase::Tampered("session blob: trailing bytes");
  }
  // The restored session is parked: established again only after a fresh
  // handshake on the new instance (counted as a TLS restart).
  session->started_once_ = true;
  return session;
}

void Session::Forget() {
  tls_.reset();
  outbound_.clear();
  frame_rx_.clear();
  inbox_.clear();
  control_inbox_.clear();
  resend_window_.clear();
  next_send_seq_ = 1;
  last_delivered_seq_ = 0;
  records_since_rekey_ = 0;
  bytes_since_rekey_ = 0;
  started_once_ = false;
  stats_ = Stats{};
}

}  // namespace cio
