#include "src/cio/session.h"

#include <algorithm>
#include <cstring>

namespace cio {

Session::Session(bool use_tls, ciobase::Buffer psk, size_t resend_window_cap)
    : use_tls_(use_tls), psk_(std::move(psk)), resend_cap_(resend_window_cap) {}

void Session::Start(ciotls::TlsRole role, uint64_t seed) {
  if (use_tls_) {
    tls_ = std::make_unique<ciotls::TlsSession>(role, psk_, "cio-link", seed);
    tls_->Start();
    PumpTls();
  }
  if (started_once_) {
    ++stats_.tls_restarts;
  }
  started_once_ = true;
}

bool Session::Established() const {
  if (!started_once_) {
    return false;
  }
  if (use_tls_) {
    return tls_ != nullptr && tls_->established();
  }
  return true;
}

void Session::PumpTls() {
  if (tls_ == nullptr) {
    return;
  }
  ciobase::Buffer out = tls_->TakeOutput();
  ciobase::Append(outbound_, out);
}

ciobase::Status Session::FrameAndQueue(uint64_t seq,
                                       ciobase::ByteSpan payload) {
  // Wire framing: [len u32][seq u64][payload], len covering seq + payload.
  ciobase::Buffer framed;
  framed.resize(12);
  ciobase::StoreLe32(framed.data(), static_cast<uint32_t>(8 + payload.size()));
  ciobase::StoreLe64(framed.data() + 4, seq);
  ciobase::Append(framed, payload);
  if (use_tls_) {
    if (tls_ == nullptr) {
      return ciobase::FailedPrecondition("no session");
    }
    CIO_RETURN_IF_ERROR(tls_->WriteMessage(framed));
    PumpTls();
  } else {
    ciobase::Append(outbound_, framed);
  }
  return ciobase::OkStatus();
}

ciobase::Status Session::Send(ciobase::ByteSpan payload) {
  if (!Established()) {
    return ciobase::FailedPrecondition("channel not established");
  }
  if (payload.size() > kMaxMessageBytes) {
    return ciobase::InvalidArgument("message too large");
  }
  uint64_t seq = next_send_seq_++;
  PushResendWindow(seq, payload);
  CIO_RETURN_IF_ERROR(FrameAndQueue(seq, payload));
  ++stats_.messages_sent;
  return ciobase::OkStatus();
}

void Session::PushResendWindow(uint64_t seq, ciobase::ByteSpan payload) {
  if (resend_cap_ == 0) {
    return;
  }
  resend_window_.emplace_back(seq,
                              ciobase::Buffer(payload.begin(), payload.end()));
  if (resend_window_.size() > resend_cap_) {
    // Evicted before any reconnect could replay it: if a fault hits, the
    // receiver will see the sequence gap and count the loss.
    resend_window_.pop_front();
  }
}

ciobase::Status Session::SendInto(ciobase::ByteSpan payload,
                                  SegmentSink& sink) {
  if (!Established()) {
    return ciobase::FailedPrecondition("channel not established");
  }
  if (payload.size() > kMaxMessageBytes) {
    return ciobase::InvalidArgument("message too large");
  }
  if (!use_tls_) {
    // Plaintext ablation: stream [len u32][seq u64][payload] across the
    // segments; the header lands at the start of a fresh segment, the
    // payload fills whatever remains and spills slot by slot.
    ciobase::MutableByteSpan span = sink.NextSpan(12);
    if (span.size() < 12) {
      return ciobase::ResourceExhausted("segment sink full");
    }
    uint64_t seq = next_send_seq_++;
    PushResendWindow(seq, payload);
    ciobase::StoreLe32(span.data(),
                       static_cast<uint32_t>(8 + payload.size()));
    ciobase::StoreLe64(span.data() + 4, seq);
    size_t used = 12;
    size_t offset = 0;
    while (offset < payload.size()) {
      if (used == span.size()) {
        sink.Commit(used);
        span = sink.NextSpan(1);
        if (span.empty()) {
          // Unreachable when the caller reserved SlotsForMessage() worth of
          // segments; the resend window still owns the payload either way.
          return ciobase::Internal("segment sink exhausted mid-message");
        }
        used = 0;
      }
      size_t n = std::min(payload.size() - offset, span.size() - used);
      std::memcpy(span.data() + used, payload.data() + offset, n);
      used += n;
      offset += n;
    }
    sink.Commit(used);
    ++stats_.messages_sent;
    return ciobase::OkStatus();
  }
  if (tls_ == nullptr) {
    return ciobase::FailedPrecondition("no session");
  }
  // The frame header is sealed as its own record so it never needs to share
  // a fragment with payload bytes; 12 plaintext bytes -> 33 sealed.
  constexpr size_t kHeaderRecordBytes = 12 + ciotls::kSealedRecordOverhead;
  ciobase::MutableByteSpan span = sink.NextSpan(kHeaderRecordBytes);
  if (span.size() < kHeaderRecordBytes) {
    // Nothing sealed yet: the TLS sequence and resend window are untouched,
    // so the caller can retry on the outbound_ path.
    return ciobase::ResourceExhausted("segment sink full");
  }
  uint64_t seq = next_send_seq_++;
  PushResendWindow(seq, payload);
  uint8_t header[12];
  ciobase::StoreLe32(header, static_cast<uint32_t>(8 + payload.size()));
  ciobase::StoreLe64(header + 4, seq);
  auto sealed =
      tls_->SealRecordToSpan(ciobase::ByteSpan(header, sizeof(header)), span);
  if (!sealed.ok()) {
    return sealed.status();
  }
  sink.Commit(*sealed);
  size_t offset = 0;
  while (offset < payload.size()) {
    span = sink.NextSpan(1 + ciotls::kSealedRecordOverhead);
    if (span.size() <= ciotls::kSealedRecordOverhead) {
      // See the plaintext arm: structurally unreachable behind a
      // SlotsForMessage() reservation; recovery replays from the window.
      return ciobase::Internal("segment sink exhausted mid-message");
    }
    size_t n = std::min({payload.size() - offset,
                         span.size() - ciotls::kSealedRecordOverhead,
                         ciotls::kMaxRecordPayload});
    auto fragment = tls_->SealRecordToSpan(payload.subspan(offset, n), span);
    if (!fragment.ok()) {
      return fragment.status();
    }
    sink.Commit(*fragment);
    offset += n;
  }
  ++stats_.messages_sent;
  return ciobase::OkStatus();
}

ciobase::Result<ciobase::Buffer> Session::Receive() {
  if (inbox_.empty()) {
    return ciobase::Unavailable("no message");
  }
  ciobase::Buffer message = std::move(inbox_.front());
  inbox_.pop_front();
  ++stats_.messages_received;
  return message;
}

void Session::ConsumeOutbound(size_t n) {
  outbound_.erase(outbound_.begin(),
                  outbound_.begin() + static_cast<long>(n));
}

ciobase::Status Session::Ingest(ciobase::ByteSpan bytes) {
  if (use_tls_) {
    if (tls_ == nullptr) {
      return ciobase::FailedPrecondition("channel not started");
    }
    if (!tls_->Feed(bytes).ok()) {
      return ciobase::LinkReset("tls stream corrupt");
    }
    PumpTls();  // the handshake may have produced a reply flight
    for (;;) {
      auto chunk = tls_->ReadMessage();
      if (!chunk.ok()) {
        break;
      }
      ciobase::Append(frame_rx_, *chunk);
    }
  } else {
    ciobase::Append(frame_rx_, bytes);
  }
  return ParseFrames();
}

ciobase::Status Session::ParseFrames() {
  // Reassemble length-framed, sequence-numbered application messages (both
  // modes frame the stream identically; TLS just protects the framed
  // bytes). The sequence numbers make delivery exactly-once across link
  // resets: resend-window replays deduplicate here, and gaps (messages that
  // fell out of the peer's window) are counted lost, never papered over.
  while (frame_rx_.size() >= 4) {
    uint32_t len = ciobase::LoadLe32(frame_rx_.data());
    if (len < 8 || len > (1u << 24)) {
      return ciobase::Tampered("hostile framing");
    }
    if (frame_rx_.size() < 4 + len) {
      break;
    }
    uint64_t seq = ciobase::LoadLe64(frame_rx_.data() + 4);
    if (seq <= last_delivered_seq_) {
      ++stats_.messages_duplicate_dropped;
    } else {
      if (seq != last_delivered_seq_ + 1) {
        stats_.messages_lost += seq - last_delivered_seq_ - 1;
      }
      last_delivered_seq_ = seq;
      inbox_.emplace_back(frame_rx_.begin() + 12, frame_rx_.begin() + 4 + len);
    }
    frame_rx_.erase(frame_rx_.begin(), frame_rx_.begin() + 4 + len);
  }
  return ciobase::OkStatus();
}

void Session::ResetChannel() {
  tls_.reset();
  outbound_.clear();
  frame_rx_.clear();  // a partial frame died with the old channel
}

ciobase::Status Session::Replay() {
  for (const auto& [seq, payload] : resend_window_) {
    CIO_RETURN_IF_ERROR(FrameAndQueue(seq, payload));
    ++stats_.messages_resent;
  }
  return ciobase::OkStatus();
}

}  // namespace cio
