// io_uring-style submission/completion queues for the L5 boundary.
//
// The synchronous per-message L5 calls paid one boundary crossing per
// operation. The async datapath replaces them with two rings in the
// registered queue region (one long-lived allocation in the I/O heap, next
// to the sealed-buffer pool, see src/cio/buffer_pool.h):
//
//   SQ: the app encodes submission entries (send / arm-receive), each
//       naming up to kSqMaxSegments scatter-gather segments of registered
//       pool slots, and publishes a tail counter. One doorbell crossing
//       per batch consumes everything.
//   CQ: the I/O side posts completion entries; the app reaps them lazily,
//       WITHOUT crossing — completions are validated app-side against the
//       shadow of what was actually submitted.
//
// Trust boundary: the app trusts nothing it reads back from the region.
// Every CQ field (user_data, epoch, result, per-segment lengths, status
// code) is host-writable in the threat model, so the reaper checks each
// against its private in-flight shadow and surfaces violations as typed
// kTampered errors; ring indices are clamped/masked so no counter value can
// direct an access outside the rings. The I/O side, per the ternary model,
// trusts app-written SQ entries (the app is the trusted component).
//
// Entries are fixed 64-byte, little-endian serialized — no pointers ever
// cross, only slot indices and lengths.

#ifndef SRC_CIO_SQCQ_H_
#define SRC_CIO_SQCQ_H_

#include <cstdint>

#include "src/base/bytes.h"

namespace cio {

inline constexpr size_t kSqcqControlBytes = 64;
inline constexpr size_t kSqeSize = 64;
inline constexpr size_t kCqeSize = 64;
inline constexpr size_t kSqMaxSegments = 8;

// Submission opcodes.
inline constexpr uint8_t kSqOpSend = 1;
inline constexpr uint8_t kSqOpRecv = 2;

// Completion status codes (host-writable: anything else is tampering).
inline constexpr uint16_t kCqOk = 0;
inline constexpr uint16_t kCqEof = 1;      // orderly EOF on an armed receive
inline constexpr uint16_t kCqReset = 2;    // connection died underneath

// Control block cell offsets (u32 little-endian each).
inline constexpr size_t kCtrlSqHead = 0;   // io-written: SQEs consumed
inline constexpr size_t kCtrlSqTail = 4;   // app-written: SQEs published
inline constexpr size_t kCtrlCqHead = 8;   // app-written: CQEs reaped
inline constexpr size_t kCtrlCqTail = 12;  // io-written: CQEs posted
inline constexpr size_t kCtrlEpoch = 16;   // app-written: ring generation

struct SqSegment {
  uint16_t slot = 0;
  uint32_t len = 0;
};

struct SqEntry {
  uint8_t op = 0;
  uint8_t seg_count = 0;
  uint32_t socket = 0;
  uint64_t user_data = 0;
  SqSegment segs[kSqMaxSegments];
};

struct CqEntry {
  uint8_t op = 0;
  uint8_t seg_count = 0;
  uint16_t code = kCqOk;
  uint32_t result = 0;  // total bytes moved; must equal the segment sum
  uint64_t user_data = 0;
  uint32_t epoch = 0;
  uint32_t seg_len[kSqMaxSegments] = {};
};

// Geometry + validation of the queue region knobs. Also carried in
// cio::StackConfig as the dual-boundary queue configuration.
struct L5QueueConfig {
  uint32_t sq_entries = 64;    // power of two
  uint32_t cq_entries = 64;    // power of two
  uint32_t pool_slots = 160;
  uint32_t slot_size = 4096;
  // Receive credit the engine keeps posted per socket (entries x segments).
  uint32_t recv_entries = 4;
  uint32_t recv_segments = 4;

  bool Valid() const;
  size_t SqOffset() const { return kSqcqControlBytes; }
  size_t CqOffset() const { return SqOffset() + sq_entries * kSqeSize; }
  size_t PoolOffset() const { return CqOffset() + cq_entries * kCqeSize; }
  size_t TotalBytes() const {
    return PoolOffset() + static_cast<size_t>(pool_slots) * slot_size;
  }
};

// Entry codecs over the raw region. Encode writes exactly kSqeSize/kCqeSize
// bytes; Decode never reads past them and clamps seg_count into range (the
// caller still validates the decoded values against its shadow).
void EncodeSqe(const SqEntry& entry, ciobase::MutableByteSpan out);
SqEntry DecodeSqe(ciobase::ByteSpan in);
void EncodeCqe(const CqEntry& entry, ciobase::MutableByteSpan out);
CqEntry DecodeCqe(ciobase::ByteSpan in);

}  // namespace cio

#endif  // SRC_CIO_SQCQ_H_
