// StackConfig: the one consolidated knob block for a ConfidentialNode.
//
// Every tunable a stack assembly needs — profile selection, identity,
// crypto, the dual-boundary L5/L2 knobs, the guest TCP tuning, and the
// fault-recovery budgets — lives here, so benchmarks, tests and the attack
// campaign configure a node in exactly one place. DefaultsFor() returns the
// validated defaults for a profile; notably only the dual-boundary profile
// enables link recovery by default (the baselines wedge under a hostile
// host, which is part of what the campaign measures).

#ifndef SRC_CIO_STACK_CONFIG_H_
#define SRC_CIO_STACK_CONFIG_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/recovery.h"
#include "src/cio/l2_config.h"
#include "src/cio/l5_channel.h"
#include "src/net/tcp.h"
#include "src/tee/trust.h"

namespace cioprof {
class ProfRegistry;
}  // namespace cioprof

namespace cio {

enum class StackProfile {
  kSyscallL5 = 0,
  kPassthroughL2 = 1,
  kHardenedVirtio = 2,
  kDualBoundary = 3,
  // §3.4: direct device assignment with SPDM attestation + IDE link
  // protection; the stack stays in the app domain, the device joins the
  // TCB, and no interface hardening is needed.
  kDirectDevice = 4,
  // §2.4's tunneled approach (LightBox-style): every L2 frame padded to a
  // fixed size and sealed before the host sees it — minimal observability
  // (even packet-length entropy collapses), maximal TCB.
  kTunneledL2 = 5,
};
inline constexpr int kStackProfileCount = 6;

std::string_view StackProfileName(StackProfile profile);
std::vector<StackProfile> AllStackProfiles();

// The trust model each profile instantiates (§2.1/§3.1).
ciotee::TrustModel ProfileTrustModel(StackProfile profile);

struct StackConfig {
  StackProfile profile = StackProfile::kDualBoundary;
  uint32_t node_id = 1;  // derives MAC 02:00:…:id and IP 10.0.0.id
  uint64_t seed = 1;
  ciobase::Buffer psk;   // attestation-bound pre-shared key
  bool use_tls = true;   // the design mandates TLS; ablations may disable

  // Dual-boundary knobs.
  L5ReceiveMode l5_receive = L5ReceiveMode::kCopy;
  L5BoundaryKind l5_boundary = L5BoundaryKind::kCompartment;
  DataPositioning l2_positioning = DataPositioning::kInline;
  ReceiveOwnership l2_rx_ownership = ReceiveOwnership::kCopy;
  bool l2_polling = true;

  // Async L5 datapath: SQ/CQ geometry + sealed-buffer pool.
  L5QueueConfig l5_queue;
  // Latency mode: doorbell immediately after each submitted message instead
  // of batching until the next poll round — trades peak throughput for p99.
  bool l5_latency_mode = false;
  // Sealed L2 receive: charge only a header snapshot per frame instead of a
  // defensive payload copy — sound when every payload byte is authenticated
  // by the L5 AEAD layer before parsing (the dual-boundary default).
  bool l2_sealed_rx = false;

  // Guest (and, for the syscall profile, host-proxy) TCP stack tuning. The
  // recovery campaign shrinks the RTO so retransmit-driven catch-up fits in
  // a simulated fault window.
  cionet::TcpConnection::Tuning tcp_tuning;

  // Listener accept-queue cap (SYNs beyond it are refused with RST); the
  // multi-tenant server sizes this to its connection budget.
  size_t accept_backlog = 64;

  // Optional in-sim profiler (src/prof): the node binds it to its clock +
  // cost model at construction and hangs it on every instrumented layer.
  // One registry per node — counter snapshots don't compose across nodes.
  cioprof::ProfRegistry* profiler = nullptr;

  // Device zoo (ISSUE 7). `enable_vsock` attaches a vsock stream device in
  // its own shared region (any profile with a host boundary, i.e. not the
  // syscall profile). `net_devices` = 2 bonds a second virtio-net device
  // under the stack (passthrough-l2 / hardened-virtio only — the profiles
  // whose FramePort is a virtio driver).
  bool enable_vsock = false;
  uint32_t net_devices = 1;

  // Link-fault recovery: watchdog timeouts, ring-reset budgets, TLS
  // reconnect budget, resend window. Disabled by default; DefaultsFor()
  // switches it on for the dual-boundary profile.
  ciobase::RecoveryConfig recovery;

  // Session lifecycle (ISSUE 9). Send-side rekey thresholds: after this many
  // application records / payload bytes the node ratchets its TLS sending
  // keys forward in-band (0 disables that trigger; both zero = no rekeying).
  uint64_t rekey_after_records = 0;
  uint64_t rekey_after_bytes = 0;

  // Attestation credentials for admission to an attestation-gated server:
  // `attestation_key` is the simulated platform key (empty = this node
  // cannot produce reports and will be rejected kUnauthenticated), and
  // `code_identity` feeds the measurement. `attest_stale_probe` is a
  // campaign hook: the client signs a fixed nonce instead of the server's
  // fresh challenge, modeling a replayed/stale report.
  ciobase::Buffer attestation_key;
  std::string code_identity = "cio-node";
  bool attest_stale_probe = false;

  // Validated per-profile defaults.
  static StackConfig DefaultsFor(StackProfile profile, uint32_t node_id = 1);

  bool Valid() const;
};

}  // namespace cio

#endif  // SRC_CIO_STACK_CONFIG_H_
