#include "src/cio/sqcq.h"

#include "src/base/bits.h"

namespace cio {

bool L5QueueConfig::Valid() const {
  return ciobase::IsPowerOfTwo(sq_entries) && sq_entries >= 2 &&
         ciobase::IsPowerOfTwo(cq_entries) && cq_entries >= 2 &&
         pool_slots >= kSqMaxSegments && pool_slots <= (1u << 15) &&
         slot_size >= 256 && recv_entries >= 1 &&
         recv_segments >= 1 && recv_segments <= kSqMaxSegments;
}

void EncodeSqe(const SqEntry& entry, ciobase::MutableByteSpan out) {
  uint8_t* p = out.data();
  p[0] = entry.op;
  p[1] = entry.seg_count;
  ciobase::StoreLe16(p + 2, 0);
  ciobase::StoreLe32(p + 4, entry.socket);
  ciobase::StoreLe64(p + 8, entry.user_data);
  for (size_t i = 0; i < kSqMaxSegments; ++i) {
    ciobase::StoreLe16(p + 16 + i * 6, entry.segs[i].slot);
    ciobase::StoreLe32(p + 18 + i * 6, entry.segs[i].len);
  }
}

SqEntry DecodeSqe(ciobase::ByteSpan in) {
  const uint8_t* p = in.data();
  SqEntry entry;
  entry.op = p[0];
  entry.seg_count = p[1] > kSqMaxSegments ? kSqMaxSegments : p[1];
  entry.socket = ciobase::LoadLe32(p + 4);
  entry.user_data = ciobase::LoadLe64(p + 8);
  for (size_t i = 0; i < kSqMaxSegments; ++i) {
    entry.segs[i].slot = ciobase::LoadLe16(p + 16 + i * 6);
    entry.segs[i].len = ciobase::LoadLe32(p + 18 + i * 6);
  }
  return entry;
}

void EncodeCqe(const CqEntry& entry, ciobase::MutableByteSpan out) {
  uint8_t* p = out.data();
  p[0] = entry.op;
  p[1] = entry.seg_count;
  ciobase::StoreLe16(p + 2, entry.code);
  ciobase::StoreLe32(p + 4, entry.result);
  ciobase::StoreLe64(p + 8, entry.user_data);
  ciobase::StoreLe32(p + 16, entry.epoch);
  ciobase::StoreLe32(p + 20, 0);
  for (size_t i = 0; i < kSqMaxSegments; ++i) {
    ciobase::StoreLe32(p + 24 + i * 4, entry.seg_len[i]);
  }
}

CqEntry DecodeCqe(ciobase::ByteSpan in) {
  const uint8_t* p = in.data();
  CqEntry entry;
  entry.op = p[0];
  entry.seg_count = p[1] > kSqMaxSegments ? kSqMaxSegments : p[1];
  entry.code = ciobase::LoadLe16(p + 2);
  entry.result = ciobase::LoadLe32(p + 4);
  entry.user_data = ciobase::LoadLe64(p + 8);
  entry.epoch = ciobase::LoadLe32(p + 16);
  for (size_t i = 0; i < kSqMaxSegments; ++i) {
    entry.seg_len[i] = ciobase::LoadLe32(p + 24 + i * 4);
  }
  return entry;
}

}  // namespace cio
