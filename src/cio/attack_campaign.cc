#include "src/cio/attack_campaign.h"

#include <algorithm>
#include <cstdio>

#include "src/base/rng.h"

namespace cio {

std::string_view AttackOutcomeName(AttackOutcome outcome) {
  switch (outcome) {
    case AttackOutcome::kMemoryViolation:
      return "MEMORY-VIOLATION";
    case AttackOutcome::kConfidentialityLeak:
      return "CONFIDENTIALITY-LEAK";
    case AttackOutcome::kIntegrityBreak:
      return "INTEGRITY-BREAK";
    case AttackOutcome::kDegradedService:
      return "degraded-service";
    case AttackOutcome::kBlocked:
      return "blocked";
  }
  return "?";
}

namespace {

// Campaign cells shrink the TCP timers so retransmit-driven catch-up (and,
// for the recovery dimension, retry exhaustion on a killed link) fits in a
// simulated fault window instead of wall-clock-scale RTOs.
void TuneTcpForCampaign(StackConfig& config) {
  config.tcp_tuning.initial_rto_ns = 1'000'000;  // 1 ms
  config.tcp_tuning.min_rto_ns = 500'000;
  config.tcp_tuning.max_rto_ns = 4'000'000;
  config.tcp_tuning.max_retries = 4;
}

// Every delivered message must be some sent message, in sent order
// (TCP+TLS guarantee ordering; the engine's sequence numbers drop
// duplicates). Counts received messages that match no remaining sent one.
size_t CorruptedCount(const std::vector<ciobase::Buffer>& sent,
                      const std::vector<ciobase::Buffer>& received) {
  size_t bad = 0;
  size_t next = 0;
  for (const auto& message : received) {
    size_t match = next;
    while (match < sent.size() && !(sent[match] == message)) {
      ++match;
    }
    if (match == sent.size()) {
      ++bad;
    } else {
      next = match + 1;
    }
  }
  return bad;
}

}  // namespace

CampaignCell RunAttackCell(StackProfile profile,
                           ciohost::AttackStrategy strategy,
                           const CampaignOptions& options) {
  CampaignCell cell;
  cell.profile = profile;
  cell.strategy = strategy;
  cell.messages_attempted = options.messages_per_cell;

  StackConfig victim_config = StackConfig::DefaultsFor(profile, 1);
  victim_config.seed = options.seed * 101 + static_cast<uint64_t>(strategy);
  victim_config.use_tls = options.use_tls;
  StackConfig peer_config = victim_config;
  peer_config.node_id = 2;
  peer_config.seed += 7;

  LinkedPair pair(victim_config, peer_config);
  if (!pair.Establish()) {
    cell.outcome = AttackOutcome::kDegradedService;
    cell.note = "link never established (pre-attack)";
    return cell;
  }

  // Arm the adversary against the VICTIM (the client node): behavioral
  // attacks through its host device, memory attacks on its shared region.
  ConfidentialNode& victim = *pair.client;
  ConfidentialNode& peer = *pair.server;
  victim.adversary().set_strategy(strategy);
  if (victim.shared_region() != nullptr) {
    std::vector<ciohost::SurfaceField> surface;
    if (victim.l2_transport() != nullptr) {
      surface = victim.l2_transport()->AttackSurface();
    } else if (victim.virtio_driver() != nullptr) {
      surface = victim.virtio_driver()->AttackSurface();
    } else if (victim.dda_transport() != nullptr) {
      surface = victim.dda_transport()->AttackSurface();
    }
    if (!surface.empty()) {
      victim.adversary().Arm(victim.shared_region(), surface);
    }
  }
  victim.memory().ClearViolations();

  // Push messages both ways under attack; track what survives.
  ciobase::Rng rng(options.seed);
  std::vector<ciobase::Buffer> sent_to_peer;
  std::vector<ciobase::Buffer> received_at_peer;
  std::vector<ciobase::Buffer> sent_to_victim;
  std::vector<ciobase::Buffer> received_at_victim;

  for (size_t i = 0; i < options.messages_per_cell; ++i) {
    ciobase::Buffer to_peer = rng.Bytes(options.message_size);
    ciobase::Buffer to_victim = rng.Bytes(options.message_size);
    if (victim.SendMessage(to_peer).ok()) {
      sent_to_peer.push_back(to_peer);
    }
    if (peer.SendMessage(to_victim).ok()) {
      sent_to_victim.push_back(to_victim);
    }
    for (int round = 0; round < 60; ++round) {
      pair.Pump();
      auto at_peer = peer.ReceiveMessage();
      if (at_peer.ok()) {
        received_at_peer.push_back(*at_peer);
      }
      auto at_victim = victim.ReceiveMessage();
      if (at_victim.ok()) {
        received_at_victim.push_back(*at_victim);
      }
    }
    if (victim.Failed() || peer.Failed()) {
      break;
    }
  }
  // Grace period for stragglers.
  for (int round = 0; round < 3000 && !victim.Failed() && !peer.Failed();
       ++round) {
    pair.Pump();
    auto at_peer = peer.ReceiveMessage();
    if (at_peer.ok()) {
      received_at_peer.push_back(*at_peer);
    }
    auto at_victim = victim.ReceiveMessage();
    if (at_victim.ok()) {
      received_at_victim.push_back(*at_victim);
    }
  }
  victim.adversary().Disarm();

  // --- Evidence collection ----------------------------------------------------

  cell.oob_accesses =
      victim.memory().ViolationCount(ciotee::ViolationKind::kOobRead) +
      victim.memory().ViolationCount(ciotee::ViolationKind::kOobWrite);
  if (victim.compartments() != nullptr) {
    cell.isolation_violations = victim.compartments()->violations().size();
  }
  if (victim.tls() != nullptr) {
    cell.tls_auth_failures += victim.tls()->stats().auth_failures;
  }
  cell.payload_observations =
      victim.observability().CountOf(ciohost::ObsCategory::kPayload);
  cell.messages_delivered = std::min(received_at_peer.size(),
                                     received_at_victim.size());

  cell.messages_corrupted = CorruptedCount(sent_to_peer, received_at_peer) +
                            CorruptedCount(sent_to_victim, received_at_victim);

  // --- Classification (worst evidence wins) -----------------------------------

  if (cell.oob_accesses > 0) {
    cell.outcome = AttackOutcome::kMemoryViolation;
    cell.note = "transport performed out-of-bounds shared-memory access";
  } else if (cell.payload_observations > 0) {
    cell.outcome = AttackOutcome::kConfidentialityLeak;
    cell.note = "host observed plaintext payloads";
  } else if (cell.messages_corrupted > 0) {
    cell.outcome = AttackOutcome::kIntegrityBreak;
    cell.note = "application accepted corrupted data";
  } else if (received_at_peer.size() < sent_to_peer.size() ||
             received_at_victim.size() < sent_to_victim.size() ||
             victim.Failed() || peer.Failed()) {
    cell.outcome = AttackOutcome::kDegradedService;
    cell.note = "messages lost or link killed (availability only)";
  } else {
    cell.outcome = AttackOutcome::kBlocked;
    cell.note = "all messages delivered intact";
  }
  return cell;
}

std::vector<CampaignCell> RunCampaign(const CampaignOptions& options) {
  std::vector<CampaignCell> cells;
  for (StackProfile profile : options.profiles) {
    for (ciohost::AttackStrategy strategy : options.strategies) {
      cells.push_back(RunAttackCell(profile, strategy, options));
    }
  }
  return cells;
}

std::string CampaignTable(const std::vector<CampaignCell>& cells) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-18s %-22s %-22s %s\n", "profile",
                "strategy", "outcome", "evidence");
  out += line;
  out += std::string(90, '-') + "\n";
  for (const auto& cell : cells) {
    std::snprintf(
        line, sizeof(line),
        "%-18s %-22s %-22s oob=%llu iso=%llu tls=%llu del=%zu/%zu\n",
        std::string(StackProfileName(cell.profile)).c_str(),
        std::string(ciohost::AttackStrategyName(cell.strategy)).c_str(),
        std::string(AttackOutcomeName(cell.outcome)).c_str(),
        static_cast<unsigned long long>(cell.oob_accesses),
        static_cast<unsigned long long>(cell.isolation_violations),
        static_cast<unsigned long long>(cell.tls_auth_failures),
        cell.messages_delivered, cell.messages_attempted);
    out += line;
  }
  return out;
}

// --- Recovery dimension ------------------------------------------------------

RecoveryCell RunRecoveryCell(StackProfile profile,
                             ciohost::FaultStrategy fault,
                             const RecoveryOptions& options) {
  RecoveryCell cell;
  cell.profile = profile;
  cell.fault = fault;

  StackConfig victim_config = StackConfig::DefaultsFor(profile, 1);
  victim_config.seed = options.seed * 131 + static_cast<uint64_t>(fault);
  TuneTcpForCampaign(victim_config);
  StackConfig peer_config = victim_config;
  peer_config.node_id = 2;
  peer_config.seed += 7;

  LinkedPair pair(victim_config, peer_config);
  if (!pair.Establish()) {
    cell.note = "link never established (pre-fault)";
    return cell;
  }
  ConfidentialNode& victim = *pair.client;
  ConfidentialNode& peer = *pair.server;
  victim.memory().ClearViolations();

  ciobase::Rng rng(options.seed + static_cast<uint64_t>(fault) * 17);
  std::vector<ciobase::Buffer> sent_to_peer;
  std::vector<ciobase::Buffer> received_at_peer;
  std::vector<ciobase::Buffer> sent_to_victim;
  std::vector<ciobase::Buffer> received_at_victim;
  size_t refused = 0;

  auto drain = [&] {
    for (auto m = peer.ReceiveMessage(); m.ok(); m = peer.ReceiveMessage()) {
      received_at_peer.push_back(*m);
    }
    for (auto m = victim.ReceiveMessage(); m.ok();
         m = victim.ReceiveMessage()) {
      received_at_victim.push_back(*m);
    }
  };
  // Offers one message, retrying while the node is mid-recovery. A message
  // counts as attempted only once SendMessage accepted it (the engine then
  // owns exactly-once-or-counted-lost delivery for it).
  auto offer = [&](ConfidentialNode& from, std::vector<ciobase::Buffer>& log) {
    ciobase::Buffer message = rng.Bytes(options.message_size);
    for (int round = 0; round < options.send_retry_rounds; ++round) {
      if (from.Failed()) {
        break;
      }
      if (from.SendMessage(message).ok()) {
        log.push_back(message);
        return true;
      }
      pair.Pump();
      drain();
    }
    ++refused;
    return false;
  };
  // All accepted messages accounted for: delivered at the far end or counted
  // as a sequence gap (lost) by the receiving engine.
  auto accounted = [&] {
    return received_at_peer.size() + peer.recovery_stats().messages_lost ==
               sent_to_peer.size() &&
           received_at_victim.size() +
                   victim.recovery_stats().messages_lost ==
               sent_to_victim.size();
  };
  auto settle = [&](int budget) {
    for (int round = 0; round < budget; ++round) {
      pair.Pump();
      drain();
      if (accounted() && victim.Ready() && peer.Ready() && !victim.Failed() &&
          !peer.Failed()) {
        return true;
      }
    }
    return false;
  };

  // Phase 1: steady traffic with an honest host.
  for (size_t i = 0; i < options.messages_before; ++i) {
    offer(victim, sent_to_peer);
    offer(peer, sent_to_victim);
  }
  if (!settle(options.catchup_rounds)) {
    cell.note = "pre-fault traffic stalled";
    cell.messages_attempted = sent_to_peer.size() + sent_to_victim.size();
    cell.messages_delivered =
        received_at_peer.size() + received_at_victim.size();
    return cell;
  }

  // Phase 2: open the fault window and keep offering traffic through it.
  const uint64_t fault_start_ns = pair.clock.now_ns();
  victim.adversary().InjectFault(
      {fault, fault_start_ns, options.fault_duration_ns});
  for (size_t i = 0; i < options.messages_during; ++i) {
    offer(victim, sent_to_peer);
    offer(peer, sent_to_victim);
  }
  // Pump through whatever remains of the hostile window.
  while (pair.clock.now_ns() < fault_start_ns + options.fault_duration_ns) {
    pair.Pump();
    drain();
  }

  // Phase 3: the host is honest again — does the guest come back?
  uint64_t recovered_at_ns = 0;
  if (settle(options.catchup_rounds)) {
    recovered_at_ns = pair.clock.now_ns();
  }

  // Phase 4: the revived link must carry new work, not just drain backlog.
  if (recovered_at_ns != 0) {
    for (size_t i = 0; i < options.messages_after; ++i) {
      offer(victim, sent_to_peer);
      offer(peer, sent_to_victim);
    }
    if (settle(options.catchup_rounds) && refused == 0) {
      cell.recovered = true;
      cell.time_to_recovery_ns = recovered_at_ns - fault_start_ns;
    } else {
      cell.note = "link revived but post-fault traffic stalled";
    }
  } else {
    cell.note = victim.Failed() || peer.Failed()
                    ? "node wedged (terminal failure)"
                    : "catch-up budget exhausted";
  }

  // --- Evidence collection ----------------------------------------------------

  cell.messages_attempted = sent_to_peer.size() + sent_to_victim.size();
  cell.messages_delivered =
      received_at_peer.size() + received_at_victim.size();
  cell.messages_lost = victim.recovery_stats().messages_lost +
                       peer.recovery_stats().messages_lost;
  cell.messages_duplicate_dropped =
      victim.recovery_stats().messages_duplicate_dropped +
      peer.recovery_stats().messages_duplicate_dropped;
  if (victim.l2_transport() != nullptr) {
    cell.ring_resets = victim.l2_transport()->stats().ring_resets;
    cell.watchdog_fires = victim.l2_transport()->stats().watchdog_fires;
  } else if (victim.virtio_driver() != nullptr) {
    cell.ring_resets = victim.virtio_driver()->stats().ring_resets;
    cell.watchdog_fires = victim.virtio_driver()->stats().watchdog_fires;
  }
  cell.reconnects = victim.recovery_stats().reconnects +
                    peer.recovery_stats().reconnects;
  cell.tls_restarts = victim.recovery_stats().tls_restarts +
                      peer.recovery_stats().tls_restarts;
  cell.fault_events = victim.adversary().fault_events();
  cell.oob_accesses =
      victim.memory().ViolationCount(ciotee::ViolationKind::kOobRead) +
      victim.memory().ViolationCount(ciotee::ViolationKind::kOobWrite);
  cell.payload_observations =
      victim.observability().CountOf(ciohost::ObsCategory::kPayload);
  cell.messages_corrupted = CorruptedCount(sent_to_peer, received_at_peer) +
                            CorruptedCount(sent_to_victim, received_at_victim);
  if (refused > 0 && cell.note.empty()) {
    cell.note = "sender refused messages mid-fault";
  }
  return cell;
}

std::vector<RecoveryCell> RunRecoveryCampaign(const RecoveryOptions& options) {
  std::vector<RecoveryCell> cells;
  for (StackProfile profile : options.profiles) {
    for (ciohost::FaultStrategy fault : options.faults) {
      cells.push_back(RunRecoveryCell(profile, fault, options));
    }
  }
  return cells;
}

std::string RecoveryTable(const std::vector<RecoveryCell>& cells) {
  std::string out;
  char line[320];
  std::snprintf(line, sizeof(line), "%-18s %-18s %-9s %9s %9s %5s %5s %7s %7s  %s\n",
                "profile", "fault", "recovered", "ttr_ms", "del/att", "lost",
                "dup", "resets", "reconn", "note");
  out += line;
  out += std::string(110, '-') + "\n";
  for (const auto& cell : cells) {
    char ttr[32];
    if (cell.recovered) {
      std::snprintf(ttr, sizeof(ttr), "%.2f",
                    static_cast<double>(cell.time_to_recovery_ns) / 1e6);
    } else {
      std::snprintf(ttr, sizeof(ttr), "-");
    }
    char delivered[32];
    std::snprintf(delivered, sizeof(delivered), "%zu/%zu",
                  cell.messages_delivered, cell.messages_attempted);
    std::snprintf(
        line, sizeof(line), "%-18s %-18s %-9s %9s %9s %5llu %5llu %7llu %7llu  %s\n",
        std::string(StackProfileName(cell.profile)).c_str(),
        std::string(ciohost::FaultStrategyName(cell.fault)).c_str(),
        cell.recovered ? "yes" : "WEDGED",
        ttr, delivered,
        static_cast<unsigned long long>(cell.messages_lost),
        static_cast<unsigned long long>(cell.messages_duplicate_dropped),
        static_cast<unsigned long long>(cell.ring_resets),
        static_cast<unsigned long long>(cell.reconnects),
        cell.note.c_str());
    out += line;
  }
  return out;
}

}  // namespace cio
