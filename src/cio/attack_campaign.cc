#include "src/cio/attack_campaign.h"

#include <cstdio>

#include "src/base/rng.h"

namespace cio {

std::string_view AttackOutcomeName(AttackOutcome outcome) {
  switch (outcome) {
    case AttackOutcome::kMemoryViolation:
      return "MEMORY-VIOLATION";
    case AttackOutcome::kConfidentialityLeak:
      return "CONFIDENTIALITY-LEAK";
    case AttackOutcome::kIntegrityBreak:
      return "INTEGRITY-BREAK";
    case AttackOutcome::kDegradedService:
      return "degraded-service";
    case AttackOutcome::kBlocked:
      return "blocked";
  }
  return "?";
}

CampaignCell RunAttackCell(StackProfile profile,
                           ciohost::AttackStrategy strategy,
                           const CampaignOptions& options) {
  CampaignCell cell;
  cell.profile = profile;
  cell.strategy = strategy;
  cell.messages_attempted = options.messages_per_cell;

  NodeOptions victim_options;
  victim_options.profile = profile;
  victim_options.node_id = 1;
  victim_options.seed = options.seed * 101 + static_cast<uint64_t>(strategy);
  victim_options.use_tls = options.use_tls;
  NodeOptions peer_options = victim_options;
  peer_options.node_id = 2;
  peer_options.seed += 7;

  LinkedPair pair(victim_options, peer_options);
  if (!pair.Establish()) {
    cell.outcome = AttackOutcome::kDegradedService;
    cell.note = "link never established (pre-attack)";
    return cell;
  }

  // Arm the adversary against the VICTIM (the client node): behavioral
  // attacks through its host device, memory attacks on its shared region.
  ConfidentialNode& victim = *pair.client;
  ConfidentialNode& peer = *pair.server;
  victim.adversary().set_strategy(strategy);
  if (victim.shared_region() != nullptr) {
    std::vector<ciohost::SurfaceField> surface;
    if (victim.l2_transport() != nullptr) {
      surface = victim.l2_transport()->AttackSurface();
    } else if (victim.virtio_driver() != nullptr) {
      surface = victim.virtio_driver()->AttackSurface();
    } else if (victim.dda_transport() != nullptr) {
      surface = victim.dda_transport()->AttackSurface();
    }
    if (!surface.empty()) {
      victim.adversary().Arm(victim.shared_region(), surface);
    }
  }
  victim.memory().ClearViolations();

  // Push messages both ways under attack; track what survives.
  ciobase::Rng rng(options.seed);
  std::vector<ciobase::Buffer> sent_to_peer;
  std::vector<ciobase::Buffer> received_at_peer;
  std::vector<ciobase::Buffer> sent_to_victim;
  std::vector<ciobase::Buffer> received_at_victim;

  for (size_t i = 0; i < options.messages_per_cell; ++i) {
    ciobase::Buffer to_peer = rng.Bytes(options.message_size);
    ciobase::Buffer to_victim = rng.Bytes(options.message_size);
    if (victim.SendMessage(to_peer).ok()) {
      sent_to_peer.push_back(to_peer);
    }
    if (peer.SendMessage(to_victim).ok()) {
      sent_to_victim.push_back(to_victim);
    }
    for (int round = 0; round < 60; ++round) {
      pair.Pump();
      auto at_peer = peer.ReceiveMessage();
      if (at_peer.ok()) {
        received_at_peer.push_back(*at_peer);
      }
      auto at_victim = victim.ReceiveMessage();
      if (at_victim.ok()) {
        received_at_victim.push_back(*at_victim);
      }
    }
    if (victim.Failed() || peer.Failed()) {
      break;
    }
  }
  // Grace period for stragglers.
  for (int round = 0; round < 3000 && !victim.Failed() && !peer.Failed();
       ++round) {
    pair.Pump();
    auto at_peer = peer.ReceiveMessage();
    if (at_peer.ok()) {
      received_at_peer.push_back(*at_peer);
    }
    auto at_victim = victim.ReceiveMessage();
    if (at_victim.ok()) {
      received_at_victim.push_back(*at_victim);
    }
  }
  victim.adversary().Disarm();

  // --- Evidence collection ----------------------------------------------------

  cell.oob_accesses =
      victim.memory().ViolationCount(ciotee::ViolationKind::kOobRead) +
      victim.memory().ViolationCount(ciotee::ViolationKind::kOobWrite);
  if (victim.compartments() != nullptr) {
    cell.isolation_violations = victim.compartments()->violations().size();
  }
  if (victim.tls() != nullptr) {
    cell.tls_auth_failures += victim.tls()->stats().auth_failures;
  }
  cell.payload_observations =
      victim.observability().CountOf(ciohost::ObsCategory::kPayload);
  cell.messages_delivered = std::min(received_at_peer.size(),
                                     received_at_victim.size());

  // Integrity: every delivered message must match some sent message, in
  // order (TCP+TLS guarantee in-order delivery; plaintext mode likewise).
  auto corrupted = [](const std::vector<ciobase::Buffer>& sent,
                      const std::vector<ciobase::Buffer>& received) {
    size_t bad = 0;
    for (size_t i = 0; i < received.size(); ++i) {
      if (i >= sent.size() || !(received[i] == sent[i])) {
        ++bad;
      }
    }
    return bad;
  };
  cell.messages_corrupted = corrupted(sent_to_peer, received_at_peer) +
                            corrupted(sent_to_victim, received_at_victim);

  // --- Classification (worst evidence wins) -----------------------------------

  if (cell.oob_accesses > 0) {
    cell.outcome = AttackOutcome::kMemoryViolation;
    cell.note = "transport performed out-of-bounds shared-memory access";
  } else if (cell.payload_observations > 0) {
    cell.outcome = AttackOutcome::kConfidentialityLeak;
    cell.note = "host observed plaintext payloads";
  } else if (cell.messages_corrupted > 0) {
    cell.outcome = AttackOutcome::kIntegrityBreak;
    cell.note = "application accepted corrupted data";
  } else if (received_at_peer.size() < sent_to_peer.size() ||
             received_at_victim.size() < sent_to_victim.size() ||
             victim.Failed() || peer.Failed()) {
    cell.outcome = AttackOutcome::kDegradedService;
    cell.note = "messages lost or link killed (availability only)";
  } else {
    cell.outcome = AttackOutcome::kBlocked;
    cell.note = "all messages delivered intact";
  }
  return cell;
}

std::vector<CampaignCell> RunCampaign(const CampaignOptions& options) {
  std::vector<CampaignCell> cells;
  for (StackProfile profile : options.profiles) {
    for (ciohost::AttackStrategy strategy : options.strategies) {
      cells.push_back(RunAttackCell(profile, strategy, options));
    }
  }
  return cells;
}

std::string CampaignTable(const std::vector<CampaignCell>& cells) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-18s %-22s %-22s %s\n", "profile",
                "strategy", "outcome", "evidence");
  out += line;
  out += std::string(90, '-') + "\n";
  for (const auto& cell : cells) {
    std::snprintf(
        line, sizeof(line),
        "%-18s %-22s %-22s oob=%llu iso=%llu tls=%llu del=%zu/%zu\n",
        std::string(StackProfileName(cell.profile)).c_str(),
        std::string(ciohost::AttackStrategyName(cell.strategy)).c_str(),
        std::string(AttackOutcomeName(cell.outcome)).c_str(),
        static_cast<unsigned long long>(cell.oob_accesses),
        static_cast<unsigned long long>(cell.isolation_violations),
        static_cast<unsigned long long>(cell.tls_auth_failures),
        cell.messages_delivered, cell.messages_attempted);
    out += line;
  }
  return out;
}

}  // namespace cio
