// Session: the per-connection secure-channel state machine shared by the
// single-socket ConfidentialNode (src/cio/engine.*) and the multi-tenant
// ConfidentialServer (src/serve/*).
//
// One Session owns everything that belongs to exactly one peer relationship
// and survives transport re-establishment:
//
//   * the TLS session (PSK handshake, record protection),
//   * the [len u32][seq u64][payload] message framing on the protected
//     byte stream,
//   * exactly-once delivery accounting (duplicate drop, loss counting), and
//   * the resend window replayed after a link reset + TLS restart.
//
// It is deliberately byte-oriented and transport-agnostic: the owner moves
// bytes between outbound() and whatever socket plumbing the stack profile
// provides, and feeds received bytes to Ingest(). That keeps one
// implementation of the PR-2 recovery machinery for both the client engine
// and every server connection — no copy-paste between engine.cc and
// src/serve/.

#ifndef SRC_CIO_SESSION_H_
#define SRC_CIO_SESSION_H_

#include <deque>
#include <memory>
#include <utility>

#include "src/base/bytes.h"
#include "src/base/status.h"
#include "src/tls/session.h"

namespace cio {

// Destination for scatter-gather sends: hands out writable spans of the
// registered slot pool so Session::SendInto can seal records in place, with
// no intermediate contiguous staging buffer. NextSpan(min_bytes) returns the
// remaining room of the current segment, advancing to a fresh one when less
// than `min_bytes` remain (empty span == sink exhausted); Commit(n) marks
// the first n bytes of the last NextSpan() result as written.
class SegmentSink {
 public:
  virtual ~SegmentSink() = default;
  virtual ciobase::MutableByteSpan NextSpan(size_t min_bytes) = 0;
  virtual void Commit(size_t n) = 0;
};

class Session {
 public:
  struct Stats {
    uint64_t messages_sent = 0;      // accepted by Send()
    uint64_t messages_received = 0;  // handed out by Receive()
    uint64_t messages_resent = 0;    // replayed from the resend window
    uint64_t messages_duplicate_dropped = 0;  // dedup'd by sequence number
    uint64_t messages_lost = 0;   // receive-side sequence gaps
    uint64_t tls_restarts = 0;    // Start() calls after the first
  };

  // `resend_window_cap` == 0 disables the resend window (no recovery).
  Session(bool use_tls, ciobase::Buffer psk, size_t resend_window_cap);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // (Re)creates the secure channel over a fresh byte stream. The first call
  // is the initial establishment; later calls (after ResetChannel) count as
  // TLS restarts.
  void Start(ciotls::TlsRole role, uint64_t seed);

  // Channel ready for application messages (TLS established, or always for
  // plaintext ablations once Start ran).
  bool Established() const;
  // The TLS state machine failed (forged/garbled stream): the channel must
  // be reset and re-established, or the connection declared dead.
  bool TlsFailed() const { return tls_ != nullptr && tls_->failed(); }

  // --- Application messages --------------------------------------------------

  static constexpr size_t kMaxMessageBytes = (1u << 24) - 8;

  // Frames, protects, and queues one message; records it in the resend
  // window. kFailedPrecondition when the channel is not Established().
  ciobase::Status Send(ciobase::ByteSpan payload);
  // Like Send(), but seals the framed message directly into `sink` segments
  // (record-per-fragment, packed back to back) instead of outbound_ — the
  // zero-staging path of the async L5 datapath. Wire format is identical to
  // Send(): the peer's record reader reassembles across any segmentation.
  // Returns kResourceExhausted (before consuming a sequence number) when the
  // sink can't fit even the frame header, so the caller can fall back to the
  // outbound_ path; once sealing starts the message is committed to the
  // resend window and any mid-message exhaustion is kInternal (recovery
  // re-delivers from the window).
  ciobase::Status SendInto(ciobase::ByteSpan payload, SegmentSink& sink);
  // Next reassembled inbound message, kUnavailable when none.
  ciobase::Result<ciobase::Buffer> Receive();
  bool HasInbound() const { return !inbox_.empty(); }

  // --- Byte plumbing ---------------------------------------------------------

  // Bytes awaiting the transport (handshake flights, protected records).
  const ciobase::Buffer& outbound() const { return outbound_; }
  bool HasOutbound() const { return !outbound_.empty(); }
  void ConsumeOutbound(size_t n);

  // Feeds raw bytes read from the transport. Typed failures:
  //   kLinkReset — the TLS stream is corrupt; recoverable by resetting the
  //                channel and re-establishing (PR-2 semantics).
  //   kTampered  — hostile framing inside the protected stream; terminal.
  ciobase::Status Ingest(ciobase::ByteSpan bytes);

  // --- Recovery --------------------------------------------------------------

  // The transport under the channel died: drop the TLS session and every
  // in-flight byte, keep sequence numbers and the resend window.
  void ResetChannel();
  // Once Established() again, re-frame everything still in the window; the
  // peer's sequence numbers drop whatever was already delivered.
  ciobase::Status Replay();

  const Stats& stats() const { return stats_; }
  const ciotls::TlsSession* tls() const { return tls_.get(); }
  size_t resend_window_size() const { return resend_window_.size(); }
  uint64_t last_delivered_seq() const { return last_delivered_seq_; }

 private:
  ciobase::Status FrameAndQueue(uint64_t seq, ciobase::ByteSpan payload);
  void PushResendWindow(uint64_t seq, ciobase::ByteSpan payload);
  void PumpTls();  // moves pending TLS output into outbound_
  ciobase::Status ParseFrames();

  bool use_tls_;
  ciobase::Buffer psk_;
  size_t resend_cap_;
  bool started_once_ = false;

  std::unique_ptr<ciotls::TlsSession> tls_;
  ciobase::Buffer outbound_;  // protected bytes awaiting the transport
  ciobase::Buffer frame_rx_;  // length-framing reassembly buffer
  std::deque<ciobase::Buffer> inbox_;

  uint64_t next_send_seq_ = 1;       // our outbound sequence numbers
  uint64_t last_delivered_seq_ = 0;  // peer's highest delivered sequence
  // Sent-but-possibly-unacknowledged messages, oldest first, capped at
  // resend_cap_.
  std::deque<std::pair<uint64_t, ciobase::Buffer>> resend_window_;
  Stats stats_;
};

}  // namespace cio

#endif  // SRC_CIO_SESSION_H_
