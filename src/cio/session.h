// Session: the per-connection secure-channel state machine shared by the
// single-socket ConfidentialNode (src/cio/engine.*) and the multi-tenant
// ConfidentialServer (src/serve/*).
//
// One Session owns everything that belongs to exactly one peer relationship
// and survives transport re-establishment:
//
//   * the TLS session (PSK handshake, record protection),
//   * the [len u32][seq u64][payload] message framing on the protected
//     byte stream,
//   * exactly-once delivery accounting (duplicate drop, loss counting),
//   * the resend window replayed after a link reset + TLS restart,
//   * the in-band control plane (sequence-zero frames) used for
//     attestation admission and migration redirects, and
//   * the rekey policy that ratchets the TLS traffic secrets forward after
//     a configurable number of records or bytes.
//
// It is deliberately byte-oriented and transport-agnostic: the owner moves
// bytes between outbound() and whatever socket plumbing the stack profile
// provides, and feeds received bytes to Ingest(). That keeps one
// implementation of the PR-2 recovery machinery for both the client engine
// and every server connection — no copy-paste between engine.cc and
// src/serve/.
//
// Migration: SerializeState() captures the durable half of the session
// (sequence numbers, resend window, undelivered inbox, stats, PSK) in a
// versioned little-endian layout; Restore() rebuilds a Session on another
// instance. Live traffic keys are intentionally NOT serialized — the
// resumed session performs a fresh handshake from the attestation-bound
// PSK, so a stolen blob never contains usable record keys and migration
// gets forward secrecy for free. The blob itself must travel under seal
// with rollback protection (see cioserve::SessionVault).

#ifndef SRC_CIO_SESSION_H_
#define SRC_CIO_SESSION_H_

#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "src/base/bytes.h"
#include "src/base/status.h"
#include "src/tls/session.h"

namespace cioprof {
class ProfRegistry;
}  // namespace cioprof

namespace cio {

// Destination for scatter-gather sends: hands out writable spans of the
// registered slot pool so Session::SendInto can seal records in place, with
// no intermediate contiguous staging buffer. NextSpan(min_bytes) returns the
// remaining room of the current segment, advancing to a fresh one when less
// than `min_bytes` remain (empty span == sink exhausted); Commit(n) marks
// the first n bytes of the last NextSpan() result as written.
class SegmentSink {
 public:
  virtual ~SegmentSink() = default;
  virtual ciobase::MutableByteSpan NextSpan(size_t min_bytes) = 0;
  virtual void Commit(size_t n) = 0;
};

// Control-plane message types carried as sequence-zero frames inside the
// protected stream. Control frames never enter the resend window and never
// touch the dedup state: challenges and redirects are bound to one
// transport incarnation and must not replay across reattach.
enum class CtrlType : uint8_t {
  kAttestChallenge = 1,  // server -> client: fresh nonce to bind a report to
  kAttestReport = 2,     // client -> server: serialized AttestationReport
  kAdmitted = 3,         // server -> client: admission complete
  kDenied = 4,           // server -> client: typed admission rejection
  kRedirect = 5,         // server -> client: resume at {ip u32, port u16}
};

struct ControlMessage {
  uint8_t type = 0;
  ciobase::Buffer body;
};

// Send-side rekey thresholds; 0 disables that trigger. Either peer rekeys
// its own sending direction (TLS KeyUpdate) once a threshold trips.
struct RekeyPolicy {
  uint64_t after_records = 0;
  uint64_t after_bytes = 0;
  bool enabled() const { return after_records > 0 || after_bytes > 0; }
};

class Session {
 public:
  struct Stats {
    uint64_t messages_sent = 0;      // accepted by Send()
    uint64_t messages_received = 0;  // handed out by Receive()
    uint64_t messages_resent = 0;    // replayed from the resend window
    uint64_t messages_duplicate_dropped = 0;  // dedup'd by sequence number
    uint64_t messages_lost = 0;   // receive-side sequence gaps
    uint64_t tls_restarts = 0;    // Start() calls after the first
    uint64_t rekeys = 0;          // send-direction key updates we initiated
    uint64_t control_sent = 0;
    uint64_t control_received = 0;
  };

  // `resend_window_cap` == 0 disables the resend window (no recovery).
  Session(bool use_tls, ciobase::Buffer psk, size_t resend_window_cap,
          RekeyPolicy rekey = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // (Re)creates the secure channel over a fresh byte stream. The first call
  // is the initial establishment; later calls (after ResetChannel) count as
  // TLS restarts.
  void Start(ciotls::TlsRole role, uint64_t seed);

  // Channel ready for application messages (TLS established, or always for
  // plaintext ablations once Start ran).
  bool Established() const;
  // The TLS state machine failed (forged/garbled stream): the channel must
  // be reset and re-established, or the connection declared dead.
  bool TlsFailed() const { return tls_ != nullptr && tls_->failed(); }

  // --- Application messages --------------------------------------------------

  static constexpr size_t kMaxMessageBytes = (1u << 24) - 8;

  // Frames, protects, and queues one message; records it in the resend
  // window. kFailedPrecondition when the channel is not Established().
  ciobase::Status Send(ciobase::ByteSpan payload);
  // Like Send(), but seals the framed message directly into `sink` segments
  // (record-per-fragment, packed back to back) instead of outbound_ — the
  // zero-staging path of the async L5 datapath. Wire format is identical to
  // Send(): the peer's record reader reassembles across any segmentation.
  // Returns kResourceExhausted (before consuming a sequence number) when the
  // sink can't fit even the frame header, so the caller can fall back to the
  // outbound_ path; once sealing starts the message is committed to the
  // resend window and any mid-message exhaustion is kInternal (recovery
  // re-delivers from the window).
  ciobase::Status SendInto(ciobase::ByteSpan payload, SegmentSink& sink);
  // Next reassembled inbound message, kUnavailable when none.
  ciobase::Result<ciobase::Buffer> Receive();
  bool HasInbound() const { return !inbox_.empty(); }

  // --- Control plane ---------------------------------------------------------

  // Queues a sequence-zero control frame ([type u8][body]) on the protected
  // stream. Not resend-window tracked: control is per-transport-incarnation.
  ciobase::Status SendControl(CtrlType type, ciobase::ByteSpan body);
  bool HasControl() const { return !control_inbox_.empty(); }
  std::optional<ControlMessage> PollControl();

  // --- Rekeying --------------------------------------------------------------

  // Forces a send-direction key update now (no-op for plaintext ablations or
  // before establishment). Automatic rekeys fire from Send/SendInto once the
  // policy thresholds trip; the KeyUpdate record is queued *behind* the
  // message that tripped it, so record order under the old key is preserved.
  void Rekey();
  const RekeyPolicy& rekey_policy() const { return rekey_; }
  void set_rekey_policy(RekeyPolicy policy) { rekey_ = policy; }
  // Ratchet generations of the live TLS session (0 when none).
  uint32_t send_generation() const {
    return tls_ != nullptr ? tls_->send_generation() : 0;
  }
  uint32_t recv_generation() const {
    return tls_ != nullptr ? tls_->recv_generation() : 0;
  }

  // --- Byte plumbing ---------------------------------------------------------

  // Bytes awaiting the transport (handshake flights, protected records).
  const ciobase::Buffer& outbound() const { return outbound_; }
  bool HasOutbound() const { return !outbound_.empty(); }
  void ConsumeOutbound(size_t n);

  // Feeds raw bytes read from the transport. Typed failures:
  //   kLinkReset — the TLS stream is corrupt; recoverable by resetting the
  //                channel and re-establishing (PR-2 semantics).
  //   kTampered  — hostile framing inside the protected stream; terminal.
  ciobase::Status Ingest(ciobase::ByteSpan bytes);

  // --- Recovery --------------------------------------------------------------

  // The transport under the channel died: drop the TLS session and every
  // in-flight byte, keep sequence numbers and the resend window.
  void ResetChannel();
  // Once Established() again, re-frame everything still in the window; the
  // peer's sequence numbers drop whatever was already delivered.
  ciobase::Status Replay();

  // --- Migration -------------------------------------------------------------

  // Serializes the durable session state (see file comment for what travels
  // and what deliberately does not). Callers park the session first
  // (ResetChannel) so no half-written channel bytes are in play.
  ciobase::Buffer SerializeState() const;
  // Rebuilds a Session from SerializeState() output. Strictly bounds-checked;
  // any structural violation is kTampered (the blob crossed the host).
  static ciobase::Result<std::unique_ptr<Session>> Restore(
      ciobase::ByteSpan blob, RekeyPolicy rekey = {});

  // Resets ALL state (sequence numbers, window, stats, channel) so the
  // object can serve a brand-new peer relationship — churn-style reuse.
  void Forget();

  // In-sim profiler for the owning node ("session.seal"/"session.open"
  // probes); null = disabled. Survives Start()/ResetChannel()/Forget().
  void set_profiler(cioprof::ProfRegistry* profiler) { prof_ = profiler; }
  cioprof::ProfRegistry* profiler() const { return prof_; }

  const Stats& stats() const { return stats_; }
  const ciotls::TlsSession* tls() const { return tls_.get(); }
  size_t resend_window_size() const { return resend_window_.size(); }
  uint64_t last_delivered_seq() const { return last_delivered_seq_; }
  uint64_t next_send_seq() const { return next_send_seq_; }

 private:
  ciobase::Status FrameAndQueue(uint64_t seq, ciobase::ByteSpan payload);
  void PushResendWindow(uint64_t seq, ciobase::ByteSpan payload);
  void PumpTls();  // moves pending TLS output into outbound_
  ciobase::Status ParseFrames();
  // Accounts one sealed application message against the rekey policy and
  // triggers Rekey() once a threshold trips. Called AFTER the message is
  // framed so the KeyUpdate lands behind it in the stream.
  void NoteSealed(size_t payload_bytes);

  bool use_tls_;
  ciobase::Buffer psk_;
  size_t resend_cap_;
  RekeyPolicy rekey_;
  bool started_once_ = false;

  std::unique_ptr<ciotls::TlsSession> tls_;
  ciobase::Buffer outbound_;  // protected bytes awaiting the transport
  ciobase::Buffer frame_rx_;  // length-framing reassembly buffer
  std::deque<ciobase::Buffer> inbox_;
  std::deque<ControlMessage> control_inbox_;

  uint64_t next_send_seq_ = 1;       // our outbound sequence numbers
  uint64_t last_delivered_seq_ = 0;  // peer's highest delivered sequence
  // Sent-but-possibly-unacknowledged messages, oldest first, capped at
  // resend_cap_.
  std::deque<std::pair<uint64_t, ciobase::Buffer>> resend_window_;
  uint64_t records_since_rekey_ = 0;
  uint64_t bytes_since_rekey_ = 0;
  cioprof::ProfRegistry* prof_ = nullptr;
  Stats stats_;
};

}  // namespace cio

#endif  // SRC_CIO_SESSION_H_
