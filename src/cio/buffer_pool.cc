#include "src/cio/buffer_pool.h"

#include <cassert>

namespace cio {

void BufferPool::Init(ciobase::MutableByteSpan region, uint32_t slots,
                      uint32_t slot_size) {
  assert(region.size() >= static_cast<size_t>(slots) * slot_size);
  region_ = region;
  slots_ = slots;
  slot_size_ = slot_size;
  free_.clear();
  free_.reserve(slots);
  // LIFO order, highest index first, so Acquire hands out slot 0 first —
  // deterministic layouts make the hostile-CQE tests reproducible.
  for (uint32_t i = slots; i > 0; --i) {
    free_.push_back(static_cast<uint16_t>(i - 1));
  }
  acquired_.assign(slots, 0);
}

std::optional<uint16_t> BufferPool::Acquire() {
  if (free_.empty()) {
    return std::nullopt;
  }
  uint16_t slot = free_.back();
  free_.pop_back();
  acquired_[slot] = 1;
  return slot;
}

void BufferPool::Release(uint16_t slot) {
  if (slot >= slots_ || acquired_[slot] == 0) {
    return;  // stale or duplicated index: ignore, never corrupt the list
  }
  acquired_[slot] = 0;
  free_.push_back(slot);
}

ciobase::MutableByteSpan BufferPool::SlotSpan(uint16_t slot) {
  uint32_t index = slot % slots_;  // masked, not checked
  return region_.subspan(static_cast<size_t>(index) * slot_size_, slot_size_);
}

}  // namespace cio
