#include "src/cio/engine.h"

#include <algorithm>
#include <cassert>

#include "src/base/log.h"
#include "src/prof/profiler.h"
#include "src/tee/attestation.h"

namespace cio {

namespace {

// Wraps the syscall profile's host-side port: the host kernel runs this TCP
// stack itself, so on top of the syscall metadata it also sees every frame
// (a syscall-level design leaks a superset of what a network observer gets).
class ObservedPort final : public cionet::FramePort {
 public:
  ObservedPort(std::unique_ptr<cionet::DirectFabricPort> inner,
               ciohost::ObservabilityLog* observability,
               ciobase::SimClock* clock)
      : inner_(std::move(inner)),
        observability_(observability),
        clock_(clock) {}

  ciobase::Result<size_t> SendFrames(
      std::span<const ciobase::ByteSpan> frames) override {
    auto sent = inner_->SendFrames(frames);
    if (sent.ok()) {
      for (size_t i = 0; i < *sent; ++i) {
        observability_->Record(ciohost::ObsCategory::kPacketLength,
                               frames[i].size(), "host-stack tx");
        observability_->Record(ciohost::ObsCategory::kPacketTiming,
                               clock_->now_ns(), "host-stack tx");
      }
    }
    return sent;
  }
  ciobase::Result<size_t> ReceiveFrames(cionet::FrameBatch& batch,
                                        size_t max_frames) override {
    auto got = inner_->ReceiveFrames(batch, max_frames);
    if (got.ok()) {
      for (size_t i = 0; i < *got; ++i) {
        observability_->Record(ciohost::ObsCategory::kPacketLength,
                               batch[i].size(), "host-stack rx");
        observability_->Record(ciohost::ObsCategory::kPacketTiming,
                               clock_->now_ns(), "host-stack rx");
      }
    }
    return got;
  }
  cionet::MacAddress mac() const override { return inner_->mac(); }
  uint16_t mtu() const override { return inner_->mtu(); }

 private:
  std::unique_ptr<cionet::DirectFabricPort> inner_;
  ciohost::ObservabilityLog* observability_;
  ciobase::SimClock* clock_;
};

}  // namespace

// --- Byte-stream plumbing ------------------------------------------------------

// Syscall-level I/O (Graphene/SCONE style): the socket lives in the HOST
// network stack; every data-carrying operation is a host exit with a
// boundary copy, and its type, arguments, and exact size are host-visible.
struct ConfidentialNode::SyscallOps final : SocketLayer {
  ConfidentialNode* node;
  explicit SyscallOps(ConfidentialNode* n) : node(n) {}

  void RecordCall(const char* name, uint64_t arg) {
    node->observability_.Record(ciohost::ObsCategory::kCallType, 0, name);
    node->observability_.Record(ciohost::ObsCategory::kCallArgs, arg, name);
  }

  ciobase::Result<cionet::SocketId> Connect(cionet::Ipv4Address ip,
                                            uint16_t port) override {
    node->costs_.ChargeHostExit();
    RecordCall("connect", (static_cast<uint64_t>(ip.value) << 16) | port);
    return node->host_stack_->TcpConnect(ip, port);
  }
  ciobase::Result<cionet::SocketId> Listen(uint16_t port) override {
    node->costs_.ChargeHostExit();
    RecordCall("listen", port);
    return node->host_stack_->TcpListen(port);
  }
  ciobase::Result<cionet::SocketId> Accept(cionet::SocketId id) override {
    auto result = node->host_stack_->TcpAccept(id);
    if (result.ok()) {
      // The accept timing itself is a host-visible event [3].
      node->costs_.ChargeHostExit();
      RecordCall("accept", node->clock_->now_ns());
    }
    return result;
  }
  ciobase::Result<cionet::TcpState> State(cionet::SocketId id) override {
    return node->host_stack_->GetTcpState(id);
  }
  ciobase::Status Close(cionet::SocketId id) override {
    node->costs_.ChargeHostExit();
    RecordCall("close", id.value);
    return node->host_stack_->TcpClose(id);
  }
  ciobase::Status Abort(cionet::SocketId id) override {
    node->costs_.ChargeHostExit();
    RecordCall("abort", id.value);
    return node->host_stack_->TcpAbort(id);
  }
  ciobase::Result<size_t> SendBytes(cionet::SocketId id,
                                    ciobase::ByteSpan data) override {
    node->costs_.ChargeHostExit();
    node->costs_.ChargeCopy(data.size());  // guest -> host buffer
    node->observability_.Record(ciohost::ObsCategory::kCallType, 1, "send");
    node->observability_.Record(ciohost::ObsCategory::kMessageBoundary,
                                data.size(), "send size");
    if (!node->config_.use_tls && !data.empty()) {
      node->observability_.Record(ciohost::ObsCategory::kPayload,
                                  data.size(), "plaintext visible to host");
    }
    return node->host_stack_->TcpSend(id, data);
  }
  ciobase::Result<size_t> ReceiveBytes(cionet::SocketId id, size_t max,
                                       ciobase::Buffer& out) override {
    out.resize(max);
    auto got = node->host_stack_->TcpReceive(id, out);
    if (!got.ok()) {
      out.clear();
      return got.status();
    }
    if (*got > 0) {
      node->costs_.ChargeHostExit();
      node->costs_.ChargeCopy(*got);  // host buffer -> guest
      node->observability_.Record(ciohost::ObsCategory::kCallType, 2, "recv");
      node->observability_.Record(ciohost::ObsCategory::kMessageBoundary,
                                  *got, "recv size");
      if (!node->config_.use_tls) {
        node->observability_.Record(ciohost::ObsCategory::kPayload, *got,
                                    "plaintext visible to host");
      }
    }
    out.resize(*got);
    return *got;
  }
  ciobase::Result<size_t> AcceptPending(cionet::SocketId id) override {
    return node->host_stack_->TcpAcceptPending(id);
  }
  ciobase::Result<bool> Readable(cionet::SocketId id) override {
    return node->host_stack_->TcpReadable(id);
  }
  ciobase::Result<size_t> SendSpace(cionet::SocketId id) override {
    return node->host_stack_->TcpSendSpace(id);
  }
  ciobase::Result<cionet::Ipv4Address> Peer(cionet::SocketId id) override {
    return node->host_stack_->GetTcpPeer(id);
  }
  ciobase::Status Poll() override { return node->host_stack_->Poll(); }
};

// Guest-owned stack over some FramePort (passthrough / hardened virtio):
// a single trust domain containing app + TLS + stack + driver.
struct ConfidentialNode::GuestStackOps final : SocketLayer {
  ConfidentialNode* node;
  explicit GuestStackOps(ConfidentialNode* n) : node(n) {}

  ciobase::Result<cionet::SocketId> Connect(cionet::Ipv4Address ip,
                                            uint16_t port) override {
    return node->guest_stack_->TcpConnect(ip, port);
  }
  ciobase::Result<cionet::SocketId> Listen(uint16_t port) override {
    return node->guest_stack_->TcpListen(port);
  }
  ciobase::Result<cionet::SocketId> Accept(cionet::SocketId id) override {
    return node->guest_stack_->TcpAccept(id);
  }
  ciobase::Result<cionet::TcpState> State(cionet::SocketId id) override {
    return node->guest_stack_->GetTcpState(id);
  }
  ciobase::Status Close(cionet::SocketId id) override {
    return node->guest_stack_->TcpClose(id);
  }
  ciobase::Status Abort(cionet::SocketId id) override {
    return node->guest_stack_->TcpAbort(id);
  }
  ciobase::Result<size_t> SendBytes(cionet::SocketId id,
                                    ciobase::ByteSpan data) override {
    return node->guest_stack_->TcpSend(id, data);
  }
  ciobase::Result<size_t> ReceiveBytes(cionet::SocketId id, size_t max,
                                       ciobase::Buffer& out) override {
    out.resize(max);
    auto got = node->guest_stack_->TcpReceive(id, out);
    if (!got.ok()) {
      out.clear();
      return got.status();
    }
    out.resize(*got);
    return *got;
  }
  ciobase::Result<size_t> AcceptPending(cionet::SocketId id) override {
    return node->guest_stack_->TcpAcceptPending(id);
  }
  ciobase::Result<bool> Readable(cionet::SocketId id) override {
    return node->guest_stack_->TcpReadable(id);
  }
  ciobase::Result<size_t> SendSpace(cionet::SocketId id) override {
    return node->guest_stack_->TcpSendSpace(id);
  }
  ciobase::Result<cionet::Ipv4Address> Peer(cionet::SocketId id) override {
    return node->guest_stack_->GetTcpPeer(id);
  }
  void PollDevice() {
    if (node->virtio_device_ != nullptr) {
      node->virtio_device_->Poll();
    }
    if (node->virtio_device2_ != nullptr) {
      node->virtio_device2_->Poll();
    }
    if (node->dda_device_ != nullptr) {
      node->dda_device_->Poll();
    }
  }
  ciobase::Status Poll() override {
    // Device before AND after the stack: the host backend runs concurrently
    // with the guest in reality, so frames the stack emits this round must
    // not be stranded in the ring until the next simulation round.
    PollDevice();
    ciobase::Status link = node->guest_stack_->Poll();
    PollDevice();
    return link;
  }
};

// Dual-boundary: the stack lives in the I/O compartment; all socket calls
// cross the L5 channel.
struct ConfidentialNode::DualBoundaryOps final : SocketLayer {
  ConfidentialNode* node;
  explicit DualBoundaryOps(ConfidentialNode* n) : node(n) {}

  ciobase::Result<cionet::SocketId> Connect(cionet::Ipv4Address ip,
                                            uint16_t port) override {
    return node->l5_->Connect(ip, port);
  }
  ciobase::Result<cionet::SocketId> Listen(uint16_t port) override {
    return node->l5_->Listen(port);
  }
  ciobase::Result<cionet::SocketId> Accept(cionet::SocketId id) override {
    return node->l5_->Accept(id);
  }
  ciobase::Result<cionet::TcpState> State(cionet::SocketId id) override {
    return node->l5_->State(id);
  }
  ciobase::Status Close(cionet::SocketId id) override {
    return node->l5_->Close(id);
  }
  ciobase::Status Abort(cionet::SocketId id) override {
    return node->l5_->Abort(id);
  }
  ciobase::Result<size_t> SendBytes(cionet::SocketId id,
                                    ciobase::ByteSpan data) override {
    return node->l5_->SendOne(id, data);
  }
  ciobase::Result<size_t> ReceiveBytes(cionet::SocketId id, size_t max,
                                       ciobase::Buffer& out) override {
    return node->l5_->ReceiveOne(id, max, out);
  }
  ciobase::Result<size_t> AcceptPending(cionet::SocketId id) override {
    return node->l5_->AcceptPending(id);
  }
  ciobase::Result<bool> Readable(cionet::SocketId id) override {
    return node->l5_->Readable(id);
  }
  ciobase::Result<size_t> SendSpace(cionet::SocketId id) override {
    return node->l5_->SendSpace(id);
  }
  ciobase::Result<cionet::Ipv4Address> Peer(cionet::SocketId id) override {
    return node->l5_->Peer(id);
  }
  ciobase::Status Poll() override {
    node->l2_device_->Poll();
    ciobase::Status link = node->l5_->Poll();
    node->l2_device_->Poll();  // see GuestStackOps::Poll
    return link;
  }
};

// --- ConfidentialNode ------------------------------------------------------------

ConfidentialNode::ConfidentialNode(cionet::Fabric* fabric,
                                   ciobase::SimClock* clock,
                                   StackConfig config)
    : config_(std::move(config)),
      ip_(cionet::Ipv4Address::FromOctets(
          10, 0, 0, static_cast<uint8_t>(config_.node_id))),
      clock_(clock),
      costs_(clock),
      adversary_(config_.seed ^ 0xadu),
      session_(config_.use_tls, config_.psk,
               config_.recovery.enabled ? config_.recovery.resend_window : 0,
               RekeyPolicy{config_.rekey_after_records,
                           config_.rekey_after_bytes}) {
  if (!config_.Valid()) {
    failed_ = true;
    return;
  }
  if (config_.profiler != nullptr) {
    // One registry profiles one node: bind it to this node's clock + cost
    // model so probes below (session, stacks, rings, drivers) all attribute
    // through the same counter snapshots.
    config_.profiler->Bind(clock, &costs_);
    costs_.set_profiler(config_.profiler);
    session_.set_profiler(config_.profiler);
  }
  cionet::MacAddress mac = cionet::MacAddress::FromId(config_.node_id);
  std::string name = "node-" + std::to_string(config_.node_id);
  cionet::NetStack::Config stack_config;
  stack_config.ip = ip_;
  stack_config.seed = config_.seed;
  stack_config.tcp_tuning = config_.tcp_tuning;
  stack_config.tcp_accept_backlog = config_.accept_backlog;

  switch (config_.profile) {
    case StackProfile::kSyscallL5: {
      host_port_ = std::make_unique<ObservedPort>(
          std::make_unique<cionet::DirectFabricPort>(fabric, name, mac),
          &observability_, clock);
      host_stack_ = std::make_unique<cionet::NetStack>(host_port_.get(),
                                                       clock, stack_config);
      ops_ = std::make_unique<SyscallOps>(this);
      break;
    }
    case StackProfile::kPassthroughL2:
    case StackProfile::kHardenedVirtio:
    case StackProfile::kTunneledL2: {
      auto layout = ciovirtio::VirtioNetLayout::Make(128, 2048, 256);
      shared_ = std::make_unique<ciotee::SharedRegion>(
          &memory_, layout.TotalSize(), name + "-virtio");
      virtio_device_ = std::make_unique<ciovirtio::VirtioNetDevice>(
          shared_.get(), layout, fabric, name, mac, 1500,
          ciovirtio::kFeatureMac | ciovirtio::kFeatureMtu |
              ciovirtio::kFeatureCsum | ciovirtio::kFeatureVersion1 |
              ciovirtio::kFeatureIndirectDesc,
          &adversary_, &observability_, clock);
      ciovirtio::HardeningOptions hardening =
          config_.profile == StackProfile::kHardenedVirtio
              ? ciovirtio::HardeningOptions::Full()
              : ciovirtio::HardeningOptions::Passthrough();
      virtio_driver_ = std::make_unique<ciovirtio::VirtioNetDriver>(
          shared_.get(), layout, virtio_device_.get(), &costs_, hardening,
          &observability_, config_.recovery);
      if (!virtio_driver_->Negotiate().ok()) {
        failed_ = true;
        break;
      }
      if (config_.net_devices == 2) {
        // Second device: same MAC (the fabric spreads unicast round-robin
        // across the two endpoints), own region/rings/negotiation.
        auto layout2 = ciovirtio::VirtioNetLayout::Make(128, 2048, 256);
        shared2_ = std::make_unique<ciotee::SharedRegion>(
            &memory_, layout2.TotalSize(), name + "-virtio1");
        virtio_device2_ = std::make_unique<ciovirtio::VirtioNetDevice>(
            shared2_.get(), layout2, fabric, name + "-nic1", mac, 1500,
            ciovirtio::kFeatureMac | ciovirtio::kFeatureMtu |
                ciovirtio::kFeatureCsum | ciovirtio::kFeatureVersion1 |
                ciovirtio::kFeatureIndirectDesc,
            &adversary_, &observability_, clock);
        virtio_driver2_ = std::make_unique<ciovirtio::VirtioNetDriver>(
            shared2_.get(), layout2, virtio_device2_.get(), &costs_,
            hardening, &observability_, config_.recovery);
        if (!virtio_driver2_->Negotiate().ok()) {
          failed_ = true;
          break;
        }
        bond_port_ = std::make_unique<ciovirtio::BondPort>(
            virtio_driver_.get(), virtio_driver2_.get());
      }
      if (config_.profile == StackProfile::kTunneledL2) {
        // LightBox-style: the tunnel wraps the raw port; one endpoint of a
        // pair must be the initiator (odd node ids initiate).
        tunnel_port_ = std::make_unique<TunnelPort>(
            virtio_driver_.get(),
            ciobase::BufferFromString("tunnel-gateway-psk-32-bytes....."),
            config_.node_id % 2 == 1, &costs_);
        guest_stack_ = std::make_unique<cionet::NetStack>(tunnel_port_.get(),
                                                          clock,
                                                          stack_config);
      } else if (bond_port_ != nullptr) {
        guest_stack_ = std::make_unique<cionet::NetStack>(bond_port_.get(),
                                                          clock,
                                                          stack_config);
      } else {
        guest_stack_ = std::make_unique<cionet::NetStack>(
            virtio_driver_.get(), clock, stack_config);
      }
      ops_ = std::make_unique<GuestStackOps>(this);
      break;
    }
    case StackProfile::kDirectDevice: {
      // §3.4: SPDM-attested device with an IDE-protected link. The
      // provisioning secret stands in for the SPDM key exchange; it is
      // bound to the expected device measurement by the verifier check.
      static constexpr char kPlatformKey[] = "pcie-cert-chain-root";
      static constexpr char kProvisioning[] = "spdm-session-secret";
      DdaConfig dda_config;
      dda_config.mac = mac;
      DdaLayout layout(dda_config);
      shared_ = std::make_unique<ciotee::SharedRegion>(&memory_, layout.total,
                                                       name + "-dda");
      device_authority_ = std::make_unique<ciotee::AttestationAuthority>(
          ciobase::BufferFromString(kPlatformKey));
      dda_device_ = std::make_unique<DdaDevice>(
          shared_.get(), dda_config, fabric, name, device_authority_.get(),
          ciobase::BufferFromString(kProvisioning), &adversary_,
          &observability_, clock);
      dda_transport_ = std::make_unique<DdaTransport>(
          shared_.get(), dda_config, dda_device_.get(), &costs_,
          device_authority_.get(), config_.seed ^ 0x5bd);
      if (!dda_transport_->Attest(ciobase::BufferFromString(kProvisioning))
               .ok()) {
        failed_ = true;
        break;
      }
      guest_stack_ = std::make_unique<cionet::NetStack>(dda_transport_.get(),
                                                        clock, stack_config);
      ops_ = std::make_unique<GuestStackOps>(this);
      break;
    }
    case StackProfile::kDualBoundary: {
      L2Config l2_config;
      l2_config.mac = mac;
      l2_config.mtu = 1500;
      l2_config.ring_slots = 256;
      l2_config.slot_size = 2048;
      l2_config.positioning = config_.l2_positioning;
      l2_config.rx_ownership = config_.l2_rx_ownership;
      l2_config.polling = config_.l2_polling;
      L2Layout layout(l2_config);
      shared_ = std::make_unique<ciotee::SharedRegion>(&memory_, layout.total,
                                                       name + "-l2");
      l2_device_ = std::make_unique<L2HostDevice>(shared_.get(), l2_config,
                                                  fabric, name, &adversary_,
                                                  &observability_, clock);
      l2_transport_ = std::make_unique<L2Transport>(
          shared_.get(), l2_config, &costs_,
          l2_config.polling ? nullptr : l2_device_.get(), config_.recovery);
      l2_transport_->set_sealed_rx(config_.l2_sealed_rx);
      guest_stack_ = std::make_unique<cionet::NetStack>(l2_transport_.get(),
                                                        clock, stack_config);
      compartments_ = std::make_unique<ciotee::CompartmentManager>(&costs_);
      app_compartment_ = compartments_->Create("app", 4 << 20);
      io_compartment_ = compartments_->Create("io-stack", 4 << 20);
      // Single distrust: the app may reach into the I/O heap; the I/O
      // stack gets NO grant into app memory (ternary model, §3.1).
      compartments_->GrantAccess(app_compartment_, io_compartment_);
      l5_ = std::make_unique<L5Channel>(
          compartments_.get(), app_compartment_, io_compartment_,
          guest_stack_.get(), &costs_, config_.l5_receive,
          config_.l5_boundary, config_.l5_queue);
      ops_ = std::make_unique<DualBoundaryOps>(this);
      break;
    }
  }
  if (config_.profiler != nullptr) {
    if (guest_stack_ != nullptr) guest_stack_->set_profiler(config_.profiler);
    if (host_stack_ != nullptr) host_stack_->set_profiler(config_.profiler);
  }
  if (config_.enable_vsock && !failed_) {
    // Independent shared region: vsock traffic never rides the net fabric,
    // so it attaches beside whatever transport the profile chose.
    auto vsock_layout = ciovirtio::VsockLayout::Make(64, 2048, 128);
    uint64_t guest_cid = ciovirtio::kVsockGuestCidBase + config_.node_id;
    vsock_shared_ = std::make_unique<ciotee::SharedRegion>(
        &memory_, vsock_layout.TotalSize(), name + "-vsock");
    vsock_device_ = std::make_unique<ciovirtio::VirtioVsockDevice>(
        vsock_shared_.get(), vsock_layout, guest_cid, &adversary_,
        &observability_, clock);
    vsock_driver_ = std::make_unique<ciovirtio::VirtioVsockDriver>(
        vsock_shared_.get(), vsock_layout, vsock_device_.get(), &costs_,
        guest_cid, &observability_);
    if (!vsock_driver_->Negotiate().ok()) {
      failed_ = true;
    }
  }
}

ConfidentialNode::~ConfidentialNode() = default;

ciobase::Status ConfidentialNode::Listen(uint16_t port) {
  if (failed_ || ops_ == nullptr) {
    return ciobase::FailedPrecondition("node failed to initialize");
  }
  auto listener = ops_->Listen(port);
  if (!listener.ok()) {
    return listener.status();
  }
  listener_ = *listener;
  listening_ = true;
  listen_port_ = port;
  return ciobase::OkStatus();
}

ciobase::Status ConfidentialNode::Connect(cionet::Ipv4Address peer,
                                          uint16_t port) {
  if (failed_ || ops_ == nullptr) {
    return ciobase::FailedPrecondition("node failed to initialize");
  }
  auto socket = ops_->Connect(peer, port);
  if (!socket.ok()) {
    return socket.status();
  }
  socket_ = *socket;
  have_socket_ = true;
  is_client_ = true;
  peer_ip_ = peer;
  peer_port_ = port;
  session_.Start(ciotls::TlsRole::kClient, config_.seed);
  return ciobase::OkStatus();
}

ciobase::Status ConfidentialNode::Disconnect() {
  if (failed_ || ops_ == nullptr) {
    return ciobase::FailedPrecondition("node failed to initialize");
  }
  if (have_socket_) {
    // Orderly FIN first (buffered data flushes), then release every pool
    // slot / held CQE / armed counter the socket still pins — the churn
    // loop must return the node to exact pool-accounting zero.
    (void)ops_->Close(socket_);
    if (l5_ != nullptr) {
      l5_->CancelSocket(socket_);
    }
  }
  have_socket_ = false;
  connected_transport_ = false;
  is_client_ = false;
  admitted_ = false;
  reconnect_pending_ = false;
  resend_pending_ = false;
  reconnect_attempts_ = 0;
  reconnect_backoff_ns_ = 0;
  RetireSessionStats();
  session_.Forget();
  ++sessions_retired_;
  return ciobase::OkStatus();
}

void ConfidentialNode::RetireSessionStats() {
  const Session::Stats& s = session_.stats();
  retired_.sent += s.messages_sent;
  retired_.received += s.messages_received;
  retired_.resent += s.messages_resent;
  retired_.dups += s.messages_duplicate_dropped;
  retired_.lost += s.messages_lost;
  retired_.tls_restarts += s.tls_restarts;
  retired_.rekeys += s.rekeys;
}

bool ConfidentialNode::Ready() const {
  if (failed_ || !have_socket_ || !connected_transport_) {
    return false;
  }
  return session_.Established();
}

bool ConfidentialNode::Failed() const {
  // With recovery enabled a dead TLS session is a fault in flight, not a
  // terminal state — Poll() tears it down and re-establishes.
  return failed_ || (!config_.recovery.enabled && session_.TlsFailed());
}

void ConfidentialNode::PumpBytes() {
  if (!have_socket_) {
    return;
  }
  CIO_PROF_SCOPE(costs_.profiler(), "engine.pump");
  // Flush pending protected bytes into the transport, as far as it allows.
  while (session_.HasOutbound()) {
    auto sent = ops_->SendBytes(socket_, session_.outbound());
    if (!sent.ok() || *sent == 0) {
      break;
    }
    session_.ConsumeOutbound(*sent);
  }
  // Drain inbound bytes into the reusable scratch chunk: the steady-state
  // receive path allocates nothing per round.
  for (;;) {
    auto got = ops_->ReceiveBytes(socket_, 16384, rx_scratch_);
    if (!got.ok()) {
      if (got.status().code() == ciobase::StatusCode::kFailedPrecondition) {
        break;  // orderly EOF: the peer closed on purpose — not a fault
      }
      BeginRecovery(got.status().message().c_str());
      break;
    }
    if (*got == 0) {
      break;
    }
    ciobase::Status ingested = session_.Ingest(rx_scratch_);
    if (!ingested.ok()) {
      if (ingested.code() == ciobase::StatusCode::kTampered) {
        failed_ = true;  // hostile framing inside the protected stream
      } else {
        BeginRecovery(ingested.message().c_str());
      }
      break;
    }
  }
  // A handshake reply flight produced while ingesting leaves this round.
  while (have_socket_ && session_.HasOutbound()) {
    auto sent = ops_->SendBytes(socket_, session_.outbound());
    if (!sent.ok() || *sent == 0) {
      break;
    }
    session_.ConsumeOutbound(*sent);
  }
}

void ConfidentialNode::BeginRecovery(const char* reason) {
  if (!config_.recovery.enabled) {
    failed_ = true;
    return;
  }
  CIO_LOG(kDebug) << "link recovery (" << reason << ")";
  ++recovery_stats_.link_errors;
  recovery_stats_.last_fault_ns = clock_->now_ns();
  if (have_socket_) {
    (void)ops_->Abort(socket_);
  }
  have_socket_ = false;
  connected_transport_ = false;
  session_.ResetChannel();
  if (l5_ != nullptr) {
    // Ring epoch reset: everything still queued in the SQ/CQ is abandoned
    // (its payloads live in the resend window) and any completions the old
    // generation still posts reap as stale instead of as tampering.
    l5_->AbandonInFlight();
  }
  reconnect_pending_ = true;
  resend_pending_ = true;
  if (reconnect_backoff_ns_ == 0) {
    reconnect_backoff_ns_ = config_.recovery.backoff_initial_ns;
  }
  next_reconnect_ns_ = clock_->now_ns() + reconnect_backoff_ns_;
}

void ConfidentialNode::PollRecovery() {
  if (!config_.recovery.enabled || failed_) {
    return;
  }
  uint64_t now = clock_->now_ns();
  // Client side: re-establish TCP + TLS with capped exponential backoff.
  // (The server keeps listening; Poll()'s accept branch re-arms it.)
  if (reconnect_pending_ && is_client_ && !have_socket_ &&
      now >= next_reconnect_ns_) {
    if (reconnect_attempts_ >= config_.recovery.max_reconnects) {
      failed_ = true;  // the host never let a connection live again
      return;
    }
    ++reconnect_attempts_;
    ++recovery_stats_.reconnects;
    auto socket = ops_->Connect(peer_ip_, peer_port_);
    if (socket.ok()) {
      socket_ = *socket;
      have_socket_ = true;
      session_.Start(ciotls::TlsRole::kClient, config_.seed);
    }
    // If this attempt dies too, the next one waits twice as long (capped).
    reconnect_backoff_ns_ = std::min(reconnect_backoff_ns_ * 2,
                                     config_.recovery.backoff_cap_ns);
    next_reconnect_ns_ = now + reconnect_backoff_ns_;
  }
  // Both sides: once the channel is back, replay the resend window. The
  // receiver's sequence numbers drop whatever was already delivered.
  if (resend_pending_ && Ready()) {
    resend_pending_ = false;
    reconnect_pending_ = false;
    reconnect_attempts_ = 0;
    reconnect_backoff_ns_ = 0;
    recovery_stats_.last_recovery_ns = now;
    (void)session_.Replay();
    PumpBytes();
  }
}

void ConfidentialNode::PollControlPlane() {
  while (session_.HasControl()) {
    auto msg = session_.PollControl();
    if (!msg.has_value()) {
      break;
    }
    switch (static_cast<CtrlType>(msg->type)) {
      case CtrlType::kAttestChallenge: {
        // Bind the report to this connection: nonce = H(challenge ||
        // transcript), so a report lifted from another connection or signed
        // over an old challenge fails verification. A node without a
        // platform key answers with an empty report and takes the typed
        // rejection.
        ciobase::Buffer report_bytes;
        if (!config_.attestation_key.empty()) {
          ciocrypto::Sha256Digest transcript{};
          if (session_.tls() != nullptr) {
            transcript = session_.tls()->transcript_hash();
          }
          // Stale-probe hook: sign zeros instead of the fresh challenge,
          // modeling a replayed report.
          ciobase::Buffer challenge =
              config_.attest_stale_probe
                  ? ciobase::Buffer(msg->body.size(), 0)
                  : msg->body;
          ciotee::AttestationAuthority authority(config_.attestation_key);
          ciotee::AttestationReport report = authority.Issue(
              ciotee::Measure(config_.code_identity, {}),
              ciotee::BindNonce(challenge, transcript));
          report_bytes = report.Serialize();
        }
        (void)session_.SendControl(CtrlType::kAttestReport, report_bytes);
        PumpBytes();
        break;
      }
      case CtrlType::kAdmitted:
        admitted_ = true;
        break;
      case CtrlType::kDenied:
        // Terminal: reconnecting with the same credential would only burn
        // the recovery budget on guaranteed kUnauthenticated rejections.
        denied_ = true;
        failed_ = true;
        return;
      case CtrlType::kRedirect: {
        if (msg->body.size() != 6 || !is_client_ ||
            !config_.recovery.enabled) {
          break;
        }
        cionet::Ipv4Address target{ciobase::LoadLe32(msg->body.data())};
        uint16_t port = static_cast<uint16_t>(
            msg->body[4] | static_cast<uint16_t>(msg->body[5]) << 8);
        // The session migrated: drop the transport to the old instance and
        // reconnect to the new one immediately (directed move, no backoff).
        // The resend window + fresh handshake restore exactly-once there.
        ++migrations_;
        if (have_socket_) {
          (void)ops_->Abort(socket_);
        }
        have_socket_ = false;
        connected_transport_ = false;
        session_.ResetChannel();
        if (l5_ != nullptr) {
          l5_->AbandonInFlight();
        }
        admitted_ = false;
        peer_ip_ = target;
        peer_port_ = port;
        reconnect_pending_ = true;
        resend_pending_ = true;
        if (reconnect_backoff_ns_ == 0) {
          reconnect_backoff_ns_ = config_.recovery.backoff_initial_ns;
        }
        next_reconnect_ns_ = clock_->now_ns();
        return;  // ResetChannel dropped the rest of the control inbox
      }
      default:
        break;  // unknown control types are ignored, not faults
    }
  }
}

void ConfidentialNode::Poll() {
  if (ops_ == nullptr) {
    return;
  }
  CIO_PROF_SCOPE(costs_.profiler(), "engine.poll");
  if (vsock_device_ != nullptr) {
    vsock_device_->Poll();
  }
  ciobase::Status link = ops_->Poll();
  if (!link.ok() && link.code() == ciobase::StatusCode::kTimedOut) {
    // The transport's reset budget is exhausted: the host stopped the link
    // for good. Everything still in flight is lost.
    ++recovery_stats_.link_errors;
    recovery_stats_.last_fault_ns = clock_->now_ns();
    failed_ = true;
    return;
  }
  // (kLinkReset needs no action here: the transport already reattached its
  // ring and TCP retransmission replays the frames that died with it.)

  // Server: adopt the first pending connection.
  if (listening_ && !have_socket_) {
    auto accepted = ops_->Accept(listener_);
    if (accepted.ok()) {
      socket_ = *accepted;
      have_socket_ = true;
      connected_transport_ = true;
      session_.Start(ciotls::TlsRole::kServer, config_.seed + 1);
    }
  }
  // Client: detect transport establishment (or its death mid-handshake).
  if (have_socket_ && !connected_transport_) {
    auto state = ops_->State(socket_);
    if (state.ok() && *state == cionet::TcpState::kEstablished) {
      connected_transport_ = true;
    }
    if (state.ok() && *state == cionet::TcpState::kClosed) {
      BeginRecovery("transport closed before establishment");
    }
  }
  // A dead TLS session is a fault to recover from, not a terminal state.
  if (config_.recovery.enabled && session_.TlsFailed()) {
    BeginRecovery("tls session failed");
  }
  PumpBytes();
  {
    CIO_PROF_SCOPE(costs_.profiler(), "engine.ctrl");
    PollControlPlane();
  }
  {
    CIO_PROF_SCOPE(costs_.profiler(), "engine.recovery");
    PollRecovery();
  }
}

ciobase::Status ConfidentialNode::SendMessage(ciobase::ByteSpan message) {
  if (!Ready()) {
    return ciobase::FailedPrecondition("link not ready");
  }
  CIO_PROF_SCOPE(costs_.profiler(), "engine.send");
  // Async fast path: seal the framed message straight into registered pool
  // slots and queue one scatter-gather SQ entry — no staging copy, no
  // boundary crossing here. The next doorbell (this round's Poll, or right
  // now in latency mode) carries the whole batch. Requires an empty legacy
  // outbound queue so wire order equals submission order.
  if (l5_ != nullptr && l5_->queues_ready() && !session_.HasOutbound()) {
    L5Channel::MessageWriter writer;
    if (l5_->BeginMessage(socket_, message.size(), config_.use_tls, writer)) {
      ciobase::Status sealed = session_.SendInto(message, writer);
      if (sealed.ok()) {
        l5_->SubmitMessage(writer);
        if (config_.l5_latency_mode) {
          // Don't batch: ring the doorbell for this message alone.
          (void)ops_->Poll();
          PumpBytes();
        }
        return ciobase::OkStatus();
      }
      l5_->AbandonMessage(writer);
      if (sealed.code() != ciobase::StatusCode::kResourceExhausted) {
        return sealed;
      }
      // ResourceExhausted before any sealing: fall through to the
      // streaming path below.
    }
  }
  CIO_RETURN_IF_ERROR(session_.Send(message));
  PumpBytes();
  return ciobase::OkStatus();
}

ciobase::Result<ciobase::Buffer> ConfidentialNode::ReceiveMessage() {
  CIO_PROF_SCOPE(costs_.profiler(), "engine.reap");
  return session_.Receive();
}

ConfidentialNode::RecoveryStats ConfidentialNode::recovery_stats() const {
  RecoveryStats stats = recovery_stats_;
  const Session::Stats& session = session_.stats();
  stats.tls_restarts = session.tls_restarts + retired_.tls_restarts;
  stats.messages_resent = session.messages_resent + retired_.resent;
  stats.messages_duplicate_dropped =
      session.messages_duplicate_dropped + retired_.dups;
  stats.messages_lost = session.messages_lost + retired_.lost;
  return stats;
}

// --- LinkedPair ------------------------------------------------------------------

LinkedPair::LinkedPair(StackConfig client_config, StackConfig server_config,
                       cionet::Fabric::Options fabric_options) {
  fabric = std::make_unique<cionet::Fabric>(&clock, 4242, fabric_options);
  if (client_config.psk.empty()) {
    client_config.psk = ciobase::BufferFromString(
        "attestation-derived-link-key-0001");
  }
  if (server_config.psk.empty()) {
    server_config.psk = client_config.psk;
  }
  client = std::make_unique<ConfidentialNode>(fabric.get(), &clock,
                                              client_config);
  server = std::make_unique<ConfidentialNode>(fabric.get(), &clock,
                                              server_config);
}

void LinkedPair::Pump(uint64_t step_ns) {
  client->Poll();
  server->Poll();
  clock.Advance(step_ns);
}

bool LinkedPair::PumpUntil(const std::function<bool()>& done, int max_rounds,
                           uint64_t step_ns) {
  for (int i = 0; i < max_rounds; ++i) {
    Pump(step_ns);
    if (done()) {
      return true;
    }
  }
  return false;
}

bool LinkedPair::Establish(uint16_t port, int max_rounds) {
  if (!server->Listen(port).ok()) {
    return false;
  }
  if (!client->Connect(server->ip(), port).ok()) {
    return false;
  }
  return PumpUntil([&] { return client->Ready() && server->Ready(); },
                   max_rounds);
}

}  // namespace cio
