// Engine: assembles complete confidential-I/O stacks and exposes the public
// application API (ConfidentialNode).
//
// A ConfidentialNode is one confidential unit (enclave or CVM) attached to
// the simulated world. Its application-level API is message-oriented and
// always TLS-protected; what varies is everything below, selected by
// StackProfile — the four corners of the paper's design space (Figure 5):
//
//   kSyscallL5     Graphene/SCONE-style: I/O via host syscalls. Tiny guest
//                  TCB, but every call, argument, and message boundary is
//                  host-visible, and each operation pays a host exit.
//   kPassthroughL2 rkt-io/ShieldBox-style: the guest runs its own TCP/IP
//                  stack over an *unhardened* raw transport in a single
//                  trust domain. Fast, network-level observability only,
//                  but the whole stack (and its attack surface) sits in
//                  the app's TCB.
//   kHardenedVirtio Lift-and-shift CVM: guest stack over virtio with the
//                  full retrofit hardening (checks + SWIOTLB bounces).
//   kDualBoundary  This work (§3): guest stack in an isolated I/O
//                  compartment behind the hardened L2 transport, with the
//                  single-distrust L5 channel and mandatory TLS above.
//
// All profiles speak the same wire format end-to-end (Ethernet/IPv4/TCP +
// TLS records), so any two profiles can interoperate across the fabric.

#ifndef SRC_CIO_ENGINE_H_
#define SRC_CIO_ENGINE_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/base/clock.h"
#include "src/cio/dda.h"
#include "src/cio/l2_host_device.h"
#include "src/cio/l2_transport.h"
#include "src/cio/l5_channel.h"
#include "src/cio/tunnel_port.h"
#include "src/hostsim/adversary.h"
#include "src/hostsim/observability.h"
#include "src/net/fabric.h"
#include "src/net/stack.h"
#include "src/tee/compartment.h"
#include "src/tee/memory.h"
#include "src/tee/trust.h"
#include "src/tls/session.h"
#include "src/virtio/net_driver.h"

namespace cio {

enum class StackProfile {
  kSyscallL5 = 0,
  kPassthroughL2 = 1,
  kHardenedVirtio = 2,
  kDualBoundary = 3,
  // §3.4: direct device assignment with SPDM attestation + IDE link
  // protection; the stack stays in the app domain, the device joins the
  // TCB, and no interface hardening is needed.
  kDirectDevice = 4,
  // §2.4's tunneled approach (LightBox-style): every L2 frame padded to a
  // fixed size and sealed before the host sees it — minimal observability
  // (even packet-length entropy collapses), maximal TCB.
  kTunneledL2 = 5,
};
inline constexpr int kStackProfileCount = 6;

std::string_view StackProfileName(StackProfile profile);
std::vector<StackProfile> AllStackProfiles();

// The trust model each profile instantiates (§2.1/§3.1).
ciotee::TrustModel ProfileTrustModel(StackProfile profile);

struct NodeOptions {
  StackProfile profile = StackProfile::kDualBoundary;
  uint32_t node_id = 1;  // derives MAC 02:00:…:id and IP 10.0.0.id
  uint64_t seed = 1;
  ciobase::Buffer psk;   // attestation-bound pre-shared key
  bool use_tls = true;   // the design mandates TLS; ablations may disable

  // Dual-boundary knobs.
  L5ReceiveMode l5_receive = L5ReceiveMode::kCopy;
  L5BoundaryKind l5_boundary = L5BoundaryKind::kCompartment;
  DataPositioning l2_positioning = DataPositioning::kInline;
  ReceiveOwnership l2_rx_ownership = ReceiveOwnership::kCopy;
  bool l2_polling = true;
};

class ConfidentialNode {
 public:
  ConfidentialNode(cionet::Fabric* fabric, ciobase::SimClock* clock,
                   NodeOptions options);
  ~ConfidentialNode();

  ConfidentialNode(const ConfidentialNode&) = delete;
  ConfidentialNode& operator=(const ConfidentialNode&) = delete;

  // --- Connection lifecycle ---------------------------------------------------

  ciobase::Status Listen(uint16_t port);
  ciobase::Status Connect(cionet::Ipv4Address peer, uint16_t port);
  // Drives everything: host devices, guest stack, TLS pumping. Call in the
  // simulation loop.
  void Poll();
  // True once the transport is connected and (if enabled) TLS established.
  bool Ready() const;
  bool Failed() const;

  // --- Application data ---------------------------------------------------------

  ciobase::Status SendMessage(ciobase::ByteSpan message);
  ciobase::Result<ciobase::Buffer> ReceiveMessage();

  // --- Introspection (benchmarks, campaign) -----------------------------------

  cionet::Ipv4Address ip() const { return ip_; }
  StackProfile profile() const { return options_.profile; }
  ciobase::CostModel& costs() { return costs_; }
  ciohost::ObservabilityLog& observability() { return observability_; }
  ciohost::Adversary& adversary() { return adversary_; }
  ciotee::TeeMemory& memory() { return memory_; }
  ciotee::CompartmentManager* compartments() { return compartments_.get(); }
  L2Transport* l2_transport() { return l2_transport_.get(); }
  ciovirtio::VirtioNetDriver* virtio_driver() { return virtio_driver_.get(); }
  DdaTransport* dda_transport() { return dda_transport_.get(); }
  TunnelPort* tunnel_port() { return tunnel_port_.get(); }
  ciotee::SharedRegion* shared_region() { return shared_.get(); }
  const ciotls::TlsSession* tls() const { return tls_.get(); }
  // Application-level operations completed (messages in + out): the
  // denominator of the observability score.
  uint64_t app_ops() const { return messages_sent_ + messages_received_; }
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_received() const { return messages_received_; }

 private:
  struct SocketOps;       // profile-specific byte-stream plumbing
  struct SyscallOps;
  struct GuestStackOps;
  struct DualBoundaryOps;

  void PumpTls();
  void PumpBytes();

  NodeOptions options_;
  cionet::Ipv4Address ip_;
  ciobase::SimClock* clock_;
  ciobase::CostModel costs_;
  ciohost::ObservabilityLog observability_;
  ciohost::Adversary adversary_;
  ciotee::TeeMemory memory_;

  // Profile-dependent machinery (subset populated per profile).
  std::unique_ptr<ciotee::SharedRegion> shared_;
  std::unique_ptr<ciotee::CompartmentManager> compartments_;
  ciotee::CompartmentId app_compartment_{};
  ciotee::CompartmentId io_compartment_{};
  std::unique_ptr<ciovirtio::VirtioNetDevice> virtio_device_;
  std::unique_ptr<ciovirtio::VirtioNetDriver> virtio_driver_;
  std::unique_ptr<L2HostDevice> l2_device_;
  std::unique_ptr<L2Transport> l2_transport_;
  std::unique_ptr<TunnelPort> tunnel_port_;
  std::unique_ptr<ciotee::AttestationAuthority> device_authority_;
  std::unique_ptr<DdaDevice> dda_device_;
  std::unique_ptr<DdaTransport> dda_transport_;
  std::unique_ptr<cionet::NetStack> guest_stack_;
  std::unique_ptr<cionet::FramePort> host_port_;
  std::unique_ptr<cionet::NetStack> host_stack_;  // syscall profile
  std::unique_ptr<L5Channel> l5_;
  std::unique_ptr<SocketOps> ops_;

  std::unique_ptr<ciotls::TlsSession> tls_;
  bool listening_ = false;
  bool connected_transport_ = false;
  uint16_t listen_port_ = 0;
  cionet::SocketId listener_{};
  cionet::SocketId socket_{};
  bool have_socket_ = false;
  ciobase::Buffer tls_outbox_;  // TLS bytes awaiting transport capacity
  ciobase::Buffer rx_scratch_;  // reusable inbound chunk staging (PumpBytes)
  std::deque<ciobase::Buffer> plain_inbox_;   // no-TLS mode
  ciobase::Buffer plain_rx_;                  // no-TLS length framing
  bool failed_ = false;
  uint64_t messages_sent_ = 0;
  uint64_t messages_received_ = 0;
};

// Convenience for tests/benchmarks: two nodes on one fabric, pumped until
// ready or a round budget expires.
struct LinkedPair {
  ciobase::SimClock clock;
  std::unique_ptr<cionet::Fabric> fabric;
  std::unique_ptr<ConfidentialNode> client;
  std::unique_ptr<ConfidentialNode> server;

  LinkedPair(NodeOptions client_options, NodeOptions server_options,
             cionet::Fabric::Options fabric_options = {});

  // Establishes server listen + client connect + TLS. Returns success.
  bool Establish(uint16_t port = 443, int max_rounds = 20000);
  // One pump round for both sides, advancing simulated time.
  void Pump(uint64_t step_ns = 10'000);
  bool PumpUntil(const std::function<bool()>& done, int max_rounds = 20000,
                 uint64_t step_ns = 10'000);
};

}  // namespace cio

#endif  // SRC_CIO_ENGINE_H_
