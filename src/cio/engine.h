// Engine: assembles complete confidential-I/O stacks and exposes the public
// application API (ConfidentialNode).
//
// A ConfidentialNode is one confidential unit (enclave or CVM) attached to
// the simulated world. Its application-level API is message-oriented and
// always TLS-protected; what varies is everything below, selected by
// StackProfile — the four corners of the paper's design space (Figure 5):
//
//   kSyscallL5     Graphene/SCONE-style: I/O via host syscalls. Tiny guest
//                  TCB, but every call, argument, and message boundary is
//                  host-visible, and each operation pays a host exit.
//   kPassthroughL2 rkt-io/ShieldBox-style: the guest runs its own TCP/IP
//                  stack over an *unhardened* raw transport in a single
//                  trust domain. Fast, network-level observability only,
//                  but the whole stack (and its attack surface) sits in
//                  the app's TCB.
//   kHardenedVirtio Lift-and-shift CVM: guest stack over virtio with the
//                  full retrofit hardening (checks + SWIOTLB bounces).
//   kDualBoundary  This work (§3): guest stack in an isolated I/O
//                  compartment behind the hardened L2 transport, with the
//                  single-distrust L5 channel and mandatory TLS above.
//
// All profiles speak the same wire format end-to-end (Ethernet/IPv4/TCP +
// TLS records), so any two profiles can interoperate across the fabric.

#ifndef SRC_CIO_ENGINE_H_
#define SRC_CIO_ENGINE_H_

#include <functional>
#include <memory>
#include <string>

#include "src/base/clock.h"
#include "src/cio/dda.h"
#include "src/cio/l2_host_device.h"
#include "src/cio/l2_transport.h"
#include "src/cio/l5_channel.h"
#include "src/cio/session.h"
#include "src/cio/tunnel_port.h"
#include "src/hostsim/adversary.h"
#include "src/hostsim/observability.h"
#include "src/net/fabric.h"
#include "src/net/stack.h"
#include "src/cio/stack_config.h"
#include "src/tee/compartment.h"
#include "src/tee/memory.h"
#include "src/tee/trust.h"
#include "src/virtio/bond_port.h"
#include "src/virtio/net_driver.h"
#include "src/virtio/vsock_driver.h"

namespace cio {

// The profile-specific socket plumbing a stack assembly exposes: every
// profile provides the same byte-stream interface over its own machinery
// (host syscalls, guest stack, or the L5 channel into the I/O compartment).
// ConfidentialNode drives exactly one socket through it; the multi-tenant
// ConfidentialServer (src/serve/) multiplexes many.
class SocketLayer {
 public:
  virtual ~SocketLayer() = default;

  virtual ciobase::Result<cionet::SocketId> Connect(cionet::Ipv4Address ip,
                                                    uint16_t port) = 0;
  virtual ciobase::Result<cionet::SocketId> Listen(uint16_t port) = 0;
  virtual ciobase::Result<cionet::SocketId> Accept(
      cionet::SocketId listener) = 0;
  virtual ciobase::Result<cionet::TcpState> State(cionet::SocketId id) = 0;
  // Orderly close (FIN after buffered data); the server's draining state
  // uses it.
  virtual ciobase::Status Close(cionet::SocketId id) = 0;
  // Abortive close (RST now); the recovery path uses it to kill a dead
  // connection before re-establishing.
  virtual ciobase::Status Abort(cionet::SocketId id) = 0;
  // Returns bytes accepted (possibly 0 under backpressure).
  virtual ciobase::Result<size_t> SendBytes(cionet::SocketId id,
                                            ciobase::ByteSpan data) = 0;
  // Fills `out` with the next chunk (capacity reused across calls); returns
  // the byte count — 0 when nothing is pending — kFailedPrecondition at
  // orderly EOF, kLinkReset when the connection died underneath us.
  virtual ciobase::Result<size_t> ReceiveBytes(cionet::SocketId id, size_t max,
                                               ciobase::Buffer& out) = 0;
  // --- Readiness (poll-loop support) ----------------------------------------
  // Pending not-yet-accepted connections on a listener.
  virtual ciobase::Result<size_t> AcceptPending(cionet::SocketId listener) = 0;
  // True when ReceiveBytes would make progress (bytes, EOF, or a dead
  // connection to report) — lets a server skip idle connections cheaply.
  virtual ciobase::Result<bool> Readable(cionet::SocketId id) = 0;
  // Free send-buffer space (backpressure signal).
  virtual ciobase::Result<size_t> SendSpace(cionet::SocketId id) = 0;
  // Remote address of an established connection (the server's reattach key).
  virtual ciobase::Result<cionet::Ipv4Address> Peer(cionet::SocketId id) = 0;
  // Drives the stack; surfaces the link status (kTimedOut = transport
  // watchdog exhausted its reset budget, kLinkReset = ring reset this round).
  virtual ciobase::Status Poll() = 0;
};

class ConfidentialNode {
 public:
  ConfidentialNode(cionet::Fabric* fabric, ciobase::SimClock* clock,
                   StackConfig config);
  ~ConfidentialNode();

  ConfidentialNode(const ConfidentialNode&) = delete;
  ConfidentialNode& operator=(const ConfidentialNode&) = delete;

  // --- Connection lifecycle ---------------------------------------------------

  ciobase::Status Listen(uint16_t port);
  ciobase::Status Connect(cionet::Ipv4Address peer, uint16_t port);
  // Orderly teardown of the current connection and a full session reset:
  // the node can Connect() again as a brand-new peer relationship (churn).
  // Cumulative message/recovery counters survive in the retired totals.
  ciobase::Status Disconnect();
  // Drives everything: host devices, guest stack, TLS pumping. Call in the
  // simulation loop.
  void Poll();
  // True once the transport is connected and (if enabled) TLS established.
  bool Ready() const;
  bool Failed() const;

  // --- Admission / migration (client side) ------------------------------------

  // Attestation-gated servers challenge after the handshake; Poll() answers
  // with a report bound to {challenge, TLS transcript} using
  // config.attestation_key. These expose the outcome.
  bool admitted() const { return admitted_; }
  // The server rejected admission (kUnauthenticated there): terminal here —
  // reconnect loops cannot fix a bad credential.
  bool denied() const { return denied_; }
  // Times this node followed a kCtrlRedirect to a new instance.
  uint64_t migrations() const { return migrations_; }
  // Sessions retired by Disconnect() over this node's lifetime.
  uint64_t sessions_retired() const { return sessions_retired_; }

  // --- Application data ---------------------------------------------------------

  // Messages are sequence-numbered on the wire ([len u32][seq u64][payload])
  // so that after a link reset + TLS re-establishment the resend window can
  // replay unacknowledged messages and the receiver can drop duplicates:
  // every message is delivered exactly once, or counted in
  // recovery_stats().messages_lost. (See cio::Session for the machinery.)
  ciobase::Status SendMessage(ciobase::ByteSpan message);
  ciobase::Result<ciobase::Buffer> ReceiveMessage();

  // --- Introspection (benchmarks, campaign) -----------------------------------

  cionet::Ipv4Address ip() const { return ip_; }
  StackProfile profile() const { return config_.profile; }
  const StackConfig& config() const { return config_; }
  ciobase::CostModel& costs() { return costs_; }
  ciohost::ObservabilityLog& observability() { return observability_; }
  ciohost::Adversary& adversary() { return adversary_; }
  ciotee::TeeMemory& memory() { return memory_; }
  ciotee::CompartmentManager* compartments() { return compartments_.get(); }
  // The dual-boundary async datapath (null on other profiles): the server
  // drives batched egress + per-connection teardown through this.
  L5Channel* l5() { return l5_.get(); }
  L2Transport* l2_transport() { return l2_transport_.get(); }
  ciovirtio::VirtioNetDriver* virtio_driver() { return virtio_driver_.get(); }
  // Second bonded net device (null unless config.net_devices == 2).
  ciovirtio::VirtioNetDriver* virtio_driver2() { return virtio_driver2_.get(); }
  ciotee::SharedRegion* shared_region2() { return shared2_.get(); }
  // Vsock stream device (null unless config.enable_vsock).
  ciovirtio::VirtioVsockDriver* vsock_driver() { return vsock_driver_.get(); }
  ciovirtio::VirtioVsockDevice* vsock_device() { return vsock_device_.get(); }
  ciotee::SharedRegion* vsock_region() { return vsock_shared_.get(); }
  DdaTransport* dda_transport() { return dda_transport_.get(); }
  TunnelPort* tunnel_port() { return tunnel_port_.get(); }
  ciotee::SharedRegion* shared_region() { return shared_.get(); }
  const ciotls::TlsSession* tls() const { return session_.tls(); }
  // The profile's socket plumbing: the multi-tenant server drives its own
  // connection table through this instead of the node's single socket.
  SocketLayer* sockets() { return ops_.get(); }
  // Application-level operations completed (messages in + out): the
  // denominator of the observability score.
  uint64_t app_ops() const { return messages_sent() + messages_received(); }
  uint64_t messages_sent() const {
    return session_.stats().messages_sent + retired_.sent;
  }
  uint64_t messages_received() const {
    return session_.stats().messages_received + retired_.received;
  }
  // Send-direction key updates initiated (live session + retired ones).
  uint64_t rekeys() const { return session_.stats().rekeys + retired_.rekeys; }
  const Session& session() const { return session_; }
  Session& session_mut() { return session_; }

  // Link-recovery bookkeeping (PR 2): what the node survived and what it
  // cost. `messages_lost` counts receive-side sequence gaps — messages a
  // peer sent that fell out of its resend window across a reconnect.
  struct RecoveryStats {
    uint64_t link_errors = 0;       // transport/TCP faults seen by the engine
    uint64_t reconnects = 0;        // TCP re-establishments attempted
    uint64_t tls_restarts = 0;      // fresh TLS sessions after a fault
    uint64_t messages_resent = 0;   // replayed from the resend window
    uint64_t messages_duplicate_dropped = 0;  // dedup'd by sequence number
    uint64_t messages_lost = 0;     // receive-side sequence gaps
    uint64_t last_fault_ns = 0;     // when the engine last saw a fault
    uint64_t last_recovery_ns = 0;  // when the channel was last re-ready
  };
  // Composed from the node's link-level counters and the session's message
  // accounting (returned by value since the session owns half the fields).
  RecoveryStats recovery_stats() const;

 private:
  struct SyscallOps;       // profile-specific byte-stream plumbing
  struct GuestStackOps;
  struct DualBoundaryOps;

  void PumpBytes();
  // Tears down the failed secure channel and schedules re-establishment
  // (client re-connects with backoff; server re-arms its accept loop).
  void BeginRecovery(const char* reason);
  // Drives reconnect attempts and resend-window replay from Poll().
  void PollRecovery();
  // Drains the session's control inbox: attestation challenges, admission
  // verdicts, migration redirects.
  void PollControlPlane();
  // Folds the live session's counters into the retired totals (Disconnect).
  void RetireSessionStats();

  StackConfig config_;
  cionet::Ipv4Address ip_;
  ciobase::SimClock* clock_;
  ciobase::CostModel costs_;
  ciohost::ObservabilityLog observability_;
  ciohost::Adversary adversary_;
  ciotee::TeeMemory memory_;

  // Profile-dependent machinery (subset populated per profile).
  std::unique_ptr<ciotee::SharedRegion> shared_;
  std::unique_ptr<ciotee::CompartmentManager> compartments_;
  ciotee::CompartmentId app_compartment_{};
  ciotee::CompartmentId io_compartment_{};
  std::unique_ptr<ciovirtio::VirtioNetDevice> virtio_device_;
  std::unique_ptr<ciovirtio::VirtioNetDriver> virtio_driver_;
  // Second bonded net device (config.net_devices == 2): own region, own
  // rings, own negotiation; BondPort stripes the stack across both.
  std::unique_ptr<ciotee::SharedRegion> shared2_;
  std::unique_ptr<ciovirtio::VirtioNetDevice> virtio_device2_;
  std::unique_ptr<ciovirtio::VirtioNetDriver> virtio_driver2_;
  std::unique_ptr<ciovirtio::BondPort> bond_port_;
  // Vsock stream device (config.enable_vsock): independent shared region.
  std::unique_ptr<ciotee::SharedRegion> vsock_shared_;
  std::unique_ptr<ciovirtio::VirtioVsockDevice> vsock_device_;
  std::unique_ptr<ciovirtio::VirtioVsockDriver> vsock_driver_;
  std::unique_ptr<L2HostDevice> l2_device_;
  std::unique_ptr<L2Transport> l2_transport_;
  std::unique_ptr<TunnelPort> tunnel_port_;
  std::unique_ptr<ciotee::AttestationAuthority> device_authority_;
  std::unique_ptr<DdaDevice> dda_device_;
  std::unique_ptr<DdaTransport> dda_transport_;
  std::unique_ptr<cionet::NetStack> guest_stack_;
  std::unique_ptr<cionet::FramePort> host_port_;
  std::unique_ptr<cionet::NetStack> host_stack_;  // syscall profile
  std::unique_ptr<L5Channel> l5_;
  std::unique_ptr<SocketLayer> ops_;

  // The single secure channel this node runs (TLS + framing + resend
  // window); src/serve/ holds one Session per connection instead.
  Session session_;
  bool listening_ = false;
  bool connected_transport_ = false;
  uint16_t listen_port_ = 0;
  cionet::SocketId listener_{};
  cionet::SocketId socket_{};
  bool have_socket_ = false;
  ciobase::Buffer rx_scratch_;  // reusable inbound chunk staging (PumpBytes)
  bool failed_ = false;

  // Recovery state machine (active only with config_.recovery.enabled).
  bool is_client_ = false;
  cionet::Ipv4Address peer_ip_{};
  uint16_t peer_port_ = 0;
  bool reconnect_pending_ = false;   // channel down, re-establishment due
  bool resend_pending_ = false;      // replay the window once Ready() again
  uint32_t reconnect_attempts_ = 0;
  uint64_t next_reconnect_ns_ = 0;
  uint64_t reconnect_backoff_ns_ = 0;
  RecoveryStats recovery_stats_;  // link-level half; session owns the rest

  // Admission / migration state (client side).
  bool admitted_ = false;
  bool denied_ = false;
  uint64_t migrations_ = 0;
  uint64_t sessions_retired_ = 0;
  // Counters of sessions already retired by Disconnect(), so churn-style
  // reuse doesn't erase a node's lifetime accounting.
  struct RetiredTotals {
    uint64_t sent = 0;
    uint64_t received = 0;
    uint64_t resent = 0;
    uint64_t dups = 0;
    uint64_t lost = 0;
    uint64_t tls_restarts = 0;
    uint64_t rekeys = 0;
  };
  RetiredTotals retired_;
};

// Convenience for tests/benchmarks: two nodes on one fabric, pumped until
// ready or a round budget expires.
struct LinkedPair {
  ciobase::SimClock clock;
  std::unique_ptr<cionet::Fabric> fabric;
  std::unique_ptr<ConfidentialNode> client;
  std::unique_ptr<ConfidentialNode> server;

  LinkedPair(StackConfig client_config, StackConfig server_config,
             cionet::Fabric::Options fabric_options = {});

  // Establishes server listen + client connect + TLS. Returns success.
  bool Establish(uint16_t port = 443, int max_rounds = 20000);
  // One pump round for both sides, advancing simulated time.
  void Pump(uint64_t step_ns = 10'000);
  bool PumpUntil(const std::function<bool()>& done, int max_rounds = 20000,
                 uint64_t step_ns = 10'000);
};

}  // namespace cio

#endif  // SRC_CIO_ENGINE_H_
