#include "src/cio/l2_host_device.h"

namespace cio {

L2HostDevice::L2HostDevice(ciotee::SharedRegion* region,
                           const L2Config& config, cionet::Fabric* fabric,
                           std::string name, ciohost::Adversary* adversary,
                           ciohost::ObservabilityLog* observability,
                           ciobase::SimClock* clock)
    : region_(region),
      config_(config),
      layout_(config),
      fabric_(fabric),
      endpoint_(fabric->Attach(std::move(name), config.mac)),
      adversary_(adversary),
      observability_(observability),
      clock_(clock) {}

bool L2HostDevice::Faulted(ciohost::FaultStrategy strategy) const {
  return adversary_ != nullptr &&
         adversary_->FaultActive(strategy, clock_->now_ns());
}

void L2HostDevice::Kick() {
  if (Faulted(ciohost::FaultStrategy::kSwallowDoorbell) ||
      Faulted(ciohost::FaultStrategy::kLinkKill)) {
    ++stats_.kicks_swallowed;
    return;
  }
  ++stats_.kicks;
  if (observability_ != nullptr) {
    observability_->Record(ciohost::ObsCategory::kDoorbell, clock_->now_ns(),
                           "l2 doorbell");
  }
  Poll();
}

void L2HostDevice::Poll() {
  // A killed or stalled device touches nothing — not even the epoch cell —
  // so the guest's reset goes unanswered until the fault clears.
  if (Faulted(ciohost::FaultStrategy::kLinkKill) ||
      Faulted(ciohost::FaultStrategy::kStallCounters)) {
    return;
  }
  AdoptGuestEpoch();
  DrainTx();
  FillRx();
}

void L2HostDevice::AdoptGuestEpoch() {
  uint64_t guest_epoch = region_->HostReadLe64(layout_.GuestEpoch());
  if (guest_epoch == epoch_) {
    return;
  }
  // The guest reset the ring: forget everything, start from zero, and echo
  // the epoch so the guest (and tests) can observe the reattach.
  epoch_ = guest_epoch;
  tx_consumed_ = 0;
  rx_produced_ = 0;
  region_->HostWriteLe64(layout_.TxConsumed(), 0);
  region_->HostWriteLe64(layout_.RxProduced(), 0);
  region_->HostWriteLe64(layout_.HostEpoch(), epoch_);
  ++stats_.epoch_adoptions;
}

ciobase::Buffer L2HostDevice::ReadTxFrame(uint64_t index) {
  uint8_t header[kL2SlotHeaderSize];
  region_->HostRead(layout_.TxSlot(index), header);
  uint32_t len = ciobase::LoadLe32(header);
  len = std::min<uint32_t>(len, static_cast<uint32_t>(config_.slot_size));
  ciobase::Buffer frame(len);
  switch (config_.positioning) {
    case DataPositioning::kInline:
      region_->HostRead(layout_.TxSlot(index) + kL2SlotHeaderSize, frame);
      break;
    case DataPositioning::kSharedPool: {
      uint32_t offset = ciobase::LoadLe32(header + 4);
      region_->HostRead(layout_.tx_pool + offset, frame);
      break;
    }
    case DataPositioning::kIndirect: {
      uint32_t count = ciobase::LoadLe32(header);
      uint32_t table_offset = ciobase::LoadLe32(header + 4);
      count = std::min(count, kL2MaxIndirectEntries);
      frame.clear();
      for (uint32_t i = 0; i < count; ++i) {
        uint8_t entry[kL2IndirectEntrySize];
        region_->HostRead(layout_.tx_indirect + table_offset + i * 8, entry);
        uint32_t part_offset = ciobase::LoadLe32(entry);
        uint32_t part_len = std::min<uint32_t>(
            ciobase::LoadLe32(entry + 4),
            static_cast<uint32_t>(config_.slot_size));
        size_t old = frame.size();
        frame.resize(old + part_len);
        region_->HostRead(layout_.tx_pool + part_offset,
                          ciobase::MutableByteSpan(frame.data() + old,
                                                   part_len));
      }
      break;
    }
  }
  return frame;
}

void L2HostDevice::DrainTx() {
  // Per-poll budget: TxProduced is guest-written but lives in shared memory,
  // so a fuzzed/hostile value (e.g. UINT64_MAX) must not spin this loop for
  // an unbounded number of iterations. One ring's worth per poll is all an
  // honest guest can ever have outstanding.
  for (uint64_t budget = 0; budget < layout_.slots; ++budget) {
    uint64_t produced = region_->HostReadLe64(layout_.TxProduced());
    if (tx_consumed_ >= produced) {
      break;
    }
    ciobase::Buffer frame = ReadTxFrame(tx_consumed_);
    if (adversary_ != nullptr) {
      adversary_->MaybeCorruptPayload(frame);
    }
    if (observability_ != nullptr) {
      observability_->Record(ciohost::ObsCategory::kPacketLength,
                             frame.size(), "l2 tx");
      observability_->Record(ciohost::ObsCategory::kPacketTiming,
                             clock_->now_ns(), "l2 tx");
    }
    ++stats_.frames_tx;
    if (Faulted(ciohost::FaultStrategy::kDropFrames)) {
      ++stats_.frames_dropped_fault;  // consumed, never injected
    } else {
      (void)fabric_->Inject(endpoint_, frame);
      if (Faulted(ciohost::FaultStrategy::kDuplicateFrames)) {
        (void)fabric_->Inject(endpoint_, frame);
        ++stats_.frames_duplicated_fault;
      }
    }
    ++tx_consumed_;
    uint64_t published = tx_consumed_;
    if (Faulted(ciohost::FaultStrategy::kGarbageCounters)) {
      published = ~0ULL;
    }
    region_->HostWriteLe64(layout_.TxConsumed(), published);
  }
}

void L2HostDevice::WriteRxFrame(uint64_t index, ciobase::ByteSpan frame,
                                bool torn) {
  uint32_t len = static_cast<uint32_t>(frame.size());
  if (adversary_ != nullptr) {
    len = adversary_->MutateUsedLen(len, static_cast<uint32_t>(
                                             config_.SlotPayloadCapacity()));
  }
  // Torn write: the header claims the full length but only the first half
  // of the payload lands — the tail is whatever the slot held before. The
  // guest's clamp discipline keeps this safe; the TCP checksum catches it
  // and retransmission repairs it.
  if (torn) {
    frame = frame.first(frame.size() / 2);
  }
  uint8_t header[kL2SlotHeaderSize];
  switch (config_.positioning) {
    case DataPositioning::kInline:
      ciobase::StoreLe32(header, len);
      ciobase::StoreLe32(header + 4, 0);
      region_->HostWrite(layout_.RxSlot(index), header);
      region_->HostWrite(layout_.RxSlot(index) + kL2SlotHeaderSize, frame);
      break;
    case DataPositioning::kSharedPool: {
      uint64_t chunk = layout_.RxChunk(index);
      region_->HostWrite(chunk, frame);
      ciobase::StoreLe32(header, len);
      ciobase::StoreLe32(header + 4,
                         static_cast<uint32_t>(chunk - layout_.rx_pool));
      region_->HostWrite(layout_.RxSlot(index), header);
      break;
    }
    case DataPositioning::kIndirect: {
      uint64_t chunk = layout_.RxChunk(index);
      uint64_t table = layout_.RxIndirectTable(index);
      region_->HostWrite(chunk, frame);
      uint8_t entry[kL2IndirectEntrySize];
      ciobase::StoreLe32(entry, static_cast<uint32_t>(chunk - layout_.rx_pool));
      ciobase::StoreLe32(entry + 4, len);
      region_->HostWrite(table, entry);
      ciobase::StoreLe32(header, 1);
      ciobase::StoreLe32(header + 4,
                         static_cast<uint32_t>(table - layout_.rx_indirect));
      region_->HostWrite(layout_.RxSlot(index), header);
      break;
    }
  }
}

void L2HostDevice::FillRx() {
  for (;;) {
    uint64_t consumed = region_->HostReadLe64(layout_.RxConsumed());
    if (rx_produced_ - consumed >= layout_.slots) {
      // Ring full: leave frames queued in the fabric until space opens.
      break;
    }
    auto frame = fabric_->Poll(endpoint_);
    if (!frame.ok()) {
      break;
    }
    if (Faulted(ciohost::FaultStrategy::kDropFrames)) {
      ++stats_.frames_dropped_fault;
      continue;
    }
    if (adversary_ != nullptr) {
      adversary_->MaybeCorruptPayload(*frame);
    }
    if (observability_ != nullptr) {
      observability_->Record(ciohost::ObsCategory::kPacketLength,
                             frame->size(), "l2 rx");
      observability_->Record(ciohost::ObsCategory::kPacketTiming,
                             clock_->now_ns(), "l2 rx");
    }
    bool torn = Faulted(ciohost::FaultStrategy::kTornWrite);
    int copies = Faulted(ciohost::FaultStrategy::kDuplicateFrames) ? 2 : 1;
    for (int c = 0; c < copies; ++c) {
      uint64_t consumed_now = region_->HostReadLe64(layout_.RxConsumed());
      if (rx_produced_ - consumed_now >= layout_.slots) {
        break;  // no space for the duplicate
      }
      if (c > 0) {
        ++stats_.frames_duplicated_fault;
      }
      WriteRxFrame(rx_produced_, *frame, torn);
      ++rx_produced_;
      uint64_t published = rx_produced_;
      if (Faulted(ciohost::FaultStrategy::kGarbageCounters)) {
        published = ~0ULL;
      } else if (adversary_ != nullptr) {
        published = adversary_->MutatePublishedCounter(rx_produced_);
      }
      region_->HostWriteLe64(layout_.RxProduced(), published);
      ++stats_.frames_rx;
    }
  }
}

}  // namespace cio
