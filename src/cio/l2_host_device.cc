#include "src/cio/l2_host_device.h"

namespace cio {

L2HostDevice::L2HostDevice(ciotee::SharedRegion* region,
                           const L2Config& config, cionet::Fabric* fabric,
                           std::string name, ciohost::Adversary* adversary,
                           ciohost::ObservabilityLog* observability,
                           ciobase::SimClock* clock)
    : region_(region),
      config_(config),
      layout_(config),
      fabric_(fabric),
      endpoint_(fabric->Attach(std::move(name), config.mac)),
      adversary_(adversary),
      observability_(observability),
      clock_(clock) {}

void L2HostDevice::Kick() {
  ++stats_.kicks;
  if (observability_ != nullptr) {
    observability_->Record(ciohost::ObsCategory::kDoorbell, clock_->now_ns(),
                           "l2 doorbell");
  }
  Poll();
}

void L2HostDevice::Poll() {
  DrainTx();
  FillRx();
}

ciobase::Buffer L2HostDevice::ReadTxFrame(uint64_t index) {
  uint8_t header[kL2SlotHeaderSize];
  region_->HostRead(layout_.TxSlot(index), header);
  uint32_t len = ciobase::LoadLe32(header);
  len = std::min<uint32_t>(len, static_cast<uint32_t>(config_.slot_size));
  ciobase::Buffer frame(len);
  switch (config_.positioning) {
    case DataPositioning::kInline:
      region_->HostRead(layout_.TxSlot(index) + kL2SlotHeaderSize, frame);
      break;
    case DataPositioning::kSharedPool: {
      uint32_t offset = ciobase::LoadLe32(header + 4);
      region_->HostRead(layout_.tx_pool + offset, frame);
      break;
    }
    case DataPositioning::kIndirect: {
      uint32_t count = ciobase::LoadLe32(header);
      uint32_t table_offset = ciobase::LoadLe32(header + 4);
      count = std::min(count, kL2MaxIndirectEntries);
      frame.clear();
      for (uint32_t i = 0; i < count; ++i) {
        uint8_t entry[kL2IndirectEntrySize];
        region_->HostRead(layout_.tx_indirect + table_offset + i * 8, entry);
        uint32_t part_offset = ciobase::LoadLe32(entry);
        uint32_t part_len = std::min<uint32_t>(
            ciobase::LoadLe32(entry + 4),
            static_cast<uint32_t>(config_.slot_size));
        size_t old = frame.size();
        frame.resize(old + part_len);
        region_->HostRead(layout_.tx_pool + part_offset,
                          ciobase::MutableByteSpan(frame.data() + old,
                                                   part_len));
      }
      break;
    }
  }
  return frame;
}

void L2HostDevice::DrainTx() {
  for (;;) {
    uint64_t produced = region_->HostReadLe64(layout_.TxProduced());
    if (tx_consumed_ >= produced) {
      break;
    }
    ciobase::Buffer frame = ReadTxFrame(tx_consumed_);
    if (adversary_ != nullptr) {
      adversary_->MaybeCorruptPayload(frame);
    }
    if (observability_ != nullptr) {
      observability_->Record(ciohost::ObsCategory::kPacketLength,
                             frame.size(), "l2 tx");
      observability_->Record(ciohost::ObsCategory::kPacketTiming,
                             clock_->now_ns(), "l2 tx");
    }
    ++stats_.frames_tx;
    (void)fabric_->Inject(endpoint_, frame);
    ++tx_consumed_;
    region_->HostWriteLe64(layout_.TxConsumed(), tx_consumed_);
  }
}

void L2HostDevice::WriteRxFrame(uint64_t index, ciobase::ByteSpan frame) {
  uint32_t len = static_cast<uint32_t>(frame.size());
  if (adversary_ != nullptr) {
    len = adversary_->MutateUsedLen(len, static_cast<uint32_t>(
                                             config_.SlotPayloadCapacity()));
  }
  uint8_t header[kL2SlotHeaderSize];
  switch (config_.positioning) {
    case DataPositioning::kInline:
      ciobase::StoreLe32(header, len);
      ciobase::StoreLe32(header + 4, 0);
      region_->HostWrite(layout_.RxSlot(index), header);
      region_->HostWrite(layout_.RxSlot(index) + kL2SlotHeaderSize, frame);
      break;
    case DataPositioning::kSharedPool: {
      uint64_t chunk = layout_.RxChunk(index);
      region_->HostWrite(chunk, frame);
      ciobase::StoreLe32(header, len);
      ciobase::StoreLe32(header + 4,
                         static_cast<uint32_t>(chunk - layout_.rx_pool));
      region_->HostWrite(layout_.RxSlot(index), header);
      break;
    }
    case DataPositioning::kIndirect: {
      uint64_t chunk = layout_.RxChunk(index);
      uint64_t table = layout_.RxIndirectTable(index);
      region_->HostWrite(chunk, frame);
      uint8_t entry[kL2IndirectEntrySize];
      ciobase::StoreLe32(entry, static_cast<uint32_t>(chunk - layout_.rx_pool));
      ciobase::StoreLe32(entry + 4, len);
      region_->HostWrite(table, entry);
      ciobase::StoreLe32(header, 1);
      ciobase::StoreLe32(header + 4,
                         static_cast<uint32_t>(table - layout_.rx_indirect));
      region_->HostWrite(layout_.RxSlot(index), header);
      break;
    }
  }
}

void L2HostDevice::FillRx() {
  for (;;) {
    uint64_t consumed = region_->HostReadLe64(layout_.RxConsumed());
    if (rx_produced_ - consumed >= layout_.slots) {
      // Ring full: leave frames queued in the fabric until space opens.
      break;
    }
    auto frame = fabric_->Poll(endpoint_);
    if (!frame.ok()) {
      break;
    }
    if (adversary_ != nullptr) {
      adversary_->MaybeCorruptPayload(*frame);
    }
    if (observability_ != nullptr) {
      observability_->Record(ciohost::ObsCategory::kPacketLength,
                             frame->size(), "l2 rx");
      observability_->Record(ciohost::ObsCategory::kPacketTiming,
                             clock_->now_ns(), "l2 rx");
    }
    WriteRxFrame(rx_produced_, *frame);
    ++rx_produced_;
    uint64_t published = rx_produced_;
    if (adversary_ != nullptr) {
      published = adversary_->MutatePublishedCounter(rx_produced_);
    }
    region_->HostWriteLe64(layout_.RxProduced(), published);
    ++stats_.frames_rx;
  }
}

}  // namespace cio
