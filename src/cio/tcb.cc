#include "src/cio/tcb.h"

#include <cstdio>

namespace cio {

namespace {

// Non-comment, non-blank lines per library, measured from this tree with
// tools/count_loc.sh. Kept deliberately coarse (rounded): the figure-level
// claim is the ratio between profiles, not the third digit.
constexpr struct {
  const char* name;
  size_t lines;
} kModules[] = {
    {"base", 630},
    {"crypto", 610},
    {"tee", 790},
    {"tls", 470},
    {"net-stack", 2100},   // Ethernet/ARP/IPv4/TCP/UDP/sockets
    {"virtio-driver", 680},
    {"cio-l2", 450},
    {"cio-l5", 200},
    {"app-framework", 900},  // engine glue inside the confidential unit
    {"host-stack", 2100},    // host kernel stack (syscall profile, untrusted)
    {"host-backend", 450},   // device models (untrusted)
    {"dda-driver", 250},     // IDE link driver (thin: AEAD + framing)
    {"tunnel", 160},         // LightBox-style padding/sealing tunnel
    {"attested-device", 450},  // §3.4: device firmware joins the TCB
};

std::vector<TcbModule> Pick(std::initializer_list<const char*> names) {
  std::vector<TcbModule> out;
  for (const char* name : names) {
    for (const auto& module : kModules) {
      if (std::string_view(module.name) == name) {
        out.push_back(TcbModule{module.name, module.lines});
      }
    }
  }
  return out;
}

}  // namespace

const std::vector<TcbModule>& ModuleLineCounts() {
  static const std::vector<TcbModule> counts = [] {
    std::vector<TcbModule> out;
    for (const auto& module : kModules) {
      out.push_back(TcbModule{module.name, module.lines});
    }
    return out;
  }();
  return counts;
}

size_t TcbReport::AppTcbLines() const {
  size_t total = 0;
  for (const auto& module : app_tcb) {
    total += module.lines;
  }
  return total;
}

size_t TcbReport::IsolatedLines() const {
  size_t total = 0;
  for (const auto& module : isolated) {
    total += module.lines;
  }
  return total;
}

std::string TcbReport::ToString() const {
  std::string out;
  char line[128];
  auto section = [&](const char* title,
                     const std::vector<TcbModule>& modules) {
    out += title;
    out += ":\n";
    size_t total = 0;
    for (const auto& module : modules) {
      std::snprintf(line, sizeof(line), "  %-14s %6zu LoC\n",
                    module.name.c_str(), module.lines);
      out += line;
      total += module.lines;
    }
    std::snprintf(line, sizeof(line), "  %-14s %6zu LoC\n", "TOTAL", total);
    out += line;
  };
  section("app TCB", app_tcb);
  section("isolated (in-TEE, untrusted by app)", isolated);
  section("host-side (untrusted)", host_side);
  return out;
}

TcbReport ProfileTcb(StackProfile profile) {
  TcbReport report;
  switch (profile) {
    case StackProfile::kSyscallL5:
      // Small guest TCB; the entire network stack runs host-side.
      report.app_tcb = Pick({"base", "crypto", "tee", "tls",
                             "app-framework"});
      report.host_side = Pick({"host-stack", "host-backend"});
      break;
    case StackProfile::kPassthroughL2:
      // One trust domain: app + TLS + full stack + raw driver.
      report.app_tcb = Pick({"base", "crypto", "tee", "tls", "net-stack",
                             "virtio-driver", "app-framework"});
      report.host_side = Pick({"host-backend"});
      break;
    case StackProfile::kHardenedVirtio:
      report.app_tcb = Pick({"base", "crypto", "tee", "tls", "net-stack",
                             "virtio-driver", "app-framework"});
      report.host_side = Pick({"host-backend"});
      break;
    case StackProfile::kDualBoundary:
      // The stack and L2 driver are inside the TEE but OUTSIDE the app's
      // TCB: their compromise only increases observability (§3.1).
      report.app_tcb = Pick({"base", "crypto", "tee", "tls", "cio-l5",
                             "app-framework"});
      report.isolated = Pick({"net-stack", "cio-l2"});
      report.host_side = Pick({"host-backend"});
      break;
    case StackProfile::kTunneledL2:
      // Everything of passthrough PLUS the tunnel: the largest TCB in the
      // design space (the LightBox corner: Obs S, TCB XL).
      report.app_tcb = Pick({"base", "crypto", "tee", "tls", "net-stack",
                             "virtio-driver", "tunnel", "app-framework"});
      report.host_side = Pick({"host-backend"});
      break;
    case StackProfile::kDirectDevice:
      // §3.4: the driver is thin (IDE does the defensive work), but the
      // attested device's firmware is now part of the TCB — "adding them
      // to the trusted TCB is a trade-off by itself".
      report.app_tcb = Pick({"base", "crypto", "tee", "tls", "net-stack",
                             "dda-driver", "app-framework",
                             "attested-device"});
      report.host_side = Pick({"host-backend"});
      break;
  }
  return report;
}

}  // namespace cio
