// Storage crash/fault campaign: the §3.3 storage stack under deterministic
// host crashes, transient storage faults, and image rollback.
//
// Three dimensions, each with its own ground-truth oracle:
//
//  * CRASH cells: the host block device is killed after every stride-th
//    device write (discarding its write-back cache), the guest remounts,
//    and the oracle checks crash consistency — every acknowledged Put or
//    Delete (they flush internally; an OK means durable) must survive
//    every later crash, an unacknowledged op may resolve either way but
//    never to a torn or invented value, and every remount must succeed.
//
//  * FAULT cells: each transient storage fault (swallowed doorbells,
//    stalled/garbage counters, torn writes, dropped completions, bit rot,
//    link kill) opens for a bounded window mid-workload. The guest must
//    ride the window out on the ring recovery machinery and come back to
//    full service, and no fault may ever surface a wrong value — at worst
//    a detected kTampered on data the host corrupted.
//
//  * ROLLBACK probe: the host snapshots the image, the guest overwrites
//    and flushes, the host restores the snapshot. With durable generations
//    the stale image is rejected (kTampered at read and at remount); the
//    volatile control arm accepts the stale value after remount, which is
//    exactly the gap durable generations close.
//
// bench_storage_resilience runs all three and exits non-zero unless
// StorageInvariantsHold; tests reuse individual cells.

#ifndef SRC_CIO_STORAGE_CAMPAIGN_H_
#define SRC_CIO_STORAGE_CAMPAIGN_H_

#include <string>
#include <vector>

#include "src/blockio/store.h"

namespace cio {

struct StorageCampaignOptions {
  uint64_t seed = 1;
  size_t keys = 7;            // distinct object names in the workload
  size_t ops_before = 8;      // honest warm-up ops per cell
  size_t ops_per_run = 40;    // ops offered while crashes / faults fire
  size_t ops_after = 8;       // honest ops after recovery (liveness proof)
  uint64_t fault_duration_ns = 12'000'000;  // 12 ms transient windows
  uint64_t max_crashes = 6;   // crash budget per crash cell
  std::vector<uint64_t> crash_strides = {1, 2, 3, 4, 5, 7, 9, 13};
  std::vector<ciohost::FaultStrategy> faults =
      ciohost::AllStorageFaultStrategies();
};

struct StorageCrashCell {
  uint64_t stride = 0;
  bool survived = false;
  // Evidence.
  uint64_t crashes = 0;          // host restarts actually exercised
  uint64_t remounts = 0;
  uint64_t journal_replays = 0;
  size_t ops_attempted = 0;
  size_t ops_committed = 0;      // acknowledged (and therefore durable) ops
  uint64_t lost_committed = 0;   // acknowledged update missing after a crash
  uint64_t wrong_values = 0;     // a Get returned bytes nobody ever put
  uint64_t tamper_alarms = 0;    // false kTampered (crashes are not attacks)
  uint64_t mount_failures = 0;
  std::string note;
};

struct StorageFaultCell {
  ciohost::FaultStrategy fault = ciohost::FaultStrategy::kNone;
  bool recovered = false;
  // Evidence.
  uint64_t fault_events = 0;     // host-side fault hits (0 = never bit)
  uint64_t ring_resets = 0;
  uint64_t watchdog_fires = 0;
  size_t ops_attempted = 0;
  size_t ops_committed = 0;
  uint64_t wrong_values = 0;
  uint64_t lost_committed = 0;
  uint64_t tampered_reads = 0;   // detections (integrity held), not failures
  std::string note;
};

struct StorageRollbackResult {
  bool durable_generations = false;
  bool read_detected = false;     // in-session: stale block flagged at Get
  bool remount_detected = false;  // cross-session: rolled-back image refused
  bool stale_accepted = false;    // the rollback went unnoticed after remount
};

// One crash cell: host dies after every stride-th device write.
StorageCrashCell RunStorageCrashCell(uint64_t stride,
                                     const StorageCampaignOptions& options);
std::vector<StorageCrashCell> RunStorageCrashCampaign(
    const StorageCampaignOptions& options);

// One transient-fault cell.
StorageFaultCell RunStorageFaultCell(ciohost::FaultStrategy fault,
                                     const StorageCampaignOptions& options);
std::vector<StorageFaultCell> RunStorageFaultCampaign(
    const StorageCampaignOptions& options);

// Snapshot/overwrite/restore; run once with durable generations and once
// with the volatile control arm.
StorageRollbackResult RunStorageRollbackProbe(bool durable_generations);

std::string StorageCrashTable(const std::vector<StorageCrashCell>& cells);
std::string StorageFaultTable(const std::vector<StorageFaultCell>& cells);

// The enforced claim: every crash cell survives, every fault cell recovers
// with its fault actually exercised, rollback is detected with durable
// generations, and the volatile control arm demonstrates the gap (it
// detects in-session but accepts the stale image after remount).
bool StorageInvariantsHold(const std::vector<StorageCrashCell>& crash_cells,
                           const std::vector<StorageFaultCell>& fault_cells,
                           const StorageRollbackResult& durable_probe,
                           const StorageRollbackResult& volatile_probe);

}  // namespace cio

#endif  // SRC_CIO_STORAGE_CAMPAIGN_H_
