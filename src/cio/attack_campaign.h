// Attack campaign: runs every adversary strategy against every stack
// profile and classifies the outcome from ground truth (§2.2's two
// vulnerability vectors, made measurable).
//
// For each (profile, strategy) cell the harness builds a two-node world,
// arms the adversary against the victim's shared region and host device,
// pushes application messages both ways, and then inspects:
//
//   * the TEE memory model's violation log (out-of-bounds / private-memory
//     accesses the victim's transport performed under attack),
//   * the compartment manager's violation log (isolation held or not),
//   * delivered-vs-sent message payloads (end-to-end integrity),
//   * TLS authentication failures and link liveness,
//   * plaintext-payload observability events (confidentiality).
//
// Outcome order is worst-first; a cell is classified by the worst evidence
// found. The paper's claim (§3.1) is that the dual-boundary design turns
// every cell into kBlocked or, at worst, kDegradedService — attacks on the
// I/O path can deny service (out of scope) but cannot break memory safety,
// integrity, or confidentiality of the application.

#ifndef SRC_CIO_ATTACK_CAMPAIGN_H_
#define SRC_CIO_ATTACK_CAMPAIGN_H_

#include <string>
#include <vector>

#include "src/cio/engine.h"
#include "src/hostsim/adversary.h"

namespace cio {

enum class AttackOutcome {
  kMemoryViolation = 0,     // victim performed unsafe shared-memory access
  kConfidentialityLeak = 1, // plaintext reached the host
  kIntegrityBreak = 2,      // app accepted data the peer never sent
  kDegradedService = 3,     // messages lost / link killed (DoS — out of scope)
  kBlocked = 4,             // everything delivered correctly
};

std::string_view AttackOutcomeName(AttackOutcome outcome);

struct CampaignCell {
  StackProfile profile;
  ciohost::AttackStrategy strategy;
  AttackOutcome outcome;
  // Evidence.
  uint64_t oob_accesses = 0;
  uint64_t isolation_violations = 0;
  uint64_t tls_auth_failures = 0;
  uint64_t payload_observations = 0;
  size_t messages_attempted = 0;
  size_t messages_delivered = 0;
  size_t messages_corrupted = 0;
  std::string note;
};

struct CampaignOptions {
  size_t messages_per_cell = 20;
  size_t message_size = 512;
  uint64_t seed = 1;
  bool use_tls = true;
  std::vector<StackProfile> profiles = AllStackProfiles();
  std::vector<ciohost::AttackStrategy> strategies =
      ciohost::AllAttackStrategies();
};

// Runs one cell.
CampaignCell RunAttackCell(StackProfile profile,
                           ciohost::AttackStrategy strategy,
                           const CampaignOptions& options);

// Runs the full matrix.
std::vector<CampaignCell> RunCampaign(const CampaignOptions& options);

// Formats the matrix as the table bench_attack_resilience prints.
std::string CampaignTable(const std::vector<CampaignCell>& cells);

}  // namespace cio

#endif  // SRC_CIO_ATTACK_CAMPAIGN_H_
