// Attack campaign: runs every adversary strategy against every stack
// profile and classifies the outcome from ground truth (§2.2's two
// vulnerability vectors, made measurable).
//
// For each (profile, strategy) cell the harness builds a two-node world,
// arms the adversary against the victim's shared region and host device,
// pushes application messages both ways, and then inspects:
//
//   * the TEE memory model's violation log (out-of-bounds / private-memory
//     accesses the victim's transport performed under attack),
//   * the compartment manager's violation log (isolation held or not),
//   * delivered-vs-sent message payloads (end-to-end integrity),
//   * TLS authentication failures and link liveness,
//   * plaintext-payload observability events (confidentiality).
//
// Outcome order is worst-first; a cell is classified by the worst evidence
// found. The paper's claim (§3.1) is that the dual-boundary design turns
// every cell into kBlocked or, at worst, kDegradedService — attacks on the
// I/O path can deny service (out of scope) but cannot break memory safety,
// integrity, or confidentiality of the application.
//
// The RECOVERY campaign is the second dimension: transient host faults
// (ciohost::FaultStrategy) opened for a bounded window mid-transfer. Here
// the question is not "does the guest stay uncorrupted" but "does the guest
// come back": each cell records whether the link re-established, the time
// from fault injection to full catch-up, and how many in-flight messages
// were lost or duplicated. The dual-boundary profile (watchdog + ring
// reset + TLS re-establishment + resend window, all enabled by
// StackConfig::DefaultsFor) is expected to recover from every transient
// fault with zero losses; the baselines ship without recovery and wedge
// wherever TCP retransmission alone cannot save them.

#ifndef SRC_CIO_ATTACK_CAMPAIGN_H_
#define SRC_CIO_ATTACK_CAMPAIGN_H_

#include <string>
#include <vector>

#include "src/cio/engine.h"
#include "src/hostsim/adversary.h"

namespace cio {

enum class AttackOutcome {
  kMemoryViolation = 0,     // victim performed unsafe shared-memory access
  kConfidentialityLeak = 1, // plaintext reached the host
  kIntegrityBreak = 2,      // app accepted data the peer never sent
  kDegradedService = 3,     // messages lost / link killed (DoS — out of scope)
  kBlocked = 4,             // everything delivered correctly
};

std::string_view AttackOutcomeName(AttackOutcome outcome);

struct CampaignCell {
  StackProfile profile;
  ciohost::AttackStrategy strategy;
  AttackOutcome outcome;
  // Evidence.
  uint64_t oob_accesses = 0;
  uint64_t isolation_violations = 0;
  uint64_t tls_auth_failures = 0;
  uint64_t payload_observations = 0;
  size_t messages_attempted = 0;
  size_t messages_delivered = 0;
  size_t messages_corrupted = 0;
  std::string note;
};

struct CampaignOptions {
  size_t messages_per_cell = 20;
  size_t message_size = 512;
  uint64_t seed = 1;
  bool use_tls = true;
  std::vector<StackProfile> profiles = AllStackProfiles();
  std::vector<ciohost::AttackStrategy> strategies =
      ciohost::AllAttackStrategies();
};

// Runs one cell.
CampaignCell RunAttackCell(StackProfile profile,
                           ciohost::AttackStrategy strategy,
                           const CampaignOptions& options);

// Runs the full matrix.
std::vector<CampaignCell> RunCampaign(const CampaignOptions& options);

// Formats the matrix as the table bench_attack_resilience prints.
std::string CampaignTable(const std::vector<CampaignCell>& cells);

// --- Recovery dimension ------------------------------------------------------

struct RecoveryCell {
  StackProfile profile;
  ciohost::FaultStrategy fault;
  // Did the node come back: link re-ready, nobody terminally failed, and
  // every accepted message accounted for (delivered or counted lost) within
  // the round budget after the fault window closed.
  bool recovered = false;
  uint64_t time_to_recovery_ns = 0;  // fault injection -> full catch-up
  // Message accounting, both directions summed. "Lost" is the engines'
  // receive-side sequence-gap count (messages that fell out of the peer's
  // resend window across a reconnect); exactly-once delivery means
  // delivered + lost == attempted and duplicates were dropped, not re-read.
  size_t messages_attempted = 0;
  size_t messages_delivered = 0;
  uint64_t messages_lost = 0;
  uint64_t messages_duplicate_dropped = 0;
  // Recovery machinery engaged (victim side).
  uint64_t ring_resets = 0;
  uint64_t watchdog_fires = 0;
  uint64_t reconnects = 0;
  uint64_t tls_restarts = 0;
  uint64_t fault_events = 0;  // host-side fault hits (0 = fault never bit)
  // Safety must hold even mid-fault.
  uint64_t oob_accesses = 0;
  uint64_t payload_observations = 0;
  size_t messages_corrupted = 0;
  std::string note;
};

struct RecoveryOptions {
  size_t messages_before = 6;  // steady traffic pre-fault
  size_t messages_during = 6;  // offered while the fault window is open
  size_t messages_after = 6;   // offered after the host resumes honesty
  size_t message_size = 256;
  uint64_t seed = 1;
  // The hostile window outlives the campaign's TCP retry budget (~7.5 ms
  // under TuneTcpForCampaign), so faults that starve the link kill the TCP
  // connection: profiles without recovery wedge, the dual-boundary profile
  // reconnects, re-runs TLS, and replays from its resend window.
  uint64_t fault_duration_ns = 12'000'000;  // 12 ms
  // Pump budget (rounds of LinkedPair::Pump, 10 µs each) for each send
  // retry and for the final catch-up phase.
  int send_retry_rounds = 2000;
  int catchup_rounds = 30000;
  // Only profiles whose datapath traverses an adversary-mediated host
  // device are faultable: the syscall profile calls straight into the host
  // and the attested DDA device sits inside the TCB, so transient host
  // faults have nowhere to bite.
  std::vector<StackProfile> profiles = {
      StackProfile::kPassthroughL2, StackProfile::kHardenedVirtio,
      StackProfile::kDualBoundary, StackProfile::kTunneledL2};
  std::vector<ciohost::FaultStrategy> faults = ciohost::AllFaultStrategies();
};

// Runs one (profile, transient-fault) recovery cell.
RecoveryCell RunRecoveryCell(StackProfile profile,
                             ciohost::FaultStrategy fault,
                             const RecoveryOptions& options);

// Runs the full recovery matrix.
std::vector<RecoveryCell> RunRecoveryCampaign(const RecoveryOptions& options);

// Formats the recovery matrix as the table bench_attack_resilience prints.
std::string RecoveryTable(const std::vector<RecoveryCell>& cells);

}  // namespace cio

#endif  // SRC_CIO_ATTACK_CAMPAIGN_H_
