#include "src/cio/dda.h"

#include <cassert>

#include "src/base/bits.h"
#include "src/crypto/hkdf.h"

namespace cio {

DdaLayout::DdaLayout(const DdaConfig& config)
    : slots(config.ring_slots), slot_size(config.slot_size) {
  tx_ring = 1024;
  rx_ring = tx_ring + slots * slot_size;
  total = rx_ring + slots * slot_size;
}

uint64_t DdaLayout::TxSlot(uint64_t index) const {
  return tx_ring + ciobase::MaskIndex(index, slots) * slot_size;
}

uint64_t DdaLayout::RxSlot(uint64_t index) const {
  return rx_ring + ciobase::MaskIndex(index, slots) * slot_size;
}

IdeKeys DeriveIdeKeys(ciobase::ByteSpan provisioning_secret,
                      ciobase::ByteSpan guest_nonce,
                      ciobase::ByteSpan device_nonce) {
  ciobase::Buffer salt(guest_nonce.begin(), guest_nonce.end());
  ciobase::Append(salt, device_nonce);
  ciocrypto::Sha256Digest prk =
      ciocrypto::HkdfExtract(salt, provisioning_secret);
  auto derive = [&](std::string_view label) {
    return ciotls::SealingKey(
        ciocrypto::HkdfExpandLabel(prk, label, {}, 32),
        ciocrypto::HkdfExpandLabel(prk, std::string(label) + " iv", {}, 12));
  };
  IdeKeys keys;
  keys.guest_to_device = derive("ide g2d");
  keys.device_to_guest = derive("ide d2g");
  return keys;
}

// --- DdaDevice -----------------------------------------------------------------

DdaDevice::DdaDevice(ciotee::SharedRegion* region, DdaConfig config,
                     cionet::Fabric* fabric, std::string name,
                     const ciotee::AttestationAuthority* authority,
                     ciobase::ByteSpan provisioning_secret,
                     ciohost::Adversary* adversary,
                     ciohost::ObservabilityLog* observability,
                     ciobase::SimClock* clock)
    : region_(region),
      config_(config),
      layout_(config),
      fabric_(fabric),
      endpoint_(fabric->Attach(std::move(name), config.mac)),
      authority_(authority),
      provisioning_secret_(provisioning_secret.begin(),
                           provisioning_secret.end()),
      measurement_(ciotee::Measure(config.device_identity, {})),
      adversary_(adversary),
      observability_(observability),
      clock_(clock) {
  assert(region->size() >= layout_.total);
}

void DdaDevice::HandleAttestation() {
  // NOTE: the device reads the mailbox through HOST accessors because the
  // mailbox physically sits in host-visible memory; the device itself is
  // trusted, but its link to the guest is not.
  uint8_t flag = 0;
  region_->HostRead(layout_.RequestFlag(),
                    ciobase::MutableByteSpan(&flag, 1));
  if (flag != 1) {
    return;
  }
  uint8_t nonce[32];
  region_->HostRead(layout_.RequestNonce(), nonce);
  ciotee::AttestationReport report = authority_->Issue(measurement_, nonce);
  ciobase::Buffer body = report.Serialize();
  // Device nonce for key derivation rides along after the report.
  ciobase::Buffer device_nonce = rng_.Bytes(32);
  ciobase::Append(body, device_nonce);
  region_->HostWriteLe32(layout_.ResponseLen(),
                         static_cast<uint32_t>(body.size()));
  region_->HostWrite(layout_.ResponseBody(), body);
  region_->HostWriteU8(layout_.ResponseFlag(), 1);
  region_->HostWriteU8(layout_.RequestFlag(), 0);
  keys_ = DeriveIdeKeys(provisioning_secret_, nonce, device_nonce);
  ++stats_.attestations;
}

void DdaDevice::RelayTx() {
  if (!keys_.has_value()) {
    return;
  }
  for (;;) {
    uint64_t produced = region_->HostReadLe64(layout_.TxProduced());
    if (tx_consumed_ >= produced) {
      break;
    }
    uint64_t slot = layout_.TxSlot(tx_consumed_);
    uint32_t len = region_->HostReadLe32(slot);
    // PCIe-style structural framing: a TLP cannot exceed its slot.
    len = std::min<uint32_t>(len, static_cast<uint32_t>(
                                      config_.slot_size - 8));
    ciobase::Buffer sealed(len);
    region_->HostRead(slot + 8, sealed);
    ++tx_consumed_;
    region_->HostWriteLe64(layout_.TxConsumed(), tx_consumed_);
    if (sealed.size() <= ciotls::kRecordHeaderSize) {
      ++stats_.auth_failures;
      continue;
    }
    auto frame = keys_->guest_to_device.Open(
        ciotls::RecordType::kApplicationData,
        ciobase::ByteSpan(sealed).subspan(ciotls::kRecordHeaderSize));
    if (!frame.ok()) {
      ++stats_.auth_failures;  // host (or a bug) tampered with the TLP
      continue;
    }
    if (observability_ != nullptr) {
      // The host relay sees only the TLP size and timing (ciphertext).
      observability_->Record(ciohost::ObsCategory::kPacketLength,
                             sealed.size(), "ide tlp tx");
      observability_->Record(ciohost::ObsCategory::kPacketTiming,
                             clock_->now_ns(), "ide tlp tx");
    }
    ++stats_.frames_tx;
    (void)fabric_->Inject(endpoint_, *frame);
  }
}

void DdaDevice::RelayRx() {
  if (!keys_.has_value()) {
    return;
  }
  for (;;) {
    uint64_t consumed = region_->HostReadLe64(layout_.RxConsumed());
    if (rx_produced_ - consumed >= layout_.slots) {
      break;  // ring full
    }
    auto frame = fabric_->Poll(endpoint_);
    if (!frame.ok()) {
      break;
    }
    ciobase::Buffer sealed = keys_->device_to_guest.Seal(
        ciotls::RecordType::kApplicationData, *frame);
    if (observability_ != nullptr) {
      observability_->Record(ciohost::ObsCategory::kPacketLength,
                             sealed.size(), "ide tlp rx");
      observability_->Record(ciohost::ObsCategory::kPacketTiming,
                             clock_->now_ns(), "ide tlp rx");
    }
    uint64_t slot = layout_.RxSlot(rx_produced_);
    region_->HostWriteLe32(slot, static_cast<uint32_t>(sealed.size()));
    // The host relay can tamper with the ciphertext in flight...
    if (adversary_ != nullptr) {
      adversary_->MaybeCorruptPayload(sealed);
    }
    region_->HostWrite(slot + 8, sealed);
    ++rx_produced_;
    uint64_t published = rx_produced_;
    if (adversary_ != nullptr) {
      published = adversary_->MutatePublishedCounter(published);
    }
    region_->HostWriteLe64(layout_.RxProduced(), published);
    ++stats_.frames_rx;
  }
}

void DdaDevice::Poll() {
  HandleAttestation();
  RelayTx();
  RelayRx();
}

// --- DdaTransport ---------------------------------------------------------------

DdaTransport::DdaTransport(ciotee::SharedRegion* region, DdaConfig config,
                           DdaDevice* device, ciobase::CostModel* costs,
                           const ciotee::AttestationAuthority* verifier,
                           uint64_t seed)
    : region_(region),
      config_(config),
      layout_(config),
      device_(device),
      costs_(costs),
      verifier_(verifier),
      rng_(seed) {}

ciobase::Status DdaTransport::Attest(
    ciobase::ByteSpan provisioning_secret) {
  ciobase::Buffer nonce = rng_.Bytes(32);
  region_->GuestWrite(layout_.RequestNonce(), nonce);
  region_->GuestWriteU8(layout_.RequestFlag(), 1);
  device_->Poll();  // the device answers the mailbox
  costs_->ChargeNotify();
  uint8_t flag = region_->GuestReadU8(layout_.ResponseFlag());
  if (flag != 1) {
    return ciobase::Unavailable("device did not answer attestation");
  }
  uint32_t len = region_->GuestReadLe32(layout_.ResponseLen());
  if (len < 32 || len > 512) {
    return ciobase::Tampered("attestation response length invalid");
  }
  ciobase::Buffer body(len);
  region_->GuestRead(layout_.ResponseBody(), body);
  // The last 32 bytes are the device nonce; the rest is the report.
  ciobase::ByteSpan report_bytes(body.data(), body.size() - 32);
  ciobase::ByteSpan device_nonce(body.data() + body.size() - 32, 32);
  auto report = ciotee::AttestationReport::Parse(report_bytes);
  if (!report.ok()) {
    return report.status();
  }
  ciotee::Measurement expected =
      ciotee::Measure(config_.device_identity, {});
  CIO_RETURN_IF_ERROR(verifier_->Verify(*report, expected, nonce));
  keys_ = DeriveIdeKeys(provisioning_secret, nonce, device_nonce);
  return ciobase::OkStatus();
}

ciobase::Result<size_t> DdaTransport::SendFrames(
    std::span<const ciobase::ByteSpan> frames) {
  if (!keys_.has_value()) {
    return ciobase::FailedPrecondition("device not attested");
  }
  if (frames.empty()) {
    return static_cast<size_t>(0);
  }
  // Single fetch of the device's consumed pointer for the whole batch.
  uint64_t consumed = region_->GuestReadLe64(layout_.TxConsumed());
  uint64_t in_flight = tx_produced_ - std::min(consumed, tx_produced_);
  size_t sent = 0;
  ciobase::Status reject = ciobase::OkStatus();
  for (ciobase::ByteSpan frame : frames) {
    if (frame.size() > config_.mtu + cionet::kEthernetHeaderSize) {
      reject = ciobase::InvalidArgument("frame exceeds MTU");
      break;
    }
    if (in_flight >= layout_.slots) {
      ++stats_.ring_full;
      reject = ciobase::ResourceExhausted("tx ring full");
      break;
    }
    costs_->ChargeAead(frame.size());
    ciobase::Buffer sealed = keys_->guest_to_device.Seal(
        ciotls::RecordType::kApplicationData, frame);
    if (sealed.size() > config_.slot_size - 8) {
      reject = ciobase::InvalidArgument("sealed frame exceeds slot");
      break;
    }
    uint64_t slot = layout_.TxSlot(tx_produced_);
    uint8_t header[8] = {0};
    ciobase::StoreLe32(header, static_cast<uint32_t>(sealed.size()));
    region_->GuestWrite(slot, header);
    costs_->ChargeCopy(sealed.size());
    region_->GuestWrite(slot + 8, sealed);
    ++tx_produced_;
    ++in_flight;
    ++stats_.frames_sent;
    ++sent;
  }
  if (sent > 0) {
    // One producer publish for the whole accepted run.
    region_->GuestWriteLe64(layout_.TxProduced(), tx_produced_);
  }
  if (sent == 0 && !reject.ok()) {
    return reject;
  }
  return sent;
}

ciobase::Result<size_t> DdaTransport::ReceiveFrames(cionet::FrameBatch& batch,
                                                    size_t max_frames) {
  batch.Clear();
  if (!keys_.has_value()) {
    return ciobase::FailedPrecondition("device not attested");
  }
  costs_->ChargeRingPoll();
  // Single fetch of the device's produced pointer for the whole batch.
  uint64_t produced = region_->GuestReadLe64(layout_.RxProduced());
  uint64_t pending = produced - rx_consumed_;
  if (pending == 0 || pending > (1ULL << 63)) {
    return static_cast<size_t>(0);
  }
  uint64_t take = std::min<uint64_t>(pending, max_frames);
  for (uint64_t i = 0; i < take; ++i) {
    uint64_t slot = layout_.RxSlot(rx_consumed_);
    // Single fetch of the slot; the length is clamped by the framing.
    uint32_t len = region_->GuestReadLe32(slot);
    len = std::min<uint32_t>(len,
                             static_cast<uint32_t>(config_.slot_size - 8));
    ciobase::Buffer sealed(len);
    costs_->ChargeCopy(len);
    region_->GuestRead(slot + 8, sealed);
    ++rx_consumed_;

    if (sealed.size() <= ciotls::kRecordHeaderSize) {
      ++stats_.auth_failures;  // runt TLP dropped
      continue;
    }
    costs_->ChargeAead(sealed.size());
    auto frame = keys_->device_to_guest.Open(
        ciotls::RecordType::kApplicationData,
        ciobase::ByteSpan(sealed).subspan(ciotls::kRecordHeaderSize));
    if (!frame.ok()) {
      // IDE does the driver's defensive work: tampering becomes a drop.
      ++stats_.auth_failures;
      continue;
    }
    ++stats_.frames_received;
    batch.Push(*std::move(frame));
  }
  // One consumer publish for the whole drained run.
  region_->GuestWriteLe64(layout_.RxConsumed(), rx_consumed_);
  return batch.size();
}

std::vector<ciohost::SurfaceField> DdaTransport::AttackSurface() const {
  using ciohost::FieldKind;
  std::vector<ciohost::SurfaceField> surface;
  surface.push_back({FieldKind::kIndex, layout_.RxProduced(), 8});
  for (uint64_t i = 0; i < 4; ++i) {
    surface.push_back({FieldKind::kLength, layout_.RxSlot(i), 4});
  }
  surface.push_back(
      {FieldKind::kPayload, layout_.rx_ring,
       static_cast<uint32_t>(std::min<uint64_t>(
           layout_.slots * layout_.slot_size, 0xffffffffu))});
  return surface;
}

}  // namespace cio
