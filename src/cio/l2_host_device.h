// L2HostDevice: the host-side backend of the hardened L2 transport.
//
// The honest implementation is deliberately trivial — consume TX slots,
// inject into the fabric; take fabric frames, fill RX slots — because the
// protocol has no control plane, no descriptors and no completions to
// manage. Like the virtio device model it can be armed with an adversary
// (corrupt payloads, inflate slot lengths, storm counters) and it reports
// host-visible events to the observability log. What the host sees here is
// exactly what a network observer sees: frame lengths, timings, and
// doorbells — nothing else (§3.1 "low observability").

#ifndef SRC_CIO_L2_HOST_DEVICE_H_
#define SRC_CIO_L2_HOST_DEVICE_H_

#include "src/base/clock.h"
#include "src/cio/l2_layout.h"
#include "src/hostsim/adversary.h"
#include "src/hostsim/observability.h"
#include "src/net/fabric.h"
#include "src/tee/shared_region.h"
#include "src/virtio/net_device.h"  // KickTarget

namespace cio {

class L2HostDevice final : public ciovirtio::KickTarget {
 public:
  L2HostDevice(ciotee::SharedRegion* region, const L2Config& config,
               cionet::Fabric* fabric, std::string name,
               ciohost::Adversary* adversary,
               ciohost::ObservabilityLog* observability,
               ciobase::SimClock* clock);

  void Poll();
  void Kick() override;

  // Fabric endpoint; used to Detach() this device during a hot-swap.
  cionet::EndpointId endpoint() const { return endpoint_; }

  struct Stats {
    uint64_t frames_tx = 0;
    uint64_t frames_rx = 0;
    uint64_t rx_dropped_ring_full = 0;
    uint64_t kicks = 0;
    uint64_t kicks_swallowed = 0;
    uint64_t frames_dropped_fault = 0;
    uint64_t frames_duplicated_fault = 0;
    uint64_t epoch_adoptions = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void AdoptGuestEpoch();
  void DrainTx();
  void FillRx();
  ciobase::Buffer ReadTxFrame(uint64_t index);
  void WriteRxFrame(uint64_t index, ciobase::ByteSpan frame, bool torn);
  bool Faulted(ciohost::FaultStrategy strategy) const;

  ciotee::SharedRegion* region_;
  L2Config config_;
  L2Layout layout_;
  cionet::Fabric* fabric_;
  cionet::EndpointId endpoint_;
  ciohost::Adversary* adversary_;
  ciohost::ObservabilityLog* observability_;
  ciobase::SimClock* clock_;

  uint64_t tx_consumed_ = 0;
  uint64_t rx_produced_ = 0;
  uint64_t epoch_ = 0;  // last guest epoch this device adopted
  Stats stats_;
};

}  // namespace cio

#endif  // SRC_CIO_L2_HOST_DEVICE_H_
