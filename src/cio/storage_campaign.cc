#include "src/cio/storage_campaign.h"

#include <cstdio>
#include <memory>

#include "src/base/rng.h"
#include "src/tee/compartment.h"

namespace cio {
namespace {

// A full storage world: clock, TEE memory, two compartments, adversary,
// hardware rollback counter, and the dual-boundary store with ring
// recovery enabled. Durable generations are the default; the rollback
// probe's control arm turns them off.
struct StorageWorld {
  ciobase::SimClock clock;
  ciobase::CostModel costs{&clock};
  ciotee::TeeMemory memory;
  ciotee::CompartmentManager compartments{&costs};
  ciotee::CompartmentId app = compartments.Create("app", 1 << 20);
  ciotee::CompartmentId storage = compartments.Create("storage", 1 << 20);
  ciohost::Adversary adversary;
  ciohost::ObservabilityLog observability;
  ciotee::MonotonicCounter counter;
  std::unique_ptr<cioblock::ConfidentialStore> store;

  StorageWorld(uint64_t seed, bool durable_generations)
      : adversary(seed) {
    cioblock::ConfidentialStore::Options options;
    options.ring.block_count = 512;
    options.disk_key =
        ciobase::BufferFromString("storage-campaign-disk-key-000000");
    options.value_key =
        ciobase::BufferFromString("storage-campaign-value-key-00000");
    options.recovery.enabled = true;
    options.rollback_counter = durable_generations ? &counter : nullptr;
    store = std::make_unique<cioblock::ConfidentialStore>(
        &memory, &compartments, app, storage, &costs, &adversary,
        &observability, &clock, std::move(options));
  }
};

std::string KeyName(size_t key) { return "obj-" + std::to_string(key); }

// Unique value per Put; self-describing so the oracle never collides.
ciobase::Buffer MakeValue(size_t key, uint64_t serial) {
  ciobase::Buffer value(64 + (serial * 13 + key * 5) % 128);
  for (size_t i = 0; i < value.size(); ++i) {
    value[i] = static_cast<uint8_t>(key * 31 + serial * 7 + i);
  }
  return value;
}

// Ground truth for one key. Acknowledged ops collapse the state to a
// single outcome; unacknowledged ops widen it (the update may or may not
// have committed — both readings are legal, a third is not).
struct OracleKey {
  std::vector<ciobase::Buffer> acceptable;  // any of these values is legal
  bool missing_ok = true;                   // NotFound is legal
  bool tainted = false;  // host corrupted its bytes; kTampered is detection

  bool definite() const { return acceptable.size() == 1 && !missing_ok; }
  void CommitValue(ciobase::Buffer value) {
    acceptable.clear();
    acceptable.push_back(std::move(value));
    missing_ok = false;
    tainted = false;
  }
  void CommitMissing() {
    acceptable.clear();
    missing_ok = true;
    tainted = false;
  }
  bool Accepts(const ciobase::Buffer& observed) const {
    for (const auto& candidate : acceptable) {
      if (candidate == observed) {
        return true;
      }
    }
    return false;
  }
};

// Shared driver for crash and fault cells: runs Put/Get/Delete ops against
// the store, maintains the oracle, and accumulates violation counters.
struct Workload {
  cioblock::ConfidentialStore& store;
  cioblock::HostBlockDevice& device;
  uint64_t crash_budget;  // 0 = crashes not part of this cell

  std::vector<OracleKey> oracle;
  uint64_t serial = 0;
  size_t ops_attempted = 0;
  size_t ops_committed = 0;
  uint64_t lost_committed = 0;
  uint64_t wrong_values = 0;
  uint64_t unexpected_tampered = 0;
  uint64_t tampered_reads = 0;
  uint64_t mount_failures = 0;
  // True while the in-memory fs state is known to equal the durable state
  // (right after a remount or an acknowledged op); only then may a Get
  // collapse oracle doubt — otherwise it could pin an uncommitted value.
  bool state_committed = true;
  std::string note;

  explicit Workload(cioblock::ConfidentialStore& s, size_t keys,
                    uint64_t budget)
      : store(s), device(*s.host_device()), crash_budget(budget),
        oracle(keys) {}

  void DisarmIfSpent() {
    if (crash_budget != 0 && device.stats().crashes >= crash_budget) {
      device.CrashAfterWrites(0);
    }
  }

  // Remounts until it sticks; each attempt may itself crash the host
  // again, which is exactly the crash-during-recovery case under test.
  bool Remount() {
    for (int attempt = 0; attempt < 32; ++attempt) {
      DisarmIfSpent();
      ciobase::Status status = store.Remount();
      if (status.ok()) {
        state_committed = true;
        return true;
      }
      if (status.code() != ciobase::StatusCode::kLinkReset) {
        ++mount_failures;
        note = "remount: " + status.ToString();
        return false;
      }
    }
    ++mount_failures;
    note = "remount never converged";
    return false;
  }

  bool RemountIfNeeded() {
    if (!store.ring_client()->needs_remount()) {
      return true;
    }
    return Remount();
  }

  // taint: the host is corrupting payloads right now (torn-write window),
  // so even an acknowledged Put may leave undecryptable bytes on disk.
  void Put(size_t key, bool taint) {
    ++ops_attempted;
    ciobase::Buffer value = MakeValue(key, ++serial);
    ciobase::Status status = store.Put(KeyName(key), value);
    if (status.ok()) {
      ++ops_committed;
      oracle[key].CommitValue(value);
      oracle[key].tainted = taint;
      state_committed = true;
      return;
    }
    // Outcome unknown: the new value joins the acceptable set.
    oracle[key].acceptable.push_back(value);
    if (taint) {
      oracle[key].tainted = true;
    }
    state_committed = false;
    if (status.code() == ciobase::StatusCode::kLinkReset && Remount() &&
        store.Put(KeyName(key), value).ok()) {
      ++ops_committed;
      oracle[key].CommitValue(std::move(value));
      oracle[key].tainted = taint;
      state_committed = true;
    }
  }

  void Delete(size_t key) {
    ++ops_attempted;
    ciobase::Status status = store.Delete(KeyName(key));
    if (status.ok()) {
      ++ops_committed;
      oracle[key].CommitMissing();
      state_committed = true;
      return;
    }
    if (status.code() == ciobase::StatusCode::kNotFound) {
      if (!oracle[key].missing_ok) {
        ++lost_committed;  // a committed object vanished without a crash
      }
      return;
    }
    oracle[key].missing_ok = true;
    state_committed = false;
    if (status.code() == ciobase::StatusCode::kLinkReset && Remount()) {
      ciobase::Status retry = store.Delete(KeyName(key));
      if (retry.ok() ||
          retry.code() == ciobase::StatusCode::kNotFound) {
        // Post-remount the fs reflects durable state: the object is gone
        // (either this delete or the crashed one committed).
        if (retry.ok()) {
          ++ops_committed;
        }
        oracle[key].CommitMissing();
        state_committed = true;
      }
    }
  }

  // corrupting_window: reads may legitimately come back kTampered right
  // now (bit rot / torn writes in flight).
  void Get(size_t key, bool corrupting_window) {
    ++ops_attempted;
    auto read = store.Get(KeyName(key));
    if (!read.ok() &&
        read.status().code() == ciobase::StatusCode::kLinkReset) {
      if (!Remount()) {
        return;
      }
      read = store.Get(KeyName(key));
    }
    OracleKey& truth = oracle[key];
    if (read.ok()) {
      if (truth.Accepts(*read)) {
        if (state_committed) {
          truth.CommitValue(*read);
        }
      } else {
        ++wrong_values;
        note = "Get returned a value nobody put";
      }
      return;
    }
    switch (read.status().code()) {
      case ciobase::StatusCode::kNotFound:
        if (truth.missing_ok) {
          if (state_committed) {
            truth.CommitMissing();
          }
        } else {
          ++lost_committed;
          note = "committed object unreadable";
        }
        break;
      case ciobase::StatusCode::kTampered:
        ++tampered_reads;
        if (!truth.tainted && !corrupting_window) {
          ++unexpected_tampered;
          note = "kTampered without host corruption";
        }
        break;
      default:
        // Transient availability trouble; the op simply did not happen.
        break;
    }
  }

  // Post-recovery liveness: rewrite every key honestly and verify it.
  bool ProveFullService() {
    for (size_t key = 0; key < oracle.size(); ++key) {
      ciobase::Buffer value = MakeValue(key, ++serial);
      if (!store.Put(KeyName(key), value).ok()) {
        note = "post-recovery Put failed on " + KeyName(key);
        return false;
      }
      oracle[key].CommitValue(value);
      auto read = store.Get(KeyName(key));
      if (!read.ok() || !(*read == oracle[key].acceptable[0])) {
        note = "post-recovery Get failed on " + KeyName(key);
        return false;
      }
    }
    if (!store.Delete(KeyName(0)).ok()) {
      note = "post-recovery Delete failed";
      return false;
    }
    oracle[0].CommitMissing();
    if (store.Get(KeyName(0)).ok()) {
      note = "deleted object still readable";
      return false;
    }
    return true;
  }

  bool Violated() const {
    return lost_committed != 0 || wrong_values != 0 ||
           unexpected_tampered != 0 || mount_failures != 0;
  }
};

}  // namespace

StorageCrashCell RunStorageCrashCell(uint64_t stride,
                                     const StorageCampaignOptions& options) {
  StorageCrashCell cell;
  cell.stride = stride;
  StorageWorld world(options.seed * 97 + stride, /*durable_generations=*/true);
  cioblock::ConfidentialStore& store = *world.store;
  if (!store.Format().ok()) {
    cell.note = "format failed";
    return cell;
  }
  Workload work(store, options.keys, options.max_crashes);
  ciobase::Rng rng(options.seed * 7 + stride);

  // Honest warm-up: seed some committed objects.
  for (size_t i = 0; i < options.ops_before; ++i) {
    work.Put(i % options.keys, /*taint=*/false);
  }
  if (work.ops_committed != options.ops_before) {
    cell.note = "warm-up failed";
    return cell;
  }

  // Crash the host after every stride-th device write (self re-arming)
  // and keep the workload coming.
  store.host_device()->CrashAfterWrites(stride);
  for (size_t i = 0; i < options.ops_per_run; ++i) {
    work.DisarmIfSpent();
    if (!work.RemountIfNeeded()) {
      break;
    }
    size_t key = static_cast<size_t>(rng.NextBounded(options.keys));
    switch (rng.NextBounded(4)) {
      case 0:
      case 1:
        work.Put(key, /*taint=*/false);
        break;
      case 2:
        work.Get(key, /*corrupting_window=*/false);
        break;
      default:
        work.Delete(key);
        break;
    }
    if (work.mount_failures != 0) {
      break;
    }
  }

  // Honest epilogue: disarm, force a final remount (replaying whatever the
  // last crash left in the journal), verify every key against the oracle,
  // and prove the store carries fresh work.
  store.host_device()->CrashAfterWrites(0);
  bool epilogue_ok = work.Remount();
  if (epilogue_ok) {
    for (size_t key = 0; key < options.keys; ++key) {
      work.Get(key, /*corrupting_window=*/false);
    }
    epilogue_ok = work.ProveFullService();
  }

  cell.crashes = store.host_device()->stats().crashes;
  cell.remounts = store.stats().remounts;
  cell.journal_replays = store.fs()->stats().journal_replays;
  cell.ops_attempted = work.ops_attempted;
  cell.ops_committed = work.ops_committed;
  cell.lost_committed = work.lost_committed;
  cell.wrong_values = work.wrong_values;
  cell.tamper_alarms = work.unexpected_tampered + work.tampered_reads;
  cell.mount_failures = work.mount_failures;
  cell.note = work.note;
  cell.survived = epilogue_ok && !work.Violated() &&
                  work.tampered_reads == 0 && cell.crashes > 0;
  if (cell.survived) {
    cell.note = "all committed ops durable across " +
                std::to_string(cell.crashes) + " crashes";
  } else if (cell.crashes == 0 && cell.note.empty()) {
    cell.note = "crash never fired";
  }
  return cell;
}

std::vector<StorageCrashCell> RunStorageCrashCampaign(
    const StorageCampaignOptions& options) {
  std::vector<StorageCrashCell> cells;
  for (uint64_t stride : options.crash_strides) {
    cells.push_back(RunStorageCrashCell(stride, options));
  }
  return cells;
}

StorageFaultCell RunStorageFaultCell(ciohost::FaultStrategy fault,
                                     const StorageCampaignOptions& options) {
  StorageFaultCell cell;
  cell.fault = fault;
  StorageWorld world(options.seed * 131 + static_cast<uint64_t>(fault),
                     /*durable_generations=*/true);
  cioblock::ConfidentialStore& store = *world.store;
  if (!store.Format().ok()) {
    cell.note = "format failed";
    return cell;
  }
  Workload work(store, options.keys, /*budget=*/0);
  ciobase::Rng rng(options.seed * 11 + static_cast<uint64_t>(fault));

  for (size_t i = 0; i < options.ops_before; ++i) {
    work.Put(i % options.keys, /*taint=*/false);
  }
  if (work.ops_committed != options.ops_before) {
    cell.note = "warm-up failed";
    return cell;
  }

  // Open the fault window and keep the workload coming through it. Ops
  // block inside the ring retry machinery until the window closes, so most
  // of the window is consumed by the first few ops.
  const uint64_t window_start = world.clock.now_ns();
  const uint64_t window_end = window_start + options.fault_duration_ns;
  world.adversary.InjectFault(
      {fault, window_start, options.fault_duration_ns});
  const bool corrupts = fault == ciohost::FaultStrategy::kTornWrite ||
                        fault == ciohost::FaultStrategy::kBitRot;
  for (size_t i = 0; i < options.ops_per_run; ++i) {
    bool in_window = world.clock.now_ns() < window_end;
    size_t key = static_cast<size_t>(rng.NextBounded(options.keys));
    switch (rng.NextBounded(4)) {
      case 0:
      case 1:
        work.Put(key, in_window &&
                          fault == ciohost::FaultStrategy::kTornWrite);
        break;
      case 2:
        work.Get(key, in_window && corrupts);
        break;
      default:
        work.Delete(key);
        break;
    }
  }
  // Make sure the window is over before judging recovery.
  if (world.clock.now_ns() < window_end) {
    world.clock.Advance(window_end - world.clock.now_ns());
  }

  // The host is honest again: full service must come back (rewriting every
  // key also clears torn-write taint), and a remount against the healed
  // image must succeed.
  bool recovered = work.ProveFullService() && work.Remount();
  if (recovered) {
    for (size_t key = 0; key < options.keys; ++key) {
      work.Get(key, /*corrupting_window=*/false);
    }
    for (size_t i = 0; i < options.ops_after && recovered; ++i) {
      size_t key = static_cast<size_t>(rng.NextBounded(options.keys));
      work.Put(key, /*taint=*/false);
      recovered = work.ops_committed > 0 && work.note.empty();
    }
  }

  cell.fault_events = world.adversary.fault_events();
  cell.ring_resets = store.ring_client()->stats().ring_resets;
  cell.watchdog_fires = store.ring_client()->stats().watchdog_fires;
  cell.ops_attempted = work.ops_attempted;
  cell.ops_committed = work.ops_committed;
  cell.wrong_values = work.wrong_values;
  cell.lost_committed = work.lost_committed;
  cell.tampered_reads = work.tampered_reads;
  cell.note = work.note;
  cell.recovered = recovered && !work.Violated();
  if (cell.recovered && cell.note.empty()) {
    cell.note = "full service restored";
  }
  return cell;
}

std::vector<StorageFaultCell> RunStorageFaultCampaign(
    const StorageCampaignOptions& options) {
  std::vector<StorageFaultCell> cells;
  for (ciohost::FaultStrategy fault : options.faults) {
    cells.push_back(RunStorageFaultCell(fault, options));
  }
  return cells;
}

StorageRollbackResult RunStorageRollbackProbe(bool durable_generations) {
  StorageRollbackResult result;
  result.durable_generations = durable_generations;
  StorageWorld world(1234, durable_generations);
  cioblock::ConfidentialStore& store = *world.store;
  if (!store.Format().ok()) {
    return result;
  }
  ciobase::Buffer v1 = MakeValue(0, 1);
  ciobase::Buffer v2 = MakeValue(0, 2);
  if (!store.Put("victim", v1).ok()) {
    return result;
  }
  store.host_device()->SnapshotImage();  // host keeps yesterday's image
  if (!store.Put("victim", v2).ok()) {
    return result;
  }
  store.host_device()->RestoreSnapshot();  // ...and serves it back

  // In-session: the generation map still expects v2's generation.
  auto read = store.Get("victim");
  result.read_detected =
      !read.ok() && read.status().code() == ciobase::StatusCode::kTampered;

  // Cross-session: remount against the rolled-back image.
  ciobase::Status remount = store.Remount();
  if (remount.code() == ciobase::StatusCode::kTampered) {
    result.remount_detected = true;
  } else if (remount.ok()) {
    auto stale = store.Get("victim");
    result.stale_accepted = stale.ok() && *stale == v1;
  }
  return result;
}

std::string StorageCrashTable(const std::vector<StorageCrashCell>& cells) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-8s %-9s %7s %8s %8s %9s %5s %6s  %s\n",
                "stride", "survived", "crashes", "remounts", "replays",
                "committed", "lost", "wrong", "note");
  out += line;
  out += std::string(100, '-') + "\n";
  for (const auto& cell : cells) {
    std::snprintf(
        line, sizeof(line),
        "%-8llu %-9s %7llu %8llu %8llu %6zu/%zu %5llu %6llu  %s\n",
        static_cast<unsigned long long>(cell.stride),
        cell.survived ? "yes" : "LOST",
        static_cast<unsigned long long>(cell.crashes),
        static_cast<unsigned long long>(cell.remounts),
        static_cast<unsigned long long>(cell.journal_replays),
        cell.ops_committed, cell.ops_attempted,
        static_cast<unsigned long long>(cell.lost_committed),
        static_cast<unsigned long long>(cell.wrong_values),
        cell.note.c_str());
    out += line;
  }
  return out;
}

std::string StorageFaultTable(const std::vector<StorageFaultCell>& cells) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-18s %-9s %7s %7s %9s %5s %6s %8s  %s\n", "fault",
                "recovered", "events", "resets", "committed", "lost",
                "wrong", "tampered", "note");
  out += line;
  out += std::string(100, '-') + "\n";
  for (const auto& cell : cells) {
    std::snprintf(
        line, sizeof(line),
        "%-18s %-9s %7llu %7llu %6zu/%zu %5llu %6llu %8llu  %s\n",
        std::string(ciohost::FaultStrategyName(cell.fault)).c_str(),
        cell.recovered ? "yes" : "WEDGED",
        static_cast<unsigned long long>(cell.fault_events),
        static_cast<unsigned long long>(cell.ring_resets),
        cell.ops_committed, cell.ops_attempted,
        static_cast<unsigned long long>(cell.lost_committed),
        static_cast<unsigned long long>(cell.wrong_values),
        static_cast<unsigned long long>(cell.tampered_reads),
        cell.note.c_str());
    out += line;
  }
  return out;
}

bool StorageInvariantsHold(const std::vector<StorageCrashCell>& crash_cells,
                           const std::vector<StorageFaultCell>& fault_cells,
                           const StorageRollbackResult& durable_probe,
                           const StorageRollbackResult& volatile_probe) {
  for (const auto& cell : crash_cells) {
    if (!cell.survived) {
      return false;
    }
  }
  for (const auto& cell : fault_cells) {
    if (!cell.recovered || cell.fault_events == 0 ||
        cell.wrong_values != 0 || cell.lost_committed != 0) {
      return false;
    }
  }
  // Durable generations must catch the rollback both ways; the volatile
  // control arm must catch it in-session but accept the stale image after
  // remount — proving the probe discriminates and durability closes it.
  return durable_probe.read_detected && durable_probe.remount_detected &&
         !durable_probe.stale_accepted && volatile_probe.read_detected &&
         volatile_probe.stale_accepted && !volatile_probe.remount_detected;
}

}  // namespace cio
