// BufferPool: the registered sealed-buffer pool behind the L5 async
// datapath (SQ/CQ, see src/cio/sqcq.h).
//
// The pool is a fixed array of equally sized slots carved out of ONE
// long-lived allocation in the I/O compartment's heap, registered once at
// channel construction (trusted-component-allocates, amortized over the
// channel's lifetime instead of paid per message). The guest seals TLS
// records directly into free slots and references them from submission
// entries by index; the I/O stack transmits from them in place and fills
// them on receive. Slot indices are the only currency that crosses the
// boundary — never pointers — so nothing the I/O side (or the host behind
// it) says can direct an access outside the registered region.
//
// Free-list bookkeeping is app-private: the I/O side never allocates or
// frees slots, it only reads/writes the spans named by submitted entries.

#ifndef SRC_CIO_BUFFER_POOL_H_
#define SRC_CIO_BUFFER_POOL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/bytes.h"

namespace cio {

class BufferPool {
 public:
  BufferPool() = default;

  // `region` must hold at least `slots * slot_size` bytes; the pool indexes
  // into it and never reallocates.
  void Init(ciobase::MutableByteSpan region, uint32_t slots,
            uint32_t slot_size);

  bool ready() const { return slot_size_ != 0; }
  uint32_t slots() const { return slots_; }
  uint32_t slot_size() const { return slot_size_; }
  size_t free_slots() const { return free_.size(); }

  // Returns a free slot index, or nullopt when the pool is exhausted
  // (backpressure: the caller keeps its bytes and retries after reaping).
  std::optional<uint16_t> Acquire();
  void Release(uint16_t slot);

  // The slot's backing bytes. Indices are masked into range, so even a
  // corrupted index can only alias another slot, never escape the region.
  ciobase::MutableByteSpan SlotSpan(uint16_t slot);

 private:
  ciobase::MutableByteSpan region_;
  uint32_t slots_ = 0;
  uint32_t slot_size_ = 0;
  std::vector<uint16_t> free_;        // LIFO free list
  std::vector<uint8_t> acquired_;     // double-free guard
};

}  // namespace cio

#endif  // SRC_CIO_BUFFER_POOL_H_
