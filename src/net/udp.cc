#include "src/net/udp.h"

namespace cionet {

ciobase::Buffer BuildUdpDatagram(Ipv4Address src_ip, Ipv4Address dst_ip,
                                 uint16_t src_port, uint16_t dst_port,
                                 ciobase::ByteSpan payload) {
  ciobase::Buffer out;
  UdpHeader header;
  header.src_port = src_port;
  header.dst_port = dst_port;
  header.length = static_cast<uint16_t>(kUdpHeaderSize + payload.size());
  header.Serialize(out);
  ciobase::Append(out, payload);
  uint16_t checksum = TransportChecksum(src_ip, dst_ip, kIpProtoUdp, out);
  if (checksum == 0) {
    checksum = 0xffff;  // RFC 768: transmitted zero means "no checksum"
  }
  ciobase::StoreBe16(out.data() + 6, checksum);
  return out;
}

ciobase::Result<ParsedUdp> ParseUdpDatagram(Ipv4Address src_ip,
                                            Ipv4Address dst_ip,
                                            ciobase::ByteSpan datagram) {
  auto header = UdpHeader::Parse(datagram);
  if (!header.ok()) {
    return header.status();
  }
  uint16_t wire_checksum = ciobase::LoadBe16(datagram.data() + 6);
  if (wire_checksum != 0) {
    if (TransportChecksum(src_ip, dst_ip, kIpProtoUdp,
                          datagram.first(header->length)) != 0) {
      return ciobase::Tampered("UDP checksum mismatch");
    }
  }
  ParsedUdp parsed;
  parsed.header = *header;
  parsed.payload.assign(datagram.begin() + kUdpHeaderSize,
                        datagram.begin() + header->length);
  return parsed;
}

}  // namespace cionet
