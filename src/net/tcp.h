// TCP (RFC 793 subset with modern congestion control).
//
// Implemented features: three-way handshake (active and passive open),
// sliding-window flow control with advertised receive windows, cumulative
// ACKs, out-of-order segment queueing, retransmission with RFC 6298 RTO
// estimation and exponential backoff, fast retransmit on three duplicate
// ACKs, slow start / congestion avoidance (AIMD), MSS negotiation via the
// SYN option, graceful close (FIN in both directions, TIME_WAIT), and RST
// generation/handling.
//
// Not implemented (documented limits): SACK, window scaling (the receive
// buffer is capped at 64 KiB), timestamps, Nagle (we always send when
// window and cwnd allow), and urgent data.
//
// A TcpConnection is a pure state machine: segments in, segments out, no
// I/O of its own. The NetStack feeds it parsed segments and drains its
// output queue into IPv4 packets.

#ifndef SRC_NET_TCP_H_
#define SRC_NET_TCP_H_

#include <deque>
#include <map>
#include <vector>

#include "src/base/clock.h"
#include "src/base/status.h"
#include "src/net/wire.h"

namespace cionet {

enum class TcpState {
  kClosed,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

std::string_view TcpStateName(TcpState state);

struct TcpEndpointId {
  Ipv4Address local_ip;
  uint16_t local_port = 0;
  Ipv4Address remote_ip;
  uint16_t remote_port = 0;
  auto operator<=>(const TcpEndpointId&) const = default;
};

class TcpConnection {
 public:
  struct Tuning {
    size_t send_buffer_limit = 256 * 1024;
    size_t receive_buffer_limit = 64 * 1024;  // also the max window
    uint64_t initial_rto_ns = 200'000'000;    // 200 ms
    uint64_t min_rto_ns = 50'000'000;
    uint64_t max_rto_ns = 4'000'000'000;
    int max_retries = 8;
    uint64_t time_wait_ns = 1'000'000'000;  // shortened 2*MSL for simulation
    size_t max_ooo_segments = 64;
  };

  // Active open: emits the SYN immediately.
  static TcpConnection ActiveOpen(ciobase::SimClock* clock,
                                  TcpEndpointId endpoints, uint16_t mss,
                                  uint32_t iss, Tuning tuning);
  static TcpConnection ActiveOpen(ciobase::SimClock* clock,
                                  TcpEndpointId endpoints, uint16_t mss,
                                  uint32_t iss);
  // Passive open from a received SYN: emits the SYN-ACK.
  static TcpConnection PassiveOpen(ciobase::SimClock* clock,
                                   TcpEndpointId endpoints, uint16_t mss,
                                   uint32_t iss, const TcpHeader& syn,
                                   Tuning tuning);
  static TcpConnection PassiveOpen(ciobase::SimClock* clock,
                                   TcpEndpointId endpoints, uint16_t mss,
                                   uint32_t iss, const TcpHeader& syn);

  // --- Input from the network ----------------------------------------------

  void OnSegment(const TcpHeader& header, ciobase::ByteSpan payload);
  // Drives retransmission and TIME_WAIT timers; call regularly.
  void PollTimers();

  // Full TCP segments (header + payload, checksummed) ready to transmit.
  std::vector<ciobase::Buffer> TakeOutput();

  // --- Application interface ------------------------------------------------

  // Buffers bytes for transmission; returns the number accepted (possibly
  // less than requested when the send buffer is full, 0 when closed for
  // sending).
  ciobase::Result<size_t> Send(ciobase::ByteSpan data);
  // Reads received in-order bytes; kUnavailable when none (yet), 0 bytes at
  // orderly EOF (peer FIN drained).
  ciobase::Result<size_t> Receive(ciobase::MutableByteSpan out);
  // Graceful close: FIN after all buffered data.
  void Close();
  // Abortive close: RST now.
  void Abort();

  TcpState state() const { return state_; }
  // EOF counts as readable (select semantics): a received FIN must wake the
  // poll gate so the next Receive can report it — otherwise a quiesced
  // peer's orderly close is never noticed.
  bool readable() const {
    return !receive_buffer_.empty() || peer_fin_received_;
  }
  size_t send_space() const {
    return tuning_.send_buffer_limit - send_buffer_.size();
  }
  bool failed() const { return failed_; }
  const std::string& failure() const { return failure_; }
  const TcpEndpointId& endpoints() const { return endpoints_; }

  // True once the connection has fully left the map-worthy lifetime
  // (CLOSED after RST/retry exhaustion or TIME_WAIT expiry).
  bool Defunct() const { return state_ == TcpState::kClosed; }

  struct Stats {
    uint64_t segments_sent = 0;
    uint64_t segments_received = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    uint64_t retransmissions = 0;
    uint64_t fast_retransmits = 0;
    uint64_t timeouts = 0;
    uint64_t dup_acks = 0;
    uint64_t ooo_segments = 0;
  };
  const Stats& stats() const { return stats_; }
  uint32_t cwnd() const { return cwnd_; }
  uint64_t current_rto_ns() const { return rto_ns_; }

 private:
  TcpConnection(ciobase::SimClock* clock, TcpEndpointId endpoints,
                uint16_t mss, uint32_t iss, Tuning tuning);

  void EmitSegment(uint8_t flags, uint32_t seq, ciobase::ByteSpan payload,
                   uint16_t mss_option = 0);
  void EmitAck();
  void EmitRst(uint32_t seq);
  void TrySendData();
  void HandleAck(const TcpHeader& header);
  void HandleData(const TcpHeader& header, ciobase::ByteSpan payload);
  void ProcessFin(uint32_t fin_seq);
  void MaybeSendFin();
  void RetransmitHead();
  void EnterTimeWait();
  void Fail(std::string reason);
  void ArmRetransmitTimer();
  uint16_t AdvertisedWindow() const;
  size_t InFlight() const { return snd_nxt_ - snd_una_; }

  ciobase::SimClock* clock_;
  TcpEndpointId endpoints_;
  Tuning tuning_;
  TcpState state_ = TcpState::kClosed;
  bool failed_ = false;
  std::string failure_;

  uint16_t mss_;

  // Send side. send_buffer_ holds [snd_una, snd_una + size): the in-flight
  // prefix plus not-yet-sent suffix.
  uint32_t iss_;
  uint32_t snd_una_;
  uint32_t snd_nxt_;
  uint32_t snd_wnd_ = 0;  // peer's advertised window
  std::deque<uint8_t> send_buffer_;
  bool fin_queued_ = false;  // app closed; FIN goes out after data
  bool fin_sent_ = false;
  uint32_t fin_seq_ = 0;

  // Congestion control.
  uint32_t cwnd_;
  uint32_t ssthresh_ = 64 * 1024;
  int dup_ack_count_ = 0;

  // RTO (RFC 6298).
  uint64_t rto_ns_;
  bool rtt_valid_ = false;
  double srtt_ns_ = 0;
  double rttvar_ns_ = 0;
  bool rtt_sampling_ = false;
  uint32_t rtt_sample_seq_ = 0;
  uint64_t rtt_sample_start_ns_ = 0;

  uint64_t retransmit_deadline_ns_ = 0;  // 0 = timer off
  int retries_ = 0;

  // Receive side.
  uint32_t rcv_nxt_ = 0;
  std::deque<uint8_t> receive_buffer_;
  std::map<uint32_t, ciobase::Buffer> out_of_order_;  // seq -> payload
  bool peer_fin_received_ = false;
  uint32_t peer_fin_seq_ = 0;
  bool peer_fin_drained_ = false;  // FIN consumed into the stream (EOF)

  uint64_t time_wait_deadline_ns_ = 0;

  std::vector<ciobase::Buffer> output_;
  Stats stats_;
};

}  // namespace cionet

#endif  // SRC_NET_TCP_H_
