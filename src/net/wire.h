// Wire formats: Ethernet, ARP, IPv4, UDP, TCP headers, addresses, checksums.
//
// The TEE's own network stack (§2.4: "almost all high-performance approaches
// work at layer 2, exchanging raw Ethernet packets, processed by the TEE's
// own I/O stack") is built on these parsers. All parsing is
// bounds-checked and total: malformed input yields a Status, never UB —
// the stack sits directly behind the L2 trust boundary and every byte it
// parses is attacker-controlled.

#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/base/bytes.h"
#include "src/base/status.h"

namespace cionet {

// --- Addresses --------------------------------------------------------------

struct MacAddress {
  std::array<uint8_t, 6> bytes{};

  bool operator==(const MacAddress&) const = default;
  bool IsBroadcast() const {
    return *this == Broadcast();
  }
  static MacAddress Broadcast() {
    return MacAddress{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }
  // Locally administered unicast address derived from an id.
  static MacAddress FromId(uint32_t id);
  std::string ToString() const;
};

struct Ipv4Address {
  uint32_t value = 0;  // host byte order

  bool operator==(const Ipv4Address&) const = default;
  auto operator<=>(const Ipv4Address&) const = default;
  static Ipv4Address FromOctets(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
    return Ipv4Address{static_cast<uint32_t>(a) << 24 |
                       static_cast<uint32_t>(b) << 16 |
                       static_cast<uint32_t>(c) << 8 | d};
  }
  std::string ToString() const;
};

// --- Ethernet ---------------------------------------------------------------

inline constexpr size_t kEthernetHeaderSize = 14;
inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr uint16_t kEtherTypeArp = 0x0806;

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  uint16_t ether_type = 0;

  void Serialize(ciobase::Buffer& out) const;
  static ciobase::Result<EthernetHeader> Parse(ciobase::ByteSpan frame);
};

// --- ARP (IPv4-over-Ethernet only) ------------------------------------------

inline constexpr size_t kArpPacketSize = 28;
inline constexpr uint16_t kArpOpRequest = 1;
inline constexpr uint16_t kArpOpReply = 2;

struct ArpPacket {
  uint16_t op = 0;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;
  Ipv4Address target_ip;

  void Serialize(ciobase::Buffer& out) const;
  static ciobase::Result<ArpPacket> Parse(ciobase::ByteSpan payload);
};

// --- IPv4 -------------------------------------------------------------------

inline constexpr size_t kIpv4HeaderSize = 20;  // no options
inline constexpr uint8_t kIpProtoTcp = 6;
inline constexpr uint8_t kIpProtoUdp = 17;
inline constexpr uint16_t kIpv4FlagDontFragment = 0x4000;
inline constexpr uint16_t kIpv4FlagMoreFragments = 0x2000;

struct Ipv4Header {
  uint8_t tos = 0;
  uint16_t total_length = 0;
  uint16_t identification = 0;
  uint16_t flags_fragment = 0;  // flags in top 3 bits, offset (in 8B) below
  uint8_t ttl = 64;
  uint8_t protocol = 0;
  Ipv4Address src;
  Ipv4Address dst;

  uint16_t FragmentOffsetBytes() const {
    return static_cast<uint16_t>((flags_fragment & 0x1fff) * 8);
  }
  bool MoreFragments() const {
    return (flags_fragment & kIpv4FlagMoreFragments) != 0;
  }

  // Serializes with a correct header checksum.
  void Serialize(ciobase::Buffer& out) const;
  // Parses and verifies the header checksum.
  static ciobase::Result<Ipv4Header> Parse(ciobase::ByteSpan packet);
};

// --- UDP --------------------------------------------------------------------

inline constexpr size_t kUdpHeaderSize = 8;

struct UdpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint16_t length = 0;  // header + payload

  void Serialize(ciobase::Buffer& out) const;
  static ciobase::Result<UdpHeader> Parse(ciobase::ByteSpan datagram);
};

// --- TCP --------------------------------------------------------------------

inline constexpr size_t kTcpHeaderSize = 20;  // no options beyond MSS on SYN
inline constexpr uint8_t kTcpFlagFin = 0x01;
inline constexpr uint8_t kTcpFlagSyn = 0x02;
inline constexpr uint8_t kTcpFlagRst = 0x04;
inline constexpr uint8_t kTcpFlagPsh = 0x08;
inline constexpr uint8_t kTcpFlagAck = 0x10;

struct TcpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t data_offset = 5;  // 32-bit words
  uint8_t flags = 0;
  uint16_t window = 0;
  uint16_t mss_option = 0;  // nonzero => include MSS option (SYN segments)

  size_t HeaderBytes() const { return static_cast<size_t>(data_offset) * 4; }

  void Serialize(ciobase::Buffer& out) const;
  static ciobase::Result<TcpHeader> Parse(ciobase::ByteSpan segment);
};

// --- Checksums --------------------------------------------------------------

// RFC 1071 internet checksum over `data` starting from `initial` (e.g. a
// pseudo-header partial sum).
uint16_t InternetChecksum(ciobase::ByteSpan data, uint32_t initial = 0);

// Partial (un-folded) sum of the IPv4 pseudo header for TCP/UDP checksums.
uint32_t PseudoHeaderSum(Ipv4Address src, Ipv4Address dst, uint8_t protocol,
                         uint16_t length);

// Computes the TCP/UDP checksum over header+payload with the pseudo header.
uint16_t TransportChecksum(Ipv4Address src, Ipv4Address dst, uint8_t protocol,
                           ciobase::ByteSpan segment);

// Sequence-number arithmetic (RFC 793 modular comparison).
inline bool SeqLt(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) < 0;
}
inline bool SeqLe(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) <= 0;
}
inline bool SeqGt(uint32_t a, uint32_t b) { return SeqLt(b, a); }
inline bool SeqGe(uint32_t a, uint32_t b) { return SeqLe(b, a); }

}  // namespace cionet

#endif  // SRC_NET_WIRE_H_
