#include "src/net/fabric.h"

namespace cionet {

EndpointId Fabric::Attach(std::string name, MacAddress mac) {
  endpoints_.push_back(Endpoint{std::move(name), mac, {}, true});
  return EndpointId{static_cast<uint32_t>(endpoints_.size() - 1)};
}

void Fabric::Detach(EndpointId endpoint) {
  if (endpoint.value < endpoints_.size()) {
    endpoints_[endpoint.value].attached = false;
    endpoints_[endpoint.value].queue.clear();
  }
}

void Fabric::Deliver(EndpointId from, Endpoint& to, ciobase::ByteSpan frame) {
  if (rng_.NextBool(options_.loss_probability)) {
    ++stats_.frames_dropped_loss;
    return;
  }
  PendingFrame pending{clock_->now_ns() + options_.latency_ns,
                       ciobase::Buffer(frame.begin(), frame.end())};
  if (!to.queue.empty() && rng_.NextBool(options_.reorder_probability)) {
    // Swap with the most recent queued frame: a simple one-step reorder.
    to.queue.insert(to.queue.end() - 1, std::move(pending));
    ++stats_.frames_reordered;
  } else {
    to.queue.push_back(std::move(pending));
  }
  ++stats_.frames_routed;
  stats_.bytes_routed += frame.size();
  if (capture_enabled_) {
    EndpointId to_id{static_cast<uint32_t>(&to - endpoints_.data())};
    capture_.push_back(CapturedFrame{clock_->now_ns(), from, to_id,
                                     ciobase::Buffer(frame.begin(),
                                                     frame.end())});
  }
}

ciobase::Status Fabric::Inject(EndpointId from, ciobase::ByteSpan frame) {
  if (frame.size() > options_.max_frame) {
    ++stats_.frames_dropped_oversize;
    return ciobase::InvalidArgument("oversize frame");
  }
  auto header = EthernetHeader::Parse(frame);
  if (!header.ok()) {
    ++stats_.frames_dropped_unknown;
    return header.status();
  }
  if (header->dst.IsBroadcast()) {
    for (size_t i = 0; i < endpoints_.size(); ++i) {
      if (i != from.value && endpoints_[i].attached) {
        Deliver(from, endpoints_[i], frame);
      }
    }
    return ciobase::OkStatus();
  }
  // Several endpoints may share one MAC (a guest with two queues/devices,
  // RSS-style). Spread unicast traffic across them round-robin — the
  // deterministic stand-in for a receive-side hash.
  rss_scratch_.clear();
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    if (endpoints_[i].attached && endpoints_[i].mac == header->dst) {
      rss_scratch_.push_back(i);
    }
  }
  if (!rss_scratch_.empty()) {
    size_t pick = rss_scratch_[rss_round_++ % rss_scratch_.size()];
    Deliver(from, endpoints_[pick], frame);
    return ciobase::OkStatus();
  }
  ++stats_.frames_dropped_unknown;
  return ciobase::OkStatus();  // unknown unicast: silently dropped
}

ciobase::Result<ciobase::Buffer> Fabric::Poll(EndpointId endpoint) {
  Endpoint& ep = endpoints_[endpoint.value];
  if (ep.queue.empty() ||
      ep.queue.front().deliver_at_ns > clock_->now_ns()) {
    return ciobase::Unavailable("no frame");
  }
  ciobase::Buffer frame = std::move(ep.queue.front().frame);
  ep.queue.pop_front();
  return frame;
}

}  // namespace cionet
