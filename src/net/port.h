// FramePort: the L2 interface the TEE's network stack drives.
//
// Implementations are the different confidential I/O transports this
// repository compares: the virtio-net guest driver (baseline), the paper's
// hardened L2 transport (cio::L2Transport), and a trusted DirectFabricPort
// used for unit-testing the stack without any host in the way.
//
// The datapath has exactly two entry points — batched SendFrames and
// ReceiveFrames — so the single-fetch validation discipline is implemented
// (and audited) in one place per transport. A "single" frame is a batch of
// size one; the SendOne/ReceiveOne helpers below provide that sugar for
// tests and examples. Ring-backed transports read the host counters once per
// batch, publish produced/consumed pointers once, and coalesce the doorbell
// into a single kick (virtio-style event suppression). Batching must never
// change what bytes arrive — only how often the shared ring is touched.
//
// Result conventions (the unified Status datapath API):
//   Ok(n)       n frames moved; Ok(0) from ReceiveFrames means nothing is
//               pending right now — not an error.
//   kTimedOut   the transport's watchdog expired and its reset budget is
//               exhausted; the link is dead.
//   kLinkReset  the transport reset and reattached its ring during this
//               call; frames in flight on the old ring are gone. Callers
//               above TCP need no action (retransmission catches up).

#ifndef SRC_NET_PORT_H_
#define SRC_NET_PORT_H_

#include <span>
#include <utility>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/status.h"
#include "src/net/wire.h"

namespace cionet {

// A reusable batch of received frames. Clear() resets the count but keeps
// every Buffer's capacity, so a FrameBatch that lives across poll rounds
// reaches a zero-allocation steady state.
class FrameBatch {
 public:
  void Clear() { count_ = 0; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  ciobase::ByteSpan operator[](size_t i) const {
    return ciobase::ByteSpan(frames_[i].data(), frames_[i].size());
  }

  // Opens a new slot and returns its reusable Buffer (cleared, capacity
  // retained). The caller fills it with exactly one frame.
  ciobase::Buffer& Append() {
    if (count_ == frames_.size()) {
      frames_.emplace_back();
    }
    ciobase::Buffer& slot = frames_[count_++];
    slot.clear();
    return slot;
  }

  // Discards the most recently appended slot (its capacity stays pooled).
  // Used when a slot turns out to hold a dropped frame.
  void DropLast() {
    if (count_ > 0) {
      --count_;
    }
  }

  // Moves a ready frame into the batch (per-frame fallback path).
  void Push(ciobase::Buffer frame) {
    if (count_ == frames_.size()) {
      frames_.push_back(std::move(frame));
      ++count_;
    } else {
      frames_[count_++] = std::move(frame);
    }
  }

 private:
  std::vector<ciobase::Buffer> frames_;
  size_t count_ = 0;
};

class FramePort {
 public:
  virtual ~FramePort() = default;

  // Sends frames in order, stopping at the first one the port rejects (ring
  // full, oversized). Returns how many were accepted; if the very first
  // frame is rejected, returns the rejecting status instead, so callers see
  // *why* the link is not moving. Ok(0) only for an empty input span.
  virtual ciobase::Result<size_t> SendFrames(
      std::span<const ciobase::ByteSpan> frames) = 0;

  // Clears `batch` and fills it with up to `max_frames` pending frames.
  // Returns the number received — Ok(0) when none are pending — or kTimedOut
  // / kLinkReset per the conventions above.
  virtual ciobase::Result<size_t> ReceiveFrames(FrameBatch& batch,
                                                size_t max_frames) = 0;

  virtual MacAddress mac() const = 0;
  virtual uint16_t mtu() const = 0;
};

// Sends a single frame as a batch of one. Ok only if the frame was accepted.
inline ciobase::Status SendOne(FramePort& port, ciobase::ByteSpan frame) {
  ciobase::Result<size_t> sent = port.SendFrames({&frame, 1});
  if (!sent.ok()) {
    return sent.status();
  }
  return *sent == 1 ? ciobase::OkStatus()
                    : ciobase::ResourceExhausted("frame not accepted");
}

// Receives a single frame as a batch of one. kUnavailable when none is
// pending; other codes pass through. Allocates a fresh batch per call, so
// this is for tests/examples — hot paths keep a FrameBatch of their own.
inline ciobase::Result<ciobase::Buffer> ReceiveOne(FramePort& port) {
  FrameBatch batch;
  ciobase::Result<size_t> got = port.ReceiveFrames(batch, 1);
  if (!got.ok()) {
    return got.status();
  }
  if (*got == 0) {
    return ciobase::Unavailable("no frame pending");
  }
  ciobase::ByteSpan frame = batch[0];
  return ciobase::Buffer(frame.begin(), frame.end());
}

}  // namespace cionet

#endif  // SRC_NET_PORT_H_
