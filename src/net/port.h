// FramePort: the L2 interface the TEE's network stack drives.
//
// Implementations are the different confidential I/O transports this
// repository compares: the virtio-net guest driver (baseline), the paper's
// hardened L2 transport (cio::L2Transport), and a trusted DirectFabricPort
// used for unit-testing the stack without any host in the way.
//
// Besides the per-frame SendFrame/ReceiveFrame pair, ports expose batched
// SendFrames/ReceiveFrames entry points. The defaults are plain per-frame
// loops, so every port is batch-correct by construction; transports that talk
// to a host ring override them to read the host counters once per batch,
// publish produced/consumed pointers once, and coalesce the doorbell into a
// single kick (virtio-style event suppression). Batching must never change
// what bytes arrive — only how often the shared ring is touched.

#ifndef SRC_NET_PORT_H_
#define SRC_NET_PORT_H_

#include <span>
#include <utility>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/status.h"
#include "src/net/wire.h"

namespace cionet {

// A reusable batch of received frames. Clear() resets the count but keeps
// every Buffer's capacity, so a FrameBatch that lives across poll rounds
// reaches a zero-allocation steady state.
class FrameBatch {
 public:
  void Clear() { count_ = 0; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  ciobase::ByteSpan operator[](size_t i) const {
    return ciobase::ByteSpan(frames_[i].data(), frames_[i].size());
  }

  // Opens a new slot and returns its reusable Buffer (cleared, capacity
  // retained). The caller fills it with exactly one frame.
  ciobase::Buffer& Append() {
    if (count_ == frames_.size()) {
      frames_.emplace_back();
    }
    ciobase::Buffer& slot = frames_[count_++];
    slot.clear();
    return slot;
  }

  // Discards the most recently appended slot (its capacity stays pooled).
  // Used when a slot turns out to hold a dropped frame.
  void DropLast() {
    if (count_ > 0) {
      --count_;
    }
  }

  // Moves a ready frame into the batch (per-frame fallback path).
  void Push(ciobase::Buffer frame) {
    if (count_ == frames_.size()) {
      frames_.push_back(std::move(frame));
      ++count_;
    } else {
      frames_[count_++] = std::move(frame);
    }
  }

 private:
  std::vector<ciobase::Buffer> frames_;
  size_t count_ = 0;
};

class FramePort {
 public:
  virtual ~FramePort() = default;

  // Queues one Ethernet frame for transmission. Frames larger than the MTU
  // plus the Ethernet header are rejected.
  virtual ciobase::Status SendFrame(ciobase::ByteSpan frame) = 0;

  // Returns the next received frame, or kUnavailable when none is pending.
  virtual ciobase::Result<ciobase::Buffer> ReceiveFrame() = 0;

  // Sends frames in order, stopping at the first one the port rejects
  // (ring full, oversized). Returns how many were accepted. The default is a
  // per-frame loop; ring-backed ports override it to touch the shared ring
  // once per batch and fire at most one doorbell.
  virtual size_t SendFrames(std::span<const ciobase::ByteSpan> frames) {
    size_t sent = 0;
    for (ciobase::ByteSpan frame : frames) {
      if (!SendFrame(frame).ok()) {
        break;
      }
      ++sent;
    }
    return sent;
  }

  // Clears `batch` and fills it with up to `max_frames` pending frames.
  // Returns the number received (0 when none are pending).
  virtual size_t ReceiveFrames(FrameBatch& batch, size_t max_frames) {
    batch.Clear();
    while (batch.size() < max_frames) {
      ciobase::Result<ciobase::Buffer> frame = ReceiveFrame();
      if (!frame.ok()) {
        break;
      }
      batch.Push(std::move(*frame));
    }
    return batch.size();
  }

  virtual MacAddress mac() const = 0;
  virtual uint16_t mtu() const = 0;
};

}  // namespace cionet

#endif  // SRC_NET_PORT_H_
