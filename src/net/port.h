// FramePort: the L2 interface the TEE's network stack drives.
//
// Implementations are the different confidential I/O transports this
// repository compares: the virtio-net guest driver (baseline), the paper's
// hardened L2 transport (cio::L2Transport), and a trusted DirectFabricPort
// used for unit-testing the stack without any host in the way.

#ifndef SRC_NET_PORT_H_
#define SRC_NET_PORT_H_

#include "src/base/bytes.h"
#include "src/base/status.h"
#include "src/net/wire.h"

namespace cionet {

class FramePort {
 public:
  virtual ~FramePort() = default;

  // Queues one Ethernet frame for transmission. Frames larger than the MTU
  // plus the Ethernet header are rejected.
  virtual ciobase::Status SendFrame(ciobase::ByteSpan frame) = 0;

  // Returns the next received frame, or kUnavailable when none is pending.
  virtual ciobase::Result<ciobase::Buffer> ReceiveFrame() = 0;

  virtual MacAddress mac() const = 0;
  virtual uint16_t mtu() const = 0;
};

}  // namespace cionet

#endif  // SRC_NET_PORT_H_
