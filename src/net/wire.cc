#include "src/net/wire.h"

#include <cstdio>
#include <cstring>

namespace cionet {

MacAddress MacAddress::FromId(uint32_t id) {
  MacAddress mac;
  mac.bytes = {0x02, 0x00, static_cast<uint8_t>(id >> 24),
               static_cast<uint8_t>(id >> 16), static_cast<uint8_t>(id >> 8),
               static_cast<uint8_t>(id)};
  return mac;
}

std::string MacAddress::ToString() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

std::string Ipv4Address::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", value >> 24,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return buf;
}

// --- Ethernet ---------------------------------------------------------------

void EthernetHeader::Serialize(ciobase::Buffer& out) const {
  ciobase::Append(out, dst.bytes);
  ciobase::Append(out, src.bytes);
  uint8_t type[2];
  ciobase::StoreBe16(type, ether_type);
  ciobase::Append(out, type);
}

ciobase::Result<EthernetHeader> EthernetHeader::Parse(ciobase::ByteSpan frame) {
  if (frame.size() < kEthernetHeaderSize) {
    return ciobase::InvalidArgument("ethernet frame too short");
  }
  EthernetHeader header;
  std::memcpy(header.dst.bytes.data(), frame.data(), 6);
  std::memcpy(header.src.bytes.data(), frame.data() + 6, 6);
  header.ether_type = ciobase::LoadBe16(frame.data() + 12);
  return header;
}

// --- ARP --------------------------------------------------------------------

void ArpPacket::Serialize(ciobase::Buffer& out) const {
  size_t base = out.size();
  out.resize(base + kArpPacketSize);
  uint8_t* p = out.data() + base;
  ciobase::StoreBe16(p, 1);       // HTYPE: Ethernet
  ciobase::StoreBe16(p + 2, kEtherTypeIpv4);
  p[4] = 6;                       // HLEN
  p[5] = 4;                       // PLEN
  ciobase::StoreBe16(p + 6, op);
  std::memcpy(p + 8, sender_mac.bytes.data(), 6);
  ciobase::StoreBe32(p + 14, sender_ip.value);
  std::memcpy(p + 18, target_mac.bytes.data(), 6);
  ciobase::StoreBe32(p + 24, target_ip.value);
}

ciobase::Result<ArpPacket> ArpPacket::Parse(ciobase::ByteSpan payload) {
  if (payload.size() < kArpPacketSize) {
    return ciobase::InvalidArgument("ARP packet too short");
  }
  const uint8_t* p = payload.data();
  if (ciobase::LoadBe16(p) != 1 || ciobase::LoadBe16(p + 2) != kEtherTypeIpv4 ||
      p[4] != 6 || p[5] != 4) {
    return ciobase::InvalidArgument("unsupported ARP header");
  }
  ArpPacket arp;
  arp.op = ciobase::LoadBe16(p + 6);
  std::memcpy(arp.sender_mac.bytes.data(), p + 8, 6);
  arp.sender_ip.value = ciobase::LoadBe32(p + 14);
  std::memcpy(arp.target_mac.bytes.data(), p + 18, 6);
  arp.target_ip.value = ciobase::LoadBe32(p + 24);
  return arp;
}

// --- IPv4 -------------------------------------------------------------------

void Ipv4Header::Serialize(ciobase::Buffer& out) const {
  size_t base = out.size();
  out.resize(base + kIpv4HeaderSize);
  uint8_t* p = out.data() + base;
  p[0] = 0x45;  // version 4, IHL 5
  p[1] = tos;
  ciobase::StoreBe16(p + 2, total_length);
  ciobase::StoreBe16(p + 4, identification);
  ciobase::StoreBe16(p + 6, flags_fragment);
  p[8] = ttl;
  p[9] = protocol;
  ciobase::StoreBe16(p + 10, 0);  // checksum placeholder
  ciobase::StoreBe32(p + 12, src.value);
  ciobase::StoreBe32(p + 16, dst.value);
  uint16_t checksum =
      InternetChecksum(ciobase::ByteSpan(p, kIpv4HeaderSize));
  ciobase::StoreBe16(p + 10, checksum);
}

ciobase::Result<Ipv4Header> Ipv4Header::Parse(ciobase::ByteSpan packet) {
  if (packet.size() < kIpv4HeaderSize) {
    return ciobase::InvalidArgument("IPv4 packet too short");
  }
  const uint8_t* p = packet.data();
  if ((p[0] >> 4) != 4) {
    return ciobase::InvalidArgument("not IPv4");
  }
  size_t ihl = static_cast<size_t>(p[0] & 0xf) * 4;
  if (ihl < kIpv4HeaderSize || packet.size() < ihl) {
    return ciobase::InvalidArgument("bad IHL");
  }
  if (InternetChecksum(packet.first(ihl)) != 0) {
    return ciobase::Tampered("IPv4 header checksum mismatch");
  }
  Ipv4Header header;
  header.tos = p[1];
  header.total_length = ciobase::LoadBe16(p + 2);
  header.identification = ciobase::LoadBe16(p + 4);
  header.flags_fragment = ciobase::LoadBe16(p + 6);
  header.ttl = p[8];
  header.protocol = p[9];
  header.src.value = ciobase::LoadBe32(p + 12);
  header.dst.value = ciobase::LoadBe32(p + 16);
  if (header.total_length < ihl || header.total_length > packet.size()) {
    return ciobase::InvalidArgument("IPv4 total length out of range");
  }
  // Options (ihl > 20) are accepted and skipped by reporting the real IHL
  // via total_length handling in the stack; we reject them here for a
  // minimal, analyzable parser.
  if (ihl != kIpv4HeaderSize) {
    return ciobase::Unimplemented("IPv4 options not supported");
  }
  return header;
}

// --- UDP --------------------------------------------------------------------

void UdpHeader::Serialize(ciobase::Buffer& out) const {
  size_t base = out.size();
  out.resize(base + kUdpHeaderSize);
  uint8_t* p = out.data() + base;
  ciobase::StoreBe16(p, src_port);
  ciobase::StoreBe16(p + 2, dst_port);
  ciobase::StoreBe16(p + 4, length);
  ciobase::StoreBe16(p + 6, 0);  // checksum filled by the stack
}

ciobase::Result<UdpHeader> UdpHeader::Parse(ciobase::ByteSpan datagram) {
  if (datagram.size() < kUdpHeaderSize) {
    return ciobase::InvalidArgument("UDP datagram too short");
  }
  UdpHeader header;
  header.src_port = ciobase::LoadBe16(datagram.data());
  header.dst_port = ciobase::LoadBe16(datagram.data() + 2);
  header.length = ciobase::LoadBe16(datagram.data() + 4);
  if (header.length < kUdpHeaderSize || header.length > datagram.size()) {
    return ciobase::InvalidArgument("UDP length out of range");
  }
  return header;
}

// --- TCP --------------------------------------------------------------------

void TcpHeader::Serialize(ciobase::Buffer& out) const {
  size_t header_bytes = kTcpHeaderSize + (mss_option != 0 ? 4 : 0);
  size_t base = out.size();
  out.resize(base + header_bytes);
  uint8_t* p = out.data() + base;
  ciobase::StoreBe16(p, src_port);
  ciobase::StoreBe16(p + 2, dst_port);
  ciobase::StoreBe32(p + 4, seq);
  ciobase::StoreBe32(p + 8, ack);
  p[12] = static_cast<uint8_t>((header_bytes / 4) << 4);
  p[13] = flags;
  ciobase::StoreBe16(p + 14, window);
  ciobase::StoreBe16(p + 16, 0);  // checksum filled by the stack
  ciobase::StoreBe16(p + 18, 0);  // urgent pointer
  if (mss_option != 0) {
    p[20] = 2;  // kind: MSS
    p[21] = 4;  // length
    ciobase::StoreBe16(p + 22, mss_option);
  }
}

ciobase::Result<TcpHeader> TcpHeader::Parse(ciobase::ByteSpan segment) {
  if (segment.size() < kTcpHeaderSize) {
    return ciobase::InvalidArgument("TCP segment too short");
  }
  const uint8_t* p = segment.data();
  TcpHeader header;
  header.src_port = ciobase::LoadBe16(p);
  header.dst_port = ciobase::LoadBe16(p + 2);
  header.seq = ciobase::LoadBe32(p + 4);
  header.ack = ciobase::LoadBe32(p + 8);
  header.data_offset = p[12] >> 4;
  header.flags = p[13];
  header.window = ciobase::LoadBe16(p + 14);
  size_t header_bytes = header.HeaderBytes();
  if (header_bytes < kTcpHeaderSize || header_bytes > segment.size()) {
    return ciobase::InvalidArgument("TCP data offset out of range");
  }
  // Scan options for MSS (kind 2); ignore others, stop at end-of-options.
  size_t i = kTcpHeaderSize;
  while (i < header_bytes) {
    uint8_t kind = p[i];
    if (kind == 0) {
      break;  // end of options
    }
    if (kind == 1) {
      ++i;  // NOP
      continue;
    }
    if (i + 1 >= header_bytes) {
      return ciobase::InvalidArgument("truncated TCP option");
    }
    uint8_t len = p[i + 1];
    if (len < 2 || i + len > header_bytes) {
      return ciobase::InvalidArgument("bad TCP option length");
    }
    if (kind == 2 && len == 4) {
      header.mss_option = ciobase::LoadBe16(p + i + 2);
    }
    i += len;
  }
  return header;
}

// --- Checksums --------------------------------------------------------------

uint16_t InternetChecksum(ciobase::ByteSpan data, uint32_t initial) {
  uint64_t sum = initial;
  size_t i = 0;
  while (i + 1 < data.size()) {
    sum += ciobase::LoadBe16(data.data() + i);
    i += 2;
  }
  if (i < data.size()) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

uint32_t PseudoHeaderSum(Ipv4Address src, Ipv4Address dst, uint8_t protocol,
                         uint16_t length) {
  uint32_t sum = 0;
  sum += src.value >> 16;
  sum += src.value & 0xffff;
  sum += dst.value >> 16;
  sum += dst.value & 0xffff;
  sum += protocol;
  sum += length;
  return sum;
}

uint16_t TransportChecksum(Ipv4Address src, Ipv4Address dst, uint8_t protocol,
                           ciobase::ByteSpan segment) {
  uint32_t pseudo = PseudoHeaderSum(src, dst, protocol,
                                    static_cast<uint16_t>(segment.size()));
  return InternetChecksum(segment, pseudo);
}

}  // namespace cionet
