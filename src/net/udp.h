// UDP datagram building and parsing with pseudo-header checksums.

#ifndef SRC_NET_UDP_H_
#define SRC_NET_UDP_H_

#include "src/base/status.h"
#include "src/net/wire.h"

namespace cionet {

// Builds header+payload with a correct checksum.
ciobase::Buffer BuildUdpDatagram(Ipv4Address src_ip, Ipv4Address dst_ip,
                                 uint16_t src_port, uint16_t dst_port,
                                 ciobase::ByteSpan payload);

struct ParsedUdp {
  UdpHeader header;
  ciobase::Buffer payload;
};

// Parses and checksum-verifies a UDP datagram carried in an IPv4 payload.
ciobase::Result<ParsedUdp> ParseUdpDatagram(Ipv4Address src_ip,
                                            Ipv4Address dst_ip,
                                            ciobase::ByteSpan datagram);

}  // namespace cionet

#endif  // SRC_NET_UDP_H_
