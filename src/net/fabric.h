// Fabric: an in-memory Ethernet segment standing in for the physical
// network (see DESIGN.md substitutions). Host-side device backends attach
// endpoints; frames are routed by destination MAC with configurable
// latency, loss, and reordering so the TCP stack's retransmission and
// ordering machinery is actually exercised.

#ifndef SRC_NET_FABRIC_H_
#define SRC_NET_FABRIC_H_

#include <deque>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/net/port.h"
#include "src/net/wire.h"

namespace cionet {

struct EndpointId {
  uint32_t value = 0;
  bool operator==(const EndpointId&) const = default;
};

class Fabric {
 public:
  struct Options {
    double loss_probability = 0.0;
    double reorder_probability = 0.0;
    uint64_t latency_ns = 20'000;  // one-way, ~intra-rack
    size_t max_frame = 9216;       // drop anything larger (jumbo limit)
  };

  Fabric(ciobase::SimClock* clock, uint64_t seed)
      : Fabric(clock, seed, Options{}) {}
  Fabric(ciobase::SimClock* clock, uint64_t seed, Options options)
      : clock_(clock), rng_(seed), options_(options) {}

  EndpointId Attach(std::string name, MacAddress mac);

  // Removes an endpoint from routing and drops its queued frames. Used for
  // device hot-swap (§3.2: migration by swapping fixed-config devices
  // rather than renegotiating a live one).
  void Detach(EndpointId endpoint);

  // Routes a frame from `from` to the endpoint owning the destination MAC
  // (or floods on broadcast). When several endpoints share the MAC (multi-
  // queue guests), unicast frames are spread round-robin across them.
  // Unknown destinations are dropped silently, like a real switch without
  // the FDB entry.
  ciobase::Status Inject(EndpointId from, ciobase::ByteSpan frame);

  // Next frame deliverable to `endpoint` at the current simulated time.
  ciobase::Result<ciobase::Buffer> Poll(EndpointId endpoint);

  struct Stats {
    uint64_t frames_routed = 0;
    uint64_t frames_dropped_loss = 0;
    uint64_t frames_dropped_unknown = 0;
    uint64_t frames_dropped_oversize = 0;
    uint64_t frames_reordered = 0;
    uint64_t bytes_routed = 0;
  };
  const Stats& stats() const { return stats_; }

  // Frame capture for tests ("tcpdump"): every routed frame, in order.
  struct CapturedFrame {
    uint64_t time_ns;
    EndpointId from;
    EndpointId to;
    ciobase::Buffer frame;
  };
  void EnableCapture(bool enabled) { capture_enabled_ = enabled; }
  const std::vector<CapturedFrame>& capture() const { return capture_; }

 private:
  struct PendingFrame {
    uint64_t deliver_at_ns;
    ciobase::Buffer frame;
  };
  struct Endpoint {
    std::string name;
    MacAddress mac;
    std::deque<PendingFrame> queue;
    bool attached = true;
  };

  void Deliver(EndpointId from, Endpoint& to, ciobase::ByteSpan frame);

  ciobase::SimClock* clock_;
  ciobase::Rng rng_;
  Options options_;
  std::vector<Endpoint> endpoints_;
  std::vector<size_t> rss_scratch_;  // endpoints matching the dst MAC
  uint64_t rss_round_ = 0;
  Stats stats_;
  bool capture_enabled_ = false;
  std::vector<CapturedFrame> capture_;
};

// DirectFabricPort: a FramePort wired straight onto the fabric with no host
// boundary. Used for unit tests of the network stack itself, and as the
// "ideal NIC" perf ceiling in benchmarks.
class DirectFabricPort final : public FramePort {
 public:
  DirectFabricPort(Fabric* fabric, std::string name, MacAddress mac,
                   uint16_t mtu = 1500)
      : fabric_(fabric),
        endpoint_(fabric->Attach(std::move(name), mac)),
        mac_(mac),
        mtu_(mtu) {}

  ciobase::Result<size_t> SendFrames(
      std::span<const ciobase::ByteSpan> frames) override {
    size_t sent = 0;
    for (ciobase::ByteSpan frame : frames) {
      if (frame.size() > kEthernetHeaderSize + mtu_) {
        if (sent == 0) {
          return ciobase::InvalidArgument("frame exceeds MTU");
        }
        break;
      }
      ciobase::Status status = fabric_->Inject(endpoint_, frame);
      if (!status.ok()) {
        if (sent == 0) {
          return status;
        }
        break;
      }
      ++sent;
    }
    return sent;
  }
  ciobase::Result<size_t> ReceiveFrames(FrameBatch& batch,
                                        size_t max_frames) override {
    batch.Clear();
    while (batch.size() < max_frames) {
      ciobase::Result<ciobase::Buffer> frame = fabric_->Poll(endpoint_);
      if (!frame.ok()) {
        break;
      }
      batch.Push(std::move(*frame));
    }
    return batch.size();
  }
  MacAddress mac() const override { return mac_; }
  uint16_t mtu() const override { return mtu_; }
  EndpointId endpoint() const { return endpoint_; }

 private:
  Fabric* fabric_;
  EndpointId endpoint_;
  MacAddress mac_;
  uint16_t mtu_;
};

}  // namespace cionet

#endif  // SRC_NET_FABRIC_H_
