// IPv4 fragmentation and reassembly.
//
// The stack fragments datagrams larger than the port MTU and reassembles
// incoming fragments keyed by (src, dst, protocol, identification), with a
// timeout and hard caps on buffered bytes — reassembly is a classic
// attacker-facing allocation amplifier, so the caps are part of the
// interface-safety story.

#ifndef SRC_NET_IPV4_H_
#define SRC_NET_IPV4_H_

#include <map>
#include <optional>
#include <vector>

#include "src/base/clock.h"
#include "src/net/wire.h"

namespace cionet {

// Splits `payload` into IPv4 packets (header + fragment payload) that each
// fit in `mtu` bytes. `header` supplies src/dst/protocol/id; total_length
// and flags_fragment are computed per fragment.
std::vector<ciobase::Buffer> FragmentIpv4(const Ipv4Header& header,
                                          ciobase::ByteSpan payload,
                                          uint16_t mtu);

struct ReassembledDatagram {
  Ipv4Header header;
  ciobase::Buffer payload;
};

class Ipv4Reassembler {
 public:
  explicit Ipv4Reassembler(ciobase::SimClock* clock) : clock_(clock) {}

  // Feeds one fragment (or whole datagram); returns the complete datagram
  // once every fragment has arrived.
  std::optional<ReassembledDatagram> Add(const Ipv4Header& header,
                                         ciobase::ByteSpan payload);

  // Drops reassembly state older than the timeout.
  void Expire();

  size_t pending() const { return pending_.size(); }

  static constexpr uint64_t kTimeoutNs = 5ULL * 1'000'000'000;  // 5 s
  static constexpr size_t kMaxDatagram = 65535;
  static constexpr size_t kMaxPendingBytes = 1 << 20;  // global cap

 private:
  struct Key {
    uint32_t src;
    uint32_t dst;
    uint16_t id;
    uint8_t protocol;
    auto operator<=>(const Key&) const = default;
  };
  struct Pending {
    Ipv4Header first_header;
    bool have_last = false;
    size_t total_size = 0;  // known once the last fragment arrives
    std::map<uint16_t, ciobase::Buffer> fragments;  // offset -> bytes
    size_t buffered = 0;
    uint64_t started_ns = 0;
  };

  size_t total_buffered_ = 0;
  ciobase::SimClock* clock_;
  std::map<Key, Pending> pending_;
};

}  // namespace cionet

#endif  // SRC_NET_IPV4_H_
