#include "src/net/tcp.h"

#include <algorithm>
#include <cassert>

#include "src/base/coverage.h"
#include "src/base/log.h"

namespace cionet {

std::string_view TcpStateName(TcpState state) {
  switch (state) {
    case TcpState::kClosed:
      return "CLOSED";
    case TcpState::kSynSent:
      return "SYN_SENT";
    case TcpState::kSynReceived:
      return "SYN_RCVD";
    case TcpState::kEstablished:
      return "ESTABLISHED";
    case TcpState::kFinWait1:
      return "FIN_WAIT_1";
    case TcpState::kFinWait2:
      return "FIN_WAIT_2";
    case TcpState::kCloseWait:
      return "CLOSE_WAIT";
    case TcpState::kClosing:
      return "CLOSING";
    case TcpState::kLastAck:
      return "LAST_ACK";
    case TcpState::kTimeWait:
      return "TIME_WAIT";
  }
  return "?";
}

TcpConnection::TcpConnection(ciobase::SimClock* clock,
                             TcpEndpointId endpoints, uint16_t mss,
                             uint32_t iss, Tuning tuning)
    : clock_(clock),
      endpoints_(endpoints),
      tuning_(tuning),
      mss_(mss),
      iss_(iss),
      snd_una_(iss),
      snd_nxt_(iss),
      cwnd_(static_cast<uint32_t>(mss) * 2),
      rto_ns_(tuning.initial_rto_ns) {}

TcpConnection TcpConnection::ActiveOpen(ciobase::SimClock* clock,
                                        TcpEndpointId endpoints, uint16_t mss,
                                        uint32_t iss, Tuning tuning) {
  TcpConnection conn(clock, endpoints, mss, iss, tuning);
  conn.state_ = TcpState::kSynSent;
  conn.EmitSegment(kTcpFlagSyn, conn.snd_nxt_, {}, mss);
  conn.snd_nxt_ = iss + 1;
  conn.ArmRetransmitTimer();
  return conn;
}

TcpConnection TcpConnection::ActiveOpen(ciobase::SimClock* clock,
                                        TcpEndpointId endpoints, uint16_t mss,
                                        uint32_t iss) {
  return ActiveOpen(clock, endpoints, mss, iss, Tuning{});
}

TcpConnection TcpConnection::PassiveOpen(ciobase::SimClock* clock,
                                         TcpEndpointId endpoints, uint16_t mss,
                                         uint32_t iss, const TcpHeader& syn,
                                         Tuning tuning) {
  TcpConnection conn(clock, endpoints, mss, iss, tuning);
  if (syn.mss_option != 0) {
    conn.mss_ = std::min(conn.mss_, syn.mss_option);
  }
  conn.rcv_nxt_ = syn.seq + 1;
  conn.snd_wnd_ = syn.window;
  conn.state_ = TcpState::kSynReceived;
  conn.EmitSegment(kTcpFlagSyn | kTcpFlagAck, conn.snd_nxt_, {}, conn.mss_);
  conn.snd_nxt_ = iss + 1;
  conn.ArmRetransmitTimer();
  return conn;
}

TcpConnection TcpConnection::PassiveOpen(ciobase::SimClock* clock,
                                         TcpEndpointId endpoints, uint16_t mss,
                                         uint32_t iss, const TcpHeader& syn) {
  return PassiveOpen(clock, endpoints, mss, iss, syn, Tuning{});
}

uint16_t TcpConnection::AdvertisedWindow() const {
  size_t free_space =
      tuning_.receive_buffer_limit -
      std::min(tuning_.receive_buffer_limit, receive_buffer_.size());
  return static_cast<uint16_t>(std::min<size_t>(free_space, 65535));
}

void TcpConnection::EmitSegment(uint8_t flags, uint32_t seq,
                                ciobase::ByteSpan payload,
                                uint16_t mss_option) {
  TcpHeader header;
  header.src_port = endpoints_.local_port;
  header.dst_port = endpoints_.remote_port;
  header.seq = seq;
  header.ack = (flags & kTcpFlagAck) != 0 ? rcv_nxt_ : 0;
  header.flags = flags;
  header.window = AdvertisedWindow();
  header.mss_option = mss_option;
  ciobase::Buffer segment;
  header.Serialize(segment);
  ciobase::Append(segment, payload);
  uint16_t checksum = TransportChecksum(endpoints_.local_ip,
                                        endpoints_.remote_ip, kIpProtoTcp,
                                        segment);
  ciobase::StoreBe16(segment.data() + 16, checksum);
  output_.push_back(std::move(segment));
  ++stats_.segments_sent;
  stats_.bytes_sent += payload.size();
}

void TcpConnection::EmitAck() { EmitSegment(kTcpFlagAck, snd_nxt_, {}); }

void TcpConnection::EmitRst(uint32_t seq) {
  EmitSegment(kTcpFlagRst | kTcpFlagAck, seq, {});
}

void TcpConnection::ArmRetransmitTimer() {
  retransmit_deadline_ns_ = clock_->now_ns() + rto_ns_;
}

void TcpConnection::Fail(std::string reason) {
  failed_ = true;
  failure_ = std::move(reason);
  state_ = TcpState::kClosed;
  retransmit_deadline_ns_ = 0;
}

ciobase::Result<size_t> TcpConnection::Send(ciobase::ByteSpan data) {
  if (failed_) {
    return ciobase::FailedPrecondition("connection failed: " + failure_);
  }
  if (fin_queued_ || (state_ != TcpState::kEstablished &&
                      state_ != TcpState::kCloseWait &&
                      state_ != TcpState::kSynSent &&
                      state_ != TcpState::kSynReceived)) {
    return ciobase::FailedPrecondition("send after close");
  }
  size_t space = tuning_.send_buffer_limit - send_buffer_.size();
  size_t n = std::min(space, data.size());
  send_buffer_.insert(send_buffer_.end(), data.begin(), data.begin() +
                      static_cast<long>(n));
  TrySendData();
  return n;
}

ciobase::Result<size_t> TcpConnection::Receive(ciobase::MutableByteSpan out) {
  if (receive_buffer_.empty()) {
    if (peer_fin_received_) {
      peer_fin_drained_ = true;
      return static_cast<size_t>(0);  // orderly EOF
    }
    if (failed_) {
      return ciobase::FailedPrecondition("connection failed: " + failure_);
    }
    return ciobase::Unavailable("no data");
  }
  size_t n = std::min(out.size(), receive_buffer_.size());
  std::copy_n(receive_buffer_.begin(), n, out.begin());
  receive_buffer_.erase(receive_buffer_.begin(),
                        receive_buffer_.begin() + static_cast<long>(n));
  // The window may have reopened; let the peer know if it was closed.
  if (n > 0 && receive_buffer_.empty() &&
      state_ == TcpState::kEstablished) {
    // Window-update ACK only when we had been running full.
    if (tuning_.receive_buffer_limit - n < 2 * mss_) {
      EmitAck();
    }
  }
  return n;
}

void TcpConnection::Close() {
  if (failed_ || fin_queued_) {
    return;
  }
  switch (state_) {
    case TcpState::kSynSent:
      state_ = TcpState::kClosed;
      retransmit_deadline_ns_ = 0;
      return;
    case TcpState::kEstablished:
    case TcpState::kSynReceived:
    case TcpState::kCloseWait:
      fin_queued_ = true;
      MaybeSendFin();
      return;
    default:
      return;  // already closing
  }
}

void TcpConnection::Abort() {
  if (state_ != TcpState::kClosed) {
    EmitRst(snd_nxt_);
    Fail("aborted locally");
  }
}

void TcpConnection::MaybeSendFin() {
  if (!fin_queued_ || fin_sent_) {
    return;
  }
  // FIN goes out only after all buffered data has been transmitted.
  uint32_t data_base = iss_ + 1;
  uint32_t unsent =
      static_cast<uint32_t>(send_buffer_.size()) -
      std::min<uint32_t>(static_cast<uint32_t>(send_buffer_.size()),
                         snd_nxt_ - data_base);
  if (unsent > 0 || state_ == TcpState::kSynSent ||
      state_ == TcpState::kSynReceived) {
    return;
  }
  fin_seq_ = snd_nxt_;
  EmitSegment(kTcpFlagFin | kTcpFlagAck, snd_nxt_, {});
  snd_nxt_ += 1;
  fin_sent_ = true;
  if (state_ == TcpState::kEstablished) {
    state_ = TcpState::kFinWait1;
  } else if (state_ == TcpState::kCloseWait) {
    state_ = TcpState::kLastAck;
  }
  ArmRetransmitTimer();
}

void TcpConnection::TrySendData() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait1 && state_ != TcpState::kClosing) {
    MaybeSendFin();
    return;
  }
  uint32_t data_base = iss_ + 1;  // first data sequence number
  for (;;) {
    uint32_t sent = snd_nxt_ - data_base;  // data bytes already streamed out
    if (fin_sent_) {
      sent -= 1;
    }
    uint32_t buffered = static_cast<uint32_t>(send_buffer_.size());
    // send_buffer_ front corresponds to snd_una_'s data byte; `sent` counts
    // from data_base, so in-buffer offset of the next unsent byte is:
    uint32_t acked = snd_una_ - data_base;  // data bytes fully acked
    if (snd_una_ == iss_) {
      acked = 0;  // SYN itself unacked
    }
    uint32_t unsent_offset = sent - acked;
    if (unsent_offset >= buffered) {
      break;  // nothing new to send
    }
    uint32_t window = std::min<uint32_t>(snd_wnd_, cwnd_);
    uint32_t inflight = snd_nxt_ - snd_una_;
    if (inflight >= window) {
      break;  // window full
    }
    uint32_t chunk = std::min<uint32_t>(
        {static_cast<uint32_t>(mss_), buffered - unsent_offset,
         window - inflight});
    if (chunk == 0) {
      break;
    }
    ciobase::Buffer payload(chunk);
    std::copy_n(send_buffer_.begin() + unsent_offset, chunk, payload.begin());
    if (!rtt_sampling_) {
      rtt_sampling_ = true;
      rtt_sample_seq_ = snd_nxt_ + chunk - 1;
      rtt_sample_start_ns_ = clock_->now_ns();
    }
    EmitSegment(kTcpFlagAck | kTcpFlagPsh, snd_nxt_, payload);
    snd_nxt_ += chunk;
    ArmRetransmitTimer();
  }
  MaybeSendFin();
}

void TcpConnection::HandleAck(const TcpHeader& header) {
  uint32_t ack = header.ack;
  if (SeqGt(ack, snd_nxt_)) {
    EmitAck();  // acking the future: tell the peer where we really are
    return;
  }
  snd_wnd_ = header.window;
  if (SeqGt(ack, snd_una_)) {
    // New data acknowledged.
    uint32_t data_base = iss_ + 1;
    uint32_t old_acked_data =
        SeqGt(snd_una_, data_base) ? snd_una_ - data_base : 0;
    uint32_t new_acked_data = SeqGt(ack, data_base) ? ack - data_base : 0;
    if (fin_sent_ && SeqGt(ack, fin_seq_)) {
      new_acked_data -= 1;  // the FIN consumed one sequence number
    }
    uint32_t popped = std::min<uint32_t>(
        new_acked_data - old_acked_data,
        static_cast<uint32_t>(send_buffer_.size()));
    send_buffer_.erase(send_buffer_.begin(),
                       send_buffer_.begin() + popped);
    snd_una_ = ack;
    retries_ = 0;
    dup_ack_count_ = 0;

    // RTT sample (Karn's algorithm: only for never-retransmitted data).
    if (rtt_sampling_ && SeqGt(ack, rtt_sample_seq_)) {
      double sample =
          static_cast<double>(clock_->now_ns() - rtt_sample_start_ns_);
      if (!rtt_valid_) {
        srtt_ns_ = sample;
        rttvar_ns_ = sample / 2;
        rtt_valid_ = true;
      } else {
        rttvar_ns_ = 0.75 * rttvar_ns_ + 0.25 * std::abs(srtt_ns_ - sample);
        srtt_ns_ = 0.875 * srtt_ns_ + 0.125 * sample;
      }
      uint64_t rto = static_cast<uint64_t>(srtt_ns_ + 4 * rttvar_ns_);
      rto_ns_ = std::clamp(rto, tuning_.min_rto_ns, tuning_.max_rto_ns);
      rtt_sampling_ = false;
    }

    // Congestion window growth.
    if (cwnd_ < ssthresh_) {
      cwnd_ += mss_;  // slow start
    } else {
      cwnd_ += std::max<uint32_t>(1, static_cast<uint32_t>(mss_) * mss_ /
                                         cwnd_);  // congestion avoidance
    }

    if (InFlight() == 0) {
      retransmit_deadline_ns_ = 0;
    } else {
      ArmRetransmitTimer();
    }

    // FIN acknowledged?
    if (fin_sent_ && SeqGt(ack, fin_seq_)) {
      switch (state_) {
        case TcpState::kFinWait1:
          state_ = TcpState::kFinWait2;
          break;
        case TcpState::kClosing:
          EnterTimeWait();
          break;
        case TcpState::kLastAck:
          state_ = TcpState::kClosed;
          retransmit_deadline_ns_ = 0;
          break;
        default:
          break;
      }
    }
    TrySendData();
  } else if (ack == snd_una_ && InFlight() > 0) {
    ++dup_ack_count_;
    ++stats_.dup_acks;
    if (dup_ack_count_ == 3) {
      // Fast retransmit + multiplicative decrease.
      ++stats_.fast_retransmits;
      uint32_t inflight = static_cast<uint32_t>(InFlight());
      ssthresh_ = std::max<uint32_t>(inflight / 2, 2 * mss_);
      cwnd_ = ssthresh_ + 3 * mss_;
      rtt_sampling_ = false;  // Karn: no sample across retransmit
      RetransmitHead();
    }
  }
}

void TcpConnection::RetransmitHead() {
  ++stats_.retransmissions;
  if (state_ == TcpState::kSynSent) {
    EmitSegment(kTcpFlagSyn, iss_, {}, mss_);
    return;
  }
  if (state_ == TcpState::kSynReceived) {
    EmitSegment(kTcpFlagSyn | kTcpFlagAck, iss_, {}, mss_);
    return;
  }
  uint32_t data_base = iss_ + 1;
  uint32_t acked = SeqGt(snd_una_, data_base) ? snd_una_ - data_base : 0;
  (void)acked;  // buffer front is exactly snd_una_'s byte after the pops
  uint32_t inflight_data = static_cast<uint32_t>(InFlight());
  if (fin_sent_ && SeqGe(snd_nxt_ - 1, snd_una_)) {
    // FIN is in flight; it is the last sequence number.
    if (inflight_data > 0) {
      inflight_data -= 1;
    }
  }
  if (inflight_data > 0 && !send_buffer_.empty()) {
    uint32_t chunk = std::min<uint32_t>(
        {static_cast<uint32_t>(mss_), inflight_data,
         static_cast<uint32_t>(send_buffer_.size())});
    ciobase::Buffer payload(chunk);
    std::copy_n(send_buffer_.begin(), chunk, payload.begin());
    EmitSegment(kTcpFlagAck | kTcpFlagPsh, snd_una_, payload);
  } else if (fin_sent_) {
    EmitSegment(kTcpFlagFin | kTcpFlagAck, fin_seq_, {});
  }
}

void TcpConnection::HandleData(const TcpHeader& header,
                               ciobase::ByteSpan payload) {
  uint32_t seq = header.seq;
  bool has_fin = (header.flags & kTcpFlagFin) != 0;
  uint32_t original_len = static_cast<uint32_t>(payload.size());
  if (payload.empty() && !has_fin) {
    return;
  }

  if (SeqGt(seq, rcv_nxt_)) {
    // Future segment: queue out of order (bounded) and send a dup ack.
    if (!payload.empty() && out_of_order_.size() < tuning_.max_ooo_segments) {
      out_of_order_.emplace(seq,
                            ciobase::Buffer(payload.begin(), payload.end()));
      ++stats_.ooo_segments;
    }
    if (has_fin && out_of_order_.size() < tuning_.max_ooo_segments) {
      // Remember the FIN position by re-queueing it as an empty marker is
      // not worth the complexity; the peer retransmits the FIN.
    }
    EmitAck();
    return;
  }

  // Trim any already-received prefix.
  uint32_t overlap = rcv_nxt_ - seq;  // >= 0 since seq <= rcv_nxt
  if (overlap >= payload.size() && !payload.empty()) {
    if (!has_fin) {
      EmitAck();  // entirely old data: re-ack
      return;
    }
    payload = {};
  } else if (!payload.empty()) {
    payload = payload.subspan(overlap);
  }

  if (!payload.empty()) {
    size_t space = tuning_.receive_buffer_limit - receive_buffer_.size();
    size_t accept = std::min(space, payload.size());
    receive_buffer_.insert(receive_buffer_.end(), payload.begin(),
                           payload.begin() + static_cast<long>(accept));
    rcv_nxt_ += static_cast<uint32_t>(accept);
    stats_.bytes_received += accept;

    // Drain contiguous out-of-order segments.
    bool progressed = accept == payload.size();
    while (progressed) {
      progressed = false;
      for (auto it = out_of_order_.begin(); it != out_of_order_.end();) {
        if (SeqLe(it->first, rcv_nxt_)) {
          uint32_t ooo_overlap = rcv_nxt_ - it->first;
          if (ooo_overlap < it->second.size()) {
            ciobase::ByteSpan rest(it->second.data() + ooo_overlap,
                                   it->second.size() - ooo_overlap);
            size_t free_space =
                tuning_.receive_buffer_limit - receive_buffer_.size();
            size_t take = std::min(free_space, rest.size());
            receive_buffer_.insert(receive_buffer_.end(), rest.begin(),
                                   rest.begin() + static_cast<long>(take));
            rcv_nxt_ += static_cast<uint32_t>(take);
            stats_.bytes_received += take;
            progressed = take == rest.size();
          }
          it = out_of_order_.erase(it);
          break;  // iterator invalidated predictably; restart scan
        }
        ++it;
      }
    }
  }

  if (has_fin) {
    ProcessFin(seq + original_len);
  }
  EmitAck();
}

void TcpConnection::ProcessFin(uint32_t fin_seq) {
  if (fin_seq != rcv_nxt_ || peer_fin_received_) {
    return;  // FIN not yet in order (or duplicate); peer will retransmit
  }
  rcv_nxt_ += 1;
  peer_fin_received_ = true;
  peer_fin_seq_ = fin_seq;
  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kCloseWait;
      break;
    case TcpState::kFinWait1:
      // Our FIN is unacked: simultaneous close.
      state_ = TcpState::kClosing;
      break;
    case TcpState::kFinWait2:
      EnterTimeWait();
      break;
    default:
      break;
  }
}

void TcpConnection::EnterTimeWait() {
  state_ = TcpState::kTimeWait;
  retransmit_deadline_ns_ = 0;
  time_wait_deadline_ns_ = clock_->now_ns() + tuning_.time_wait_ns;
}

void TcpConnection::OnSegment(const TcpHeader& header,
                              ciobase::ByteSpan payload) {
  ++stats_.segments_received;
  if (state_ == TcpState::kClosed) {
    return;
  }

  if ((header.flags & kTcpFlagRst) != 0) {
    // Minimal validation: the RST must be inside the receive window (or be
    // the SYN-SENT reply). Blind RST injection is out of scope here.
    if (state_ == TcpState::kSynSent || header.seq == rcv_nxt_) {
      Fail("connection reset by peer");
    }
    return;
  }

  if (state_ == TcpState::kSynSent) {
    if ((header.flags & (kTcpFlagSyn | kTcpFlagAck)) ==
        (kTcpFlagSyn | kTcpFlagAck)) {
      if (header.ack != iss_ + 1) {
        EmitRst(header.ack);
        Fail("bad SYN-ACK acknowledgment");
        return;
      }
      rcv_nxt_ = header.seq + 1;
      snd_una_ = header.ack;
      snd_wnd_ = header.window;
      if (header.mss_option != 0) {
        mss_ = std::min(mss_, header.mss_option);
      }
      state_ = TcpState::kEstablished;
      retransmit_deadline_ns_ = 0;
      EmitAck();
      TrySendData();
    }
    return;
  }

  if (state_ == TcpState::kSynReceived) {
    if ((header.flags & kTcpFlagSyn) != 0) {
      // Retransmitted SYN: re-send the SYN-ACK.
      EmitSegment(kTcpFlagSyn | kTcpFlagAck, iss_, {}, mss_);
      return;
    }
    if ((header.flags & kTcpFlagAck) != 0 && header.ack == snd_nxt_) {
      state_ = TcpState::kEstablished;
      snd_una_ = header.ack;
      snd_wnd_ = header.window;
      retransmit_deadline_ns_ = 0;
      TrySendData();  // data queued during the handshake can now flow
      // Fall through to normal processing (the ACK may carry data).
    } else if ((header.flags & kTcpFlagAck) != 0) {
      EmitRst(header.ack);
      return;
    } else {
      return;
    }
  }

  if (state_ == TcpState::kTimeWait) {
    // Retransmitted FIN: re-ack and restart the wait.
    EmitAck();
    time_wait_deadline_ns_ = clock_->now_ns() + tuning_.time_wait_ns;
    return;
  }

  if ((header.flags & kTcpFlagAck) != 0) {
    HandleAck(header);
  }
  if (state_ == TcpState::kClosed) {
    return;
  }
  HandleData(header, payload);
}

void TcpConnection::PollTimers() {
  uint64_t now = clock_->now_ns();
  if (state_ == TcpState::kTimeWait && now >= time_wait_deadline_ns_) {
    state_ = TcpState::kClosed;
    return;
  }
  if (retransmit_deadline_ns_ != 0 && now >= retransmit_deadline_ns_) {
    ++stats_.timeouts;
    ++retries_;
    // The guest transport noticed a stall: counts as the stack reacting to
    // host misbehavior, so the fuzz hang oracle treats it as detection.
    CIO_COV("net.tcp.rto", ciobase::StatusCode::kUnavailable);
    if (retries_ > tuning_.max_retries) {
      CIO_COV("net.tcp.retries_exhausted", ciobase::StatusCode::kTimedOut);
      Fail("retransmission retries exhausted");
      return;
    }
    rto_ns_ = std::min(rto_ns_ * 2, tuning_.max_rto_ns);
    uint32_t inflight = static_cast<uint32_t>(InFlight());
    ssthresh_ = std::max<uint32_t>(inflight / 2, 2 * mss_);
    cwnd_ = mss_;
    rtt_sampling_ = false;
    RetransmitHead();
    ArmRetransmitTimer();
  }
  // Zero-window probe: data waiting, nothing in flight, window closed.
  if (retransmit_deadline_ns_ == 0 && !send_buffer_.empty() &&
      InFlight() == 0 && snd_wnd_ == 0 &&
      state_ == TcpState::kEstablished) {
    ciobase::Buffer probe(1, send_buffer_.front());
    EmitSegment(kTcpFlagAck, snd_nxt_, probe);
    snd_nxt_ += 1;
    ArmRetransmitTimer();
  }
}

std::vector<ciobase::Buffer> TcpConnection::TakeOutput() {
  std::vector<ciobase::Buffer> out;
  out.swap(output_);
  return out;
}

}  // namespace cionet
