// ARP resolver and cache (RFC 826, IPv4-over-Ethernet).

#ifndef SRC_NET_ARP_H_
#define SRC_NET_ARP_H_

#include <map>
#include <optional>

#include "src/base/clock.h"
#include "src/net/wire.h"

namespace cionet {

class ArpCache {
 public:
  ArpCache(ciobase::SimClock* clock, MacAddress own_mac, Ipv4Address own_ip)
      : clock_(clock), own_mac_(own_mac), own_ip_(own_ip) {}

  std::optional<MacAddress> Lookup(Ipv4Address ip) const;
  void Insert(Ipv4Address ip, MacAddress mac);

  // Builds a full Ethernet broadcast frame asking for `ip`.
  ciobase::Buffer MakeRequestFrame(Ipv4Address ip) const;

  // Handles an incoming ARP payload; returns a reply frame if one is due.
  std::optional<ciobase::Buffer> HandlePacket(ciobase::ByteSpan payload);

  // True if a request for `ip` was sent within the backoff window; used by
  // the stack to avoid flooding while resolution is pending.
  bool RequestRecentlySent(Ipv4Address ip) const;
  void NoteRequestSent(Ipv4Address ip);

  static constexpr uint64_t kEntryTtlNs = 60ULL * 1'000'000'000;  // 60 s
  static constexpr uint64_t kRequestBackoffNs = 100'000'000;      // 100 ms

 private:
  ciobase::SimClock* clock_;
  MacAddress own_mac_;
  Ipv4Address own_ip_;
  struct Entry {
    MacAddress mac;
    uint64_t expires_ns;
  };
  std::map<uint32_t, Entry> entries_;
  std::map<uint32_t, uint64_t> last_request_ns_;
};

}  // namespace cionet

#endif  // SRC_NET_ARP_H_
