#include "src/net/ipv4.h"

#include <cstring>

namespace cionet {

std::vector<ciobase::Buffer> FragmentIpv4(const Ipv4Header& header,
                                          ciobase::ByteSpan payload,
                                          uint16_t mtu) {
  std::vector<ciobase::Buffer> packets;
  size_t max_payload = mtu - kIpv4HeaderSize;
  max_payload &= ~static_cast<size_t>(7);  // fragment payloads are 8B units
  if (payload.size() + kIpv4HeaderSize <= mtu) {
    ciobase::Buffer packet;
    Ipv4Header h = header;
    h.total_length = static_cast<uint16_t>(kIpv4HeaderSize + payload.size());
    h.flags_fragment = 0;
    h.Serialize(packet);
    ciobase::Append(packet, payload);
    packets.push_back(std::move(packet));
    return packets;
  }
  size_t offset = 0;
  while (offset < payload.size()) {
    size_t chunk = std::min(max_payload, payload.size() - offset);
    bool last = offset + chunk == payload.size();
    ciobase::Buffer packet;
    Ipv4Header h = header;
    h.total_length = static_cast<uint16_t>(kIpv4HeaderSize + chunk);
    h.flags_fragment =
        static_cast<uint16_t>((offset / 8) & 0x1fff) |
        (last ? 0 : kIpv4FlagMoreFragments);
    h.Serialize(packet);
    ciobase::Append(packet, payload.subspan(offset, chunk));
    packets.push_back(std::move(packet));
    offset += chunk;
  }
  return packets;
}

std::optional<ReassembledDatagram> Ipv4Reassembler::Add(
    const Ipv4Header& header, ciobase::ByteSpan payload) {
  if (header.flags_fragment == 0 ||
      header.flags_fragment == kIpv4FlagDontFragment) {
    // Unfragmented fast path.
    return ReassembledDatagram{header,
                               ciobase::Buffer(payload.begin(), payload.end())};
  }
  Key key{header.src.value, header.dst.value, header.identification,
          header.protocol};
  Pending& p = pending_[key];
  if (p.fragments.empty()) {
    p.started_ns = clock_->now_ns();
  }
  uint16_t offset = header.FragmentOffsetBytes();
  if (offset == 0) {
    p.first_header = header;
  }
  if (static_cast<size_t>(offset) + payload.size() > kMaxDatagram) {
    pending_.erase(key);  // hostile geometry; drop the whole datagram
    return std::nullopt;
  }
  if (!header.MoreFragments()) {
    p.have_last = true;
    p.total_size = offset + payload.size();
  }
  auto [it, inserted] = p.fragments.emplace(
      offset, ciobase::Buffer(payload.begin(), payload.end()));
  if (inserted) {
    p.buffered += payload.size();
    total_buffered_ += payload.size();
    if (total_buffered_ > kMaxPendingBytes) {
      // Global memory cap: shed this reassembly entirely.
      total_buffered_ -= p.buffered;
      pending_.erase(key);
      return std::nullopt;
    }
  }

  if (!p.have_last) {
    return std::nullopt;
  }
  // Check contiguity from 0 to total_size.
  size_t next = 0;
  for (const auto& [frag_offset, bytes] : p.fragments) {
    if (frag_offset > next) {
      return std::nullopt;  // hole remains
    }
    next = std::max(next, frag_offset + bytes.size());
  }
  if (next < p.total_size) {
    return std::nullopt;
  }

  ciobase::Buffer full(p.total_size);
  for (const auto& [frag_offset, bytes] : p.fragments) {
    size_t n = std::min(bytes.size(), full.size() - frag_offset);
    std::memcpy(full.data() + frag_offset, bytes.data(), n);
  }
  ReassembledDatagram out{p.first_header, std::move(full)};
  out.header.flags_fragment = 0;
  out.header.total_length =
      static_cast<uint16_t>(kIpv4HeaderSize + out.payload.size());
  total_buffered_ -= p.buffered;
  pending_.erase(key);
  return out;
}

void Ipv4Reassembler::Expire() {
  uint64_t now = clock_->now_ns();
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->second.started_ns > kTimeoutNs) {
      total_buffered_ -= it->second.buffered;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace cionet
