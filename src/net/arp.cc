#include "src/net/arp.h"

namespace cionet {

std::optional<MacAddress> ArpCache::Lookup(Ipv4Address ip) const {
  auto it = entries_.find(ip.value);
  if (it == entries_.end() || it->second.expires_ns < clock_->now_ns()) {
    return std::nullopt;
  }
  return it->second.mac;
}

void ArpCache::Insert(Ipv4Address ip, MacAddress mac) {
  entries_[ip.value] = Entry{mac, clock_->now_ns() + kEntryTtlNs};
}

ciobase::Buffer ArpCache::MakeRequestFrame(Ipv4Address ip) const {
  ciobase::Buffer frame;
  EthernetHeader eth{MacAddress::Broadcast(), own_mac_, kEtherTypeArp};
  eth.Serialize(frame);
  ArpPacket arp;
  arp.op = kArpOpRequest;
  arp.sender_mac = own_mac_;
  arp.sender_ip = own_ip_;
  arp.target_mac = MacAddress{};  // unknown
  arp.target_ip = ip;
  arp.Serialize(frame);
  return frame;
}

std::optional<ciobase::Buffer> ArpCache::HandlePacket(
    ciobase::ByteSpan payload) {
  auto arp = ArpPacket::Parse(payload);
  if (!arp.ok()) {
    return std::nullopt;
  }
  // Gratuitous learning from any valid ARP naming us or broadcast requests.
  Insert(arp->sender_ip, arp->sender_mac);
  if (arp->op == kArpOpRequest && arp->target_ip == own_ip_) {
    ciobase::Buffer frame;
    EthernetHeader eth{arp->sender_mac, own_mac_, kEtherTypeArp};
    eth.Serialize(frame);
    ArpPacket reply;
    reply.op = kArpOpReply;
    reply.sender_mac = own_mac_;
    reply.sender_ip = own_ip_;
    reply.target_mac = arp->sender_mac;
    reply.target_ip = arp->sender_ip;
    reply.Serialize(frame);
    return frame;
  }
  return std::nullopt;
}

bool ArpCache::RequestRecentlySent(Ipv4Address ip) const {
  auto it = last_request_ns_.find(ip.value);
  return it != last_request_ns_.end() &&
         clock_->now_ns() < it->second + kRequestBackoffNs;
}

void ArpCache::NoteRequestSent(Ipv4Address ip) {
  last_request_ns_[ip.value] = clock_->now_ns();
}

}  // namespace cionet
