// NetStack: the TEE-side TCP/IP stack over a FramePort.
//
// In the paper's dual-boundary architecture this entire stack lives in the
// I/O compartment: it parses attacker-supplied bytes arriving through the
// hardened L2 transport, and exposes a socket interface at the L5 boundary.
// Everything is poll-driven and single-threaded; call Poll() regularly to
// move frames, run TCP timers, and expire reassembly state.

#ifndef SRC_NET_STACK_H_
#define SRC_NET_STACK_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/base/arena.h"
#include "src/base/clock.h"
#include "src/base/rng.h"
#include "src/net/arp.h"
#include "src/net/ipv4.h"
#include "src/net/port.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"

namespace cioprof {
class ProfRegistry;
}  // namespace cioprof

namespace cionet {

struct SocketId {
  uint32_t value = 0;
  bool operator==(const SocketId&) const = default;
};

struct UdpMessage {
  Ipv4Address src_ip;
  uint16_t src_port = 0;
  ciobase::Buffer payload;
};

class NetStack {
 public:
  struct Config {
    Ipv4Address ip;
    Ipv4Address netmask = Ipv4Address::FromOctets(255, 255, 255, 0);
    Ipv4Address gateway;  // 0 = no gateway (on-link only)
    uint64_t seed = 1;
    TcpConnection::Tuning tcp_tuning;
    // Pending-connection cap per listener: a SYN arriving with the accept
    // queue full is refused with a RST (counted in stats().accept_overflows)
    // instead of growing guest memory without bound — the L3 analogue of
    // admission control at the server layer.
    size_t tcp_accept_backlog = 64;
  };

  NetStack(FramePort* port, ciobase::SimClock* clock, Config config);

  NetStack(const NetStack&) = delete;
  NetStack& operator=(const NetStack&) = delete;

  // Drains the port, dispatches packets, runs timers, flushes output.
  // Returns the link status: kLinkReset when the port reset + reattached
  // its ring this round (TCP retransmission recovers transparently; the
  // caller may want to know for accounting), kTimedOut when the port's
  // watchdog declared the link dead. Ok otherwise.
  ciobase::Status Poll();

  Ipv4Address ip() const { return config_.ip; }

  // In-sim profiler of the owning node ("tcp.poll" probe); null = disabled.
  void set_profiler(cioprof::ProfRegistry* profiler) { prof_ = profiler; }

  // --- UDP ------------------------------------------------------------------

  ciobase::Result<SocketId> UdpOpen(uint16_t local_port);  // 0 => ephemeral
  ciobase::Status UdpSendTo(SocketId socket, Ipv4Address dst, uint16_t port,
                            ciobase::ByteSpan payload);
  ciobase::Result<UdpMessage> UdpReceive(SocketId socket);
  ciobase::Status UdpClose(SocketId socket);

  // --- TCP ------------------------------------------------------------------

  ciobase::Result<SocketId> TcpListen(uint16_t port);
  ciobase::Result<SocketId> TcpConnect(Ipv4Address dst, uint16_t port);
  // Next pending connection on a listener, or kUnavailable.
  ciobase::Result<SocketId> TcpAccept(SocketId listener);
  ciobase::Result<size_t> TcpSend(SocketId socket, ciobase::ByteSpan data);
  // Reads received in-order bytes. Ok(0) = nothing pending yet (poll
  // again); kFailedPrecondition = orderly EOF (peer FIN drained);
  // kLinkReset = the connection died underneath the application (RST or
  // retransmission exhaustion) and must be re-established.
  ciobase::Result<size_t> TcpReceive(SocketId socket,
                                     ciobase::MutableByteSpan out);
  ciobase::Status TcpClose(SocketId socket);
  ciobase::Status TcpAbort(SocketId socket);
  ciobase::Result<TcpState> GetTcpState(SocketId socket) const;
  ciobase::Result<TcpConnection::Stats> GetTcpStats(SocketId socket) const;

  // --- Readiness (poll-loop support) ----------------------------------------
  // These are cheap state queries so a server can skip idle sockets.

  // Connections queued on a listener, not yet TcpAccept'ed.
  ciobase::Result<size_t> TcpAcceptPending(SocketId listener) const;
  // True when TcpReceive would make progress: buffered bytes, a drained
  // FIN (EOF to report), or a dead connection (kLinkReset to report).
  ciobase::Result<bool> TcpReadable(SocketId socket) const;
  // Free send-buffer space; 0 means TcpSend would accept nothing.
  ciobase::Result<size_t> TcpSendSpace(SocketId socket) const;
  // Remote address of a connection (server-side reattach key).
  ciobase::Result<Ipv4Address> GetTcpPeer(SocketId socket) const;

  struct Stats {
    uint64_t frames_rx = 0;
    uint64_t frames_tx = 0;
    uint64_t arp_rx = 0;
    uint64_t ipv4_rx = 0;
    uint64_t tcp_rx = 0;
    uint64_t udp_rx = 0;
    uint64_t parse_errors = 0;
    uint64_t checksum_errors = 0;
    uint64_t no_socket_drops = 0;
    uint64_t rst_sent = 0;
    uint64_t accept_overflows = 0;  // SYNs refused: accept queue full
    uint64_t link_resets = 0;    // port returned kLinkReset
    uint64_t link_timeouts = 0;  // port returned kTimedOut
  };
  const Stats& stats() const { return stats_; }

 private:
  enum class SocketType { kUdp, kTcpListener, kTcpConnection };

  struct Socket {
    SocketType type;
    uint16_t local_port = 0;
    // UDP
    std::deque<UdpMessage> udp_queue;
    // Listener
    std::deque<SocketId> accept_queue;
    // Connection
    std::unique_ptr<TcpConnection> conn;
    bool close_requested = false;
  };

  cioprof::ProfRegistry* prof_ = nullptr;

  Socket* Find(SocketId id);
  const Socket* Find(SocketId id) const;
  SocketId NewSocket(Socket socket);
  uint16_t AllocatePort();
  bool PortInUse(uint16_t port) const;
  Ipv4Address NextHop(Ipv4Address dst) const;

  void SendFrameTo(MacAddress dst, uint16_t ether_type,
                   ciobase::ByteSpan payload);
  void SendIpv4(Ipv4Address dst, uint8_t protocol, ciobase::ByteSpan payload);
  void FlushArpPending(Ipv4Address resolved);
  void HandleFrame(ciobase::ByteSpan frame);
  void HandleIpv4(ciobase::ByteSpan packet);
  void HandleTcp(const Ipv4Header& ip, ciobase::ByteSpan segment);
  void HandleUdp(const Ipv4Header& ip, ciobase::ByteSpan datagram);
  void SendRst(const Ipv4Header& ip, const TcpHeader& header,
               size_t payload_size);
  void FlushTcpOutput(Socket& socket);

  // TX batching: while a batch is open (depth > 0), SendFrameTo stages
  // frames instead of sending them; closing the outermost batch hands the
  // whole run to port_->SendFrames() — one host-counter read and one
  // doorbell per batch on ring-backed ports. Poll() and FlushTcpOutput()
  // open batches; nesting collapses to the outermost scope.
  void FlushTxBatch();

  FramePort* port_;
  ciobase::SimClock* clock_;
  Config config_;
  ciobase::Rng rng_;
  ArpCache arp_;
  Ipv4Reassembler reassembler_;

  uint32_t next_socket_id_ = 1;
  std::map<uint32_t, Socket> sockets_;
  std::map<TcpEndpointId, SocketId> tcp_demux_;
  uint16_t next_ephemeral_ = 49152;
  uint16_t ip_ident_ = 1;

  struct PendingPacket {
    Ipv4Address next_hop;
    uint16_t ether_type;
    ciobase::Buffer payload;
  };
  std::vector<PendingPacket> arp_pending_;
  static constexpr size_t kMaxArpPending = 64;

  // Batched datapath state (capacity reused across rounds; see FlushTxBatch
  // and Poll). kRxBatchFrames bounds how many frames one ReceiveFrames call
  // may hand us before we dispatch them.
  static constexpr size_t kRxBatchFrames = 32;
  FrameBatch rx_batch_;
  ciobase::FrameArena tx_arena_;
  std::vector<ciobase::Buffer> tx_staged_;
  std::vector<ciobase::ByteSpan> tx_spans_;
  int tx_batch_depth_ = 0;

  Stats stats_;
};

}  // namespace cionet

#endif  // SRC_NET_STACK_H_
