#include "src/net/stack.h"

#include <cassert>

#include "src/base/log.h"
#include "src/prof/profiler.h"

namespace cionet {

NetStack::NetStack(FramePort* port, ciobase::SimClock* clock, Config config)
    : port_(port),
      clock_(clock),
      config_(config),
      rng_(config.seed),
      arp_(clock, port->mac(), config.ip),
      reassembler_(clock) {}

NetStack::Socket* NetStack::Find(SocketId id) {
  auto it = sockets_.find(id.value);
  return it == sockets_.end() ? nullptr : &it->second;
}

const NetStack::Socket* NetStack::Find(SocketId id) const {
  auto it = sockets_.find(id.value);
  return it == sockets_.end() ? nullptr : &it->second;
}

SocketId NetStack::NewSocket(Socket socket) {
  SocketId id{next_socket_id_++};
  sockets_.emplace(id.value, std::move(socket));
  return id;
}

bool NetStack::PortInUse(uint16_t port) const {
  for (const auto& [id, socket] : sockets_) {
    if (socket.local_port == port) {
      return true;
    }
  }
  return false;
}

uint16_t NetStack::AllocatePort() {
  for (int attempts = 0; attempts < 16384; ++attempts) {
    uint16_t port = next_ephemeral_++;
    if (next_ephemeral_ == 0) {
      next_ephemeral_ = 49152;
    }
    if (port >= 49152 && !PortInUse(port)) {
      return port;
    }
  }
  return 0;
}

Ipv4Address NetStack::NextHop(Ipv4Address dst) const {
  bool on_link = (dst.value & config_.netmask.value) ==
                 (config_.ip.value & config_.netmask.value);
  if (on_link || config_.gateway.value == 0) {
    return dst;
  }
  return config_.gateway;
}

// --- Output path -------------------------------------------------------------

void NetStack::SendFrameTo(MacAddress dst, uint16_t ether_type,
                           ciobase::ByteSpan payload) {
  ciobase::Buffer frame = tx_arena_.Acquire(0);
  EthernetHeader eth{dst, port_->mac(), ether_type};
  eth.Serialize(frame);
  ciobase::Append(frame, payload);
  ++stats_.frames_tx;
  if (tx_batch_depth_ > 0) {
    // A batch is open: stage the frame; FlushTxBatch hands the whole run to
    // the port in one SendFrames call.
    tx_staged_.push_back(std::move(frame));
    return;
  }
  ciobase::Status status = SendOne(*port_, frame);
  if (!status.ok()) {
    CIO_LOG(kDebug) << "SendOne failed: " << status.ToString();
  }
  tx_arena_.Release(std::move(frame));
}

void NetStack::FlushTxBatch() {
  if (tx_staged_.empty()) {
    return;
  }
  tx_spans_.clear();
  for (const ciobase::Buffer& frame : tx_staged_) {
    tx_spans_.emplace_back(frame.data(), frame.size());
  }
  size_t offset = 0;
  while (offset < tx_spans_.size()) {
    ciobase::Result<size_t> sent = port_->SendFrames(
        std::span<const ciobase::ByteSpan>(tx_spans_).subspan(offset));
    if (!sent.ok()) {
      // The port rejected the next frame without progress (ring full, link
      // dead): drop the remainder, like per-frame sends failing. TCP
      // retransmission replays whatever mattered.
      CIO_LOG(kDebug) << "SendFrames dropped "
                      << (tx_spans_.size() - offset) << " staged frames: "
                      << sent.status().ToString();
      break;
    }
    if (*sent == 0) {
      break;
    }
    offset += *sent;
  }
  for (ciobase::Buffer& frame : tx_staged_) {
    tx_arena_.Release(std::move(frame));
  }
  tx_staged_.clear();
}

void NetStack::SendIpv4(Ipv4Address dst, uint8_t protocol,
                        ciobase::ByteSpan payload) {
  Ipv4Header header;
  header.identification = ip_ident_++;
  header.protocol = protocol;
  header.src = config_.ip;
  header.dst = dst;
  std::vector<ciobase::Buffer> packets =
      FragmentIpv4(header, payload, port_->mtu());

  Ipv4Address next_hop = NextHop(dst);
  std::optional<MacAddress> mac = arp_.Lookup(next_hop);
  for (auto& packet : packets) {
    if (mac.has_value()) {
      SendFrameTo(*mac, kEtherTypeIpv4, packet);
    } else {
      if (arp_pending_.size() < kMaxArpPending) {
        arp_pending_.push_back(
            PendingPacket{next_hop, kEtherTypeIpv4, std::move(packet)});
      }
      if (!arp_.RequestRecentlySent(next_hop)) {
        arp_.NoteRequestSent(next_hop);
        ciobase::Buffer request = arp_.MakeRequestFrame(next_hop);
        ++stats_.frames_tx;
        (void)SendOne(*port_, request);
      }
    }
  }
}

void NetStack::FlushArpPending(Ipv4Address resolved) {
  std::optional<MacAddress> mac = arp_.Lookup(resolved);
  if (!mac.has_value()) {
    return;
  }
  std::vector<PendingPacket> keep;
  for (auto& pending : arp_pending_) {
    if (pending.next_hop == resolved) {
      SendFrameTo(*mac, pending.ether_type, pending.payload);
    } else {
      keep.push_back(std::move(pending));
    }
  }
  arp_pending_ = std::move(keep);
}

// --- Input path ---------------------------------------------------------------

void NetStack::HandleFrame(ciobase::ByteSpan frame) {
  ++stats_.frames_rx;
  auto eth = EthernetHeader::Parse(frame);
  if (!eth.ok()) {
    ++stats_.parse_errors;
    return;
  }
  if (!(eth->dst == port_->mac()) && !eth->dst.IsBroadcast()) {
    return;  // not for us (promiscuous fabric delivered it anyway)
  }
  ciobase::ByteSpan payload = frame.subspan(kEthernetHeaderSize);
  if (eth->ether_type == kEtherTypeArp) {
    ++stats_.arp_rx;
    auto arp = ArpPacket::Parse(payload);
    std::optional<ciobase::Buffer> reply = arp_.HandlePacket(payload);
    if (reply.has_value()) {
      ++stats_.frames_tx;
      (void)SendOne(*port_, *reply);
    }
    if (arp.ok()) {
      FlushArpPending(arp->sender_ip);
    }
    return;
  }
  if (eth->ether_type == kEtherTypeIpv4) {
    HandleIpv4(payload);
    return;
  }
  // Unknown ethertype: dropped.
}

void NetStack::HandleIpv4(ciobase::ByteSpan packet) {
  auto header = Ipv4Header::Parse(packet);
  if (!header.ok()) {
    if (header.status().code() == ciobase::StatusCode::kTampered) {
      ++stats_.checksum_errors;
    } else {
      ++stats_.parse_errors;
    }
    return;
  }
  ++stats_.ipv4_rx;
  if (!(header->dst == config_.ip)) {
    return;  // not routed; we are a host, not a router
  }
  ciobase::ByteSpan payload =
      packet.subspan(kIpv4HeaderSize, header->total_length - kIpv4HeaderSize);
  std::optional<ReassembledDatagram> datagram =
      reassembler_.Add(*header, payload);
  if (!datagram.has_value()) {
    return;  // waiting for more fragments
  }
  switch (datagram->header.protocol) {
    case kIpProtoTcp:
      HandleTcp(datagram->header, datagram->payload);
      break;
    case kIpProtoUdp:
      HandleUdp(datagram->header, datagram->payload);
      break;
    default:
      break;  // unsupported protocol
  }
}

void NetStack::SendRst(const Ipv4Header& ip, const TcpHeader& header,
                       size_t payload_size) {
  TcpHeader rst;
  rst.src_port = header.dst_port;
  rst.dst_port = header.src_port;
  rst.flags = kTcpFlagRst | kTcpFlagAck;
  if ((header.flags & kTcpFlagAck) != 0) {
    rst.seq = header.ack;
    rst.ack = 0;
    rst.flags = kTcpFlagRst;
  } else {
    rst.seq = 0;
    rst.ack = header.seq + static_cast<uint32_t>(payload_size) +
              (((header.flags & kTcpFlagSyn) != 0) ? 1 : 0);
  }
  ciobase::Buffer segment;
  rst.Serialize(segment);
  uint16_t checksum =
      TransportChecksum(config_.ip, ip.src, kIpProtoTcp, segment);
  ciobase::StoreBe16(segment.data() + 16, checksum);
  ++stats_.rst_sent;
  SendIpv4(ip.src, kIpProtoTcp, segment);
}

void NetStack::HandleTcp(const Ipv4Header& ip, ciobase::ByteSpan segment) {
  if (TransportChecksum(ip.src, ip.dst, kIpProtoTcp, segment) != 0) {
    ++stats_.checksum_errors;
    return;
  }
  auto header = TcpHeader::Parse(segment);
  if (!header.ok()) {
    ++stats_.parse_errors;
    return;
  }
  ++stats_.tcp_rx;
  ciobase::ByteSpan payload = segment.subspan(header->HeaderBytes());

  TcpEndpointId key{config_.ip, header->dst_port, ip.src, header->src_port};
  auto demux = tcp_demux_.find(key);
  if (demux != tcp_demux_.end()) {
    Socket* socket = Find(demux->second);
    if (socket != nullptr && socket->conn != nullptr) {
      socket->conn->OnSegment(*header, payload);
      FlushTcpOutput(*socket);
      return;
    }
  }

  // No connection: a SYN may match a listener.
  if ((header->flags & (kTcpFlagSyn | kTcpFlagAck | kTcpFlagRst)) ==
      kTcpFlagSyn) {
    for (auto& [id, socket] : sockets_) {
      if (socket.type == SocketType::kTcpListener &&
          socket.local_port == header->dst_port) {
        if (socket.accept_queue.size() >= config_.tcp_accept_backlog) {
          // Listener overflow: refuse now rather than queue without bound.
          // The RST gives the client a typed failure (kLinkReset from its
          // TcpReceive) instead of a silent SYN timeout.
          ++stats_.accept_overflows;
          SendRst(ip, *header, payload.size());
          return;
        }
        Socket conn_socket;
        conn_socket.type = SocketType::kTcpConnection;
        conn_socket.local_port = header->dst_port;
        uint16_t mss = static_cast<uint16_t>(port_->mtu() - 40);
        conn_socket.conn = std::make_unique<TcpConnection>(
            TcpConnection::PassiveOpen(clock_, key, mss, rng_.NextU32(),
                                       *header, config_.tcp_tuning));
        SocketId conn_id = NewSocket(std::move(conn_socket));
        tcp_demux_[key] = conn_id;
        Socket* listener = Find(SocketId{id});
        listener->accept_queue.push_back(conn_id);
        Socket* created = Find(conn_id);
        FlushTcpOutput(*created);
        return;
      }
    }
  }
  if ((header->flags & kTcpFlagRst) == 0) {
    ++stats_.no_socket_drops;
    SendRst(ip, *header, payload.size());
  }
}

void NetStack::HandleUdp(const Ipv4Header& ip, ciobase::ByteSpan datagram) {
  auto parsed = ParseUdpDatagram(ip.src, ip.dst, datagram);
  if (!parsed.ok()) {
    if (parsed.status().code() == ciobase::StatusCode::kTampered) {
      ++stats_.checksum_errors;
    } else {
      ++stats_.parse_errors;
    }
    return;
  }
  ++stats_.udp_rx;
  for (auto& [id, socket] : sockets_) {
    if (socket.type == SocketType::kUdp &&
        socket.local_port == parsed->header.dst_port) {
      // Bounded queue: shed oldest under pressure.
      if (socket.udp_queue.size() >= 1024) {
        socket.udp_queue.pop_front();
      }
      socket.udp_queue.push_back(UdpMessage{ip.src, parsed->header.src_port,
                                            std::move(parsed->payload)});
      return;
    }
  }
  ++stats_.no_socket_drops;
}

void NetStack::FlushTcpOutput(Socket& socket) {
  if (socket.conn == nullptr) {
    return;
  }
  // Batch all segments this connection emits (data run, ACK + data, FIN
  // piggybacks) into one port SendFrames call — unless an outer batch (from
  // Poll) is already open, in which case they join it.
  ++tx_batch_depth_;
  for (ciobase::Buffer& segment : socket.conn->TakeOutput()) {
    SendIpv4(socket.conn->endpoints().remote_ip, kIpProtoTcp, segment);
  }
  if (--tx_batch_depth_ == 0) {
    FlushTxBatch();
  }
}

ciobase::Status NetStack::Poll() {
  CIO_PROF_SCOPE(prof_, "tcp.poll");
  ciobase::Status link = ciobase::OkStatus();
  // Everything one poll round emits — ACKs for a burst of received frames,
  // retransmits, window updates across sockets — leaves as one TX batch.
  ++tx_batch_depth_;
  // Drain the port in batches; each ReceiveFrames call touches the shared
  // ring once however many frames it returns.
  for (;;) {
    ciobase::Result<size_t> got = port_->ReceiveFrames(rx_batch_,
                                                       kRxBatchFrames);
    if (!got.ok()) {
      // kLinkReset: the transport reset + reattached; in-flight frames died
      // on the old ring but TCP retransmission replays them — the timers
      // below keep running. kTimedOut: the link is dead; surface it.
      if (got.status().code() == ciobase::StatusCode::kLinkReset) {
        ++stats_.link_resets;
      } else if (got.status().code() == ciobase::StatusCode::kTimedOut) {
        ++stats_.link_timeouts;
      }
      link = got.status();
      break;
    }
    for (size_t i = 0; i < *got; ++i) {
      HandleFrame(rx_batch_[i]);
    }
    if (*got < kRxBatchFrames) {
      break;
    }
  }
  // Timers & output.
  std::vector<uint32_t> defunct;
  for (auto& [id, socket] : sockets_) {
    if (socket.type == SocketType::kTcpConnection && socket.conn != nullptr) {
      socket.conn->PollTimers();
      FlushTcpOutput(socket);
      if (socket.conn->Defunct() && socket.close_requested) {
        defunct.push_back(id);
      }
    }
  }
  for (uint32_t id : defunct) {
    Socket* socket = Find(SocketId{id});
    if (socket != nullptr && socket->conn != nullptr) {
      tcp_demux_.erase(socket->conn->endpoints());
    }
    sockets_.erase(id);
  }
  reassembler_.Expire();
  if (--tx_batch_depth_ == 0) {
    FlushTxBatch();
  }
  return link;
}

// --- UDP API -------------------------------------------------------------------

ciobase::Result<SocketId> NetStack::UdpOpen(uint16_t local_port) {
  if (local_port == 0) {
    local_port = AllocatePort();
    if (local_port == 0) {
      return ciobase::ResourceExhausted("no ephemeral ports");
    }
  } else if (PortInUse(local_port)) {
    return ciobase::AlreadyExists("port in use");
  }
  Socket socket;
  socket.type = SocketType::kUdp;
  socket.local_port = local_port;
  return NewSocket(std::move(socket));
}

ciobase::Status NetStack::UdpSendTo(SocketId id, Ipv4Address dst,
                                    uint16_t port, ciobase::ByteSpan payload) {
  Socket* socket = Find(id);
  if (socket == nullptr || socket->type != SocketType::kUdp) {
    return ciobase::NotFound("not a UDP socket");
  }
  if (payload.size() > 65507) {
    return ciobase::InvalidArgument("UDP payload too large");
  }
  ciobase::Buffer datagram = BuildUdpDatagram(config_.ip, dst,
                                              socket->local_port, port,
                                              payload);
  SendIpv4(dst, kIpProtoUdp, datagram);
  return ciobase::OkStatus();
}

ciobase::Result<UdpMessage> NetStack::UdpReceive(SocketId id) {
  Socket* socket = Find(id);
  if (socket == nullptr || socket->type != SocketType::kUdp) {
    return ciobase::NotFound("not a UDP socket");
  }
  if (socket->udp_queue.empty()) {
    return ciobase::Unavailable("no datagram");
  }
  UdpMessage message = std::move(socket->udp_queue.front());
  socket->udp_queue.pop_front();
  return message;
}

ciobase::Status NetStack::UdpClose(SocketId id) {
  Socket* socket = Find(id);
  if (socket == nullptr || socket->type != SocketType::kUdp) {
    return ciobase::NotFound("not a UDP socket");
  }
  sockets_.erase(id.value);
  return ciobase::OkStatus();
}

// --- TCP API -------------------------------------------------------------------

ciobase::Result<SocketId> NetStack::TcpListen(uint16_t port) {
  if (port == 0 || PortInUse(port)) {
    return ciobase::AlreadyExists("port invalid or in use");
  }
  Socket socket;
  socket.type = SocketType::kTcpListener;
  socket.local_port = port;
  return NewSocket(std::move(socket));
}

ciobase::Result<SocketId> NetStack::TcpConnect(Ipv4Address dst,
                                               uint16_t port) {
  uint16_t local_port = AllocatePort();
  if (local_port == 0) {
    return ciobase::ResourceExhausted("no ephemeral ports");
  }
  TcpEndpointId key{config_.ip, local_port, dst, port};
  Socket socket;
  socket.type = SocketType::kTcpConnection;
  socket.local_port = local_port;
  uint16_t mss = static_cast<uint16_t>(port_->mtu() - 40);
  socket.conn = std::make_unique<TcpConnection>(TcpConnection::ActiveOpen(
      clock_, key, mss, rng_.NextU32(), config_.tcp_tuning));
  SocketId id = NewSocket(std::move(socket));
  tcp_demux_[key] = id;
  FlushTcpOutput(*Find(id));
  return id;
}

ciobase::Result<SocketId> NetStack::TcpAccept(SocketId listener_id) {
  Socket* listener = Find(listener_id);
  if (listener == nullptr || listener->type != SocketType::kTcpListener) {
    return ciobase::NotFound("not a listener");
  }
  while (!listener->accept_queue.empty()) {
    SocketId id = listener->accept_queue.front();
    listener->accept_queue.pop_front();
    Socket* socket = Find(id);
    if (socket == nullptr || socket->conn == nullptr) {
      continue;  // connection died before accept
    }
    return id;
  }
  return ciobase::Unavailable("no pending connection");
}

ciobase::Result<size_t> NetStack::TcpSend(SocketId id,
                                          ciobase::ByteSpan data) {
  Socket* socket = Find(id);
  if (socket == nullptr || socket->type != SocketType::kTcpConnection) {
    return ciobase::NotFound("not a TCP connection");
  }
  auto result = socket->conn->Send(data);
  FlushTcpOutput(*socket);
  return result;
}

ciobase::Result<size_t> NetStack::TcpReceive(SocketId id,
                                             ciobase::MutableByteSpan out) {
  Socket* socket = Find(id);
  if (socket == nullptr || socket->type != SocketType::kTcpConnection) {
    return ciobase::NotFound("not a TCP connection");
  }
  auto result = socket->conn->Receive(out);
  FlushTcpOutput(*socket);  // window updates
  // Unified Status conventions: Ok(0) = nothing pending yet,
  // kFailedPrecondition = orderly EOF, kLinkReset = the connection died
  // (RST, retransmission exhaustion) and must be re-established.
  if (result.ok()) {
    if (*result == 0) {
      return ciobase::FailedPrecondition("orderly EOF");
    }
    return result;
  }
  switch (result.status().code()) {
    case ciobase::StatusCode::kUnavailable:
      return static_cast<size_t>(0);
    case ciobase::StatusCode::kFailedPrecondition:
      return ciobase::LinkReset(result.status().message());
    default:
      return result.status();
  }
}

ciobase::Status NetStack::TcpClose(SocketId id) {
  Socket* socket = Find(id);
  if (socket == nullptr) {
    return ciobase::NotFound("no such socket");
  }
  if (socket->type == SocketType::kTcpListener) {
    sockets_.erase(id.value);
    return ciobase::OkStatus();
  }
  if (socket->type != SocketType::kTcpConnection) {
    return ciobase::NotFound("not a TCP socket");
  }
  socket->conn->Close();
  socket->close_requested = true;
  FlushTcpOutput(*socket);
  return ciobase::OkStatus();
}

ciobase::Status NetStack::TcpAbort(SocketId id) {
  Socket* socket = Find(id);
  if (socket == nullptr || socket->type != SocketType::kTcpConnection) {
    return ciobase::NotFound("not a TCP connection");
  }
  socket->conn->Abort();
  socket->close_requested = true;
  FlushTcpOutput(*socket);
  return ciobase::OkStatus();
}

ciobase::Result<TcpState> NetStack::GetTcpState(SocketId id) const {
  const Socket* socket = Find(id);
  if (socket == nullptr || socket->type != SocketType::kTcpConnection) {
    return ciobase::NotFound("not a TCP connection");
  }
  return socket->conn->state();
}

ciobase::Result<TcpConnection::Stats> NetStack::GetTcpStats(
    SocketId id) const {
  const Socket* socket = Find(id);
  if (socket == nullptr || socket->type != SocketType::kTcpConnection) {
    return ciobase::NotFound("not a TCP connection");
  }
  return socket->conn->stats();
}

ciobase::Result<size_t> NetStack::TcpAcceptPending(SocketId id) const {
  const Socket* listener = Find(id);
  if (listener == nullptr || listener->type != SocketType::kTcpListener) {
    return ciobase::NotFound("not a listener");
  }
  return listener->accept_queue.size();
}

ciobase::Result<bool> NetStack::TcpReadable(SocketId id) const {
  const Socket* socket = Find(id);
  if (socket == nullptr || socket->type != SocketType::kTcpConnection) {
    return ciobase::NotFound("not a TCP connection");
  }
  // A failed or defunct connection is "readable": the next TcpReceive
  // reports the death (kLinkReset) or the EOF instead of blocking forever.
  return socket->conn->readable() || socket->conn->failed() ||
         socket->conn->Defunct();
}

ciobase::Result<size_t> NetStack::TcpSendSpace(SocketId id) const {
  const Socket* socket = Find(id);
  if (socket == nullptr || socket->type != SocketType::kTcpConnection) {
    return ciobase::NotFound("not a TCP connection");
  }
  return socket->conn->send_space();
}

ciobase::Result<Ipv4Address> NetStack::GetTcpPeer(SocketId id) const {
  const Socket* socket = Find(id);
  if (socket == nullptr || socket->type != SocketType::kTcpConnection) {
    return ciobase::NotFound("not a TCP connection");
  }
  return socket->conn->endpoints().remote_ip;
}

}  // namespace cionet
