// Deterministic shared-memory mutator: the fuzzer's hostile-host hand.
//
// A fuzz input is a list of MutationSteps, each saying "before pump round R,
// write <op> at <offset> into window <name>". Windows name every
// host-writable span of a target's shared memory (ring counters, descriptor
// tables, config space, SQ/CQ cells, completion slots); steps reference them
// by name so a serialized input replays against a freshly built world.
//
// Everything is seeded: Generate/Mutate draw only from the ciobase::Rng the
// Mutator owns, and ApplyStep is a pure function of (step, window) — same
// seed, same trace, byte for byte. Writes go through SharedRegion::HostWrite
// (the adversary's channel: no TOCTOU hook, no violation) or a raw span for
// regions that are plain registered memory (the L5 queue region). Offsets
// are clamped to the bound window, so an input generated against one
// geometry stays in-bounds against another.

#ifndef SRC_FUZZ_MUTATOR_H_
#define SRC_FUZZ_MUTATOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/rng.h"
#include "src/tee/shared_region.h"

namespace ciofuzz {

// One host-writable span of a target's shared memory. For generation only
// name/length/weight matter (the binding may be null); at apply time the
// target binds the same names to live regions.
struct TargetWindow {
  std::string name;
  uint64_t length = 0;
  uint32_t weight = 1;

  // Binding (exactly one set when bound): a shared region at base_offset,
  // or a raw span for plain registered memory.
  ciotee::SharedRegion* region = nullptr;
  uint64_t base_offset = 0;
  ciobase::MutableByteSpan raw;

  bool bound() const { return region != nullptr || !raw.empty(); }
};

enum class MutOp : uint8_t {
  kBitFlip = 0,   // flip bit (value % 8) of the byte at offset
  kByteSet,       // write one byte = value
  kWriteLe16,     // write value as LE16
  kWriteLe32,     // write value as LE32
  kWriteLe64,     // write value as LE64
  kFillRandom,    // fill `width` bytes from an xorshift stream seeded by value
  kAddDelta,      // read LE<width>, add value, write back
};
inline constexpr int kMutOpCount = 7;

std::string_view MutOpName(MutOp op);
bool ParseMutOp(std::string_view name, MutOp* out);

struct MutationStep {
  uint32_t round = 0;    // applied before pump round `round`
  std::string window;    // TargetWindow name
  MutOp op = MutOp::kBitFlip;
  uint64_t offset = 0;   // within the window (clamped at apply time)
  uint32_t width = 1;    // kFillRandom / kAddDelta operand size
  uint64_t value = 0;
};

// A fuzz input: the full mutation schedule for one target run.
struct FuzzInput {
  std::vector<MutationStep> steps;

  // One "step <round> <window> <op> <offset> <width> <value>" line per step.
  std::string Serialize() const;
  // Parses step lines; blank lines, `#` comments and `key=value` header
  // lines are ignored (so a whole repro file parses directly). Returns
  // false on a malformed step line.
  static bool Parse(std::string_view text, FuzzInput* out);
};

class Mutator {
 public:
  explicit Mutator(uint64_t seed) : rng_(seed) {}

  // Fresh random input: up to max_steps steps across [0, max_rounds).
  FuzzInput Generate(const std::vector<TargetWindow>& windows,
                     uint32_t max_rounds, size_t max_steps);

  // Mutated copy of a corpus input: tweak, drop, or append steps.
  FuzzInput Mutate(const FuzzInput& base,
                   const std::vector<TargetWindow>& windows,
                   uint32_t max_rounds);

  // Applies every step scheduled for `round` against the bound windows.
  // Steps naming an unknown or unbound window are skipped. Returns the
  // number of steps applied.
  size_t ApplyRound(const FuzzInput& input, uint32_t round,
                    const std::vector<TargetWindow>& windows);

  // Applies one step to one bound window (offset clamped into the window).
  static void ApplyStep(const MutationStep& step, const TargetWindow& window);

  ciobase::Rng& rng() { return rng_; }

 private:
  MutationStep RandomStep(const std::vector<TargetWindow>& windows,
                          uint32_t max_rounds);
  const TargetWindow& PickWindow(const std::vector<TargetWindow>& windows);
  uint64_t InterestingValue();

  ciobase::Rng rng_;
};

}  // namespace ciofuzz

#endif  // SRC_FUZZ_MUTATOR_H_
