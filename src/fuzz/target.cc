#include "src/fuzz/target.h"

#include <deque>

#include "src/base/coverage.h"
#include "src/blockio/block_ring.h"
#include "src/blockio/crypt_client.h"
#include "src/cio/engine.h"
#include "src/crypto/aead.h"

namespace ciofuzz {
namespace {

using cio::StackConfig;
using cio::StackProfile;

// Same fast timers as the attack campaign: retransmit-driven reactions must
// fit inside the bounded pump budget instead of wall-clock-scale RTOs.
void TuneTcpFast(StackConfig& config) {
  config.tcp_tuning.initial_rto_ns = 1'000'000;  // 1 ms
  config.tcp_tuning.min_rto_ns = 500'000;
  config.tcp_tuning.max_rto_ns = 4'000'000;
  config.tcp_tuning.max_retries = 4;
}

size_t GuestViolations(const ciotee::TeeMemory& memory) {
  size_t count = 0;
  for (const ciotee::ViolationEvent& event : memory.violations()) {
    if (event.actor == ciotee::Domain::kGuest) {
      ++count;
    }
  }
  return count;
}

size_t NonOkEdges() {
  size_t count = 0;
  for (const ciobase::CoverageMap::Edge& edge :
       ciobase::CoverageMap::Instance().Edges()) {
    if (edge.code != 0) {
      ++count;
    }
  }
  return count;
}

// Every delivered message must be some sent message, in sent order (TLS
// guarantees both); anything else is a delivered corruption.
size_t CorruptedCount(const std::vector<ciobase::Buffer>& sent,
                      const std::vector<ciobase::Buffer>& received) {
  size_t bad = 0;
  size_t next = 0;
  for (const ciobase::Buffer& message : received) {
    size_t match = next;
    while (match < sent.size() && !(sent[match] == message)) {
      ++match;
    }
    if (match == sent.size()) {
      ++bad;
    } else {
      next = match + 1;
    }
  }
  return bad;
}

TargetWindow Spec(const char* name, uint64_t length, uint32_t weight) {
  TargetWindow window;
  window.name = name;
  window.length = length;
  window.weight = weight;
  return window;
}

// --- Network targets -------------------------------------------------------------

// The vsock transport carries plaintext, so the workload seals its echo
// payloads: host corruption surfaces as an AEAD failure (typed detection),
// never as silently wrong bytes.
constexpr char kVsockKey[] = "fuzz-vsock-seal-key-000000000000";  // 32 bytes
constexpr uint32_t kVsockPort = 5000;
constexpr size_t kVsockMessages = 2;

ciobase::Buffer VsockNonce(uint64_t index) {
  ciobase::Buffer nonce(ciocrypto::kAeadNonceSize, 0);
  ciobase::StoreLe64(nonce.data(), index);
  return nonce;
}

class NetTarget final : public FuzzTarget {
 public:
  NetTarget(StackProfile profile, bool zoo) : profile_(profile), zoo_(zoo) {
    name_ = "net-" + std::string(cio::StackProfileName(profile));
    if (zoo_) {
      name_ += "-zoo";
    }
  }

  std::string_view name() const override { return name_; }

  bool expect_vulnerable() const override {
    // These profiles run VirtioNetDriver with HardeningOptions::Passthrough()
    // (see the profile switch in ConfidentialNode's constructor): completion
    // ids, lengths, and descriptors are trusted, so forged entries steer the
    // driver out of bounds by design — the catalogued CVE pattern, not a
    // regression.
    return profile_ == StackProfile::kPassthroughL2 ||
           profile_ == StackProfile::kTunneledL2;
  }

  std::vector<TargetWindow> WindowSpecs() const override {
    std::vector<TargetWindow> specs;
    if (profile_ == StackProfile::kDualBoundary) {
      // Dual-boundary is the only profile on the L2 ring transport; it adds
      // the in-guest L5 SQ/CQ window on top.
      specs.push_back(Spec("l2.counters", 256, 8));
      specs.push_back(Spec("l2.rings", 1 << 16, 4));
      specs.push_back(Spec("l5.ctrl", 64, 8));
      specs.push_back(Spec("l5.cq", 4096, 4));
      specs.push_back(Spec("l5.all", 1 << 16, 1));
    } else {
      // passthrough-l2 / hardened-virtio / tunneled-l2 all ride the virtio
      // region: config words [0,64), then descriptor tables, avail/used
      // rings, and the bounce pool.
      specs.push_back(Spec("virtio.config", 64, 6));
      specs.push_back(Spec("virtio.rest", 1 << 16, 4));
      if (zoo_) {
        specs.push_back(Spec("virtio2.rest", 1 << 16, 2));
        specs.push_back(Spec("vsock.rest", 1 << 16, 3));
      }
    }
    return specs;
  }

  RunResult Run(const FuzzInput& input, Mutator& mutator,
                const TargetOptions& options) override {
    ciobase::CoverageMap::Instance().ResetHits();
    RunResult result;

    StackConfig client_config = StackConfig::DefaultsFor(profile_, 1);
    client_config.seed = options.seed * 1000003 + 17;
    TuneTcpFast(client_config);
    if (zoo_) {
      client_config.net_devices = 2;
      client_config.enable_vsock = true;
    }
    StackConfig server_config = StackConfig::DefaultsFor(profile_, 2);
    server_config.seed = client_config.seed + 7;
    TuneTcpFast(server_config);

    cio::LinkedPair pair(client_config, server_config);
    cio::ConfidentialNode& client = *pair.client;
    cio::ConfidentialNode& server = *pair.server;
    if (!pair.Establish()) {
      result.gated = true;
      result.kind = "establish-failed";
      result.note = "link never established with no mutation applied";
      return result;
    }

    // Vsock stream: connected before any mutation fires (honest phase).
    ciovirtio::VirtioVsockDriver* vsock =
        zoo_ ? client.vsock_driver() : nullptr;
    if (vsock != nullptr && !vsock->Connect(kVsockPort).ok()) {
      result.gated = true;
      result.kind = "establish-failed";
      result.note = "vsock connect failed with no mutation applied";
      return result;
    }

    std::vector<TargetWindow> windows = BindWindows(client);

    size_t violations_before =
        GuestViolations(client.memory()) + GuestViolations(server.memory());
    size_t compartment_before = 0;
    if (client.compartments() != nullptr) {
      compartment_before = client.compartments()->violations().size();
    }

    // Deterministic payloads (a function of the seed only).
    ciobase::Rng payload_rng(options.seed * 7919 + 3);
    std::vector<ciobase::Buffer> to_send;
    for (size_t i = 0; i < options.messages; ++i) {
      to_send.push_back(payload_rng.Bytes(options.message_size));
    }
    ciobase::ByteSpan vsock_key(
        reinterpret_cast<const uint8_t*>(kVsockKey), 32);
    std::vector<ciobase::Buffer> vsock_plain;
    std::vector<ciobase::Buffer> vsock_sealed;
    for (size_t i = 0; i < kVsockMessages; ++i) {
      vsock_plain.push_back(payload_rng.Bytes(48));
      vsock_sealed.push_back(ciocrypto::AeadSeal(vsock_key, VsockNonce(i), {},
                                                 vsock_plain[i]));
    }

    size_t sent = 0;
    std::vector<ciobase::Buffer> client_received;
    std::vector<ciobase::Buffer> server_received;
    std::deque<ciobase::Buffer> echo_pending;
    size_t vsock_sent = 0;
    size_t vsock_echoed = 0;
    bool vsock_detected = false;
    bool vsock_corrupt = false;

    for (uint32_t round = 0; round < options.pump_rounds; ++round) {
      result.steps_applied += mutator.ApplyRound(input, round, windows);
      pair.Pump();

      for (auto m = server.ReceiveMessage(); m.ok();
           m = server.ReceiveMessage()) {
        server_received.push_back(*m);
        echo_pending.push_back(std::move(*m));
      }
      while (!echo_pending.empty() &&
             server.SendMessage(echo_pending.front()).ok()) {
        echo_pending.pop_front();
      }
      for (auto m = client.ReceiveMessage(); m.ok();
           m = client.ReceiveMessage()) {
        client_received.push_back(std::move(*m));
      }
      if (sent < to_send.size() && round % 4 == 0) {
        if (client.SendMessage(to_send[sent]).ok()) {
          ++sent;
        }
      }

      if (vsock != nullptr) {
        (void)vsock->Poll();  // violations are typed and counted in stats
        for (auto r = vsock->Receive(); r.ok(); r = vsock->Receive()) {
          auto opened = ciocrypto::AeadOpen(vsock_key,
                                            VsockNonce(vsock_echoed), {}, *r);
          if (!opened.ok()) {
            vsock_detected = true;  // typed kTampered at the app seal
          } else {
            if (vsock_echoed < vsock_plain.size() &&
                !(*opened == vsock_plain[vsock_echoed])) {
              vsock_corrupt = true;
            }
            ++vsock_echoed;
          }
        }
        if (vsock->connected() && vsock_sent == vsock_echoed &&
            vsock_sent < vsock_sealed.size()) {
          if (vsock->Send(vsock_sealed[vsock_sent]).ok()) {
            ++vsock_sent;
          }
        }
      }

      bool net_done = client_received.size() >= to_send.size();
      bool vsock_done = vsock == nullptr || vsock_echoed >= kVsockMessages ||
                        vsock_detected || !vsock->connected();
      if (net_done && vsock_done && input.steps.empty()) {
        break;  // baseline runs stop as soon as the workload completes
      }
      if (net_done && vsock_done && result.steps_applied == TotalSteps(input)) {
        break;  // every scheduled mutation fired and the workload survived
      }
    }

    bool net_done = client_received.size() >= to_send.size();
    bool vsock_done =
        vsock == nullptr || vsock_echoed >= kVsockMessages || vsock_detected;
    result.completed = net_done && vsock_done;
    result.non_ok_edges = NonOkEdges();

    size_t violations_after =
        GuestViolations(client.memory()) + GuestViolations(server.memory());
    size_t compartment_after = 0;
    if (client.compartments() != nullptr) {
      compartment_after = client.compartments()->violations().size();
    }
    size_t corrupted = CorruptedCount(to_send, server_received) +
                       CorruptedCount(to_send, client_received);

    if (violations_after > violations_before) {
      result.gated = true;
      result.kind = "memory-violation";
      result.note = "guest-actor TEE violation under mutation";
    } else if (compartment_after > compartment_before) {
      result.gated = true;
      result.kind = "compartment-violation";
      result.note = "app/io compartment isolation break";
    } else if (corrupted > 0 || vsock_corrupt) {
      result.gated = true;
      result.kind = "silent-corruption";
      result.note = vsock_corrupt ? "vsock echo mismatched after AEAD open"
                                  : "delivered message matches nothing sent";
    } else if (!net_done && !client.Failed() && result.non_ok_edges == 0 &&
               result.steps_applied > 0) {
      result.gated = true;
      result.kind = "hang";
      result.note = "net workload wedged with no typed detection";
    }
    return result;
  }

 private:
  static size_t TotalSteps(const FuzzInput& input) {
    return input.steps.size();
  }

  std::vector<TargetWindow> BindWindows(cio::ConfidentialNode& node) const {
    std::vector<TargetWindow> windows = WindowSpecs();
    for (TargetWindow& window : windows) {
      if (window.name == "l2.counters") {
        BindRegion(window, node.shared_region(), 0, 256);
      } else if (window.name == "l2.rings") {
        BindRegion(window, node.shared_region(), 256, UINT64_MAX);
      } else if (window.name == "virtio.config") {
        BindRegion(window, node.shared_region(), 0, 64);
      } else if (window.name == "virtio.rest") {
        BindRegion(window, node.shared_region(), 64, UINT64_MAX);
      } else if (window.name == "virtio2.rest") {
        BindRegion(window, node.shared_region2(), 0, UINT64_MAX);
      } else if (window.name == "vsock.rest") {
        BindRegion(window, node.vsock_region(), 0, UINT64_MAX);
      } else if (node.l5() != nullptr) {
        ciobase::MutableByteSpan queue = node.l5()->queue_region_for_test();
        const cio::L5QueueConfig& geometry = node.config().l5_queue;
        if (window.name == "l5.ctrl") {
          window.raw = queue.subspan(0, cio::kSqcqControlBytes);
        } else if (window.name == "l5.cq") {
          window.raw = queue.subspan(geometry.CqOffset(),
                                     geometry.cq_entries * cio::kCqeSize);
        } else if (window.name == "l5.all") {
          window.raw = queue;
        }
        window.length = window.raw.size();
      }
    }
    return windows;
  }

  static void BindRegion(TargetWindow& window, ciotee::SharedRegion* region,
                         uint64_t base, uint64_t length) {
    if (region == nullptr) {
      return;  // stays unbound; ApplyRound skips it
    }
    window.region = region;
    window.base_offset = base;
    uint64_t available = region->size() > base ? region->size() - base : 0;
    window.length = std::min(length, available);
  }

  StackProfile profile_;
  bool zoo_;
  std::string name_;
};

// --- Storage target --------------------------------------------------------------

class StorageTarget final : public FuzzTarget {
 public:
  std::string_view name() const override { return "storage-ring"; }

  std::vector<TargetWindow> WindowSpecs() const override {
    return {Spec("block.cells", 256, 8), Spec("block.rest", 1 << 15, 4)};
  }

  RunResult Run(const FuzzInput& input, Mutator& mutator,
                const TargetOptions& options) override {
    ciobase::CoverageMap::Instance().ResetHits();
    RunResult result;

    ciobase::SimClock clock;
    ciobase::CostModel costs{&clock};
    ciotee::TeeMemory memory;
    ciohost::Adversary adversary{options.seed};
    ciohost::ObservabilityLog observability;

    cioblock::BlockRingConfig config;
    config.block_count = 128;
    ciotee::SharedRegion shared(&memory, config.RegionSize(), "fuzz-block");
    cioblock::HostBlockDevice device(&shared, config, &adversary,
                                     &observability, &clock);
    // Recovery bounds every wait: a wedged ring fires the watchdog and
    // eventually kTimedOut instead of spinning the synchronous client.
    ciobase::RecoveryConfig recovery;
    recovery.enabled = true;
    recovery.watchdog_timeout_ns = 100'000;
    recovery.backoff_initial_ns = 100'000;
    recovery.backoff_cap_ns = 400'000;
    recovery.max_resets = 3;
    cioblock::RingBlockClient ring(&shared, config, &device, &costs, recovery);
    cioblock::EncryptedBlockClient crypt(
        &ring, ciobase::BufferFromString("fuzz-storage-value-key-000000000"));

    std::vector<TargetWindow> windows = WindowSpecs();
    for (TargetWindow& window : windows) {
      window.region = &shared;
      if (window.name == "block.cells") {
        window.base_offset = 0;
        window.length = 256;
      } else {
        window.base_offset = 256;
        window.length = shared.size() - 256;
      }
    }

    size_t violations_before = GuestViolations(memory);
    ciobase::Rng payload_rng(options.seed * 7919 + 3);
    size_t ops = options.messages * 2;
    uint32_t rounds_per_op =
        std::max<uint32_t>(1, options.pump_rounds / std::max<size_t>(ops, 1));

    std::vector<ciobase::Buffer> written(options.messages);
    bool detected = false;
    bool corrupted = false;
    uint32_t round = 0;
    for (size_t op = 0; op < ops && !detected && !corrupted; ++op) {
      for (uint32_t r = 0; r < rounds_per_op; ++r, ++round) {
        result.steps_applied += mutator.ApplyRound(input, round, windows);
        device.Poll();
        clock.Advance(1000);
      }
      size_t index = op % options.messages;
      uint64_t lba = 1 + index;
      if (op < options.messages) {
        written[index] = payload_rng.Bytes(
            std::min<size_t>(options.message_size, crypt.block_size()));
        ciobase::Status status = crypt.WriteBlock(lba, written[index]);
        if (!status.ok()) {
          detected = true;  // typed error: the guest noticed
        }
      } else {
        auto read = crypt.ReadBlock(lba);
        if (!read.ok()) {
          detected = true;
        } else {
          read->resize(written[index].size());
          if (!(*read == written[index])) {
            corrupted = true;
          }
        }
      }
      if (ring.needs_remount()) {
        // The client latched a host restart; reattach (the store layer's
        // Remount path in miniature) and count it as detection.
        ring.Reattach();
        if (!crypt.Remount().ok()) {
          detected = true;
        }
      }
    }
    // Fire any mutation steps scheduled past the op budget (coverage only).
    for (; round < options.pump_rounds; ++round) {
      if (mutator.ApplyRound(input, round, windows) > 0) {
        device.Poll();
      }
    }

    result.completed = !corrupted;
    result.non_ok_edges = NonOkEdges();
    if (GuestViolations(memory) > violations_before) {
      result.gated = true;
      result.kind = "memory-violation";
      result.note = "guest-actor TEE violation under mutation";
    } else if (corrupted) {
      result.gated = true;
      result.kind = "silent-corruption";
      result.note = "block read returned wrong bytes without kTampered";
    }
    (void)detected;
    return result;
  }
};

}  // namespace

std::vector<std::unique_ptr<FuzzTarget>> AllFuzzTargets() {
  std::vector<std::unique_ptr<FuzzTarget>> targets;
  targets.push_back(
      std::make_unique<NetTarget>(StackProfile::kPassthroughL2, false));
  targets.push_back(
      std::make_unique<NetTarget>(StackProfile::kHardenedVirtio, false));
  targets.push_back(
      std::make_unique<NetTarget>(StackProfile::kDualBoundary, false));
  targets.push_back(
      std::make_unique<NetTarget>(StackProfile::kTunneledL2, false));
  targets.push_back(
      std::make_unique<NetTarget>(StackProfile::kHardenedVirtio, true));
  targets.push_back(std::make_unique<StorageTarget>());
  return targets;
}

std::unique_ptr<FuzzTarget> MakeFuzzTarget(std::string_view name) {
  for (auto& target : AllFuzzTargets()) {
    if (target->name() == name) {
      return std::move(target);
    }
  }
  return nullptr;
}

}  // namespace ciofuzz
