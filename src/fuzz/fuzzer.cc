#include "src/fuzz/fuzzer.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "src/base/coverage.h"

namespace ciofuzz {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void FnvMix(uint64_t& hash, ciobase::ByteSpan bytes) {
  for (uint8_t byte : bytes) {
    hash ^= byte;
    hash *= kFnvPrime;
  }
}

void FnvMixString(uint64_t& hash, std::string_view text) {
  FnvMix(hash, ciobase::ByteSpan(
                    reinterpret_cast<const uint8_t*>(text.data()),
                    text.size()));
}

using EdgeKey = std::pair<std::string, uint16_t>;

// Folds this run's coverage into the campaign-wide union edge set.
void AccumulateEdges(std::set<EdgeKey>& into) {
  for (const ciobase::CoverageMap::Edge& edge :
       ciobase::CoverageMap::Instance().Edges()) {
    into.insert({edge.site, edge.code});
  }
}

uint64_t HashEdgeSet(const std::set<EdgeKey>& edges) {
  uint64_t hash = kFnvOffset;
  for (const EdgeKey& edge : edges) {
    FnvMixString(hash, edge.first);
    uint8_t code[2];
    ciobase::StoreLe16(code, edge.second);
    FnvMix(hash, code);
  }
  return hash;
}

}  // namespace

Fuzzer::Fuzzer(FuzzOptions options) : options_(std::move(options)) {
  for (auto& target : AllFuzzTargets()) {
    if (options_.only_target.empty() ||
        target->name() == options_.only_target) {
      targets_.push_back(std::move(target));
    }
  }
}

std::string Fuzzer::ReproText(const FuzzFailure& failure,
                              const FuzzOptions& options) {
  std::ostringstream text;
  text << "# cio-fuzz repro\n";
  text << "target=" << failure.target << "\n";
  text << "seed=" << options.run.seed << "\n";
  text << "messages=" << options.run.messages << "\n";
  text << "message_size=" << options.run.message_size << "\n";
  text << "pump_rounds=" << options.run.pump_rounds << "\n";
  text << "failure=" << failure.kind << "\n";
  text << "# " << failure.note << "\n";
  text << failure.input.Serialize();
  return text.str();
}

FuzzReport Fuzzer::Run() {
  FuzzReport report;
  if (targets_.empty()) {
    return report;
  }
  Mutator mutator(options_.seed);
  std::set<EdgeKey> baseline_edges;
  std::set<EdgeKey> union_edges;
  uint64_t trace_hash = kFnvOffset;

  // Baseline: one unmutated run per target. Establishes the no-mutation
  // edge set and proves the scripted workloads complete on a friendly host.
  for (auto& target : targets_) {
    TargetOptions run = options_.run;
    run.seed = options_.seed;
    RunResult result = target->Run(FuzzInput{}, mutator, run);
    AccumulateEdges(baseline_edges);
    AccumulateEdges(union_edges);
    if (!result.completed || result.gated) {
      ++report.baseline_incomplete;
      FuzzFailure failure;
      failure.target = std::string(target->name());
      failure.kind = result.gated ? result.kind : "baseline-incomplete";
      failure.note = "unmutated baseline: " + result.note;
      report.failures.push_back(std::move(failure));
    }
  }
  report.baseline_edges = baseline_edges.size();

  for (size_t i = 0; i < options_.iterations; ++i) {
    FuzzTarget& target = *targets_[i % targets_.size()];
    std::string target_name(target.name());
    std::vector<TargetWindow> specs = target.WindowSpecs();
    std::vector<CorpusEntry>& corpus = corpus_[target_name];

    FuzzInput input;
    if (!corpus.empty() && mutator.rng().NextBool(0.7)) {
      const CorpusEntry& base =
          corpus[mutator.rng().NextBounded(corpus.size())];
      input = mutator.Mutate(base.input, specs, options_.run.pump_rounds);
    } else {
      input = mutator.Generate(specs, options_.run.pump_rounds,
                               options_.max_steps);
    }

    FnvMixString(trace_hash, target_name);
    FnvMixString(trace_hash, input.Serialize());

    TargetOptions run = options_.run;
    run.seed = options_.seed;
    auto started = std::chrono::steady_clock::now();
    RunResult result = target.Run(input, mutator, run);
    ++report.iterations_run;
    if (options_.verbose) {
      auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - started)
                            .count();
      if (elapsed_ms > 50) {
        std::fprintf(stderr, "fuzz: slow iteration %zu (%s): %lld ms\n%s",
                     i, target_name.c_str(),
                     static_cast<long long>(elapsed_ms),
                     input.Serialize().c_str());
      }
    }

    size_t before = union_edges.size();
    AccumulateEdges(union_edges);
    if (union_edges.size() > before) {
      corpus.push_back(CorpusEntry{input});
      if (corpus.size() > options_.corpus_limit) {
        corpus.erase(corpus.begin());
      }
    }

    if (result.gated && target.expect_vulnerable() &&
        result.kind == "memory-violation") {
      // The deliberately-unhardened stacks reproducing their CVE class:
      // count it (the smoke run asserts this DOES happen) without failing.
      ++report.expected_vulns;
    } else if (result.gated) {
      FuzzFailure failure;
      failure.target = target_name;
      failure.kind = result.kind;
      failure.note = result.note;
      failure.iteration = i;
      failure.input = input;
      if (!options_.out_dir.empty()) {
        char name[128];
        std::snprintf(name, sizeof(name), "/repro-%s-%zu.txt",
                      target_name.c_str(), i);
        failure.repro_path = options_.out_dir + name;
        std::ofstream file(failure.repro_path);
        file << ReproText(failure, options_);
      }
      report.failures.push_back(std::move(failure));
    }
    if (options_.verbose && (i + 1) % 500 == 0) {
      std::fprintf(stderr, "fuzz: %zu/%zu iterations, %zu edges, %zu fails\n",
                   i + 1, options_.iterations, union_edges.size(),
                   report.failures.size());
    }
  }

  for (const auto& [name, corpus] : corpus_) {
    report.corpus_size += corpus.size();
  }
  report.mutated_edges = union_edges.size();
  report.coverage_hash = HashEdgeSet(union_edges);
  report.trace_hash = trace_hash;
  return report;
}

bool Fuzzer::Replay(const std::string& path, RunResult* result,
                    std::string* error) {
  std::ifstream file(path);
  if (!file) {
    *error = "cannot open repro file: " + path;
    return false;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();

  // Header: key=value lines; steps parsed by FuzzInput::Parse.
  std::string target_name;
  TargetOptions run;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    auto eq = line.find('=');
    if (line.empty() || line[0] == '#' || eq == std::string::npos) {
      continue;
    }
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    if (key == "target") {
      target_name = value;
    } else if (key == "seed") {
      run.seed = std::stoull(value);
    } else if (key == "messages") {
      run.messages = std::stoull(value);
    } else if (key == "message_size") {
      run.message_size = std::stoull(value);
    } else if (key == "pump_rounds") {
      run.pump_rounds = static_cast<uint32_t>(std::stoul(value));
    }
  }

  FuzzInput input;
  if (!FuzzInput::Parse(text, &input)) {
    *error = "malformed step line in " + path;
    return false;
  }
  std::unique_ptr<FuzzTarget> target = MakeFuzzTarget(target_name);
  if (target == nullptr) {
    *error = "unknown target in repro: " + target_name;
    return false;
  }
  // The replay mutator only applies recorded steps; its seed is irrelevant
  // to the trace but kept equal to the run seed for uniformity.
  Mutator mutator(run.seed);
  *result = target->Run(input, mutator, run);
  return true;
}

}  // namespace ciofuzz
