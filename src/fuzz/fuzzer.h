// Coverage-guided fuzzer over the confidential-I/O host interface.
//
// Loop: pick a target round-robin, draw an input (fresh, or a mutation of a
// corpus entry for that target), run it against a fresh world, and read the
// CoverageMap. An input that lights up a (probe-site, status-code) edge the
// campaign has not seen before joins the in-memory corpus; an input that
// trips the target's oracle is serialized to a repro file that replays with
// a single --replay invocation.
//
// Determinism is the contract: the whole campaign is a pure function of the
// seed. The report carries two hashes to prove it — trace_hash (over every
// executed input's serialized form) and coverage_hash (over the union edge
// set) — and the determinism test re-runs a campaign and compares both.
//
// The report also carries the no-mutation baseline edge count next to the
// mutated union: the smoke gate requires strictly more coverage WITH
// mutation (otherwise the mutator is dead weight and the campaign proves
// nothing).

#ifndef SRC_FUZZ_FUZZER_H_
#define SRC_FUZZ_FUZZER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/fuzz/target.h"

namespace ciofuzz {

struct FuzzOptions {
  uint64_t seed = 42;
  size_t iterations = 1000;
  TargetOptions run;            // per-run workload knobs
  size_t max_steps = 10;        // steps in a freshly generated input
  size_t corpus_limit = 128;    // per-target corpus cap (FIFO eviction)
  std::string only_target;      // run just this target ("" = all)
  std::string out_dir;          // repro files land here ("" = no files)
  bool verbose = false;
};

struct FuzzFailure {
  std::string target;
  std::string kind;
  std::string note;
  size_t iteration = 0;
  std::string repro_path;  // empty when out_dir was not set
  FuzzInput input;
};

struct FuzzReport {
  size_t iterations_run = 0;
  size_t corpus_size = 0;          // across all targets
  size_t baseline_edges = 0;       // union edges with NO mutation
  size_t mutated_edges = 0;        // union edges across the mutated campaign
  uint64_t coverage_hash = 0;      // FNV-1a over the union edge set
  uint64_t trace_hash = 0;         // FNV-1a over every executed input
  size_t baseline_incomplete = 0;  // baseline runs that failed to finish
  // Memory violations on targets whose stack is deliberately unhardened
  // (expect_vulnerable()): the reproduced CVE class, tallied but not gating.
  size_t expected_vulns = 0;
  std::vector<FuzzFailure> failures;

  bool Passed() const {
    return failures.empty() && baseline_incomplete == 0 &&
           mutated_edges > baseline_edges;
  }
};

class Fuzzer {
 public:
  explicit Fuzzer(FuzzOptions options);

  // Baseline pass (one unmutated run per target), then the mutation
  // campaign. Deterministic in options.seed.
  FuzzReport Run();

  // Re-executes a serialized repro file. Returns false (with *error set) if
  // the file is unreadable/malformed or names an unknown target; otherwise
  // *result holds the replayed outcome — a faithful repro gates again.
  static bool Replay(const std::string& path, RunResult* result,
                     std::string* error);

  // Serializes a failure to repro-file text (header + step lines).
  static std::string ReproText(const FuzzFailure& failure,
                               const FuzzOptions& options);

 private:
  struct CorpusEntry {
    FuzzInput input;
  };

  FuzzOptions options_;
  std::vector<std::unique_ptr<FuzzTarget>> targets_;
  std::map<std::string, std::vector<CorpusEntry>> corpus_;  // by target name
};

}  // namespace ciofuzz

#endif  // SRC_FUZZ_FUZZER_H_
